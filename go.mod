module sero

go 1.24
