package sero

import (
	"testing"
)

// FuzzLoadImage feeds corrupted and truncated device images to
// LoadImage. An image is the §5.2 trust boundary — the medium is the
// evidence, host state is rebuilt by scanning it — so a hostile image
// must never panic the loader: every malformed input returns an error,
// and every parseable-but-tampered one surfaces as tamper evidence in
// the recovered state.
func FuzzLoadImage(f *testing.F) {
	// Seed corpus: a genuine image with one heated line, plus easy
	// mutations of it.
	dev := Open(Options{Blocks: 16, Quiet: true})
	blk := make([]byte, BlockSize)
	copy(blk, "fuzz seed record")
	start, logN, err := dev.WriteLine([][]byte{blk})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := dev.Heat(start, logN); err != nil {
		f.Fatal(err)
	}
	img := dev.SaveImage()
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:40])
	f.Add([]byte{})
	f.Add([]byte("SMED"))
	truncated := append([]byte(nil), img...)
	truncated[4] = 99 // bad version
	f.Add(truncated)
	flipped := append([]byte(nil), img...)
	for i := 100; i < len(flipped); i += 997 {
		flipped[i] ^= 0xff
	}
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := LoadImage(data)
		if err != nil {
			return // rejected, fine — the only other acceptable outcome
		}
		// A loadable image must yield a usable device: the registry was
		// rebuilt by scanning, so auditing it must not panic either.
		rep := d.Audit()
		_ = rep.Clean()
	})
}
