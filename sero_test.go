package sero

import (
	"bytes"
	"testing"
)

func TestOpenWriteHeatVerify(t *testing.T) {
	d := Open(Options{Blocks: 256, Quiet: true})
	blocks := [][]byte{
		bytes.Repeat([]byte{1}, BlockSize),
		bytes.Repeat([]byte{2}, BlockSize),
		bytes.Repeat([]byte{3}, BlockSize),
	}
	start, logN, err := d.WriteLine(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Heat(start, logN); err != nil {
		t.Fatal(err)
	}
	rep, err := d.Verify(start)
	if err != nil || !rep.OK {
		t.Fatalf("verify %+v %v", rep, err)
	}
	got, err := d.Read(start + 1)
	if err != nil || !bytes.Equal(got, blocks[0]) {
		t.Fatalf("read-back: %v", err)
	}
	if len(d.Lines()) != 1 {
		t.Fatal("line registry")
	}
	audit := d.Audit()
	if !audit.Clean() {
		t.Fatalf("audit: %s", audit.Summary())
	}
	if d.ElapsedVirtual() == 0 {
		t.Fatal("no virtual time consumed")
	}
}

func TestNoisyDeviceWorks(t *testing.T) {
	d := Open(Options{Blocks: 64, Seed: 99})
	data := bytes.Repeat([]byte{0xAB}, BlockSize)
	if err := d.Write(5, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(5)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("noisy read: %v", err)
	}
}

func TestFSFacade(t *testing.T) {
	d := Open(Options{Blocks: 1024, Quiet: true})
	fs, err := NewFS(d, FSOptions{SegmentBlocks: 32, HeatAware: true})
	if err != nil {
		t.Fatal(err)
	}
	ino, err := fs.Create("report.pdf", 0)
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("audit "), 200)
	if err := fs.WriteFile(ino, content); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.HeatFile("report.pdf"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(ino)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("read after heat: %v", err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	fs2, err := MountFS(d, FSOptions{SegmentBlocks: 32, HeatAware: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err = fs2.ReadFile(ino)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("read after mount: %v", err)
	}
}

func TestRecoverFacade(t *testing.T) {
	d := Open(Options{Blocks: 128, Quiet: true})
	start, logN, err := d.WriteLine([][]byte{bytes.Repeat([]byte{7}, BlockSize)})
	if err != nil {
		t.Fatal(err)
	}
	li, err := d.Heat(start, logN)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Recover()
	if err != nil || !rep.Clean() || len(rep.Lines) != 1 {
		t.Fatalf("recover %+v %v", rep, err)
	}
	if rep.Lines[0].Record.Hash != li.Record.Hash {
		t.Fatal("hash mismatch after recover")
	}
}

func TestLifecycleFacade(t *testing.T) {
	d := Open(Options{Blocks: 64, Quiet: true})
	st := d.Lifecycle()
	if st.TotalBlocks != 64 || st.ReadOnlyRatio != 0 {
		t.Fatalf("lifecycle %+v", st)
	}
}

func TestOpenPanicsWithoutBlocks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Open(Options{})
}

func TestFacadeShredAndImage(t *testing.T) {
	d := Open(Options{Blocks: 128, Quiet: true})
	start, logN, err := d.WriteLine([][]byte{bytes.Repeat([]byte{5}, BlockSize)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Heat(start, logN); err != nil {
		t.Fatal(err)
	}
	rep, err := d.Shred(start)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DotsDestroyed == 0 {
		t.Fatal("shred destroyed nothing")
	}
	vr, err := d.Verify(start)
	if err != nil || vr.OK {
		t.Fatalf("shredded line verifies clean: %v", err)
	}

	img := d.SaveImage()
	d2, err := LoadImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Lines()) != 1 {
		t.Fatal("tombstone lost across image")
	}
	vr, err = d2.Verify(start)
	if err != nil || vr.OK {
		t.Fatalf("shred evidence lost across image: %v", err)
	}
}

func TestFacadeLoadImageGarbage(t *testing.T) {
	if _, err := LoadImage([]byte("not an image")); err == nil {
		t.Fatal("garbage image loaded")
	}
}

func TestOpenClampsNegativeConcurrency(t *testing.T) {
	// Regression: Open used to copy Options.Concurrency into the
	// device params unclamped, unlike SetConcurrency.
	d := Open(Options{Blocks: 256, Quiet: true, Concurrency: -3})
	if got := d.Concurrency(); got != 1 {
		t.Fatalf("Concurrency() = %d after Open with -3, want 1", got)
	}
	rep := d.AuditParallel(0) // 0 = configured width; must not hang or panic
	if len(rep.Reports) != 0 {
		t.Fatalf("audit of empty device found %d lines", len(rep.Reports))
	}
	d.SetConcurrency(-7)
	if got := d.Concurrency(); got != 1 {
		t.Fatalf("SetConcurrency(-7) left %d", got)
	}
}

func TestFSOptionsCheckpointValidation(t *testing.T) {
	d := Open(Options{Blocks: 4096, Quiet: true})
	if _, err := NewFS(d, FSOptions{SegmentBlocks: 32, CheckpointBlocks: 48, HeatAware: true}); err == nil {
		t.Fatal("non-power-of-two checkpoint accepted")
	}
	if _, err := NewFS(d, FSOptions{SegmentBlocks: 32, CheckpointBlocks: -32, HeatAware: true}); err == nil {
		t.Fatal("negative checkpoint accepted")
	}
	// Checkpoint sizing is independent of the segment size.
	fs, err := NewFS(d, FSOptions{SegmentBlocks: 32, CheckpointBlocks: 128, HeatAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := fs.Params().CheckpointBlocks; got != 128 {
		t.Fatalf("checkpoint region %d, want 128", got)
	}
}

func TestFSOptionsWritebackAndConcurrency(t *testing.T) {
	d := Open(Options{Blocks: 4096, Quiet: true, Concurrency: 4})
	fs, err := NewFS(d, FSOptions{SegmentBlocks: 32, WritebackBlocks: 8, HeatAware: true})
	if err != nil {
		t.Fatal(err)
	}
	p := fs.Params()
	if p.WritebackBlocks != 8 {
		t.Fatalf("writeback %d, want 8", p.WritebackBlocks)
	}
	// Concurrency 0 inherits the device's configured fan-out width.
	if p.Concurrency != 4 {
		t.Fatalf("FS concurrency %d, want the device's 4", p.Concurrency)
	}
	ino, err := fs.Create("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*BlockSize)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := fs.WriteFile(ino, data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := MountFS(d, FSOptions{SegmentBlocks: 32, WritebackBlocks: 8, HeatAware: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile(ino)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("data lost across MountFS")
		}
	}
}

func TestFSJournalAPI(t *testing.T) {
	// The two-tier durability story through the public API: syncs ride
	// the summary tail, CheckFSJournal verifies the chain, Checkpoint
	// resets it, and a mount replays everything acked.
	d := Open(Options{Blocks: 4096, Quiet: true})
	opts := FSOptions{SegmentBlocks: 32, CheckpointEvery: 1 << 20, HeatAware: true}
	fs, err := NewFS(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Params().CheckpointEvery != 1<<20 {
		t.Fatalf("CheckpointEvery %d not plumbed", fs.Params().CheckpointEvery)
	}
	ino, err := fs.Create("ledger", 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2*BlockSize)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := fs.WriteFile(ino, data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // anchoring checkpoint
		t.Fatal(err)
	}
	if err := fs.Rename("ledger", "ledger.v2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // summary record
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.JournalRecords == 0 {
		t.Fatalf("no summary records written: %+v", st)
	}
	rep, err := CheckFSJournal(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() || rep.Records == 0 {
		t.Fatalf("journal report %+v", rep)
	}
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err = CheckFSJournal(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 0 || rep.Epoch != 2 {
		t.Fatalf("checkpoint did not reset the tail: %+v", rep)
	}
	fs2, err := MountFS(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Lookup("ledger"); err == nil {
		t.Fatal("old name survived journaled rename")
	}
	ino2, err := fs2.Lookup("ledger.v2")
	if err != nil || ino2 != ino {
		t.Fatalf("renamed file lost: %v", err)
	}
	got, err := fs2.ReadFile(ino2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("data lost across journaled mount")
		}
	}
}

// TestTraceFacade drives the public tracing surface: StartTrace must
// capture device and FS spans, StopTrace must feed sinks and
// uninstall, the exports must render, and Metrics must snapshot the
// counters registry consistently.
func TestTraceFacade(t *testing.T) {
	d := Open(Options{Blocks: 1024, Quiet: true})
	fs, err := NewFS(d, FSOptions{SegmentBlocks: 32, HeatAware: true})
	if err != nil {
		t.Fatal(err)
	}
	var sunk []TraceSpan
	d.StartTrace(TraceOptions{Sinks: []TraceSink{func(spans []TraceSpan) { sunk = spans }}})

	ino, err := fs.Create("traced", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ino, bytes.Repeat([]byte("sp"), 4096)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(ino); err != nil {
		t.Fatal(err)
	}

	spans, dropped := d.StopTrace()
	if len(spans) == 0 || dropped != 0 {
		t.Fatalf("StopTrace: %d spans, %d dropped", len(spans), dropped)
	}
	if len(sunk) != len(spans) {
		t.Fatalf("sink saw %d spans, StopTrace returned %d", len(sunk), len(spans))
	}
	cats := map[string]bool{}
	for _, s := range spans {
		cats[s.Cat] = true
	}
	if !cats["device"] || !cats["lfs"] {
		t.Fatalf("missing span categories: %v", cats)
	}
	doc, err := TraceChromeJSON(spans, dropped)
	if err != nil || !bytes.Contains(doc, []byte("traceEvents")) {
		t.Fatalf("TraceChromeJSON: %v", err)
	}
	if sum := TraceSummary(spans); !bytes.Contains([]byte(sum), []byte("sync")) {
		t.Fatalf("summary missing sync phases:\n%s", sum)
	}

	m := Metrics(d, fs)
	if m.FS.Syncs != 1 || m.FS.BlocksAppended == 0 {
		t.Fatalf("metrics snapshot: %+v", m.FS)
	}
	if m.TraceDropped != 0 {
		t.Fatalf("TraceDropped = %d after StopTrace", m.TraceDropped)
	}

	// A second StopTrace without StartTrace is a clean no-op.
	if s2, d2 := d.StopTrace(); s2 != nil || d2 != 0 {
		t.Fatalf("repeated StopTrace: %d spans, %d dropped", len(s2), d2)
	}
}
