// Command tracecheck validates a Chrome trace_event JSON file emitted
// by `serocli trace` (internal/trace.ChromeJSON) — the observability
// half of `make trace-smoke`. It checks the shape Perfetto and
// chrome://tracing require: a top-level traceEvents array, only "M"
// (metadata) and "X" (complete) events, non-negative microsecond
// timestamps and durations on every X event, consistent pid/tid
// fields, and at least one X event (an all-metadata trace means the
// span ring captured nothing — a wiring bug, not a quiet run).
//
// Usage:
//
//	tracecheck FILE [FILE...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// event is the subset of the trace_event schema the checker inspects.
// Ts and Dur are decoded as float64 because ChromeJSON writes
// fractional microseconds.
type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// document is the top-level trace file shape. ChromeJSON records the
// dropped-span count under otherData.droppedSpans.
type document struct {
	TraceEvents     []event        `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE [FILE...]")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad++
			continue
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// check validates one trace file and prints its event counts.
func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("parsing: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("no traceEvents array")
	}
	spans := 0
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("event %d: empty name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("event %d (%s): missing pid/tid", i, ev.Name)
		}
		switch ev.Ph {
		case "M":
			// Metadata names tracks; no timing fields required.
		case "X":
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("event %d (%s): missing or negative ts", i, ev.Name)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("event %d (%s): missing or negative dur", i, ev.Name)
			}
			spans++
		default:
			return fmt.Errorf("event %d (%s): unexpected phase %q", i, ev.Name, ev.Ph)
		}
	}
	if spans == 0 {
		return fmt.Errorf("no X (span) events — trace captured nothing")
	}
	dropped := float64(0)
	if v, ok := doc.OtherData["droppedSpans"].(float64); ok {
		dropped = v
	}
	fmt.Printf("tracecheck: %s ok — %d events (%d spans, %.0f dropped)\n",
		path, len(doc.TraceEvents), spans, dropped)
	return nil
}
