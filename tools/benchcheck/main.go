// Command benchcheck is the recorded-trajectory half of `make ci`: it
// validates committed BENCH_*.json files against their versioned
// schema (internal/serve.SchemaV1 or SchemaV2 for the serving bench),
// so a stale, truncated, or hand-edited trajectory fails the pipeline
// instead of silently anchoring a later regression diff. It re-checks
// shape only — it does not re-run the (minutes-long) benchmark; `make
// bench-serve` regenerates the numbers.
//
// With -diff it instead compares two trajectory reports — the ROADMAP-
// named regression diff: runs are matched by session count and every
// op kind's p50/p99/worst (and throughput) is printed as old → new
// with the relative change. Both v1 and v2 reports are accepted, and
// a v1-old vs v2-new pair is fine (the upgrade diff); when both runs
// carry the v2 per-session section, each session's own-device /
// lock-wait / queueing decomposition is diffed too. Any other schema
// is a hard error (exit 1).
//
// Usage:
//
//	benchcheck FILE [FILE...]
//	benchcheck -diff OLD.json NEW.json
package main

import (
	"fmt"
	"os"
	"sort"

	"sero/internal/serve"
)

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "-diff" {
		if len(os.Args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: benchcheck -diff OLD.json NEW.json")
			os.Exit(2)
		}
		if err := diff(os.Args[2], os.Args[3]); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck FILE [FILE...]  |  benchcheck -diff OLD.json NEW.json")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			bad++
			continue
		}
		if err := serve.ValidateJSON(data); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("benchcheck: %s ok\n", path)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// load reads one report and enforces the schema key the diff is keyed
// on.
func load(path string) (serve.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return serve.Report{}, err
	}
	r, err := serve.DecodeReport(data)
	if err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	if r.Schema != serve.SchemaV1 && r.Schema != serve.SchemaV2 {
		return r, fmt.Errorf("%s: schema %q, want %q or %q — refusing to diff an unknown schema",
			path, r.Schema, serve.SchemaV1, serve.SchemaV2)
	}
	return r, nil
}

// diff prints the per-kind latency and throughput deltas between two
// same-schema trajectory reports, matching runs by session count.
func diff(oldPath, newPath string) error {
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	oldRuns := make(map[int]serve.Result, len(oldRep.Runs))
	for _, run := range oldRep.Runs {
		oldRuns[run.Config.Sessions] = run
	}
	for _, nr := range newRep.Runs {
		or, ok := oldRuns[nr.Config.Sessions]
		if !ok {
			fmt.Printf("sessions=%d: only in %s\n", nr.Config.Sessions, newPath)
			continue
		}
		delete(oldRuns, nr.Config.Sessions)
		fmt.Printf("sessions=%d: throughput %11.0f → %11.0f ops/vsec  %+.1f%%\n",
			nr.Config.Sessions, or.ThroughputOpsPerSec, nr.ThroughputOpsPerSec,
			pct(or.ThroughputOpsPerSec, nr.ThroughputOpsPerSec))
		kinds := make([]string, 0, len(nr.PerOp))
		for k := range nr.PerOp {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			ns := nr.PerOp[k]
			ost, ok := or.PerOp[k]
			if !ok {
				fmt.Printf("  %-8s only in %s\n", k, newPath)
				continue
			}
			fmt.Printf("  %-8s p50 %s  p99 %s  worst %s\n",
				k, span(ost.P50NS, ns.P50NS), span(ost.P99NS, ns.P99NS), span(ost.WorstNS, ns.WorstNS))
		}
		diffSessions(or, nr)
	}
	sessions := make([]int, 0, len(oldRuns))
	for s := range oldRuns {
		sessions = append(sessions, s)
	}
	sort.Ints(sessions)
	for _, s := range sessions {
		fmt.Printf("sessions=%d: only in %s\n", s, oldPath)
	}
	return nil
}

// diffSessions prints the per-session latency-decomposition deltas
// when both runs carry the v2 section. A v1 old run (no section) is
// noted once and skipped — the upgrade diff has nothing to compare
// against; an empty new section means the new file is v1 and there is
// nothing to print.
func diffSessions(or, nr serve.Result) {
	if len(nr.PerSession) == 0 {
		return
	}
	if len(or.PerSession) == 0 {
		fmt.Printf("  per-session: new in this report (old file predates %s)\n", serve.SchemaV2)
		return
	}
	old := make(map[int]serve.SessionStats, len(or.PerSession))
	for _, ss := range or.PerSession {
		old[ss.Session] = ss
	}
	for _, ns := range nr.PerSession {
		os, ok := old[ns.Session]
		if !ok {
			fmt.Printf("  session %-3d only in new report\n", ns.Session)
			continue
		}
		fmt.Printf("  session %-3d device %s  lock-wait %s  queue %s\n",
			ns.Session, span(os.DeviceNS, ns.DeviceNS),
			span(os.LockWaitNS, ns.LockWaitNS), span(os.QueueNS, ns.QueueNS))
	}
}

// span renders one old → new nanosecond pair with its relative change.
func span(oldNS, newNS int64) string {
	return fmt.Sprintf("%11.3fms → %11.3fms (%+.1f%%)",
		float64(oldNS)/1e6, float64(newNS)/1e6, pct(float64(oldNS), float64(newNS)))
}

// pct is the relative change after vs before in percent (0 when the
// before value is 0).
func pct(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before * 100
}
