// Command benchcheck is the recorded-trajectory half of `make ci`: it
// validates committed BENCH_*.json files against their versioned
// schema (internal/serve.SchemaV1 for the serving bench), so a stale,
// truncated, or hand-edited trajectory fails the pipeline instead of
// silently anchoring a later regression diff. It re-checks shape only
// — it does not re-run the (minutes-long) benchmark; `make bench-serve`
// regenerates the numbers.
//
// Usage:
//
//	benchcheck FILE [FILE...]
package main

import (
	"fmt"
	"os"

	"sero/internal/serve"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck FILE [FILE...]")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			bad++
			continue
		}
		if err := serve.ValidateJSON(data); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("benchcheck: %s ok\n", path)
	}
	if bad > 0 {
		os.Exit(1)
	}
}
