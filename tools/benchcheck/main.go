// Command benchcheck is the recorded-trajectory half of `make ci`: it
// validates committed BENCH_*.json files against their versioned
// schema (internal/serve.SchemaV1 or SchemaV2 for the serving bench),
// so a stale, truncated, or hand-edited trajectory fails the pipeline
// instead of silently anchoring a later regression diff. It re-checks
// shape only — it does not re-run the (minutes-long) benchmark; `make
// bench-serve` regenerates the numbers.
//
// With -diff it instead compares two trajectory reports — the ROADMAP-
// named regression diff: runs are matched by session count, member-
// device count and degraded flag, and every op kind's p50/p99/worst
// (and throughput) is printed as old → new with the relative change.
// All of v1/v2/v3 are accepted, and mixed-schema pairs are fine (the
// upgrade diff); when both runs carry the v2 per-session section, each
// session's own-device / lock-wait / queueing decomposition is diffed
// too, and when either run carries the v3 array section the per-device
// clocks, degraded-read and parity-write counters are diffed as well.
// Any other schema is a hard error (exit 1).
//
// Usage:
//
//	benchcheck FILE [FILE...]
//	benchcheck -diff OLD.json NEW.json
package main

import (
	"fmt"
	"os"
	"sort"

	"sero/internal/serve"
)

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "-diff" {
		if len(os.Args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: benchcheck -diff OLD.json NEW.json")
			os.Exit(2)
		}
		if err := diff(os.Args[2], os.Args[3]); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck FILE [FILE...]  |  benchcheck -diff OLD.json NEW.json")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			bad++
			continue
		}
		if err := serve.ValidateJSON(data); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("benchcheck: %s ok\n", path)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// load reads one report and enforces the schema key the diff is keyed
// on.
func load(path string) (serve.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return serve.Report{}, err
	}
	r, err := serve.DecodeReport(data)
	if err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	if r.Schema != serve.SchemaV1 && r.Schema != serve.SchemaV2 && r.Schema != serve.SchemaV3 {
		return r, fmt.Errorf("%s: schema %q, want %q, %q or %q — refusing to diff an unknown schema",
			path, r.Schema, serve.SchemaV1, serve.SchemaV2, serve.SchemaV3)
	}
	return r, nil
}

// runKey matches runs across the two reports: session count plus the
// v3 array geometry. Pre-array runs (devices absent) normalise to
// width 1, so a v1/v2 old report still pairs with the new baseline.
type runKey struct {
	sessions int
	devices  int
	degraded bool
}

func keyOf(r serve.Result) runKey {
	d := r.Devices
	if d == 0 {
		d = 1
	}
	return runKey{sessions: r.Config.Sessions, devices: d, degraded: r.Degraded}
}

func (k runKey) String() string {
	s := fmt.Sprintf("sessions=%d", k.sessions)
	if k.devices > 1 {
		s += fmt.Sprintf(" devices=%d", k.devices)
	}
	if k.degraded {
		s += " degraded"
	}
	return s
}

// diff prints the per-kind latency and throughput deltas between two
// trajectory reports, matching runs by session count and array
// geometry.
func diff(oldPath, newPath string) error {
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	oldRuns := make(map[runKey]serve.Result, len(oldRep.Runs))
	for _, run := range oldRep.Runs {
		oldRuns[keyOf(run)] = run
	}
	for _, nr := range newRep.Runs {
		key := keyOf(nr)
		or, ok := oldRuns[key]
		if !ok {
			fmt.Printf("%s: only in %s\n", key, newPath)
			continue
		}
		delete(oldRuns, key)
		fmt.Printf("%s: throughput %11.0f → %11.0f ops/vsec  %+.1f%%\n",
			key, or.ThroughputOpsPerSec, nr.ThroughputOpsPerSec,
			pct(or.ThroughputOpsPerSec, nr.ThroughputOpsPerSec))
		kinds := make([]string, 0, len(nr.PerOp))
		for k := range nr.PerOp {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			ns := nr.PerOp[k]
			ost, ok := or.PerOp[k]
			if !ok {
				fmt.Printf("  %-8s only in %s\n", k, newPath)
				continue
			}
			fmt.Printf("  %-8s p50 %s  p99 %s  worst %s\n",
				k, span(ost.P50NS, ns.P50NS), span(ost.P99NS, ns.P99NS), span(ost.WorstNS, ns.WorstNS))
		}
		diffSessions(or, nr)
		diffDevices(or, nr)
	}
	keys := make([]runKey, 0, len(oldRuns))
	for k := range oldRuns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sessions != keys[j].sessions {
			return keys[i].sessions < keys[j].sessions
		}
		if keys[i].devices != keys[j].devices {
			return keys[i].devices < keys[j].devices
		}
		return !keys[i].degraded && keys[j].degraded
	})
	for _, k := range keys {
		fmt.Printf("%s: only in %s\n", k, oldPath)
	}
	return nil
}

// diffDevices prints the v3 array-section deltas: the reconstruction
// and parity-write counters, then each member device's clock and write
// volume when both runs carry a matching per-device breakdown.
func diffDevices(or, nr serve.Result) {
	if len(nr.PerDevice) == 0 && len(or.PerDevice) == 0 {
		return
	}
	fmt.Printf("  array    degraded-reads %d → %d  reconstructed %d → %d  parity-writes %d → %d\n",
		or.DegradedReads, nr.DegradedReads,
		or.ReconstructedBlocks, nr.ReconstructedBlocks,
		or.ParityBlockWrites, nr.ParityBlockWrites)
	if len(or.PerDevice) != len(nr.PerDevice) {
		fmt.Printf("  per-device: breakdown width changed (%d → %d members)\n",
			len(or.PerDevice), len(nr.PerDevice))
		return
	}
	for i, nd := range nr.PerDevice {
		od := or.PerDevice[i]
		mark := ""
		if nd.Failed {
			mark = "  FAILED"
		}
		fmt.Printf("  device %-3d clock %s  writes %d → %d%s\n",
			nd.Device, span(od.ClockNS, nd.ClockNS), od.MagneticWrites, nd.MagneticWrites, mark)
	}
}

// diffSessions prints the per-session latency-decomposition deltas
// when both runs carry the v2 section. A v1 old run (no section) is
// noted once and skipped — the upgrade diff has nothing to compare
// against; an empty new section means the new file is v1 and there is
// nothing to print.
func diffSessions(or, nr serve.Result) {
	if len(nr.PerSession) == 0 {
		return
	}
	if len(or.PerSession) == 0 {
		fmt.Printf("  per-session: new in this report (old file predates %s)\n", serve.SchemaV2)
		return
	}
	old := make(map[int]serve.SessionStats, len(or.PerSession))
	for _, ss := range or.PerSession {
		old[ss.Session] = ss
	}
	for _, ns := range nr.PerSession {
		os, ok := old[ns.Session]
		if !ok {
			fmt.Printf("  session %-3d only in new report\n", ns.Session)
			continue
		}
		fmt.Printf("  session %-3d device %s  lock-wait %s  queue %s\n",
			ns.Session, span(os.DeviceNS, ns.DeviceNS),
			span(os.LockWaitNS, ns.LockWaitNS), span(os.QueueNS, ns.QueueNS))
	}
}

// span renders one old → new nanosecond pair with its relative change.
func span(oldNS, newNS int64) string {
	return fmt.Sprintf("%11.3fms → %11.3fms (%+.1f%%)",
		float64(oldNS)/1e6, float64(newNS)/1e6, pct(float64(oldNS), float64(newNS)))
}

// pct is the relative change after vs before in percent (0 when the
// before value is 0).
func pct(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before * 100
}
