// Command doccheck is the documentation half of `make docs`: it parses
// the Go packages in the given directories (tests excluded) and fails
// if any exported identifier lacks a doc comment — top-level functions
// and methods on exported receivers, type declarations, exported
// const/var specs (a declaration-group comment covers its members),
// struct fields of exported structs, and interface methods. The goal
// is that `go doc` on the public surface reads as a complete
// reference, and stays that way mechanically.
//
// Usage:
//
//	doccheck DIR [DIR...]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck DIR [DIR...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory and reports each undocumented
// exported identifier on stderr, returning the count.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	report := func(pos token.Pos, what, name string) {
		fmt.Fprintf(os.Stderr, "%s: %s %s has no doc comment\n", fset.Position(pos), what, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if d.Recv != nil && !exportedRecv(d.Recv) {
						continue // method of an unexported type: invisible in go doc
					}
					report(d.Pos(), "function", d.Name.Name)
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return bad
}

// checkGenDecl checks the specs of one const/var/type declaration.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			// A group doc ("FS errors."), a per-spec doc or a trailing
			// line comment all count.
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), "const/var", n.Name)
				}
			}
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			switch t := s.Type.(type) {
			case *ast.StructType:
				checkFields(s.Name.Name, t.Fields, report)
			case *ast.InterfaceType:
				checkFields(s.Name.Name, t.Methods, report)
			}
		}
	}
}

// checkFields checks the exported fields (or interface methods) of an
// exported type.
func checkFields(typeName string, fields *ast.FieldList, report func(token.Pos, string, string)) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, n := range f.Names {
			if n.IsExported() {
				report(n.Pos(), "field", typeName+"."+n.Name)
			}
		}
	}
}

// exportedRecv reports whether a method receiver names an exported
// type (pointers and generic instantiations unwrapped).
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
