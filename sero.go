// Package sero is the public API of the SERO (Selectively Eventually
// Read-Only) storage library, a reproduction of "Towards
// Tamper-evident Storage on Patterned Media" (Hartel, Abelmann,
// Khatib; FAST 2008).
//
// A SERO device behaves like an ordinary random-access block device —
// until selected 2^N-block lines are "heated": a physically
// irreversible write-once operation that stores a SHA-256 hash of the
// line in Manchester-coded heated dots. From then on any modification
// of the line is detectable, while its data blocks remain cheaply
// readable. Over its life the device migrates from fully rewritable to
// fully read-only.
//
// The simulated device reproduces the paper's physics (dot-level
// magnetic and electrical operations, analog read signals, annealing
// behaviour) and its latency contract (electrical reads ≥5× magnetic
// reads). Open a device, write lines, heat them, verify them:
//
//	dev := sero.Open(sero.Options{Blocks: 4096})
//	start, logN, _ := dev.WriteLine(blocks)
//	dev.Heat(start, logN)
//	report, _ := dev.Verify(start)
//	if report.Tampered() { ... }
//
// # Concurrency
//
// A Device is safe for concurrent use by any number of goroutines, and
// the implementation is sharded rather than serialised: block and line
// operations take striped per-line-region locks, so reads, writes,
// heats and verifies aimed at distinct lines proceed in parallel,
// while any two operations touching the same blocks (including the
// thermal-crosstalk neighbourhood of an electrical write) are
// serialised against each other. Whole-medium operations — Recover's
// scan and SaveImage — briefly exclude everything else.
//
// Audit, Recover and the background scrubber fan out over a worker
// pool whose width is Options.Concurrency (default 1 = serial). Work
// is partitioned statically (round-robin), so reports are assembled
// in line order and, on a noiseless medium (Quiet), are bit-identical
// for any worker count. With read noise enabled, workers interleave
// draws from the medium's one seeded noise stream, so individual
// noise samples land on different dot reads run to run — exactly as
// they already do between two serial runs that touch the medium in
// different orders; at a healthy SNR the decoded results are
// unaffected.
//
// # The batched write path
//
// Writes are command-batched. Committing magnetisation (or a heat
// pulse) needs the sled settled over the target dots, so every write
// command charges one servo settle before its first bit; reads track
// on the fly and pay none. A contiguous multi-block run issued as one
// command (Device.WriteBlocks, the line-granular WriteLineBatch, or a
// file-system group commit) therefore settles once and streams,
// where the same run written sector-at-a-time settles once per
// sector. The file system exposes this as FSOptions.WritebackBlocks:
// appends buffer in the active segment in memory and go to the device
// as one batched write per WritebackBlocks (and on segment seal and
// Sync); reads take the FS metadata lock shared and proceed
// concurrently with the memory-buffered append path.
//
// The write path is also fanned: a heat-aware FS keeps one appender —
// its own frontier and group-commit buffer — per heat-affinity class,
// and a Sync flushes the per-class runs concurrently on
// FSOptions.Concurrency worker planes (one batched command per
// class, slowest-worker virtual time), so hot and cold appends stop
// serialising through a single frontier. Every class's destination
// run was fixed when its blocks were buffered, so the on-medium
// layout is identical for any worker count; only the virtual time
// changes. The journal's summary record still commits last, at the
// affinity-0 frontier, after every other class's data it acks is on
// the medium — see the durability section below.
//
// # Durability: the summary-tail Sync and the roll-forward journal
//
// Data is durable — acked — at Sync, and the ack is two-tier. A Sync
// group-commits every buffer and then appends one checksummed summary
// record (imap deltas, ordered directory ops, per-block back-pointers)
// to a journal chain living in dedicated log segments: one batched
// write command whose cost scales with the delta, not with the
// metadata size. The checkpoint region — two alternating, checksummed
// slots, so a torn checkpoint write can never lose the previous one —
// is rewritten only when FSOptions.CheckpointEvery appended blocks
// have passed, on an explicit FS.Checkpoint, or when a delta cannot be
// journaled. Mounting loads the newest valid checkpoint slot and rolls
// the summary chain forward, stopping cleanly at the first torn or
// invalid record: every acked Sync survives any later crash point, and
// no unacked write resurrects. A mount that finds both checkpoint
// slots damaged refuses with an error instead of presenting an empty
// file system. CheckFSJournal verifies the chain (sequence continuity,
// checksums, back-pointer agreement with the imap) the way
// cmd/serofsck reports it.
//
// Mount cost is bounded by a per-segment liveness table each
// checkpoint slot carries (under its own checksum, so table damage
// degrades the mount, never the checkpoint): the table names every
// live block and its owning inode as of the checkpoint, and the
// summary-chain deltas keep it current across the journal tail, so a
// mount rebuilds the segment table and owner map in O(segments +
// replayed tail) — independent of how many files exist — re-reading
// only the inodes the tail touched. When the table is absent, torn or
// fails its cross-check, the mount falls back to the full inode walk,
// fanned out over FSOptions.Concurrency worker planes (ino-sorted
// static split, slowest-worker virtual time) with every segment age
// stamped from one post-read timestamp, so the recovered state — and
// the cleaner's future victim choices — is byte-identical for either
// rebuild path and any worker count. FS.MountReport says which path a
// mount took; serosim e17-mount-scale measures the contrast.
//
// # Cleaning: incremental, backgroundable, off the foreground lock
//
// The LFS cleaner fans out over FSOptions.Concurrency like Audit
// does: a pass picks its cost-benefit victims, plans every live
// block's destination serially (so the post-clean layout is a
// function of the workload alone, identical for any worker count),
// copies victim segments concurrently on private worker planes, and
// commits metadata serially, rewriting each affected inode once.
// A pass is phased against the FS lock: plan and commit hold it
// briefly, while the copy phase — the expensive part — runs with the
// lock released, victims guarded by a per-segment clean-pin. A
// foreground write that invalidates a block mid-copy wins: the commit
// phase re-validates every move and drops just the stale ones. With
// FSOptions.CleanWatermark set, passes run from a background
// goroutine whenever the free pool dips to the watermark, so
// foreground appends stop paying for whole cleaning passes (see
// cmd/serosim's e16-background-clean experiment); FS.Close stops it.
// Latency-critical embedders that want neither inline passes nor a
// background goroutine can instead drive rounds themselves with
// FS.CleanStep — one plan/copy/commit round per call, stopping the
// moment foreground work arrives.
// Segments the cleaner empties stay gated (SegFreeing) until a
// covering point (a Sync's summary record or a checkpoint) that no
// longer references their old contents is on the medium — only then
// may fresh appends reuse them, so a crash-mount never reads recycled
// blocks, even for a crash in the middle of a background pass.
//
// # Continuous verification
//
// With FSOptions.AuditEvery set, verification becomes a background
// service like cleaning: every AuditEvery appended blocks, an
// incremental auditor verifies a small batch of heated lines — each
// under only its own striped region locks — in rounds that sweep the
// whole heated population, so a tamper of any heated line is detected
// within two rounds. Blocks that the cleaner (or any reader) pulls
// off the medium pull their lines to the front of the current round
// (a read-observer piggyback), making recently touched regions the
// first re-verified. The checks run off the foreground clock:
// audit-on and audit-off runs are byte-identical in virtual time, and
// the would-be cost appears as Metrics' AuditDeviceNS shadow counter
// instead. FS.AuditStep drives the same rounds cooperatively, and
// serofsck -online audits a mounted, live file system.
//
// Virtual time under parallelism is defined as follows. Foreground
// operations charge the shared device clock, which accumulates the
// total device work (the serialised equivalent) no matter how many
// goroutines issue them. A fanned-out Audit/Recover — and the
// cleaner's fanned-out copy phase — instead runs each worker against
// a private clock and advances the device clock by the *maximum*
// per-worker elapsed time — the model of parallel hardware, where the
// pass takes as long as its slowest worker. With Concurrency=1 the
// two definitions coincide: the pass costs the sum of its per-line
// work. (Audit seeks are accounted on a dedicated verification plane
// that starts from the sled home position each pass, rather than
// continuing from wherever foreground I/O left the shared sled.)
// ElapsedVirtual is therefore coherent — monotone, and the serial sum
// of charged work when serial — under any workload.
//
// For a file-system view (log-structured, heat-aware cleaning), see
// NewFS. For the experiment drivers that regenerate the paper's
// figures, see cmd/serosim.
package sero

import (
	"time"

	"sero/internal/array"
	"sero/internal/core"
	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/medium"
	"sero/internal/trace"
)

// Options configures a simulated SERO device.
type Options struct {
	// Blocks is the number of 512-byte blocks. Required.
	Blocks int
	// Quiet disables read noise, residual signals and thermal
	// crosstalk, making every run bit-deterministic. Default is the
	// realistic noisy medium.
	Quiet bool
	// Seed seeds the medium's noise generator (ignored when Quiet).
	Seed uint64
	// ErbRetries tunes the electrical-read retry count (default 8).
	ErbRetries int
	// Concurrency is the worker count Audit, Recover and the scrubber
	// fan out over. 0 or 1 means serial, keeping the paper's
	// single-sled virtual-time model (a pass costs the sum of its
	// per-line work); higher values model
	// parallel verification hardware (virtual time per pass becomes
	// the slowest worker's share) and use that many goroutines of host
	// parallelism. Reports are assembled in line order for any value,
	// and are bit-identical across worker counts on a Quiet medium
	// (see the package comment for the read-noise caveat).
	Concurrency int
}

// BlockSize is the data payload of one block, in bytes.
const BlockSize = device.DataBytes

// Device is a simulated tamper-evident SERO store.
type Device struct {
	st *core.Store
	// tracer and sinks hold the active StartTrace state (nil/empty when
	// tracing is off).
	tracer *trace.Tracer
	sinks  []TraceSink
}

// VerifyReport re-exports the device verification outcome.
type VerifyReport = device.VerifyReport

// LineInfo re-exports heated-line metadata.
type LineInfo = device.LineInfo

// AuditReport re-exports the whole-store audit outcome.
type AuditReport = core.AuditReport

// LifecycleStats re-exports the WMRM→RO ageing statistics.
type LifecycleStats = core.LifecycleStats

// Open creates a simulated SERO device.
func Open(o Options) *Device {
	if o.Blocks <= 0 {
		panic("sero: Options.Blocks must be positive")
	}
	p := device.DefaultParams(o.Blocks)
	if o.ErbRetries > 0 {
		p.ErbRetries = o.ErbRetries
	}
	// Clamp at the API boundary, exactly like SetConcurrency: a
	// negative or zero width means serial, never a copied-through
	// nonsense value.
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	p.Concurrency = o.Concurrency
	mp := medium.DefaultParams(o.Blocks, device.DotsPerBlock)
	if o.Seed != 0 {
		mp.Seed = o.Seed
	}
	if o.Quiet {
		mp.ReadNoiseSigma = 0
		mp.ResidualInPlaneSignal = 0
		mp.ThermalCrosstalk = 0
	}
	p.Medium = mp
	return &Device{st: core.NewStore(device.New(p))}
}

// ArrayOptions configures a striped multi-device array behind the
// same Device facade: one logical block space over Devices simulated
// sleds with rotated Reed–Solomon parity (internal/array). Blocks is
// the capacity of EACH member; the logical capacity is
// Blocks/StripeBlocks × (Devices−ParityDevices) × StripeBlocks.
type ArrayOptions struct {
	// Options carries the per-member device knobs. Blocks (required)
	// is the per-member capacity and must be a multiple of
	// StripeBlocks.
	Options
	// Devices is the member count N (≥ 1). A width-1 array is
	// byte-identical — layout and virtual time — to Open with the same
	// Options.
	Devices int
	// ParityDevices is the Reed–Solomon parity member count P < N;
	// the array survives up to P member losses.
	ParityDevices int
	// StripeBlocks is the stripe unit (0 = 256, the serving-tier
	// segment size; set it equal to the FS SegmentBlocks so one
	// segment maps to one member).
	StripeBlocks int
}

// OpenArray creates a striped array of simulated SERO devices behind
// the ordinary Device facade: every facade call — and any FS built on
// top with NewFS/MountFS — runs against the composite. Use
// Device.Array for the array-specific surface (member failure,
// degraded stats, repair).
func OpenArray(o ArrayOptions) *Device {
	if o.Devices < 1 {
		panic("sero: ArrayOptions.Devices must be at least 1")
	}
	if o.Blocks <= 0 {
		panic("sero: ArrayOptions.Blocks must be positive")
	}
	if o.StripeBlocks <= 0 {
		o.StripeBlocks = 256
	}
	p := device.DefaultParams(o.Blocks)
	if o.ErbRetries > 0 {
		p.ErbRetries = o.ErbRetries
	}
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	p.Concurrency = o.Concurrency
	mp := medium.DefaultParams(o.Blocks, device.DotsPerBlock)
	if o.Seed != 0 {
		mp.Seed = o.Seed
	}
	if o.Quiet {
		mp.ReadNoiseSigma = 0
		mp.ResidualInPlaneSignal = 0
		mp.ThermalCrosstalk = 0
	}
	p.Medium = mp
	arr, err := array.Build(o.Devices, p, array.Params{
		StripeBlocks: o.StripeBlocks,
		Parity:       o.ParityDevices,
	})
	if err != nil {
		panic("sero: " + err.Error())
	}
	return &Device{st: core.NewStore(arr)}
}

// Array exposes the striped composite behind a Device created with
// OpenArray: member failure/repair, degraded-read statistics and
// per-member access live there. Returns nil for a single-sled Device.
func (d *Device) Array() *array.Array {
	arr, _ := d.st.Device().(*array.Array)
	return arr
}

// Blocks returns the device size in blocks.
func (d *Device) Blocks() int { return d.st.Device().Blocks() }

// Write stores 512 bytes at the given physical block address.
func (d *Device) Write(pba uint64, data []byte) error { return d.st.Write(pba, data) }

// Read fetches the 512-byte block at pba.
func (d *Device) Read(pba uint64) ([]byte, error) { return d.st.Read(pba) }

// WriteLine allocates an aligned line, writes the given blocks into it
// (zero-padding the slack) and returns its start address and size
// exponent. Heat it with Heat when it must become tamper-evident.
func (d *Device) WriteLine(blocks [][]byte) (start uint64, logN uint8, err error) {
	return d.st.WriteLine(blocks)
}

// Heat freezes the line at start: its hash is stored in write-once
// heated dots and the line becomes read-only.
func (d *Device) Heat(start uint64, logN uint8) (LineInfo, error) {
	return d.st.Heat(start, logN)
}

// Verify recomputes the hash of a heated line and compares it with the
// stored one; any discrepancy is evidence of tampering.
func (d *Device) Verify(start uint64) (VerifyReport, error) { return d.st.Verify(start) }

// Audit verifies every heated line on the device, fanning out over the
// configured Concurrency.
func (d *Device) Audit() AuditReport { return d.st.Audit() }

// AuditParallel audits with an explicit worker count (0 means the
// configured Concurrency, 1 means serial). The report is assembled in
// line order for any worker count (and is bit-identical across counts
// on a Quiet medium); only elapsed time changes.
func (d *Device) AuditParallel(workers int) AuditReport { return d.st.AuditParallel(workers) }

// Concurrency returns the audit/recover fan-out width.
func (d *Device) Concurrency() int { return d.st.Device().Concurrency() }

// SetConcurrency changes the audit/recover fan-out width at runtime
// (values below 1 are clamped to 1).
func (d *Device) SetConcurrency(workers int) { d.st.Device().SetConcurrency(workers) }

// Lines lists the heated lines.
func (d *Device) Lines() []LineInfo { return d.st.Lines() }

// Recover rebuilds the heated-line registry by scanning the medium —
// the paper's fsck-style recovery (§5.2); use after reattaching a
// device with lost host state.
func (d *Device) Recover() (core.RecoveryReport, error) { return d.st.Recover() }

// Lifecycle reports how far the device has aged toward read-only.
func (d *Device) Lifecycle() LifecycleStats { return d.st.Lifecycle() }

// ElapsedVirtual returns the simulated time consumed so far; all
// latency figures in this library are virtual, not wall-clock.
func (d *Device) ElapsedVirtual() time.Duration { return d.st.Device().Clock().Now() }

// Store exposes the underlying core store for advanced integrations
// (the archival packages take a *core.Store).
func (d *Device) Store() *core.Store { return d.st }

// TraceSpan re-exports one virtual-time span (see internal/trace for
// the span taxonomy).
type TraceSpan = trace.Span

// Tracer re-exports the bounded lock-free span buffer.
type Tracer = trace.Tracer

// TraceSink consumes the buffered spans when tracing stops. Spans
// arrive in the canonical deterministic order.
type TraceSink func(spans []TraceSpan)

// TraceOptions configures StartTrace.
type TraceOptions struct {
	// Buffer caps the number of buffered spans (0 = trace.DefaultBuffer,
	// 65536). Once full, further spans are dropped and counted — Emit
	// never blocks and never perturbs virtual time.
	Buffer int
	// Sinks are called in order with the collected spans when StopTrace
	// runs.
	Sinks []TraceSink
}

// StartTrace installs a span tracer on the device: from here on the
// device layer (and any FS built over this device) emits virtual-time
// spans into a bounded buffer. Tracing never advances the virtual
// clock — a traced run's latencies are byte-identical to an untraced
// one — and emission never blocks (a full buffer drops spans and
// counts them). Returns the tracer, which may be shared with
// TraceChromeJSON or TraceSummary; a second StartTrace replaces the
// first.
func (d *Device) StartTrace(o TraceOptions) *Tracer {
	d.tracer = trace.New(o.Buffer)
	d.sinks = o.Sinks
	d.st.Device().SetTracer(d.tracer)
	return d.tracer
}

// StopTrace uninstalls the tracer, feeds the collected spans to the
// configured sinks, and returns the spans plus how many were dropped
// to the buffer cap. Call at quiescence (no operations in flight).
// Without a prior StartTrace it returns (nil, 0).
func (d *Device) StopTrace() ([]TraceSpan, uint64) {
	if d.tracer == nil {
		return nil, 0
	}
	d.st.Device().SetTracer(nil)
	spans, dropped := d.tracer.Spans(), d.tracer.Dropped()
	for _, sink := range d.sinks {
		sink(spans)
	}
	d.tracer, d.sinks = nil, nil
	return spans, dropped
}

// TraceChromeJSON renders spans as a Chrome trace_event JSON document
// loadable in Perfetto or chrome://tracing: sessions and worker
// planes appear as named tracks on the virtual timeline. dropped is
// recorded in the document so a truncated trace is self-describing.
func TraceChromeJSON(spans []TraceSpan, dropped uint64) ([]byte, error) {
	return trace.ChromeJSON(spans, dropped)
}

// TraceSummary renders spans as a compact text profile (per-span-kind
// counts, totals, means and share bars) — the form serosim's
// e20-observability experiment prints.
func TraceSummary(spans []TraceSpan) string { return trace.Summarize(spans) }

// MetricsSnapshot is a point-in-time counters registry spanning the
// stack: file-system activity (appends, syncs, journal and checkpoint
// behaviour, cleaning) plus the tracer's drop counter. All counters
// are cumulative since format/mount.
type MetricsSnapshot struct {
	// FS is the file-system counter block (zero value when Metrics was
	// called without an FS).
	FS lfs.Stats
	// TraceDropped counts spans dropped to the trace buffer cap (0 when
	// tracing is off).
	TraceDropped uint64
}

// Metrics snapshots the counters registry. fs may be nil (device-only
// integrations); the FS block is then zero. The FS snapshot is
// internally consistent — it is copied under one lock acquisition, so
// related counters (e.g. CleanerPasses and CleanerCopied) never tear.
func Metrics(d *Device, fs *FS) MetricsSnapshot {
	var m MetricsSnapshot
	if fs != nil {
		m.FS = fs.Stats()
	}
	if d != nil && d.tracer != nil {
		m.TraceDropped = d.tracer.Dropped()
	}
	return m
}

// Shred physically destroys the data blocks of a heated line by
// heating every dot (§8 "Deletion"). The data becomes unrecoverable,
// but the destruction itself remains permanently evident: the line's
// record survives as a tombstone and Verify reports it destroyed.
// Retention policy belongs above this call — see internal/retention
// for a policy-gated wrapper.
func (d *Device) Shred(start uint64) (device.ShredReport, error) {
	return d.st.Device().ShredLine(start)
}

// SaveImage serialises the device's complete medium state. Host-side
// metadata is intentionally excluded: the medium is the evidence.
func (d *Device) SaveImage() []byte { return d.st.Device().SaveImage() }

// RawDevice exposes the underlying raw sled for adversary
// demonstrations that write the medium directly. It returns nil when
// the store sits on a composite (an array of sleds) rather than a
// single raw device; per-member raw access then goes through the
// array's MemberDevice.
func (d *Device) RawDevice() *device.Device {
	raw, _ := d.st.Device().(*device.Device)
	return raw
}

// LoadImage reattaches a device from an image produced by SaveImage.
// The heated-line registry is rebuilt by scanning the medium, so a
// tampered image cannot smuggle in forged host state.
func LoadImage(img []byte) (*Device, error) {
	dev, _, err := device.LoadImage(img, device.DefaultParams(0))
	if err != nil {
		return nil, err
	}
	st := core.NewStore(dev)
	if _, err := st.Recover(); err != nil {
		return nil, err
	}
	return &Device{st: st}, nil
}

// FS is a log-structured, heat-aware file system over a SERO device.
type FS = lfs.FS

// Ino is a file-system inode number.
type Ino = lfs.Ino

// FSOptions configures NewFS.
type FSOptions struct {
	// SegmentBlocks is the LFS segment size (power of two, default
	// 64).
	SegmentBlocks int
	// CheckpointBlocks sizes the checkpoint region at the front of the
	// device, independently of SegmentBlocks. It must be a power of
	// two; 0 defaults to one segment. (It is still rounded up to a
	// whole number of segments so the log base stays aligned.)
	CheckpointBlocks int
	// WritebackBlocks is the group-commit granularity of the write
	// path: appended blocks are buffered in memory and committed as
	// one batched multi-block device write once this many are pending
	// (and always on segment seal and Sync). 1 writes block-at-a-time,
	// paying the per-command servo settle for every block; 0 defaults
	// to whole-segment group commit.
	WritebackBlocks int
	// CheckpointEvery is the background checkpoint policy in appended
	// blocks: Sync acks with a summary record (the roll-forward
	// journal) until this many blocks have been appended since the
	// last checkpoint, then writes a full one. 1 checkpoints every
	// non-empty Sync (the pre-journal behaviour); 0 defaults to four
	// segments' worth; negative values are rejected.
	CheckpointEvery int
	// HeatAware toggles the §4.1 clustering and cleaning policies
	// (default true).
	HeatAware bool
	// Concurrency is the FS worker-plane fan-out width: cleaning
	// passes relocate victim blocks, Sync flushes the
	// per-affinity-class group-commit buffers, and Mount batches its
	// checkpoint-slot and inode reads — each on this many concurrent
	// device worker planes, costing the slowest worker's virtual
	// time. The on-medium layout is identical for any width; only the
	// virtual time changes. 0 defaults to the device's configured
	// width; negative values clamp to serial.
	Concurrency int
	// NoLivenessTable disables the checkpointed liveness table, making
	// every mount rebuild segment liveness with the full inode walk —
	// the pre-table behaviour, kept as the ablation baseline for the
	// mount-scale experiments (serosim e17-mount-scale). Leave it false
	// for production use: with the table, mount cost is O(segments +
	// replayed tail) instead of O(namespace).
	NoLivenessTable bool
	// CleanWatermark moves cleaning off the foreground lock: when the
	// free pool dips to this many segments, a background goroutine
	// runs incremental plan/copy/commit passes — the expensive copy
	// phase with the FS lock released — until that many segments are
	// reclaimable again. 0 (the default) keeps cleaning foreground-
	// only (inline on the append path, or explicit FS.Clean). Call
	// FS.Close to stop the background cleaner; negative values are
	// rejected.
	CleanWatermark int
	// AuditEvery makes verification a background service the way
	// CleanWatermark does cleaning: every AuditEvery blocks appended
	// to the log, a background goroutine verifies a small batch of
	// heated lines off the foreground clock, in rounds that sweep the
	// whole heated population (detection within two rounds of a
	// tamper; see FS.AuditStep and Metrics' audit counters). 0 (the
	// default) disables the cadence — FS.AuditStep can still drive
	// rounds cooperatively. Call FS.Close to stop the background
	// auditor; negative values are rejected.
	AuditEvery int
}

// fsParams translates FSOptions into lfs parameters (shared by NewFS
// and MountFS so a mount always interprets the options the same way
// the format did).
func fsParams(d *Device, o FSOptions) lfs.Params {
	p := lfs.DefaultParams()
	if o.SegmentBlocks > 0 {
		p.SegmentBlocks = o.SegmentBlocks
		p.CheckpointBlocks = o.SegmentBlocks
	}
	if o.CheckpointBlocks != 0 {
		p.CheckpointBlocks = o.CheckpointBlocks
	}
	p.WritebackBlocks = o.WritebackBlocks
	p.CheckpointEvery = o.CheckpointEvery
	p.HeatAware = o.HeatAware
	p.Concurrency = o.Concurrency
	if p.Concurrency == 0 {
		p.Concurrency = d.Concurrency()
	}
	p.CleanWatermark = o.CleanWatermark
	p.NoLivenessTable = o.NoLivenessTable
	p.AuditEvery = o.AuditEvery
	return p
}

// NewFS formats a file system onto a device opened with Open.
func NewFS(d *Device, o FSOptions) (*FS, error) {
	return lfs.New(d.st.Device(), fsParams(d, o))
}

// MountFS reopens a file system previously created by NewFS on the
// same device: it loads the newest valid checkpoint slot and rolls
// forward through the summary chain, recovering every acked Sync and
// stopping cleanly at the first torn record. Segment liveness comes
// from the slot's checkpointed liveness table when one is present and
// intact — mount cost O(segments + replayed tail) — and from a full
// inode walk fanned over FSOptions.Concurrency worker planes
// otherwise; FS.MountReport tells which. A device whose checkpoint
// slots are both damaged refuses to mount (lfs.ErrTornCheckpoint)
// rather than silently coming up as an empty file system.
func MountFS(d *Device, o FSOptions) (*FS, error) {
	return lfs.Mount(d.st.Device(), fsParams(d, o))
}

// FSMountStats re-exports the per-mount liveness-rebuild report (see
// FS.MountReport): whether the checkpointed liveness table was used,
// why it was not, and how many inodes the mount had to read.
type FSMountStats = lfs.MountStats

// Mount error sentinels, for errors.Is against MountFS failures.
var (
	// ErrBadCheckpoint reports that no valid checkpoint slot exists —
	// the device was never formatted and synced by NewFS.
	ErrBadCheckpoint = lfs.ErrBadCheckpoint
	// ErrTornCheckpoint reports that both checkpoint slots hold data
	// but neither validates: the medium was demonstrably formatted, so
	// MountFS refuses to present it as an empty file system. It wraps
	// ErrBadCheckpoint.
	ErrTornCheckpoint = lfs.ErrTornCheckpoint
)

// FSCleanStats re-exports the per-pass cleaning summary returned by
// FS.Clean and FS.CleanStep.
type FSCleanStats = lfs.CleanStats

// FSAuditStats re-exports the per-step incremental audit report
// returned by FS.AuditStep (lines checked, tamper findings, round
// completion and shadow device time).
type FSAuditStats = lfs.AuditStats

// ReadCheckpointPrefix reads the block range [base, base+blocks) of a
// checkpoint region fanned over the device's configured Concurrency
// and returns the concatenated payloads up to the first unreadable
// block, plus whether the whole range was readable — the primitive
// cmd/serofsck uses to probe damaged slots, shared with the mount
// path's batched slot reads.
func ReadCheckpointPrefix(d *Device, base uint64, blocks int) ([]byte, bool) {
	return lfs.ReadablePrefix(d.st.Device(), base, blocks, d.Concurrency())
}

// FSJournalReport re-exports the summary-chain verification outcome.
type FSJournalReport = lfs.JournalReport

// CheckFSJournal verifies the file system's roll-forward journal the
// way cmd/serofsck reports it: sequence continuity and chained
// checksums of the summary tail, then back-pointer agreement between
// the journaled records and the replayed imap, plus checkpoint age
// and replayable-tail length.
func CheckFSJournal(d *Device, o FSOptions) (FSJournalReport, error) {
	return lfs.CheckJournal(d.st.Device(), fsParams(d, o))
}
