// Package trace is the repository's virtual-time observability plane:
// a zero-dependency, allocation-bounded span and counter subsystem
// keyed on the simulated device clock (internal/sim), threaded through
// device → lfs → serve.
//
// Everything recorded here is *virtual* time — the same nanoseconds the
// latency model charges — so identical runs produce identical spans:
// a trace is a deterministic, regression-testable artifact, not a
// wall-clock profile. Emission never blocks and never advances any
// clock; with no tracer installed every instrumentation site reduces to
// one atomic nil-check, so disabled runs are byte-identical in virtual
// time to an untraced build.
//
// # Span taxonomy
//
// Device layer (Cat "device"): "settle" and "write" bracket each
// batched write command (one servo settle, then the streaming
// transfer; V1 = blocks in the command), "read" is one magnetic block
// read (V2 = PBA), and "*-fanout" spans cover a whole fan-out pass
// (start of launch to the slowest worker's join; V1 = worker planes).
// Worker-plane spans carry Track = worker index + 1; foreground work
// is Track 0. Private-plane timestamps are mapped onto the shared
// timeline by adding the fan-out's launch time, so a Perfetto view
// shows the planes as parallel tracks under the one virtual clock.
//
// LFS layer (Cat "lfs"): "sync-space", "sync-flush", "sync-journal",
// "sync-meta" phase the Sync path; "journal-record" is one summary
// record append (V1 = payload bytes); "checkpoint" is one full
// checkpoint write (V1 = blocks); "clean-plan" / "clean-copy" /
// "clean-commit" phase one cleaner round (commit's V1 = blocks
// committed, V2 = moves invalidated by concurrent writes);
// "clean-inline" is the monolithic last-resort inline pass;
// "mount-replay" (V1 = records, V2 = blocks replayed) and
// "mount-table" / "mount-walk" (V1 = table refs adopted or inodes
// read) phase a mount.
//
// Serve layer (Cat "serve"): one span per applied op, Name = the op
// kind, Session = the session id, V1 = the op's lock-wait ns and V2 =
// its own device-charge ns — the inputs of the queueing decomposition
// (queue = span duration − V1 − V2).
package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// Span is one closed interval of virtual time. Spans are fixed-size
// values with statically allocated names, so emitting one allocates
// nothing.
type Span struct {
	// Name identifies the instrumented operation (see the package
	// comment for the taxonomy). Always a static string.
	Name string
	// Cat is the emitting layer: "device", "lfs" or "serve".
	Cat string
	// Track is the latency plane: 0 for foreground work, worker
	// index + 1 for a fan-out worker plane.
	Track int32
	// Session is the serving-tier session id, or -1 when the span is
	// not attributed to a session.
	Session int32
	// Start is the span's start on the shared virtual clock, in
	// nanoseconds. Worker-plane spans are pre-mapped onto the shared
	// timeline (fan-out launch time + private-plane offset).
	Start int64
	// Dur is the span's virtual duration in nanoseconds.
	Dur int64
	// V1 carries a name-specific value (block or worker counts,
	// lock-wait ns for serve spans); see the package comment.
	V1 int64
	// V2 carries a second name-specific value (PBA, invalidated
	// moves, device ns for serve spans); see the package comment.
	V2 int64
}

// DefaultBuffer is the span capacity used when a Tracer is built with
// a non-positive buffer size.
const DefaultBuffer = 1 << 16

// Tracer is a bounded, lock-free span buffer. Writers claim slots with
// one atomic increment and never block: once the buffer is full,
// further spans are counted in Dropped and discarded (the buffer keeps
// the *oldest* spans, so a truncated trace is a prefix, not a random
// sample). All methods are safe for concurrent use; Spans and Reset
// additionally require that no Emit is in flight (call them at
// quiescence, e.g. after a run completes).
type Tracer struct {
	spans   []Span
	next    atomic.Uint64
	dropped atomic.Uint64
}

// New builds a tracer holding at most buffer spans (DefaultBuffer when
// buffer <= 0).
func New(buffer int) *Tracer {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	return &Tracer{spans: make([]Span, buffer)}
}

// Emit records one span. It never blocks: a full buffer increments the
// dropped counter instead. Emitting on a nil tracer is a no-op, which
// is the entire cost of a disabled instrumentation site.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	slot := t.next.Add(1) - 1
	if slot >= uint64(len(t.spans)) {
		t.dropped.Add(1)
		return
	}
	t.spans[slot] = s
}

// Dropped returns how many spans were discarded because the buffer was
// full. Safe on a nil tracer (0).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Len returns the number of buffered spans. Safe on a nil tracer (0).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if n > uint64(len(t.spans)) {
		n = uint64(len(t.spans))
	}
	return int(n)
}

// Spans returns a copy of the buffered spans in the canonical
// content-based order (SortSpans): because the order is a pure
// function of the span *contents*, two runs that perform the same
// virtual-time work return byte-identical streams regardless of which
// goroutine claimed which buffer slot first. Call at quiescence.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, t.Len())
	copy(out, t.spans[:len(out)])
	SortSpans(out)
	return out
}

// Reset discards all buffered spans and the dropped counter. Call at
// quiescence.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.next.Store(0)
	t.dropped.Store(0)
}

// SortSpans sorts spans into the canonical content-based total order:
// by Start, then Cat, Name, Track, Session, V1, V2, Dur. Every
// exporter sorts with this, so exported traces are deterministic for
// deterministic workloads.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spanLess(&spans[i], &spans[j]) })
}

func spanLess(a, b *Span) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Cat != b.Cat {
		return a.Cat < b.Cat
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Track != b.Track {
		return a.Track < b.Track
	}
	if a.Session != b.Session {
		return a.Session < b.Session
	}
	if a.V1 != b.V1 {
		return a.V1 < b.V1
	}
	if a.V2 != b.V2 {
		return a.V2 < b.V2
	}
	return a.Dur < b.Dur
}

// Task accumulates one operation's attribution counters while the
// operation threads through the stack: the virtual time it spent
// waiting for the FS metadata lock and the virtual time of its own
// device charges. The serving tier derives queueing time from them
// (shared-clock delta − lock-wait − own device time). All methods are
// atomic and nil-safe, so instrumented code passes tasks down
// unconditionally and untraced callers pass nil for free.
type Task struct {
	lockWait atomic.Int64
	device   atomic.Int64
}

// AddLockWait adds d to the task's lock-wait total. No-op on nil.
func (t *Task) AddLockWait(d time.Duration) {
	if t == nil {
		return
	}
	t.lockWait.Add(int64(d))
}

// AddDevice adds d to the task's own-device-time total. No-op on nil.
func (t *Task) AddDevice(d time.Duration) {
	if t == nil {
		return
	}
	t.device.Add(int64(d))
}

// LockWaitNS returns the accumulated lock-wait nanoseconds (0 on nil).
func (t *Task) LockWaitNS() int64 {
	if t == nil {
		return 0
	}
	return t.lockWait.Load()
}

// DeviceNS returns the accumulated own-device nanoseconds (0 on nil).
func (t *Task) DeviceNS() int64 {
	if t == nil {
		return 0
	}
	return t.device.Load()
}
