package trace

import (
	"encoding/json"
	"fmt"
)

// The Chrome trace_event exporter: spans become complete ("ph":"X")
// events in the JSON Object Format, loadable in Perfetto or
// chrome://tracing. Latency planes map to threads — the foreground
// plane and each fan-out worker plane get their own track, and each
// serving session gets its own — named via thread_name metadata
// events. Timestamps are virtual microseconds (the format's unit) with
// nanosecond precision preserved in the fraction.

// chromeEvent is one trace_event entry. Field order is fixed, map args
// marshal with sorted keys, and the span order is canonical, so the
// exported bytes are a pure function of the span contents.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON Object Format document.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// chromePID is the single synthetic process every track lives in.
const chromePID = 1

// chromeTID maps a span to its thread (track) id: serving sessions get
// 1000+session, device/lfs planes get 1+track.
func chromeTID(s *Span) int {
	if s.Cat == "serve" && s.Session >= 0 {
		return 1000 + int(s.Session)
	}
	return 1 + int(s.Track)
}

// chromeTrackName names a track for its thread_name metadata event.
func chromeTrackName(tid int) string {
	switch {
	case tid >= 1000:
		return fmt.Sprintf("session %d", tid-1000)
	case tid == 1:
		return "foreground"
	default:
		return fmt.Sprintf("plane %d", tid-1)
	}
}

// usec converts virtual nanoseconds to trace_event microseconds,
// keeping nanosecond precision in the fraction.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// ChromeJSON renders spans as a Chrome trace_event JSON document
// (Perfetto-loadable). Spans are sorted into the canonical order
// first, so the output bytes are deterministic for deterministic
// workloads; dropped is recorded under otherData so a truncated trace
// is self-describing.
func ChromeJSON(spans []Span, dropped uint64) ([]byte, error) {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)

	events := make([]chromeEvent, 0, len(sorted)+8)
	// thread_name metadata first, in tid order: collect the tids in use.
	tids := make(map[int]bool)
	for i := range sorted {
		tids[chromeTID(&sorted[i])] = true
	}
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "sero (virtual time)"},
	})
	for _, tid := range order {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"name": chromeTrackName(tid)},
		})
		events = append(events, chromeEvent{
			Name: "thread_sort_index", Ph: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"sort_index": tid},
		})
	}
	for i := range sorted {
		s := &sorted[i]
		dur := usec(s.Dur)
		args := map[string]any{"v1": s.V1, "v2": s.V2}
		if s.Session >= 0 {
			args["session"] = int64(s.Session)
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: usec(s.Start), Dur: &dur,
			PID: chromePID, TID: chromeTID(s),
			Args: args,
		})
	}
	doc := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"clock": "virtual", "droppedSpans": dropped},
	}
	return json.MarshalIndent(doc, "", " ")
}
