package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// The text summary: a compact, flamegraph-style aggregation of a span
// stream — per (category, name): call count, total and mean virtual
// time, and a proportional bar — the form serosim's e20-observability
// experiment prints. Like the Chrome exporter it is a pure function of
// the span contents.

// summaryRow is one aggregated (cat, name) line.
type summaryRow struct {
	cat, name string
	count     int64
	total     int64
	worst     int64
}

// Summarize renders spans as a compact text profile: spans grouped by
// (Cat, Name), categories in device→lfs→serve order, rows by total
// virtual time descending, each with a bar proportional to its share
// of the largest row.
func Summarize(spans []Span) string {
	if len(spans) == 0 {
		return "trace: no spans\n"
	}
	agg := make(map[[2]string]*summaryRow)
	var wallLo, wallHi int64
	wallLo = spans[0].Start
	for i := range spans {
		s := &spans[i]
		if s.Start < wallLo {
			wallLo = s.Start
		}
		if end := s.Start + s.Dur; end > wallHi {
			wallHi = end
		}
		key := [2]string{s.Cat, s.Name}
		r := agg[key]
		if r == nil {
			r = &summaryRow{cat: s.Cat, name: s.Name}
			agg[key] = r
		}
		r.count++
		r.total += s.Dur
		if s.Dur > r.worst {
			r.worst = s.Dur
		}
	}
	rows := make([]*summaryRow, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, r)
	}
	catRank := func(c string) int {
		switch c {
		case "device":
			return 0
		case "lfs":
			return 1
		case "serve":
			return 2
		}
		return 3
	}
	sort.Slice(rows, func(i, j int) bool {
		if ci, cj := catRank(rows[i].cat), catRank(rows[j].cat); ci != cj {
			return ci < cj
		}
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].name < rows[j].name
	})
	var maxTotal int64
	for _, r := range rows {
		if r.total > maxTotal {
			maxTotal = r.total
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d spans over %v of virtual time\n",
		len(spans), time.Duration(wallHi-wallLo))
	b.WriteString("cat     span            count      total       mean      worst  share\n")
	const barWidth = 24
	for _, r := range rows {
		bar := 0
		if maxTotal > 0 {
			bar = int(int64(barWidth) * r.total / maxTotal)
		}
		mean := int64(0)
		if r.count > 0 {
			mean = r.total / r.count
		}
		fmt.Fprintf(&b, "%-7s %-15s %6d %10v %10v %10v  %s\n",
			r.cat, r.name, r.count,
			time.Duration(r.total), time.Duration(mean), time.Duration(r.worst),
			strings.Repeat("█", bar))
	}
	return b.String()
}
