package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// span is a test shorthand.
func span(name string, start int64) Span {
	return Span{Name: name, Cat: "test", Session: -1, Start: start, Dur: 10}
}

func TestEmitAndSpansSorted(t *testing.T) {
	tr := New(8)
	tr.Emit(span("b", 30))
	tr.Emit(span("a", 10))
	tr.Emit(span("c", 20))
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("Spans len = %d, want 3", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans not sorted by start: %v", spans)
		}
	}
	if spans[0].Name != "a" || spans[1].Name != "c" || spans[2].Name != "b" {
		t.Fatalf("unexpected order: %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
}

func TestOverflowKeepsEarliestAndCounts(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(span("s", int64(i)))
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// The ring keeps the earliest-reserved spans, so the survivors are
	// the first four emitted.
	for i, s := range tr.Spans() {
		if s.Start != int64(i) {
			t.Fatalf("span %d has start %d, want %d (earliest must win)", i, s.Start, i)
		}
	}
}

func TestResetClears(t *testing.T) {
	tr := New(2)
	tr.Emit(span("x", 1))
	tr.Emit(span("y", 2))
	tr.Emit(span("z", 3)) // dropped
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: len=%d dropped=%d, want 0/0", tr.Len(), tr.Dropped())
	}
	tr.Emit(span("w", 4))
	if got := tr.Spans(); len(got) != 1 || got[0].Name != "w" {
		t.Fatalf("post-reset spans = %v", got)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(span("x", 1)) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must report empty state")
	}
	tr.Reset()

	var task *Task
	task.AddLockWait(time.Second)
	task.AddDevice(time.Second)
	if task.LockWaitNS() != 0 || task.DeviceNS() != 0 {
		t.Fatal("nil task must report zero")
	}
}

func TestTaskAccumulates(t *testing.T) {
	var task Task
	task.AddLockWait(3 * time.Millisecond)
	task.AddLockWait(2 * time.Millisecond)
	task.AddDevice(7 * time.Millisecond)
	if got := task.LockWaitNS(); got != 5e6 {
		t.Fatalf("LockWaitNS = %d, want 5e6", got)
	}
	if got := task.DeviceNS(); got != 7e6 {
		t.Fatalf("DeviceNS = %d, want 7e6", got)
	}
}

// TestConcurrentEmit hammers one tracer from many goroutines; under
// -race this pins the lock-free emit path, and the count must be
// conserved between the ring and the dropped counter.
func TestConcurrentEmit(t *testing.T) {
	tr := New(64)
	const goroutines, each = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit(Span{Name: "c", Track: int32(g), Session: -1, Start: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != goroutines*each {
		t.Fatalf("kept+dropped = %d, want %d", got, goroutines*each)
	}
	if tr.Len() != 64 {
		t.Fatalf("ring len = %d, want full 64", tr.Len())
	}
}

// TestSortCanonical checks the full content order: any permutation of
// a span set sorts to the same sequence.
func TestSortCanonical(t *testing.T) {
	base := []Span{
		{Name: "a", Cat: "device", Track: 1, Session: -1, Start: 5, Dur: 1},
		{Name: "a", Cat: "device", Track: 0, Session: -1, Start: 5, Dur: 1},
		{Name: "b", Cat: "device", Track: 0, Session: -1, Start: 5, Dur: 1},
		{Name: "a", Cat: "lfs", Track: 0, Session: -1, Start: 5, Dur: 1},
		{Name: "a", Cat: "device", Track: 0, Session: -1, Start: 3, Dur: 1},
	}
	perm := []Span{base[3], base[0], base[4], base[2], base[1]}
	SortSpans(base)
	SortSpans(perm)
	for i := range base {
		if base[i] != perm[i] {
			t.Fatalf("sort not canonical at %d: %+v vs %+v", i, base[i], perm[i])
		}
	}
	if base[0].Start != 3 {
		t.Fatalf("start must dominate the order, got %+v first", base[0])
	}
}

func TestChromeJSONShapeAndDeterminism(t *testing.T) {
	spans := []Span{
		{Name: "write", Cat: "device", Track: 1, Session: -1, Start: 100, Dur: 50, V1: 4},
		{Name: "read", Cat: "serve", Track: 0, Session: 2, Start: 200, Dur: 25},
		{Name: "sync-flush", Cat: "lfs", Track: 0, Session: -1, Start: 300, Dur: 75},
	}
	doc1, err := ChromeJSON(spans, 3)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := ChromeJSON(spans, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc1, doc2) {
		t.Fatal("ChromeJSON not byte-deterministic")
	}
	var parsed struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Tid  int      `json:"tid"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(doc1, &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var xs, ms int
	sawSession := false
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "X":
			xs++
			if ev.Ts == nil || ev.Dur == nil || *ev.Ts < 0 || *ev.Dur < 0 {
				t.Fatalf("X event %q missing/negative ts or dur", ev.Name)
			}
			if ev.Name == "read" && ev.Tid == 1000+2 {
				sawSession = true
			}
		case "M":
			ms++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if xs != len(spans) {
		t.Fatalf("X events = %d, want %d", xs, len(spans))
	}
	if ms == 0 {
		t.Fatal("no track-naming metadata events")
	}
	if !sawSession {
		t.Fatal("serve span did not land on its 1000+session track")
	}
	if got, ok := parsed.OtherData["droppedSpans"].(float64); !ok || got != 3 {
		t.Fatalf("droppedSpans = %v, want 3", parsed.OtherData["droppedSpans"])
	}
}

func TestSummarize(t *testing.T) {
	spans := []Span{
		{Name: "write", Cat: "device", Session: -1, Start: 0, Dur: 100},
		{Name: "write", Cat: "device", Session: -1, Start: 100, Dur: 300},
		{Name: "read", Cat: "serve", Session: 1, Start: 0, Dur: 50},
	}
	out := Summarize(spans)
	if !strings.Contains(out, "write") || !strings.Contains(out, "read") {
		t.Fatalf("summary missing span kinds:\n%s", out)
	}
	if !strings.Contains(out, "2") {
		t.Fatalf("summary missing the write count:\n%s", out)
	}
	// Empty input must not panic and should say so.
	if empty := Summarize(nil); empty == "" {
		t.Fatal("empty summary should still render a header")
	}
}
