package workload

import (
	"fmt"
	"math"

	"sero/internal/sim"
)

// Zipfian samples file indices in [0, n) with a skewed popularity
// distribution: index i is the (i+1)-th most popular item, with
// probability proportional to 1/(i+1)^theta. It implements the
// constant-time method of Gray et al. ("Quickly generating
// billion-record synthetic databases", SIGMOD '94) — the same sampler
// YCSB popularised for serving benchmarks — on top of the repository's
// deterministic RNG, so two sessions seeded identically draw identical
// index streams. theta = 0 degenerates to the uniform distribution;
// the classic serving mix uses theta ≈ 0.9–0.99.
type Zipfian struct {
	n     int
	theta float64
	// Precomputed Gray constants: alpha = 1/(1-theta), zetan =
	// zeta(n, theta), eta per the paper. Unused when theta is 0.
	alpha, zetan, eta float64
}

// NewZipfian builds a sampler over [0, n). It panics unless n is
// positive and theta is in [0, 1) — the Gray method diverges at
// theta = 1.
func NewZipfian(n int, theta float64) *Zipfian {
	if n <= 0 || theta < 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: bad Zipfian n=%d theta=%g", n, theta))
	}
	z := &Zipfian{n: n, theta: theta}
	if theta == 0 {
		return z
	}
	z.alpha = 1 / (1 - theta)
	z.zetan = zeta(n, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
// O(n), paid once per sampler.
func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// N returns the population size.
func (z *Zipfian) N() int { return z.n }

// Next draws the next index. Exactly one rng draw per call, so
// generators mixing zipfian picks with other draws stay deterministic.
func (z *Zipfian) Next(rng *sim.RNG) int {
	if z.theta == 0 {
		return rng.Intn(z.n)
	}
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	idx := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if idx >= z.n {
		idx = z.n - 1
	}
	return idx
}
