package workload

import (
	"fmt"

	"sero/internal/device"
	"sero/internal/sim"
)

// Mix generates the serving-tier workload: a fixed ring of files is
// created and seeded with one block each (the population phase), then
// Ops operations are drawn from a weighted create/append/read/rename/
// delete mix, with file popularity following a zipfian distribution
// (low slot indices are hot) and optional burst phases during which a
// run of appends lands back-to-back with no interleaved syncs — the
// Rosenblum-style hot/cold skew generalised to the full namespace op
// set. Each Mix instance owns a disjoint namespace shard selected by
// Prefix, so N concurrent sessions can replay N independently seeded
// streams against one file system without colliding.
//
// The stream is applicable by construction: deletes never empty the
// population, creates resurrect previously deleted slots under a fresh
// generation name (degrading to an append when nothing is deleted),
// renames bump a live slot's generation, and every target of a
// read/append/rename/delete is live when the op is reached.
type Mix struct {
	// Files is the population ring size; the stream starts by creating
	// and seeding this many files.
	Files int
	// FileBlocks caps each file's size in blocks; appends beyond the
	// cap overwrite a random block in place.
	FileBlocks int
	// Ops is the number of mix operations after the population phase.
	Ops int
	// Prefix is the namespace shard tag names are minted under
	// (default "mx"); concurrent sessions must use distinct prefixes.
	Prefix string
	// Affinity is the heat-affinity class of created files.
	Affinity uint8
	// CreateW, AppendW, ReadW, RenameW and DeleteW weight the op mix;
	// they need not sum to 1 but must be non-negative and not all zero.
	CreateW, AppendW, ReadW, RenameW, DeleteW float64
	// ZipfTheta skews file popularity (0 = uniform; serving mixes use
	// ≈0.9). Must be below 1.
	ZipfTheta float64
	// SyncEvery inserts a sync after this many mix ops outside bursts
	// (0 = only the final sync). The population phase syncs at the
	// same cadence so group-commit buffers stay bounded.
	SyncEvery int
	// BurstEvery and BurstLen shape burst phases: every BurstEvery
	// ops, the next BurstLen ops are forced appends with no
	// interleaved syncs. 0 disables bursts.
	BurstEvery, BurstLen int
}

// DefaultMix returns the standard serving mix: read-mostly with
// appends, light namespace churn, zipfian 0.9 popularity and short
// append bursts.
func DefaultMix(files, ops int) Mix {
	return Mix{
		Files:      files,
		FileBlocks: 4,
		Ops:        ops,
		Prefix:     "mx",
		CreateW:    0.05,
		AppendW:    0.30,
		ReadW:      0.45,
		RenameW:    0.08,
		DeleteW:    0.12,
		ZipfTheta:  0.9,
		SyncEvery:  64,
		BurstEvery: 512,
		BurstLen:   32,
	}
}

// mixSlot tracks one population-ring entry while generating.
type mixSlot struct {
	gen    int // generation, bumped by rename and delete/create churn
	blocks int // blocks written so far (≤ FileBlocks)
	live   bool
}

// name mints the slot's current file name.
func (w Mix) name(slot, gen int) string {
	prefix := w.Prefix
	if prefix == "" {
		prefix = "mx"
	}
	return fmt.Sprintf("%s-f%06d-g%04d", prefix, slot, gen)
}

// Generate produces the op stream. It panics with a diagnostic on a
// nonsensical configuration, like the other generators.
func (w Mix) Generate(rng *sim.RNG) []Op {
	wsum := w.CreateW + w.AppendW + w.ReadW + w.RenameW + w.DeleteW
	if w.Files <= 0 || w.FileBlocks <= 0 || w.Ops < 0 || w.SyncEvery < 0 ||
		w.BurstEvery < 0 || w.BurstLen < 0 || w.ZipfTheta < 0 || w.ZipfTheta >= 1 ||
		w.CreateW < 0 || w.AppendW < 0 || w.ReadW < 0 || w.RenameW < 0 || w.DeleteW < 0 ||
		wsum <= 0 {
		panic(fmt.Sprintf("workload: bad Mix %+v", w))
	}
	zipf := NewZipfian(w.Files, w.ZipfTheta)
	slots := make([]mixSlot, w.Files)
	var freelist []int // dead slots, resurrection order LIFO
	liveCount := w.Files

	ops := make([]Op, 0, 2*w.Files+w.Ops+w.Ops/16+2)
	sinceSync := 0
	sync := func() {
		ops = append(ops, Op{Kind: OpSync})
		sinceSync = 0
	}

	// Population phase: create the ring and seed every file with one
	// block so reads hit real data from the first mix op.
	for i := range slots {
		slots[i].live = true
		n := w.name(i, 0)
		ops = append(ops,
			Op{Kind: OpCreate, Name: n, Affinity: w.Affinity},
			Op{Kind: OpWrite, Name: n, Offset: 0, Data: randBlock(rng)},
		)
		slots[i].blocks = 1
		sinceSync += 2
		if w.SyncEvery > 0 && sinceSync >= w.SyncEvery {
			sync()
		}
	}

	// pick returns the hottest live slot at or after the zipfian draw
	// (wrapping), so deletes cannot strand a draw.
	pick := func() int {
		idx := zipf.Next(rng)
		for !slots[idx].live {
			idx = (idx + 1) % len(slots)
		}
		return idx
	}

	burstLeft := 0
	for i := 0; i < w.Ops; i++ {
		if w.BurstEvery > 0 && w.BurstLen > 0 && i%w.BurstEvery == 0 {
			burstLeft = w.BurstLen
		}
		kind := OpWrite
		if burstLeft > 0 {
			burstLeft--
		} else {
			r := rng.Float64() * wsum
			switch {
			case r < w.CreateW:
				kind = OpCreate
			case r < w.CreateW+w.AppendW:
				kind = OpWrite
			case r < w.CreateW+w.AppendW+w.ReadW:
				kind = OpRead
			case r < w.CreateW+w.AppendW+w.ReadW+w.RenameW:
				kind = OpRename
			default:
				kind = OpDelete
			}
		}
		switch kind {
		case OpCreate:
			if len(freelist) == 0 {
				// Nothing deleted to resurrect: churn degrades to an
				// append so the ring size stays fixed.
				kind = OpWrite
				break
			}
			s := freelist[len(freelist)-1]
			freelist = freelist[:len(freelist)-1]
			slots[s].gen++
			slots[s].blocks = 0
			slots[s].live = true
			liveCount++
			ops = append(ops, Op{Kind: OpCreate, Name: w.name(s, slots[s].gen), Affinity: w.Affinity})
		case OpRead:
			s := pick()
			blk := 0
			if slots[s].blocks > 0 {
				blk = rng.Intn(slots[s].blocks)
			}
			ops = append(ops, Op{
				Kind:   OpRead,
				Name:   w.name(s, slots[s].gen),
				Offset: uint64(blk * device.DataBytes),
				Length: device.DataBytes,
			})
		case OpRename:
			s := pick()
			old := w.name(s, slots[s].gen)
			slots[s].gen++
			ops = append(ops, Op{Kind: OpRename, Name: old, NewName: w.name(s, slots[s].gen)})
		case OpDelete:
			if liveCount <= 1 {
				kind = OpWrite
				break
			}
			s := pick()
			slots[s].live = false
			liveCount--
			freelist = append(freelist, s)
			ops = append(ops, Op{Kind: OpDelete, Name: w.name(s, slots[s].gen)})
		}
		if kind == OpWrite {
			s := pick()
			blk := slots[s].blocks
			if blk >= w.FileBlocks {
				blk = rng.Intn(w.FileBlocks)
			} else {
				slots[s].blocks++
			}
			ops = append(ops, Op{
				Kind:   OpWrite,
				Name:   w.name(s, slots[s].gen),
				Offset: uint64(blk * device.DataBytes),
				Data:   randBlock(rng),
			})
		}
		sinceSync++
		if w.SyncEvery > 0 && burstLeft == 0 && sinceSync >= w.SyncEvery {
			sync()
		}
	}
	sync()
	return ops
}

// randBlock fills one block with pseudo-random content.
func randBlock(rng *sim.RNG) []byte {
	data := make([]byte, device.DataBytes)
	for j := range data {
		data[j] = byte(rng.Uint64())
	}
	return data
}
