package workload

import (
	"testing"

	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/medium"
	"sero/internal/sim"
)

func testFS(t testing.TB, blocks int) *lfs.FS {
	t.Helper()
	dp := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	dp.Medium = mp
	p := lfs.Params{SegmentBlocks: 32, CheckpointBlocks: 32, HeatAware: true, ReserveSegments: 2}
	fs, err := lfs.New(device.New(dp), p)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestHotColdGenerate(t *testing.T) {
	w := DefaultHotCold(20, 100)
	ops := w.Generate(sim.NewRNG(1))
	creates, writes, syncs := 0, 0, 0
	for _, op := range ops {
		switch op.Kind {
		case OpCreate:
			creates++
		case OpWrite:
			writes++
		case OpSync:
			syncs++
		}
	}
	if creates != 20 || writes != 100 {
		t.Fatalf("creates %d writes %d", creates, writes)
	}
	if syncs == 0 {
		t.Fatal("no syncs generated")
	}
}

func TestHotColdSkew(t *testing.T) {
	w := DefaultHotCold(100, 5000)
	ops := w.Generate(sim.NewRNG(2))
	hotWrites, totalWrites := 0, 0
	for _, op := range ops {
		if op.Kind != OpWrite {
			continue
		}
		totalWrites++
		var idx int
		if _, err := fmtSscanf(op.Name, &idx); err == nil && idx < 10 {
			hotWrites++
		}
	}
	frac := float64(hotWrites) / float64(totalWrites)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot write fraction %g, want ≈0.9", frac)
	}
}

// fmtSscanf extracts the numeric suffix of a hc-file name.
func fmtSscanf(name string, idx *int) (int, error) {
	var n int
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '-' {
			for j := i + 1; j < len(name); j++ {
				n = n*10 + int(name[j]-'0')
			}
			*idx = n
			return 1, nil
		}
	}
	return 0, errNoIndex
}

var errNoIndex = errType{}

type errType struct{}

func (errType) Error() string { return "no index" }

func TestApplyHotCold(t *testing.T) {
	fs := testFS(t, 4096)
	ops := DefaultHotCold(10, 60).Generate(sim.NewRNG(3))
	applied, err := Apply(fs, ops)
	if err != nil {
		t.Fatal(err)
	}
	if applied != len(ops) {
		t.Fatalf("applied %d of %d", applied, len(ops))
	}
	if len(fs.Names()) != 10 {
		t.Fatalf("files %d", len(fs.Names()))
	}
}

func TestApplySnapshotHeats(t *testing.T) {
	fs := testFS(t, 8192)
	w := Snapshot{Tables: 2, TableBlocks: 3, Updates: 60, SnapshotEvery: 30, Affinity: 1}
	ops := w.Generate(sim.NewRNG(4))
	if _, err := Apply(fs, ops); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().HeatedFiles != 4 { // 2 snapshots × 2 tables
		t.Fatalf("heated files %d", fs.Stats().HeatedFiles)
	}
	// Every snapshot file verifies clean.
	for _, name := range fs.Names() {
		ino, _ := fs.Lookup(name)
		st, err := fs.Stat(ino)
		if err != nil {
			t.Fatal(err)
		}
		if st.Heated() {
			reps, err := fs.VerifyFile(name)
			if err != nil || !reps[0].OK {
				t.Fatalf("snapshot %s: %v", name, err)
			}
		}
	}
}

func TestApplyComplianceIngest(t *testing.T) {
	fs := testFS(t, 8192)
	w := ComplianceIngest{Documents: 12, MaxBlocks: 3, Classes: 3}
	ops := w.Generate(sim.NewRNG(5))
	if _, err := Apply(fs, ops); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().HeatedFiles != 12 {
		t.Fatalf("heated %d of 12 documents", fs.Stats().HeatedFiles)
	}
	// Heat-aware clustering by class keeps bimodality at 1.
	if b := fs.Bimodality(); b != 1 {
		t.Fatalf("bimodality %g", b)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := DefaultHotCold(10, 50).Generate(sim.NewRNG(7))
	b := DefaultHotCold(10, 50).Generate(sim.NewRNG(7))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Name != b[i].Name || a[i].Offset != b[i].Offset {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpCreate: "create", OpWrite: "write", OpDelete: "delete",
		OpHeat: "heat", OpSync: "sync",
	} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { HotCold{Files: 0, Writes: 1}.Generate(sim.NewRNG(1)) },
		func() { ComplianceIngest{}.Generate(sim.NewRNG(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
