package workload

import (
	"testing"

	"sero/internal/lfs"
	"sero/internal/sim"
)

// TestHotColdDegenerateFractions is the regression test for the
// HotCold.Generate panic: HotFraction = 1.0 (or Files = 1, where the
// minimum hot set already covers the population) used to reach
// rng.Intn(Files-hot) with a zero argument on every cold draw. All
// writes must be routed hot instead.
func TestHotColdDegenerateFractions(t *testing.T) {
	for _, tc := range []struct {
		files    int
		hotFrac  float64
		skew     float64
		degener8 bool // whole population hot: every write targets it
	}{
		{files: 20, hotFrac: 0, skew: 0.9, degener8: false},
		{files: 20, hotFrac: 0.5, skew: 0.9, degener8: false},
		{files: 20, hotFrac: 1.0, skew: 0.9, degener8: true},
		{files: 1, hotFrac: 0.1, skew: 0.5, degener8: true},
		{files: 1, hotFrac: 0, skew: 0, degener8: true},
	} {
		w := HotCold{Files: tc.files, FileBlocks: 2, HotFraction: tc.hotFrac,
			AccessSkew: tc.skew, Writes: 200, SyncEvery: 16}
		ops := w.Generate(sim.NewRNG(11)) // must not panic
		writes := 0
		for _, op := range ops {
			if op.Kind == OpWrite {
				writes++
			}
		}
		if writes != 200 {
			t.Errorf("files=%d hot=%g: %d writes, want 200", tc.files, tc.hotFrac, writes)
		}
		_ = tc.degener8
	}
}

// TestGeneratorValidation: every generator rejects nonsensical
// parameters with a diagnostic panic instead of emitting a malformed
// stream.
func TestGeneratorValidation(t *testing.T) {
	bad := map[string]func(){
		"hotcold-files":     func() { HotCold{Files: 0, FileBlocks: 1, Writes: 1}.Generate(sim.NewRNG(1)) },
		"hotcold-blocks":    func() { HotCold{Files: 1, FileBlocks: 0, Writes: 1}.Generate(sim.NewRNG(1)) },
		"hotcold-fraction":  func() { HotCold{Files: 4, FileBlocks: 1, HotFraction: 1.5}.Generate(sim.NewRNG(1)) },
		"hotcold-skew":      func() { HotCold{Files: 4, FileBlocks: 1, AccessSkew: -0.1}.Generate(sim.NewRNG(1)) },
		"snapshot-tables":   func() { Snapshot{Tables: 0, TableBlocks: 2, Updates: 1}.Generate(sim.NewRNG(1)) },
		"snapshot-blocks":   func() { Snapshot{Tables: 2, TableBlocks: 0, Updates: 1}.Generate(sim.NewRNG(1)) },
		"snapshot-updates":  func() { Snapshot{Tables: 2, TableBlocks: 2, Updates: -1}.Generate(sim.NewRNG(1)) },
		"compliance":        func() { ComplianceIngest{}.Generate(sim.NewRNG(1)) },
		"mix-files":         func() { Mix{FileBlocks: 1, ReadW: 1}.Generate(sim.NewRNG(1)) },
		"mix-weights":       func() { Mix{Files: 4, FileBlocks: 1}.Generate(sim.NewRNG(1)) },
		"mix-neg-weight":    func() { Mix{Files: 4, FileBlocks: 1, ReadW: 1, DeleteW: -1}.Generate(sim.NewRNG(1)) },
		"mix-zipf-diverges": func() { Mix{Files: 4, FileBlocks: 1, ReadW: 1, ZipfTheta: 1}.Generate(sim.NewRNG(1)) },
		"zipf-n":            func() { NewZipfian(0, 0.5) },
		"zipf-theta":        func() { NewZipfian(10, 1.0) },
	}
	for name, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestZipfianSkew: the sampler concentrates mass on low indices at
// high theta and stays within range; theta 0 is uniform.
func TestZipfianSkew(t *testing.T) {
	const n, draws = 100, 20000
	rng := sim.NewRNG(3)
	z := NewZipfian(n, 0.9)
	var top10 int
	for i := 0; i < draws; i++ {
		idx := z.Next(rng)
		if idx < 0 || idx >= n {
			t.Fatalf("index %d out of range", idx)
		}
		if idx < 10 {
			top10++
		}
	}
	if frac := float64(top10) / draws; frac < 0.5 {
		t.Fatalf("zipf(0.9): top-10%% of files got %.2f of accesses, want > 0.5", frac)
	}
	u := NewZipfian(n, 0)
	var top10u int
	for i := 0; i < draws; i++ {
		if u.Next(rng) < 10 {
			top10u++
		}
	}
	if frac := float64(top10u) / draws; frac < 0.05 || frac > 0.2 {
		t.Fatalf("zipf(0): top-10%% of files got %.2f of accesses, want ≈ 0.1", frac)
	}
}

// TestMixGenerateShape: the mix emits every op kind, keeps the
// population alive, and burst phases suppress interleaved syncs.
func TestMixGenerateShape(t *testing.T) {
	w := DefaultMix(64, 2000)
	ops := w.Generate(sim.NewRNG(5))
	counts := map[OpKind]int{}
	for _, op := range ops {
		counts[op.Kind]++
	}
	for _, k := range []OpKind{OpCreate, OpWrite, OpRead, OpRename, OpDelete, OpSync} {
		if counts[k] == 0 {
			t.Errorf("mix stream has no %v ops", k)
		}
	}
	if counts[OpHeat] != 0 {
		t.Errorf("mix stream emitted %d heat ops", counts[OpHeat])
	}
	if ops[len(ops)-1].Kind != OpSync {
		t.Error("stream does not end with a sync")
	}
}

// TestGeneratorsApplicableByConstruction: Apply succeeds on a fresh FS
// for a grid of parameters of every generator — the property the
// serving tier relies on.
func TestGeneratorsApplicableByConstruction(t *testing.T) {
	type gen struct {
		name   string
		blocks int
		g      interface {
			Generate(*sim.RNG) []Op
		}
	}
	var grid []gen
	for _, files := range []int{1, 7, 32} {
		for _, frac := range []float64{0, 0.5, 1.0} {
			grid = append(grid, gen{
				name:   "hotcold",
				blocks: 4096,
				g: HotCold{Files: files, FileBlocks: 2, HotFraction: frac,
					AccessSkew: 0.9, Writes: 40, SyncEvery: 8},
			})
		}
	}
	grid = append(grid,
		gen{"snapshot", 8192, Snapshot{Tables: 3, TableBlocks: 2, Updates: 40, SnapshotEvery: 20, Affinity: 1}},
		gen{"compliance", 8192, ComplianceIngest{Documents: 10, MaxBlocks: 2, Classes: 2}},
	)
	for _, files := range []int{1, 16, 64} {
		for _, theta := range []float64{0, 0.9} {
			m := DefaultMix(files, 300)
			m.ZipfTheta = theta
			m.SyncEvery = 16
			grid = append(grid, gen{"mix", 16384, m})
		}
	}
	for i, tc := range grid {
		seed := uint64(100 + i)
		ops := tc.g.Generate(sim.NewRNG(seed))
		fs := testFS(t, tc.blocks)
		applied, err := Apply(fs, ops)
		if err != nil {
			t.Fatalf("%s[%d]: applied %d/%d: %v", tc.name, i, applied, len(ops), err)
		}
		if applied != len(ops) {
			t.Fatalf("%s[%d]: applied %d of %d", tc.name, i, applied, len(ops))
		}
	}
}

// TestMixSessionDeterminism: two sessions with the same seed and
// config produce identical streams, op for op and byte for byte.
func TestMixSessionDeterminism(t *testing.T) {
	w := DefaultMix(32, 500)
	w.Prefix = "s00"
	a := w.Generate(sim.NewRNG(42))
	b := w.Generate(sim.NewRNG(42))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Name != b[i].Name || a[i].NewName != b[i].NewName ||
			a[i].Offset != b[i].Offset || a[i].Length != b[i].Length ||
			string(a[i].Data) != string(b[i].Data) {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Distinct prefixes shard the namespace: same shape, disjoint names.
	w2 := w
	w2.Prefix = "s01"
	c := w2.Generate(sim.NewRNG(42))
	if len(c) != len(a) {
		t.Fatalf("sharded stream length differs: %d vs %d", len(c), len(a))
	}
	for i := range a {
		if a[i].Kind != c[i].Kind {
			t.Fatalf("op %d kind differs across shards", i)
		}
		if a[i].Name != "" && a[i].Name == c[i].Name {
			t.Fatalf("op %d: shards share name %q", i, a[i].Name)
		}
	}
}

// TestApplyMixedStream drives Apply's read and rename paths directly.
func TestApplyReadRename(t *testing.T) {
	fs := testFS(t, 4096)
	ops := []Op{
		{Kind: OpCreate, Name: "a"},
		{Kind: OpWrite, Name: "a", Data: make([]byte, 512)},
		{Kind: OpSync},
		{Kind: OpRead, Name: "a", Length: 512},
		{Kind: OpRename, Name: "a", NewName: "b"},
		{Kind: OpRead, Name: "b"},
		{Kind: OpWrite, Name: "b", Offset: 512, Data: make([]byte, 512)},
		{Kind: OpSync},
	}
	if applied, err := Apply(fs, ops); err != nil || applied != len(ops) {
		t.Fatalf("applied %d: %v", applied, err)
	}
	if _, err := fs.Lookup("a"); err == nil {
		t.Fatal("old name still resolves after rename")
	}
	ino, err := fs.Lookup("b")
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := fs.Stat(ino); st.Size != 1024 {
		t.Fatalf("size %d after rename+append, want 1024", st.Size)
	}
}

// TestApplyWrapsErrors: failures carry the op kind and file name.
func TestApplyWrapsErrors(t *testing.T) {
	fs := testFS(t, 4096)
	for _, tc := range []struct {
		op   Op
		want string
	}{
		{Op{Kind: OpWrite, Name: "ghost", Data: make([]byte, 8)}, "write ghost"},
		{Op{Kind: OpRead, Name: "ghost"}, "read ghost"},
		{Op{Kind: OpRename, Name: "ghost", NewName: "x"}, "rename ghost"},
		{Op{Kind: OpDelete, Name: "ghost"}, "delete ghost"},
		{Op{Kind: OpHeat, Name: "ghost"}, "heat ghost"},
	} {
		_, err := Apply(fs, []Op{tc.op})
		if err == nil {
			t.Fatalf("%v: expected error", tc.op.Kind)
		}
		if !contains(err.Error(), "workload: ") || !contains(err.Error(), tc.want) {
			t.Errorf("%v error %q does not name the op and file", tc.op.Kind, err)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestMaxFileBlocksGuard keeps Mix streams within the FS's direct-
// pointer limit so "applicable by construction" cannot silently break.
func TestMixRespectsMaxFileBlocks(t *testing.T) {
	if DefaultMix(1, 1).FileBlocks > lfs.MaxFileBlocks {
		t.Fatal("DefaultMix file size exceeds lfs.MaxFileBlocks")
	}
}
