// Package workload provides the synthetic workloads driving the
// performance experiments: the hot/cold write mix conventional in LFS
// evaluation [42], the database-snapshot pattern the paper's
// introduction motivates ("most data bases support a snapshot
// operation that freezes the contents of the data base"), and a
// compliance-ingest stream with per-retention-class affinity (§8
// "data to be segregated by expiry date").
package workload

import (
	"fmt"

	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/sim"
	"sero/internal/trace"
)

// Op is one file-system operation produced by a generator.
type Op struct {
	Kind OpKind
	// Name is the target file.
	Name string
	// NewName is the rename target (OpRename only).
	NewName string
	// Affinity is the heat-affinity class for creates.
	Affinity uint8
	// Offset, Data describe writes; Offset also positions reads.
	Offset uint64
	Data   []byte
	// Length is the read size in bytes (OpRead only); 0 reads one
	// block.
	Length int
}

// OpKind enumerates generated operations.
type OpKind int

// Operation kinds.
const (
	OpCreate OpKind = iota
	OpWrite
	OpDelete
	OpHeat
	OpSync
	OpRead
	OpRename
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	case OpHeat:
		return "heat"
	case OpSync:
		return "sync"
	case OpRead:
		return "read"
	case OpRename:
		return "rename"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Applier executes ops one at a time against a file system, caching
// name→ino resolutions across ops. The serving tier drives one Applier
// per session so each op's cost can be measured individually; Apply
// wraps one for whole-stream use. Every error is wrapped with the op
// kind and file name, so a failure deep in a multi-session run is
// attributable to the op that caused it.
type Applier struct {
	fs   *lfs.FS
	inos map[string]lfs.Ino
	buf  []byte // scratch read buffer, grown on demand
}

// NewApplier returns an applier executing against fs.
func NewApplier(fs *lfs.FS) *Applier {
	return &Applier{fs: fs, inos: make(map[string]lfs.Ino)}
}

// lookup resolves a name via the cache, falling back to the FS.
func (a *Applier) lookup(op Op) (lfs.Ino, error) {
	if ino, ok := a.inos[op.Name]; ok {
		return ino, nil
	}
	ino, err := a.fs.Lookup(op.Name)
	if err != nil {
		return 0, fmt.Errorf("workload: %s %s: lookup: %w", op.Kind, op.Name, err)
	}
	a.inos[op.Name] = ino
	return ino, nil
}

// Apply executes one op. Errors are wrapped with the op kind and name.
func (a *Applier) Apply(op Op) error { return a.ApplyTraced(op, nil) }

// ApplyTraced executes one op with per-operation attribution: the
// op's lock-wait and own device time accumulate on task via the FS's
// Traced entry points (serving tier). A nil task behaves exactly like
// Apply.
func (a *Applier) ApplyTraced(op Op, task *trace.Task) error {
	switch op.Kind {
	case OpCreate:
		ino, err := a.fs.CreateTraced(task, op.Name, op.Affinity)
		if err != nil {
			return fmt.Errorf("workload: create %s: %w", op.Name, err)
		}
		a.inos[op.Name] = ino
	case OpWrite:
		ino, err := a.lookup(op)
		if err != nil {
			return err
		}
		if err := a.fs.WriteTraced(task, ino, op.Offset, op.Data); err != nil {
			return fmt.Errorf("workload: write %s: %w", op.Name, err)
		}
	case OpRead:
		ino, err := a.lookup(op)
		if err != nil {
			return err
		}
		n := op.Length
		if n <= 0 {
			n = device.DataBytes
		}
		if cap(a.buf) < n {
			a.buf = make([]byte, n)
		}
		if _, err := a.fs.ReadTraced(task, ino, op.Offset, a.buf[:n]); err != nil {
			return fmt.Errorf("workload: read %s: %w", op.Name, err)
		}
	case OpRename:
		if err := a.fs.RenameTraced(task, op.Name, op.NewName); err != nil {
			return fmt.Errorf("workload: rename %s -> %s: %w", op.Name, op.NewName, err)
		}
		if ino, ok := a.inos[op.Name]; ok {
			delete(a.inos, op.Name)
			a.inos[op.NewName] = ino
		}
	case OpDelete:
		if err := a.fs.DeleteTraced(task, op.Name); err != nil {
			return fmt.Errorf("workload: delete %s: %w", op.Name, err)
		}
		delete(a.inos, op.Name)
	case OpHeat:
		if _, err := a.fs.HeatFileTraced(task, op.Name); err != nil {
			return fmt.Errorf("workload: heat %s: %w", op.Name, err)
		}
	case OpSync:
		if err := a.fs.SyncTraced(task); err != nil {
			return fmt.Errorf("workload: sync: %w", err)
		}
	default:
		return fmt.Errorf("workload: unknown op kind %v", op.Kind)
	}
	return nil
}

// Apply executes an op stream against a file system, creating files on
// demand, and returns counts of applied ops. Errors abort the run:
// generated workloads are supposed to be applicable by construction.
func Apply(fs *lfs.FS, ops []Op) (applied int, err error) {
	a := NewApplier(fs)
	for _, op := range ops {
		if err := a.Apply(op); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// HotCold generates the classic skewed write workload: HotFraction of
// the files receive AccessSkew of the writes.
type HotCold struct {
	// Files is the file population size.
	Files int
	// FileBlocks is each file's size in blocks.
	FileBlocks int
	// HotFraction of files are hot (e.g. 0.1).
	HotFraction float64
	// AccessSkew of writes go to hot files (e.g. 0.9).
	AccessSkew float64
	// Writes is the number of write ops to generate.
	Writes int
	// SyncEvery inserts a sync after this many writes.
	SyncEvery int
}

// DefaultHotCold returns the 10/90 configuration used by the paper's
// LFS reference.
func DefaultHotCold(files, writes int) HotCold {
	return HotCold{
		Files:       files,
		FileBlocks:  4,
		HotFraction: 0.1,
		AccessSkew:  0.9,
		Writes:      writes,
		SyncEvery:   8,
	}
}

// Generate produces the op stream. It panics with a diagnostic on a
// nonsensical configuration (non-positive population or file size,
// negative counts, fractions outside [0,1]) — a typo'd workload should
// fail loudly, not quietly measure something else.
func (w HotCold) Generate(rng *sim.RNG) []Op {
	if w.Files <= 0 || w.FileBlocks <= 0 || w.Writes < 0 || w.SyncEvery < 0 ||
		w.HotFraction < 0 || w.HotFraction > 1 || w.AccessSkew < 0 || w.AccessSkew > 1 {
		panic(fmt.Sprintf("workload: bad HotCold %+v", w))
	}
	var ops []Op
	for i := 0; i < w.Files; i++ {
		ops = append(ops, Op{Kind: OpCreate, Name: hcName(i), Affinity: 0})
	}
	// At least one file is hot; and when the hot set covers the whole
	// population (HotFraction ≈ 1, or a single file), every write is
	// routed hot — there is no cold population left to draw from.
	hot := int(float64(w.Files) * w.HotFraction)
	if hot < 1 {
		hot = 1
	}
	if hot > w.Files {
		hot = w.Files
	}
	blockBytes := device.DataBytes
	for i := 0; i < w.Writes; i++ {
		var file int
		if toHot := rng.Float64() < w.AccessSkew; toHot || hot == w.Files {
			file = rng.Intn(hot)
		} else {
			file = hot + rng.Intn(w.Files-hot)
		}
		blk := rng.Intn(w.FileBlocks)
		data := make([]byte, blockBytes)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		ops = append(ops, Op{
			Kind:   OpWrite,
			Name:   hcName(file),
			Offset: uint64(blk * blockBytes),
			Data:   data,
		})
		if w.SyncEvery > 0 && (i+1)%w.SyncEvery == 0 {
			ops = append(ops, Op{Kind: OpSync})
		}
	}
	ops = append(ops, Op{Kind: OpSync})
	return ops
}

func hcName(i int) string { return fmt.Sprintf("hc-%04d", i) }

// Snapshot generates the database-snapshot pattern: a set of table
// files receives continuous updates; periodically the current state is
// copied into snapshot files which are immediately heated.
type Snapshot struct {
	// Tables is the number of live table files.
	Tables int
	// TableBlocks is each table's size in blocks.
	TableBlocks int
	// Updates is the total number of record updates.
	Updates int
	// SnapshotEvery takes a snapshot after this many updates.
	SnapshotEvery int
	// Affinity is the heat-affinity class assigned to snapshots.
	Affinity uint8
}

// DefaultSnapshot returns a moderate audit workload.
func DefaultSnapshot(updates int) Snapshot {
	return Snapshot{
		Tables:        4,
		TableBlocks:   6,
		Updates:       updates,
		SnapshotEvery: 50,
		Affinity:      1,
	}
}

// Generate produces the op stream. Like the other generators it
// panics with a diagnostic on a nonsensical configuration instead of
// emitting a malformed stream.
func (w Snapshot) Generate(rng *sim.RNG) []Op {
	if w.Tables <= 0 || w.TableBlocks <= 0 || w.Updates < 0 || w.SnapshotEvery < 0 {
		panic(fmt.Sprintf("workload: bad Snapshot %+v", w))
	}
	var ops []Op
	for t := 0; t < w.Tables; t++ {
		ops = append(ops, Op{Kind: OpCreate, Name: snapTable(t), Affinity: 0})
	}
	snapID := 0
	for u := 0; u < w.Updates; u++ {
		t := rng.Intn(w.Tables)
		blk := rng.Intn(w.TableBlocks)
		data := make([]byte, device.DataBytes)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		ops = append(ops, Op{
			Kind:   OpWrite,
			Name:   snapTable(t),
			Offset: uint64(blk * device.DataBytes),
			Data:   data,
		})
		if w.SnapshotEvery > 0 && (u+1)%w.SnapshotEvery == 0 {
			ops = append(ops, Op{Kind: OpSync})
			// A snapshot copies each table into a frozen file. The
			// generator emits creates+writes+heat; content here is a
			// marker (the experiment measures placement, not content).
			for t := 0; t < w.Tables; t++ {
				name := fmt.Sprintf("snap-%03d-t%d", snapID, t)
				ops = append(ops, Op{Kind: OpCreate, Name: name, Affinity: w.Affinity})
				data := make([]byte, w.TableBlocks*device.DataBytes)
				for j := range data {
					data[j] = byte(rng.Uint64())
				}
				ops = append(ops,
					Op{Kind: OpWrite, Name: name, Data: data},
					Op{Kind: OpHeat, Name: name},
				)
			}
			snapID++
		}
	}
	ops = append(ops, Op{Kind: OpSync})
	return ops
}

func snapTable(t int) string { return fmt.Sprintf("table-%d", t) }

// ComplianceIngest generates a document-retention stream: documents
// arrive, are written once, and heated immediately; each document
// belongs to an expiry class that becomes its heat affinity (§8: "We
// would advocate data to be segregated by expiry date").
type ComplianceIngest struct {
	// Documents is the number of documents to ingest.
	Documents int
	// MaxBlocks bounds document size.
	MaxBlocks int
	// Classes is the number of expiry classes.
	Classes int
}

// Generate produces the op stream.
func (w ComplianceIngest) Generate(rng *sim.RNG) []Op {
	if w.Documents <= 0 || w.MaxBlocks <= 0 || w.Classes <= 0 {
		panic(fmt.Sprintf("workload: bad ComplianceIngest %+v", w))
	}
	var ops []Op
	for d := 0; d < w.Documents; d++ {
		class := uint8(rng.Intn(w.Classes))
		name := fmt.Sprintf("doc-%05d", d)
		blocks := 1 + rng.Intn(w.MaxBlocks)
		data := make([]byte, blocks*device.DataBytes)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		ops = append(ops,
			Op{Kind: OpCreate, Name: name, Affinity: class},
			Op{Kind: OpWrite, Name: name, Data: data},
			Op{Kind: OpHeat, Name: name},
		)
	}
	ops = append(ops, Op{Kind: OpSync})
	return ops
}
