// Package workload provides the synthetic workloads driving the
// performance experiments: the hot/cold write mix conventional in LFS
// evaluation [42], the database-snapshot pattern the paper's
// introduction motivates ("most data bases support a snapshot
// operation that freezes the contents of the data base"), and a
// compliance-ingest stream with per-retention-class affinity (§8
// "data to be segregated by expiry date").
package workload

import (
	"fmt"

	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/sim"
)

// Op is one file-system operation produced by a generator.
type Op struct {
	Kind OpKind
	// Name is the target file.
	Name string
	// Affinity is the heat-affinity class for creates.
	Affinity uint8
	// Offset, Data describe writes.
	Offset uint64
	Data   []byte
}

// OpKind enumerates generated operations.
type OpKind int

// Operation kinds.
const (
	OpCreate OpKind = iota
	OpWrite
	OpDelete
	OpHeat
	OpSync
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	case OpHeat:
		return "heat"
	case OpSync:
		return "sync"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Apply executes an op stream against a file system, creating files on
// demand, and returns counts of applied ops. Errors abort the run:
// generated workloads are supposed to be applicable by construction.
func Apply(fs *lfs.FS, ops []Op) (applied int, err error) {
	inos := make(map[string]lfs.Ino)
	for _, op := range ops {
		switch op.Kind {
		case OpCreate:
			ino, cerr := fs.Create(op.Name, op.Affinity)
			if cerr != nil {
				return applied, fmt.Errorf("workload: create %s: %w", op.Name, cerr)
			}
			inos[op.Name] = ino
		case OpWrite:
			ino, ok := inos[op.Name]
			if !ok {
				var lerr error
				ino, lerr = fs.Lookup(op.Name)
				if lerr != nil {
					return applied, lerr
				}
				inos[op.Name] = ino
			}
			if werr := fs.Write(ino, op.Offset, op.Data); werr != nil {
				return applied, fmt.Errorf("workload: write %s: %w", op.Name, werr)
			}
		case OpDelete:
			if derr := fs.Delete(op.Name); derr != nil {
				return applied, fmt.Errorf("workload: delete %s: %w", op.Name, derr)
			}
			delete(inos, op.Name)
		case OpHeat:
			if _, herr := fs.HeatFile(op.Name); herr != nil {
				return applied, fmt.Errorf("workload: heat %s: %w", op.Name, herr)
			}
		case OpSync:
			if serr := fs.Sync(); serr != nil {
				return applied, serr
			}
		}
		applied++
	}
	return applied, nil
}

// HotCold generates the classic skewed write workload: HotFraction of
// the files receive AccessSkew of the writes.
type HotCold struct {
	// Files is the file population size.
	Files int
	// FileBlocks is each file's size in blocks.
	FileBlocks int
	// HotFraction of files are hot (e.g. 0.1).
	HotFraction float64
	// AccessSkew of writes go to hot files (e.g. 0.9).
	AccessSkew float64
	// Writes is the number of write ops to generate.
	Writes int
	// SyncEvery inserts a sync after this many writes.
	SyncEvery int
}

// DefaultHotCold returns the 10/90 configuration used by the paper's
// LFS reference.
func DefaultHotCold(files, writes int) HotCold {
	return HotCold{
		Files:       files,
		FileBlocks:  4,
		HotFraction: 0.1,
		AccessSkew:  0.9,
		Writes:      writes,
		SyncEvery:   8,
	}
}

// Generate produces the op stream.
func (w HotCold) Generate(rng *sim.RNG) []Op {
	if w.Files <= 0 || w.Writes < 0 {
		panic(fmt.Sprintf("workload: bad HotCold %+v", w))
	}
	var ops []Op
	for i := 0; i < w.Files; i++ {
		ops = append(ops, Op{Kind: OpCreate, Name: hcName(i), Affinity: 0})
	}
	hot := int(float64(w.Files) * w.HotFraction)
	if hot < 1 {
		hot = 1
	}
	blockBytes := device.DataBytes
	for i := 0; i < w.Writes; i++ {
		var file int
		if rng.Float64() < w.AccessSkew {
			file = rng.Intn(hot)
		} else {
			file = hot + rng.Intn(w.Files-hot)
		}
		blk := rng.Intn(w.FileBlocks)
		data := make([]byte, blockBytes)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		ops = append(ops, Op{
			Kind:   OpWrite,
			Name:   hcName(file),
			Offset: uint64(blk * blockBytes),
			Data:   data,
		})
		if w.SyncEvery > 0 && (i+1)%w.SyncEvery == 0 {
			ops = append(ops, Op{Kind: OpSync})
		}
	}
	ops = append(ops, Op{Kind: OpSync})
	return ops
}

func hcName(i int) string { return fmt.Sprintf("hc-%04d", i) }

// Snapshot generates the database-snapshot pattern: a set of table
// files receives continuous updates; periodically the current state is
// copied into snapshot files which are immediately heated.
type Snapshot struct {
	// Tables is the number of live table files.
	Tables int
	// TableBlocks is each table's size in blocks.
	TableBlocks int
	// Updates is the total number of record updates.
	Updates int
	// SnapshotEvery takes a snapshot after this many updates.
	SnapshotEvery int
	// Affinity is the heat-affinity class assigned to snapshots.
	Affinity uint8
}

// DefaultSnapshot returns a moderate audit workload.
func DefaultSnapshot(updates int) Snapshot {
	return Snapshot{
		Tables:        4,
		TableBlocks:   6,
		Updates:       updates,
		SnapshotEvery: 50,
		Affinity:      1,
	}
}

// Generate produces the op stream.
func (w Snapshot) Generate(rng *sim.RNG) []Op {
	var ops []Op
	for t := 0; t < w.Tables; t++ {
		ops = append(ops, Op{Kind: OpCreate, Name: snapTable(t), Affinity: 0})
	}
	snapID := 0
	for u := 0; u < w.Updates; u++ {
		t := rng.Intn(w.Tables)
		blk := rng.Intn(w.TableBlocks)
		data := make([]byte, device.DataBytes)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		ops = append(ops, Op{
			Kind:   OpWrite,
			Name:   snapTable(t),
			Offset: uint64(blk * device.DataBytes),
			Data:   data,
		})
		if w.SnapshotEvery > 0 && (u+1)%w.SnapshotEvery == 0 {
			ops = append(ops, Op{Kind: OpSync})
			// A snapshot copies each table into a frozen file. The
			// generator emits creates+writes+heat; content here is a
			// marker (the experiment measures placement, not content).
			for t := 0; t < w.Tables; t++ {
				name := fmt.Sprintf("snap-%03d-t%d", snapID, t)
				ops = append(ops, Op{Kind: OpCreate, Name: name, Affinity: w.Affinity})
				data := make([]byte, w.TableBlocks*device.DataBytes)
				for j := range data {
					data[j] = byte(rng.Uint64())
				}
				ops = append(ops,
					Op{Kind: OpWrite, Name: name, Data: data},
					Op{Kind: OpHeat, Name: name},
				)
			}
			snapID++
		}
	}
	ops = append(ops, Op{Kind: OpSync})
	return ops
}

func snapTable(t int) string { return fmt.Sprintf("table-%d", t) }

// ComplianceIngest generates a document-retention stream: documents
// arrive, are written once, and heated immediately; each document
// belongs to an expiry class that becomes its heat affinity (§8: "We
// would advocate data to be segregated by expiry date").
type ComplianceIngest struct {
	// Documents is the number of documents to ingest.
	Documents int
	// MaxBlocks bounds document size.
	MaxBlocks int
	// Classes is the number of expiry classes.
	Classes int
}

// Generate produces the op stream.
func (w ComplianceIngest) Generate(rng *sim.RNG) []Op {
	if w.Documents <= 0 || w.MaxBlocks <= 0 || w.Classes <= 0 {
		panic(fmt.Sprintf("workload: bad ComplianceIngest %+v", w))
	}
	var ops []Op
	for d := 0; d < w.Documents; d++ {
		class := uint8(rng.Intn(w.Classes))
		name := fmt.Sprintf("doc-%05d", d)
		blocks := 1 + rng.Intn(w.MaxBlocks)
		data := make([]byte, blocks*device.DataBytes)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		ops = append(ops,
			Op{Kind: OpCreate, Name: name, Affinity: class},
			Op{Kind: OpWrite, Name: name, Data: data},
			Op{Kind: OpHeat, Name: name},
		)
	}
	ops = append(ops, Op{Kind: OpSync})
	return ops
}
