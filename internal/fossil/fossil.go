// Package fossil implements a fossilized index [57] over the SERO
// store, per §4.2 of the paper: a tree built from the root downward,
// where the key's hash completely determines the slot and descent
// path, and where a node whose slots have all been filled becomes
// read-only. On a conventional system that requires copying the full
// node to a WORM device; on a SERO device "a completely filled node is
// simply heated" — no copy.
//
// The index maps 32-byte keys (hashes of the indexed records) to
// 64-bit values (e.g. physical block addresses). §5.2 also proposes it
// as rm-protection for directories.
package fossil

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sero/internal/core"
	"sero/internal/device"
)

// Node layout. Each node lives in block 1 of a 2-block line (block 0
// receives the hash when the node fills and is heated).
const (
	nodeMagic = "FIDX"
	// Branch is the tree fan-out; descent consumes branchBits bits of
	// the key hash per level.
	Branch     = 4
	branchBits = 2
	// SlotsPerNode is the number of key/value entries a node holds.
	SlotsPerNode = 10
	// header: magic(4) level(2) count(2) = 8; children: Branch*8;
	// entries: Slots*(32+8).
	nodeHeaderBytes = 8
)

// Entry is one key→value binding.
type Entry struct {
	Key   [sha256.Size]byte
	Value uint64
}

// node is the in-memory image of an index node.
type node struct {
	line     uint64 // line start (hash block); node data at line+1
	level    uint16
	entries  []Entry
	children [Branch]uint64 // line starts of children; 0 = none
	heated   bool
}

// Index is a fossilized index.
type Index struct {
	st    *core.Store
	root  *node
	nodes map[uint64]*node // by line start

	stats Stats
}

// Stats counts index activity.
type Stats struct {
	Inserts     uint64
	NodesHeated uint64
	NodesTotal  uint64
}

// Index errors.
var (
	// ErrKeyNotFound reports a missing key.
	ErrKeyNotFound = errors.New("fossil: key not found")
	// ErrDuplicate reports an insert of an existing key. A fossilized
	// index is append-only: bindings are never updated.
	ErrDuplicate = errors.New("fossil: key already bound")
)

// New creates an index with a fresh root node.
func New(st *core.Store) (*Index, error) {
	idx := &Index{st: st, nodes: make(map[uint64]*node)}
	root, err := idx.newNode(0)
	if err != nil {
		return nil, err
	}
	idx.root = root
	return idx, nil
}

// Stats returns a copy of the counters.
func (idx *Index) Stats() Stats { return idx.stats }

// newNode allocates a 2-block line for a node and writes its empty
// image.
func (idx *Index) newNode(level uint16) (*node, error) {
	start, err := idx.st.AllocLine(1) // 2 blocks
	if err != nil {
		return nil, err
	}
	n := &node{line: start, level: level}
	if err := idx.writeNode(n); err != nil {
		return nil, err
	}
	idx.nodes[start] = n
	idx.stats.NodesTotal++
	return n, nil
}

// marshalNode encodes a node into one block.
func marshalNode(n *node) []byte {
	buf := make([]byte, device.DataBytes)
	copy(buf[0:4], nodeMagic)
	binary.BigEndian.PutUint16(buf[4:6], n.level)
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(n.entries)))
	off := nodeHeaderBytes
	for _, c := range n.children {
		binary.BigEndian.PutUint64(buf[off:off+8], c)
		off += 8
	}
	for _, e := range n.entries {
		copy(buf[off:off+sha256.Size], e.Key[:])
		off += sha256.Size
		binary.BigEndian.PutUint64(buf[off:off+8], e.Value)
		off += 8
	}
	return buf
}

// unmarshalNode decodes a node block.
func unmarshalNode(line uint64, buf []byte) (*node, error) {
	if len(buf) != device.DataBytes || string(buf[0:4]) != nodeMagic {
		return nil, errors.New("fossil: not an index node")
	}
	n := &node{line: line}
	n.level = binary.BigEndian.Uint16(buf[4:6])
	count := int(binary.BigEndian.Uint16(buf[6:8]))
	if count > SlotsPerNode {
		return nil, fmt.Errorf("fossil: node with %d entries", count)
	}
	off := nodeHeaderBytes
	for i := range n.children {
		n.children[i] = binary.BigEndian.Uint64(buf[off : off+8])
		off += 8
	}
	for i := 0; i < count; i++ {
		var e Entry
		copy(e.Key[:], buf[off:off+sha256.Size])
		off += sha256.Size
		e.Value = binary.BigEndian.Uint64(buf[off : off+8])
		off += 8
		n.entries = append(n.entries, e)
	}
	return n, nil
}

// writeNode rewrites the node's block (WMRM until heated).
func (idx *Index) writeNode(n *node) error {
	if n.heated {
		return fmt.Errorf("fossil: rewriting heated node at %d", n.line)
	}
	return idx.st.Write(n.line+1, marshalNode(n))
}

// branchAt extracts the branch index consumed at the given level from
// the key hash.
func branchAt(key [sha256.Size]byte, level uint16) int {
	bitOff := int(level) * branchBits
	byteIdx := bitOff / 8
	if byteIdx >= sha256.Size {
		byteIdx %= sha256.Size // wrap for absurdly deep trees
	}
	shift := 8 - branchBits - (bitOff % 8)
	return int(key[byteIdx]>>shift) & (Branch - 1)
}

// Insert binds key→value. The path is fully determined by the key (a
// history-independent structure: layout reveals nothing about
// insertion order beyond node fill levels). When a node fills, its
// children are allocated, the node is rewritten with their addresses,
// and the node's line is heated — it is now immutable evidence.
func (idx *Index) Insert(key [sha256.Size]byte, value uint64) error {
	idx.stats.Inserts++
	n := idx.root
	for {
		// Duplicate check along the path.
		for _, e := range n.entries {
			if e.Key == key {
				return fmt.Errorf("%w: %x", ErrDuplicate, key[:8])
			}
		}
		if !n.heated && len(n.entries) < SlotsPerNode {
			n.entries = append(n.entries, Entry{Key: key, Value: value})
			if err := idx.writeNode(n); err != nil {
				return err
			}
			if len(n.entries) == SlotsPerNode {
				return idx.freeze(n)
			}
			return nil
		}
		// Node full (and frozen): descend.
		b := branchAt(key, n.level)
		childLine := n.children[b]
		if childLine == 0 {
			return fmt.Errorf("fossil: heated node at %d lacks child %d", n.line, b)
		}
		child, ok := idx.nodes[childLine]
		if !ok {
			return fmt.Errorf("fossil: dangling child line %d", childLine)
		}
		n = child
	}
}

// freeze allocates the node's children, rewrites it with their
// addresses, and heats its line.
func (idx *Index) freeze(n *node) error {
	for b := 0; b < Branch; b++ {
		child, err := idx.newNode(n.level + 1)
		if err != nil {
			return err
		}
		n.children[b] = child.line
	}
	if err := idx.writeNode(n); err != nil {
		return err
	}
	if _, err := idx.st.Heat(n.line, 1); err != nil {
		return err
	}
	n.heated = true
	idx.stats.NodesHeated++
	return nil
}

// Lookup resolves a key.
func (idx *Index) Lookup(key [sha256.Size]byte) (uint64, error) {
	n := idx.root
	for {
		for _, e := range n.entries {
			if e.Key == key {
				return e.Value, nil
			}
		}
		b := branchAt(key, n.level)
		childLine := n.children[b]
		if childLine == 0 {
			return 0, fmt.Errorf("%w: %x", ErrKeyNotFound, key[:8])
		}
		child, ok := idx.nodes[childLine]
		if !ok {
			return 0, fmt.Errorf("fossil: dangling child line %d", childLine)
		}
		n = child
	}
}

// Len returns the number of bound keys.
func (idx *Index) Len() int {
	total := 0
	for _, n := range idx.nodes {
		total += len(n.entries)
	}
	return total
}

// HeatedNodes returns how many nodes have been frozen.
func (idx *Index) HeatedNodes() int { return int(idx.stats.NodesHeated) }

// Verify re-checks every heated node line on the device and confirms
// that every node block still parses and its entries are reachable.
// It returns the device reports for heated nodes.
func (idx *Index) Verify() ([]device.VerifyReport, error) {
	var out []device.VerifyReport
	for line, n := range idx.nodes {
		if !n.heated {
			continue
		}
		rep, err := idx.st.Verify(line)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// Load rebuilds an index from the store by walking node lines from the
// given root line. Used after remount.
func Load(st *core.Store, rootLine uint64) (*Index, error) {
	idx := &Index{st: st, nodes: make(map[uint64]*node)}
	heatedLines := make(map[uint64]bool)
	for _, li := range st.Lines() {
		heatedLines[li.Start] = true
	}
	var walk func(line uint64, level uint16) (*node, error)
	walk = func(line uint64, level uint16) (*node, error) {
		data, err := st.Read(line + 1)
		if err != nil {
			return nil, err
		}
		n, err := unmarshalNode(line, data)
		if err != nil {
			return nil, err
		}
		if n.level != level {
			return nil, fmt.Errorf("fossil: node at %d has level %d, want %d", line, n.level, level)
		}
		n.heated = heatedLines[line]
		idx.nodes[line] = n
		idx.stats.NodesTotal++
		if n.heated {
			idx.stats.NodesHeated++
			for _, c := range n.children {
				if c != 0 {
					if _, err := walk(c, level+1); err != nil {
						return nil, err
					}
				}
			}
		}
		return n, nil
	}
	root, err := walk(rootLine, 0)
	if err != nil {
		return nil, err
	}
	idx.root = root
	return idx, nil
}

// RootLine returns the root node's line start, the handle needed by
// Load.
func (idx *Index) RootLine() uint64 { return idx.root.line }

// KeyOf hashes an arbitrary byte key into the index key space.
func KeyOf(k []byte) [sha256.Size]byte { return sha256.Sum256(k) }
