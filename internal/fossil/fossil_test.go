package fossil

import (
	"errors"
	"fmt"
	"testing"

	"sero/internal/core"
	"sero/internal/device"
	"sero/internal/medium"
)

func testStore(t testing.TB, blocks int) *core.Store {
	t.Helper()
	p := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	p.Medium = mp
	return core.NewStore(device.New(p))
}

func TestInsertLookup(t *testing.T) {
	idx, err := New(testStore(t, 256))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := idx.Insert(KeyOf([]byte{byte(i)}), uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		v, err := idx.Lookup(KeyOf([]byte{byte(i)}))
		if err != nil || v != uint64(100+i) {
			t.Fatalf("key %d: %d %v", i, v, err)
		}
	}
	if idx.Len() != 5 {
		t.Fatalf("len %d", idx.Len())
	}
}

func TestLookupMissing(t *testing.T) {
	idx, err := New(testStore(t, 256))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Lookup(KeyOf([]byte("missing"))); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("err %v", err)
	}
}

func TestDuplicateRejected(t *testing.T) {
	idx, err := New(testStore(t, 256))
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf([]byte("once"))
	if err := idx.Insert(k, 1); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(k, 2); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err %v", err)
	}
	// The original binding survives.
	v, err := idx.Lookup(k)
	if err != nil || v != 1 {
		t.Fatalf("binding changed: %d %v", v, err)
	}
}

func TestNodeFreezesWhenFull(t *testing.T) {
	idx, err := New(testStore(t, 1024))
	if err != nil {
		t.Fatal(err)
	}
	// Exactly SlotsPerNode inserts heat the root.
	for i := 0; i < SlotsPerNode; i++ {
		if err := idx.Insert(KeyOf([]byte{byte(i), 0xAA}), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if idx.HeatedNodes() != 1 {
		t.Fatalf("heated nodes %d, want 1 (root)", idx.HeatedNodes())
	}
	// The heated node verifies clean on the device.
	reps, err := idx.Verify()
	if err != nil || len(reps) != 1 || !reps[0].OK {
		t.Fatalf("verify %v %v", reps, err)
	}
	// Further inserts descend into children.
	if err := idx.Insert(KeyOf([]byte("overflow")), 999); err != nil {
		t.Fatal(err)
	}
	v, err := idx.Lookup(KeyOf([]byte("overflow")))
	if err != nil || v != 999 {
		t.Fatalf("descended insert lost: %v", err)
	}
}

func TestManyInsertsAllRetrievable(t *testing.T) {
	idx, err := New(testStore(t, 8192))
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		if err := idx.Insert(KeyOf([]byte(fmt.Sprintf("key-%d", i))), uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := idx.Lookup(KeyOf([]byte(fmt.Sprintf("key-%d", i))))
		if err != nil || v != uint64(i) {
			t.Fatalf("lookup %d: %d %v", i, v, err)
		}
	}
	if idx.Len() != n {
		t.Fatalf("len %d", idx.Len())
	}
	if idx.HeatedNodes() == 0 {
		t.Fatal("no nodes heated after 300 inserts")
	}
	reps, err := idx.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reps {
		if !r.OK {
			t.Fatalf("heated node tampered: %+v", r)
		}
	}
}

func TestLoadRebuildsIndex(t *testing.T) {
	st := testStore(t, 8192)
	idx, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	const n = 80
	for i := 0; i < n; i++ {
		if err := idx.Insert(KeyOf([]byte{byte(i), byte(i * 3)}), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rootLine := idx.RootLine()

	idx2, err := Load(st, rootLine)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := idx2.Lookup(KeyOf([]byte{byte(i), byte(i * 3)}))
		if err != nil || v != uint64(i) {
			t.Fatalf("lookup after load %d: %d %v", i, v, err)
		}
	}
	if idx2.HeatedNodes() != idx.HeatedNodes() {
		t.Fatalf("heated nodes %d vs %d", idx2.HeatedNodes(), idx.HeatedNodes())
	}
	// The reloaded index keeps accepting inserts.
	if err := idx2.Insert(KeyOf([]byte("post-load")), 777); err != nil {
		t.Fatal(err)
	}
}

func TestHeatedNodeTamperDetected(t *testing.T) {
	st := testStore(t, 1024)
	idx, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < SlotsPerNode; i++ {
		if err := idx.Insert(KeyOf([]byte{byte(i)}), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Forge the heated root node's block.
	line := idx.RootLine()
	forged := marshalNode(&node{line: line, level: 0})
	bits := device.ForgedFrameBits(line+1, forged)
	base := int(line+1) * device.DotsPerBlock
	med := st.Device().(*device.Device).Medium()
	for i, b := range bits {
		med.MWB(base+i, b)
	}
	reps, err := idx.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].OK {
		t.Fatal("forged node not detected")
	}
}

func TestBranchAtDeterministic(t *testing.T) {
	k := KeyOf([]byte("determinism"))
	for level := uint16(0); level < 20; level++ {
		b1 := branchAt(k, level)
		b2 := branchAt(k, level)
		if b1 != b2 || b1 < 0 || b1 >= Branch {
			t.Fatalf("level %d branch %d/%d", level, b1, b2)
		}
	}
}

func TestNodeMarshalRoundTrip(t *testing.T) {
	n := &node{line: 42, level: 3}
	for i := 0; i < 7; i++ {
		n.entries = append(n.entries, Entry{Key: KeyOf([]byte{byte(i)}), Value: uint64(i * 2)})
	}
	n.children = [Branch]uint64{10, 0, 30, 0}
	got, err := unmarshalNode(42, marshalNode(n))
	if err != nil {
		t.Fatal(err)
	}
	if got.level != 3 || len(got.entries) != 7 || got.children != n.children {
		t.Fatalf("round trip %+v", got)
	}
	for i := range n.entries {
		if got.entries[i] != n.entries[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestUnmarshalNodeRejectsGarbage(t *testing.T) {
	if _, err := unmarshalNode(0, make([]byte, 10)); err == nil {
		t.Fatal("short node parsed")
	}
	if _, err := unmarshalNode(0, make([]byte, device.DataBytes)); err == nil {
		t.Fatal("zero node parsed")
	}
}
