package ffs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"sero/internal/device"
	"sero/internal/medium"
)

func testFS(t testing.TB, blocks int, aware bool) *FS {
	t.Helper()
	dp := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	dp.Medium = mp
	fs, err := New(device.New(dp), Params{GroupBlocks: 16, HeatAware: aware})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func payload(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*11)
	}
	return b
}

func TestCreateWriteRead(t *testing.T) {
	fs := testFS(t, 256, true)
	if err := fs.Create("a", 0); err != nil {
		t.Fatal(err)
	}
	data := payload(1, 3*device.DataBytes+17)
	if err := fs.WriteFile("a", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("a")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestWriteInPlaceKeepsBlocks(t *testing.T) {
	// Defining FFS property: a rewrite of the same size reuses the
	// same physical blocks (no log).
	fs := testFS(t, 256, true)
	if err := fs.Create("f", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", payload(1, 2*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	before := append([]uint64(nil), fs.files["f"].inode.Blocks...)
	if err := fs.WriteFile("f", payload(9, 2*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	after := fs.files["f"].inode.Blocks
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("rewrite moved blocks — not update-in-place")
		}
	}
}

func TestShrinkAndGrow(t *testing.T) {
	fs := testFS(t, 256, true)
	if err := fs.Create("f", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", payload(1, 5*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", payload(2, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil || len(got) != device.DataBytes {
		t.Fatalf("shrink: %d bytes %v", len(got), err)
	}
	if fs.Stats().BlocksFreed != 4 {
		t.Fatalf("freed %d", fs.Stats().BlocksFreed)
	}
}

func TestDeleteFrees(t *testing.T) {
	fs := testFS(t, 256, true)
	if err := fs.Create("gone", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("gone", payload(1, 4*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, g := range fs.Groups() {
		live += g.LiveBlocks
	}
	if live != 0 {
		t.Fatalf("live after delete %d", live)
	}
	if err := fs.Delete("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestFilesClusterInHomeGroup(t *testing.T) {
	fs := testFS(t, 512, true)
	if err := fs.Create("f", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", payload(1, 6*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	home := fs.files["f"].groupID
	for _, pba := range fs.files["f"].inode.Blocks {
		if int(pba)/fs.p.GroupBlocks != home {
			t.Fatal("file blocks scattered outside home group")
		}
	}
}

func TestHeatVerifyAndFreeze(t *testing.T) {
	fs := testFS(t, 512, true)
	if err := fs.Create("ev", 1); err != nil {
		t.Fatal(err)
	}
	data := payload(3, 3*device.DataBytes)
	if err := fs.WriteFile("ev", data); err != nil {
		t.Fatal(err)
	}
	res, err := fs.HeatFile("ev")
	if err != nil {
		t.Fatal(err)
	}
	if res.Line.Blocks() != 8 { // hash+inode+3 data -> 8
		t.Fatalf("line %d blocks", res.Line.Blocks())
	}
	got, err := fs.ReadFile("ev")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after heat: %v", err)
	}
	rep, err := fs.VerifyFile("ev")
	if err != nil || !rep.OK {
		t.Fatalf("verify: %+v %v", rep, err)
	}
	if err := fs.WriteFile("ev", data); !errors.Is(err, ErrFileHeated) {
		t.Fatalf("write to heated: %v", err)
	}
	if err := fs.Delete("ev"); !errors.Is(err, ErrFileHeated) {
		t.Fatalf("delete heated: %v", err)
	}
	if _, err := fs.HeatFile("ev"); !errors.Is(err, ErrFileHeated) {
		t.Fatalf("double heat: %v", err)
	}
}

func TestHeatDetectsTamper(t *testing.T) {
	fs := testFS(t, 512, true)
	if err := fs.Create("v", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("v", payload(5, 2*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	res, err := fs.HeatFile("v")
	if err != nil {
		t.Fatal(err)
	}
	bits := device.ForgedFrameBits(res.Line.Start+2, payload(0xAA, device.DataBytes))
	base := int(res.Line.Start+2) * device.DotsPerBlock
	med := fs.Device().Medium()
	for i, b := range bits {
		med.MWB(base+i, b)
	}
	rep, err := fs.VerifyFile("v")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("tamper not detected")
	}
}

func buildMixed(t *testing.T, aware bool) *FS {
	t.Helper()
	// 32-block groups: a whole 8-file working set packs into one group
	// with room left for an 8-block line beside it — the regime where
	// oblivious placement welds read-only lines into live groups.
	dp := device.DefaultParams(1024)
	mp := medium.DefaultParams(1024, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	dp.Medium = mp
	fs, err := New(device.New(dp), Params{GroupBlocks: 32, HeatAware: aware})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("f%d", i)
		if err := fs.Create(name, 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(name, payload(byte(i), 3*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i += 2 {
		if _, err := fs.HeatFile(fmt.Sprintf("f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func TestAwareBimodalityPerfect(t *testing.T) {
	fs := buildMixed(t, true)
	if b := fs.Bimodality(); b != 1 {
		t.Fatalf("aware bimodality %g", b)
	}
	// Heat groups hold no live data; data groups hold no heat.
	for _, g := range fs.Groups() {
		if g.HeatGroup && g.LiveBlocks > 0 {
			t.Fatalf("heat group %d holds live data", g.ID)
		}
		if !g.HeatGroup && g.HeatedBlocks > 0 {
			t.Fatalf("data group %d holds heated lines", g.ID)
		}
	}
}

func TestObliviousMixesGroups(t *testing.T) {
	fs := buildMixed(t, false)
	if b := fs.Bimodality(); b >= 1 {
		t.Fatalf("oblivious bimodality %g, expected < 1", b)
	}
	mixed := 0
	for _, g := range fs.Groups() {
		if g.HeatedBlocks > 0 && g.LiveBlocks > 0 {
			mixed++
		}
	}
	if mixed == 0 {
		t.Fatal("no mixed groups under oblivious placement — ablation vacuous")
	}
}

func TestObliviousFragmentsWorse(t *testing.T) {
	aware := buildMixed(t, true)
	obl := buildMixed(t, false)
	if obl.FragmentationIndex() <= aware.FragmentationIndex() {
		t.Fatalf("oblivious fragmentation %g not worse than aware %g",
			obl.FragmentationIndex(), aware.FragmentationIndex())
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	dp := device.DefaultParams(64)
	mp := medium.DefaultParams(64, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	dp.Medium = mp
	dev := device.New(dp)
	if _, err := New(dev, Params{GroupBlocks: 48}); err == nil {
		t.Fatal("non-power-of-two group accepted")
	}
	if _, err := New(dev, Params{GroupBlocks: 64}); err == nil {
		t.Fatal("single-group device accepted")
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs := testFS(t, 256, true)
	if err := fs.Create("x", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("x", 0); !errors.Is(err, ErrExists) {
		t.Fatalf("err %v", err)
	}
	if err := fs.Create("", 0); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestUnknownFileOps(t *testing.T) {
	fs := testFS(t, 256, true)
	if err := fs.WriteFile("ghost", nil); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if _, err := fs.HeatFile("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	if _, err := fs.VerifyFile("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
}
