package ffs

import (
	"fmt"

	"sero/internal/device"
	"sero/internal/lfs"
)

// Heating under FFS: same line layout as the LFS
// ([hash][inode][data...]), but the placement policy is
// group-oriented:
//
//   - Heat-aware: the line goes into a dedicated heat group; the
//     file's old in-place blocks are freed, keeping data groups purely
//     WMRM ("mostly heated clusters and mostly unheated clusters").
//   - Oblivious: the line is carved from the file's home group,
//     permanently welding a read-only region into the middle of a
//     WMRM group; the group's remaining free space fragments around
//     it.

// HeatResult describes a completed heat.
type HeatResult struct {
	Name string
	Line device.LineInfo
}

// HeatFile freezes a file into one heated line.
func (fs *FS) HeatFile(name string) (HeatResult, error) {
	f, ok := fs.files[name]
	if !ok {
		return HeatResult{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if f.inode.Heated() {
		return HeatResult{}, fmt.Errorf("%w: %s", ErrFileHeated, name)
	}
	need := 2 + len(f.inode.Blocks)
	logN := lineExponent(need)
	size := 1 << logN
	if size > fs.p.GroupBlocks {
		return HeatResult{}, fmt.Errorf("ffs: line of %d blocks exceeds group size %d", size, fs.p.GroupBlocks)
	}

	g, off, err := fs.allocLineRun(f, size)
	if err != nil {
		return HeatResult{}, err
	}
	start := g.start + uint64(off)

	// Relocate with final pointers.
	newBlocks := make([]uint64, len(f.inode.Blocks))
	for i := range newBlocks {
		newBlocks[i] = start + 2 + uint64(i)
	}
	frozen := &lfs.Inode{
		Ino:       f.inode.Ino,
		Size:      f.inode.Size,
		Flags:     f.inode.Flags | lfs.FlagHeated,
		Affinity:  f.affinity,
		Blocks:    newBlocks,
		HeatLines: []uint64{start},
	}
	ibuf, err := frozen.Marshal()
	if err != nil {
		return HeatResult{}, err
	}
	if err := fs.dev.MWS(start+1, ibuf); err != nil {
		return HeatResult{}, err
	}
	for i, old := range f.inode.Blocks {
		data, rerr := fs.dev.MRS(old)
		if rerr != nil {
			return HeatResult{}, rerr
		}
		if werr := fs.dev.MWS(newBlocks[i], data); werr != nil {
			return HeatResult{}, werr
		}
	}
	zero := make([]byte, device.DataBytes)
	for pba := start + uint64(need); pba < start+uint64(size); pba++ {
		if err := fs.dev.MWS(pba, zero); err != nil {
			return HeatResult{}, err
		}
	}
	li, err := fs.dev.HeatLine(start, logN)
	if err != nil {
		return HeatResult{}, err
	}

	// Free the old in-place blocks; the line's blocks were marked used
	// at carve time and are accounted as heated, not live.
	for _, old := range f.inode.Blocks {
		fs.freeBlock(old)
	}
	g.heatedBlocks += size
	f.inode = frozen
	fs.stats.HeatedFiles++
	return HeatResult{Name: name, Line: li}, nil
}

// allocLineRun finds an aligned free run of size blocks for a heated
// line, per the placement policy.
func (fs *FS) allocLineRun(f *file, size int) (*group, int, error) {
	if fs.p.HeatAware {
		// Existing heat group with room first.
		for _, g := range fs.groups {
			if g.heatGroup {
				if off, ok := findAlignedRun(g, size); ok {
					claimRun(g, off, size, fs)
					return g, off, nil
				}
			}
		}
		// Convert an empty group into a heat group.
		for _, g := range fs.groups {
			if !g.heatGroup && g.liveBlocks == 0 && g.free == len(g.used) {
				g.heatGroup = true
				off, _ := findAlignedRun(g, size)
				claimRun(g, off, size, fs)
				return g, off, nil
			}
		}
		return nil, 0, ErrFull
	}
	// Oblivious: carve from the home group, spilling anywhere.
	candidates := append([]*group{fs.groups[f.groupID]}, fs.groups...)
	for _, g := range candidates {
		if off, ok := findAlignedRun(g, size); ok {
			claimRun(g, off, size, fs)
			return g, off, nil
		}
	}
	return nil, 0, ErrFull
}

// findAlignedRun locates a free run of size blocks aligned to size
// within g.
func findAlignedRun(g *group, size int) (int, bool) {
	for off := 0; off+size <= len(g.used); off += size {
		ok := true
		for i := off; i < off+size; i++ {
			if g.used[i] {
				ok = false
				break
			}
		}
		if ok {
			return off, true
		}
	}
	return 0, false
}

// claimRun marks the run used.
func claimRun(g *group, off, size int, fs *FS) {
	for i := off; i < off+size; i++ {
		g.used[i] = true
	}
	g.free -= size
	fs.stats.BlocksAllocated += uint64(size)
}

// lineExponent returns the smallest logN with 1<<logN >= n, minimum 1.
func lineExponent(n int) uint8 {
	logN := uint8(1)
	for 1<<logN < n {
		logN++
	}
	return logN
}

// VerifyFile checks the heated file's line.
func (fs *FS) VerifyFile(name string) (device.VerifyReport, error) {
	f, ok := fs.files[name]
	if !ok {
		return device.VerifyReport{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if !f.inode.Heated() {
		return device.VerifyReport{}, fmt.Errorf("ffs: file %s is not heated", name)
	}
	return fs.dev.VerifyLine(f.inode.HeatLines[0])
}

// GroupInfo is the exported view of one cylinder group.
type GroupInfo struct {
	ID           int
	FreeBlocks   int
	LiveBlocks   int
	HeatedBlocks int
	Blocks       int
	HeatGroup    bool
	// LargestFreeRun measures intra-group fragmentation.
	LargestFreeRun int
}

// Groups snapshots the group table.
func (fs *FS) Groups() []GroupInfo {
	out := make([]GroupInfo, 0, len(fs.groups))
	for _, g := range fs.groups {
		gi := GroupInfo{
			ID:           g.id,
			FreeBlocks:   g.free,
			LiveBlocks:   g.liveBlocks,
			HeatedBlocks: g.heatedBlocks,
			Blocks:       len(g.used),
			HeatGroup:    g.heatGroup,
		}
		run, best := 0, 0
		for _, u := range g.used {
			if u {
				run = 0
				continue
			}
			run++
			if run > best {
				best = run
			}
		}
		gi.LargestFreeRun = best
		out = append(out, gi)
	}
	return out
}

// Bimodality mirrors the LFS metric: the fraction of non-empty groups
// whose used space is almost entirely heated or almost entirely
// unheated.
func (fs *FS) Bimodality() float64 {
	total, modal := 0, 0
	for _, g := range fs.groups {
		used := len(g.used) - g.free
		if used == 0 {
			continue
		}
		total++
		frac := float64(g.heatedBlocks) / float64(used)
		if frac < 0.1 || frac > 0.9 {
			modal++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(modal) / float64(total)
}

// FragmentationIndex measures how shattered the free space of the
// *live data groups* is: 1 − (largest free run in any group holding
// live data)/(group size). Heated lines welded into WMRM groups
// (oblivious placement) consume the contiguous tails those groups
// would otherwise keep, driving the index up; heat-aware placement
// leaves data groups' free space contiguous.
func (fs *FS) FragmentationIndex() float64 {
	largest := 0
	seen := false
	for _, gi := range fs.Groups() {
		if gi.LiveBlocks == 0 {
			continue
		}
		seen = true
		if gi.LargestFreeRun > largest {
			largest = gi.LargestFreeRun
		}
	}
	if !seen {
		return 0
	}
	return 1 - float64(largest)/float64(fs.p.GroupBlocks)
}
