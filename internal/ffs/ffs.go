// Package ffs implements the update-in-place, cluster-based file
// system alternative the paper discusses at the end of §4.1: "the
// Berkeley Fast File System (FFS) uses clusters to pack small files
// with their metadata ... The discussion above on bimodality holds for
// these file systems as well; FFS-like clustering policies should
// maintain mostly heated clusters and mostly unheated clusters."
//
// The implementation is deliberately minimal — enough structure
// (cylinder groups, per-group free bitmaps, in-place rewrites, group
// affinity for related blocks) for the heat-clustering policy to have
// the same meaning as in the LFS, so experiment E12 can compare the
// two designs under identical workloads. It shares the inode wire
// format with package lfs, so heated files are recoverable by the same
// fsck tooling.
package ffs

import (
	"errors"
	"fmt"

	"sero/internal/device"
	"sero/internal/lfs"
)

// Params configures the file system.
type Params struct {
	// GroupBlocks is the cylinder-group size in blocks (power of two).
	GroupBlocks int
	// HeatAware reserves dedicated heat groups and relocates heated
	// lines into them; disabled, lines are carved from the file's own
	// group (the §4.1 baseline).
	HeatAware bool
}

// DefaultParams returns a 64-block-group heat-aware configuration.
func DefaultParams() Params { return Params{GroupBlocks: 64, HeatAware: true} }

// FS errors.
var (
	// ErrNotFound reports an unknown file.
	ErrNotFound = errors.New("ffs: file not found")
	// ErrExists reports a duplicate create.
	ErrExists = errors.New("ffs: file exists")
	// ErrFileHeated reports mutation of a frozen file.
	ErrFileHeated = errors.New("ffs: file is heated (read-only)")
	// ErrFull reports allocation failure.
	ErrFull = errors.New("ffs: no free blocks in any suitable group")
)

// group is one cylinder group.
type group struct {
	id    int
	start uint64
	used  []bool
	free  int
	// heatGroup marks a group dedicated to heated lines.
	heatGroup bool
	// heatedBlocks counts blocks inside heated lines.
	heatedBlocks int
	// liveBlocks counts allocated non-heated blocks.
	liveBlocks int
	// cursor is the next-fit scan position.
	cursor int
}

// file is the in-memory file record.
type file struct {
	name     string
	affinity uint8
	groupID  int // home group
	inode    *lfs.Inode
}

// FS is a simplified FFS over a SERO device.
type FS struct {
	dev    *device.Device
	p      Params
	groups []*group
	files  map[string]*file
	nextIn lfs.Ino

	stats Stats
}

// Stats counts activity.
type Stats struct {
	BlocksAllocated uint64
	BlocksFreed     uint64
	HeatedFiles     uint64
}

// New formats an FFS onto dev.
func New(dev *device.Device, p Params) (*FS, error) {
	if p.GroupBlocks <= 0 {
		p = DefaultParams()
	}
	if p.GroupBlocks&(p.GroupBlocks-1) != 0 {
		return nil, fmt.Errorf("ffs: group size %d not a power of two", p.GroupBlocks)
	}
	n := dev.Blocks() / p.GroupBlocks
	if n < 2 {
		return nil, fmt.Errorf("ffs: device too small for two groups of %d", p.GroupBlocks)
	}
	fs := &FS{
		dev:    dev,
		p:      p,
		files:  make(map[string]*file),
		nextIn: lfs.RootIno + 1,
	}
	for i := 0; i < n; i++ {
		fs.groups = append(fs.groups, &group{
			id:    i,
			start: uint64(i * p.GroupBlocks),
			used:  make([]bool, p.GroupBlocks),
			free:  p.GroupBlocks,
		})
	}
	return fs, nil
}

// Device returns the underlying device.
func (fs *FS) Device() *device.Device { return fs.dev }

// Stats returns a copy of the counters.
func (fs *FS) Stats() Stats { return fs.stats }

// homeGroup picks the home group for a new file. FFS clusters files of
// one directory into the same cylinder group; with a single root
// directory that means packing groups in order until they run low,
// then moving on (the spread-directories half of the heuristic has no
// work to do here).
func (fs *FS) homeGroup() *group {
	const lowWater = 4 // leave room for a few blocks before moving on
	for _, g := range fs.groups {
		if g.heatGroup {
			continue
		}
		if g.free >= lowWater {
			return g
		}
	}
	// Everything is nearly full: take whatever has any space.
	for _, g := range fs.groups {
		if !g.heatGroup && g.free > 0 {
			return g
		}
	}
	return nil
}

// Create makes an empty file with a home group.
func (fs *FS) Create(name string, affinity uint8) error {
	if name == "" {
		return errors.New("ffs: empty name")
	}
	if _, ok := fs.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	g := fs.homeGroup()
	if g == nil {
		return ErrFull
	}
	fs.files[name] = &file{
		name:     name,
		affinity: affinity,
		groupID:  g.id,
		inode:    &lfs.Inode{Ino: fs.nextIn, Affinity: affinity},
	}
	fs.nextIn++
	return nil
}

// allocInGroup takes one free block from g, preferring proximity to
// the cursor (next-fit: FFS's rotational-position optimisation,
// degenerated for a seek model without rotation).
func (fs *FS) allocInGroup(g *group) (uint64, bool) {
	if g.free == 0 {
		return 0, false
	}
	for i := 0; i < len(g.used); i++ {
		idx := (g.cursor + i) % len(g.used)
		if !g.used[idx] {
			g.used[idx] = true
			g.free--
			g.liveBlocks++
			g.cursor = idx + 1
			fs.stats.BlocksAllocated++
			return g.start + uint64(idx), true
		}
	}
	return 0, false
}

// alloc takes a block near the file's home group, spilling to the
// least-loaded group when home is full.
func (fs *FS) alloc(f *file) (uint64, error) {
	if pba, ok := fs.allocInGroup(fs.groups[f.groupID]); ok {
		return pba, nil
	}
	var best *group
	for _, g := range fs.groups {
		if g.heatGroup {
			continue
		}
		if best == nil || g.free > best.free {
			best = g
		}
	}
	if best == nil || best.free == 0 {
		return 0, ErrFull
	}
	pba, _ := fs.allocInGroup(best)
	return pba, nil
}

// freeBlock returns a block to its group.
func (fs *FS) freeBlock(pba uint64) {
	g := fs.groups[int(pba)/fs.p.GroupBlocks]
	idx := int(pba - g.start)
	if g.used[idx] {
		g.used[idx] = false
		g.free++
		g.liveBlocks--
		fs.stats.BlocksFreed++
	}
}

// WriteFile writes the whole file content in place: existing blocks
// are rewritten where they are (the defining FFS behaviour), new
// blocks are allocated near home.
func (fs *FS) WriteFile(name string, data []byte) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if f.inode.Heated() {
		return fmt.Errorf("%w: %s", ErrFileHeated, name)
	}
	need := (len(data) + device.DataBytes - 1) / device.DataBytes
	// Shrink: free surplus blocks.
	for len(f.inode.Blocks) > need {
		last := f.inode.Blocks[len(f.inode.Blocks)-1]
		fs.freeBlock(last)
		f.inode.Blocks = f.inode.Blocks[:len(f.inode.Blocks)-1]
	}
	// Grow: allocate near home.
	for len(f.inode.Blocks) < need {
		pba, err := fs.alloc(f)
		if err != nil {
			return err
		}
		f.inode.Blocks = append(f.inode.Blocks, pba)
	}
	buf := make([]byte, device.DataBytes)
	for i, pba := range f.inode.Blocks {
		for j := range buf {
			buf[j] = 0
		}
		end := (i + 1) * device.DataBytes
		if end > len(data) {
			end = len(data)
		}
		copy(buf, data[i*device.DataBytes:end])
		if err := fs.dev.MWS(pba, buf); err != nil {
			return err
		}
	}
	f.inode.Size = uint64(len(data))
	return nil
}

// ReadFile returns the file content.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	out := make([]byte, 0, f.inode.Size)
	for _, pba := range f.inode.Blocks {
		data, err := fs.dev.MRS(pba)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	if uint64(len(out)) > f.inode.Size {
		out = out[:f.inode.Size]
	}
	return out, nil
}

// Delete removes an unheated file.
func (fs *FS) Delete(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if f.inode.Heated() {
		return fmt.Errorf("%w: %s", ErrFileHeated, name)
	}
	for _, pba := range f.inode.Blocks {
		fs.freeBlock(pba)
	}
	delete(fs.files, name)
	return nil
}
