// Package ecc implements Reed-Solomon error correction over GF(2^8),
// providing the "about 15% sector overhead for the sector header, error
// correction, and cyclic redundancy check" the paper adopts from
// Pozidis et al. [39] (§3).
package ecc

// GF(2^8) with the conventional primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), generator α = 2.
const poly = 0x11D

var (
	expTable [512]byte // doubled so exp lookups avoid a mod
	logTable [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a+b in GF(2^8) (XOR).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a·b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(2^8). It panics on division by zero, which in
// a correctly implemented decoder can only arise from a logic error.
func Div(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. Panics on zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("ecc: inverse of zero in GF(256)")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns α^n for n >= 0.
func Exp(n int) byte { return expTable[n%255] }

// Log returns log_α(a). Panics on zero.
func Log(a byte) int {
	if a == 0 {
		panic("ecc: log of zero in GF(256)")
	}
	return int(logTable[a])
}

// polyEval evaluates polynomial p (coefficients highest-degree first)
// at x using Horner's rule.
func polyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = Mul(y, x) ^ c
	}
	return y
}

// polyMul multiplies two polynomials over GF(2^8), highest-degree
// first.
func polyMul(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= Mul(ca, cb)
		}
	}
	return out
}

// polyScale multiplies polynomial p by scalar s.
func polyScale(p []byte, s byte) []byte {
	out := make([]byte, len(p))
	for i, c := range p {
		out[i] = Mul(c, s)
	}
	return out
}

// polyAdd adds two polynomials (highest-degree first, possibly of
// different length).
func polyAdd(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out[n-len(a):], a)
	for i := 0; i < len(b); i++ {
		out[n-len(b)+i] ^= b[i]
	}
	return out
}
