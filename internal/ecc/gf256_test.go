package ecc

import (
	"testing"
	"testing/quick"
)

func TestMulIdentity(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%d,1) = %d", a, got)
		}
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("Mul(%d,0) = %d", a, got)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a * Inv(a) = %d for a=%d", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1,0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Exp(Log(byte(a))); got != byte(a) {
			t.Fatalf("Exp(Log(%d)) = %d", a, got)
		}
	}
}

func TestExpGeneratesWholeField(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("α generated %d distinct non-zero elements, want 255", len(seen))
	}
}

func TestPolyEvalKnown(t *testing.T) {
	// p(x) = x^2 + 1 at x=2: 4 XOR 1 = 5 in GF(2^8).
	p := []byte{1, 0, 1}
	if got := polyEval(p, 2); got != 5 {
		t.Fatalf("polyEval = %d, want 5", got)
	}
}

func TestPolyMulDegree(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5}
	got := polyMul(a, b)
	if len(got) != 4 {
		t.Fatalf("product length %d, want 4", len(got))
	}
}

func TestPolyAddDifferentLengths(t *testing.T) {
	got := polyAdd([]byte{1}, []byte{2, 3})
	want := []byte{2, 2} // aligned at the low end: [0,1]+[2,3]
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("polyAdd = %v, want %v", got, want)
	}
}

func TestPolyScale(t *testing.T) {
	got := polyScale([]byte{1, 2}, 3)
	if got[0] != Mul(1, 3) || got[1] != Mul(2, 3) {
		t.Fatalf("polyScale = %v", got)
	}
}
