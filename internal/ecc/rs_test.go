package ecc

import (
	"bytes"
	"testing"
	"testing/quick"

	"sero/internal/sim"
)

func TestEncodeDecodeClean(t *testing.T) {
	c := NewCodec(16)
	data := []byte("hello, reed-solomon world")
	cw := c.Encode(data)
	got, n, err := c.Decode(append([]byte(nil), cw...))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("corrected %d on a clean codeword", n)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestCorrectSingleError(t *testing.T) {
	c := NewCodec(16)
	data := []byte("single error correction test")
	for pos := 0; pos < len(data)+16; pos++ {
		cw := c.Encode(data)
		cw[pos] ^= 0x5A
		got, n, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if n != 1 {
			t.Fatalf("pos %d: corrected %d, want 1", pos, n)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pos %d: wrong data", pos)
		}
	}
}

func TestCorrectUpToCapacity(t *testing.T) {
	const parity = 16
	c := NewCodec(parity)
	rng := sim.NewRNG(42)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	for errs := 1; errs <= parity/2; errs++ {
		cw := c.Encode(data)
		perm := rng.Perm(len(cw))
		for i := 0; i < errs; i++ {
			cw[perm[i]] ^= byte(1 + rng.Intn(255))
		}
		got, n, err := c.Decode(cw)
		if err != nil {
			t.Fatalf("%d errors: %v", errs, err)
		}
		if n != errs {
			t.Fatalf("%d errors: corrected %d", errs, n)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%d errors: wrong data", errs)
		}
	}
}

func TestBeyondCapacityFails(t *testing.T) {
	const parity = 8
	c := NewCodec(parity)
	rng := sim.NewRNG(7)
	data := make([]byte, 60)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	// With parity/2+2 errors the decoder must not return success with
	// wrong data silently; it should error (detection beyond t errors
	// is probabilistic for RS, but with this margin failure to correct
	// is certain; mis-decode to a *different valid* codeword would
	// require parity+1 errors).
	fails := 0
	for trial := 0; trial < 50; trial++ {
		cw := c.Encode(data)
		perm := rng.Perm(len(cw))
		for i := 0; i < parity/2+2; i++ {
			cw[perm[i]] ^= byte(1 + rng.Intn(255))
		}
		got, _, err := c.Decode(cw)
		if err != nil {
			fails++
			continue
		}
		if bytes.Equal(got, data) {
			t.Fatal("decoder claims success with correct data beyond capacity")
		}
	}
	if fails == 0 {
		t.Fatal("decoder never reported failure beyond capacity")
	}
}

func TestDecodePropertyRoundTrip(t *testing.T) {
	c := NewCodec(12)
	rng := sim.NewRNG(99)
	f := func(raw []byte, errCount uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > c.MaxData() {
			raw = raw[:c.MaxData()]
		}
		errs := int(errCount) % (12/2 + 1)
		cw := c.Encode(raw)
		perm := rng.Perm(len(cw))
		for i := 0; i < errs; i++ {
			cw[perm[i]] ^= byte(1 + rng.Intn(255))
		}
		got, n, err := c.Decode(cw)
		return err == nil && n == errs && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecPanicsOnBadParity(t *testing.T) {
	for _, parity := range []int{0, -1, 255, 400} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCodec(%d) did not panic", parity)
				}
			}()
			NewCodec(parity)
		}()
	}
}

func TestEncodePanicsOnOversizeData(t *testing.T) {
	c := NewCodec(16)
	defer func() {
		if recover() == nil {
			t.Fatal("Encode of oversize data did not panic")
		}
	}()
	c.Encode(make([]byte, c.MaxData()+1))
}

func TestDecodeRejectsBadLengths(t *testing.T) {
	c := NewCodec(16)
	if _, _, err := c.Decode(make([]byte, 10)); err == nil {
		t.Fatal("short codeword accepted")
	}
	if _, _, err := c.Decode(make([]byte, 300)); err == nil {
		t.Fatal("long codeword accepted")
	}
}

func TestInterleavedRoundTrip(t *testing.T) {
	il := NewInterleaved(16, 4)
	rng := sim.NewRNG(5)
	data := make([]byte, 592-64)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	buf := il.Encode(data)
	if len(buf) != len(data)+il.ParityBytes() {
		t.Fatalf("encoded length %d", len(buf))
	}
	got, n, err := il.Decode(append([]byte(nil), buf...), len(data))
	if err != nil || n != 0 {
		t.Fatalf("clean decode: %v, n=%d", err, n)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("clean round-trip mismatch")
	}
}

func TestInterleavedCorrectsBurst(t *testing.T) {
	il := NewInterleaved(16, 4)
	rng := sim.NewRNG(6)
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	buf := il.Encode(data)
	// A 32-byte burst spreads 8 errors into each of the 4 lanes —
	// exactly at capacity.
	for i := 100; i < 132; i++ {
		buf[i] ^= 0xFF
	}
	got, n, err := il.Decode(buf, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Fatalf("corrected %d, want 32", n)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("burst round-trip mismatch")
	}
}

func TestInterleavedTooLongBurstFails(t *testing.T) {
	il := NewInterleaved(16, 4)
	data := make([]byte, 512)
	buf := il.Encode(data)
	for i := 100; i < 160; i++ { // 60-byte burst: 15 per lane > 8
		buf[i] ^= 0xA5
	}
	if _, _, err := il.Decode(buf, len(data)); err == nil {
		t.Fatal("oversized burst decoded without error")
	}
}

func TestInterleavedRejectsSizeMismatch(t *testing.T) {
	il := NewInterleaved(16, 4)
	if _, _, err := il.Decode(make([]byte, 100), 50); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func BenchmarkRSEncode512(b *testing.B) {
	il := NewInterleaved(16, 4)
	data := make([]byte, 512)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		il.Encode(data)
	}
}

func BenchmarkRSDecodeClean512(b *testing.B) {
	il := NewInterleaved(16, 4)
	data := make([]byte, 512)
	buf := il.Encode(data)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := il.Decode(append([]byte(nil), buf...), 512); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecodeErasuresFullCapacity(t *testing.T) {
	// Known-position losses correct up to parity symbols — double the
	// parity/2 unknown-position budget.
	for _, parity := range []int{1, 2, 3, 4, 8} {
		c := NewCodec(parity)
		rng := sim.NewRNG(uint64(1000 + parity))
		data := make([]byte, 20)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		cw := c.Encode(data)
		perm := rng.Perm(len(cw))
		positions := perm[:parity]
		corrupt := append([]byte(nil), cw...)
		for _, pos := range positions {
			corrupt[pos] = byte(rng.Uint64()) // garbage, not just zero
		}
		got, err := c.DecodeErasures(corrupt, positions)
		if err != nil {
			t.Fatalf("parity %d: %v", parity, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("parity %d: data mismatch", parity)
		}
		if !bytes.Equal(corrupt, cw) {
			t.Fatalf("parity %d: parity bytes not reconstructed", parity)
		}
	}
}

func TestDecodeErasuresProperty(t *testing.T) {
	c := NewCodec(6)
	rng := sim.NewRNG(7)
	f := func(raw []byte, count uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > c.MaxData() {
			raw = raw[:c.MaxData()]
		}
		e := int(count) % (c.Parity() + 1)
		cw := c.Encode(raw)
		perm := rng.Perm(len(cw))
		positions := perm[:e]
		corrupt := append([]byte(nil), cw...)
		for _, pos := range positions {
			corrupt[pos] = byte(rng.Uint64())
		}
		got, err := c.DecodeErasures(corrupt, positions)
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErasuresBeyondCapacity(t *testing.T) {
	c := NewCodec(4)
	data := []byte("erasures beyond parity must fail")
	cw := c.Encode(data)
	positions := []int{0, 5, 9, 13, 17}
	if _, err := c.DecodeErasures(cw, positions); err == nil {
		t.Fatal("decoded 5 erasures with 4 parity bytes")
	}
}

func TestDecodeErasuresRejectsHiddenError(t *testing.T) {
	// A byte corrupted OUTSIDE the declared erasures must not produce
	// a silently wrong decode.
	c := NewCodec(3)
	data := []byte("hidden error detection")
	cw := c.Encode(data)
	cw[2] = 0 // declared erasure
	cw[7] ^= 0xA5
	if _, err := c.DecodeErasures(cw, []int{2}); err == nil {
		t.Fatal("accepted a codeword corrupted outside the erasures")
	}
}

func TestDecodeErasuresRejectsBadPositions(t *testing.T) {
	c := NewCodec(2)
	cw := c.Encode([]byte("positions"))
	if _, err := c.DecodeErasures(append([]byte(nil), cw...), []int{-1}); err == nil {
		t.Fatal("accepted negative position")
	}
	if _, err := c.DecodeErasures(append([]byte(nil), cw...), []int{len(cw)}); err == nil {
		t.Fatal("accepted out-of-range position")
	}
	if _, err := c.DecodeErasures(append([]byte(nil), cw...), []int{1, 1}); err == nil {
		t.Fatal("accepted duplicate positions")
	}
}
