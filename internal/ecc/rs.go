package ecc

import (
	"errors"
	"fmt"
)

// Codec is a systematic Reed-Solomon RS(n, k) codec over GF(2^8) with
// n = k + parity, n <= 255. It corrects up to parity/2 byte errors per
// codeword at unknown positions, or up to parity erasures at known
// positions.
type Codec struct {
	parity int
	gen    []byte // generator polynomial, highest-degree first
}

// ErrTooManyErrors is returned when a codeword is corrupted beyond the
// code's correction capability.
var ErrTooManyErrors = errors.New("ecc: too many errors to correct")

// NewCodec builds a codec with the given number of parity bytes.
func NewCodec(parity int) *Codec {
	if parity <= 0 || parity >= 255 {
		panic(fmt.Sprintf("ecc: invalid parity count %d", parity))
	}
	gen := []byte{1}
	for i := 0; i < parity; i++ {
		gen = polyMul(gen, []byte{1, Exp(i)})
	}
	return &Codec{parity: parity, gen: gen}
}

// Parity returns the number of parity bytes per codeword.
func (c *Codec) Parity() int { return c.parity }

// MaxData returns the maximum data length per codeword.
func (c *Codec) MaxData() int { return 255 - c.parity }

// Encode appends the parity bytes for data and returns data‖parity.
// data is not modified.
func (c *Codec) Encode(data []byte) []byte {
	if len(data) == 0 || len(data) > c.MaxData() {
		panic(fmt.Sprintf("ecc: data length %d outside [1,%d]", len(data), c.MaxData()))
	}
	// Systematic encoding: parity = (data · x^parity) mod gen.
	rem := make([]byte, c.parity)
	for _, d := range data {
		factor := d ^ rem[0]
		copy(rem, rem[1:])
		rem[c.parity-1] = 0
		if factor != 0 {
			for i := 0; i < c.parity; i++ {
				rem[i] ^= Mul(c.gen[i+1], factor)
			}
		}
	}
	out := make([]byte, 0, len(data)+c.parity)
	out = append(out, data...)
	out = append(out, rem...)
	return out
}

// syndromes computes the parity syndromes of a codeword; all-zero means
// no detectable error.
func (c *Codec) syndromes(cw []byte) ([]byte, bool) {
	syn := make([]byte, c.parity)
	clean := true
	for i := 0; i < c.parity; i++ {
		syn[i] = polyEval(cw, Exp(i))
		if syn[i] != 0 {
			clean = false
		}
	}
	return syn, clean
}

// Decode corrects cw in place (data‖parity as produced by Encode) and
// returns the corrected data portion along with the number of byte
// errors fixed. It returns ErrTooManyErrors when correction fails.
func (c *Codec) Decode(cw []byte) (data []byte, corrected int, err error) {
	if len(cw) <= c.parity || len(cw) > 255 {
		return nil, 0, fmt.Errorf("ecc: codeword length %d invalid for parity %d", len(cw), c.parity)
	}
	syn, clean := c.syndromes(cw)
	if clean {
		return cw[:len(cw)-c.parity], 0, nil
	}

	// Berlekamp-Massey: find the error locator polynomial sigma
	// (lowest-degree-first here for convenience).
	sigma := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	var b byte = 1
	for n := 0; n < c.parity; n++ {
		var delta byte = syn[n]
		for i := 1; i <= l; i++ {
			if i < len(sigma) && n-i >= 0 {
				delta ^= Mul(sigma[i], syn[n-i])
			}
		}
		if delta == 0 {
			m++
			continue
		}
		if 2*l <= n {
			tmp := append([]byte(nil), sigma...)
			coef := Div(delta, b)
			shifted := make([]byte, m)
			shifted = append(shifted, polyScale(prev, coef)...)
			sigma = addLow(sigma, shifted)
			l = n + 1 - l
			prev = tmp
			b = delta
			m = 1
		} else {
			coef := Div(delta, b)
			shifted := make([]byte, m)
			shifted = append(shifted, polyScale(prev, coef)...)
			sigma = addLow(sigma, shifted)
			m++
		}
	}
	numErrs := l
	if numErrs*2 > c.parity {
		return nil, 0, ErrTooManyErrors
	}

	// Chien search: roots of sigma give error positions.
	n := len(cw)
	var errPos []int
	for pos := 0; pos < n; pos++ {
		// Position pos (0 = first byte) corresponds to power n-1-pos.
		x := Exp(255 - (n - 1 - pos)) // α^{-(n-1-pos)}
		var v byte
		for i := len(sigma) - 1; i >= 0; i-- {
			v = Mul(v, x) ^ sigma[i]
		}
		if v == 0 {
			errPos = append(errPos, pos)
		}
	}
	if len(errPos) != numErrs {
		return nil, 0, ErrTooManyErrors
	}

	// Forney: error magnitudes from the evaluator polynomial
	// omega = (syn · sigma) mod x^parity (lowest-first).
	omega := make([]byte, c.parity)
	for i := 0; i < c.parity; i++ {
		var v byte
		for j := 0; j <= i && j < len(sigma); j++ {
			v ^= Mul(sigma[j], syn[i-j])
		}
		omega[i] = v
	}
	// Formal derivative of sigma (lowest-first): odd-power terms.
	for _, pos := range errPos {
		xInv := Exp(255 - (n - 1 - pos)) // α^{-power}
		x := Exp(n - 1 - pos)
		var num byte
		for i := len(omega) - 1; i >= 0; i-- {
			num = Mul(num, xInv) ^ omega[i]
		}
		var den byte
		for i := 1; i < len(sigma); i += 2 {
			// derivative term sigma[i] * x^{i-1}, evaluated at xInv
			t := sigma[i]
			for k := 0; k < i-1; k++ {
				t = Mul(t, xInv)
			}
			den ^= t
		}
		if den == 0 {
			return nil, 0, ErrTooManyErrors
		}
		// Forney with fcr=0: e = X_j · Ω(X_j^{-1}) / Λ'(X_j^{-1}).
		mag := Mul(x, Div(num, den))
		cw[pos] ^= mag
	}

	// Verify.
	if _, ok := c.syndromes(cw); !ok {
		return nil, 0, ErrTooManyErrors
	}
	return cw[:len(cw)-c.parity], numErrs, nil
}

// DecodeErasures corrects cw in place given the positions of the lost
// bytes (0-based indexes into cw, data‖parity as produced by Encode)
// and returns the corrected data portion. Because the loss positions
// are known — a failed device in an array, an unreadable sector — the
// code corrects up to parity erasures per codeword, double the
// parity/2 unknown-position errors Decode can fix. The bytes at the
// given positions are reconstructed regardless of their current
// contents; bytes outside the positions must be intact (mixed
// erasure-plus-error patterns are rejected by the final syndrome
// check).
func (c *Codec) DecodeErasures(cw []byte, positions []int) (data []byte, err error) {
	if len(cw) <= c.parity || len(cw) > 255 {
		return nil, fmt.Errorf("ecc: codeword length %d invalid for parity %d", len(cw), c.parity)
	}
	if len(positions) > c.parity {
		return nil, ErrTooManyErrors
	}
	seen := make(map[int]bool, len(positions))
	for _, pos := range positions {
		if pos < 0 || pos >= len(cw) {
			return nil, fmt.Errorf("ecc: erasure position %d outside codeword of %d bytes", pos, len(cw))
		}
		if seen[pos] {
			return nil, fmt.Errorf("ecc: duplicate erasure position %d", pos)
		}
		seen[pos] = true
		cw[pos] = 0
	}
	syn, clean := c.syndromes(cw)
	if clean {
		// The erased bytes really were zero (or nothing was erased).
		return cw[:len(cw)-c.parity], nil
	}
	if len(positions) == 0 {
		return nil, ErrTooManyErrors
	}

	// With the erasures zeroed, the codeword differs from the true one
	// by exactly the erased magnitudes m_i at known locators
	// X_i = α^{n-1-pos_i}, so the syndromes (fcr=0, as in syndromes())
	// give the linear system  s_j = Σ_i m_i · X_i^j.  Solve the first
	// e equations by Gaussian elimination over GF(2^8); the matrix is
	// Vandermonde in the distinct X_i, hence nonsingular.
	n := len(cw)
	e := len(positions)
	mat := make([][]byte, e)
	for j := 0; j < e; j++ {
		row := make([]byte, e+1)
		for i, pos := range positions {
			x := Exp((n - 1 - pos) % 255) // X_i = α^{n-1-pos}
			v := byte(1)
			for k := 0; k < j; k++ {
				v = Mul(v, x)
			}
			row[i] = v
		}
		row[e] = syn[j]
		mat[j] = row
	}
	for col := 0; col < e; col++ {
		pivot := -1
		for r := col; r < e; r++ {
			if mat[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrTooManyErrors
		}
		mat[col], mat[pivot] = mat[pivot], mat[col]
		inv := Div(1, mat[col][col])
		for k := col; k <= e; k++ {
			mat[col][k] = Mul(mat[col][k], inv)
		}
		for r := 0; r < e; r++ {
			if r == col || mat[r][col] == 0 {
				continue
			}
			f := mat[r][col]
			for k := col; k <= e; k++ {
				mat[r][k] ^= Mul(f, mat[col][k])
			}
		}
	}
	for i, pos := range positions {
		cw[pos] = mat[i][e]
	}

	// A codeword that still has nonzero syndromes was corrupted
	// outside the declared erasures.
	if _, ok := c.syndromes(cw); !ok {
		return nil, ErrTooManyErrors
	}
	return cw[:len(cw)-c.parity], nil
}

// addLow adds two lowest-degree-first polynomials.
func addLow(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out, a)
	for i := range b {
		out[i] ^= b[i]
	}
	// trim trailing zeros (highest-degree coefficients)
	for len(out) > 1 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}

// Interleaved is a codec that splits long buffers across several
// interleaved RS codewords so a sector larger than 255 bytes can be
// protected, and burst errors spread across codewords.
type Interleaved struct {
	codec *Codec
	ways  int
}

// NewInterleaved builds a ways-way interleaved codec with the given
// parity per codeword.
func NewInterleaved(parity, ways int) *Interleaved {
	if ways <= 0 {
		panic("ecc: non-positive interleave ways")
	}
	return &Interleaved{codec: NewCodec(parity), ways: ways}
}

// Ways returns the interleave factor.
func (il *Interleaved) Ways() int { return il.ways }

// ParityBytes returns the total parity overhead for any encode.
func (il *Interleaved) ParityBytes() int { return il.ways * il.codec.parity }

// MaxData returns the maximum data length per Encode call.
func (il *Interleaved) MaxData() int { return il.ways * il.codec.MaxData() }

// Encode protects data, returning data‖parity. Bytes are assigned to
// codewords round-robin (byte i goes to codeword i mod ways).
func (il *Interleaved) Encode(data []byte) []byte {
	if len(data) == 0 || len(data) > il.MaxData() {
		panic(fmt.Sprintf("ecc: interleaved data length %d outside [1,%d]", len(data), il.MaxData()))
	}
	parity := make([]byte, 0, il.ParityBytes())
	for w := 0; w < il.ways; w++ {
		var lane []byte
		for i := w; i < len(data); i += il.ways {
			lane = append(lane, data[i])
		}
		if len(lane) == 0 {
			lane = []byte{0}
		}
		cw := il.codec.Encode(lane)
		parity = append(parity, cw[len(lane):]...)
	}
	out := make([]byte, 0, len(data)+len(parity))
	out = append(out, data...)
	out = append(out, parity...)
	return out
}

// Decode corrects buf (as produced by Encode, with dataLen data bytes)
// and returns the corrected data and total byte corrections.
func (il *Interleaved) Decode(buf []byte, dataLen int) (data []byte, corrected int, err error) {
	if dataLen <= 0 || len(buf) != dataLen+il.ParityBytes() {
		return nil, 0, fmt.Errorf("ecc: buffer %d does not match data %d + parity %d",
			len(buf), dataLen, il.ParityBytes())
	}
	data = append([]byte(nil), buf[:dataLen]...)
	parityOff := dataLen
	for w := 0; w < il.ways; w++ {
		var lane []byte
		var idx []int
		for i := w; i < dataLen; i += il.ways {
			lane = append(lane, data[i])
			idx = append(idx, i)
		}
		if len(lane) == 0 {
			lane = []byte{0}
		}
		cw := append(lane, buf[parityOff:parityOff+il.codec.parity]...)
		parityOff += il.codec.parity
		fixed, n, derr := il.codec.Decode(cw)
		if derr != nil {
			return nil, corrected, derr
		}
		corrected += n
		for j, i := range idx {
			data[i] = fixed[j]
		}
	}
	return data, corrected, nil
}
