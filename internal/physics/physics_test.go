package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAsGrownAnisotropy(t *testing.T) {
	s := DefaultSample()
	k := s.PerpendicularAnisotropy()
	if k != AsGrownAnisotropy {
		t.Fatalf("as-grown K = %g, want %g", k, AsGrownAnisotropy)
	}
	if s.EasyAxisOrientation() != EasyPerpendicular {
		t.Fatal("as-grown film must be perpendicular")
	}
	if !s.SupportsRecording() {
		t.Fatal("as-grown film must support recording")
	}
}

func TestAnnealBelowOnsetPreservesK(t *testing.T) {
	// Paper: "This value is maintained up to an annealing temperature
	// of 500 °C."
	for _, temp := range []float64{100, 300, 400, 500} {
		s := DefaultSample()
		s.ConventionalAnneal(temp)
		k := s.PerpendicularAnisotropy()
		if k < 0.9*AsGrownAnisotropy {
			t.Fatalf("anneal at %g °C dropped K to %g", temp, k)
		}
		if !s.SupportsRecording() {
			t.Fatalf("anneal at %g °C destroyed recording", temp)
		}
	}
}

func TestAnnealAboveCollapseDestroysK(t *testing.T) {
	// Paper: "Above 600 °C the value of K drops dramatically."
	for _, temp := range []float64{650, 700, 800} {
		s := DefaultSample()
		s.ConventionalAnneal(temp)
		k := s.PerpendicularAnisotropy()
		if k > 0.2*AsGrownAnisotropy {
			t.Fatalf("anneal at %g °C left K at %g", temp, k)
		}
		if s.SupportsRecording() {
			t.Fatalf("anneal at %g °C left film recordable", temp)
		}
	}
}

func TestAnnealIrreversible(t *testing.T) {
	s := DefaultSample()
	s.ConventionalAnneal(700)
	mixed := s.Mixing()
	// "After heat treatment, the interfaces cannot be restored": a
	// later low-temperature anneal must not reduce mixing.
	s.ConventionalAnneal(100)
	if s.Mixing() < mixed {
		t.Fatal("mixing decreased after low-temperature anneal")
	}
}

func TestMixingMonotoneInTemperature(t *testing.T) {
	f := func(a, b uint16) bool {
		t1 := float64(a%900) + 20
		t2 := float64(b%900) + 20
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		s1, s2 := DefaultSample(), DefaultSample()
		s1.ConventionalAnneal(t1)
		s2.ConventionalAnneal(t2)
		return s1.Mixing() <= s2.Mixing()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMixingAccumulates(t *testing.T) {
	// Two sub-τ anneals accumulate toward equilibrium (τ(600 °C) is
	// ~1.3 ms; use spikes well below it).
	s := DefaultSample()
	s.AnnealAt(600, 0.0005)
	m1 := s.Mixing()
	if m1 == 0 {
		t.Fatal("first spike mixed nothing — test is vacuous")
	}
	s.AnnealAt(600, 0.0005)
	if s.Mixing() <= m1 {
		t.Fatal("repeated anneal did not accumulate mixing")
	}
}

func TestRoomTemperatureStable(t *testing.T) {
	s := DefaultSample()
	// Ten years at 25 °C must not destroy the medium (data-retention).
	s.AnnealAt(25, 10*365*24*3600)
	if s.PerpendicularAnisotropy() < 0.99*AsGrownAnisotropy {
		t.Fatalf("room-temperature decade dropped K to %g", s.PerpendicularAnisotropy())
	}
}

func TestCrystallisationOnlyAtHighT(t *testing.T) {
	low := DefaultSample()
	low.ConventionalAnneal(500)
	if low.Crystallised() != 0 {
		t.Fatalf("crystallised %g at 500 °C", low.Crystallised())
	}
	high := DefaultSample()
	high.ConventionalAnneal(700)
	if high.Crystallised() < 0.5 {
		t.Fatalf("crystallised only %g at 700 °C", high.Crystallised())
	}
	if high.EasyAxisOrientation() != EasyTilted {
		t.Fatalf("700 °C film axis %v, want tilted", high.EasyAxisOrientation())
	}
	// Crucially: tilted is NOT perpendicular — heating cannot be
	// undone by crystallisation (paper §7).
	if high.SupportsRecording() {
		t.Fatal("crystallised film must not support recording")
	}
}

func TestEasyAxisStrings(t *testing.T) {
	if EasyPerpendicular.String() != "perpendicular" ||
		EasyInPlane.String() != "in-plane" ||
		EasyTilted.String() != "tilted" {
		t.Fatal("axis names")
	}
}

func TestNewMultilayerPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMultilayer(0, 1) },
		func() { NewMultilayer(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewMultilayer did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNegativeAnnealDurationPanics(t *testing.T) {
	s := DefaultSample()
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	s.AnnealAt(500, -1)
}

func TestHistoryRecorded(t *testing.T) {
	s := DefaultSample()
	s.ConventionalAnneal(300)
	s.ConventionalAnneal(700)
	h := s.History()
	if len(h) != 2 || h[0].TemperatureC != 300 || h[1].TemperatureC != 700 {
		t.Fatalf("history %v", h)
	}
}

func TestTorqueExtractionAccuracy(t *testing.T) {
	// Noiseless pipeline must recover K to better than 1 %.
	mm := NewMagnetometer(1)
	mm.NoiseJm3 = 0
	s := DefaultSample()
	k := mm.MeasureAnisotropy(s)
	if math.Abs(k-AsGrownAnisotropy) > 0.01*AsGrownAnisotropy {
		t.Fatalf("extracted K %g, want %g", k, AsGrownAnisotropy)
	}
}

func TestTorqueExtractionRejectsFourfold(t *testing.T) {
	// The sin4θ contamination must not leak into the sin2θ projection.
	mm := NewMagnetometer(1)
	mm.NoiseJm3 = 0
	curve := mm.Measure(DefaultSample())
	var acc float64
	for i := range curve.AnglesRad {
		acc += curve.TorquePerVolume[i] * math.Sin(4*curve.AnglesRad[i])
	}
	k4 := -2 * acc / float64(len(curve.AnglesRad))
	if math.Abs(k4) < 100 {
		t.Fatal("fourfold term missing from synthetic curve — test is vacuous")
	}
	k := ExtractAnisotropy(curve) + ShapeAnisotropy
	if math.Abs(k-AsGrownAnisotropy) > 0.01*AsGrownAnisotropy {
		t.Fatalf("fourfold leaked: K = %g", k)
	}
}

func TestTorqueNoisyExtraction(t *testing.T) {
	mm := NewMagnetometer(5)
	s := DefaultSample()
	k := mm.MeasureAnisotropy(s)
	if math.Abs(k-AsGrownAnisotropy) > 0.05*AsGrownAnisotropy {
		t.Fatalf("noisy extraction off by >5%%: %g", k)
	}
}

func TestExtractAnisotropyPanicsOnMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("malformed curve did not panic")
		}
	}()
	ExtractAnisotropy(TorqueCurve{AnglesRad: []float64{1}, TorquePerVolume: nil})
}

func TestRunFig7Shape(t *testing.T) {
	pts := RunFig7(42)
	if len(pts) != 6 {
		t.Fatalf("%d points, want 6", len(pts))
	}
	asGrown := pts[0].AnisotropyJm3
	if math.Abs(asGrown-AsGrownAnisotropy) > 0.05*AsGrownAnisotropy {
		t.Fatalf("as-grown point %g", asGrown)
	}
	// Flat to 500 °C.
	for _, p := range pts[1:4] {
		if math.Abs(p.AnisotropyJm3-asGrown) > 0.15*asGrown {
			t.Fatalf("K at %g °C = %g, expected ~flat", p.TemperatureC, p.AnisotropyJm3)
		}
	}
	// Collapse at 700 °C.
	last := pts[5]
	if last.TemperatureC != 700 {
		t.Fatalf("last point at %g", last.TemperatureC)
	}
	if last.AnisotropyJm3 > 0.2*asGrown {
		t.Fatalf("K at 700 °C = %g, expected collapse", last.AnisotropyJm3)
	}
	// Monotone decline from 500 on.
	if !(pts[3].AnisotropyJm3 >= pts[4].AnisotropyJm3 && pts[4].AnisotropyJm3 >= pts[5].AnisotropyJm3) {
		t.Fatal("K not declining above 500 °C")
	}
}

func TestBraggAngleKnownValues(t *testing.T) {
	// Superlattice: Λ=1.104 nm → 2θ ≈ 8°.
	got := BraggAngleDeg(CuKAlphaNM, BilayerPeriodNM)
	if math.Abs(got-8.0) > 0.3 {
		t.Fatalf("superlattice angle %g, want ≈8", got)
	}
	// CoPt(111): d=0.2163 nm → 2θ ≈ 41.7°.
	got = BraggAngleDeg(CuKAlphaNM, CoPt111SpacingNM)
	if math.Abs(got-41.7) > 0.2 {
		t.Fatalf("CoPt(111) angle %g, want ≈41.7", got)
	}
}

func TestBraggAnglePanicsUnphysical(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unphysical reflection did not panic")
		}
	}()
	BraggAngleDeg(0.154, 0.05)
}

func TestRunFig8(t *testing.T) {
	res := RunFig8(42)
	if res.AsGrownPeak.TwoThetaDeg < 7 || res.AsGrownPeak.TwoThetaDeg > 9 {
		t.Fatalf("as-grown superlattice peak at %g°, want ≈8°", res.AsGrownPeak.TwoThetaDeg)
	}
	if res.AnnealedPeakPresent {
		t.Fatal("superlattice peak survived the 700 °C anneal")
	}
	if len(res.AsGrown.TwoThetaDeg) == 0 || len(res.Annealed.TwoThetaDeg) == 0 {
		t.Fatal("empty patterns")
	}
}

func TestRunFig9(t *testing.T) {
	res := RunFig9(42)
	if res.AnnealedPeak.TwoThetaDeg < 41.2 || res.AnnealedPeak.TwoThetaDeg > 42.2 {
		t.Fatalf("annealed CoPt(111) peak at %g°, want ≈41.7°", res.AnnealedPeak.TwoThetaDeg)
	}
	if res.AsGrownPeakPresent {
		t.Fatal("as-grown film shows an alloy peak")
	}
}

func TestFindPeakTooFewSamples(t *testing.T) {
	p := Pattern{TwoThetaDeg: []float64{1, 2}, Intensity: []float64{1, 2}}
	if _, ok := FindPeak(p, 0, 3); ok {
		t.Fatal("peak found in 2 samples")
	}
}

func TestScansDeterministicPerSeed(t *testing.T) {
	a := RunFig8(9)
	b := RunFig8(9)
	for i := range a.AsGrown.Intensity {
		if a.AsGrown.Intensity[i] != b.AsGrown.Intensity[i] {
			t.Fatal("same seed produced different scans")
		}
	}
}

func TestMagnetometerZeroPointsPanics(t *testing.T) {
	mm := NewMagnetometer(1)
	mm.Points = 0
	defer func() {
		if recover() == nil {
			t.Fatal("zero-point magnetometer did not panic")
		}
	}()
	mm.Measure(DefaultSample())
}

func TestAnnealTimeDependence(t *testing.T) {
	// At the same temperature, a longer anneal mixes at least as much;
	// a spike shorter than the relaxation time mixes less than the
	// full hour (the kinetics are time-dependent, not a step
	// function). τ(620 °C) ≈ 0.9 ms, so a 0.3 ms spike is sub-τ.
	short := DefaultSample()
	short.AnnealAt(620, 0.0003)
	long := DefaultSample()
	long.AnnealAt(620, 3600)
	if short.Mixing() >= long.Mixing() {
		t.Fatalf("0.05s at 620°C mixed %g, full hour %g", short.Mixing(), long.Mixing())
	}
}

func TestLocalHeatingPulseDestroys(t *testing.T) {
	// The device's ewb is a brief current pulse, not an hour in an
	// oven: a millisecond well above the collapse temperature must be
	// enough to destroy the multilayer (mixing time constant is
	// sub-millisecond at probe-heating temperatures).
	s := DefaultSample()
	s.AnnealAt(900, 0.001)
	if s.SupportsRecording() {
		t.Fatalf("1ms at 900°C left film recordable (K=%g)", s.PerpendicularAnisotropy())
	}
}

func TestMixingTimeConstantDecreasesWithT(t *testing.T) {
	if mixingTimeConstant(500) <= mixingTimeConstant(700) {
		t.Fatal("relaxation not faster at higher temperature")
	}
}
