package physics

import "testing"

func BenchmarkTorqueMeasureAndExtract(b *testing.B) {
	mm := NewMagnetometer(1)
	s := DefaultSample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm.MeasureAnisotropy(s)
	}
}

func BenchmarkXRDLowAngleScan(b *testing.B) {
	d := NewDiffractometer(1)
	s := DefaultSample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ScanLowAngle(s)
	}
}

func BenchmarkPulseDamage(b *testing.B) {
	var dmg float64
	for i := 0; i < b.N; i++ {
		dmg = PulseDamage(700, 50e-6, dmg)
		if dmg >= 1 {
			dmg = 0
		}
	}
}
