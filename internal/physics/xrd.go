package physics

import (
	"fmt"
	"math"

	"sero/internal/sim"
)

// Kinematic X-ray diffraction simulator, reproducing Figs 8 and 9.
//
// Low-angle (2θ ≈ 2–14°) reflectivity is sensitive to the multilayer
// period: the Co/Pt superlattice produces a Bragg peak at
// 2θ ≈ 8° for Λ ≈ 1.1 nm with Cu Kα radiation. Interface mixing washes
// the superlattice modulation out, so the peak vanishes after a 700 °C
// anneal (Fig 8).
//
// High-angle diffraction (2θ ≈ 30–55°) is sensitive to crystal
// structure: the annealed film grows an fcc CoPt alloy whose (111)
// planes (d ≈ 0.216 nm) reflect at 2θ ≈ 41.7° (Fig 9); the as-grown
// film shows only broad background there.

// Diffractometer simulates a θ–2θ X-ray diffractometer.
type Diffractometer struct {
	// WavelengthNM is the X-ray wavelength; defaults to Cu Kα.
	WavelengthNM float64
	// StepDeg is the 2θ step between samples.
	StepDeg float64
	// CountNoise is the relative RMS noise applied to each intensity
	// sample (counting statistics).
	CountNoise float64

	rng *sim.RNG
}

// NewDiffractometer returns a Cu Kα diffractometer with 0.05° steps.
func NewDiffractometer(seed uint64) *Diffractometer {
	return &Diffractometer{
		WavelengthNM: CuKAlphaNM,
		StepDeg:      0.05,
		CountNoise:   0.02,
		rng:          sim.NewRNG(seed),
	}
}

// Pattern is a diffraction pattern: intensity (arbitrary units, log
// scale is conventional for low angle) versus 2θ in degrees.
type Pattern struct {
	TwoThetaDeg []float64
	Intensity   []float64
}

// Peak describes a local maximum found in a pattern.
type Peak struct {
	TwoThetaDeg float64
	Intensity   float64
	// Prominence is the peak height over the local background.
	Prominence float64
}

// BraggAngleDeg returns the first-order 2θ (degrees) for spacing dNM at
// wavelength lambdaNM. Panics if the reflection is unphysical
// (λ > 2d).
func BraggAngleDeg(lambdaNM, dNM float64) float64 {
	s := lambdaNM / (2 * dNM)
	if s > 1 {
		panic(fmt.Sprintf("physics: no Bragg reflection for λ=%g d=%g", lambdaNM, dNM))
	}
	return 2 * math.Asin(s) * 180 / math.Pi
}

// ScanLowAngle sweeps 2θ over [2°, 14°], capturing the superlattice
// reflection of the multilayer period. The Fresnel-like reflectivity
// decay is modelled as a power-law background; the superlattice peak
// amplitude scales with the surviving interface contrast (1−mixing)².
func (d *Diffractometer) ScanLowAngle(sample *Multilayer) Pattern {
	return d.scan(sample, 2, 14)
}

// ScanHighAngle sweeps 2θ over [30°, 55°], capturing the fcc CoPt(111)
// alloy peak that appears after crystallisation.
func (d *Diffractometer) ScanHighAngle(sample *Multilayer) Pattern {
	return d.scan(sample, 30, 55)
}

func (d *Diffractometer) scan(sample *Multilayer, from, to float64) Pattern {
	if d.StepDeg <= 0 {
		panic("physics: non-positive diffractometer step")
	}
	var p Pattern
	for tt := from; tt <= to+1e-9; tt += d.StepDeg {
		i := d.intensityAt(sample, tt)
		if d.CountNoise > 0 {
			i *= 1 + d.CountNoise*d.rng.NormFloat64()
			if i < 0 {
				i = 0
			}
		}
		p.TwoThetaDeg = append(p.TwoThetaDeg, tt)
		p.Intensity = append(p.Intensity, i)
	}
	return p
}

// intensityAt computes the noiseless diffracted intensity at 2θ.
func (d *Diffractometer) intensityAt(sample *Multilayer, twoTheta float64) float64 {
	// Background: steep reflectivity decay at low angle, flat
	// instrument floor at high angle.
	bg := 1e6*math.Pow(twoTheta, -3.5) + 50

	// Superlattice peaks at orders n=1,2 of the bilayer period. The
	// structure-factor contrast between Co and Pt layers vanishes as
	// the interfaces mix: amplitude ∝ (1−mixing)².
	contrast := (1 - sample.Mixing())
	contrast *= contrast
	for order := 1; order <= 2; order++ {
		s := float64(order) * d.WavelengthNM / (2 * sample.PeriodNM)
		if s >= 1 {
			continue
		}
		centre := 2 * math.Asin(s) * 180 / math.Pi
		// Finite stack: peak width ~ 1/(N·Λ).
		width := 0.45 / float64(sample.Bilayers) * 10
		amp := 4e4 * contrast / float64(order*order)
		bg += amp * gaussian(twoTheta, centre, width)
	}

	// fcc CoPt (111) alloy peak grows with the crystallised fraction.
	if c := sample.Crystallised(); c > 0 {
		centre := BraggAngleDeg(d.WavelengthNM, CoPt111SpacingNM)
		bg += 2.5e3 * c * gaussian(twoTheta, centre, 0.6)
	}

	// Pt-rich as-deposited texture: a weak broad (111)-like hump from
	// the unmixed stack sits slightly below the alloy position (pure Pt
	// d111=0.2265 nm → 39.8°), present in both samples.
	centrePt := BraggAngleDeg(d.WavelengthNM, 0.2265)
	bg += 300 * gaussian(twoTheta, centrePt, 2.5)

	return bg
}

func gaussian(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-z * z / 2)
}

// FindPeak locates the most prominent local maximum of p within
// [fromDeg, toDeg]. The background is estimated as the linear
// interpolation between the window edges (median-smoothed), which is
// sufficient for the well-separated peaks in Figs 8 and 9. Returns
// ok=false when no sample exceeds the background by more than 3× the
// local scatter.
func FindPeak(p Pattern, fromDeg, toDeg float64) (Peak, bool) {
	var xs, ys []float64
	for i, tt := range p.TwoThetaDeg {
		if tt >= fromDeg && tt <= toDeg {
			xs = append(xs, tt)
			ys = append(ys, p.Intensity[i])
		}
	}
	if len(xs) < 5 {
		return Peak{}, false
	}
	edge := len(xs) / 10
	if edge < 2 {
		edge = 2
	}
	left := median(ys[:edge])
	right := median(ys[len(ys)-edge:])

	best := Peak{}
	found := false
	var edgeResiduals []float64
	for i := range xs {
		frac := (xs[i] - xs[0]) / (xs[len(xs)-1] - xs[0])
		bg := left + (right-left)*frac
		resid := ys[i] - bg
		if i < edge || i >= len(xs)-edge {
			edgeResiduals = append(edgeResiduals, resid)
		}
		if resid > best.Prominence {
			best = Peak{TwoThetaDeg: xs[i], Intensity: ys[i], Prominence: resid}
			found = true
		}
	}
	if !found {
		return Peak{}, false
	}
	// Significance: the prominence must exceed both 5× the edge
	// scatter (counting noise, estimated away from any central peak)
	// and 10 % of the local background level — a peak buried in the
	// background is not a detection.
	sc := mad(edgeResiduals)
	floor := 0.1 * (left + right) / 2
	if best.Prominence < 5*sc || best.Prominence < floor {
		return Peak{}, false
	}
	return best, true
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	c := append([]float64(nil), v...)
	// insertion sort; windows are tiny
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

// mad returns the median absolute deviation of v.
func mad(v []float64) float64 {
	m := median(v)
	dev := make([]float64, len(v))
	for i, x := range v {
		dev[i] = math.Abs(x - m)
	}
	return median(dev)
}

// Fig8Result holds the two low-angle scans of Fig 8.
type Fig8Result struct {
	AsGrown  Pattern
	Annealed Pattern
	// AsGrownPeak is the superlattice peak found in the as-grown scan.
	AsGrownPeak Peak
	// AnnealedPeakPresent reports whether any significant peak
	// survives in the annealed scan (the paper finds none).
	AnnealedPeakPresent bool
}

// RunFig8 prepares an as-grown sample and a 700 °C-annealed sample and
// scans both at low angle.
func RunFig8(seed uint64) Fig8Result {
	d := NewDiffractometer(seed)
	asGrown := DefaultSample()
	annealed := DefaultSample()
	annealed.ConventionalAnneal(700)

	res := Fig8Result{
		AsGrown:  d.ScanLowAngle(asGrown),
		Annealed: d.ScanLowAngle(annealed),
	}
	if pk, ok := FindPeak(res.AsGrown, 6, 10); ok {
		res.AsGrownPeak = pk
	}
	_, res.AnnealedPeakPresent = FindPeak(res.Annealed, 6, 10)
	return res
}

// Fig9Result holds the two high-angle scans of Fig 9.
type Fig9Result struct {
	AsGrown  Pattern
	Annealed Pattern
	// AnnealedPeak is the CoPt(111) peak in the annealed scan.
	AnnealedPeak Peak
	// AsGrownPeakPresent reports whether the as-grown film shows a
	// significant (111) alloy peak (it must not).
	AsGrownPeakPresent bool
}

// RunFig9 prepares the same two samples as Fig 8 and scans at high
// angle, looking for the 41.7° CoPt(111) reflection.
func RunFig9(seed uint64) Fig9Result {
	d := NewDiffractometer(seed)
	asGrown := DefaultSample()
	annealed := DefaultSample()
	annealed.ConventionalAnneal(700)

	res := Fig9Result{
		AsGrown:  d.ScanHighAngle(asGrown),
		Annealed: d.ScanHighAngle(annealed),
	}
	if pk, ok := FindPeak(res.Annealed, 40.5, 43); ok {
		res.AnnealedPeak = pk
	}
	_, res.AsGrownPeakPresent = FindPeak(res.AsGrown, 40.5, 43)
	return res
}
