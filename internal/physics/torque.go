package physics

import (
	"fmt"
	"math"

	"sero/internal/sim"
)

// Torque magnetometry: the measurement pipeline behind Fig 7. A sample
// is rotated in a strong applied field (1350 kA/m) while the magnetic
// torque on it is recorded; for a uniaxial film the torque curve is
// τ(θ) = -K·V·sin(2θ). The anisotropy constant K is extracted as the
// sin(2θ) Fourier coefficient of the measured curve — exactly the
// procedure the paper describes ("The anisotropy constants were
// calculated by a Fourier transformation of the torque curve obtained
// with an applied field of 1350 kA/m").

// TorqueCurve is one full rotation of torque samples.
type TorqueCurve struct {
	// AnglesRad are the sample-rotation angles, uniformly spaced over
	// [0, 2π).
	AnglesRad []float64
	// TorquePerVolume holds τ/V samples in J/m^3.
	TorquePerVolume []float64
}

// Magnetometer simulates a torque magnetometer.
type Magnetometer struct {
	// FieldKAm is the applied field in kA/m. Must be large enough to
	// saturate the sample; the paper uses 1350.
	FieldKAm float64
	// Points is the number of samples per rotation.
	Points int
	// NoiseJm3 is the RMS instrument noise added to each torque
	// sample, in J/m^3.
	NoiseJm3 float64

	rng *sim.RNG
}

// NewMagnetometer returns a magnetometer with the paper's field, 360
// samples per rotation and a small instrument noise, seeded for
// reproducibility.
func NewMagnetometer(seed uint64) *Magnetometer {
	return &Magnetometer{
		FieldKAm: AppliedFieldKAm,
		Points:   360,
		NoiseJm3: 400, // ~0.5 % of the as-grown K
		rng:      sim.NewRNG(seed),
	}
}

// Measure rotates the sample through one revolution and returns the
// torque curve. The uniaxial term comes from the film's surviving
// perpendicular anisotropy; a small fourfold (sin 4θ) contamination
// from the substrate is included, as real torque curves always carry
// higher harmonics — the Fourier extraction must reject it.
func (mm *Magnetometer) Measure(sample *Multilayer) TorqueCurve {
	if mm.Points <= 0 {
		panic(fmt.Sprintf("physics: magnetometer with %d points", mm.Points))
	}
	k := sample.PerpendicularAnisotropy() - ShapeAnisotropy
	curve := TorqueCurve{
		AnglesRad:       make([]float64, mm.Points),
		TorquePerVolume: make([]float64, mm.Points),
	}
	const fourfold = 1.5e3 // substrate contamination, J/m^3
	for i := 0; i < mm.Points; i++ {
		th := 2 * math.Pi * float64(i) / float64(mm.Points)
		curve.AnglesRad[i] = th
		tau := -k*math.Sin(2*th) - fourfold*math.Sin(4*th)
		if mm.NoiseJm3 > 0 {
			tau += mm.NoiseJm3 * mm.rng.NormFloat64()
		}
		curve.TorquePerVolume[i] = tau
	}
	return curve
}

// ExtractAnisotropy recovers the effective uniaxial anisotropy constant
// from a torque curve by projecting onto sin(2θ) (a single-bin discrete
// Fourier transform). The returned value is K_eff = K_perp − K_shape;
// Fig 7 plots K_perp, which callers obtain by adding ShapeAnisotropy.
func ExtractAnisotropy(c TorqueCurve) float64 {
	n := len(c.AnglesRad)
	if n == 0 || n != len(c.TorquePerVolume) {
		panic("physics: malformed torque curve")
	}
	var acc float64
	for i := 0; i < n; i++ {
		acc += c.TorquePerVolume[i] * math.Sin(2*c.AnglesRad[i])
	}
	// τ = -K sin2θ  ⇒  Σ τ·sin2θ = -K·n/2.
	return -2 * acc / float64(n)
}

// MeasureAnisotropy runs the full Fig 7 pipeline for one sample:
// torque curve, Fourier extraction, shape correction. Returns K_perp in
// J/m^3.
func (mm *Magnetometer) MeasureAnisotropy(sample *Multilayer) float64 {
	keff := ExtractAnisotropy(mm.Measure(sample))
	return keff + ShapeAnisotropy
}

// Fig7Point is one data point of the paper's Fig 7.
type Fig7Point struct {
	// TemperatureC is the anneal temperature; math.NaN marks the
	// as-grown sample (plotted at the left edge in the paper).
	TemperatureC float64
	// AnisotropyJm3 is the measured perpendicular anisotropy.
	AnisotropyJm3 float64
}

// Fig7Temperatures are the six anneal conditions of Fig 7: as-grown
// (NaN) plus five anneal temperatures.
func Fig7Temperatures() []float64 {
	return []float64{math.NaN(), 300, 400, 500, 600, 700}
}

// RunFig7 reproduces Fig 7: for each anneal condition, prepare a fresh
// sample, anneal, measure the torque curve at 1350 kA/m and extract K
// by Fourier transformation.
func RunFig7(seed uint64) []Fig7Point {
	mm := NewMagnetometer(seed)
	var out []Fig7Point
	for _, t := range Fig7Temperatures() {
		s := DefaultSample()
		if !math.IsNaN(t) {
			s.ConventionalAnneal(t)
		}
		out = append(out, Fig7Point{
			TemperatureC:  t,
			AnisotropyJm3: mm.MeasureAnisotropy(s),
		})
	}
	return out
}
