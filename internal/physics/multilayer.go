// Package physics models the material science of the paper's Co/Pt
// multilayer patterned medium: interface anisotropy, annealing-driven
// interface mixing, torque magnetometry (the measurement behind Fig 7)
// and kinematic X-ray diffraction (Figs 8 and 9).
//
// The paper's samples are stacks of alternating ~0.6 nm Co and Pt
// films. The Co/Pt interfaces contribute a perpendicular anisotropy
// that dominates the in-plane shape anisotropy of a flat dot. Heating
// mixes the interfaces irreversibly; above ~600 °C the perpendicular
// anisotropy collapses and the easy axis rotates in-plane — the
// physical basis of the electrical write-once operation.
package physics

import (
	"fmt"
	"math"
)

// Physical constants and default sample parameters. Values follow the
// paper and its references [46, 53].
const (
	// AsGrownAnisotropy is the perpendicular anisotropy of the
	// unannealed film, 80 kJ/m^3 (paper §7).
	AsGrownAnisotropy = 80e3 // J/m^3

	// MixingOnsetCelsius is the annealing temperature above which the
	// Co/Pt interfaces begin to mix for this film. The paper finds K
	// maintained up to 500 °C.
	MixingOnsetCelsius = 500.0

	// CollapseCelsius is the temperature above which K "drops
	// dramatically" (paper: above 600 °C).
	CollapseCelsius = 600.0

	// BilayerPeriodNM is the Co+Pt bilayer period Λ. The paper derives
	// ~0.6 nm per layer from the low-angle XRD peak at 2θ≈8°, i.e. a
	// bilayer of ~1.1 nm.
	BilayerPeriodNM = 1.104

	// CuKAlphaNM is the Cu Kα X-ray wavelength used by the XRD
	// simulator.
	CuKAlphaNM = 0.15406

	// CoPt111SpacingNM is the (111) plane spacing of the fcc CoPt
	// alloy that crystallises after a 700 °C anneal; it produces the
	// high-angle peak at 2θ≈41.7° (paper §7, Fig 9).
	CoPt111SpacingNM = 0.2163

	// AppliedFieldKAm is the torque magnetometer applied field,
	// 1350 kA/m (paper §7).
	AppliedFieldKAm = 1350.0
)

// Multilayer is a simulated Co/Pt multilayer film sample. The zero
// value is not useful; construct with NewMultilayer.
type Multilayer struct {
	// Bilayers is the number of Co/Pt bilayer repeats in the stack
	// ("tens of layers, each thinner than 1 nm", paper §2).
	Bilayers int

	// PeriodNM is the bilayer period Λ in nanometres.
	PeriodNM float64

	// mixing in [0,1]: 0 = perfect interfaces (as grown),
	// 1 = completely interdiffused. Monotone non-decreasing; annealing
	// can only increase it (irreversibility, paper §7).
	mixing float64

	// crystallised in [0,1]: fraction of the film converted to the fcc
	// CoPt alloy phase with (111) texture. Grows only at high anneal
	// temperatures (the 41.7° peak of Fig 9).
	crystallised float64

	// annealHistory records every anneal applied, for provenance.
	annealHistory []Anneal
}

// Anneal describes one heat treatment.
type Anneal struct {
	TemperatureC float64
	Duration     float64 // seconds at temperature
}

// NewMultilayer returns an as-grown sample with n bilayers of the given
// period. It panics on non-positive arguments, which always indicate a
// caller bug.
func NewMultilayer(n int, periodNM float64) *Multilayer {
	if n <= 0 {
		panic(fmt.Sprintf("physics: non-positive bilayer count %d", n))
	}
	if periodNM <= 0 {
		panic(fmt.Sprintf("physics: non-positive bilayer period %g", periodNM))
	}
	return &Multilayer{Bilayers: n, PeriodNM: periodNM}
}

// DefaultSample returns a sample matching the paper's film: 20 bilayers
// at the period derived from Fig 8.
func DefaultSample() *Multilayer { return NewMultilayer(20, BilayerPeriodNM) }

// Mixing returns the interface mixing fraction in [0,1].
func (m *Multilayer) Mixing() float64 { return m.mixing }

// Crystallised returns the fcc CoPt alloy fraction in [0,1].
func (m *Multilayer) Crystallised() float64 { return m.crystallised }

// History returns a copy of the anneal history.
func (m *Multilayer) History() []Anneal {
	return append([]Anneal(nil), m.annealHistory...)
}

// AnnealAt applies a heat treatment at tempC for the given duration in
// seconds. Interface mixing follows a thermally activated (Arrhenius)
// sigmoid calibrated to the paper's observations: negligible mixing up
// to 500 °C, dramatic collapse above 600 °C, complete destruction at
// 700 °C. Mixing is irreversible: repeated anneals only accumulate.
func (m *Multilayer) AnnealAt(tempC, seconds float64) {
	if seconds < 0 {
		panic("physics: negative anneal duration")
	}
	m.annealHistory = append(m.annealHistory, Anneal{TemperatureC: tempC, Duration: seconds})

	newMix := mixingEquilibrium(tempC)
	// The film relaxes toward the equilibrium mixing for this
	// temperature with a time constant that shrinks at high T. One
	// hour at temperature (the conventional anneal) reaches >99 % of
	// equilibrium above the onset.
	tau := mixingTimeConstant(tempC)
	frac := 1 - math.Exp(-seconds/tau)
	target := m.mixing + (newMix-m.mixing)*frac
	if target > m.mixing {
		m.mixing = target
	}
	if m.mixing > 1 {
		m.mixing = 1
	}

	// Crystallisation into fcc CoPt(111) requires both heavy mixing and
	// high temperature (grain growth observed at 700 °C in Co/Cu,
	// paper §2; the 41.7° peak of Fig 9 after the 700 °C anneal).
	if tempC >= CollapseCelsius {
		eq := crystallisationEquilibrium(tempC)
		cfrac := 1 - math.Exp(-seconds/tau)
		ct := m.crystallised + (eq-m.crystallised)*cfrac
		if ct > m.crystallised {
			m.crystallised = ct
		}
		if m.crystallised > 1 {
			m.crystallised = 1
		}
	}
}

// ConventionalAnneal applies the standard one-hour anneal used for
// every data point of Fig 7.
func (m *Multilayer) ConventionalAnneal(tempC float64) { m.AnnealAt(tempC, 3600) }

// mixingEquilibrium maps an anneal temperature to the asymptotic
// interface-mixing fraction: a logistic centred between the onset and
// collapse temperatures. At 500 °C ≈ 4 %, at 600 °C ≈ 70 %, at
// 700 °C ≈ 99.9 %.
func mixingEquilibrium(tempC float64) float64 {
	if tempC <= 0 {
		return 0
	}
	const centre = 580.0 // °C
	const width = 28.0   // °C
	return 1 / (1 + math.Exp(-(tempC-centre)/width))
}

// mixingTimeConstant returns the relaxation time constant in seconds at
// the given temperature. Thermally activated, with the activation
// energy calibrated to three constraints at once: the conventional
// one-hour anneal equilibrates anywhere above the onset (Fig 7), the
// device's sub-millisecond probe-heating pulse at ~900 °C destroys a
// dot (§7 "currents are even capable of evaporating the material"),
// and room-temperature storage is stable for centuries (the
// data-retention requirement: τ(25 °C) ≈ 2×10³ years).
func mixingTimeConstant(tempC float64) float64 {
	tK := tempC + 273.15
	if tK <= 0 {
		return math.Inf(1)
	}
	const (
		tau0 = 1e-10  // s, attempt time
		eaK  = 14300. // activation energy over k_B, in kelvin
	)
	return tau0 * math.Exp(eaK/tK)
}

// PulseMixing returns the interface-mixing fraction produced by one
// heat pulse of the given temperature and duration applied to pristine
// interfaces. This is the physics behind the device's electrical write:
// the probe current raises one dot to tempC for a few microseconds
// (§7: "we envisage that heating of the magnetic dots will be realised
// by passing a current from the probe tip to the dot"). Pulses below
// the mixing onset achieve little regardless of repetition — the
// equilibrium itself is low — while pulses well above it destroy the
// dot in a single shot.
func PulseMixing(tempC, seconds float64) float64 {
	return PulseDamage(tempC, seconds, 0)
}

// PulseDamage advances a dot's accumulated mixing fraction by one heat
// pulse: the mixing relaxes toward the temperature's equilibrium value
// and never decreases (irreversibility). A pulse temperature whose
// equilibrium lies below the destruction threshold can therefore never
// destroy a dot, no matter how often it is repeated.
func PulseDamage(tempC, seconds, current float64) float64 {
	if seconds <= 0 {
		return current
	}
	eq := mixingEquilibrium(tempC)
	tau := mixingTimeConstant(tempC)
	frac := 1 - math.Exp(-seconds/tau)
	next := current + (eq-current)*frac
	if next < current {
		return current
	}
	if next > 1 {
		return 1
	}
	return next
}

// HeatedDamageThreshold is the mixing fraction beyond which a dot's
// surviving interface anisotropy falls under the shape anisotropy and
// the easy axis rotates in-plane: K·(1−m) < K_shape.
const HeatedDamageThreshold = 1 - ShapeAnisotropy/AsGrownAnisotropy

// crystallisationEquilibrium maps temperature to the asymptotic fcc
// CoPt fraction; significant only well above the collapse temperature.
func crystallisationEquilibrium(tempC float64) float64 {
	const centre = 660.0
	const width = 25.0
	return 1 / (1 + math.Exp(-(tempC-centre)/width))
}

// PerpendicularAnisotropy returns the film's perpendicular anisotropy
// constant K in J/m^3 given its current interface state. Interface
// anisotropy scales with the surviving interface fraction; the tilted
// anisotropy of any crystallised fcc CoPt fraction does not restore a
// perpendicular easy axis (paper §7: "there is no risk that after
// excessive heating the perpendicular anisotropy can be restored by
// crystallisation").
func (m *Multilayer) PerpendicularAnisotropy() float64 {
	return AsGrownAnisotropy * (1 - m.mixing)
}

// EasyAxis reports the easy axis orientation of the film given its
// anisotropy balance. The in-plane shape (demagnetising) contribution
// for a flat dot is fixed; once interface anisotropy falls below it the
// easy axis rotates in-plane.
type EasyAxis int

// Easy-axis orientations.
const (
	// EasyPerpendicular: magnetisation prefers out-of-plane (usable
	// for normal recording).
	EasyPerpendicular EasyAxis = iota
	// EasyInPlane: interface anisotropy destroyed; dot reads as
	// "heated".
	EasyInPlane
	// EasyTilted: crystallised fct CoPt [001] tilted axes (Fig 9
	// discussion) — still not perpendicular, so still tamper-evident.
	EasyTilted
)

// String returns a human-readable axis name.
func (e EasyAxis) String() string {
	switch e {
	case EasyPerpendicular:
		return "perpendicular"
	case EasyInPlane:
		return "in-plane"
	case EasyTilted:
		return "tilted"
	default:
		return fmt.Sprintf("EasyAxis(%d)", int(e))
	}
}

// ShapeAnisotropy is the effective in-plane shape anisotropy a dot's
// interface anisotropy must beat to hold perpendicular magnetisation,
// in J/m^3. Flat disks (diameter >> thickness) strongly prefer
// in-plane; the multilayer interfaces must supply more than this.
const ShapeAnisotropy = 30e3

// EasyAxisOrientation returns the current easy-axis class of the film.
func (m *Multilayer) EasyAxisOrientation() EasyAxis {
	if m.PerpendicularAnisotropy() > ShapeAnisotropy {
		return EasyPerpendicular
	}
	if m.crystallised > 0.5 {
		return EasyTilted
	}
	return EasyInPlane
}

// SupportsRecording reports whether the film still supports normal
// out-of-plane magnetic recording.
func (m *Multilayer) SupportsRecording() bool {
	return m.EasyAxisOrientation() == EasyPerpendicular
}
