package manchester

import "testing"

func BenchmarkEncode64(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(data)
	}
}

func BenchmarkDecode64(b *testing.B) {
	flags := Encode(make([]byte, 64))
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(flags); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWOMEncode64(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WOMEncode(data)
	}
}

func BenchmarkWOMDecode64(b *testing.B) {
	flags := WOMEncode(make([]byte, 64))
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WOMDecode(flags); err != nil {
			b.Fatal(err)
		}
	}
}
