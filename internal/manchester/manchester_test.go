package manchester

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestCellStateStrings(t *testing.T) {
	cases := map[CellState]string{
		CellUnused:   "UU",
		CellZero:     "HU",
		CellOne:      "UH",
		CellTampered: "HH",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestDecodeCellAllStates(t *testing.T) {
	if DecodeCell(false, false) != CellUnused {
		t.Error("UU")
	}
	if DecodeCell(true, false) != CellZero {
		t.Error("HU")
	}
	if DecodeCell(false, true) != CellOne {
		t.Error("UH")
	}
	if DecodeCell(true, true) != CellTampered {
		t.Error("HH")
	}
}

func TestEncodeBitInverse(t *testing.T) {
	for _, b := range []bool{true, false} {
		f, s := EncodeBit(b)
		st := DecodeCell(f, s)
		if b && st != CellOne {
			t.Error("1 does not encode to UH")
		}
		if !b && st != CellZero {
			t.Error("0 does not encode to HU")
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		rep, err := Decode(Encode(data))
		return err == nil && rep.Clean() && bytes.Equal(rep.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDetectsTamper(t *testing.T) {
	flags := Encode([]byte{0xA5})
	// Heat the partner dot of cell 2: whatever its state, it becomes HH.
	flags[4] = true
	flags[5] = true
	rep, err := Decode(flags)
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
	if len(rep.Tampered) != 1 || rep.Tampered[0] != 2 {
		t.Fatalf("tampered cells %v", rep.Tampered)
	}
}

func TestDecodeDetectsUnused(t *testing.T) {
	flags := Encode([]byte{0xFF})
	flags[6] = false
	flags[7] = false
	rep, err := Decode(flags)
	if !errors.Is(err, ErrUnused) {
		t.Fatalf("err = %v, want ErrUnused", err)
	}
	if len(rep.Unused) != 1 || rep.Unused[0] != 3 {
		t.Fatalf("unused cells %v", rep.Unused)
	}
}

func TestDecodeOddLength(t *testing.T) {
	if _, err := Decode(make([]bool, 15)); !errors.Is(err, ErrOddLength) {
		t.Fatalf("err = %v", err)
	}
}

func TestTamperPrecedesUnusedInError(t *testing.T) {
	flags := Encode([]byte{0x0F})
	flags[0], flags[1] = true, true   // HH
	flags[2], flags[3] = false, false // UU
	_, err := Decode(flags)
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("tamper must dominate: %v", err)
	}
}

func TestMaxNeighbouringHeats(t *testing.T) {
	// Property from §3: valid Manchester data has at most 2 adjacent
	// heated dots, i.e. every heated dot has at most one heated
	// neighbour.
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		return MaxNeighbouringHeats(Encode(data)) <= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxNeighbouringHeatsWorstCase(t *testing.T) {
	// 0 then 1: HU UH has the two middle dots... actually HU.UH gives
	// U,H,U,H — no adjacency. 1 then 0: UH HU → U,H,H,U: exactly 2.
	flags := Encode([]byte{0xBF}) // 1011_1111: bit pattern containing "10"
	if got := MaxNeighbouringHeats(flags); got != 2 {
		t.Fatalf("worst case adjacency %d, want 2", got)
	}
}

func TestEncodedDots(t *testing.T) {
	if EncodedDots(32) != 512 {
		t.Fatalf("a 256-bit hash must occupy 512 dots, got %d", EncodedDots(32))
	}
}

func TestEncodeBytesMSBFirst(t *testing.T) {
	flags := Encode([]byte{0x80})
	// First cell must be UH (logical 1).
	if DecodeCell(flags[0], flags[1]) != CellOne {
		t.Fatal("MSB not first")
	}
	if DecodeCell(flags[2], flags[3]) != CellZero {
		t.Fatal("bit 6 should be 0")
	}
}
