// Package manchester implements the write-once cell codings of the
// paper. Following Molnar et al. [31], each logical bit is stored in a
// cell of two physical dots:
//
//	logical 1 → UH   logical 0 → HU
//	UU → cell never written   HH → evidence of tampering
//
// On the patterned medium "H" is a heated dot and "U" an intact one.
// Because heating is irreversible (U→H only), the sole way to alter a
// written cell is to heat its remaining U dot, producing the invalid
// code HH — that is the tamper evidence. The encoding also guarantees a
// heated dot has at most one heated neighbour, which spreads thermal
// stress (§3).
//
// The package also provides the Rivest–Shamir write-once-memory code
// the paper points to for higher efficiency at small line sizes
// (§8, [33]): two writes of 2 logical bits each into 3 write-once
// dots.
package manchester

import (
	"errors"
	"fmt"
)

// CellState is the decoded state of one Manchester cell.
type CellState int

// Cell states.
const (
	// CellUnused is an unwritten cell (UU).
	CellUnused CellState = iota
	// CellZero encodes logical 0 (HU).
	CellZero
	// CellOne encodes logical 1 (UH).
	CellOne
	// CellTampered is the invalid state HH: some dot was heated after
	// the cell was written.
	CellTampered
)

// String returns the dot-pair notation of the state.
func (s CellState) String() string {
	switch s {
	case CellUnused:
		return "UU"
	case CellZero:
		return "HU"
	case CellOne:
		return "UH"
	case CellTampered:
		return "HH"
	default:
		return fmt.Sprintf("CellState(%d)", int(s))
	}
}

// DecodeCell maps the pair of heated-flags (first, second dot) to a
// cell state.
func DecodeCell(firstHeated, secondHeated bool) CellState {
	switch {
	case firstHeated && secondHeated:
		return CellTampered
	case firstHeated:
		return CellZero
	case secondHeated:
		return CellOne
	default:
		return CellUnused
	}
}

// EncodeBit returns the heated-flags (first, second dot) that encode
// bit b.
func EncodeBit(b bool) (firstHeated, secondHeated bool) {
	if b {
		return false, true // UH = 1
	}
	return true, false // HU = 0
}

// Encode expands data into per-dot heat flags, two dots per bit,
// MSB-first within each byte. The result has len(data)*16 entries; a
// true entry means "heat this dot".
func Encode(data []byte) []bool {
	out := make([]bool, 0, len(data)*16)
	for _, b := range data {
		for bit := 7; bit >= 0; bit-- {
			f, s := EncodeBit(b&(1<<bit) != 0)
			out = append(out, f, s)
		}
	}
	return out
}

// Errors returned by Decode.
var (
	// ErrTampered reports at least one HH cell.
	ErrTampered = errors.New("manchester: tampered cell (HH)")
	// ErrUnused reports at least one UU cell inside the decoded range.
	ErrUnused = errors.New("manchester: unused cell (UU) inside data")
	// ErrOddLength reports a dot-flag slice that does not divide into
	// cells and bytes.
	ErrOddLength = errors.New("manchester: flag count not a multiple of 16")
)

// DecodeReport describes the outcome of decoding a run of cells.
type DecodeReport struct {
	// Data is the decoded payload (valid only when Clean).
	Data []byte
	// Tampered lists the cell indices found in state HH.
	Tampered []int
	// Unused lists the cell indices found in state UU.
	Unused []int
}

// Clean reports whether every cell decoded to a valid data state.
func (r DecodeReport) Clean() bool {
	return len(r.Tampered) == 0 && len(r.Unused) == 0
}

// Decode reconstructs bytes from per-dot heat flags (as produced by
// Encode). It never guesses: cells in state HH or UU are reported and
// the corresponding bit is left zero.
func Decode(flags []bool) (DecodeReport, error) {
	if len(flags)%16 != 0 {
		return DecodeReport{}, ErrOddLength
	}
	rep := DecodeReport{Data: make([]byte, len(flags)/16)}
	for cell := 0; cell*2 < len(flags); cell++ {
		st := DecodeCell(flags[cell*2], flags[cell*2+1])
		byteIdx, bitIdx := cell/8, 7-cell%8
		switch st {
		case CellOne:
			rep.Data[byteIdx] |= 1 << bitIdx
		case CellZero:
			// bit already 0
		case CellTampered:
			rep.Tampered = append(rep.Tampered, cell)
		case CellUnused:
			rep.Unused = append(rep.Unused, cell)
		}
	}
	var err error
	if len(rep.Tampered) > 0 {
		err = ErrTampered
	} else if len(rep.Unused) > 0 {
		err = ErrUnused
	}
	return rep, err
}

// EncodedDots returns the number of dots needed to Manchester-encode n
// bytes.
func EncodedDots(n int) int { return n * 16 }

// MaxNeighbouringHeats verifies the reliability property of §3: within
// the encoded flags, the longest run of consecutive heated dots. For
// valid Manchester data this is at most 2 (an H at the end of one cell
// followed by an H at the start of the next), so each heated dot has at
// most one heated neighbour.
func MaxNeighbouringHeats(flags []bool) int {
	best, run := 0, 0
	for _, f := range flags {
		if f {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}
