package manchester

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestWOMFirstWriteRead(t *testing.T) {
	for v := byte(0); v < 4; v++ {
		var c WOMCell
		if err := c.Write(v); err != nil {
			t.Fatal(err)
		}
		got, err := c.Read()
		if err != nil || got != v {
			t.Fatalf("read %d err %v, want %d", got, err, v)
		}
	}
}

func TestWOMSecondWriteRead(t *testing.T) {
	for v1 := byte(0); v1 < 4; v1++ {
		for v2 := byte(0); v2 < 4; v2++ {
			var c WOMCell
			if err := c.Write(v1); err != nil {
				t.Fatal(err)
			}
			if err := c.Write(v2); err != nil {
				t.Fatalf("second write %d after %d: %v", v2, v1, err)
			}
			got, err := c.Read()
			if err != nil || got != v2 {
				t.Fatalf("after %d,%d read %d err %v", v1, v2, got, err)
			}
		}
	}
}

func TestWOMWriteIsMonotone(t *testing.T) {
	// Property: a Write never clears a dot — the physical write-once
	// constraint.
	f := func(v1, v2 byte) bool {
		var c WOMCell
		before := c.Dots()
		_ = c.Write(v1 % 4)
		mid := c.Dots()
		_ = c.Write(v2 % 4)
		after := c.Dots()
		return monotone(before, mid) && monotone(mid, after)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func monotone(a, b [3]bool) bool {
	for i := range a {
		if a[i] && !b[i] {
			return false
		}
	}
	return true
}

func TestWOMThirdWriteExhausted(t *testing.T) {
	var c WOMCell
	if err := c.Write(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Write(2); err != nil {
		t.Fatal(err)
	}
	err := c.Write(3)
	if !errors.Is(err, ErrWOMExhausted) {
		t.Fatalf("third distinct write: %v", err)
	}
	// Writing the same value again is a no-op, not an error.
	if err := c.Write(2); err != nil {
		t.Fatalf("idempotent rewrite: %v", err)
	}
}

func TestWOMInvalidPattern(t *testing.T) {
	var c WOMCell
	c.SetDots([3]bool{true, true, false})
	// 110 is gen2 value 11 — valid. Use an actually invalid pattern:
	// there is none in 3 dots (8 patterns: 4 gen1 + 4 gen2 = 8).
	// The Rivest-Shamir code is perfect; every pattern decodes. Tamper
	// evidence therefore comes from *semantic* invalidity (exhausted
	// rewrites), not per-cell invalid codes. Verify all 8 decode.
	for bits := 0; bits < 8; bits++ {
		c.SetDots([3]bool{bits&4 != 0, bits&2 != 0, bits&1 != 0})
		if _, err := c.Read(); err != nil {
			t.Fatalf("pattern %03b failed to decode: %v", bits, err)
		}
	}
}

func TestWOMVectorRoundTrip(t *testing.T) {
	v := NewWOMVector(64)
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := v.WriteBytes(data); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadBytes(4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %x", got)
	}
}

func TestWOMVectorRewrite(t *testing.T) {
	v := NewWOMVector(16)
	if err := v.WriteBytes([]byte{0x12, 0x34}); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteBytes([]byte{0xAB, 0xCD}); err != nil {
		t.Fatal(err)
	}
	got, err := v.ReadBytes(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0xAB, 0xCD}) {
		t.Fatalf("got %x", got)
	}
}

func TestWOMVectorOverflow(t *testing.T) {
	v := NewWOMVector(4)
	if err := v.WriteBytes([]byte{1, 2}); err == nil {
		t.Fatal("overflow write accepted")
	}
	if _, err := v.ReadBytes(2); err == nil {
		t.Fatal("overflow read accepted")
	}
}

func TestWOMValueRangePanics(t *testing.T) {
	var c WOMCell
	defer func() {
		if recover() == nil {
			t.Fatal("Write(4) did not panic")
		}
	}()
	_ = c.Write(4)
}

func TestDotsPerBit(t *testing.T) {
	if DotsPerBit(false) != 2 {
		t.Fatal("manchester density")
	}
	if DotsPerBit(true) != 1.5 {
		t.Fatal("WOM density")
	}
}
