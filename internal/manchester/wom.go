package manchester

import (
	"errors"
	"fmt"
)

// Rivest–Shamir write-once-memory code: 2 bits can be written twice
// into 3 write-once cells (here: dots, where "writing" a dot means
// heating it, a one-way 0→1 transition). The paper cites WOM-style
// codes [33] as the "more efficient coding technique" for small line
// sizes (§8): Manchester stores 1 bit in 2 dots forever, while the
// WOM code stores 2 bits in 3 dots and even allows one rewrite —
// 0.75 dots/bit/write versus Manchester's 2.
//
// First-generation codewords (at most one dot heated):
//
//	00→000  01→100  10→010  11→001
//
// Second-generation codewords (complement pattern, two or three dots):
//
//	00→111  01→011  10→101  11→110
//
// A reader distinguishes generations by weight; a writer moves from the
// first to the second generation only by heating dots, never clearing.
type womTable struct {
	gen1 [4][3]bool
	gen2 [4][3]bool
}

var wom = womTable{
	gen1: [4][3]bool{
		{false, false, false}, // 00
		{true, false, false},  // 01
		{false, true, false},  // 10
		{false, false, true},  // 11
	},
	gen2: [4][3]bool{
		{true, true, true},  // 00
		{false, true, true}, // 01
		{true, false, true}, // 10
		{true, true, false}, // 11
	},
}

// WOM errors.
var (
	// ErrWOMExhausted reports a write that the current cell state can
	// no longer reach (both generations used, or an unreachable
	// pattern requested).
	ErrWOMExhausted = errors.New("manchester: WOM cell exhausted")
	// ErrWOMInvalid reports a dot pattern that is no valid WOM
	// codeword (evidence of tampering, the WOM analogue of HH).
	ErrWOMInvalid = errors.New("manchester: invalid WOM codeword")
)

// WOMCell is a triple of write-once dots storing 2 logical bits,
// rewritable once.
type WOMCell struct {
	dots [3]bool
}

// Dots returns the current heat pattern.
func (c *WOMCell) Dots() [3]bool { return c.dots }

// SetDots overwrites the raw pattern; used when loading cell state from
// a medium. Arbitrary patterns are representable so that tampering can
// be detected on Read.
func (c *WOMCell) SetDots(d [3]bool) { c.dots = d }

// generation classifies the current pattern: 0 = unwritten/gen-1,
// 1 = gen-2, -1 = invalid.
func (c *WOMCell) generation() (gen int, value byte, ok bool) {
	for v := 0; v < 4; v++ {
		if c.dots == wom.gen1[v] {
			return 0, byte(v), true
		}
		if c.dots == wom.gen2[v] {
			return 1, byte(v), true
		}
	}
	return -1, 0, false
}

// Read decodes the 2-bit value. ErrWOMInvalid signals tampering.
func (c *WOMCell) Read() (byte, error) {
	_, v, ok := c.generation()
	if !ok {
		return 0, ErrWOMInvalid
	}
	return v, nil
}

// Write stores value (0..3), heating dots as needed. The first write
// uses generation-1 codewords; a second write moves to generation 2.
// Writes that would require clearing a dot return ErrWOMExhausted.
func (c *WOMCell) Write(value byte) error {
	if value > 3 {
		panic(fmt.Sprintf("manchester: WOM value %d out of range", value))
	}
	gen, cur, ok := c.generation()
	if !ok {
		return ErrWOMInvalid
	}
	// Fresh cell (000 decodes as gen-1 value 00).
	if gen == 0 && c.dots == wom.gen1[0] {
		c.dots = wom.gen1[value]
		return nil
	}
	if gen == 0 {
		if cur == value {
			return nil // already stores it; no dots to heat
		}
		target := wom.gen2[value]
		if !reachable(c.dots, target) {
			return ErrWOMExhausted
		}
		c.dots = target
		return nil
	}
	// Generation 2: only the identical value is still "writable".
	if cur == value {
		return nil
	}
	return ErrWOMExhausted
}

// reachable reports whether target can be reached from cur using only
// 0→1 (heat) transitions.
func reachable(cur, target [3]bool) bool {
	for i := range cur {
		if cur[i] && !target[i] {
			return false
		}
	}
	return true
}

// WOMVector stores a sequence of 2-bit values in WOM cells.
type WOMVector struct {
	cells []WOMCell
}

// NewWOMVector returns a vector of n cells (2n logical bits,
// 3n dots).
func NewWOMVector(n int) *WOMVector {
	if n <= 0 {
		panic("manchester: non-positive WOM vector size")
	}
	return &WOMVector{cells: make([]WOMCell, n)}
}

// Len returns the number of cells.
func (v *WOMVector) Len() int { return len(v.cells) }

// Cell returns a pointer to cell i for direct manipulation.
func (v *WOMVector) Cell(i int) *WOMCell { return &v.cells[i] }

// WriteBytes stores data (2 bits per cell, MSB-first). It requires
// len(data)*4 <= Len.
func (v *WOMVector) WriteBytes(data []byte) error {
	if len(data)*4 > len(v.cells) {
		return fmt.Errorf("manchester: %d bytes exceed %d WOM cells", len(data), len(v.cells))
	}
	for i, b := range data {
		for p := 0; p < 4; p++ {
			val := (b >> (6 - 2*p)) & 3
			if err := v.cells[i*4+p].Write(val); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBytes reads n bytes back.
func (v *WOMVector) ReadBytes(n int) ([]byte, error) {
	if n*4 > len(v.cells) {
		return nil, fmt.Errorf("manchester: %d bytes exceed %d WOM cells", n, len(v.cells))
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		for p := 0; p < 4; p++ {
			val, err := v.cells[i*4+p].Read()
			if err != nil {
				return nil, err
			}
			out[i] |= val << (6 - 2*p)
		}
	}
	return out, nil
}

// DotsPerBit reports the storage efficiency of the codings: Manchester
// uses 2 dots per bit per single write; the WOM code uses 1.5 dots per
// bit and supports two writes, i.e. 0.75 dots per bit-write.
func DotsPerBit(useWOM bool) float64 {
	if useWOM {
		return 1.5
	}
	return 2
}

// WOMEncodedDots returns the dots needed to WOM-encode n bytes
// (4 cells of 3 dots per byte).
func WOMEncodedDots(n int) int { return n * 12 }

// WOMEncode expands data into per-dot heat flags using first-generation
// Rivest-Shamir codewords: each byte becomes 4 cells of 3 dots,
// MSB-first. Compared with Encode this saves 25 % of the dots — the
// §8 "more efficient coding technique" — at a price the caller must
// understand: every 3-dot pattern is a valid codeword, so tampering is
// NOT locally evident (no HH analogue); detection falls back to the
// record parse and the line hash.
func WOMEncode(data []byte) []bool {
	out := make([]bool, 0, WOMEncodedDots(len(data)))
	for _, b := range data {
		for p := 0; p < 4; p++ {
			val := (b >> (6 - 2*p)) & 3
			cw := wom.gen1[val]
			out = append(out, cw[0], cw[1], cw[2])
		}
	}
	return out
}

// WOMDecode reconstructs bytes from per-dot heat flags written by
// WOMEncode (or advanced to second-generation codewords by a rewrite).
// Structurally every pattern decodes; ErrOddLength-style framing is
// the only failure.
func WOMDecode(flags []bool) ([]byte, error) {
	if len(flags)%12 != 0 {
		return nil, fmt.Errorf("manchester: WOM flag count %d not a multiple of 12", len(flags))
	}
	out := make([]byte, len(flags)/12)
	for cell := 0; cell*3 < len(flags); cell++ {
		var c WOMCell
		c.SetDots([3]bool{flags[cell*3], flags[cell*3+1], flags[cell*3+2]})
		v, err := c.Read()
		if err != nil {
			return nil, err
		}
		byteIdx, pos := cell/4, cell%4
		out[byteIdx] |= v << (6 - 2*pos)
	}
	return out, nil
}
