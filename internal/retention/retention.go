// Package retention implements the §8 "Deletion" policy layer: data
// subject to compliance regulation is segregated by expiry class; each
// class's records are heated into their own lines; when a class
// expires, its lines are physically shredded (or, when every class on
// the device has expired, the whole medium is decommissioned). The
// paper: "We would advocate data to be segregated by expiry date, thus
// making it possible to take a device physically out of service."
package retention

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sero/internal/core"
	"sero/internal/device"
)

// Class identifies a retention class (e.g. "7-year-financial").
type Class string

// Policy fixes a class's retention period in virtual time.
type Policy struct {
	Class  Class
	Period time.Duration
}

// Record is one retained object.
type Record struct {
	ID    string
	Class Class
	// Line is the heated line holding the record.
	Line device.LineInfo
	// StoredAt is the virtual ingest time.
	StoredAt time.Duration
	// Shredded marks a destroyed record.
	Shredded bool
}

// ExpiresAt returns the record's expiry instant under p.
func (r Record) ExpiresAt(p Policy) time.Duration { return r.StoredAt + p.Period }

// Manager enforces retention on a SERO store.
type Manager struct {
	st       *core.Store
	policies map[Class]Policy
	records  map[string]*Record
}

// Manager errors.
var (
	// ErrUnknownClass reports ingest into an undeclared class.
	ErrUnknownClass = errors.New("retention: unknown class")
	// ErrDuplicateID reports an ingest with a reused record ID.
	ErrDuplicateID = errors.New("retention: duplicate record id")
	// ErrNotExpired reports a shred attempt before the retention
	// period has elapsed — the manager never destroys live records.
	ErrNotExpired = errors.New("retention: record not expired")
)

// NewManager builds a manager with the given class policies.
func NewManager(st *core.Store, policies ...Policy) *Manager {
	m := &Manager{
		st:       st,
		policies: make(map[Class]Policy),
		records:  make(map[string]*Record),
	}
	for _, p := range policies {
		m.policies[p.Class] = p
	}
	return m
}

// now returns the store's virtual time.
func (m *Manager) now() time.Duration { return m.st.Device().Clock().Now() }

// Ingest stores the blocks as one heated line in the record's class.
// The record is immediately tamper-evident.
func (m *Manager) Ingest(id string, class Class, blocks [][]byte) (*Record, error) {
	if _, ok := m.policies[class]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClass, class)
	}
	if _, ok := m.records[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	start, logN, err := m.st.WriteLine(blocks)
	if err != nil {
		return nil, err
	}
	li, err := m.st.Heat(start, logN)
	if err != nil {
		return nil, err
	}
	rec := &Record{
		ID:       id,
		Class:    class,
		Line:     li,
		StoredAt: m.now(),
	}
	m.records[id] = rec
	return rec, nil
}

// Verify checks one record's line.
func (m *Manager) Verify(id string) (device.VerifyReport, error) {
	rec, ok := m.records[id]
	if !ok {
		return device.VerifyReport{}, fmt.Errorf("retention: no record %s", id)
	}
	return m.st.Verify(rec.Line.Start)
}

// Expired lists records whose retention period has elapsed.
func (m *Manager) Expired() []*Record {
	var out []*Record
	now := m.now()
	for _, rec := range m.records {
		if rec.Shredded {
			continue
		}
		if now >= rec.ExpiresAt(m.policies[rec.Class]) {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Shred destroys one expired record. Shredding an unexpired record is
// refused — the §8 caveat about dishonest insiders means destruction
// must be mechanically tied to the policy clock, not to a request.
func (m *Manager) Shred(id string) (device.ShredReport, error) {
	rec, ok := m.records[id]
	if !ok {
		return device.ShredReport{}, fmt.Errorf("retention: no record %s", id)
	}
	if rec.Shredded {
		return device.ShredReport{}, fmt.Errorf("retention: record %s already shredded", id)
	}
	if m.now() < rec.ExpiresAt(m.policies[rec.Class]) {
		return device.ShredReport{}, fmt.Errorf("%w: %s expires at %v",
			ErrNotExpired, id, rec.ExpiresAt(m.policies[rec.Class]))
	}
	rep, err := m.st.Device().ShredLine(rec.Line.Start)
	if err != nil {
		return rep, err
	}
	rec.Shredded = true
	return rep, nil
}

// ShredExpired destroys every expired record and returns the count.
func (m *Manager) ShredExpired() (int, error) {
	n := 0
	for _, rec := range m.Expired() {
		if _, err := m.Shred(rec.ID); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Records returns all records sorted by ID.
func (m *Manager) Records() []Record {
	out := make([]Record, 0, len(m.records))
	for _, r := range m.records {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Decommissionable reports whether every record on the device has
// expired (shredded or not): the medium can be physically retired —
// "the lifetime of the data must be matched to the lifetime of the
// medium" (§8).
func (m *Manager) Decommissionable() bool {
	now := m.now()
	for _, rec := range m.records {
		if rec.Shredded {
			continue
		}
		if now < rec.ExpiresAt(m.policies[rec.Class]) {
			return false
		}
	}
	return true
}
