package retention

import (
	"errors"
	"testing"
	"time"

	"sero/internal/core"
	"sero/internal/device"
	"sero/internal/medium"
)

func testStore(t testing.TB, blocks int) *core.Store {
	t.Helper()
	p := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	p.Medium = mp
	return core.NewStore(device.New(p))
}

func doc(seed byte) [][]byte {
	b := make([]byte, device.DataBytes)
	for i := range b {
		b[i] = seed ^ byte(i)
	}
	return [][]byte{b}
}

func TestIngestVerify(t *testing.T) {
	st := testStore(t, 256)
	m := NewManager(st, Policy{Class: "short", Period: time.Second})
	rec, err := m.Ingest("doc-1", "short", doc(1))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Shredded {
		t.Fatal("fresh record shredded")
	}
	rep, err := m.Verify("doc-1")
	if err != nil || !rep.OK {
		t.Fatalf("verify %+v %v", rep, err)
	}
}

func TestIngestUnknownClass(t *testing.T) {
	m := NewManager(testStore(t, 64))
	if _, err := m.Ingest("x", "nope", doc(1)); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("err %v", err)
	}
}

func TestIngestDuplicateID(t *testing.T) {
	m := NewManager(testStore(t, 256), Policy{Class: "c", Period: time.Hour})
	if _, err := m.Ingest("dup", "c", doc(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest("dup", "c", doc(2)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err %v", err)
	}
}

func TestShredBeforeExpiryRefused(t *testing.T) {
	st := testStore(t, 256)
	m := NewManager(st, Policy{Class: "long", Period: time.Hour})
	if _, err := m.Ingest("keep", "long", doc(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Shred("keep"); !errors.Is(err, ErrNotExpired) {
		t.Fatalf("premature shred: %v", err)
	}
}

func TestExpiryAndShred(t *testing.T) {
	st := testStore(t, 256)
	m := NewManager(st,
		Policy{Class: "short", Period: time.Millisecond},
		Policy{Class: "long", Period: time.Hour},
	)
	if _, err := m.Ingest("old", "short", doc(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest("new", "long", doc(5)); err != nil {
		t.Fatal(err)
	}
	// Advance virtual time past the short policy.
	st.Device().Clock().Advance(2 * time.Millisecond)

	expired := m.Expired()
	if len(expired) != 1 || expired[0].ID != "old" {
		t.Fatalf("expired %v", expired)
	}
	n, err := m.ShredExpired()
	if err != nil || n != 1 {
		t.Fatalf("shredded %d %v", n, err)
	}
	// The shredded record's data is gone but the event is evident.
	rep, err := m.Verify("old")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("shredded record verifies clean")
	}
	ok, err := st.Device().(*device.Device).IsShredded(m.records["old"].Line.Start)
	if err != nil || !ok {
		t.Fatalf("IsShredded %v %v", ok, err)
	}
	// The unexpired record is untouched.
	rep, err = m.Verify("new")
	if err != nil || !rep.OK {
		t.Fatalf("bystander damaged: %+v %v", rep, err)
	}
	// Double shred refused.
	if _, err := m.Shred("old"); err == nil {
		t.Fatal("double shred accepted")
	}
}

func TestDecommissionable(t *testing.T) {
	st := testStore(t, 256)
	m := NewManager(st, Policy{Class: "c", Period: time.Millisecond})
	if !m.Decommissionable() {
		t.Fatal("empty device not decommissionable")
	}
	if _, err := m.Ingest("r", "c", doc(6)); err != nil {
		t.Fatal(err)
	}
	if m.Decommissionable() {
		t.Fatal("device with live data decommissionable")
	}
	st.Device().Clock().Advance(2 * time.Millisecond)
	if !m.Decommissionable() {
		t.Fatal("device with only expired data not decommissionable")
	}
}

func TestRecordsSorted(t *testing.T) {
	m := NewManager(testStore(t, 512), Policy{Class: "c", Period: time.Hour})
	for _, id := range []string{"c", "a", "b"} {
		if _, err := m.Ingest(id, "c", doc(7)); err != nil {
			t.Fatal(err)
		}
	}
	recs := m.Records()
	if len(recs) != 3 || recs[0].ID != "a" || recs[2].ID != "c" {
		t.Fatalf("records %v", recs)
	}
}
