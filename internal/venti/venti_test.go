package venti

import (
	"bytes"
	"errors"
	"testing"

	"sero/internal/core"
	"sero/internal/device"
	"sero/internal/medium"
	"sero/internal/sim"
)

func testArchive(t testing.TB, blocks int) *Archive {
	t.Helper()
	p := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	p.Medium = mp
	return New(core.NewStore(device.New(p)))
}

func TestPutGetBlock(t *testing.T) {
	a := testArchive(t, 64)
	data := []byte("content-addressed block")
	s, err := a.PutBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.GetBlock(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatal("content mismatch")
	}
}

func TestPutBlockDedup(t *testing.T) {
	a := testArchive(t, 64)
	if _, err := a.PutBlock([]byte("same")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.PutBlock([]byte("same")); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.BlocksWritten != 1 || st.BlocksDeduped != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPutBlockOversize(t *testing.T) {
	a := testArchive(t, 64)
	if _, err := a.PutBlock(make([]byte, device.DataBytes+1)); err == nil {
		t.Fatal("oversize block accepted")
	}
}

func TestGetUnknownScore(t *testing.T) {
	a := testArchive(t, 64)
	if _, err := a.GetBlock(Score{1, 2, 3}); !errors.Is(err, ErrUnknownScore) {
		t.Fatalf("err %v", err)
	}
}

func TestStreamRoundTripSizes(t *testing.T) {
	a := testArchive(t, 4096)
	rng := sim.NewRNG(8)
	for _, size := range []int{0, 1, 511, 512, 513, 5000, 20 * device.DataBytes, 40*device.DataBytes + 7} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		root, err := a.WriteStream(data)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, err := a.ReadStream(root)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round-trip mismatch", size)
		}
	}
}

func TestStreamDeepTree(t *testing.T) {
	// More than FanOut² leaves forces a depth-3 tree.
	a := testArchive(t, 8192)
	rng := sim.NewRNG(9)
	data := make([]byte, (FanOut*FanOut+3)*device.DataBytes)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	root, err := a.WriteStream(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadStream(root)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("deep tree round trip: %v", err)
	}
}

func TestIdenticalStreamsShareBlocks(t *testing.T) {
	a := testArchive(t, 1024)
	data := bytes.Repeat([]byte("snapshot"), 1000)
	r1, err := a.WriteStream(data)
	if err != nil {
		t.Fatal(err)
	}
	written := a.Stats().BlocksWritten
	r2, err := a.WriteStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical streams got different roots")
	}
	if a.Stats().BlocksWritten != written {
		t.Fatal("identical stream rewrote blocks")
	}
}

func TestSnapshotVerifyClean(t *testing.T) {
	a := testArchive(t, 1024)
	root, err := a.WriteStream(bytes.Repeat([]byte("day-1 "), 500))
	if err != nil {
		t.Fatal(err)
	}
	li, err := a.Snapshot(root)
	if err != nil {
		t.Fatal(err)
	}
	if li.Blocks() != 2 {
		t.Fatalf("snapshot line %d blocks", li.Blocks())
	}
	rep, err := a.VerifySnapshot(root)
	if err != nil || !rep.OK {
		t.Fatalf("verify %+v %v", rep, err)
	}
	if len(a.Snapshots()) != 1 {
		t.Fatal("snapshot not recorded")
	}
}

func TestSnapshotDetectsLeafTamper(t *testing.T) {
	a := testArchive(t, 1024)
	data := bytes.Repeat([]byte("ledger-entry "), 300)
	root, err := a.WriteStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Snapshot(root); err != nil {
		t.Fatal(err)
	}
	// Tamper with a stored node: pick any indexed block and forge a
	// valid frame with different content at its address.
	var victim Score
	for s := range a.index {
		victim = s
		break
	}
	pba := a.index[victim]
	bits := device.ForgedFrameBits(pba, []byte("forged content"))
	base := int(pba) * device.DotsPerBlock
	med := a.st.Device().(*device.Device).Medium()
	for i, b := range bits {
		med.MWB(base+i, b)
	}
	if _, err := a.GetBlock(victim); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("leaf tamper not detected: %v", err)
	}
}

func TestVerifySnapshotDetectsAnchorTamper(t *testing.T) {
	a := testArchive(t, 1024)
	root, err := a.WriteStream(bytes.Repeat([]byte("x"), 3000))
	if err != nil {
		t.Fatal(err)
	}
	li, err := a.Snapshot(root)
	if err != nil {
		t.Fatal(err)
	}
	// Forge the anchored root copy inside the heated line.
	bits := device.ForgedFrameBits(li.Start+1, []byte("bogus root"))
	base := int(li.Start+1) * device.DotsPerBlock
	med := a.st.Device().(*device.Device).Medium()
	for i, b := range bits {
		med.MWB(base+i, b)
	}
	rep, err := a.VerifySnapshot(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("anchor tamper not detected")
	}
}

func TestVerifyNotSnapshot(t *testing.T) {
	a := testArchive(t, 256)
	root, err := a.WriteStream([]byte("never anchored"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.VerifySnapshot(root); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("err %v", err)
	}
}

func TestPointerBlockRoundTrip(t *testing.T) {
	children := []Score{ScoreOf([]byte("a")), ScoreOf([]byte("b"))}
	blk := marshalPointer(3, 999, children)
	depth, total, got, err := parsePointer(blk)
	if err != nil {
		t.Fatal(err)
	}
	if depth != 3 || total != 999 || len(got) != 2 || got[0] != children[0] || got[1] != children[1] {
		t.Fatalf("parsed %d %d %v", depth, total, got)
	}
}

func TestParsePointerRejectsGarbage(t *testing.T) {
	if _, _, _, err := parsePointer(make([]byte, device.DataBytes)); err == nil {
		t.Fatal("garbage pointer parsed")
	}
	if _, _, _, err := parsePointer([]byte("short")); err == nil {
		t.Fatal("short pointer parsed")
	}
}

func TestScoreString(t *testing.T) {
	s := ScoreOf([]byte("x"))
	if len(s.String()) != 16 {
		t.Fatalf("score string %q", s.String())
	}
}

func TestWriteStreamOutOfSpace(t *testing.T) {
	a := testArchive(t, 8) // tiny device
	rng := sim.NewRNG(55)
	data := make([]byte, 20*device.DataBytes)
	for i := range data {
		data[i] = byte(rng.Uint64()) // distinct blocks defeat dedup
	}
	if _, err := a.WriteStream(data); err == nil {
		t.Fatal("oversized stream stored on a tiny device")
	}
}

func TestSnapshotOutOfSpace(t *testing.T) {
	a := testArchive(t, 4)
	root, err := a.WriteStream([]byte("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the rest so the snapshot line cannot allocate.
	for i := 0; ; i++ {
		if _, err := a.PutBlock([]byte{byte(i)}); err != nil {
			break
		}
	}
	if _, err := a.Snapshot(root); err == nil {
		t.Fatal("snapshot allocated on a full device")
	}
}
