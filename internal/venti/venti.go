// Package venti implements a Venti-style content-addressed archival
// store [40] over the SERO store, as sketched in §4.2 of the paper:
// every block is addressed by the SHA-256 of its contents (its
// "score"); pointer blocks hold the scores of their children, built
// from the leaves upward; the root score authenticates the entire
// hierarchy. Heating the line that holds the root node anchors the
// whole snapshot in tamper-evident storage — "the most relevant node
// to be heated is the root node, because this protects the entire
// hierarchy".
package venti

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"sero/internal/core"
	"sero/internal/device"
)

// Score is the content address of a block.
type Score [sha256.Size]byte

// String renders the score in hex.
func (s Score) String() string { return fmt.Sprintf("%x", s[:8]) }

// ScoreOf computes the content address of a block.
func ScoreOf(data []byte) Score { return sha256.Sum256(data) }

// Pointer-block layout: blocks are exactly device.DataBytes long.
const (
	ptrMagic = "VPTR"
	// ptrHeader is magic(4) + depth(1) + reserved(3) + count(4) +
	// totalLen(8).
	ptrHeader = 20
	// FanOut is the number of child scores per pointer block.
	FanOut = (device.DataBytes - ptrHeader) / sha256.Size
)

// Archive is a content-addressed store over a SERO core store.
type Archive struct {
	st *core.Store
	// index maps scores to their physical block; content addressing
	// makes writes idempotent (natural dedup).
	index map[Score]uint64
	// snapshots records heated root anchors: root score → line start.
	snapshots map[Score]uint64

	stats Stats
}

// Stats counts archive activity.
type Stats struct {
	BlocksWritten uint64
	BlocksDeduped uint64
	Snapshots     uint64
}

// Archive errors.
var (
	// ErrUnknownScore reports a score absent from the index.
	ErrUnknownScore = errors.New("venti: unknown score")
	// ErrCorrupt reports a block whose content no longer matches its
	// score — evidence of tampering.
	ErrCorrupt = errors.New("venti: block content does not match score")
	// ErrNotSnapshot reports a verify of a root that was never
	// heat-anchored.
	ErrNotSnapshot = errors.New("venti: root is not a heated snapshot")
)

// New builds an archive on st.
func New(st *core.Store) *Archive {
	return &Archive{
		st:        st,
		index:     make(map[Score]uint64),
		snapshots: make(map[Score]uint64),
	}
}

// Stats returns a copy of the counters.
func (a *Archive) Stats() Stats { return a.stats }

// PutBlock stores one block (padded to the device block size) and
// returns its score. Identical content is stored once.
func (a *Archive) PutBlock(data []byte) (Score, error) {
	if len(data) > device.DataBytes {
		return Score{}, fmt.Errorf("venti: block of %d bytes exceeds %d", len(data), device.DataBytes)
	}
	padded := make([]byte, device.DataBytes)
	copy(padded, data)
	score := ScoreOf(padded)
	if _, ok := a.index[score]; ok {
		a.stats.BlocksDeduped++
		return score, nil
	}
	pba, err := a.st.Alloc(1, 1)
	if err != nil {
		return Score{}, err
	}
	if err := a.st.Write(pba, padded); err != nil {
		return Score{}, err
	}
	a.index[score] = pba
	a.stats.BlocksWritten++
	return score, nil
}

// GetBlock fetches a block by score and verifies the content against
// the address — "a computed hash that does not match the address of
// the node presents evidence of tampering".
func (a *Archive) GetBlock(score Score) ([]byte, error) {
	pba, ok := a.index[score]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownScore, score)
	}
	data, err := a.st.Read(pba)
	if err != nil {
		return nil, err
	}
	if ScoreOf(data) != score {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, score)
	}
	return data, nil
}

// marshalPointer builds a pointer block for the given children.
func marshalPointer(depth uint8, totalLen uint64, children []Score) []byte {
	if len(children) > FanOut {
		panic(fmt.Sprintf("venti: %d children exceed fan-out %d", len(children), FanOut))
	}
	buf := make([]byte, device.DataBytes)
	copy(buf[0:4], ptrMagic)
	buf[4] = depth
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(children)))
	binary.BigEndian.PutUint64(buf[12:20], totalLen)
	off := ptrHeader
	for _, c := range children {
		copy(buf[off:off+sha256.Size], c[:])
		off += sha256.Size
	}
	return buf
}

// parsePointer decodes a pointer block.
func parsePointer(buf []byte) (depth uint8, totalLen uint64, children []Score, err error) {
	if len(buf) != device.DataBytes || !bytes.Equal(buf[0:4], []byte(ptrMagic)) {
		return 0, 0, nil, errors.New("venti: not a pointer block")
	}
	depth = buf[4]
	count := int(binary.BigEndian.Uint32(buf[8:12]))
	totalLen = binary.BigEndian.Uint64(buf[12:20])
	if count > FanOut {
		return 0, 0, nil, errors.New("venti: pointer block fan-out overflow")
	}
	off := ptrHeader
	for i := 0; i < count; i++ {
		var s Score
		copy(s[:], buf[off:off+sha256.Size])
		children = append(children, s)
		off += sha256.Size
	}
	return depth, totalLen, children, nil
}

// WriteStream stores an arbitrary byte stream as a leaves-up hash tree
// and returns the root score.
func (a *Archive) WriteStream(data []byte) (Score, error) {
	// Leaves.
	var level []Score
	if len(data) == 0 {
		s, err := a.PutBlock(nil)
		if err != nil {
			return Score{}, err
		}
		level = []Score{s}
	}
	for off := 0; off < len(data); off += device.DataBytes {
		end := off + device.DataBytes
		if end > len(data) {
			end = len(data)
		}
		s, err := a.PutBlock(data[off:end])
		if err != nil {
			return Score{}, err
		}
		level = append(level, s)
	}
	// Build upward. Depth 1 points at leaves.
	depth := uint8(1)
	for len(level) > 1 || depth == 1 {
		var next []Score
		for off := 0; off < len(level); off += FanOut {
			end := off + FanOut
			if end > len(level) {
				end = len(level)
			}
			blk := marshalPointer(depth, uint64(len(data)), level[off:end])
			s, err := a.PutBlock(blk)
			if err != nil {
				return Score{}, err
			}
			next = append(next, s)
		}
		level = next
		depth++
		if len(level) == 1 && depth > 1 {
			break
		}
	}
	return level[0], nil
}

// ReadStream reconstructs a stream from its root score, verifying
// every node against its address on the way down.
func (a *Archive) ReadStream(root Score) ([]byte, error) {
	blk, err := a.GetBlock(root)
	if err != nil {
		return nil, err
	}
	depth, totalLen, children, err := parsePointer(blk)
	if err != nil {
		return nil, err
	}
	var out []byte
	for _, c := range children {
		part, rerr := a.readNode(c, int(depth)-1)
		if rerr != nil {
			return nil, rerr
		}
		out = append(out, part...)
	}
	if uint64(len(out)) < totalLen {
		return nil, fmt.Errorf("venti: stream truncated: %d < %d", len(out), totalLen)
	}
	return out[:totalLen], nil
}

// readNode returns the concatenated leaf data under score. depth 0
// marks a leaf; the walk is depth-directed so leaf content can never
// be confused with a pointer block.
func (a *Archive) readNode(score Score, depth int) ([]byte, error) {
	blk, err := a.GetBlock(score)
	if err != nil {
		return nil, err
	}
	if depth <= 0 {
		return blk, nil
	}
	gotDepth, _, children, perr := parsePointer(blk)
	if perr != nil {
		return nil, perr
	}
	if int(gotDepth) != depth {
		return nil, fmt.Errorf("venti: pointer depth %d, expected %d", gotDepth, depth)
	}
	var out []byte
	for _, c := range children {
		part, rerr := a.readNode(c, depth-1)
		if rerr != nil {
			return nil, rerr
		}
		out = append(out, part...)
	}
	return out, nil
}

// Snapshot anchors root in tamper-evident storage: the root node is
// copied into a fresh line of its own and the line is heated. Returns
// the heated line info.
func (a *Archive) Snapshot(root Score) (device.LineInfo, error) {
	blk, err := a.GetBlock(root)
	if err != nil {
		return device.LineInfo{}, err
	}
	start, logN, err := a.st.WriteLine([][]byte{blk})
	if err != nil {
		return device.LineInfo{}, err
	}
	li, err := a.st.Heat(start, logN)
	if err != nil {
		return device.LineInfo{}, err
	}
	a.snapshots[root] = start
	a.stats.Snapshots++
	return li, nil
}

// VerifySnapshot checks a heated snapshot end to end: the heated line
// holding the root anchor, then the entire hierarchy under the root
// (every node re-hashed against its address).
func (a *Archive) VerifySnapshot(root Score) (device.VerifyReport, error) {
	start, ok := a.snapshots[root]
	if !ok {
		return device.VerifyReport{}, fmt.Errorf("%w: %v", ErrNotSnapshot, root)
	}
	rep, err := a.st.Verify(start)
	if err != nil {
		return rep, err
	}
	if !rep.OK {
		return rep, nil
	}
	// The anchored root block must still match the root score.
	anchored, err := a.st.Read(start + 1)
	if err != nil {
		return rep, err
	}
	if ScoreOf(anchored) != root {
		rep.OK = false
		rep.HashMismatch = true
		return rep, nil
	}
	// Walk the hierarchy.
	if _, err := a.ReadStream(root); err != nil {
		rep.OK = false
		return rep, err
	}
	return rep, nil
}

// Snapshots lists the anchored roots.
func (a *Archive) Snapshots() []Score {
	out := make([]Score, 0, len(a.snapshots))
	for s := range a.snapshots {
		out = append(out, s)
	}
	return out
}
