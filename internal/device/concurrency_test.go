package device

import (
	"bytes"
	"sync"
	"testing"
)

// The device serialises operations internally (one mechanical sled);
// these tests drive it from many goroutines to prove the locking holds
// up under the race detector.

func TestConcurrentReadersAndWriters(t *testing.T) {
	d := testDevice(t, 64)
	for pba := uint64(0); pba < 64; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				pba := uint64((g*20 + i) % 32)
				got, err := d.MRS(pba)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, pattern(byte(pba))) {
					errs <- ErrChecksum
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				pba := uint64(32 + (g*10+i)%32)
				if err := d.MWS(pba, pattern(byte(pba))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentHeatAndVerify(t *testing.T) {
	d := testDevice(t, 64)
	for pba := uint64(0); pba < 64; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start := uint64(g * 16)
			if _, err := d.HeatLine(start, 4); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 3; i++ {
				rep, err := d.VerifyLine(start)
				if err != nil {
					errs <- err
					return
				}
				if !rep.OK {
					errs <- ErrHeatVerify
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(d.Lines()) != 4 {
		t.Fatalf("lines %d", len(d.Lines()))
	}
}

func TestConcurrentStatsAccess(t *testing.T) {
	d := testDevice(t, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = d.Stats()
				_ = d.HeatedBlocks()
				_ = d.IsHeatedCached(3)
				_ = d.IsBad(3)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = d.MWS(uint64(i%16), pattern(byte(i)))
		}
	}()
	wg.Wait()
}
