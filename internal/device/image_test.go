package device

import (
	"bytes"
	"testing"

	"sero/internal/medium"
)

func TestSaveLoadImageRoundTrip(t *testing.T) {
	d := testDevice(t, 16)
	for pba := uint64(0); pba < 8; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	want, err := d.HeatLine(0, 3)
	if err != nil {
		t.Fatal(err)
	}

	img := d.SaveImage()
	d2, recovered, err := LoadImage(img, DefaultParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Blocks() != 16 {
		t.Fatalf("blocks %d", d2.Blocks())
	}
	if len(recovered) != 1 || recovered[0].Record.Hash != want.Record.Hash {
		t.Fatalf("recovered %+v", recovered)
	}
	// Data survives the round trip.
	for pba := uint64(1); pba < 8; pba++ {
		got, rerr := d2.MRS(pba)
		if rerr != nil || !bytes.Equal(got, pattern(byte(pba))) {
			t.Fatalf("block %d after load: %v", pba, rerr)
		}
	}
	// Verification still works.
	rep, err := d2.VerifyLine(0)
	if err != nil || !rep.OK {
		t.Fatalf("verify after load: %+v %v", rep, err)
	}
	// Wear and defects survive too.
	d.Medium().SetStuck(3, medium.StuckUp)
	img2 := d.SaveImage()
	d3, _, err := LoadImage(img2, DefaultParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if d3.Medium().Stuck(3) != medium.StuckUp {
		t.Fatal("defect lost in image")
	}
}

func TestLoadImageRejectsGarbage(t *testing.T) {
	if _, _, err := LoadImage([]byte("nonsense"), DefaultParams(0)); err == nil {
		t.Fatal("garbage image loaded")
	}
}

func TestLoadImageBlockMismatch(t *testing.T) {
	d := testDevice(t, 8)
	img := d.SaveImage()
	if _, _, err := LoadImage(img, DefaultParams(16)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestImageTamperedBetweenSessions(t *testing.T) {
	// The attacker edits the image offline; the reloaded device's
	// verification catches it — host state is rebuilt from the medium,
	// so there is nothing host-side to spoof.
	d := testDevice(t, 16)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	img := d.SaveImage()
	d2, _, err := LoadImage(img, DefaultParams(0))
	if err != nil {
		t.Fatal(err)
	}
	// Offline raw edit on the loaded device's medium.
	bits := ForgedFrameBits(2, pattern(0x66))
	base := 2 * DotsPerBlock
	for i, b := range bits {
		d2.Medium().MWB(base+i, b)
	}
	rep, err := d2.VerifyLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("offline tamper not detected after reload")
	}
}

func TestShredLine(t *testing.T) {
	d := testDevice(t, 16)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	rep, err := d.ShredLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DotsDestroyed != 3*DotsPerBlock {
		t.Fatalf("destroyed %d dots", rep.DotsDestroyed)
	}
	// Data is unrecoverable...
	for pba := uint64(1); pba < 4; pba++ {
		if _, err := d.MRS(pba); err == nil {
			t.Fatalf("shredded block %d still readable", pba)
		}
	}
	// ...and the destruction is self-evident.
	shredded, err := d.IsShredded(0)
	if err != nil || !shredded {
		t.Fatalf("IsShredded %v %v", shredded, err)
	}
	vr, err := d.VerifyLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if vr.OK {
		t.Fatal("shredded line verifies clean")
	}
	// The tombstone record survives a rescan.
	recovered, _, err := d.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("tombstone lost: %v", recovered)
	}
}

func TestShredUnknownLine(t *testing.T) {
	d := testDevice(t, 8)
	if _, err := d.ShredLine(0); err == nil {
		t.Fatal("shred of unknown line accepted")
	}
	if _, err := d.IsShredded(0); err == nil {
		t.Fatal("IsShredded of unknown line accepted")
	}
}

func TestShredNotShreddedDetection(t *testing.T) {
	d := testDevice(t, 16)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	shredded, err := d.IsShredded(0)
	if err != nil || shredded {
		t.Fatalf("intact line reported shredded: %v %v", shredded, err)
	}
}
