package device

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"sero/internal/manchester"
)

// Line operations (§3 "Heat a line" / "Verify a heated line").
//
// A line is a sequence of 2^N contiguous blocks aligned on a 2^N
// boundary. Heating a line reads blocks 1..2^N−1 magnetically,
// computes a secure hash of the blocks *and their physical addresses*,
// and writes the hash (plus metadata) Manchester-encoded into block 0
// with the electrical write-once operation. Block 0's physical address
// is therefore known a priori — the defence against the splitting and
// coalescing attacks of §5.1.

// HeatRecord is the electrically written content of a line's block 0:
// Fig 3's "hash+meta". The fixed 64-byte wire format occupies 1024 of
// the block's 4096 data-region dots when Manchester encoded, leaving
// the paper's "3584 bits of space for meta data, signatures, etc."
// (we consume 512 of those for our metadata).
type HeatRecord struct {
	// LogN is the line size exponent: the line covers 1<<LogN blocks.
	LogN uint8
	// Start is the PBA of block 0 of the line.
	Start uint64
	// HeatedAt is the virtual time of the heat operation, in
	// nanoseconds.
	HeatedAt uint64
	// Hash is the SHA-256 over (PBA‖data) of blocks 1..2^N−1.
	Hash [sha256.Size]byte
}

// HeatRecordBytes is the wire size of a heat record.
const HeatRecordBytes = 64

var heatMagic = [4]byte{'S', 'E', 'R', 'O'}

const heatVersion = 1

// Marshal encodes the record into its fixed 64-byte wire format.
func (r *HeatRecord) Marshal() []byte {
	buf := make([]byte, HeatRecordBytes)
	copy(buf[0:4], heatMagic[:])
	buf[4] = heatVersion
	buf[5] = r.LogN
	// buf[6:8] reserved
	binary.BigEndian.PutUint64(buf[8:16], r.Start)
	binary.BigEndian.PutUint64(buf[16:24], r.HeatedAt)
	copy(buf[24:56], r.Hash[:])
	// buf[56:64] reserved for signatures etc.
	return buf
}

// ErrBadRecord reports a heat record that does not parse.
var ErrBadRecord = errors.New("device: malformed heat record")

// UnmarshalHeatRecord parses a 64-byte wire record.
func UnmarshalHeatRecord(buf []byte) (HeatRecord, error) {
	if len(buf) != HeatRecordBytes {
		return HeatRecord{}, fmt.Errorf("%w: %d bytes", ErrBadRecord, len(buf))
	}
	if !bytes.Equal(buf[0:4], heatMagic[:]) {
		return HeatRecord{}, fmt.Errorf("%w: bad magic", ErrBadRecord)
	}
	if buf[4] != heatVersion {
		return HeatRecord{}, fmt.Errorf("%w: version %d", ErrBadRecord, buf[4])
	}
	var r HeatRecord
	r.LogN = buf[5]
	r.Start = binary.BigEndian.Uint64(buf[8:16])
	r.HeatedAt = binary.BigEndian.Uint64(buf[16:24])
	copy(r.Hash[:], buf[24:56])
	return r, nil
}

// LineInfo describes a heated line known to the device.
type LineInfo struct {
	Start  uint64
	LogN   uint8
	Record HeatRecord
}

// Blocks returns the number of blocks in the line.
func (l LineInfo) Blocks() uint64 { return 1 << l.LogN }

// End returns the first PBA after the line.
func (l LineInfo) End() uint64 { return l.Start + l.Blocks() }

// Line-operation errors.
var (
	// ErrBadLine reports a misaligned or mis-sized line argument.
	ErrBadLine = errors.New("device: line not a 2^N-aligned 2^N-block range")
	// ErrLineOverlap reports a heat request overlapping an existing
	// heated line.
	ErrLineOverlap = errors.New("device: line overlaps an already-heated line")
	// ErrHeatVerify reports that the post-heat read-back check failed
	// (the paper's step 4 "or else fail").
	ErrHeatVerify = errors.New("device: heated hash read-back verification failed")
)

// lineHash computes the secure hash of a line: SHA-256 over
// (PBA‖data) for blocks start+1 .. start+n−1, in order. Binding the
// physical addresses prevents the copy-mask attack (§5.2: "a copy can
// always be distinguished from an original").
func lineHash(start uint64, blockData [][]byte) [sha256.Size]byte {
	h := sha256.New()
	var pbaBuf [8]byte
	for i, data := range blockData {
		binary.BigEndian.PutUint64(pbaBuf[:], start+1+uint64(i))
		h.Write(pbaBuf[:])
		h.Write(data)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// lineRegistered reports whether [start, start+n) overlaps a known
// heated line. Caller holds d.mu.
func (d *Device) lineOverlaps(start, n uint64) bool {
	for s, li := range d.lines {
		e := s + li.Blocks()
		if start < e && s < start+n {
			return true
		}
	}
	return false
}

// HeatLine performs the atomic heat operation of §3 on the line of
// 1<<logN blocks starting at start:
//
//  1. read blocks 1..2^N−1 magnetically;
//  2. compute SHA-256 of the blocks and their addresses;
//  3. write the Manchester encoding of the hash record into block 0
//     with the electrical write operation;
//  4. check the hash reads back electrically, or fail.
//
// Re-heating an identical line is harmless (identical dots are already
// heated, EWB is idempotent); heating different content into a heated
// block turns cells into HH, which VerifyLine reports as tampering —
// both behaviours match §3.
func (d *Device) HeatLine(start uint64, logN uint8) (LineInfo, error) {
	if logN < 1 || logN > 20 {
		return LineInfo{}, fmt.Errorf("%w: logN=%d", ErrBadLine, logN)
	}
	n := uint64(1) << logN
	if start%n != 0 {
		return LineInfo{}, fmt.Errorf("%w: start %d not aligned to %d", ErrBadLine, start, n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if start+n > uint64(d.p.Blocks) {
		return LineInfo{}, fmt.Errorf("%w: line [%d,%d) beyond %d blocks",
			ErrOutOfRange, start, start+n, d.p.Blocks)
	}
	reheat := false
	if d.lineOverlaps(start, n) {
		if li, ok := d.lines[start]; !ok || li.LogN != logN {
			return LineInfo{}, fmt.Errorf("%w: [%d,%d)", ErrLineOverlap, start, start+n)
		}
		reheat = true
	}

	// Step 1: read the member blocks.
	blockData := make([][]byte, 0, n-1)
	for pba := start + 1; pba < start+n; pba++ {
		data, err := d.mrsLocked(pba)
		if err != nil {
			return LineInfo{}, fmt.Errorf("device: heat read of block %d: %w", pba, err)
		}
		blockData = append(blockData, data)
	}

	// Step 2: hash blocks and addresses.
	rec := HeatRecord{
		LogN:     logN,
		Start:    start,
		HeatedAt: uint64(d.clock.Now()),
		Hash:     lineHash(start, blockData),
	}
	if reheat {
		// §3: a heat of an already-heated line "either has no effect
		// and is therefore harmless (if the data in block 0 is
		// invariant) or it will turn Manchester encoded bits into HH,
		// thus providing evidence of tampering". An unchanged hash is
		// a no-op; a changed one proceeds and inevitably damages the
		// record into HH cells — exactly the evidence the paper wants.
		if existing := d.lines[start]; existing.Record.Hash == rec.Hash {
			return existing, nil
		}
		rec.HeatedAt = d.lines[start].Record.HeatedAt // timestamp dots are already burnt
	}

	// Step 3: electrical write of the Manchester-encoded record.
	if err := d.ewsLocked(start, rec.Marshal()); err != nil {
		return LineInfo{}, fmt.Errorf("device: heat write of block %d: %w", start, err)
	}

	// Step 4: read back and verify.
	rep, err := d.ersLocked(start, HeatRecordBytes)
	if err != nil {
		return LineInfo{}, fmt.Errorf("device: heat read-back: %w", err)
	}
	if !rep.Clean || !bytes.Equal(rep.Payload, rec.Marshal()) {
		return LineInfo{}, ErrHeatVerify
	}

	li := LineInfo{Start: start, LogN: logN, Record: rec}
	d.lines[start] = li
	d.heated[start] = true
	d.stats.HeatLines++
	return li, nil
}

// VerifyReport is the outcome of verifying a heated line.
type VerifyReport struct {
	Line LineInfo
	// OK is true when the line shows no evidence of tampering.
	OK bool
	// RecordDamaged is true when block 0's Manchester cells decode
	// with HH/UU cells or the record fails to parse — direct evidence
	// of tampering with the hash itself.
	RecordDamaged bool
	// TamperedCells counts HH cells in block 0.
	TamperedCells int
	// HashMismatch is true when the recomputed hash differs from the
	// stored one.
	HashMismatch bool
	// ReadErrors lists member blocks that could not be read
	// magnetically (e.g. an attacker heated data dots — §5.1 "appears
	// as a read error").
	ReadErrors []uint64
}

// Tampered reports whether the verification found evidence of
// tampering.
func (r VerifyReport) Tampered() bool { return !r.OK }

// VerifyLine recomputes the hash of the line starting at start and
// compares it with the electrically stored record (§3 "Verify a heated
// line"). All failure modes — damaged record cells, unreadable member
// blocks, hash mismatch — are evidence of tampering and reported.
func (d *Device) VerifyLine(start uint64) (VerifyReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	li, ok := d.lines[start]
	if !ok {
		return VerifyReport{}, fmt.Errorf("%w: no heated line at %d", ErrNotHeated, start)
	}
	return d.verifyLocked(li)
}

func (d *Device) verifyLocked(li LineInfo) (VerifyReport, error) {
	rep := VerifyReport{Line: li, OK: true}
	d.stats.VerifyLines++

	// Read the stored record electrically.
	ers, err := d.ersLocked(li.Start, HeatRecordBytes)
	if err != nil {
		return VerifyReport{}, err
	}
	rep.TamperedCells = len(ers.TamperedCells)
	var stored HeatRecord
	if !ers.Clean {
		rep.RecordDamaged = true
		rep.OK = false
	} else {
		stored, err = UnmarshalHeatRecord(ers.Payload)
		if err != nil {
			rep.RecordDamaged = true
			rep.OK = false
		} else if stored.Start != li.Start || stored.LogN != li.LogN {
			rep.RecordDamaged = true
			rep.OK = false
		}
	}

	// Recompute the hash over the member blocks.
	n := uint64(1) << li.LogN
	blockData := make([][]byte, 0, n-1)
	allRead := true
	for pba := li.Start + 1; pba < li.Start+n; pba++ {
		data, rerr := d.mrsLocked(pba)
		if rerr != nil {
			rep.ReadErrors = append(rep.ReadErrors, pba)
			rep.OK = false
			allRead = false
			continue
		}
		blockData = append(blockData, data)
	}
	if allRead && !rep.RecordDamaged {
		if lineHash(li.Start, blockData) != stored.Hash {
			rep.HashMismatch = true
			rep.OK = false
		}
	}
	return rep, nil
}

// Lines returns the heated lines known to the device, sorted by start.
func (d *Device) Lines() []LineInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]LineInfo, 0, len(d.lines))
	for _, li := range d.lines {
		out = append(out, li)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Scan rebuilds the device's heated-line registry from the medium by
// probing every block for electrical data and parsing the records it
// finds. This is the §5.2 recovery path ("a fsck style scan of the
// medium would definitely recover (albeit slowly) all the heated
// files") and also models reattaching a device whose host state was
// lost. It returns the recovered lines and a list of blocks holding
// electrical data that does not parse as a record (evidence of raw
// tampering or a shredded block).
func (d *Device) Scan() (recovered []LineInfo, unparseable []uint64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lines = make(map[uint64]LineInfo)
	d.heated = make(map[uint64]bool)
	for pba := uint64(0); pba < uint64(d.p.Blocks); pba++ {
		hot, perr := d.probeHeatedLocked(pba, 8)
		if perr != nil {
			return nil, nil, perr
		}
		if !hot {
			continue
		}
		d.heated[pba] = true
		rep, rerr := d.ersLocked(pba, HeatRecordBytes)
		if rerr != nil {
			return nil, nil, rerr
		}
		if !rep.Clean {
			unparseable = append(unparseable, pba)
			continue
		}
		rec, uerr := UnmarshalHeatRecord(rep.Payload)
		if uerr != nil || rec.Start != pba {
			unparseable = append(unparseable, pba)
			continue
		}
		li := LineInfo{Start: pba, LogN: rec.LogN, Record: rec}
		d.lines[pba] = li
		recovered = append(recovered, li)
	}
	sort.Slice(recovered, func(i, j int) bool { return recovered[i].Start < recovered[j].Start })
	return recovered, unparseable, nil
}

// ERSReport is the outcome of an electrical sector read.
type ERSReport struct {
	// Payload is the decoded bytes (valid when Clean).
	Payload []byte
	// Clean is true when every cell decoded as valid data.
	Clean bool
	// TamperedCells lists HH cell indices.
	TamperedCells []int
	// UnusedCells lists UU cell indices inside the read range.
	UnusedCells []int
}

func decodeERS(flags []bool) (ERSReport, error) {
	rep, err := manchester.Decode(flags)
	out := ERSReport{
		Payload:       rep.Data,
		Clean:         rep.Clean(),
		TamperedCells: rep.Tampered,
		UnusedCells:   rep.Unused,
	}
	if err != nil && !errors.Is(err, manchester.ErrTampered) && !errors.Is(err, manchester.ErrUnused) {
		return out, err
	}
	return out, nil
}

// decodeERSWOM decodes a WOM-coded electrical read. Every pattern is a
// valid WOM codeword, so the report is always structurally Clean; the
// caller's record parse and hash comparison carry the tamper evidence
// (the §8 trade-off of the denser coding).
func decodeERSWOM(flags []bool) (ERSReport, error) {
	payload, err := manchester.WOMDecode(flags)
	if err != nil {
		return ERSReport{}, err
	}
	return ERSReport{Payload: payload, Clean: true}, nil
}

func manchesterDots(payloadBytes int) int { return manchester.EncodedDots(payloadBytes) }

func womDots(payloadBytes int) int { return manchester.WOMEncodedDots(payloadBytes) }

func manchesterEncode(payload []byte) []bool { return manchester.Encode(payload) }

func womEncode(payload []byte) []bool { return manchester.WOMEncode(payload) }

// headerDotOffset returns the dot offset of the data region within a
// block's frame (the header bits come first).
func headerDotOffset() int { return HeaderBytes * 8 }
