package device

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sero/internal/manchester"
	"sero/internal/trace"
)

// Line operations (§3 "Heat a line" / "Verify a heated line").
//
// A line is a sequence of 2^N contiguous blocks aligned on a 2^N
// boundary. Heating a line reads blocks 1..2^N−1 magnetically,
// computes a secure hash of the blocks *and their physical addresses*,
// and writes the hash (plus metadata) Manchester-encoded into block 0
// with the electrical write-once operation. Block 0's physical address
// is therefore known a priori — the defence against the splitting and
// coalescing attacks of §5.1.

// HeatRecord is the electrically written content of a line's block 0:
// Fig 3's "hash+meta". The fixed 64-byte wire format occupies 1024 of
// the block's 4096 data-region dots when Manchester encoded, leaving
// the paper's "3584 bits of space for meta data, signatures, etc."
// (we consume 512 of those for our metadata).
type HeatRecord struct {
	// LogN is the line size exponent: the line covers 1<<LogN blocks.
	LogN uint8
	// Start is the PBA of block 0 of the line.
	Start uint64
	// HeatedAt is the virtual time of the heat operation, in
	// nanoseconds.
	HeatedAt uint64
	// Hash is the SHA-256 over (PBA‖data) of blocks 1..2^N−1.
	Hash [sha256.Size]byte
}

// HeatRecordBytes is the wire size of a heat record.
const HeatRecordBytes = 64

var heatMagic = [4]byte{'S', 'E', 'R', 'O'}

const heatVersion = 1

// Marshal encodes the record into its fixed 64-byte wire format.
func (r *HeatRecord) Marshal() []byte {
	buf := make([]byte, HeatRecordBytes)
	copy(buf[0:4], heatMagic[:])
	buf[4] = heatVersion
	buf[5] = r.LogN
	// buf[6:8] reserved
	binary.BigEndian.PutUint64(buf[8:16], r.Start)
	binary.BigEndian.PutUint64(buf[16:24], r.HeatedAt)
	copy(buf[24:56], r.Hash[:])
	// buf[56:64] reserved for signatures etc.
	return buf
}

// ErrBadRecord reports a heat record that does not parse.
var ErrBadRecord = errors.New("device: malformed heat record")

// UnmarshalHeatRecord parses a 64-byte wire record.
func UnmarshalHeatRecord(buf []byte) (HeatRecord, error) {
	if len(buf) != HeatRecordBytes {
		return HeatRecord{}, fmt.Errorf("%w: %d bytes", ErrBadRecord, len(buf))
	}
	if !bytes.Equal(buf[0:4], heatMagic[:]) {
		return HeatRecord{}, fmt.Errorf("%w: bad magic", ErrBadRecord)
	}
	if buf[4] != heatVersion {
		return HeatRecord{}, fmt.Errorf("%w: version %d", ErrBadRecord, buf[4])
	}
	var r HeatRecord
	r.LogN = buf[5]
	r.Start = binary.BigEndian.Uint64(buf[8:16])
	r.HeatedAt = binary.BigEndian.Uint64(buf[16:24])
	copy(r.Hash[:], buf[24:56])
	return r, nil
}

// LineInfo describes a heated line known to the device.
type LineInfo struct {
	Start  uint64
	LogN   uint8
	Record HeatRecord
}

// Blocks returns the number of blocks in the line.
func (l LineInfo) Blocks() uint64 { return 1 << l.LogN }

// End returns the first PBA after the line.
func (l LineInfo) End() uint64 { return l.Start + l.Blocks() }

// Line-operation errors.
var (
	// ErrBadLine reports a misaligned or mis-sized line argument.
	ErrBadLine = errors.New("device: line not a 2^N-aligned 2^N-block range")
	// ErrLineOverlap reports a heat request overlapping an existing
	// heated line.
	ErrLineOverlap = errors.New("device: line overlaps an already-heated line")
	// ErrHeatVerify reports that the post-heat read-back check failed
	// (the paper's step 4 "or else fail").
	ErrHeatVerify = errors.New("device: heated hash read-back verification failed")
)

// lineRecordSize is the contribution of one member block to the hashed
// line image: its 8-byte physical address followed by its data.
const lineRecordSize = 8 + DataBytes

// lineRegistered reports whether [start, start+n) overlaps a known
// heated line. Caller holds d.regMu.
func (d *Device) lineOverlaps(start, n uint64) bool {
	for s, li := range d.lines {
		e := s + li.Blocks()
		if start < e && s < start+n {
			return true
		}
	}
	return false
}

// readLineImage reads the member blocks of the line [start, start+n)
// into one contiguous buffer of (PBA ‖ data) records — the one
// canonical byte stream the line hash covers, built in a single pass
// so the caller hashes it with one SHA-256 call. Binding the physical
// addresses into the hashed stream prevents the copy-mask attack
// (§5.2: "a copy can always be distinguished from an original").
//
// When readErrs is nil the first unreadable member aborts with a
// wrapped error (the heat path: a line that cannot be read cannot be
// heated). When readErrs is non-nil, unreadable members are collected
// there instead and the image is truncated to the blocks that did
// read (the verify path, where a read error is tamper evidence, not
// failure). Caller holds the line's stripe locks.
func (d *Device) readLineImage(pl *plane, start, n uint64, readErrs *[]uint64) ([]byte, error) {
	buf := make([]byte, (n-1)*lineRecordSize)
	off := 0
	for pba := start + 1; pba < start+n; pba++ {
		err := d.magReadCheck(pba)
		if err == nil {
			binary.BigEndian.PutUint64(buf[off:], pba)
			_, err = d.mrsInto(pl, pba, buf[off+8:off+lineRecordSize])
		}
		if err != nil {
			if readErrs == nil {
				return nil, fmt.Errorf("device: heat read of block %d: %w", pba, err)
			}
			*readErrs = append(*readErrs, pba)
			continue
		}
		off += lineRecordSize
	}
	return buf[:off], nil
}

// HeatLine performs the atomic heat operation of §3 on the line of
// 1<<logN blocks starting at start:
//
//  1. read blocks 1..2^N−1 magnetically;
//  2. compute SHA-256 of the blocks and their addresses;
//  3. write the Manchester encoding of the hash record into block 0
//     with the electrical write operation;
//  4. check the hash reads back electrically, or fail.
//
// Re-heating an identical line is harmless (identical dots are already
// heated, EWB is idempotent); heating different content into a heated
// block turns cells into HH, which VerifyLine reports as tampering —
// both behaviours match §3.
func (d *Device) HeatLine(start uint64, logN uint8) (LineInfo, error) {
	if logN < 1 || logN > 20 {
		return LineInfo{}, fmt.Errorf("%w: logN=%d", ErrBadLine, logN)
	}
	n := uint64(1) << logN
	if start%n != 0 {
		return LineInfo{}, fmt.Errorf("%w: start %d not aligned to %d", ErrBadLine, start, n)
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	if start+n > uint64(d.p.Blocks) {
		return LineInfo{}, fmt.Errorf("%w: line [%d,%d) beyond %d blocks",
			ErrOutOfRange, start, start+n, d.p.Blocks)
	}
	locked := d.lockCrosstalkRange(start, start+n)
	defer d.unlockRange(locked)

	reheat := false
	var existing LineInfo
	d.regMu.RLock()
	if d.lineOverlaps(start, n) {
		li, ok := d.lines[start]
		if !ok || li.LogN != logN {
			d.regMu.RUnlock()
			return LineInfo{}, fmt.Errorf("%w: [%d,%d)", ErrLineOverlap, start, start+n)
		}
		existing = li
		reheat = true
	}
	d.regMu.RUnlock()

	// Steps 1+2: read the member blocks into one contiguous image and
	// hash it in a single batched pass.
	img, err := d.readLineImage(&d.fg, start, n, nil)
	if err != nil {
		return LineInfo{}, err
	}
	rec := HeatRecord{
		LogN:     logN,
		Start:    start,
		HeatedAt: uint64(d.clock.Now()),
		Hash:     sha256.Sum256(img),
	}
	if reheat {
		// §3: a heat of an already-heated line "either has no effect
		// and is therefore harmless (if the data in block 0 is
		// invariant) or it will turn Manchester encoded bits into HH,
		// thus providing evidence of tampering". An unchanged hash is
		// a no-op; a changed one proceeds and inevitably damages the
		// record into HH cells — exactly the evidence the paper wants.
		if existing.Record.Hash == rec.Hash {
			return existing, nil
		}
		rec.HeatedAt = existing.Record.HeatedAt // timestamp dots are already burnt
	}

	// Step 3: electrical write of the Manchester-encoded record.
	if err := d.ewsCheck(start); err != nil {
		return LineInfo{}, fmt.Errorf("device: heat write of block %d: %w", start, err)
	}
	d.ewsOn(&d.fg, start, rec.Marshal())

	// Step 4: read back and verify.
	rep, err := d.ersOn(&d.fg, start, HeatRecordBytes)
	if err != nil {
		return LineInfo{}, fmt.Errorf("device: heat read-back: %w", err)
	}
	if !rep.Clean || !bytes.Equal(rep.Payload, rec.Marshal()) {
		d.regMu.Lock()
		d.heated[start] = true // the dots are burnt even though the heat failed
		d.regMu.Unlock()
		return LineInfo{}, ErrHeatVerify
	}

	li := LineInfo{Start: start, LogN: logN, Record: rec}
	d.regMu.Lock()
	d.lines[start] = li
	d.heated[start] = true
	d.regMu.Unlock()
	d.fg.record(d, func(st *OpStats) { st.HeatLines++ })
	return li, nil
}

// VerifyReport is the outcome of verifying a heated line.
type VerifyReport struct {
	Line LineInfo
	// OK is true when the line shows no evidence of tampering.
	OK bool
	// RecordDamaged is true when block 0's Manchester cells decode
	// with HH/UU cells or the record fails to parse — direct evidence
	// of tampering with the hash itself.
	RecordDamaged bool
	// TamperedCells counts HH cells in block 0.
	TamperedCells int
	// HashMismatch is true when the recomputed hash differs from the
	// stored one.
	HashMismatch bool
	// ReadErrors lists member blocks that could not be read
	// magnetically (e.g. an attacker heated data dots — §5.1 "appears
	// as a read error").
	ReadErrors []uint64
}

// Tampered reports whether the verification found evidence of
// tampering.
func (r VerifyReport) Tampered() bool { return !r.OK }

// VerifyLine recomputes the hash of the line starting at start and
// compares it with the electrically stored record (§3 "Verify a heated
// line"). All failure modes — damaged record cells, unreadable member
// blocks, hash mismatch — are evidence of tampering and reported.
func (d *Device) VerifyLine(start uint64) (VerifyReport, error) {
	return d.verifyStart(&d.fg, start)
}

// VerifyLineOffClock verifies the line starting at start on a private
// latency plane without advancing the device's shared clock: the model
// of verification hardware running concurrently with (not ahead of)
// the foreground data path. The elapsed virtual time the check *would*
// have cost is returned as shadow time for accounting, and the
// operation counters are folded into the device stats as usual. This
// is the incremental background auditor's read primitive — it keeps
// audited and unaudited runs byte-identical in virtual time while
// still charging the real stripe-lock contention in wall time.
func (d *Device) VerifyLineOffClock(start uint64) (VerifyReport, time.Duration, error) {
	pl := d.newPlane(0, int64(d.clock.Now()))
	rep, err := d.verifyStart(pl, start)
	d.mergeStats(pl.stats)
	return rep, pl.clock.Now(), err
}

// verifyStart looks up and verifies the line at start on the given
// plane, taking the gate and stripe locks itself.
func (d *Device) verifyStart(pl *plane, start uint64) (VerifyReport, error) {
	d.gate.RLock()
	defer d.gate.RUnlock()
	d.regMu.RLock()
	li, ok := d.lines[start]
	d.regMu.RUnlock()
	if !ok {
		return VerifyReport{}, fmt.Errorf("%w: no heated line at %d", ErrNotHeated, start)
	}
	locked := d.lockRange(li.Start, li.End())
	defer d.unlockRange(locked)
	return d.verifyOn(pl, li)
}

// verifyOn verifies one line on the given plane. Caller holds the gate
// read lock and the line's stripe locks.
func (d *Device) verifyOn(pl *plane, li LineInfo) (VerifyReport, error) {
	rep := VerifyReport{Line: li, OK: true}
	pl.record(d, func(st *OpStats) { st.VerifyLines++ })

	// Read the stored record electrically.
	ers, err := d.ersOn(pl, li.Start, HeatRecordBytes)
	if err != nil {
		return VerifyReport{}, err
	}
	rep.TamperedCells = len(ers.TamperedCells)
	var stored HeatRecord
	if !ers.Clean {
		rep.RecordDamaged = true
		rep.OK = false
	} else {
		stored, err = UnmarshalHeatRecord(ers.Payload)
		if err != nil {
			rep.RecordDamaged = true
			rep.OK = false
		} else if stored.Start != li.Start || stored.LogN != li.LogN {
			rep.RecordDamaged = true
			rep.OK = false
		}
	}

	// Recompute the hash over the member blocks, reading them into one
	// contiguous image so the hash is one batched pass.
	img, err := d.readLineImage(pl, li.Start, li.Blocks(), &rep.ReadErrors)
	if err != nil {
		return VerifyReport{}, err
	}
	if len(rep.ReadErrors) > 0 {
		rep.OK = false
	}
	if len(rep.ReadErrors) == 0 && !rep.RecordDamaged {
		if sha256.Sum256(img) != stored.Hash {
			rep.HashMismatch = true
			rep.OK = false
		}
	}
	return rep, nil
}

// VerifyOutcome pairs one line's verification report with its error,
// for fan-out collection.
type VerifyOutcome struct {
	Report VerifyReport
	Err    error
}

// VerifyLines verifies the lines at the given start addresses with a
// pool of workers (workers <= 0 means the device's configured
// Concurrency). Outcome i always corresponds to starts[i]. On a
// noiseless medium the outcomes are bit-identical for any worker
// count; with read noise, workers interleave draws from the shared
// noise stream (see the package sero concurrency notes).
//
// Work is partitioned statically: worker w verifies lines w,
// w+workers, w+2·workers, … — not a dynamic queue. That makes the
// virtual-time accounting deterministic too: each worker verifies on a
// private latency plane (its own probe array and clock), and when the
// pool drains the device clock advances by the *maximum* per-worker
// elapsed virtual time — the model of parallel verification hardware,
// where wall virtual time is the slowest worker, not the sum. A
// dynamic queue would let host scheduling decide the split (on a
// single-CPU host one worker can drain the whole queue), turning
// virtual time into a function of the host; the static split keeps it
// a function of the workload alone. With workers == 1 this degenerates
// to the single-sled serial sum (charged on the pass's own plane,
// which starts from the sled home position).
func (d *Device) VerifyLines(starts []uint64, workers int) []VerifyOutcome {
	out := make([]VerifyOutcome, len(starts))
	if len(starts) == 0 {
		return out
	}
	if workers <= 0 {
		workers = d.Concurrency()
	}
	if workers > len(starts) {
		workers = len(starts)
	}
	planes := make([]*plane, workers)
	var wg sync.WaitGroup
	fanBase := int64(d.clock.Now())
	for w := 0; w < workers; w++ {
		pl := d.newPlane(int32(w+1), fanBase)
		planes[w] = pl
		wg.Add(1)
		go func(w int, pl *plane) {
			defer wg.Done()
			for i := w; i < len(starts); i += workers {
				out[i].Report, out[i].Err = d.verifyStart(pl, starts[i])
			}
		}(w, pl)
	}
	wg.Wait()
	d.drainPlanes(planes, nil, "verify-fanout")
	return out
}

// drainPlanes closes out a fan-out pass: it folds every worker's
// stats into the device counters and advances the device clock by the
// maximum per-worker elapsed virtual time — the parallel-hardware
// contract shared by VerifyLines and Scan. The advance happens under
// arrMu so it cannot land inside a foreground operation's stopwatch
// window and inflate its per-op latency stats. The advance is also the
// fan-out's cost to its owner: it accumulates into task (nil-safe),
// and when tracing is on a join span named name covers the pass from
// launch to the slowest worker (name "" suppresses the span for
// fan-outs whose call sites emit their own).
func (d *Device) drainPlanes(planes []*plane, task *trace.Task, name string) {
	var maxElapsed time.Duration
	for _, pl := range planes {
		if e := pl.clock.Now(); e > maxElapsed {
			maxElapsed = e
		}
		d.mergeStats(pl.stats)
	}
	d.arrMu.Lock()
	d.clock.Advance(maxElapsed)
	d.arrMu.Unlock()
	task.AddDevice(maxElapsed)
	if tr := d.tracer.Load(); tr != nil && name != "" && len(planes) > 0 {
		tr.Emit(trace.Span{Name: name, Cat: "device", Track: d.p.TrackOffset, Session: -1,
			Start: planes[0].base, Dur: int64(maxElapsed), V1: int64(len(planes))})
	}
}

// Lines returns the heated lines known to the device, sorted by start.
func (d *Device) Lines() []LineInfo {
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	out := make([]LineInfo, 0, len(d.lines))
	for _, li := range d.lines {
		out = append(out, li)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// scanResult is one worker's findings over its share of the blocks.
type scanResult struct {
	heated      []uint64
	lines       []LineInfo
	unparseable []uint64
	errPBA      uint64
	err         error
}

// Scan rebuilds the device's heated-line registry from the medium by
// probing every block for electrical data and parsing the records it
// finds. This is the §5.2 recovery path ("a fsck style scan of the
// medium would definitely recover (albeit slowly) all the heated
// files") and also models reattaching a device whose host state was
// lost. It returns the recovered lines and a list of blocks holding
// electrical data that does not parse as a record (evidence of raw
// tampering or a shredded block).
//
// The scan holds the exclusive device gate and fans the block probe
// out over the configured Concurrency, each worker charging a private
// latency plane; the device clock advances by the slowest worker.
// Like VerifyLines, the block space is partitioned statically
// (interleaved chunks per worker), so the virtual-time cost is
// independent of host scheduling, and on a noiseless medium the
// merged results are too (results are merged in block order either
// way).
func (d *Device) Scan() (recovered []LineInfo, unparseable []uint64, err error) {
	d.gate.Lock()
	defer d.gate.Unlock()

	blocks := uint64(d.p.Blocks)
	workers := d.Concurrency()
	if workers > int(blocks) {
		workers = int(blocks)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]*scanResult, workers)
	planes := make([]*plane, workers)
	var wg sync.WaitGroup
	fanBase := int64(d.clock.Now())
	const chunk = 16 // contiguous blocks per stride step
	for w := 0; w < workers; w++ {
		res := &scanResult{}
		pl := d.newPlane(int32(w+1), fanBase)
		results[w] = res
		planes[w] = pl
		wg.Add(1)
		go func(w int, pl *plane, res *scanResult) {
			defer wg.Done()
			for lo := uint64(w) * chunk; lo < blocks; lo += uint64(workers) * chunk {
				hi := lo + chunk
				if hi > blocks {
					hi = blocks
				}
				d.scanRange(pl, lo, hi, res)
			}
		}(w, pl, res)
	}
	wg.Wait()
	d.drainPlanes(planes, nil, "scan-fanout")

	// Surface the lowest-addressed error, deterministically.
	var firstErr *scanResult
	for _, res := range results {
		if res.err != nil && (firstErr == nil || res.errPBA < firstErr.errPBA) {
			firstErr = res
		}
	}
	if firstErr != nil {
		return nil, nil, firstErr.err
	}

	// Merge per-worker findings in block order and rebuild the
	// registry.
	var allHeated []uint64
	for _, res := range results {
		allHeated = append(allHeated, res.heated...)
		recovered = append(recovered, res.lines...)
		unparseable = append(unparseable, res.unparseable...)
	}
	sort.Slice(recovered, func(i, j int) bool { return recovered[i].Start < recovered[j].Start })
	sort.Slice(unparseable, func(i, j int) bool { return unparseable[i] < unparseable[j] })

	d.regMu.Lock()
	d.lines = make(map[uint64]LineInfo)
	d.heated = make(map[uint64]bool)
	for _, pba := range allHeated {
		d.heated[pba] = true
	}
	for _, li := range recovered {
		d.lines[li.Start] = li
	}
	d.regMu.Unlock()
	return recovered, unparseable, nil
}

// scanRange probes blocks [lo, hi) on the given plane, accumulating
// findings into res. Runs under the exclusive gate, so no stripe locks
// are needed; the first error stops the range.
func (d *Device) scanRange(pl *plane, lo, hi uint64, res *scanResult) {
	if res.err != nil {
		return
	}
	for pba := lo; pba < hi; pba++ {
		hot, perr := d.probeHeatedOn(pl, pba, 8)
		if perr != nil {
			res.err = perr
			res.errPBA = pba
			return
		}
		if !hot {
			continue
		}
		res.heated = append(res.heated, pba)
		rep, rerr := d.ersOn(pl, pba, HeatRecordBytes)
		if rerr != nil {
			res.err = rerr
			res.errPBA = pba
			return
		}
		if !rep.Clean {
			res.unparseable = append(res.unparseable, pba)
			continue
		}
		rec, uerr := UnmarshalHeatRecord(rep.Payload)
		if uerr != nil || rec.Start != pba {
			res.unparseable = append(res.unparseable, pba)
			continue
		}
		res.lines = append(res.lines, LineInfo{Start: pba, LogN: rec.LogN, Record: rec})
	}
}

// ERSReport is the outcome of an electrical sector read.
type ERSReport struct {
	// Payload is the decoded bytes (valid when Clean).
	Payload []byte
	// Clean is true when every cell decoded as valid data.
	Clean bool
	// TamperedCells lists HH cell indices.
	TamperedCells []int
	// UnusedCells lists UU cell indices inside the read range.
	UnusedCells []int
}

func decodeERS(flags []bool) (ERSReport, error) {
	rep, err := manchester.Decode(flags)
	out := ERSReport{
		Payload:       rep.Data,
		Clean:         rep.Clean(),
		TamperedCells: rep.Tampered,
		UnusedCells:   rep.Unused,
	}
	if err != nil && !errors.Is(err, manchester.ErrTampered) && !errors.Is(err, manchester.ErrUnused) {
		return out, err
	}
	return out, nil
}

// decodeERSWOM decodes a WOM-coded electrical read. Every pattern is a
// valid WOM codeword, so the report is always structurally Clean; the
// caller's record parse and hash comparison carry the tamper evidence
// (the §8 trade-off of the denser coding).
func decodeERSWOM(flags []bool) (ERSReport, error) {
	payload, err := manchester.WOMDecode(flags)
	if err != nil {
		return ERSReport{}, err
	}
	return ERSReport{Payload: payload, Clean: true}, nil
}

func manchesterDots(payloadBytes int) int { return manchester.EncodedDots(payloadBytes) }

func womDots(payloadBytes int) int { return manchester.WOMEncodedDots(payloadBytes) }

func manchesterEncode(payload []byte) []bool { return manchester.Encode(payload) }

func womEncode(payload []byte) []bool { return manchester.WOMEncode(payload) }

// headerDotOffset returns the dot offset of the data region within a
// block's frame (the header bits come first).
func headerDotOffset() int { return HeaderBytes * 8 }
