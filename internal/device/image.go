package device

import (
	"fmt"

	"sero/internal/medium"
)

// Device image persistence: a device image is the medium snapshot
// alone. Host-side state (heated-line registry, bad-block table) is
// deliberately NOT saved — on load it is rebuilt by scanning the
// medium, the same trust model as the paper's §5.2: the medium is the
// evidence; host metadata is reconstructible and untrusted.

// SaveImage serialises the device's medium. It holds the exclusive
// device gate: a snapshot is a whole-medium read and must not observe
// half-finished writes.
func (d *Device) SaveImage() []byte {
	d.gate.Lock()
	defer d.gate.Unlock()
	return d.med.Snapshot()
}

// LoadImage reconstructs a device from an image produced by SaveImage,
// using the given parameters for everything the medium does not carry
// (timing, geometry, retry policy; Params.Medium is ignored). The
// heated-line registry is rebuilt with a full scan.
func LoadImage(img []byte, p Params) (*Device, []LineInfo, error) {
	med, err := medium.RestoreSnapshot(img)
	if err != nil {
		return nil, nil, err
	}
	mp := med.Params()
	blocks := mp.Rows * mp.Cols / DotsPerBlock
	if blocks <= 0 {
		return nil, nil, fmt.Errorf("device: image medium %dx%d smaller than one block", mp.Rows, mp.Cols)
	}
	if p.Blocks > 0 && p.Blocks != blocks {
		return nil, nil, fmt.Errorf("device: image holds %d blocks, params say %d", blocks, p.Blocks)
	}
	p.Blocks = blocks
	p.Medium = mp
	d := New(p)
	// Swap in the restored medium (New built a fresh one from mp).
	d.med = med
	recovered, _, err := d.Scan()
	if err != nil {
		return nil, nil, err
	}
	return d, recovered, nil
}
