package device

import (
	"bytes"
	"testing"
)

func TestWriteBlocksRoundTrip(t *testing.T) {
	d := testDevice(t, 64)
	blocks := [][]byte{pattern(1), pattern(2), pattern(3), pattern(4)}
	if err := d.WriteBlocks(8, blocks); err != nil {
		t.Fatal(err)
	}
	for i, want := range blocks {
		got, err := d.MRS(8 + uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d corrupted", 8+i)
		}
	}
	st := d.Stats()
	if st.MagneticWrites != 4 {
		t.Fatalf("MagneticWrites %d, want 4", st.MagneticWrites)
	}
	// Bad payload size and out-of-range runs are refused.
	if err := d.WriteBlocks(0, [][]byte{make([]byte, 10)}); err == nil {
		t.Fatal("short payload accepted")
	}
	if err := d.WriteBlocks(62, blocks); err == nil {
		t.Fatal("run beyond device accepted")
	}
	if err := d.WriteBlocks(0, nil); err != nil {
		t.Fatalf("empty run: %v", err)
	}
}

func TestWriteBlocksRefusalWritesNothing(t *testing.T) {
	d := testDevice(t, 64)
	if err := d.MWS(8, pattern(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.MWS(9, pattern(2)); err != nil {
		t.Fatal(err)
	}
	// Heat block 10: a run covering it must fail atomically.
	if err := d.EWS(10, []byte("frozen")); err != nil {
		t.Fatal(err)
	}
	err := d.WriteBlocks(8, [][]byte{pattern(7), pattern(8), pattern(9)})
	if err == nil {
		t.Fatal("run over a heated block accepted")
	}
	for i, want := range [][]byte{pattern(1), pattern(2)} {
		got, rerr := d.MRS(8 + uint64(i))
		if rerr != nil || !bytes.Equal(got, want) {
			t.Fatalf("refused run still wrote block %d", 8+i)
		}
	}
}

// TestWriteBlocksBatchedCheaper is the device half of the write-path
// acceptance criterion: a contiguous run written as one command pays
// the servo settle once, where block-at-a-time pays it per block.
func TestWriteBlocksBatchedCheaper(t *testing.T) {
	const n = 16
	blocks := make([][]byte, n)
	for i := range blocks {
		blocks[i] = pattern(byte(i))
	}

	serial := testDevice(t, 64)
	t0 := serial.Clock().Now()
	for i := range blocks {
		if err := serial.MWS(uint64(i), blocks[i]); err != nil {
			t.Fatal(err)
		}
	}
	serialNS := serial.Clock().Now() - t0

	batched := testDevice(t, 64)
	t0 = batched.Clock().Now()
	if err := batched.WriteBlocks(0, blocks); err != nil {
		t.Fatal(err)
	}
	batchedNS := batched.Clock().Now() - t0

	if batchedNS*2 > serialNS {
		t.Fatalf("batched %v not ≤ half of serial %v", batchedNS, serialNS)
	}
	// Same bits either way.
	for i := range blocks {
		got, err := batched.MRS(uint64(i))
		if err != nil || !bytes.Equal(got, blocks[i]) {
			t.Fatalf("batched write corrupted block %d: %v", i, err)
		}
	}
}

func TestWriteLineBatchHeatVerify(t *testing.T) {
	d := testDevice(t, 64)
	blocks := [][]byte{pattern(1), pattern(2), pattern(3)}
	if err := d.WriteLineBatch(8, 2, blocks); err != nil {
		t.Fatal(err)
	}
	if _, err := d.HeatLine(8, 2); err != nil {
		t.Fatal(err)
	}
	rep, err := d.VerifyLine(8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("fresh batched line fails verify: %+v", rep)
	}
	// Geometry violations are refused.
	if err := d.WriteLineBatch(9, 2, blocks); err == nil {
		t.Fatal("misaligned line accepted")
	}
	if err := d.WriteLineBatch(8, 0, blocks); err == nil {
		t.Fatal("logN=0 accepted")
	}
	if err := d.WriteLineBatch(16, 1, blocks); err == nil {
		t.Fatal("overfull line accepted")
	}
}

// TestMoveGroupsLayoutIndependentOfWorkers pins the cleaner-engine
// contract: destinations are caller-assigned, so the post-move medium
// is identical for any worker count, and the fanned-out run advances
// the clock by the slowest worker (strictly less than the serial sum
// here, where two groups carry equal work).
func TestMoveGroupsLayoutIndependentOfWorkers(t *testing.T) {
	build := func() (*Device, [][]BlockMove) {
		d := testDevice(t, 128)
		for i := uint64(0); i < 8; i++ {
			if err := d.MWS(i, pattern(byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		groups := [][]BlockMove{
			{{Src: 0, Dst: 64}, {Src: 1, Dst: 65}, {Src: 2, Dst: 66}, {Src: 3, Dst: 67}},
			{{Src: 4, Dst: 96}, {Src: 5, Dst: 97}, {Src: 6, Dst: 98}, {Src: 7, Dst: 99}},
		}
		return d, groups
	}

	serialDev, groups := build()
	t0 := serialDev.Clock().Now()
	for _, res := range serialDev.MoveGroups(groups, 1) {
		if res.Err != nil || res.Completed != 4 {
			t.Fatalf("serial move failed: %+v", res)
		}
	}
	serialNS := serialDev.Clock().Now() - t0

	parDev, groups2 := build()
	t0 = parDev.Clock().Now()
	for _, res := range parDev.MoveGroups(groups2, 2) {
		if res.Err != nil || res.Completed != 4 {
			t.Fatalf("parallel move failed: %+v", res)
		}
	}
	parNS := parDev.Clock().Now() - t0

	for _, g := range groups {
		for _, mv := range g {
			want, err := serialDev.MRS(mv.Dst)
			if err != nil {
				t.Fatal(err)
			}
			got, err := parDev.MRS(mv.Dst)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("dst %d diverges between worker counts", mv.Dst)
			}
		}
	}
	if parNS >= serialNS {
		t.Fatalf("2-worker move pass cost %v, serial %v — no slowest-worker accounting", parNS, serialNS)
	}
}

func TestMoveGroupsRefusesBadDestination(t *testing.T) {
	d := testDevice(t, 64)
	if err := d.MWS(0, pattern(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.EWS(32, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	res := d.MoveGroups([][]BlockMove{{{Src: 0, Dst: 32}}}, 1)
	if res[0].Err == nil || res[0].Completed != 0 {
		t.Fatalf("move onto heated block accepted: %+v", res[0])
	}
}

// TestWriteRunsFannedMatchesSerial pins the fanned group-commit
// engine's contract: the same runs written serially via WriteBlocks
// and fanned over worker planes leave identical bits, and the fanned
// virtual cost never exceeds serial (slowest-worker clock advance).
func TestWriteRunsFannedMatchesSerial(t *testing.T) {
	mkRuns := func() []WriteRun {
		runs := make([]WriteRun, 6)
		for r := range runs {
			blocks := make([][]byte, 3+r%3)
			for i := range blocks {
				blocks[i] = pattern(byte(16*r + i))
			}
			runs[r] = WriteRun{Start: uint64(r * 12), Blocks: blocks}
		}
		return runs
	}

	serial := testDevice(t, 128)
	t0 := serial.Clock().Now()
	for _, run := range mkRuns() {
		if err := serial.WriteBlocks(run.Start, run.Blocks); err != nil {
			t.Fatal(err)
		}
	}
	serialNS := serial.Clock().Now() - t0

	for _, workers := range []int{1, 2, 4, 9} {
		d := testDevice(t, 128)
		t0 := d.Clock().Now()
		for i, err := range d.WriteRunsFanned(mkRuns(), workers) {
			if err != nil {
				t.Fatalf("workers=%d: run %d: %v", workers, i, err)
			}
		}
		cost := d.Clock().Now() - t0
		if cost > serialNS {
			t.Fatalf("workers=%d: fanned cost %v exceeds serial %v", workers, cost, serialNS)
		}
		for _, run := range mkRuns() {
			for i, want := range run.Blocks {
				got, err := d.MRS(run.Start + uint64(i))
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: block %d corrupted: %v", workers, run.Start+uint64(i), err)
				}
			}
		}
	}
}

// TestWriteRunsFannedRefusalIsPerRun checks refusal isolation: one bad
// run reports its own error and writes nothing, while every other run
// in the same fan-out lands intact.
func TestWriteRunsFannedRefusalIsPerRun(t *testing.T) {
	d := testDevice(t, 64)
	if err := d.MWS(20, pattern(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.EWS(21, []byte("frozen")); err != nil { // heated: magnetic writes refuse
		t.Fatal(err)
	}
	runs := []WriteRun{
		{Start: 0, Blocks: [][]byte{pattern(10), pattern(11)}},
		{Start: 20, Blocks: [][]byte{pattern(12), pattern(13)}}, // covers the heated block
		{Start: 40, Blocks: [][]byte{pattern(14)}},
		{Start: 63, Blocks: [][]byte{pattern(15), pattern(16)}}, // out of range
	}
	errs := d.WriteRunsFanned(runs, 2)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good runs failed: %v / %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("run over a heated block accepted")
	}
	if errs[3] == nil {
		t.Fatal("run beyond device accepted")
	}
	// The refused run wrote nothing — block 20 keeps its old bits.
	if got, err := d.MRS(20); err != nil || !bytes.Equal(got, pattern(1)) {
		t.Fatal("refused run still wrote its first block")
	}
	// The good runs landed.
	for _, at := range []struct {
		pba  uint64
		seed byte
	}{{0, 10}, {1, 11}, {40, 14}} {
		if got, err := d.MRS(at.pba); err != nil || !bytes.Equal(got, pattern(at.seed)) {
			t.Fatalf("good run block %d corrupted: %v", at.pba, err)
		}
	}
}
