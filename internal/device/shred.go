package device

import (
	"fmt"

	"sero/internal/probe"
)

// Shred implements the §8 "Deletion" discussion: "it is possible to
// implement a physical shred operation on the device ... which in our
// case would physically destroy the expired data by precise local
// heating". Shredding a heated line destroys the data blocks' dots
// electrically — the data is unrecoverable, but the operation is
// itself loud: the line's hash no longer verifies and every shredded
// dot is permanent H evidence. The paper notes this is "not wholly
// satisfactory" against a dishonest CEO, which is precisely why the
// operation refuses to run without the line being expired by the
// caller's retention policy — policy lives above the device.

// ShredReport describes a completed shred.
type ShredReport struct {
	Line LineInfo
	// DotsDestroyed counts electrical writes issued.
	DotsDestroyed int
}

// ShredLine destroys the data blocks of the heated line at start by
// heating every dot of every member block (block 0's record is left
// as the tombstone). The line remains registered; VerifyLine will
// forever report its data unreadable — a shredded line is evidence of
// deletion, not absence of evidence.
func (d *Device) ShredLine(start uint64) (ShredReport, error) {
	d.gate.RLock()
	defer d.gate.RUnlock()
	d.regMu.RLock()
	li, ok := d.lines[start]
	d.regMu.RUnlock()
	if !ok {
		return ShredReport{}, fmt.Errorf("%w: no heated line at %d", ErrNotHeated, start)
	}
	locked := d.lockCrosstalkRange(li.Start, li.End())
	defer d.unlockRange(locked)
	destroyed := 0
	// One batched heat command over the contiguous data-block run: the
	// servo settles once and the destroying pulses stream.
	runBase := d.dotBase(li.Start + 1)
	runDots := int(li.End()-li.Start-1) * DotsPerBlock
	total := d.fg.charge(d, func(a *probe.Array) {
		a.ChargeWriteSetup()
		a.ChargeElectricWrite(d.chargeIndex(runBase), runDots)
	})
	for i := 0; i < runDots; i++ {
		d.med.EWB(runBase + i)
		destroyed++
	}
	d.regMu.Lock()
	for pba := li.Start + 1; pba < li.End(); pba++ {
		d.heated[pba] = true
	}
	d.regMu.Unlock()
	d.fg.record(d, func(st *OpStats) {
		st.ElectricWrites++
		st.ElectricWriteNS += total
	})
	return ShredReport{Line: li, DotsDestroyed: destroyed}, nil
}

// IsShredded reports whether every data block of the line at start has
// been destroyed electrically (sampled via the erb protocol).
func (d *Device) IsShredded(start uint64) (bool, error) {
	d.gate.RLock()
	defer d.gate.RUnlock()
	d.regMu.RLock()
	li, ok := d.lines[start]
	d.regMu.RUnlock()
	if !ok {
		return false, fmt.Errorf("%w: no heated line at %d", ErrNotHeated, start)
	}
	locked := d.lockRange(li.Start, li.End())
	defer d.unlockRange(locked)
	for pba := li.Start + 1; pba < li.End(); pba++ {
		base := d.dotBase(pba)
		// Sample a handful of dots; a shredded block has all dots H.
		for s := 0; s < 8; s++ {
			if !d.erbDot(base + s*DotsPerBlock/8) {
				return false, nil
			}
		}
	}
	return true, nil
}
