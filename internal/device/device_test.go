package device

import (
	"bytes"
	"errors"
	"testing"

	"sero/internal/medium"
)

// testDevice builds a small quiet device (no read noise) for
// deterministic tests; noisy behaviour is exercised separately.
func testDevice(t testing.TB, blocks int) *Device {
	t.Helper()
	p := DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	p.Medium = mp
	return New(p)
}

// noisyDevice keeps the default stochastic medium.
func noisyDevice(t testing.TB, blocks int, seed uint64) *Device {
	t.Helper()
	p := DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, DotsPerBlock)
	mp.Seed = seed
	p.Medium = mp
	return New(p)
}

func pattern(seed byte) []byte {
	d := make([]byte, DataBytes)
	for i := range d {
		d[i] = seed + byte(i)
	}
	return d
}

func TestSectorOverheadMatchesPaper(t *testing.T) {
	// §3: "about 15% sector overhead for the sector header, error
	// correction, and cyclic redundancy check".
	overhead := float64(PhysicalBytes-DataBytes) / float64(DataBytes)
	if overhead < 0.14 || overhead > 0.17 {
		t.Fatalf("sector overhead %.3f, want ≈0.15", overhead)
	}
}

func TestMWSMRSRoundTrip(t *testing.T) {
	d := testDevice(t, 16)
	for pba := uint64(0); pba < 16; pba++ {
		want := pattern(byte(pba))
		if err := d.MWS(pba, want); err != nil {
			t.Fatal(err)
		}
		got, err := d.MRS(pba)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d round-trip mismatch", pba)
		}
	}
}

func TestMWSRejectsBadLength(t *testing.T) {
	d := testDevice(t, 4)
	if err := d.MWS(0, make([]byte, 100)); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestOutOfRange(t *testing.T) {
	d := testDevice(t, 4)
	if err := d.MWS(4, pattern(0)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err %v", err)
	}
	if _, err := d.MRS(4); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err %v", err)
	}
}

func TestMRSUnderNoise(t *testing.T) {
	// The 20:1 SNR medium with RS+CRC must read back reliably.
	d := noisyDevice(t, 8, 3)
	for pba := uint64(0); pba < 8; pba++ {
		want := pattern(byte(pba * 17))
		if err := d.MWS(pba, want); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 5; round++ {
			got, err := d.MRS(pba)
			if err != nil {
				t.Fatalf("block %d round %d: %v", pba, round, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("block %d round %d mismatch", pba, round)
			}
		}
	}
}

func TestECCCorrectsStuckDots(t *testing.T) {
	d := testDevice(t, 4)
	want := pattern(9)
	if err := d.MWS(1, want); err != nil {
		t.Fatal(err)
	}
	// Pin 24 dots (3 bytes worth) inside block 1's frame — within the
	// interleaved RS capability of 8 byte errors per lane.
	base := 1 * DotsPerBlock
	for i := 0; i < 24; i++ {
		d.Medium().SetStuck(base+200*8+i, medium.StuckUp)
	}
	got, err := d.MRS(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("corrected read mismatch")
	}
	if d.Stats().CorrectedBytes == 0 {
		t.Fatal("no corrections recorded")
	}
}

func TestMRSUncorrectableOnMassiveDamage(t *testing.T) {
	d := testDevice(t, 4)
	if err := d.MWS(1, pattern(1)); err != nil {
		t.Fatal(err)
	}
	base := 1 * DotsPerBlock
	for i := 0; i < DotsPerBlock/2; i++ {
		d.Medium().SetStuck(base+i*2, medium.StuckDead)
	}
	_, err := d.MRS(1)
	if err == nil {
		t.Fatal("massively damaged block read successfully")
	}
}

func TestMisplacedFrameDetected(t *testing.T) {
	// A frame written for PBA a and physically moved to PBA b must be
	// rejected: the header binds the address.
	f := Frame{PBA: 2, Flags: FlagData}
	copy(f.Data[:], pattern(7))
	img := f.Marshal()
	_, _, err := UnmarshalFrame(img, 3)
	if !errors.Is(err, ErrMisplaced) {
		t.Fatalf("err %v, want ErrMisplaced", err)
	}
}

func TestFrameChecksumDetectsSilentCorruption(t *testing.T) {
	f := Frame{PBA: 1}
	copy(f.Data[:], pattern(1))
	img := f.Marshal()
	// Corrupt more bytes than RS can notice by rebuilding parity over
	// tampered data is impossible here; instead simulate a decoder
	// miss by flipping data and recomputing nothing — RS will correct
	// it. So corrupt exactly at the RS limit boundary is not feasible
	// to force; instead validate the CRC path directly on a frame with
	// a corrupted payload and hand-patched parity.
	il := codec
	buf := append([]byte(nil), img[:HeaderBytes+DataBytes]...)
	buf[HeaderBytes] ^= 0xFF // flip payload byte
	img2 := il.Encode(buf)   // parity now consistent with corrupt data
	_, _, err := UnmarshalFrame(img2, 1)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err %v, want ErrChecksum", err)
	}
}

func TestHeatLineAndVerify(t *testing.T) {
	d := testDevice(t, 16)
	for pba := uint64(8); pba < 16; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	li, err := d.HeatLine(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if li.Blocks() != 8 || li.Start != 8 {
		t.Fatalf("line info %+v", li)
	}
	rep, err := d.VerifyLine(8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("fresh heated line verifies tampered: %+v", rep)
	}
}

func TestHeatedLineMembersStillReadable(t *testing.T) {
	// §3: "Blocks 1..2^N−1 of a heated line can still be read
	// magnetically, hence efficiently, and as often as needed."
	d := testDevice(t, 8)
	for pba := uint64(0); pba < 8; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 3); err != nil {
		t.Fatal(err)
	}
	for pba := uint64(1); pba < 8; pba++ {
		got, err := d.MRS(pba)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pattern(byte(pba))) {
			t.Fatalf("member %d unreadable after heat", pba)
		}
	}
	// Block 0 is electrical now: magnetic read must be refused.
	if _, err := d.MRS(0); !errors.Is(err, ErrHeatedBlock) {
		t.Fatalf("block 0 magnetic read: %v", err)
	}
}

func TestHeatedLineMembersNotWritable(t *testing.T) {
	d := testDevice(t, 8)
	for pba := uint64(0); pba < 8; pba++ {
		if err := d.MWS(pba, pattern(0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.MWS(1, pattern(9)); !errors.Is(err, ErrHeatedBlock) {
		t.Fatalf("write into heated line: %v", err)
	}
	// Blocks outside the line stay writable.
	if err := d.MWS(4, pattern(9)); err != nil {
		t.Fatal(err)
	}
}

func TestHeatLineAlignment(t *testing.T) {
	d := testDevice(t, 16)
	if _, err := d.HeatLine(2, 2); !errors.Is(err, ErrBadLine) {
		t.Fatalf("misaligned heat: %v", err)
	}
	if _, err := d.HeatLine(0, 0); !errors.Is(err, ErrBadLine) {
		t.Fatalf("logN=0 heat: %v", err)
	}
	if _, err := d.HeatLine(0, 5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overflow heat: %v", err)
	}
}

func TestHeatLineOverlapRejected(t *testing.T) {
	d := testDevice(t, 16)
	for pba := uint64(0); pba < 16; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.HeatLine(0, 3); !errors.Is(err, ErrLineOverlap) {
		t.Fatalf("containing line accepted: %v", err)
	}
	if _, err := d.HeatLine(4, 2); err != nil {
		t.Fatalf("disjoint line rejected: %v", err)
	}
}

func TestReHeatIdempotent(t *testing.T) {
	// §3: re-heating an unchanged line "has no effect and is therefore
	// harmless".
	d := testDevice(t, 8)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	li1, err := d.HeatLine(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	li2, err := d.HeatLine(0, 2)
	if err != nil {
		t.Fatalf("idempotent re-heat failed: %v", err)
	}
	if li1.Record.Hash != li2.Record.Hash {
		t.Fatal("re-heat changed the hash")
	}
	rep, err := d.VerifyLine(0)
	if err != nil || !rep.OK {
		t.Fatalf("line damaged by re-heat: %+v %v", rep, err)
	}
}

func TestVerifyDetectsDataTamper(t *testing.T) {
	// §5.1 "mwb inode/data": flipping a magnetic bit of heated data is
	// caught by verify.
	d := testDevice(t, 8)
	for pba := uint64(0); pba < 8; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 3); err != nil {
		t.Fatal(err)
	}
	// A single flipped dot is absorbed by the sector ECC — that is
	// correct behaviour, not a tamper-evidence hole (the decoded data,
	// and hence the hash, is unchanged).
	d.Medium().CorruptMagnetic(3*DotsPerBlock + headerDotOffset() + 100)
	rep, err := d.VerifyLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("ECC-corrected flip misreported as tamper: %+v", rep)
	}

	// The real attack: forge a completely valid frame with different
	// data for block 3 and write it raw (root attacker, §5 threat
	// model). The frame is self-consistent, so only the heated hash
	// can expose it.
	evil := pattern(0xEE)
	bits := ForgedFrameBits(3, evil)
	base := 3 * DotsPerBlock
	for i, b := range bits {
		d.Medium().MWB(base+i, b)
	}
	// The forged block reads back fine on its own...
	got, err := d.MRS(3)
	if err != nil || !bytes.Equal(got, evil) {
		t.Fatalf("forged frame unreadable: %v", err)
	}
	// ...but verify detects the history rewrite.
	rep, err = d.VerifyLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || !rep.HashMismatch {
		t.Fatalf("forged frame not detected: %+v", rep)
	}
}

func TestVerifyDetectsHashTamper(t *testing.T) {
	// §5.1 "ewb hash": heating more hash dots produces HH cells.
	d := testDevice(t, 4)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	// Attacker heats the partner dot of the first hash cell.
	base := 0*DotsPerBlock + headerDotOffset()
	d.Medium().EWB(base)
	d.Medium().EWB(base + 1)

	rep, err := d.VerifyLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || !rep.RecordDamaged || rep.TamperedCells == 0 {
		t.Fatalf("hash tamper not detected: %+v", rep)
	}
}

func TestVerifyDetectsMWBOnHashHarmless(t *testing.T) {
	// §5.1 "mwb hash": magnetising heated hash dots has no effect.
	d := testDevice(t, 4)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	base := 0*DotsPerBlock + headerDotOffset()
	for i := 0; i < manchesterDots(HeatRecordBytes); i++ {
		d.Medium().MWB(base+i, true)
	}
	rep, err := d.VerifyLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("harmless mwb flagged as tampering: %+v", rep)
	}
}

func TestVerifyDetectsEWBOnData(t *testing.T) {
	// §5.1 "ewb inode/data": heating data dots appears as a read
	// error.
	d := testDevice(t, 4)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	// Heat a large portion of block 2's frame.
	base := 2 * DotsPerBlock
	for i := 0; i < DotsPerBlock; i += 2 {
		d.Medium().EWB(base + i)
	}
	rep, err := d.VerifyLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || len(rep.ReadErrors) == 0 {
		t.Fatalf("ewb-on-data not detected: %+v", rep)
	}
}

func TestVerifyUnknownLine(t *testing.T) {
	d := testDevice(t, 4)
	if _, err := d.VerifyLine(0); !errors.Is(err, ErrNotHeated) {
		t.Fatalf("err %v", err)
	}
}

func TestEWSERSRoundTrip(t *testing.T) {
	d := testDevice(t, 4)
	payload := []byte("write-once evidence payload")
	if err := d.EWS(2, payload); err != nil {
		t.Fatal(err)
	}
	rep, err := d.ERS(2, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || !bytes.Equal(rep.Payload, payload) {
		t.Fatalf("ERS report %+v", rep)
	}
}

func TestEWSOversizePayload(t *testing.T) {
	d := testDevice(t, 4)
	if err := d.EWS(0, make([]byte, 257)); err == nil {
		t.Fatal("oversize electrical payload accepted")
	}
	if err := d.EWS(0, nil); err == nil {
		t.Fatal("empty electrical payload accepted")
	}
}

func TestScanRecoversLines(t *testing.T) {
	// §5.2: "a fsck style scan of the medium would definitely recover
	// (albeit slowly) all the heated files".
	d := testDevice(t, 32)
	for pba := uint64(0); pba < 32; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	want1, err := d.HeatLine(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := d.HeatLine(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	recovered, unparseable, err := d.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(unparseable) != 0 {
		t.Fatalf("unparseable blocks %v", unparseable)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d lines", len(recovered))
	}
	if recovered[0].Record.Hash != want1.Record.Hash ||
		recovered[1].Record.Hash != want2.Record.Hash {
		t.Fatal("recovered hashes differ")
	}
	// Verification still works after recovery.
	rep, err := d.VerifyLine(16)
	if err != nil || !rep.OK {
		t.Fatalf("verify after scan: %+v %v", rep, err)
	}
}

func TestScanSurvivesBulkErase(t *testing.T) {
	// §5.2: after a bulk erase all electrically written information is
	// still present.
	d := testDevice(t, 16)
	for pba := uint64(0); pba < 16; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(8, 3); err != nil {
		t.Fatal(err)
	}
	d.Medium().BulkErase()
	recovered, _, err := d.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].Start != 8 {
		t.Fatalf("recovered %+v", recovered)
	}
	// And verify now reports tampering (the data is gone).
	rep, err := d.VerifyLine(8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("bulk erase not detected by verify")
	}
}

func TestBadBlockVsHeatedBlock(t *testing.T) {
	// §3: "a heated block should not be misinterpreted as a bad
	// block".
	d := testDevice(t, 8)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	// Attempting to mark heated block 0 bad must be refused.
	if err := d.MarkBad(0); !errors.Is(err, ErrHeatedBlock) {
		t.Fatalf("MarkBad on heated block: %v", err)
	}
	// A genuinely dead block can be marked bad.
	base := 5 * DotsPerBlock
	for i := 0; i < DotsPerBlock; i++ {
		d.Medium().SetStuck(base+i, medium.StuckDead)
	}
	if err := d.MarkBad(5); err != nil {
		t.Fatal(err)
	}
	if !d.IsBad(5) {
		t.Fatal("block 5 not bad")
	}
	if err := d.MWS(5, pattern(0)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("write to bad block: %v", err)
	}
}

func TestMarkBadDetectsHiddenElectricalData(t *testing.T) {
	// A block heated behind the device's back (raw attack) must be
	// discovered by the probe, not marked bad.
	d := testDevice(t, 8)
	if err := d.EWS(3, []byte("evidence")); err != nil {
		t.Fatal(err)
	}
	// Wipe the cache to simulate lost host state.
	d.heated = make(map[uint64]bool)
	if err := d.MarkBad(3); !errors.Is(err, ErrHeatedBlock) {
		t.Fatalf("MarkBad missed electrical data: %v", err)
	}
}

func TestProbeHeatedNegative(t *testing.T) {
	d := testDevice(t, 4)
	if err := d.MWS(1, pattern(1)); err != nil {
		t.Fatal(err)
	}
	hot, err := d.ProbeHeated(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if hot {
		t.Fatal("magnetic block probed as heated")
	}
}

func TestLinesSorted(t *testing.T) {
	d := testDevice(t, 32)
	for pba := uint64(0); pba < 32; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(16, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	lines := d.Lines()
	if len(lines) != 2 || lines[0].Start != 0 || lines[1].Start != 16 {
		t.Fatalf("lines %+v", lines)
	}
}

func TestHeatRecordRoundTrip(t *testing.T) {
	r := HeatRecord{LogN: 5, Start: 96, HeatedAt: 12345}
	for i := range r.Hash {
		r.Hash[i] = byte(i)
	}
	got, err := UnmarshalHeatRecord(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip %+v != %+v", got, r)
	}
}

func TestHeatRecordRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalHeatRecord(make([]byte, 10)); err == nil {
		t.Fatal("short record accepted")
	}
	buf := make([]byte, HeatRecordBytes)
	if _, err := UnmarshalHeatRecord(buf); err == nil {
		t.Fatal("zero record accepted")
	}
	r := HeatRecord{LogN: 2}
	b := r.Marshal()
	b[4] = 99 // bad version
	if _, err := UnmarshalHeatRecord(b); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestOpLatencyContract(t *testing.T) {
	// E1: erb ≥ 5× mrb at sector level; ews ≫ mws per written bit.
	d := testDevice(t, 8)
	if err := d.MWS(1, pattern(1)); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	writeNS := st.MagneticWriteNS

	before := d.Clock().Now()
	if _, err := d.MRS(1); err != nil {
		t.Fatal(err)
	}
	readNS := d.Clock().Now() - before

	if err := d.EWS(2, pattern(2)[:HeatRecordBytes]); err != nil {
		t.Fatal(err)
	}
	before = d.Clock().Now()
	if _, err := d.ERS(2, HeatRecordBytes); err != nil {
		t.Fatal(err)
	}
	ersNS := d.Clock().Now() - before

	// ers covers 1024 dots with retries vs mrs 4736 dots: normalise
	// per dot.
	ersPerDot := float64(ersNS) / float64(manchesterDots(HeatRecordBytes))
	mrsPerDot := float64(readNS) / float64(DotsPerBlock)
	if ersPerDot < 5*mrsPerDot {
		t.Fatalf("ers %.1f ns/dot not ≥ 5× mrs %.1f ns/dot", ersPerDot, mrsPerDot)
	}
	if writeNS == 0 || readNS == 0 {
		t.Fatal("zero virtual latency recorded")
	}
}

func TestStatsAndReset(t *testing.T) {
	d := testDevice(t, 4)
	if err := d.MWS(0, pattern(0)); err != nil {
		t.Fatal(err)
	}
	if d.Stats().MagneticWrites != 1 {
		t.Fatal("write not counted")
	}
	d.ResetStats()
	if d.Stats().MagneticWrites != 0 {
		t.Fatal("reset failed")
	}
}

func TestIsHeatedCached(t *testing.T) {
	d := testDevice(t, 4)
	if d.IsHeatedCached(1) {
		t.Fatal("fresh block cached as heated")
	}
	if err := d.EWS(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !d.IsHeatedCached(1) {
		t.Fatal("EWS did not cache heat state")
	}
	if got := d.HeatedBlocks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("heated blocks %v", got)
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Params{Blocks: 0})
}
