package device

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sero/internal/medium"
	"sero/internal/probe"
	"sero/internal/sim"
	"sero/internal/trace"
)

// Coding selects the write-once cell coding used for electrically
// written records (§8 "Efficiency").
type Coding int

// Available codings.
const (
	// CodingManchester stores 1 bit in 2 dots; the invalid HH state
	// makes tampering locally evident (the paper's default).
	CodingManchester Coding = iota
	// CodingWOM stores 2 bits in 3 dots (Rivest-Shamir write-once
	// code [33]): 25 % fewer heated dots and a one-time rewrite
	// capability, but every dot pattern is a valid codeword, so
	// tamper detection falls back to the record parse and the line
	// hash — the §8 trade-off, measurable in experiment E5.
	CodingWOM
)

// String names the coding.
func (c Coding) String() string {
	switch c {
	case CodingManchester:
		return "manchester"
	case CodingWOM:
		return "wom"
	default:
		return fmt.Sprintf("Coding(%d)", int(c))
	}
}

// Params configures a Device.
type Params struct {
	// Blocks is the number of 512-byte blocks the device exposes.
	Blocks int

	// Coding selects the electrical-record cell coding.
	Coding Coding

	// ErbRetries is how many times the electrical read protocol is
	// repeated per dot; a dot is declared heated as soon as one attempt
	// fails verification. More retries drive the probability of
	// missing a heated dot toward zero (experiment E7).
	ErbRetries int

	// Concurrency is the default worker count for fan-out operations
	// (VerifyLines, Scan). 0 or 1 means serial, keeping the paper's
	// single-sled virtual-time model: a pass costs the sum of its
	// per-line work.
	Concurrency int

	// Medium overrides the medium parameters; zero value means
	// derived defaults.
	Medium medium.Params

	// Timing overrides the probe latency model; zero value means
	// probe.DefaultTiming.
	Timing probe.Timing

	// Geometry overrides the probe-array geometry; zero value means
	// probe.DefaultGeometry.
	Geometry probe.Geometry

	// TrackOffset shifts every trace track id this device emits. An
	// array gives each member a disjoint offset so per-member worker
	// planes land on their own rows of the Chrome trace instead of
	// colliding on tracks 0..K.
	TrackOffset int32
}

// DefaultParams returns a device of the given size with the standard
// medium, timing and geometry models.
func DefaultParams(blocks int) Params {
	return Params{Blocks: blocks, ErbRetries: 8}
}

// Region-lock geometry. Blocks are grouped into regions of
// 1<<regionShiftBits blocks; each region hashes onto one of lockStripes
// stripe locks. Operations lock the stripes covering their block range
// in ascending stripe order, so any two overlapping ranges contend on
// at least one common stripe while disjoint ranges (distinct lines)
// proceed in parallel.
const (
	regionShiftBits = 4
	lockStripes     = 64
)

// Device is a simulated SERO probe-storage device. It is safe for
// concurrent use: operations on disjoint line regions run in parallel
// under striped region locks, while whole-medium operations (Scan,
// SaveImage) briefly exclude everything. See the package comment of
// package sero for the full concurrency contract.
type Device struct {
	p     Params
	med   *medium.Medium
	arr   *probe.Array
	clock *sim.Clock

	// Resolved timing/geometry, kept for building verification planes.
	timing probe.Timing
	geo    probe.Geometry

	// gate serialises whole-medium operations against per-region
	// traffic: block and line operations hold gate.RLock, Scan and
	// SaveImage hold gate.Lock.
	gate sync.RWMutex

	// stripes are the per-region locks (see regionShiftBits above).
	stripes [lockStripes]sync.Mutex

	// regMu guards the registry maps below. Lock ordering: a stripe
	// lock may be held when acquiring regMu, never the reverse.
	regMu sync.RWMutex

	// heated caches which blocks have been electrically written, so
	// the device can enforce the read protocol ("magnetically written
	// data must only be read magnetically and electrically written
	// data must only be read electrically", §3) without a scan. It is
	// a cache, not ground truth: Scan rebuilds it from the medium.
	heated map[uint64]bool

	// bad records blocks declared unusable after failed reads that
	// were *not* electrically written.
	bad map[uint64]bool

	// lines is the registry of heated lines, keyed by start PBA.
	lines map[uint64]LineInfo

	// xtalkSpan is how many blocks an electrical write's thermal
	// crosstalk can reach past the written block: EWB pulses the four
	// dot neighbours at i±1 and i±Cols, so with the medium's row
	// width of Cols dots the farthest disturbed dot is
	// ceil(Cols/DotsPerBlock) blocks away (1 for the standard
	// one-row-per-block layout).
	xtalkSpan uint64

	// arrMu guards the shared probe array: the actuator position is
	// one piece of mechanical state, so latency charges against it are
	// serialised even when the data-path work runs in parallel.
	arrMu sync.Mutex

	statsMu sync.Mutex
	stats   OpStats

	// fg is the device's foreground latency plane: the shared probe
	// array, the device clock and the device stats.
	fg plane

	// conc is the default fan-out width for VerifyLines and Scan.
	conc atomic.Int32

	// wobs, when set, observes every committed magnetic block write in
	// commit order — the crash-injection harness's tap point.
	wobs atomic.Pointer[WriteObserver]

	// robs, when set, observes every magnetic block read — the audit
	// engine's piggyback tap: blocks the cleaner (or any reader) just
	// pulled off the medium are fresh hints for incremental
	// verification.
	robs atomic.Pointer[ReadObserver]

	// tracer, when set, receives virtual-time spans from the write,
	// read and fan-out paths. Loaded with one atomic read per
	// instrumented operation; nil (the default) disables tracing
	// entirely — emission never advances any clock, so traced and
	// untraced runs are byte-identical in virtual time.
	tracer atomic.Pointer[trace.Tracer]
}

// SetTracer installs t as the device's span tracer (nil uninstalls).
// Safe to call at any time; in-flight operations observe the change at
// their next span boundary.
func (d *Device) SetTracer(t *trace.Tracer) {
	if t == nil {
		d.tracer.Store(nil)
		return
	}
	d.tracer.Store(t)
}

// Tracer returns the installed span tracer, or nil when tracing is
// disabled. Layers above the device (lfs) emit their spans through
// this, so one SetTracer call wires the whole stack.
func (d *Device) Tracer() *trace.Tracer { return d.tracer.Load() }

// WriteObserver observes one committed magnetic block write: pba and
// the 512-byte payload (valid only for the duration of the call; copy
// to retain). Observers run under the written blocks' stripe locks and
// may be invoked from concurrent worker planes, so they must be
// internally synchronised and fast.
type WriteObserver func(pba uint64, data []byte)

// SetWriteObserver installs fn as the device's write observer (nil
// uninstalls). This exists for test instrumentation — the
// crash-injection harness records the exact block-write stream so a
// medium can be reconstructed as of any write boundary.
func (d *Device) SetWriteObserver(fn WriteObserver) {
	if fn == nil {
		d.wobs.Store(nil)
		return
	}
	d.wobs.Store(&fn)
}

// ReadObserver observes one magnetic block read by PBA. Observers run
// under the read block's stripe lock and may be invoked from concurrent
// worker planes, so they must be internally synchronised and fast; they
// must not call back into the device. The audit engine installs one to
// piggyback hash-check scheduling on blocks the cleaner already reads.
type ReadObserver func(pba uint64)

// SetReadObserver installs fn as the device's read observer (nil
// uninstalls). Safe to call at any time; in-flight reads observe the
// change at their next block.
func (d *Device) SetReadObserver(fn ReadObserver) {
	if fn == nil {
		d.robs.Store(nil)
		return
	}
	d.robs.Store(&fn)
}

// plane is one independent latency-accounting context: a probe array
// (actuator position) plus the clock it advances and the stats it
// accumulates. The foreground plane is shared by all client operations
// and guarded by arrMu; verification workers get private planes whose
// clocks start at zero, so the fan-out engine can advance the device
// clock by the *maximum* per-worker elapsed time — the virtual-time
// model of parallel verification hardware.
type plane struct {
	arr    *probe.Array
	clock  *sim.Clock
	stats  *OpStats
	shared bool

	// track is the plane's trace track id: 0 for the foreground
	// plane, worker index + 1 for fan-out worker planes.
	track int32
	// base maps this plane's private clock onto the shared timeline
	// for span timestamps: the shared clock's reading when the fan-out
	// launched. 0 for the foreground plane, whose clock *is* the
	// shared one.
	base int64
	// task, when set, accumulates this plane's charges as the owning
	// operation's own device time (trace.Task attribution). Nil-safe.
	task *trace.Task
}

// charge applies f to the plane's probe array and returns the virtual
// time it consumed. For the shared foreground plane the array mutex is
// held across the charge, so the stopwatch observes only this
// operation's advance.
func (pl *plane) charge(d *Device, f func(*probe.Array)) time.Duration {
	if pl.shared {
		d.arrMu.Lock()
		defer d.arrMu.Unlock()
	}
	sw := sim.NewStopwatch(pl.clock)
	f(pl.arr)
	elapsed := sw.Elapsed()
	pl.task.AddDevice(elapsed)
	return elapsed
}

// record applies f to the plane's stats, locking when the plane is the
// shared foreground one.
func (pl *plane) record(d *Device, f func(*OpStats)) {
	if pl.shared {
		d.statsMu.Lock()
		defer d.statsMu.Unlock()
	}
	f(pl.stats)
}

// newPlane builds a private verification plane: its own probe array on
// its own zeroed clock, accumulating into its own stats. track is the
// plane's trace track id (worker index + 1) and base the shared
// clock's reading at fan-out launch, so the plane's spans land on the
// shared timeline.
func (d *Device) newPlane(track int32, base int64) *plane {
	clock := &sim.Clock{}
	return &plane{
		arr:   probe.NewArray(d.timing, d.geo, d.med.Params().PitchNM, clock),
		clock: clock,
		stats: &OpStats{},
		track: track,
		base:  base,
	}
}

// fgFor returns the foreground plane to charge an operation on: the
// shared plane itself when task is nil (the untraced fast path), or a
// copy of it bound to task, so the operation's charges accumulate into
// the task's own-device total without touching the shared plane value.
func (d *Device) fgFor(task *trace.Task) *plane {
	if task == nil {
		return &d.fg
	}
	pl := d.fg
	pl.task = task
	return &pl
}

// OpStats counts sector-level operations and their virtual-time cost.
type OpStats struct {
	MagneticReads   uint64
	MagneticWrites  uint64
	ElectricReads   uint64
	ElectricWrites  uint64
	HeatLines       uint64
	VerifyLines     uint64
	CorrectedBytes  uint64
	MagneticReadNS  time.Duration
	MagneticWriteNS time.Duration
	ElectricReadNS  time.Duration
	ElectricWriteNS time.Duration
}

// add accumulates other into s.
func (s *OpStats) add(other *OpStats) {
	s.MagneticReads += other.MagneticReads
	s.MagneticWrites += other.MagneticWrites
	s.ElectricReads += other.ElectricReads
	s.ElectricWrites += other.ElectricWrites
	s.HeatLines += other.HeatLines
	s.VerifyLines += other.VerifyLines
	s.CorrectedBytes += other.CorrectedBytes
	s.MagneticReadNS += other.MagneticReadNS
	s.MagneticWriteNS += other.MagneticWriteNS
	s.ElectricReadNS += other.ElectricReadNS
	s.ElectricWriteNS += other.ElectricWriteNS
}

// Errors returned by Device operations.
var (
	// ErrOutOfRange reports a PBA beyond the device.
	ErrOutOfRange = errors.New("device: block address out of range")
	// ErrHeatedBlock reports a magnetic write or read aimed at an
	// electrically written block.
	ErrHeatedBlock = errors.New("device: block is electrically written (heated)")
	// ErrBadBlock reports an access to a block marked bad.
	ErrBadBlock = errors.New("device: block marked bad")
	// ErrNotHeated reports an electrical read of a block that holds no
	// electrical data.
	ErrNotHeated = errors.New("device: block is not electrically written")
)

// New builds a device. Medium geometry is derived from the block count
// unless overridden: one row of dots per block keeps the mapping
// simple and the seek model meaningful.
func New(p Params) *Device {
	if p.Blocks <= 0 {
		panic(fmt.Sprintf("device: non-positive block count %d", p.Blocks))
	}
	if p.ErbRetries <= 0 {
		p.ErbRetries = 8
	}
	mp := p.Medium
	if mp.Rows == 0 {
		mp = medium.DefaultParams(p.Blocks, DotsPerBlock)
	}
	if mp.Rows*mp.Cols < p.Blocks*DotsPerBlock {
		panic(fmt.Sprintf("device: medium %dx%d too small for %d blocks",
			mp.Rows, mp.Cols, p.Blocks))
	}
	t := p.Timing
	if t.BitCell == 0 {
		t = probe.DefaultTiming()
	}
	g := p.Geometry
	if g.ProbeRows == 0 {
		g = probe.DefaultGeometry()
	}
	clock := &sim.Clock{}
	d := &Device{
		p:      p,
		med:    medium.New(mp),
		clock:  clock,
		timing: t,
		geo:    g,
		heated: make(map[uint64]bool),
		bad:    make(map[uint64]bool),
		lines:  make(map[uint64]LineInfo),
	}
	d.xtalkSpan = uint64((mp.Cols + DotsPerBlock - 1) / DotsPerBlock)
	if d.xtalkSpan < 1 {
		d.xtalkSpan = 1
	}
	// The probe array's addressable capacity may be smaller than the
	// medium in scaled-down test configurations; the array is used for
	// latency accounting over a wrapped index space.
	d.arr = probe.NewArray(t, g, mp.PitchNM, clock)
	d.fg = plane{arr: d.arr, clock: d.clock, stats: &d.stats, shared: true}
	d.SetConcurrency(p.Concurrency)
	return d
}

// Blocks returns the number of blocks.
func (d *Device) Blocks() int { return d.p.Blocks }

// Params returns the device's construction parameters — what an array
// needs to commission an identical spare sled for a member rebuild.
func (d *Device) Params() Params { return d.p }

// Clock returns the device's virtual clock.
func (d *Device) Clock() *sim.Clock { return d.clock }

// Medium exposes the underlying medium for fault injection, forensics
// oracles and attack simulations. Production code above the device
// layer must not touch it. Mutating the medium while device commands
// run concurrently is a data race in the simulator (the medium itself
// is unsynchronised); live-load attack harnesses must go through
// TamperRaw or TamperExclusive instead.
func (d *Device) Medium() *medium.Medium { return d.med }

// TamperRaw runs f against the raw medium while holding the stripe
// locks covering blocks [start, end) — the attack-simulation analogue
// of physical access with a probe tip: the adversary's raw dot writes
// are atomic with respect to concurrent device commands at block
// granularity, but bypass every device-level check and charge no
// virtual time. Test/attack instrumentation only.
func (d *Device) TamperRaw(start, end uint64, f func(m *medium.Medium)) {
	if end <= start {
		return
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	locked := d.lockRange(start, end)
	defer d.unlockRange(locked)
	f(d.med)
}

// TamperExclusive runs f against the raw medium with the whole device
// quiesced (the gate held exclusively, like Scan) — for whole-medium
// attacks such as bulk erasure that cannot be bounded to a block
// range. Test/attack instrumentation only.
func (d *Device) TamperExclusive(f func(m *medium.Medium)) {
	d.gate.Lock()
	defer d.gate.Unlock()
	f(d.med)
}

// Concurrency returns the default fan-out width for VerifyLines and
// Scan.
func (d *Device) Concurrency() int { return int(d.conc.Load()) }

// SetConcurrency sets the default fan-out width; values below 1 are
// clamped to 1 (serial).
func (d *Device) SetConcurrency(k int) {
	if k < 1 {
		k = 1
	}
	d.conc.Store(int32(k))
}

// Stats returns a copy of the operation counters.
func (d *Device) Stats() OpStats {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters.
func (d *Device) ResetStats() {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.stats = OpStats{}
}

// mergeStats folds a private plane's counters into the device stats.
func (d *Device) mergeStats(other *OpStats) {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.stats.add(other)
}

// dotBase returns the first dot index of block pba.
func (d *Device) dotBase(pba uint64) int { return int(pba) * DotsPerBlock }

// chargeIndex maps a block's dot range into the probe array's index
// space for latency accounting.
func (d *Device) chargeIndex(first int) int {
	cap := d.arr.Capacity()
	return first % cap
}

func (d *Device) checkPBA(pba uint64) error {
	if pba >= uint64(d.p.Blocks) {
		return fmt.Errorf("%w: %d >= %d", ErrOutOfRange, pba, d.p.Blocks)
	}
	return nil
}

// lockBlock acquires the single stripe covering block pba and returns
// its index for unlockBlock. This is the allocation-free fast path
// for single-block operations, the hottest locking pattern.
func (d *Device) lockBlock(pba uint64) int {
	s := int((pba >> regionShiftBits) % lockStripes)
	d.stripes[s].Lock()
	return s
}

// unlockBlock releases a stripe acquired by lockBlock.
func (d *Device) unlockBlock(s int) { d.stripes[s].Unlock() }

// lockRange acquires the stripe locks covering blocks [start, end) in
// ascending stripe order — the single global order that keeps
// multi-stripe acquisition deadlock-free — and returns the locked
// stripe indices for unlockRange.
func (d *Device) lockRange(start, end uint64) []int {
	r0 := start >> regionShiftBits
	r1 := (end - 1) >> regionShiftBits
	var idx []int
	if r1-r0+1 >= lockStripes {
		idx = make([]int, lockStripes)
		for i := range idx {
			idx[i] = i
		}
	} else {
		seen := [lockStripes]bool{}
		for r := r0; r <= r1; r++ {
			s := int(r % lockStripes)
			if !seen[s] {
				seen[s] = true
				idx = append(idx, s)
			}
		}
		sort.Ints(idx)
	}
	for _, s := range idx {
		d.stripes[s].Lock()
	}
	return idx
}

// unlockRange releases stripes acquired by lockRange.
func (d *Device) unlockRange(idx []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		d.stripes[idx[i]].Unlock()
	}
}

// lockCrosstalkRange locks the stripes for a range that will be
// written *electrically*: heating a dot thermally disturbs its
// immediate dot neighbours, which live up to xtalkSpan blocks away
// (exactly the adjacent blocks for the standard one-row-per-block
// layout), so the locked range is widened by that many blocks on each
// side (clamped to the device).
func (d *Device) lockCrosstalkRange(start, end uint64) []int {
	if start > d.xtalkSpan {
		start -= d.xtalkSpan
	} else {
		start = 0
	}
	if end+d.xtalkSpan < uint64(d.p.Blocks) {
		end += d.xtalkSpan
	} else {
		end = uint64(d.p.Blocks)
	}
	return d.lockRange(start, end)
}

// magWriteCheck reports why block pba cannot be magnetically written
// (heated, bad, or inside a heated line). Caller holds the block's
// stripe lock.
func (d *Device) magWriteCheck(pba uint64) error {
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	if d.heated[pba] {
		return fmt.Errorf("%w: %d", ErrHeatedBlock, pba)
	}
	if d.bad[pba] {
		return fmt.Errorf("%w: %d", ErrBadBlock, pba)
	}
	if d.lineOverlaps(pba, 1) {
		// Honest firmware refuses to overwrite members of a heated
		// line: the data is read-only after the heat operation. An
		// attacker bypasses this via raw medium access — and is then
		// caught by VerifyLine.
		return fmt.Errorf("%w: %d is inside a heated line", ErrHeatedBlock, pba)
	}
	return nil
}

// magReadCheck reports why block pba cannot be magnetically read.
func (d *Device) magReadCheck(pba uint64) error {
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	if d.heated[pba] {
		return fmt.Errorf("%w: %d", ErrHeatedBlock, pba)
	}
	if d.bad[pba] {
		return fmt.Errorf("%w: %d", ErrBadBlock, pba)
	}
	return nil
}

// MWS magnetically writes 512 bytes of data to block pba (the paper's
// mws). Writing to a heated or bad block fails.
func (d *Device) MWS(pba uint64, data []byte) error {
	if len(data) != DataBytes {
		return fmt.Errorf("device: MWS payload %d bytes, want %d", len(data), DataBytes)
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	if err := d.checkPBA(pba); err != nil {
		return err
	}
	locked := d.lockBlock(pba)
	defer d.unlockBlock(locked)
	if err := d.magWriteCheck(pba); err != nil {
		return err
	}
	d.mwsOn(&d.fg, pba, data)
	return nil
}

// mwsOn performs the magnetic sector write on the given plane as a
// one-block command (setup settle + transfer). Caller holds the gate
// read lock and the block's stripe lock and has passed magWriteCheck.
func (d *Device) mwsOn(pl *plane, pba uint64, data []byte) {
	d.writeRunOn(pl, pba, [][]byte{data})
}

// writeRunOn magnetically writes a pre-validated contiguous run of
// blocks on the given plane as one device command: the servo settles
// once, then the frames stream dot-contiguously — the write-side
// mirror of the contiguous line-image read pass. Caller holds the gate
// read lock and the run's stripe locks and has passed magWriteCheck
// for every block of the run.
func (d *Device) writeRunOn(pl *plane, start uint64, blocks [][]byte) {
	base := d.dotBase(start)
	tr := d.tracer.Load()
	var t0, t1 time.Duration
	elapsed := pl.charge(d, func(a *probe.Array) {
		// The probe clock is read (never advanced) inside the charge
		// window so the settle/transfer split lands on the shared
		// timeline exactly where the charges did.
		if tr != nil {
			t0 = pl.clock.Now()
		}
		a.ChargeWriteSetup()
		if tr != nil {
			t1 = pl.clock.Now()
		}
		a.ChargeMagneticWrite(d.chargeIndex(base), len(blocks)*DotsPerBlock)
	})
	if tr != nil {
		tr.Emit(trace.Span{Name: "settle", Cat: "device", Track: pl.track + d.p.TrackOffset, Session: -1,
			Start: pl.base + int64(t0), Dur: int64(t1 - t0), V1: int64(len(blocks)), V2: int64(start)})
		tr.Emit(trace.Span{Name: "write", Cat: "device", Track: pl.track + d.p.TrackOffset, Session: -1,
			Start: pl.base + int64(t1), Dur: int64(t0+elapsed) - int64(t1), V1: int64(len(blocks)), V2: int64(start)})
	}
	for i, data := range blocks {
		pba := start + uint64(i)
		f := Frame{PBA: pba, Flags: FlagData}
		copy(f.Data[:], data)
		bits := bytesToBits(f.Marshal())
		blockBase := d.dotBase(pba)
		for j, b := range bits {
			d.med.MWB(blockBase+j, b)
		}
	}
	pl.record(d, func(st *OpStats) {
		st.MagneticWrites += uint64(len(blocks))
		st.MagneticWriteNS += elapsed
	})
	if fn := d.wobs.Load(); fn != nil {
		for i, data := range blocks {
			(*fn)(start+uint64(i), data)
		}
	}
}

// WriteBlocks magnetically writes len(blocks) consecutive sectors
// starting at start as one batched command: the stripe locks covering
// the run are taken once, seek and settle are charged once for the
// whole run, and the frames then stream. Every target block is checked
// before the first bit is written, so a refused run writes nothing.
func (d *Device) WriteBlocks(start uint64, blocks [][]byte) error {
	return d.WriteBlocksTraced(nil, start, blocks)
}

// WriteBlocksTraced is WriteBlocks with the command's device charges
// attributed to task (nil behaves exactly like WriteBlocks) — the
// entry point the traced lfs paths use so per-op own-device time can
// be split from queueing.
func (d *Device) WriteBlocksTraced(task *trace.Task, start uint64, blocks [][]byte) error {
	if len(blocks) == 0 {
		return nil
	}
	for i, b := range blocks {
		if len(b) != DataBytes {
			return fmt.Errorf("device: WriteBlocks payload %d bytes at block %d, want %d",
				len(b), i, DataBytes)
		}
	}
	n := uint64(len(blocks))
	d.gate.RLock()
	defer d.gate.RUnlock()
	if err := d.checkPBA(start); err != nil {
		return err
	}
	if start+n > uint64(d.p.Blocks) {
		return fmt.Errorf("%w: [%d,%d) beyond %d blocks",
			ErrOutOfRange, start, start+n, d.p.Blocks)
	}
	locked := d.lockRange(start, start+n)
	defer d.unlockRange(locked)
	for pba := start; pba < start+n; pba++ {
		if err := d.magWriteCheck(pba); err != nil {
			return err
		}
	}
	d.writeRunOn(d.fgFor(task), start, blocks)
	return nil
}

// MRS magnetically reads block pba (the paper's mrs), returning the
// 512-byte payload. It refuses to magnetically read a block known to be
// electrically written (protocol rule of §3); reading an unknown heated
// block surfaces as ErrUncorrectable, after which the caller should
// probe with ERS.
func (d *Device) MRS(pba uint64) ([]byte, error) {
	return d.MRSTraced(nil, pba)
}

// MRSTraced is MRS with the read's device charge attributed to task
// (nil behaves exactly like MRS) — the entry point the traced lfs read
// path uses so per-op own-device time can be split from queueing.
func (d *Device) MRSTraced(task *trace.Task, pba uint64) ([]byte, error) {
	d.gate.RLock()
	defer d.gate.RUnlock()
	if err := d.checkPBA(pba); err != nil {
		return nil, err
	}
	locked := d.lockBlock(pba)
	defer d.unlockBlock(locked)
	if err := d.magReadCheck(pba); err != nil {
		return nil, err
	}
	buf := make([]byte, DataBytes)
	if _, err := d.mrsInto(d.fgFor(task), pba, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// mrsInto magnetically reads block pba into dst (DataBytes long) on the
// given plane, returning the corrected byte count. Caller holds the
// gate read lock and the block's stripe lock and has passed
// magReadCheck.
func (d *Device) mrsInto(pl *plane, pba uint64, dst []byte) (int, error) {
	base := d.dotBase(pba)
	tr := d.tracer.Load()
	var t0 time.Duration
	elapsed := pl.charge(d, func(a *probe.Array) {
		if tr != nil {
			t0 = pl.clock.Now()
		}
		a.ChargeMagneticRead(d.chargeIndex(base), DotsPerBlock)
	})
	if tr != nil {
		tr.Emit(trace.Span{Name: "read", Cat: "device", Track: pl.track + d.p.TrackOffset, Session: -1,
			Start: pl.base + int64(t0), Dur: int64(elapsed), V1: 1, V2: int64(pba)})
	}
	bits := make([]bool, DotsPerBlock)
	for i := range bits {
		bits[i] = d.med.MRB(base + i)
	}
	img := bitsToBytes(bits)
	f, corrected, err := UnmarshalFrame(img, pba)
	pl.record(d, func(st *OpStats) {
		st.MagneticReads++
		st.MagneticReadNS += elapsed
		st.CorrectedBytes += uint64(corrected)
	})
	if fn := d.robs.Load(); fn != nil {
		(*fn)(pba)
	}
	if err != nil {
		return corrected, err
	}
	copy(dst, f.Data[:])
	return corrected, nil
}

// EWS electrically writes payload into block pba's data region using
// the device's cell coding (the paper's ews). Manchester doubles the
// footprint, so up to 256 bytes fit the 4096-dot data region (341 with
// the WOM coding). Heating is irreversible; the block becomes
// read-only-electrical afterwards.
func (d *Device) EWS(pba uint64, payload []byte) error {
	if len(payload) == 0 || d.codingDots(len(payload)) > DataRegionDots {
		return fmt.Errorf("device: EWS payload %d bytes does not fit %d dots",
			len(payload), DataRegionDots)
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	if err := d.checkPBA(pba); err != nil {
		return err
	}
	locked := d.lockCrosstalkRange(pba, pba+1)
	defer d.unlockRange(locked)
	if err := d.ewsCheck(pba); err != nil {
		return err
	}
	d.ewsOn(&d.fg, pba, payload)
	d.regMu.Lock()
	d.heated[pba] = true
	d.regMu.Unlock()
	return nil
}

// ewsCheck reports why block pba cannot be electrically written.
func (d *Device) ewsCheck(pba uint64) error {
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	if d.bad[pba] {
		return fmt.Errorf("%w: %d", ErrBadBlock, pba)
	}
	return nil
}

// codingDots returns the dot footprint of n payload bytes under the
// device's coding.
func (d *Device) codingDots(n int) int {
	if d.p.Coding == CodingWOM {
		return womDots(n)
	}
	return manchesterDots(n)
}

// ewsOn performs the electrical sector write on the given plane.
// Caller holds the gate read lock and the crosstalk-widened stripe
// locks and has passed ewsCheck; caller also updates the heated cache.
func (d *Device) ewsOn(pl *plane, pba uint64, payload []byte) {
	var flags []bool
	if d.p.Coding == CodingWOM {
		flags = womEncode(payload)
	} else {
		flags = manchesterEncode(payload)
	}
	base := d.dotBase(pba) + headerDotOffset()
	heatCount := 0
	for _, f := range flags {
		if f {
			heatCount++
		}
	}
	elapsed := pl.charge(d, func(a *probe.Array) {
		a.ChargeWriteSetup()
		a.ChargeElectricWrite(d.chargeIndex(base), heatCount)
	})
	for i, f := range flags {
		if f {
			d.med.EWB(base + i)
		}
	}
	pl.record(d, func(st *OpStats) {
		st.ElectricWrites++
		st.ElectricWriteNS += elapsed
	})
}

// ERS electrically reads block pba's data region (the paper's ers): the
// erb protocol runs over the first dots covering payloadLen bytes of
// Manchester data. The returned report carries the decoded payload and
// any tampered (HH) or unused (UU) cells.
func (d *Device) ERS(pba uint64, payloadLen int) (ERSReport, error) {
	d.gate.RLock()
	defer d.gate.RUnlock()
	if err := d.checkPBA(pba); err != nil {
		return ERSReport{}, err
	}
	locked := d.lockBlock(pba)
	defer d.unlockBlock(locked)
	return d.ersOn(&d.fg, pba, payloadLen)
}

// ersOn performs the electrical sector read on the given plane. Caller
// holds the gate read lock (or the exclusive gate) and the block's
// stripe lock (not needed under the exclusive gate).
func (d *Device) ersOn(pl *plane, pba uint64, payloadLen int) (ERSReport, error) {
	if payloadLen <= 0 || d.codingDots(payloadLen) > DataRegionDots {
		return ERSReport{}, fmt.Errorf("device: ERS length %d invalid", payloadLen)
	}
	base := d.dotBase(pba) + headerDotOffset()
	n := d.codingDots(payloadLen)
	elapsed := pl.charge(d, func(a *probe.Array) {
		a.ChargeElectricRead(d.chargeIndex(base), n*d.p.ErbRetries)
	})
	flags := make([]bool, n)
	for i := range flags {
		flags[i] = d.erbDot(base + i)
	}
	pl.record(d, func(st *OpStats) {
		st.ElectricReads++
		st.ElectricReadNS += elapsed
	})
	if d.p.Coding == CodingWOM {
		return decodeERSWOM(flags)
	}
	return decodeERS(flags)
}

// erbDot runs the 5-step erb protocol with retries: the dot is declared
// heated as soon as any attempt fails verification. A healthy dot with
// reasonable SNR essentially never fails, so false positives are
// negligible; retries only reduce false negatives.
func (d *Device) erbDot(i int) bool {
	for r := 0; r < d.p.ErbRetries; r++ {
		if d.med.ERB(i) {
			return true
		}
	}
	return false
}

// lowAmplitude reports whether dot i reads at well under the nominal
// signal amplitude (averaged over a few samples) — the signature of a
// destroyed multilayer as opposed to a pinned defect.
func (d *Device) lowAmplitude(i int) bool {
	const samples = 3
	var sum float64
	for s := 0; s < samples; s++ {
		v := d.med.MRBAnalog(i)
		if v < 0 {
			v = -v
		}
		sum += v
	}
	return sum/samples < 0.5*d.med.Params().SignalAmplitude
}

// IsHeatedCached reports whether the device believes block pba is
// electrically written, from its cache (no medium access).
func (d *Device) IsHeatedCached(pba uint64) bool {
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	return d.heated[pba]
}

// ProbeHeated checks the medium (not the cache) for electrical data in
// block pba by sampling the first Manchester cells of its data region.
// Used by bad-block discrimination and by Scan. A block is considered
// electrically written only when at least one sampled cell contains
// exactly one heated dot — a structurally valid Manchester data cell.
// A block whose every sampled cell reads HH carries no decodable
// Manchester structure: it is either physically dead or shredded, and
// either way is safe to mark bad (marking never destroys the HH
// evidence on the medium). This is the paper's §3 discrimination
// problem: "a heated block should not be misinterpreted as a bad
// block".
func (d *Device) ProbeHeated(pba uint64, sampleCells int) (bool, error) {
	d.gate.RLock()
	defer d.gate.RUnlock()
	if err := d.checkPBA(pba); err != nil {
		return false, err
	}
	locked := d.lockBlock(pba)
	defer d.unlockBlock(locked)
	return d.probeHeatedOn(&d.fg, pba, sampleCells)
}

// probeHeatedOn runs the heated-block probe on the given plane. Caller
// holds the gate read lock and the block's stripe lock, or the
// exclusive gate (Scan), and has validated pba — like the other *On
// helpers, validation belongs to the public entry points.
func (d *Device) probeHeatedOn(pl *plane, pba uint64, sampleCells int) (bool, error) {
	if sampleCells <= 0 {
		sampleCells = 16
	}
	if sampleCells < 32 {
		sampleCells = 32
	}
	// Samples are spread across the heat-record area rather than taken
	// from its front: a localised HH-burn attack on the first cells
	// must not hide the block's electrical nature from the scan.
	recordCells := HeatRecordBytes * 8
	if sampleCells > recordCells {
		sampleCells = recordCells
	}
	stride := recordCells / sampleCells
	base := d.dotBase(pba) + headerDotOffset()
	elapsed := pl.charge(d, func(a *probe.Array) {
		a.ChargeElectricRead(d.chargeIndex(base), sampleCells*2*d.p.ErbRetries)
	})

	// A dot counts as genuinely heated only when the erb protocol
	// fails AND its analog amplitude is low: a defective (pinned) dot
	// also fails the inversion check, but at full read amplitude —
	// that distinction is what keeps bad blocks from masquerading as
	// electrical data. (A fully dead dot remains ambiguous; the
	// minimum-valid-cells threshold below covers it, since isolated
	// defects cannot fake the dense cell structure of a real record.)
	heatedDot := func(i int) bool {
		if !d.erbDot(i) {
			return false
		}
		return d.lowAmplitude(i)
	}
	valid := 0
	for i := 0; i < sampleCells; i++ {
		c := i * stride
		a := heatedDot(base + 2*c)
		b := heatedDot(base + 2*c + 1)
		if a != b { // exactly one heated: valid Manchester data cell
			valid++
		}
	}
	// Require a minimum density of valid write-once cells; scattered
	// media defects produce at most a couple.
	found := valid >= 4
	pl.record(d, func(st *OpStats) {
		st.ElectricReads++
		st.ElectricReadNS += elapsed
	})
	return found, nil
}

// MarkBad declares block pba bad after the caller has established (via
// ProbeHeated) that it is not electrically written. Marking a heated
// block bad is refused: that is exactly the misinterpretation §3 warns
// against.
func (d *Device) MarkBad(pba uint64) error {
	d.gate.RLock()
	defer d.gate.RUnlock()
	if err := d.checkPBA(pba); err != nil {
		return err
	}
	locked := d.lockBlock(pba)
	defer d.unlockBlock(locked)
	d.regMu.RLock()
	known := d.heated[pba]
	d.regMu.RUnlock()
	if known {
		return fmt.Errorf("%w: refusing to mark heated block %d bad", ErrHeatedBlock, pba)
	}
	ok, err := d.probeHeatedOn(&d.fg, pba, 16)
	if err != nil {
		return err
	}
	d.regMu.Lock()
	defer d.regMu.Unlock()
	if ok {
		d.heated[pba] = true
		return fmt.Errorf("%w: block %d is electrically written", ErrHeatedBlock, pba)
	}
	d.bad[pba] = true
	return nil
}

// IsBad reports whether block pba is marked bad.
func (d *Device) IsBad(pba uint64) bool {
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	return d.bad[pba]
}

// HeatedBlocks returns the sorted list of blocks the device knows to be
// electrically written.
func (d *Device) HeatedBlocks() []uint64 {
	d.regMu.RLock()
	defer d.regMu.RUnlock()
	out := make([]uint64, 0, len(d.heated))
	for pba := range d.heated {
		out = append(out, pba)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
