package device

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sero/internal/medium"
	"sero/internal/probe"
	"sero/internal/sim"
)

// Coding selects the write-once cell coding used for electrically
// written records (§8 "Efficiency").
type Coding int

// Available codings.
const (
	// CodingManchester stores 1 bit in 2 dots; the invalid HH state
	// makes tampering locally evident (the paper's default).
	CodingManchester Coding = iota
	// CodingWOM stores 2 bits in 3 dots (Rivest-Shamir write-once
	// code [33]): 25 % fewer heated dots and a one-time rewrite
	// capability, but every dot pattern is a valid codeword, so
	// tamper detection falls back to the record parse and the line
	// hash — the §8 trade-off, measurable in experiment E5.
	CodingWOM
)

// String names the coding.
func (c Coding) String() string {
	switch c {
	case CodingManchester:
		return "manchester"
	case CodingWOM:
		return "wom"
	default:
		return fmt.Sprintf("Coding(%d)", int(c))
	}
}

// Params configures a Device.
type Params struct {
	// Blocks is the number of 512-byte blocks the device exposes.
	Blocks int

	// Coding selects the electrical-record cell coding.
	Coding Coding

	// ErbRetries is how many times the electrical read protocol is
	// repeated per dot; a dot is declared heated as soon as one attempt
	// fails verification. More retries drive the probability of
	// missing a heated dot toward zero (experiment E7).
	ErbRetries int

	// Medium overrides the medium parameters; zero value means
	// derived defaults.
	Medium medium.Params

	// Timing overrides the probe latency model; zero value means
	// probe.DefaultTiming.
	Timing probe.Timing

	// Geometry overrides the probe-array geometry; zero value means
	// probe.DefaultGeometry.
	Geometry probe.Geometry
}

// DefaultParams returns a device of the given size with the standard
// medium, timing and geometry models.
func DefaultParams(blocks int) Params {
	return Params{Blocks: blocks, ErbRetries: 8}
}

// Device is a simulated SERO probe-storage device. It is safe for
// concurrent use; operations are serialised internally, matching the
// single mechanical sled of the hardware.
type Device struct {
	mu sync.Mutex

	p     Params
	med   *medium.Medium
	arr   *probe.Array
	clock *sim.Clock

	// heated caches which blocks have been electrically written, so
	// the device can enforce the read protocol ("magnetically written
	// data must only be read magnetically and electrically written
	// data must only be read electrically", §3) without a scan. It is
	// a cache, not ground truth: Scan rebuilds it from the medium.
	heated map[uint64]bool

	// bad records blocks declared unusable after failed reads that
	// were *not* electrically written.
	bad map[uint64]bool

	// lines is the registry of heated lines, keyed by start PBA.
	lines map[uint64]LineInfo

	stats OpStats
}

// OpStats counts sector-level operations and their virtual-time cost.
type OpStats struct {
	MagneticReads   uint64
	MagneticWrites  uint64
	ElectricReads   uint64
	ElectricWrites  uint64
	HeatLines       uint64
	VerifyLines     uint64
	CorrectedBytes  uint64
	MagneticReadNS  time.Duration
	MagneticWriteNS time.Duration
	ElectricReadNS  time.Duration
	ElectricWriteNS time.Duration
}

// Errors returned by Device operations.
var (
	// ErrOutOfRange reports a PBA beyond the device.
	ErrOutOfRange = errors.New("device: block address out of range")
	// ErrHeatedBlock reports a magnetic write or read aimed at an
	// electrically written block.
	ErrHeatedBlock = errors.New("device: block is electrically written (heated)")
	// ErrBadBlock reports an access to a block marked bad.
	ErrBadBlock = errors.New("device: block marked bad")
	// ErrNotHeated reports an electrical read of a block that holds no
	// electrical data.
	ErrNotHeated = errors.New("device: block is not electrically written")
)

// New builds a device. Medium geometry is derived from the block count
// unless overridden: one row of dots per block keeps the mapping
// simple and the seek model meaningful.
func New(p Params) *Device {
	if p.Blocks <= 0 {
		panic(fmt.Sprintf("device: non-positive block count %d", p.Blocks))
	}
	if p.ErbRetries <= 0 {
		p.ErbRetries = 8
	}
	mp := p.Medium
	if mp.Rows == 0 {
		mp = medium.DefaultParams(p.Blocks, DotsPerBlock)
	}
	if mp.Rows*mp.Cols < p.Blocks*DotsPerBlock {
		panic(fmt.Sprintf("device: medium %dx%d too small for %d blocks",
			mp.Rows, mp.Cols, p.Blocks))
	}
	t := p.Timing
	if t.BitCell == 0 {
		t = probe.DefaultTiming()
	}
	g := p.Geometry
	if g.ProbeRows == 0 {
		g = probe.DefaultGeometry()
	}
	clock := &sim.Clock{}
	d := &Device{
		p:      p,
		med:    medium.New(mp),
		clock:  clock,
		heated: make(map[uint64]bool),
		bad:    make(map[uint64]bool),
		lines:  make(map[uint64]LineInfo),
	}
	// The probe array's addressable capacity may be smaller than the
	// medium in scaled-down test configurations; the array is used for
	// latency accounting over a wrapped index space.
	d.arr = probe.NewArray(t, g, mp.PitchNM, clock)
	return d
}

// Blocks returns the number of blocks.
func (d *Device) Blocks() int { return d.p.Blocks }

// Clock returns the device's virtual clock.
func (d *Device) Clock() *sim.Clock { return d.clock }

// Medium exposes the underlying medium for fault injection, forensics
// oracles and attack simulations. Production code above the device
// layer must not touch it.
func (d *Device) Medium() *medium.Medium { return d.med }

// Stats returns a copy of the operation counters.
func (d *Device) Stats() OpStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = OpStats{}
}

// dotBase returns the first dot index of block pba.
func (d *Device) dotBase(pba uint64) int { return int(pba) * DotsPerBlock }

// chargeDots maps a block's dot range into the probe array's index
// space for latency accounting.
func (d *Device) chargeIndex(first int) int {
	cap := d.arr.Capacity()
	return first % cap
}

func (d *Device) checkPBA(pba uint64) error {
	if pba >= uint64(d.p.Blocks) {
		return fmt.Errorf("%w: %d >= %d", ErrOutOfRange, pba, d.p.Blocks)
	}
	return nil
}

// MWS magnetically writes 512 bytes of data to block pba (the paper's
// mws). Writing to a heated or bad block fails.
func (d *Device) MWS(pba uint64, data []byte) error {
	if len(data) != DataBytes {
		return fmt.Errorf("device: MWS payload %d bytes, want %d", len(data), DataBytes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkPBA(pba); err != nil {
		return err
	}
	if d.heated[pba] {
		return fmt.Errorf("%w: %d", ErrHeatedBlock, pba)
	}
	if d.bad[pba] {
		return fmt.Errorf("%w: %d", ErrBadBlock, pba)
	}
	if d.lineOverlaps(pba, 1) {
		// Honest firmware refuses to overwrite members of a heated
		// line: the data is read-only after the heat operation. An
		// attacker bypasses this via raw medium access — and is then
		// caught by VerifyLine.
		return fmt.Errorf("%w: %d is inside a heated line", ErrHeatedBlock, pba)
	}
	f := Frame{PBA: pba, Flags: FlagData}
	copy(f.Data[:], data)
	img := f.Marshal()
	bits := bytesToBits(img)
	base := d.dotBase(pba)
	sw := sim.NewStopwatch(d.clock)
	d.arr.ChargeMagneticWrite(d.chargeIndex(base), len(bits))
	for i, b := range bits {
		d.med.MWB(base+i, b)
	}
	d.stats.MagneticWrites++
	d.stats.MagneticWriteNS += sw.Elapsed()
	return nil
}

// MRS magnetically reads block pba (the paper's mrs), returning the
// 512-byte payload. It refuses to magnetically read a block known to be
// electrically written (protocol rule of §3); reading an unknown heated
// block surfaces as ErrUncorrectable, after which the caller should
// probe with ERS.
func (d *Device) MRS(pba uint64) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mrsLocked(pba)
}

func (d *Device) mrsLocked(pba uint64) ([]byte, error) {
	if err := d.checkPBA(pba); err != nil {
		return nil, err
	}
	if d.heated[pba] {
		return nil, fmt.Errorf("%w: %d", ErrHeatedBlock, pba)
	}
	if d.bad[pba] {
		return nil, fmt.Errorf("%w: %d", ErrBadBlock, pba)
	}
	base := d.dotBase(pba)
	sw := sim.NewStopwatch(d.clock)
	d.arr.ChargeMagneticRead(d.chargeIndex(base), DotsPerBlock)
	bits := make([]bool, DotsPerBlock)
	for i := range bits {
		bits[i] = d.med.MRB(base + i)
	}
	d.stats.MagneticReads++
	d.stats.MagneticReadNS += sw.Elapsed()
	img := bitsToBytes(bits)
	f, corrected, err := UnmarshalFrame(img, pba)
	d.stats.CorrectedBytes += uint64(corrected)
	if err != nil {
		return nil, err
	}
	return f.Data[:], nil
}

// EWS electrically writes payload into block pba's data region using
// the device's cell coding (the paper's ews). Manchester doubles the
// footprint, so up to 256 bytes fit the 4096-dot data region (341 with
// the WOM coding). Heating is irreversible; the block becomes
// read-only-electrical afterwards.
func (d *Device) EWS(pba uint64, payload []byte) error {
	if len(payload) == 0 || d.codingDots(len(payload)) > DataRegionDots {
		return fmt.Errorf("device: EWS payload %d bytes does not fit %d dots",
			len(payload), DataRegionDots)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ewsLocked(pba, payload)
}

// codingDots returns the dot footprint of n payload bytes under the
// device's coding.
func (d *Device) codingDots(n int) int {
	if d.p.Coding == CodingWOM {
		return womDots(n)
	}
	return manchesterDots(n)
}

func (d *Device) ewsLocked(pba uint64, payload []byte) error {
	if err := d.checkPBA(pba); err != nil {
		return err
	}
	if d.bad[pba] {
		return fmt.Errorf("%w: %d", ErrBadBlock, pba)
	}
	var flags []bool
	if d.p.Coding == CodingWOM {
		flags = womEncode(payload)
	} else {
		flags = manchesterEncode(payload)
	}
	base := d.dotBase(pba) + headerDotOffset()
	sw := sim.NewStopwatch(d.clock)
	heatCount := 0
	for i, f := range flags {
		if f {
			d.med.EWB(base + i)
			heatCount++
		}
	}
	d.arr.ChargeElectricWrite(d.chargeIndex(base), heatCount)
	d.heated[pba] = true
	d.stats.ElectricWrites++
	d.stats.ElectricWriteNS += sw.Elapsed()
	return nil
}

// ERS electrically reads block pba's data region (the paper's ers): the
// erb protocol runs over the first dots covering payloadLen bytes of
// Manchester data. The returned report carries the decoded payload and
// any tampered (HH) or unused (UU) cells.
func (d *Device) ERS(pba uint64, payloadLen int) (ERSReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ersLocked(pba, payloadLen)
}

func (d *Device) ersLocked(pba uint64, payloadLen int) (ERSReport, error) {
	if err := d.checkPBA(pba); err != nil {
		return ERSReport{}, err
	}
	if payloadLen <= 0 || d.codingDots(payloadLen) > DataRegionDots {
		return ERSReport{}, fmt.Errorf("device: ERS length %d invalid", payloadLen)
	}
	base := d.dotBase(pba) + headerDotOffset()
	n := d.codingDots(payloadLen)
	sw := sim.NewStopwatch(d.clock)
	d.arr.ChargeElectricRead(d.chargeIndex(base), n*d.p.ErbRetries)
	flags := make([]bool, n)
	for i := range flags {
		flags[i] = d.erbDot(base + i)
	}
	d.stats.ElectricReads++
	d.stats.ElectricReadNS += sw.Elapsed()
	if d.p.Coding == CodingWOM {
		return decodeERSWOM(flags)
	}
	return decodeERS(flags)
}

// erbDot runs the 5-step erb protocol with retries: the dot is declared
// heated as soon as any attempt fails verification. A healthy dot with
// reasonable SNR essentially never fails, so false positives are
// negligible; retries only reduce false negatives.
func (d *Device) erbDot(i int) bool {
	for r := 0; r < d.p.ErbRetries; r++ {
		if d.med.ERB(i) {
			return true
		}
	}
	return false
}

// lowAmplitude reports whether dot i reads at well under the nominal
// signal amplitude (averaged over a few samples) — the signature of a
// destroyed multilayer as opposed to a pinned defect.
func (d *Device) lowAmplitude(i int) bool {
	const samples = 3
	var sum float64
	for s := 0; s < samples; s++ {
		v := d.med.MRBAnalog(i)
		if v < 0 {
			v = -v
		}
		sum += v
	}
	return sum/samples < 0.5*d.med.Params().SignalAmplitude
}

// IsHeatedCached reports whether the device believes block pba is
// electrically written, from its cache (no medium access).
func (d *Device) IsHeatedCached(pba uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.heated[pba]
}

// ProbeHeated checks the medium (not the cache) for electrical data in
// block pba by sampling the first Manchester cells of its data region.
// Used by bad-block discrimination and by Scan. A block is considered
// electrically written only when at least one sampled cell contains
// exactly one heated dot — a structurally valid Manchester data cell.
// A block whose every sampled cell reads HH carries no decodable
// Manchester structure: it is either physically dead or shredded, and
// either way is safe to mark bad (marking never destroys the HH
// evidence on the medium). This is the paper's §3 discrimination
// problem: "a heated block should not be misinterpreted as a bad
// block".
func (d *Device) ProbeHeated(pba uint64, sampleCells int) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.probeHeatedLocked(pba, sampleCells)
}

func (d *Device) probeHeatedLocked(pba uint64, sampleCells int) (bool, error) {
	if err := d.checkPBA(pba); err != nil {
		return false, err
	}
	if sampleCells <= 0 {
		sampleCells = 16
	}
	if sampleCells < 32 {
		sampleCells = 32
	}
	// Samples are spread across the heat-record area rather than taken
	// from its front: a localised HH-burn attack on the first cells
	// must not hide the block's electrical nature from the scan.
	recordCells := HeatRecordBytes * 8
	if sampleCells > recordCells {
		sampleCells = recordCells
	}
	stride := recordCells / sampleCells
	base := d.dotBase(pba) + headerDotOffset()
	sw := sim.NewStopwatch(d.clock)
	d.arr.ChargeElectricRead(d.chargeIndex(base), sampleCells*2*d.p.ErbRetries)

	// A dot counts as genuinely heated only when the erb protocol
	// fails AND its analog amplitude is low: a defective (pinned) dot
	// also fails the inversion check, but at full read amplitude —
	// that distinction is what keeps bad blocks from masquerading as
	// electrical data. (A fully dead dot remains ambiguous; the
	// minimum-valid-cells threshold below covers it, since isolated
	// defects cannot fake the dense cell structure of a real record.)
	heatedDot := func(i int) bool {
		if !d.erbDot(i) {
			return false
		}
		return d.lowAmplitude(i)
	}
	valid := 0
	for i := 0; i < sampleCells; i++ {
		c := i * stride
		a := heatedDot(base + 2*c)
		b := heatedDot(base + 2*c + 1)
		if a != b { // exactly one heated: valid Manchester data cell
			valid++
		}
	}
	// Require a minimum density of valid write-once cells; scattered
	// media defects produce at most a couple.
	found := valid >= 4
	d.stats.ElectricReads++
	d.stats.ElectricReadNS += sw.Elapsed()
	return found, nil
}

// MarkBad declares block pba bad after the caller has established (via
// ProbeHeated) that it is not electrically written. Marking a heated
// block bad is refused: that is exactly the misinterpretation §3 warns
// against.
func (d *Device) MarkBad(pba uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkPBA(pba); err != nil {
		return err
	}
	if d.heated[pba] {
		return fmt.Errorf("%w: refusing to mark heated block %d bad", ErrHeatedBlock, pba)
	}
	ok, err := d.probeHeatedLocked(pba, 16)
	if err != nil {
		return err
	}
	if ok {
		d.heated[pba] = true
		return fmt.Errorf("%w: block %d is electrically written", ErrHeatedBlock, pba)
	}
	d.bad[pba] = true
	return nil
}

// IsBad reports whether block pba is marked bad.
func (d *Device) IsBad(pba uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bad[pba]
}

// HeatedBlocks returns the sorted list of blocks the device knows to be
// electrically written.
func (d *Device) HeatedBlocks() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, 0, len(d.heated))
	for pba := range d.heated {
		out = append(out, pba)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
