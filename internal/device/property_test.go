package device

import (
	"bytes"
	"testing"
	"testing/quick"

	"sero/internal/sim"
)

// Property-based test: random sequences of honest device operations
// must preserve the core invariants —
//
//  1. data written magnetically reads back identically until the block
//     joins a heated line;
//  2. heated lines always verify clean under honest operation;
//  3. blocks inside heated lines reject magnetic writes;
//  4. the heated-block set only grows.
func TestDeviceInvariantsUnderRandomOps(t *testing.T) {
	const blocks = 32
	f := func(seed uint64, script []uint16) bool {
		d := testDevice(t, blocks)
		rng := sim.NewRNG(seed)
		shadow := make(map[uint64][]byte) // expected content
		inLine := make(map[uint64]bool)   // block belongs to a heated line
		var lines []uint64
		heatedCount := 0

		for _, op := range script {
			switch op % 4 {
			case 0, 1: // write a random free block
				pba := uint64(rng.Intn(blocks))
				data := pattern(byte(op))
				err := d.MWS(pba, data)
				if inLine[pba] {
					if err == nil {
						t.Logf("write into heated line %d accepted", pba)
						return false
					}
					continue
				}
				if err != nil {
					return false
				}
				shadow[pba] = data
			case 2: // read back and compare
				pba := uint64(rng.Intn(blocks))
				want, ok := shadow[pba]
				if !ok || d.IsHeatedCached(pba) {
					continue
				}
				got, err := d.MRS(pba)
				if err != nil || !bytes.Equal(got, want) {
					t.Logf("round trip failed at %d: %v", pba, err)
					return false
				}
			case 3: // heat a fresh aligned 4-block line if possible
				start := uint64(rng.Intn(blocks/4)) * 4
				conflict := false
				for p := start; p < start+4; p++ {
					if inLine[p] {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
				// Ensure members are written (device requires readable
				// frames).
				for p := start + 1; p < start+4; p++ {
					if shadow[p] == nil {
						data := pattern(byte(p))
						if err := d.MWS(p, data); err != nil {
							return false
						}
						shadow[p] = data
					}
				}
				if _, err := d.HeatLine(start, 2); err != nil {
					t.Logf("heat [%d,%d): %v", start, start+4, err)
					return false
				}
				for p := start; p < start+4; p++ {
					inLine[p] = true
				}
				lines = append(lines, start)
				heatedCount++
			}
			// Invariant: heated set never shrinks.
			if len(d.HeatedBlocks()) < heatedCount {
				t.Log("heated set shrank")
				return false
			}
		}
		// All heated lines verify clean.
		for _, start := range lines {
			rep, err := d.VerifyLine(start)
			if err != nil || !rep.OK {
				t.Logf("line %d dirty after honest ops: %v", start, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
