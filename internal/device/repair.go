package device

import "fmt"

// Line repair: the service action behind the array's self-healing
// story. Heating is irreversible dot by dot, so a tampered heated line
// cannot be "fixed" in place — repair splices factory-fresh dots into
// the line's region (medium.ReplaceRegion), rewrites the magnetic
// payloads from reconstructed data, and re-heats the line so the heat
// record is re-established on the new dots. The caller (the array's
// parity path, or an operator restoring from a verified backup) is
// responsible for the payloads being the *true* data; the device's
// job is only to make the repair physically honest: the old dots and
// their evidence are discarded with the old region, and the new
// record's hash binds the new payloads at the same addresses.

// ReplaceLine replaces the 1<<logN blocks at start with fresh media,
// writes payloads (block start+1+i gets payloads[i]; slack up to the
// line end is zero-filled) and re-heats the line. The returned
// LineInfo carries the fresh heat record; its hash equals the original
// line's hash whenever the payloads match the original data, because
// the hash binds (PBA‖data) pairs and the addresses are unchanged.
// HeatedAt reflects the repair time — a repaired line does not hide
// that it was repaired.
func (d *Device) ReplaceLine(start uint64, logN uint8, payloads [][]byte) (LineInfo, error) {
	if logN < 1 || logN > 20 {
		return LineInfo{}, fmt.Errorf("%w: logN=%d", ErrBadLine, logN)
	}
	n := uint64(1) << logN
	if start%n != 0 {
		return LineInfo{}, fmt.Errorf("%w: start %d not aligned to %d", ErrBadLine, start, n)
	}
	if uint64(len(payloads)) > n-1 {
		return LineInfo{}, fmt.Errorf("%w: %d payloads for a %d-block line", ErrBadLine, len(payloads), n)
	}
	blocks := make([][]byte, n-1)
	for i := range blocks {
		if i < len(payloads) && payloads[i] != nil {
			if len(payloads[i]) != DataBytes {
				return LineInfo{}, fmt.Errorf("device: payload %d is %d bytes, want %d", i, len(payloads[i]), DataBytes)
			}
			blocks[i] = payloads[i]
		} else {
			blocks[i] = make([]byte, DataBytes)
		}
	}

	d.gate.RLock()
	if start+n > uint64(d.p.Blocks) {
		d.gate.RUnlock()
		return LineInfo{}, fmt.Errorf("%w: line [%d,%d) beyond %d blocks",
			ErrOutOfRange, start, start+n, d.p.Blocks)
	}
	locked := d.lockCrosstalkRange(start, start+n)

	// Splice in the spare region and scrub the host view of the old
	// one: registry entries, heated flags and bad-block marks inside
	// the line are gone with the old dots.
	d.med.ReplaceRegion(d.dotBase(start), d.dotBase(start+n))
	d.regMu.Lock()
	for s, li := range d.lines {
		if li.Start < start+n && li.End() > start {
			delete(d.lines, s)
		}
	}
	for pba := start; pba < start+n; pba++ {
		delete(d.heated, pba)
		delete(d.bad, pba)
	}
	d.regMu.Unlock()

	// Rewrite the payloads as one batched run on the foreground plane
	// (one settle, streamed writes) — the same charge an honest write
	// of the line costs; the mechanical splice is service time, not
	// device time. writeRunOn records stats and feeds the write
	// observer, so a crash-reconstruction stream sees the repair as
	// the honest rewrite it is.
	d.writeRunOn(&d.fg, start+1, blocks)
	d.unlockRange(locked)
	d.gate.RUnlock()

	// Re-establish the evidence on the new dots. HeatLine re-reads the
	// payloads and hashes (PBA‖data), so the record is exactly what an
	// original heat of this data would have produced.
	li, err := d.HeatLine(start, logN)
	if err != nil {
		return LineInfo{}, fmt.Errorf("device: re-heating replaced line at %d: %w", start, err)
	}
	return li, nil
}
