// Package device implements the SERO block device of §3: a probe
// storage device on a patterned medium offering the six sector
// operations the paper derives from the four bit operations —
//
//	mrs/mws: magnetic read/write of a 512-byte sector
//	ers/ews: electrical read/write of a sector (write-once)
//	heat:    hash a line of 2^N blocks and store the hash write-once
//	verify:  recompute and compare a heated line's hash
//
// Sectors carry "about 15% sector overhead for the sector header,
// error correction, and cyclic redundancy check" [39]: each 512-byte
// sector is framed with a 16-byte header (physical block address,
// flags, CRC-32 of the payload) and 64 bytes of interleaved
// Reed-Solomon parity, for 592 physical bytes — 15.6% overhead.
//
// The device addresses blocks by *physical* block address (PBA) and
// never remaps them: tamper evidence requires knowing exactly where to
// look for heated hashes (§3 "Addressing").
package device

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"sero/internal/ecc"
)

// Sector geometry constants.
const (
	// DataBytes is the payload size of one block (one sector).
	DataBytes = 512
	// HeaderBytes frames each sector: 8-byte PBA, 1 flag byte, 3
	// reserved, 4-byte CRC-32 of the payload.
	HeaderBytes = 16
	// RSWays is the Reed-Solomon interleave factor.
	RSWays = 4
	// RSParityPerWay is the parity bytes per RS lane; 4 lanes × 16 =
	// 64 parity bytes, correcting up to 8 byte errors per lane.
	RSParityPerWay = 16
	// ParityBytes is the total RS parity per sector.
	ParityBytes = RSWays * RSParityPerWay
	// PhysicalBytes is the full on-medium sector frame size.
	PhysicalBytes = DataBytes + HeaderBytes + ParityBytes
	// DotsPerBlock is the number of magnetic dots one block occupies
	// (one dot per bit).
	DotsPerBlock = PhysicalBytes * 8
	// DataRegionDots is the number of dots holding the 512-byte
	// payload region — the region reused for Manchester-encoded heated
	// data in block 0 of a line (Fig 3's 4096 bits).
	DataRegionDots = DataBytes * 8
)

// Sector flag bits carried in the header.
const (
	// FlagData marks an ordinary data sector.
	FlagData byte = 0x00
)

// Frame assembles the physical byte image of a sector: header ‖ data ‖
// RS parity.
type Frame struct {
	PBA   uint64
	Flags byte
	Data  [DataBytes]byte
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// codec is the shared interleaved RS codec; it is stateless after
// construction.
var codec = ecc.NewInterleaved(RSParityPerWay, RSWays)

// Marshal produces the PhysicalBytes on-medium image of the frame.
func (f *Frame) Marshal() []byte {
	buf := make([]byte, HeaderBytes+DataBytes)
	binary.BigEndian.PutUint64(buf[0:8], f.PBA)
	buf[8] = f.Flags
	// buf[9:12] reserved
	binary.BigEndian.PutUint32(buf[12:16], crc32.Checksum(f.Data[:], crcTable))
	copy(buf[HeaderBytes:], f.Data[:])
	return codec.Encode(buf)
}

// Unmarshal errors.
var (
	// ErrUncorrectable reports RS decode failure: the sector is
	// unreadable magnetically. The caller must probe electrically
	// before concluding the block is bad (it may be heated).
	ErrUncorrectable = errors.New("device: sector uncorrectable")
	// ErrChecksum reports an RS-clean frame whose payload CRC fails —
	// silent corruption beyond the code's guarantee.
	ErrChecksum = errors.New("device: sector checksum mismatch")
	// ErrMisplaced reports a frame whose header PBA does not match the
	// address it was read from (misdirected write, or a copy-mask
	// attack §5.2).
	ErrMisplaced = errors.New("device: sector header PBA mismatch")
)

// UnmarshalFrame decodes a physical sector image read from expectedPBA.
// It corrects up to the RS capability, validates the CRC and the header
// address, and returns the frame plus the number of corrected bytes.
func UnmarshalFrame(img []byte, expectedPBA uint64) (Frame, int, error) {
	if len(img) != PhysicalBytes {
		return Frame{}, 0, fmt.Errorf("device: frame image %d bytes, want %d", len(img), PhysicalBytes)
	}
	buf := append([]byte(nil), img...)
	fixed, corrected, err := codec.Decode(buf, HeaderBytes+DataBytes)
	if err != nil {
		return Frame{}, 0, ErrUncorrectable
	}
	var f Frame
	f.PBA = binary.BigEndian.Uint64(fixed[0:8])
	f.Flags = fixed[8]
	wantCRC := binary.BigEndian.Uint32(fixed[12:16])
	copy(f.Data[:], fixed[HeaderBytes:])
	if crc32.Checksum(f.Data[:], crcTable) != wantCRC {
		return Frame{}, corrected, ErrChecksum
	}
	if f.PBA != expectedPBA {
		return f, corrected, ErrMisplaced
	}
	return f, corrected, nil
}

// ForgedFrameBits builds the per-dot bit image of a fully valid sector
// frame for the given address and payload. It exists for the §5
// security analysis: a powerful attacker with raw medium access can
// write consistent frames (correct CRC, correct parity, any header
// address) — the tamper evidence must come from the heated hashes, not
// from the framing. Production code never calls this.
func ForgedFrameBits(pba uint64, data []byte) []bool {
	var f Frame
	f.PBA = pba
	copy(f.Data[:], data)
	return bytesToBits(f.Marshal())
}

// bytesToBits expands b into per-bit booleans, MSB-first.
func bytesToBits(b []byte) []bool {
	out := make([]bool, len(b)*8)
	for i, by := range b {
		for bit := 0; bit < 8; bit++ {
			out[i*8+bit] = by&(1<<(7-bit)) != 0
		}
	}
	return out
}

// bitsToBytes packs per-bit booleans (MSB-first) into bytes; len(bits)
// must be a multiple of 8.
func bitsToBytes(bits []bool) []byte {
	if len(bits)%8 != 0 {
		panic("device: bit count not a multiple of 8")
	}
	out := make([]byte, len(bits)/8)
	for i, bit := range bits {
		if bit {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}
