package device

import (
	"time"

	"sero/internal/sim"
	"sero/internal/trace"
)

// Dev is the block-device contract the upper layers (core, lfs, serve)
// program against. *Device implements it directly; internal/array's
// Array implements it over N member devices with cross-device parity.
// The contract is exactly the surface the single-device code already
// used — introducing the interface changes no behaviour, it only
// names the boundary so a striped composite can slot in underneath
// without the upper layers knowing.
//
// Address space: all PBAs are in the implementation's own block space
// (a composite translates to member-local addresses internally, and
// translates member-local addresses back in everything it returns:
// LineInfo starts, VerifyReport read errors, observer callbacks).
//
// Virtual-time contract: Clock() is the implementation's shared
// foreground clock. A composite keeps one clock per member and raises
// the shared clock to the slowest member after each operation
// (sim.Clock.AdvanceTo), so fanned work across members overlaps
// exactly like worker planes overlap inside one device.
type Dev interface {
	// Geometry and shared state.
	Blocks() int
	Clock() *sim.Clock
	Concurrency() int
	SetConcurrency(k int)
	Stats() OpStats
	ResetStats()

	// Observability.
	Tracer() *trace.Tracer
	SetTracer(t *trace.Tracer)
	SetWriteObserver(fn WriteObserver)
	SetReadObserver(fn ReadObserver)

	// Magnetic block I/O.
	MRS(pba uint64) ([]byte, error)
	MRSTraced(task *trace.Task, pba uint64) ([]byte, error)
	WriteBlocks(start uint64, blocks [][]byte) error
	WriteBlocksTraced(task *trace.Task, start uint64, blocks [][]byte) error
	WriteRunsFanned(runs []WriteRun, workers int) []error
	WriteRunsFannedTraced(task *trace.Task, runs []WriteRun, workers int) []error
	ReadBlocksFanned(pbas []uint64, workers int) ([][]byte, []error)
	MoveGroups(groups [][]BlockMove, workers int) []MoveResult

	// Lines: batched write, heat, verify, registry, recovery scan.
	WriteLineBatch(start uint64, logN uint8, blocks [][]byte) error
	HeatLine(start uint64, logN uint8) (LineInfo, error)
	VerifyLine(start uint64) (VerifyReport, error)
	VerifyLineOffClock(start uint64) (VerifyReport, time.Duration, error)
	VerifyLines(starts []uint64, workers int) []VerifyOutcome
	Lines() []LineInfo
	Scan() (recovered []LineInfo, unparseable []uint64, err error)

	// Destruction and persistence.
	ShredLine(start uint64) (ShredReport, error)
	SaveImage() []byte
}

// Compile-time check: the raw device satisfies the contract.
var _ Dev = (*Device)(nil)
