package device

import (
	"fmt"
	"sync"

	"sero/internal/trace"
)

// Batched write-path operations: the write-side counterpart of the
// fanned-out verification engine. WriteBlocks (device.go) commits a
// contiguous run as one command; WriteLineBatch specialises that to a
// future heated line; MoveGroups is the cleaner's engine, relocating
// groups of blocks on concurrent worker planes with the same
// slowest-worker virtual-time contract as VerifyLines.

// WriteLineBatch writes the member blocks of a future heated line in
// one batched command: blocks[i] lands at start+1+i and the slack up
// to the end of the 2^logN line is zero-filled, leaving block 0 free
// for the heat record. HeatLine can then freeze the line without any
// further magnetic writes.
func (d *Device) WriteLineBatch(start uint64, logN uint8, blocks [][]byte) error {
	if logN < 1 || logN > 20 {
		return fmt.Errorf("%w: logN=%d", ErrBadLine, logN)
	}
	n := uint64(1) << logN
	if start%n != 0 {
		return fmt.Errorf("%w: start %d not aligned to %d", ErrBadLine, start, n)
	}
	if uint64(len(blocks)) > n-1 {
		return fmt.Errorf("%w: %d blocks exceed line capacity %d",
			ErrBadLine, len(blocks), n-1)
	}
	run := make([][]byte, 0, n-1)
	zero := make([]byte, DataBytes)
	for i := uint64(0); i < n-1; i++ {
		if int(i) < len(blocks) {
			run = append(run, blocks[i])
		} else {
			run = append(run, zero)
		}
	}
	return d.WriteBlocks(start+1, run)
}

// BlockMove relocates the payload of one block to another address.
type BlockMove struct {
	Src, Dst uint64
}

// MoveResult reports one group's outcome. Moves complete in whole
// destination-run chunks; Completed is the number of leading moves
// whose payload is on the medium at Dst (len(group) when Err is nil).
type MoveResult struct {
	Completed int
	Err       error
}

// MoveGroups executes groups of block moves with a pool of workers —
// the cleaner's fan-out engine. Worker w handles groups w, w+workers,
// … on a private latency plane (static partition, like VerifyLines),
// and when the pool drains the device clock advances by the *maximum*
// per-worker elapsed virtual time: a fanned-out cleaning pass costs
// its slowest worker, not the sum. The data placement is entirely the
// caller's (every Dst is preassigned), so the post-move medium layout
// is identical for any worker count; only the virtual time changes.
//
// Within a group, moves whose destinations are consecutive are
// committed as one batched write command (one settle per contiguous
// run); sources are read under their stripe locks, destinations
// written under theirs, and the two lock sets are never held together,
// so concurrent groups cannot deadlock. workers <= 0 means the
// device's configured Concurrency.
//
// MoveGroups is safe to run concurrently with foreground device I/O
// to unrelated blocks — the lfs cleaner relies on this, running its
// copy phase with the file-system lock released: its sources sit in
// retired segments nothing writes to, its destinations in reserved
// slots nothing else addresses, and any foreground traffic touching
// other blocks interleaves under the ordinary stripe-lock rules.
func (d *Device) MoveGroups(groups [][]BlockMove, workers int) []MoveResult {
	out := make([]MoveResult, len(groups))
	if len(groups) == 0 {
		return out
	}
	if workers <= 0 {
		workers = d.Concurrency()
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	planes := make([]*plane, workers)
	var wg sync.WaitGroup
	fanBase := int64(d.clock.Now())
	for w := 0; w < workers; w++ {
		pl := d.newPlane(int32(w+1), fanBase)
		planes[w] = pl
		wg.Add(1)
		go func(w int, pl *plane) {
			defer wg.Done()
			for g := w; g < len(groups); g += workers {
				out[g] = d.moveGroupOn(pl, groups[g])
			}
		}(w, pl)
	}
	wg.Wait()
	d.drainPlanes(planes, nil, "move-fanout")
	return out
}

// moveGroupOn relocates one group of moves on the given plane. Caller
// holds the gate read lock.
func (d *Device) moveGroupOn(pl *plane, moves []BlockMove) MoveResult {
	for i := 0; i < len(moves); {
		// Chunk: maximal run of consecutive destinations.
		j := i + 1
		for j < len(moves) && moves[j].Dst == moves[j-1].Dst+1 {
			j++
		}
		chunk := moves[i:j]
		bufs, err := d.readMoveSources(pl, chunk)
		if err != nil {
			return MoveResult{Completed: i, Err: err}
		}
		dst := chunk[0].Dst
		if err := d.writeMoveRun(pl, dst, bufs); err != nil {
			return MoveResult{Completed: i, Err: err}
		}
		i = j
	}
	return MoveResult{Completed: len(moves)}
}

// readMoveSources reads the source blocks of one chunk, batching
// consecutive sources under one range lock.
func (d *Device) readMoveSources(pl *plane, chunk []BlockMove) ([][]byte, error) {
	bufs := make([][]byte, len(chunk))
	for i := 0; i < len(chunk); {
		j := i + 1
		for j < len(chunk) && chunk[j].Src == chunk[j-1].Src+1 {
			j++
		}
		start, end := chunk[i].Src, chunk[j-1].Src+1
		if err := d.checkPBA(end - 1); err != nil {
			return nil, err
		}
		locked := d.lockRange(start, end)
		for k := i; k < j; k++ {
			src := chunk[k].Src
			err := d.magReadCheck(src)
			if err == nil {
				bufs[k] = make([]byte, DataBytes)
				_, err = d.mrsInto(pl, src, bufs[k])
			}
			if err != nil {
				d.unlockRange(locked)
				return nil, fmt.Errorf("device: move read of block %d: %w", src, err)
			}
		}
		d.unlockRange(locked)
		i = j
	}
	return bufs, nil
}

// writeMoveRun commits one contiguous destination run as a single
// batched write command under its stripe locks.
func (d *Device) writeMoveRun(pl *plane, start uint64, bufs [][]byte) error {
	end := start + uint64(len(bufs))
	if err := d.checkPBA(end - 1); err != nil {
		return err
	}
	locked := d.lockRange(start, end)
	defer d.unlockRange(locked)
	for pba := start; pba < end; pba++ {
		if err := d.magWriteCheck(pba); err != nil {
			return fmt.Errorf("device: move write of block %d: %w", pba, err)
		}
	}
	d.writeRunOn(pl, start, bufs)
	return nil
}

// WriteRun is one contiguous batched write command: Blocks land at
// Start, Start+1, …, exactly as WriteBlocks would commit them — the
// stripe locks covering the run taken once, seek and settle charged
// once, frames streamed.
type WriteRun struct {
	// Start is the first destination block of the run.
	Start uint64
	// Blocks are the 512-byte payloads, one per consecutive block.
	Blocks [][]byte
}

// WriteRunsFanned commits independent contiguous write runs on a pool
// of worker planes — the foreground write path's fan-out engine, used
// by the lfs Sync path to flush per-affinity-class group-commit
// buffers in one pass. Worker w handles runs w, w+workers, … on a
// private latency plane (static partition, like MoveGroups), and when
// the pool drains the device clock advances by the *maximum*
// per-worker elapsed virtual time: a fanned-out flush costs its
// slowest worker, not the sum. Every run's destination is the
// caller's (preassigned frontiers), so the post-flush medium layout is
// identical for any worker count; only the virtual time changes.
//
// Each run carries WriteBlocks' exact per-run contract: every payload
// and target block is checked before the first bit of that run is
// written, so a refused run writes nothing (errs[i] reports run i's
// outcome; other runs proceed). Callers must present runs with
// disjoint block ranges — they are committed concurrently under their
// own stripe locks with no cross-run ordering. workers <= 0 means the
// device's configured Concurrency.
func (d *Device) WriteRunsFanned(runs []WriteRun, workers int) []error {
	return d.WriteRunsFannedTraced(nil, runs, workers)
}

// WriteRunsFannedTraced is WriteRunsFanned with the pass's cost — the
// slowest worker's elapsed virtual time, exactly the shared-clock
// advance — attributed to task (nil behaves exactly like
// WriteRunsFanned). The traced lfs Sync path uses it so a sync op's
// own device time includes its fanned flush.
func (d *Device) WriteRunsFannedTraced(task *trace.Task, runs []WriteRun, workers int) []error {
	errs := make([]error, len(runs))
	if len(runs) == 0 {
		return errs
	}
	if workers <= 0 {
		workers = d.Concurrency()
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	planes := make([]*plane, workers)
	var wg sync.WaitGroup
	fanBase := int64(d.clock.Now())
	for w := 0; w < workers; w++ {
		pl := d.newPlane(int32(w+1), fanBase)
		planes[w] = pl
		wg.Add(1)
		go func(w int, pl *plane) {
			defer wg.Done()
			for g := w; g < len(runs); g += workers {
				errs[g] = d.writeRunChecked(pl, runs[g])
			}
		}(w, pl)
	}
	wg.Wait()
	d.drainPlanes(planes, task, "write-fanout")
	return errs
}

// writeRunChecked validates and commits one run on the given plane,
// mirroring WriteBlocks' checks block for block. Caller holds the gate
// read lock.
func (d *Device) writeRunChecked(pl *plane, r WriteRun) error {
	if len(r.Blocks) == 0 {
		return nil
	}
	for i, b := range r.Blocks {
		if len(b) != DataBytes {
			return fmt.Errorf("device: WriteRunsFanned payload %d bytes at block %d, want %d",
				len(b), i, DataBytes)
		}
	}
	n := uint64(len(r.Blocks))
	if err := d.checkPBA(r.Start); err != nil {
		return err
	}
	if r.Start+n > uint64(d.p.Blocks) {
		return fmt.Errorf("%w: [%d,%d) beyond %d blocks",
			ErrOutOfRange, r.Start, r.Start+n, d.p.Blocks)
	}
	locked := d.lockRange(r.Start, r.Start+n)
	defer d.unlockRange(locked)
	for pba := r.Start; pba < r.Start+n; pba++ {
		if err := d.magWriteCheck(pba); err != nil {
			return err
		}
	}
	d.writeRunOn(pl, r.Start, r.Blocks)
	return nil
}

// ReadBlocksFanned magnetically reads an arbitrary set of blocks on a
// pool of worker planes — the mount-time inode walk's engine. The
// input is split into contiguous index ranges, one per worker (a
// static partition, like VerifyLines, so virtual time is a function of
// the workload alone, never of host scheduling) — contiguous rather
// than round-robin because seek cost scales with travel distance: a
// caller that presents an address-sorted run keeps every worker's
// seeks inside its own 1/workers-th of the span, where a strided split
// would march every worker across the whole of it. When the pool
// drains the device clock advances by the *maximum* per-worker elapsed
// virtual time: a fanned-out walk costs its slowest worker, not the
// sum. Results are assembled in input order for any worker count; a
// block that cannot be read yields a nil buffer and its error in the
// matching errs slot (other reads proceed — the caller decides whether
// a failure is fatal). workers <= 0 means the device's configured
// Concurrency.
func (d *Device) ReadBlocksFanned(pbas []uint64, workers int) (bufs [][]byte, errs []error) {
	bufs = make([][]byte, len(pbas))
	errs = make([]error, len(pbas))
	if len(pbas) == 0 {
		return bufs, errs
	}
	if workers <= 0 {
		workers = d.Concurrency()
	}
	if workers > len(pbas) {
		workers = len(pbas)
	}
	per := (len(pbas) + workers - 1) / workers
	d.gate.RLock()
	defer d.gate.RUnlock()
	planes := make([]*plane, 0, workers)
	var wg sync.WaitGroup
	fanBase := int64(d.clock.Now())
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(pbas) {
			hi = len(pbas)
		}
		if lo >= hi {
			break
		}
		pl := d.newPlane(int32(len(planes)+1), fanBase)
		planes = append(planes, pl)
		wg.Add(1)
		go func(lo, hi int, pl *plane) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				bufs[i], errs[i] = d.readBlockOn(pl, pbas[i])
			}
		}(lo, hi, pl)
	}
	wg.Wait()
	d.drainPlanes(planes, nil, "read-fanout")
	return bufs, errs
}

// readBlockOn reads one block on the given plane under its stripe
// lock, mirroring MRS's checks. Caller holds the gate read lock.
func (d *Device) readBlockOn(pl *plane, pba uint64) ([]byte, error) {
	if err := d.checkPBA(pba); err != nil {
		return nil, err
	}
	locked := d.lockBlock(pba)
	defer d.unlockBlock(locked)
	if err := d.magReadCheck(pba); err != nil {
		return nil, err
	}
	buf := make([]byte, DataBytes)
	if _, err := d.mrsInto(pl, pba, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
