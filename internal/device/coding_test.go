package device

import (
	"bytes"
	"testing"

	"sero/internal/medium"
)

// womDevice builds a quiet device using the WOM record coding.
func womDevice(t testing.TB, blocks int) *Device {
	t.Helper()
	p := DefaultParams(blocks)
	p.Coding = CodingWOM
	mp := medium.DefaultParams(blocks, DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	p.Medium = mp
	return New(p)
}

func TestCodingStrings(t *testing.T) {
	if CodingManchester.String() != "manchester" || CodingWOM.String() != "wom" {
		t.Fatal("coding names")
	}
}

func TestWOMEWSERSRoundTrip(t *testing.T) {
	d := womDevice(t, 4)
	payload := []byte("write-once, rivest-shamir coded")
	if err := d.EWS(1, payload); err != nil {
		t.Fatal(err)
	}
	rep, err := d.ERS(1, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || !bytes.Equal(rep.Payload, payload) {
		t.Fatalf("WOM round trip: %+v", rep)
	}
}

func TestWOMUsesFewerDots(t *testing.T) {
	dm := testDevice(t, 4)
	dw := womDevice(t, 4)
	payload := make([]byte, HeatRecordBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := dm.EWS(0, payload); err != nil {
		t.Fatal(err)
	}
	if err := dw.EWS(0, payload); err != nil {
		t.Fatal(err)
	}
	hm := dm.Medium().HeatedCount()
	hw := dw.Medium().HeatedCount()
	if hw >= hm {
		t.Fatalf("WOM heated %d dots, Manchester %d — no saving", hw, hm)
	}
	// Footprint: Manchester 16 dots/byte vs WOM 12.
	if got := dw.codingDots(HeatRecordBytes); got != HeatRecordBytes*12 {
		t.Fatalf("WOM footprint %d", got)
	}
}

func TestWOMHeatLineAndVerify(t *testing.T) {
	d := womDevice(t, 8)
	for pba := uint64(0); pba < 8; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 3); err != nil {
		t.Fatal(err)
	}
	rep, err := d.VerifyLine(0)
	if err != nil || !rep.OK {
		t.Fatalf("WOM line verify: %+v %v", rep, err)
	}
}

func TestWOMTamperDetectedByHashNotCells(t *testing.T) {
	// The §8 trade-off: heating extra dots of a WOM record never
	// produces an invalid cell, but the record parse/hash still
	// catches the tamper.
	d := womDevice(t, 4)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	// Heat a burst of record dots (this corrupts decoded values but
	// every pattern remains a valid codeword).
	base := 0*DotsPerBlock + headerDotOffset()
	for i := 24; i < 48; i++ {
		d.Medium().EWB(base + i)
	}
	rep, err := d.VerifyLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("WOM record tamper not detected at all")
	}
	if rep.TamperedCells != 0 {
		t.Fatalf("WOM coding reported %d HH cells — it has no invalid cells", rep.TamperedCells)
	}
	if !rep.RecordDamaged && !rep.HashMismatch {
		t.Fatalf("detection path: %+v", rep)
	}
}

func TestWOMDataTamperDetected(t *testing.T) {
	d := womDevice(t, 4)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	bits := ForgedFrameBits(2, pattern(0xCC))
	base := 2 * DotsPerBlock
	for i, b := range bits {
		d.Medium().MWB(base+i, b)
	}
	rep, err := d.VerifyLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || !rep.HashMismatch {
		t.Fatalf("forged data on WOM device: %+v", rep)
	}
}

func TestWOMScanRecovers(t *testing.T) {
	d := womDevice(t, 16)
	for pba := uint64(0); pba < 16; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	want, err := d.HeatLine(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	recovered, unparseable, err := d.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(unparseable) != 0 || len(recovered) != 1 {
		t.Fatalf("scan: %v / %v", recovered, unparseable)
	}
	if recovered[0].Record.Hash != want.Record.Hash {
		t.Fatal("hash lost in WOM scan")
	}
}

func TestWOMNoisyRoundTrip(t *testing.T) {
	p := DefaultParams(8)
	p.Coding = CodingWOM
	mp := medium.DefaultParams(8, DotsPerBlock)
	mp.Seed = 5
	p.Medium = mp
	d := New(p)
	for pba := uint64(0); pba < 4; pba++ {
		if err := d.MWS(pba, pattern(byte(pba))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.HeatLine(0, 2); err != nil {
		t.Fatal(err)
	}
	rep, err := d.VerifyLine(0)
	if err != nil || !rep.OK {
		t.Fatalf("noisy WOM verify: %+v %v", rep, err)
	}
}
