package medium

import (
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	p := DefaultParams(4, 64)
	m := New(p)
	for i := 0; i < m.Dots(); i += 3 {
		m.MWB(i, i%2 == 0)
	}
	m.EWB(7)
	m.EWB(100)
	m.SetStuck(12, StuckDead)
	for i := 0; i < 5; i++ {
		m.MWB(50, true)
	}

	got, err := RestoreSnapshot(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got.Params() != p {
		t.Fatalf("params %+v != %+v", got.Params(), p)
	}
	for i := 0; i < m.Dots(); i++ {
		if got.State(i) != m.State(i) {
			t.Fatalf("dot %d state %v != %v", i, got.State(i), m.State(i))
		}
	}
	if got.Stuck(12) != StuckDead {
		t.Fatal("defect lost")
	}
	if got.WearWrites(50) != m.WearWrites(50) {
		t.Fatal("wear lost")
	}
	if got.HeatedCount() != 2 {
		t.Fatalf("heated count %d", got.HeatedCount())
	}
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := New(quiet(2, 32))
		for _, op := range ops {
			dot := int(op) % m.Dots()
			switch op % 3 {
			case 0:
				m.MWB(dot, op%5 == 0)
			case 1:
				m.EWB(dot)
			case 2:
				m.SetStuck(dot, StuckKind(op%4))
			}
		}
		got, err := RestoreSnapshot(m.Snapshot())
		if err != nil {
			return false
		}
		for i := 0; i < m.Dots(); i++ {
			if got.State(i) != m.State(i) || got.Stuck(i) != m.Stuck(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreSnapshotRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("x"),
		[]byte("SMEDxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
	}
	for i, c := range cases {
		if _, err := RestoreSnapshot(c); err == nil {
			t.Errorf("case %d: garbage restored", i)
		}
	}
	// Truncated valid snapshot.
	m := New(quiet(2, 8))
	snap := m.Snapshot()
	if _, err := RestoreSnapshot(snap[:len(snap)-3]); err == nil {
		t.Fatal("truncated snapshot restored")
	}
	// Wrong version.
	snap2 := m.Snapshot()
	snap2[4] = 99
	if _, err := RestoreSnapshot(snap2); err == nil {
		t.Fatal("wrong version restored")
	}
}
