package medium

import "testing"

func BenchmarkMRB(b *testing.B) {
	m := New(DefaultParams(1, 1024))
	for i := 0; i < 1024; i++ {
		m.MWB(i, i%2 == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MRB(i % 1024)
	}
}

func BenchmarkMWB(b *testing.B) {
	m := New(DefaultParams(1, 1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MWB(i%1024, i%2 == 0)
	}
}

func BenchmarkERBHealthy(b *testing.B) {
	m := New(DefaultParams(1, 1024))
	for i := 0; i < 1024; i++ {
		m.MWB(i, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.ERB(i % 1024) {
			b.Fatal("false positive")
		}
	}
}

func BenchmarkEWB(b *testing.B) {
	m := New(DefaultParams(4, 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EWB(i % m.Dots())
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	m := New(DefaultParams(64, 1024))
	for i := 0; i < 4096; i++ {
		m.MWB(i, i%3 == 0)
	}
	snap := m.Snapshot()
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RestoreSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}
