package medium

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Medium state persistence. A snapshot captures the full physical
// state of every dot (magnetisation, heat damage, defects, wear) so a
// simulated medium can be saved to a file and reattached later —
// including by a different host that then has to rediscover the heated
// lines with a scan, exactly the §5.2 recovery scenario.

const (
	snapMagic   = "SMED"
	snapVersion = 2
)

// ErrBadSnapshot reports an unparseable snapshot.
var ErrBadSnapshot = errors.New("medium: bad snapshot")

// Snapshot serialises the complete medium state.
func (m *Medium) Snapshot() []byte {
	var buf []byte
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.p.Rows))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.p.Cols))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.p.PitchNM))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.p.SignalAmplitude))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.p.ReadNoiseSigma))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.p.ResidualInPlaneSignal))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.p.ThermalCrosstalk))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.p.PulseTempC))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.p.PulseSeconds))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.p.NeighborTempFactor))
	buf = binary.BigEndian.AppendUint64(buf, m.p.Seed)
	for i := range m.dots {
		d := &m.dots[i]
		var flags byte
		if d.up {
			flags |= 1
		}
		if d.inPlaneSign > 0 {
			flags |= 4
		}
		flags |= byte(d.stuck) << 3
		buf = append(buf, flags)
		// damage quantised to 1/255 — well below the heated threshold's
		// granularity needs.
		buf = append(buf, byte(float64(d.damage)*255+0.5))
		buf = binary.BigEndian.AppendUint32(buf, d.wearWrites)
	}
	return buf
}

// RestoreSnapshot reconstructs a medium from a snapshot produced by
// Snapshot.
func RestoreSnapshot(buf []byte) (*Medium, error) {
	const header = 4 + 1 + 4 + 4 + 9*8
	if len(buf) < header || string(buf[0:4]) != snapMagic {
		return nil, fmt.Errorf("%w: header", ErrBadSnapshot)
	}
	if buf[4] != snapVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadSnapshot, buf[4])
	}
	off := 5
	rows := int(binary.BigEndian.Uint32(buf[off:]))
	cols := int(binary.BigEndian.Uint32(buf[off+4:]))
	off += 8
	readF := func() float64 {
		v := math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		return v
	}
	p := Params{Rows: rows, Cols: cols}
	p.PitchNM = readF()
	p.SignalAmplitude = readF()
	p.ReadNoiseSigma = readF()
	p.ResidualInPlaneSignal = readF()
	p.ThermalCrosstalk = readF()
	p.PulseTempC = readF()
	p.PulseSeconds = readF()
	p.NeighborTempFactor = readF()
	p.Seed = binary.BigEndian.Uint64(buf[off:])
	off += 8

	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: geometry %dx%d", ErrBadSnapshot, rows, cols)
	}
	// Size arithmetic in uint64: rows and cols are attacker-controlled
	// 32-bit values, and rows*cols*6 can overflow on its way to
	// matching a short buffer. The product of two uint32s fits uint64
	// exactly, so cap it *before* the ×6 (which can wrap): 2^40 dots
	// is orders of magnitude beyond any simulatable medium.
	dots := uint64(rows) * uint64(cols)
	const maxSnapshotDots = 1 << 40
	if dots > maxSnapshotDots {
		return nil, fmt.Errorf("%w: %d dots", ErrBadSnapshot, dots)
	}
	need := uint64(off) + dots*6
	if uint64(len(buf)) != need {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrBadSnapshot, len(buf), need)
	}
	// Physical parameters must be usable, not merely parseable: New and
	// the probe-array model treat bad values as programming errors and
	// panic, but a snapshot is untrusted input and must fail softly.
	for _, v := range []float64{p.PitchNM, p.SignalAmplitude, p.ReadNoiseSigma,
		p.ResidualInPlaneSignal, p.ThermalCrosstalk, p.PulseTempC,
		p.PulseSeconds, p.NeighborTempFactor} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite parameter", ErrBadSnapshot)
		}
	}
	if p.SignalAmplitude <= 0 {
		return nil, fmt.Errorf("%w: signal amplitude %g", ErrBadSnapshot, p.SignalAmplitude)
	}
	// Pitch outside [0.1 nm, 100 µm] is unphysical, and extreme values
	// overflow the probe-array capacity arithmetic downstream.
	if p.PitchNM < 0.1 || p.PitchNM > 1e5 {
		return nil, fmt.Errorf("%w: pitch %g nm", ErrBadSnapshot, p.PitchNM)
	}
	if p.ReadNoiseSigma < 0 || p.ResidualInPlaneSignal < 0 || p.ThermalCrosstalk < 0 ||
		p.PulseSeconds < 0 || p.NeighborTempFactor < 0 {
		return nil, fmt.Errorf("%w: negative physical parameter", ErrBadSnapshot)
	}
	m := New(p)
	for i := range m.dots {
		flags := buf[off]
		d := &m.dots[i]
		d.up = flags&1 != 0
		d.damage = float32(buf[off+1]) / 255
		if flags&4 != 0 {
			d.inPlaneSign = 1
		} else if d.heated() {
			d.inPlaneSign = -1
		}
		d.stuck = StuckKind(flags >> 3 & 3)
		d.wearWrites = binary.BigEndian.Uint32(buf[off+2:])
		off += 6
	}
	return m, nil
}
