package medium

import "fmt"

// Fault injection. Real patterned media have defective dots (missing,
// merged, or pinned); the device layer's ECC and bad-block handling
// must cope, and crucially must distinguish a *bad* block from a
// *heated* one (§3 "a heated block should not be misinterpreted as a
// bad block"). Tests drive these hooks.

// StuckKind describes a dot defect.
type StuckKind int8

// Defect kinds.
const (
	// StuckNone marks a healthy dot.
	StuckNone StuckKind = iota
	// StuckUp pins the read signal at +amplitude regardless of writes.
	StuckUp
	// StuckDown pins the read signal at -amplitude.
	StuckDown
	// StuckDead makes the dot produce no signal at all (missing dot),
	// indistinguishable from a heated dot at read time — the hard case
	// for bad-block discrimination.
	StuckDead
)

// SetStuck injects a defect into dot i. Passing StuckNone clears it.
func (m *Medium) SetStuck(i int, k StuckKind) {
	switch k {
	case StuckNone, StuckUp, StuckDown, StuckDead:
	default:
		panic(fmt.Sprintf("medium: unknown stuck kind %d", int(k)))
	}
	m.at(i).stuck = k
}

// Stuck returns the defect status of dot i.
func (m *Medium) Stuck(i int) StuckKind { return m.at(i).stuck }

// CorruptMagnetic flips the magnetisation of dot i directly, bypassing
// the write path. Models media decay or an attacker with a raw write
// head. No effect on heated dots (nothing to flip).
func (m *Medium) CorruptMagnetic(i int) {
	d := m.at(i)
	if !d.heated() {
		d.up = !d.up
	}
}

// ReplaceRegion swaps factory-fresh dots into [lo, hi): pristine
// magnetisation, no damage, no defects, zero wear. This is the
// physical substrate of sled repair — patterned media are manufactured
// as regular matrices, so a service action can splice in a spare
// region (or a whole spare sled) where dots were destroyed. Heating is
// still irreversible on any given dot; replacement swaps the dots
// themselves, which is exactly as loud as the paper's threat model
// demands (the old region's evidence is gone *with the old dots*, so
// honest repair must re-establish the heat records on the new region,
// and does — see the device's ReplaceLine).
func (m *Medium) ReplaceRegion(lo, hi int) {
	if lo < 0 || hi > len(m.dots) || lo > hi {
		panic(fmt.Sprintf("medium: replace region [%d,%d) outside %d dots", lo, hi, len(m.dots)))
	}
	for i := lo; i < hi; i++ {
		m.dots[i] = dot{}
	}
}
