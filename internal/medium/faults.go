package medium

import "fmt"

// Fault injection. Real patterned media have defective dots (missing,
// merged, or pinned); the device layer's ECC and bad-block handling
// must cope, and crucially must distinguish a *bad* block from a
// *heated* one (§3 "a heated block should not be misinterpreted as a
// bad block"). Tests drive these hooks.

// StuckKind describes a dot defect.
type StuckKind int8

// Defect kinds.
const (
	// StuckNone marks a healthy dot.
	StuckNone StuckKind = iota
	// StuckUp pins the read signal at +amplitude regardless of writes.
	StuckUp
	// StuckDown pins the read signal at -amplitude.
	StuckDown
	// StuckDead makes the dot produce no signal at all (missing dot),
	// indistinguishable from a heated dot at read time — the hard case
	// for bad-block discrimination.
	StuckDead
)

// SetStuck injects a defect into dot i. Passing StuckNone clears it.
func (m *Medium) SetStuck(i int, k StuckKind) {
	switch k {
	case StuckNone, StuckUp, StuckDown, StuckDead:
	default:
		panic(fmt.Sprintf("medium: unknown stuck kind %d", int(k)))
	}
	m.at(i).stuck = k
}

// Stuck returns the defect status of dot i.
func (m *Medium) Stuck(i int) StuckKind { return m.at(i).stuck }

// CorruptMagnetic flips the magnetisation of dot i directly, bypassing
// the write path. Models media decay or an attacker with a raw write
// head. No effect on heated dots (nothing to flip).
func (m *Medium) CorruptMagnetic(i int) {
	d := m.at(i)
	if !d.heated() {
		d.up = !d.up
	}
}
