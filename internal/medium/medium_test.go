package medium

import (
	"testing"
	"testing/quick"
)

func quiet(rows, cols int) Params {
	p := DefaultParams(rows, cols)
	p.ReadNoiseSigma = 0
	p.ResidualInPlaneSignal = 0
	p.ThermalCrosstalk = 0
	return p
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := New(quiet(4, 64))
	for i := 0; i < m.Dots(); i++ {
		bit := i%3 == 0
		m.MWB(i, bit)
		if got := m.MRB(i); got != bit {
			t.Fatalf("dot %d: wrote %v read %v", i, bit, got)
		}
	}
}

func TestRewriteManyTimes(t *testing.T) {
	// WMRM property: dots can be rewritten indefinitely before
	// heating.
	m := New(quiet(1, 8))
	for round := 0; round < 100; round++ {
		bit := round%2 == 0
		m.MWB(3, bit)
		if m.MRB(3) != bit {
			t.Fatalf("round %d lost data", round)
		}
	}
}

func TestStateMachineFig2(t *testing.T) {
	// Exhaustive check of the Fig 2 transitions.
	m := New(quiet(1, 4))

	// 0 --mwb 1--> 1
	m.MWB(0, false)
	if m.State(0) != Dot0 {
		t.Fatal("initial 0")
	}
	m.MWB(0, true)
	if m.State(0) != Dot1 {
		t.Fatal("0 -> 1")
	}
	// 1 --mwb 0--> 0
	m.MWB(0, false)
	if m.State(0) != Dot0 {
		t.Fatal("1 -> 0")
	}
	// self loops
	m.MWB(0, false)
	if m.State(0) != Dot0 {
		t.Fatal("0 -> 0")
	}
	m.MWB(0, true)
	m.MWB(0, true)
	if m.State(0) != Dot1 {
		t.Fatal("1 -> 1")
	}

	// 0 --ewb--> H and 1 --ewb--> H
	m.MWB(1, false)
	m.EWB(1)
	if m.State(1) != DotH {
		t.Fatal("0 -> H")
	}
	m.MWB(2, true)
	m.EWB(2)
	if m.State(2) != DotH {
		t.Fatal("1 -> H")
	}

	// H --ewb--> H (self loop)
	m.EWB(1)
	if m.State(1) != DotH {
		t.Fatal("H -> H under ewb")
	}
	// H --mwb--> H (one-way: no return to 0/1)
	m.MWB(1, true)
	m.MWB(1, false)
	if m.State(1) != DotH {
		t.Fatal("H must absorb mwb")
	}
}

func TestHeatedDotLosesSignal(t *testing.T) {
	// Fig 1: the read peak of a destroyed dot disappears.
	p := quiet(1, 2)
	m := New(p)
	m.MWB(0, true)
	if sig := m.MRBAnalog(0); sig < 0.9*p.SignalAmplitude {
		t.Fatalf("healthy dot signal %g", sig)
	}
	m.EWB(0)
	if sig := m.MRBAnalog(0); sig > 0.1*p.SignalAmplitude || sig < -0.1*p.SignalAmplitude {
		t.Fatalf("heated dot signal %g, want ~0", sig)
	}
}

func TestERBHealthyDot(t *testing.T) {
	m := New(quiet(1, 8))
	m.MWB(0, true)
	if m.ERB(0) {
		t.Fatal("healthy dot read as heated")
	}
	// erb must restore the original value (the two inversions).
	if !m.MRB(0) {
		t.Fatal("erb destroyed the stored bit")
	}
	m.MWB(1, false)
	if m.ERB(1) {
		t.Fatal("healthy 0 dot read as heated")
	}
	if m.MRB(1) {
		t.Fatal("erb destroyed the stored 0")
	}
}

func TestERBHeatedDotDetected(t *testing.T) {
	// With zero residual signal and zero noise, a heated dot reads a
	// constant, so erb detects it deterministically (inverse never
	// reads back).
	m := New(quiet(1, 4))
	m.EWB(0)
	if !m.ERB(0) {
		t.Fatal("heated dot not detected by erb")
	}
}

func TestERBHeatedDetectionUnderNoise(t *testing.T) {
	// With realistic noise the per-attempt detection probability is
	// below 1 but must be well above 1/2; the device retries.
	p := DefaultParams(1, 1000)
	p.Seed = 77
	m := New(p)
	for i := 0; i < 1000; i++ {
		m.EWB(i)
	}
	detected := 0
	for i := 0; i < 1000; i++ {
		if m.ERB(i) {
			detected++
		}
	}
	if detected < 600 {
		t.Fatalf("single-attempt detection %d/1000, want > 600", detected)
	}
}

func TestERBFalsePositiveRate(t *testing.T) {
	// Healthy dots at 20:1 SNR must essentially never read as heated.
	p := DefaultParams(1, 2000)
	p.Seed = 99
	m := New(p)
	for i := 0; i < 2000; i++ {
		m.MWB(i, i%2 == 0)
	}
	for i := 0; i < 2000; i++ {
		if m.ERB(i) {
			t.Fatalf("healthy dot %d read as heated", i)
		}
	}
}

func TestEWBIrreversibleProperty(t *testing.T) {
	f := func(writes []bool) bool {
		m := New(quiet(1, 2))
		m.EWB(0)
		for _, w := range writes {
			m.MWB(0, w)
		}
		return m.State(0) == DotH
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThermalCrosstalk(t *testing.T) {
	p := quiet(3, 3)
	p.ThermalCrosstalk = 1 // always disturb neighbours
	m := New(p)
	for i := 0; i < 9; i++ {
		m.MWB(i, true)
	}
	m.EWB(4) // centre dot
	st := m.Stats()
	if st.CrosstalkFlips != 4 {
		t.Fatalf("crosstalk flips %d, want 4 (N,S,E,W)", st.CrosstalkFlips)
	}
	// The four neighbours flipped but are still magnetic.
	for _, i := range []int{1, 3, 5, 7} {
		if m.State(i) != Dot0 {
			t.Fatalf("neighbour %d state %v", i, m.State(i))
		}
	}
	// Diagonals untouched.
	for _, i := range []int{0, 2, 6, 8} {
		if m.State(i) != Dot1 {
			t.Fatalf("diagonal %d disturbed", i)
		}
	}
}

func TestCrosstalkAtEdgeDoesNotPanic(t *testing.T) {
	p := quiet(2, 2)
	p.ThermalCrosstalk = 1
	m := New(p)
	m.EWB(0) // corner dot: two neighbours out of range
	if m.State(0) != DotH {
		t.Fatal("corner heat failed")
	}
}

func TestBulkEraseSparesHeatedEvidence(t *testing.T) {
	// §5.2: a degausser clears magnetic data but heated dots remain —
	// the evidence survives.
	p := quiet(1, 100)
	m := New(p)
	for i := 0; i < 100; i++ {
		m.MWB(i, true)
		if i%10 == 0 {
			m.EWB(i)
		}
	}
	m.BulkErase()
	for i := 0; i < 100; i++ {
		if i%10 == 0 {
			if m.State(i) != DotH {
				t.Fatalf("heated dot %d lost evidence", i)
			}
		}
	}
	// Magnetic data must be randomised: not all dots still read 1.
	ones := 0
	for i := 0; i < 100; i++ {
		if i%10 != 0 && m.MRB(i) {
			ones++
		}
	}
	if ones == 90 {
		t.Fatal("bulk erase did not disturb magnetic data")
	}
}

func TestStuckDots(t *testing.T) {
	m := New(quiet(1, 4))
	m.SetStuck(0, StuckUp)
	m.MWB(0, false)
	if !m.MRB(0) {
		t.Fatal("stuck-up dot read 0")
	}
	m.SetStuck(1, StuckDown)
	m.MWB(1, true)
	if m.MRB(1) {
		t.Fatal("stuck-down dot read 1")
	}
	m.SetStuck(2, StuckDead)
	if sig := m.MRBAnalog(2); sig != 0 {
		t.Fatalf("dead dot signal %g", sig)
	}
	if m.Stuck(2) != StuckDead {
		t.Fatal("stuck kind not recorded")
	}
	m.SetStuck(0, StuckNone)
	m.MWB(0, false)
	if m.MRB(0) {
		t.Fatal("cleared stuck dot still pinned")
	}
}

func TestCorruptMagnetic(t *testing.T) {
	m := New(quiet(1, 2))
	m.MWB(0, true)
	m.CorruptMagnetic(0)
	if m.MRB(0) {
		t.Fatal("corruption did not flip the bit")
	}
	m.EWB(1)
	m.CorruptMagnetic(1) // no-op on heated dots
	if m.State(1) != DotH {
		t.Fatal("corrupting a heated dot changed its state")
	}
}

func TestHeatedCount(t *testing.T) {
	m := New(quiet(2, 8))
	if m.HeatedCount() != 0 {
		t.Fatal("fresh medium has heated dots")
	}
	m.EWB(0)
	m.EWB(5)
	m.EWB(5) // idempotent
	if got := m.HeatedCount(); got != 2 {
		t.Fatalf("heated count %d, want 2", got)
	}
}

func TestDensityMatchesPaper(t *testing.T) {
	// 100 nm pitch → 10 Gbit/cm² (paper §6).
	m := New(quiet(100, 100))
	d := m.DensityGbitPerCM2()
	if d < 9.9 || d > 10.1 {
		t.Fatalf("density %g Gbit/cm², want 10", d)
	}
}

func TestStatsCounting(t *testing.T) {
	m := New(quiet(1, 4))
	m.MWB(0, true)
	m.MRB(0)
	m.EWB(1)
	st := m.Stats()
	if st.MagneticWrites != 1 || st.MagneticReads != 1 || st.ElectricWrites != 1 {
		t.Fatalf("stats %+v", st)
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("reset failed")
	}
}

func TestWearCounter(t *testing.T) {
	m := New(quiet(1, 2))
	for i := 0; i < 7; i++ {
		m.MWB(0, true)
	}
	if got := m.WearWrites(0); got != 7 {
		t.Fatalf("wear %d", got)
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, p := range []Params{
		{Rows: 0, Cols: 5, SignalAmplitude: 1},
		{Rows: 5, Cols: -1, SignalAmplitude: 1},
		{Rows: 5, Cols: 5, SignalAmplitude: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %+v did not panic", p)
				}
			}()
			New(p)
		}()
	}
}

func TestOutOfRangeDotPanics(t *testing.T) {
	m := New(quiet(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range dot access did not panic")
		}
	}()
	m.MRB(4)
}

func TestIndexMapping(t *testing.T) {
	m := New(quiet(3, 5))
	if m.Index(0, 0) != 0 || m.Index(2, 4) != 14 || m.Index(1, 2) != 7 {
		t.Fatal("row-major mapping broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-matrix index did not panic")
		}
	}()
	m.Index(3, 0)
}
