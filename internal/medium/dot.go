// Package medium simulates the patterned magnetic medium: a regular
// matrix of single-domain magnetic dots with perpendicular easy axis.
// Each dot supports the paper's four bit operations:
//
//   - mwb: magnetic write (set magnetisation up=1 / down=0)
//   - mrb: magnetic read (sense magnetisation via the MFM signal)
//   - ewb: electrical write (heat the dot, irreversibly destroying its
//     out-of-plane anisotropy — the write-once operation)
//   - erb: electrical read (detect heating via the 5-step
//     read/invert/verify/restore protocol of §3)
//
// The medium exposes an analog read signal so that the "more or less
// random result" of magnetically reading a heated dot (Fig 2) emerges
// from the physics model rather than being hard-coded.
package medium

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sero/internal/physics"
	"sero/internal/sim"
)

// DotState is the observable state of a dot, matching Fig 2.
type DotState int

// Dot states per Fig 2 of the paper.
const (
	// Dot0 is a magnetised dot representing logical 0 (down).
	Dot0 DotState = iota
	// Dot1 is a magnetised dot representing logical 1 (up).
	Dot1
	// DotH is a heated dot: multilayer destroyed, easy axis in-plane.
	DotH
)

// String returns the Fig 2 label of the state.
func (s DotState) String() string {
	switch s {
	case Dot0:
		return "0"
	case Dot1:
		return "1"
	case DotH:
		return "H"
	default:
		return fmt.Sprintf("DotState(%d)", int(s))
	}
}

// dot is the internal per-dot record. Dots are kept small: media with
// tens of millions of dots are routine in the experiments.
type dot struct {
	// up is the out-of-plane magnetisation direction (true = up = 1).
	// Meaningless once the dot is heated.
	up bool
	// inPlaneSign is the random in-plane orientation the magnetisation
	// falls into when the dot is heated; it biases the residual read
	// signal of a damaged dot.
	inPlaneSign int8
	// stuck injects a permanent defect (see faults.go).
	stuck StuckKind
	// damage is the accumulated interface-mixing fraction from heat
	// pulses, in [0,1]. The dot is "heated" (state H) once damage
	// exceeds physics.HeatedDamageThreshold: the surviving interface
	// anisotropy no longer beats the shape anisotropy. Monotone:
	// mixing is irreversible.
	damage float32
	// wearWrites counts magnetic writes, for wear diagnostics.
	wearWrites uint32
}

// heated reports whether the dot's multilayer is destroyed.
func (d *dot) heated() bool {
	return float64(d.damage) >= physics.HeatedDamageThreshold
}

// Params collects the physical parameters of a medium.
type Params struct {
	// Rows, Cols give the dot-matrix geometry.
	Rows, Cols int

	// PitchNM is the dot pitch in nanometres (paper: 200 demonstrated,
	// 100 targeted for 10 Gbit/cm²).
	PitchNM float64

	// SignalAmplitude is the noiseless MFM read amplitude of a healthy
	// dot (arbitrary units; the decode threshold is derived from it).
	SignalAmplitude float64

	// ReadNoiseSigma is the RMS additive noise per read sample.
	ReadNoiseSigma float64

	// ResidualInPlaneSignal is the tiny out-of-plane component a heated
	// dot still couples into the reader (ideally 0; non-zero values
	// stress the erb protocol — experiment E7).
	ResidualInPlaneSignal float64

	// ThermalCrosstalk is the probability that heating a dot disturbs
	// the *magnetisation* of an immediate neighbour (paper §7:
	// "the magnetic state ... of the adjacent dot could be affected").
	ThermalCrosstalk float64

	// PulseTempC is the peak temperature one electrical-write pulse
	// raises the target dot to. The default 900 °C/50 µs pulse is
	// ~2.5 relaxation times, destroying the dot in one shot; with the
	// substrate acting as a heat sink (§7), neighbours see only
	// NeighborTempFactor of it.
	PulseTempC float64

	// PulseSeconds is the pulse dwell time.
	PulseSeconds float64

	// NeighborTempFactor attenuates the pulse temperature at the four
	// nearest neighbours (0 disables neighbour heating entirely).
	NeighborTempFactor float64

	// Seed seeds the medium's noise generator.
	Seed uint64
}

// DefaultParams returns parameters for a healthy 100 nm-pitch medium
// with a 20:1 signal-to-noise ratio and 1 % thermal crosstalk.
func DefaultParams(rows, cols int) Params {
	return Params{
		Rows:                  rows,
		Cols:                  cols,
		PitchNM:               100,
		SignalAmplitude:       1.0,
		ReadNoiseSigma:        0.05,
		ResidualInPlaneSignal: 0.02,
		ThermalCrosstalk:      0.01,
		PulseTempC:            900,
		PulseSeconds:          50e-6,
		NeighborTempFactor:    0.4,
		Seed:                  1,
	}
}

// Medium is a simulated patterned medium. Bit operations on disjoint
// dot regions may run concurrently: the operation counters are atomic
// and the noise generator is internally locked. Operations touching
// the *same* dots must still be serialised by the caller — the device
// layer's region locks enforce that (and extend write locks over the
// thermal-crosstalk neighbourhood of electrical writes).
type Medium struct {
	p    Params
	dots []dot

	// rngMu guards rng: noise draws come from one deterministic
	// stream regardless of which region is being read.
	rngMu sync.Mutex
	rng   *sim.RNG

	// Counters for experiments, atomically updated.
	stats atomicStats
}

// Stats counts low-level operations performed on a medium.
type Stats struct {
	MagneticReads  uint64
	MagneticWrites uint64
	ElectricWrites uint64
	CrosstalkFlips uint64
}

// atomicStats is the lock-free internal representation of Stats.
type atomicStats struct {
	magneticReads  atomic.Uint64
	magneticWrites atomic.Uint64
	electricWrites atomic.Uint64
	crosstalkFlips atomic.Uint64
}

// New creates a medium with the given parameters. It panics on
// non-positive geometry: media sizes are static configuration, so a bad
// size is a programming error, not a runtime condition.
func New(p Params) *Medium {
	if p.Rows <= 0 || p.Cols <= 0 {
		panic(fmt.Sprintf("medium: invalid geometry %dx%d", p.Rows, p.Cols))
	}
	if p.SignalAmplitude <= 0 {
		panic("medium: non-positive signal amplitude")
	}
	m := &Medium{
		p:    p,
		dots: make([]dot, p.Rows*p.Cols),
		rng:  sim.NewRNG(p.Seed),
	}
	return m
}

// Params returns the medium's parameters.
func (m *Medium) Params() Params { return m.p }

// Dots returns the total number of dots.
func (m *Medium) Dots() int { return len(m.dots) }

// Stats returns a copy of the operation counters.
func (m *Medium) Stats() Stats {
	return Stats{
		MagneticReads:  m.stats.magneticReads.Load(),
		MagneticWrites: m.stats.magneticWrites.Load(),
		ElectricWrites: m.stats.electricWrites.Load(),
		CrosstalkFlips: m.stats.crosstalkFlips.Load(),
	}
}

// ResetStats zeroes the operation counters.
func (m *Medium) ResetStats() {
	m.stats.magneticReads.Store(0)
	m.stats.magneticWrites.Store(0)
	m.stats.electricWrites.Store(0)
	m.stats.crosstalkFlips.Store(0)
}

// CapacityBits returns the usable bit capacity (one bit per dot).
func (m *Medium) CapacityBits() int { return len(m.dots) }

// AreaCM2 returns the medium area in cm², from the dot pitch.
func (m *Medium) AreaCM2() float64 {
	pitchCM := m.p.PitchNM * 1e-7
	return float64(m.p.Rows) * float64(m.p.Cols) * pitchCM * pitchCM
}

// DensityGbitPerCM2 returns the areal density in Gbit/cm². With the
// 100 nm pitch of the paper this is 10 Gbit/cm².
func (m *Medium) DensityGbitPerCM2() float64 {
	return float64(m.CapacityBits()) / m.AreaCM2() / 1e9
}

// Index converts a (row, col) dot coordinate to the linear index used
// by the bit operations. It panics on out-of-matrix coordinates.
func (m *Medium) Index(row, col int) int {
	if row < 0 || row >= m.p.Rows || col < 0 || col >= m.p.Cols {
		panic(fmt.Sprintf("medium: dot (%d,%d) outside %dx%d matrix",
			row, col, m.p.Rows, m.p.Cols))
	}
	return row*m.p.Cols + col
}

// at addresses a dot by linear index (row-major).
func (m *Medium) at(i int) *dot {
	return &m.dots[i]
}

// State returns the true physical state of dot i. This is an oracle for
// tests and the forensics tooling ("a forensics team would probably
// have no difficulty identifying a reconstructed dot", §8); the device
// layer never uses it.
func (m *Medium) State(i int) DotState {
	d := m.at(i)
	switch {
	case d.heated():
		return DotH
	case d.up:
		return Dot1
	default:
		return Dot0
	}
}

// readSignal produces the analog MFM read signal of dot i: full
// amplitude for a healthy dot, residual leakage plus noise for a heated
// one (the disappearing peak of Fig 1).
func (m *Medium) readSignal(i int) float64 {
	d := m.at(i)
	var s float64
	switch {
	case d.stuck == StuckUp:
		s = m.p.SignalAmplitude
	case d.stuck == StuckDown:
		s = -m.p.SignalAmplitude
	case d.stuck == StuckDead:
		s = 0
	case d.heated():
		s = m.p.ResidualInPlaneSignal * float64(d.inPlaneSign)
	case d.up:
		s = m.p.SignalAmplitude
	default:
		s = -m.p.SignalAmplitude
	}
	if m.p.ReadNoiseSigma > 0 {
		m.rngMu.Lock()
		s += m.p.ReadNoiseSigma * m.rng.NormFloat64()
		m.rngMu.Unlock()
	}
	return s
}

// MRB performs a magnetic read of dot i, returning the decoded bit.
// For a heated dot the decoded value is noise-driven and therefore "more
// or less random" (Fig 2): callers that need to detect heating must use
// ERB instead — that is the device protocol the paper mandates.
func (m *Medium) MRB(i int) bool {
	m.stats.magneticReads.Add(1)
	return m.readSignal(i) >= 0
}

// MRBAnalog performs a magnetic read returning the raw analog signal.
// Used by the read-channel diagnostics and by tests asserting the
// Fig 1 peak behaviour.
func (m *Medium) MRBAnalog(i int) float64 {
	m.stats.magneticReads.Add(1)
	return m.readSignal(i)
}

// MWB performs a magnetic write of dot i. Writing a heated dot has no
// effect on the stored information: the dot has no out-of-plane
// remanence left (§5.1 "Changing the magnetisation of an electrically
// written bit ... has no effect").
func (m *Medium) MWB(i int, bit bool) {
	m.stats.magneticWrites.Add(1)
	d := m.at(i)
	d.wearWrites++
	if d.heated() {
		return
	}
	d.up = bit
}

// EWB performs the electrical write (heating) of dot i: one probe
// current pulse at the medium's configured pulse temperature and
// duration. Interface mixing accumulates per the annealing physics
// (physics.PulseMixing); with the default 900 °C/20 µs pulse a single
// EWB destroys the dot irreversibly (state H). Weak pulses damage the
// dot only partially — experiment E10 sweeps that design space.
// Heating an already-heated dot is a no-op on the stored information.
//
// Neighbours receive an attenuated pulse (NeighborTempFactor of the
// absolute pulse temperature), accumulating their own damage, and
// with probability ThermalCrosstalk their *magnetisation* is disturbed
// by the heat spill (§7: "the magnetic state, or even the
// write-ability of the adjacent dot could be affected").
func (m *Medium) EWB(i int) {
	m.stats.electricWrites.Add(1)
	d := m.at(i)
	m.pulse(d, m.p.PulseTempC)

	row, col := i/m.p.Cols, i%m.p.Cols
	for _, delta := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		nr, nc := row+delta[0], col+delta[1]
		if nr < 0 || nr >= m.p.Rows || nc < 0 || nc >= m.p.Cols {
			continue
		}
		n := m.at(nr*m.p.Cols + nc)
		if m.p.NeighborTempFactor > 0 {
			m.pulse(n, m.p.PulseTempC*m.p.NeighborTempFactor)
		}
		if m.p.ThermalCrosstalk > 0 && m.randFloat() < m.p.ThermalCrosstalk {
			if !n.heated() {
				n.up = !n.up
				m.stats.crosstalkFlips.Add(1)
			}
		}
	}
}

// randFloat draws from the shared noise stream under the rng lock.
func (m *Medium) randFloat() float64 {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return m.rng.Float64()
}

// randBool draws from the shared noise stream under the rng lock.
func (m *Medium) randBool() bool {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return m.rng.Bool()
}

// pulse applies one heat pulse at tempC to a dot, accumulating
// interface-mixing damage. Crossing the destruction threshold fixes
// the in-plane orientation the magnetisation falls into.
func (m *Medium) pulse(d *dot, tempC float64) {
	if d.heated() {
		return
	}
	next := physics.PulseDamage(tempC, m.p.PulseSeconds, float64(d.damage))
	if next <= float64(d.damage) {
		return
	}
	wasHeated := d.heated()
	d.damage = float32(next)
	if !wasHeated && d.heated() {
		if m.randBool() {
			d.inPlaneSign = 1
		} else {
			d.inPlaneSign = -1
		}
	}
}

// Damage returns the accumulated interface-mixing fraction of dot i.
func (m *Medium) Damage(i int) float64 { return float64(m.at(i).damage) }

// ERB performs the electrical read of dot i using the paper's exact
// 5-step protocol (§3): read, write inverse, verify inverse, write
// original back, verify original. If either verification fails the dot
// has lost its out-of-plane property and ERB reports heated=true.
// For un-heated dots the two inversions restore the original data.
//
// The protocol costs 3 magnetic reads and 2 magnetic writes, which is
// why the paper calls erb "at least 5 times slower than mrb"; the
// device layer charges latency accordingly.
func (m *Medium) ERB(i int) (heated bool) {
	orig := m.MRB(i)  // 1. read the original bit
	m.MWB(i, !orig)   // 2. write the inverse
	inv := m.MRB(i)   // 3. verify the inverse reads back
	m.MWB(i, orig)    // 4. restore the original
	again := m.MRB(i) // 5. verify the original reads back
	if inv == orig || again != orig {
		return true
	}
	return false
}

// WearWrites returns the number of magnetic writes dot i has received.
func (m *Medium) WearWrites(i int) uint32 { return m.at(i).wearWrites }

// HeatedCount returns the number of heated dots — the RO fraction of
// the medium grows monotonically over its life (§8 "the read/write area
// gradually shrinks").
func (m *Medium) HeatedCount() int {
	n := 0
	for i := range m.dots {
		if m.dots[i].heated() {
			n++
		}
	}
	return n
}

// BulkErase simulates a degausser pass (§5.2 availability analysis):
// all magnetic information is randomised, but heated dots remain heated
// — the electrically written evidence survives.
func (m *Medium) BulkErase() {
	for i := range m.dots {
		if !m.dots[i].heated() {
			m.dots[i].up = m.randBool()
		}
	}
}
