package medium

import (
	"testing"

	"sero/internal/physics"
)

func TestDefaultPulseDestroysInOneShot(t *testing.T) {
	m := New(quiet(1, 4))
	m.EWB(0)
	if m.State(0) != DotH {
		t.Fatalf("default pulse left dot at damage %g", m.Damage(0))
	}
}

func TestWeakPulseAccumulates(t *testing.T) {
	p := quiet(1, 4)
	p.PulseTempC = 700 // needs ~5 pulses at 50 µs
	m := New(p)
	pulses := 0
	for m.State(0) != DotH {
		m.EWB(0)
		pulses++
		if pulses > 100 {
			t.Fatal("700 °C pulses never destroyed the dot")
		}
	}
	if pulses < 2 {
		t.Fatalf("700 °C destroyed in %d pulse(s); expected accumulation", pulses)
	}
	// Damage grew monotonically to ≥ threshold.
	if m.Damage(0) < physics.HeatedDamageThreshold {
		t.Fatal("heated dot below damage threshold")
	}
}

func TestSubThresholdPulseNeverDestroys(t *testing.T) {
	p := quiet(1, 4)
	p.PulseTempC = 550 // equilibrium mixing below the threshold
	m := New(p)
	for i := 0; i < 2000; i++ {
		m.EWB(0)
	}
	if m.State(0) == DotH {
		t.Fatal("equilibrium-limited pulses destroyed the dot")
	}
	// But the dot did take partial damage.
	if m.Damage(0) == 0 {
		t.Fatal("no damage accumulated at all")
	}
	// And it still works magnetically.
	m.MWB(0, true)
	if !m.MRB(0) {
		t.Fatal("partially damaged dot lost magnetic function")
	}
}

func TestNeighborSurvivesDefaultWrites(t *testing.T) {
	m := New(quiet(1, 8))
	// Heat dot 2 hundreds of times (idempotent after the first, but
	// each EWB call pulses the neighbours).
	for i := 0; i < 500; i++ {
		m.EWB(2)
	}
	if m.State(1) == DotH || m.State(3) == DotH {
		t.Fatal("neighbours destroyed at default attenuation")
	}
}

func TestPoorHeatSinkingKillsNeighbors(t *testing.T) {
	p := quiet(1, 8)
	p.NeighborTempFactor = 0.7
	m := New(p)
	for i := 0; i < 100; i++ {
		m.EWB(2)
	}
	if m.State(1) != DotH && m.State(3) != DotH {
		t.Fatalf("0.7 attenuation after 100 writes: neighbour damage %g",
			m.Damage(1))
	}
}

func TestDamageMonotone(t *testing.T) {
	p := quiet(1, 2)
	p.PulseTempC = 650
	m := New(p)
	last := 0.0
	for i := 0; i < 50; i++ {
		m.EWB(0)
		d := m.Damage(0)
		if d < last {
			t.Fatal("damage decreased")
		}
		last = d
	}
}

func TestPulseDamagePhysics(t *testing.T) {
	// Equilibrium ceiling: damage converges to the equilibrium, not 1.
	d := 0.0
	for i := 0; i < 10000; i++ {
		d = physics.PulseDamage(550, 50e-6, d)
	}
	if d >= physics.HeatedDamageThreshold {
		t.Fatalf("550 °C converged to %g, above threshold %g", d, physics.HeatedDamageThreshold)
	}
	// Zero-duration pulse is a no-op.
	if physics.PulseDamage(900, 0, 0.3) != 0.3 {
		t.Fatal("zero-duration pulse changed damage")
	}
	// Damage never exceeds 1.
	if physics.PulseDamage(1200, 10, 0.99) > 1 {
		t.Fatal("damage above 1")
	}
}
