//go:build race

package lfs

// raceDetector reports that this build runs under the race detector,
// whose ~10-20× slowdown makes the densest crash-boundary sweeps
// exceed the package test timeout; they widen their sampling stride
// instead of losing the coverage entirely.
const raceDetector = true
