package lfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"sero/internal/device"
	"sero/internal/medium"
)

// testFS builds an FS on a quiet device. blocks must cover the
// checkpoint region plus at least two segments.
func testFS(t testing.TB, blocks int, p Params) *FS {
	t.Helper()
	dp := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	dp.Medium = mp
	fs, err := New(device.New(dp), p)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func smallParams() Params {
	return Params{
		SegmentBlocks:    16,
		CheckpointBlocks: 16,
		HeatAware:        true,
		ReserveSegments:  2,
	}
}

func payload(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

func TestCreateWriteReadSync(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, err := fs.Create("a.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	data := payload(1, 3*device.DataBytes+100)
	if err := fs.WriteFile(ino, data); err != nil {
		t.Fatal(err)
	}
	// Readable before sync (dirty buffer).
	got, err := fs.ReadFile(ino)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("pre-sync read: %v", err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err = fs.ReadFile(ino)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-sync read: %v", err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	if _, err := fs.Create("x", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("x", 0); !errors.Is(err, ErrExists) {
		t.Fatalf("err %v", err)
	}
	if _, err := fs.Create("", 0); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestLookupAndNames(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("f1", 0)
	got, err := fs.Lookup("f1")
	if err != nil || got != ino {
		t.Fatalf("lookup %d %v", got, err)
	}
	if _, err := fs.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err %v", err)
	}
	if n := fs.Names(); len(n) != 1 || n[0] != "f1" {
		t.Fatalf("names %v", n)
	}
}

func TestPartialOverwrite(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("f", 0)
	if err := fs.WriteFile(ino, payload(1, 2*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Overwrite 100 bytes in the middle of block 1 after sync: the
	// read-modify-write path must preserve the rest.
	patch := payload(0xFF, 100)
	if err := fs.Write(ino, device.DataBytes+50, patch); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	want := payload(1, 2*device.DataBytes)
	copy(want[device.DataBytes+50:], patch)
	got, err := fs.ReadFile(ino)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatal("partial overwrite corrupted data")
	}
}

func TestSparseFileReadsZero(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("sparse", 0)
	if err := fs.Write(ino, 3*device.DataBytes, []byte("end")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := fs.Read(ino, 100, buf)
	if err != nil || n != 10 {
		t.Fatalf("hole read %d %v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("gone", 0)
	if err := fs.WriteFile(ino, payload(2, 4*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	segs := fs.Segments()
	liveBefore := 0
	for _, s := range segs {
		liveBefore += s.LiveBlocks
	}
	if liveBefore != 5 { // 4 data + 1 inode
		t.Fatalf("live before delete %d", liveBefore)
	}
	if err := fs.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	liveAfter := 0
	for _, s := range fs.Segments() {
		liveAfter += s.LiveBlocks
	}
	if liveAfter != 0 {
		t.Fatalf("live after delete %d", liveAfter)
	}
	if _, err := fs.Lookup("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatal("file still visible")
	}
}

func TestRewriteMarksOldDead(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("rw", 0)
	for round := 0; round < 5; round++ {
		if err := fs.WriteFile(ino, payload(byte(round), 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	live := 0
	for _, s := range fs.Segments() {
		live += s.LiveBlocks
	}
	if live != 3 { // 2 data + 1 inode, irrespective of rewrites
		t.Fatalf("live %d after rewrites", live)
	}
}

func TestCleanerReclaims(t *testing.T) {
	fs := testFS(t, 2048, smallParams())
	ino, _ := fs.Create("churn", 0)
	// Fill several segments with rewrites; most blocks die.
	for round := 0; round < 40; round++ {
		if err := fs.WriteFile(ino, payload(byte(round), 4*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	freeBefore := fs.FreeSegments()
	cs := fs.Clean(fs.FreeSegments() + 3)
	if cs.SegmentsCleaned == 0 {
		t.Fatalf("cleaner reclaimed nothing: %+v", cs)
	}
	if fs.FreeSegments() <= freeBefore {
		t.Fatal("free segments did not grow")
	}
	// Data integrity after cleaning.
	got, err := fs.ReadFile(ino)
	if err != nil || !bytes.Equal(got, payload(39, 4*device.DataBytes)) {
		t.Fatalf("data corrupted by cleaner: %v", err)
	}
}

func TestCleanerPreservesMultipleFiles(t *testing.T) {
	fs := testFS(t, 2048, smallParams())
	inos := make([]Ino, 6)
	for i := range inos {
		var err error
		inos[i], err = fs.Create(string(rune('a'+i)), 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 10; round++ {
		for i, ino := range inos {
			if err := fs.WriteFile(ino, payload(byte(round*i), 3*device.DataBytes)); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	fs.Clean(fs.FreeSegments() + 4)
	for i, ino := range inos {
		got, err := fs.ReadFile(ino)
		if err != nil || !bytes.Equal(got, payload(byte(9*i), 3*device.DataBytes)) {
			t.Fatalf("file %d corrupted: %v", i, err)
		}
	}
}

func TestHeatFileAndVerify(t *testing.T) {
	fs := testFS(t, 1024, smallParams())
	ino, _ := fs.Create("evidence", 1)
	data := payload(7, 5*device.DataBytes)
	if err := fs.WriteFile(ino, data); err != nil {
		t.Fatal(err)
	}
	res, err := fs.HeatFile("evidence")
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksMoved != 6 { // 5 data + inode
		t.Fatalf("moved %d", res.BlocksMoved)
	}
	// Line: hash+inode+5 data = 7 -> 8 blocks.
	if res.Line.Blocks() != 8 {
		t.Fatalf("line blocks %d", res.Line.Blocks())
	}
	// Content unchanged.
	got, err := fs.ReadFile(ino)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("heated file unreadable: %v", err)
	}
	// Verifies clean.
	reps, err := fs.VerifyFile("evidence")
	if err != nil || len(reps) != 1 || !reps[0].OK {
		t.Fatalf("verify %v %v", reps, err)
	}
	// Frozen: writes and deletes refused.
	if err := fs.Write(ino, 0, []byte("x")); !errors.Is(err, ErrFileHeated) {
		t.Fatalf("write to heated: %v", err)
	}
	if err := fs.Delete("evidence"); !errors.Is(err, ErrFileHeated) {
		t.Fatalf("delete heated: %v", err)
	}
	if _, err := fs.HeatFile("evidence"); !errors.Is(err, ErrFileHeated) {
		t.Fatalf("double heat: %v", err)
	}
}

func TestHeatFileDetectsTamper(t *testing.T) {
	fs := testFS(t, 1024, smallParams())
	ino, _ := fs.Create("victim", 0)
	if err := fs.WriteFile(ino, payload(3, 2*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	res, err := fs.HeatFile("victim")
	if err != nil {
		t.Fatal(err)
	}
	// Attacker forges a data block inside the heated line.
	target := res.Line.Start + 2
	bits := device.ForgedFrameBits(target, payload(0xAA, device.DataBytes))
	base := int(target) * device.DotsPerBlock
	for i, b := range bits {
		fs.Device().(*device.Device).Medium().MWB(base+i, b)
	}
	reps, err := fs.VerifyFile("victim")
	if err != nil {
		t.Fatal(err)
	}
	if reps[0].OK || !reps[0].HashMismatch {
		t.Fatalf("tamper not detected: %+v", reps[0])
	}
}

func TestHeatEmptyFile(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	if _, err := fs.Create("empty", 0); err != nil {
		t.Fatal(err)
	}
	res, err := fs.HeatFile("empty")
	if err != nil {
		t.Fatal(err)
	}
	if res.Line.Blocks() != 2 { // hash + inode
		t.Fatalf("line blocks %d", res.Line.Blocks())
	}
}

func TestHeatUnknownFile(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	if _, err := fs.HeatFile("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err %v", err)
	}
}

func TestHeatAwareClusteringPinsOnlyHeatSegments(t *testing.T) {
	fs := testFS(t, 2048, smallParams())
	// Interleave regular writes and heats; heat-aware placement must
	// keep data segments unpinned.
	for i := 0; i < 6; i++ {
		name := string(rune('a' + i))
		ino, err := fs.Create(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(ino, payload(byte(i), 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := fs.HeatFile(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	if b := fs.Bimodality(); b != 1 {
		t.Fatalf("heat-aware bimodality %g, want 1", b)
	}
	// Pinned segments must contain no live (cleanable) data at all.
	for _, s := range fs.Segments() {
		if s.State == SegPinned && s.LiveBlocks > 0 {
			t.Fatalf("pinned segment %d strands %d live blocks", s.ID, s.LiveBlocks)
		}
	}
}

func TestHeatObliviousStrandsLiveData(t *testing.T) {
	p := smallParams()
	p.HeatAware = false
	fs := testFS(t, 2048, p)
	for i := 0; i < 6; i++ {
		name := string(rune('a' + i))
		ino, err := fs.Create(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(ino, payload(byte(i), 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := fs.HeatFile(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	stranded := 0
	for _, s := range fs.Segments() {
		if s.State == SegPinned {
			stranded += s.LiveBlocks
		}
	}
	if stranded == 0 {
		t.Fatal("heat-oblivious placement stranded nothing — ablation is vacuous")
	}
}

func TestCleanerSkipsPinnedSegments(t *testing.T) {
	fs := testFS(t, 2048, smallParams())
	ino, _ := fs.Create("hot", 0)
	if err := fs.WriteFile(ino, payload(1, 4*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.HeatFile("hot"); err != nil {
		t.Fatal(err)
	}
	// Generate churn so the cleaner has work.
	churn, _ := fs.Create("churn", 0)
	for round := 0; round < 30; round++ {
		if err := fs.WriteFile(churn, payload(byte(round), 6*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	fs.Clean(fs.FreeSegments() + 2)
	// The heated file must be untouched and verifiable.
	reps, err := fs.VerifyFile("hot")
	if err != nil || !reps[0].OK {
		t.Fatalf("heated file damaged by cleaner: %v", err)
	}
	for _, s := range fs.Segments() {
		if s.HeatedBlocks > 0 && s.State != SegPinned {
			t.Fatalf("segment %d with heated blocks in state %v", s.ID, s.State)
		}
	}
}

func TestMountRestoresFiles(t *testing.T) {
	fs := testFS(t, 1024, smallParams())
	inoA, _ := fs.Create("a", 0)
	inoB, _ := fs.Create("b", 1)
	dataA := payload(1, 3*device.DataBytes)
	dataB := payload(2, device.DataBytes/2)
	if err := fs.WriteFile(inoA, dataA); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(inoB, dataB); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.HeatFile("b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Re-mount on the same device.
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := fs2.ReadFile(inoA)
	if err != nil || !bytes.Equal(gotA, dataA) {
		t.Fatalf("file a after mount: %v", err)
	}
	gotB, err := fs2.ReadFile(inoB)
	if err != nil || !bytes.Equal(gotB, dataB) {
		t.Fatalf("file b after mount: %v", err)
	}
	st, err := fs2.Stat(inoB)
	if err != nil || !st.Heated() {
		t.Fatal("heated flag lost across mount")
	}
	// New writes must not collide with existing data.
	inoC, err := fs2.Create("c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.WriteFile(inoC, payload(9, 2*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Sync(); err != nil {
		t.Fatal(err)
	}
	gotA, err = fs2.ReadFile(inoA)
	if err != nil || !bytes.Equal(gotA, dataA) {
		t.Fatal("new writes after mount corrupted old file")
	}
	reps, err := fs2.VerifyFile("b")
	if err != nil || !reps[0].OK {
		t.Fatalf("heated file b fails verify after mount: %v", err)
	}
}

func TestWriteTooLarge(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("big", 0)
	err := fs.Write(ino, MaxFileBytes-10, make([]byte, 20))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err %v", err)
	}
}

func TestFSFull(t *testing.T) {
	fs := testFS(t, 16+3*16, smallParams()) // checkpoint + 3 segments
	ino, _ := fs.Create("filler", 0)
	var lastErr error
	for i := 0; i < 100 && lastErr == nil; i++ {
		lastErr = fs.WriteFile(ino, payload(byte(i), 8*device.DataBytes))
		if lastErr == nil {
			lastErr = fs.Sync()
		}
	}
	if lastErr == nil {
		t.Skip("device larger than the workload can fill")
	}
	if !errors.Is(lastErr, ErrFull) {
		t.Fatalf("err %v, want ErrFull", lastErr)
	}
}

func TestInodeRoundTripProperty(t *testing.T) {
	f := func(ino uint64, size uint64, flags byte, aff uint8, nb, nh uint8) bool {
		in := &Inode{
			Ino:      Ino(ino),
			Size:     size,
			Flags:    flags,
			Affinity: aff,
		}
		for i := 0; i < int(nb)%40; i++ {
			in.Blocks = append(in.Blocks, uint64(i)*13)
		}
		for i := 0; i < int(nh)%10; i++ {
			in.HeatLines = append(in.HeatLines, uint64(i)*64)
		}
		buf, err := in.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalInode(buf)
		if err != nil {
			return false
		}
		if got.Ino != in.Ino || got.Size != in.Size || got.Flags != in.Flags ||
			got.Affinity != in.Affinity || len(got.Blocks) != len(in.Blocks) ||
			len(got.HeatLines) != len(in.HeatLines) {
			return false
		}
		for i := range in.Blocks {
			if got.Blocks[i] != in.Blocks[i] {
				return false
			}
		}
		for i := range in.HeatLines {
			if got.HeatLines[i] != in.HeatLines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInodeRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalInode(make([]byte, 10)); err == nil {
		t.Fatal("short inode accepted")
	}
	if _, err := UnmarshalInode(make([]byte, device.DataBytes)); err == nil {
		t.Fatal("zero inode accepted")
	}
}

func TestInodeOverflowPointers(t *testing.T) {
	in := &Inode{Ino: 1, Blocks: make([]uint64, MaxDirect+1)}
	if _, err := in.Marshal(); err == nil {
		t.Fatal("oversize inode marshalled")
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	dp := device.DefaultParams(64)
	mp := medium.DefaultParams(64, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	dp.Medium = mp
	dev := device.New(dp)
	if _, err := New(dev, Params{SegmentBlocks: 48, CheckpointBlocks: 16, ReserveSegments: 1}); err == nil {
		t.Fatal("non-power-of-two segment accepted")
	}
	if _, err := New(dev, Params{SegmentBlocks: 64, CheckpointBlocks: 64, ReserveSegments: 1}); err == nil {
		t.Fatal("too-small device accepted")
	}
}

func TestStatsProgress(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("s", 0)
	if err := fs.WriteFile(ino, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	st := fs.Stats()
	if st.BytesWritten == 0 || st.BlocksAppended == 0 || st.Syncs != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSegmentStateString(t *testing.T) {
	names := map[SegmentState]string{
		SegFree: "free", SegActive: "active", SegFull: "full", SegPinned: "pinned",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v", s)
		}
	}
}

func TestHeatFileTooLargeForSegment(t *testing.T) {
	// A line must fit one segment; a file needing more blocks than the
	// segment holds is rejected with a clear error, not mangled.
	fs := testFS(t, 512, smallParams()) // 16-block segments
	ino, _ := fs.Create("big", 0)
	if err := fs.WriteFile(ino, payload(1, 20*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.HeatFile("big"); err == nil {
		t.Fatal("oversized heat accepted")
	}
	// The file survives the failed heat.
	got, err := fs.ReadFile(ino)
	if err != nil || len(got) != 20*device.DataBytes {
		t.Fatalf("file damaged by failed heat: %v", err)
	}
}

func TestUnsyncedDataLostOnMount(t *testing.T) {
	// Crash model: buffered writes die with the host; mounted state
	// reflects the last checkpoint, consistently.
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("durable", 0)
	if err := fs.WriteFile(ino, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes, never synced.
	if err := fs.WriteFile(ino, payload(9, 3*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile(ino)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(1, device.DataBytes)) {
		t.Fatal("mounted state is neither old nor consistent")
	}
}

func BenchmarkLFSWriteSync(b *testing.B) {
	fs := testFS(b, 8192, Params{SegmentBlocks: 64, CheckpointBlocks: 64, HeatAware: true, ReserveSegments: 2})
	ino, err := fs.Create("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	data := payload(1, 4*device.DataBytes)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.WriteFile(ino, data); err != nil {
			b.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLFSHeatFile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fs := testFS(b, 1024, smallParams())
		ino, err := fs.Create("h", 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := fs.WriteFile(ino, payload(1, 3*device.DataBytes)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := fs.HeatFile("h"); err != nil {
			b.Fatal(err)
		}
	}
}
