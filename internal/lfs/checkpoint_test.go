package lfs

import (
	"errors"
	"testing"

	"sero/internal/device"
)

func TestMountFreshDeviceFails(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	// Never synced: checkpoint region is unwritten; mounting must fail
	// cleanly, not panic.
	if _, err := Mount(fs.Device(), fs.Params()); err == nil {
		t.Fatal("mount of unformatted device succeeded")
	}
}

func TestMountCorruptCheckpoint(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("f", 0)
	if err := fs.WriteFile(ino, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the checkpoint's first block with a forged frame whose
	// payload is garbage.
	garbage := make([]byte, device.DataBytes)
	garbage[0] = 0xFF
	bits := device.ForgedFrameBits(0, garbage)
	med := fs.Device().(*device.Device).Medium()
	for i, b := range bits {
		med.MWB(i, b)
	}
	if _, err := Mount(fs.Device(), fs.Params()); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("err %v", err)
	}
}

func TestMountAfterManySyncs(t *testing.T) {
	fs := testFS(t, 1024, smallParams())
	for round := 0; round < 10; round++ {
		name := string(rune('a' + round))
		ino, err := fs.Create(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(ino, payload(byte(round), device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs2.Names()) != 10 {
		t.Fatalf("names %d", len(fs2.Names()))
	}
}

func TestMountPreservesNextIno(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino1, _ := fs.Create("one", 0)
	if err := fs.WriteFile(ino1, payload(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	ino2, err := fs2.Create("two", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ino2 <= ino1 {
		t.Fatalf("inode counter regressed: %d after %d", ino2, ino1)
	}
}

func TestCheckpointDeterministic(t *testing.T) {
	// Two identical op sequences must produce byte-identical
	// checkpoints (map-order independence).
	build := func() *FS {
		fs := testFS(t, 512, smallParams())
		for _, n := range []string{"zeta", "alpha", "mid"} {
			ino, err := fs.Create(n, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := fs.WriteFile(ino, payload(7, 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	a, b := build(), build()
	ba, err := a.Device().MRS(0)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Device().MRS(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("checkpoints differ at byte %d", i)
		}
	}
}

func TestCleanerPrefersColderSegments(t *testing.T) {
	// Cost-benefit: between two equally utilised full segments, the
	// older one scores higher.
	fs := testFS(t, 1024, smallParams())
	// Build two full segments with one live block each, separated in
	// time.
	a, _ := fs.Create("a", 0)
	if err := fs.WriteFile(a, payload(1, 16*device.DataBytes)); err == nil {
		_ = fs.Sync()
	}
	segsBefore := fs.Segments()
	_ = segsBefore
	var cs CleanStats
	victims := fs.pickVictims(1, &cs)
	for _, victim := range victims {
		if victim.state != SegFull {
			t.Fatalf("victim in state %v", victim.state)
		}
	}
}

func TestBimodalityEmptyFS(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	if b := fs.Bimodality(); b != 1 {
		t.Fatalf("empty FS bimodality %g", b)
	}
}

func TestDeleteUnknown(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	if err := fs.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err %v", err)
	}
}

func TestReadBeyondEOF(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	ino, _ := fs.Create("short", 0)
	if err := fs.WriteFile(ino, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := fs.Read(ino, 100, buf)
	if err != nil || n != 0 {
		t.Fatalf("read beyond EOF: n=%d err=%v", n, err)
	}
	n, err = fs.Read(ino, 1, buf)
	if err != nil || n != 2 {
		t.Fatalf("clamped read: n=%d err=%v", n, err)
	}
}

func TestStatUnknownIno(t *testing.T) {
	fs := testFS(t, 512, smallParams())
	if _, err := fs.Stat(999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err %v", err)
	}
}
