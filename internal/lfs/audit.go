package lfs

import (
	"sero/internal/core"
	"sero/internal/device"
)

// Continuous background verification. With Params.AuditEvery > 0 the
// FS runs the core incremental auditor as a background service, the
// way CleanWatermark runs the cleaner: every AuditEvery blocks
// appended to the log kick one audit step, so verification bandwidth
// tracks write bandwidth and an idle FS audits nothing. Embedders that
// want to drive the cadence themselves (latency-critical loops, test
// harnesses, serofsck -online) call AuditStep directly — the engine is
// shared, so inline steps and background steps advance the same
// rounds.
//
// The round and detection-latency contract is the core engine's (see
// core/incremental.go): with L heated lines and a step batch of b, a
// tamper of an already-heated line is detected within at most
// 2*ceil(L/b) steps. The auditor registers itself as the device's
// read observer, so blocks the cleaner (or any reader) pulls off the
// medium reorder the current round's worklist toward recently touched
// regions — piggybacked checks that never change the bound.
//
// Audit runs off the foreground clock (device.VerifyLineOffClock):
// audited and unaudited runs are byte-identical in virtual time, and
// the checks' would-be cost is reported as Stats.AuditDeviceNS. The
// real cost a live system pays is wall-clock stripe-lock contention,
// which the serving benchmarks measure.

// auditBatchLines is the default number of lines one background audit
// step verifies (mirrors cleanBatchSegments: small enough that a step
// never hogs a region, large enough to make round progress).
const auditBatchLines = 4

// AuditStats describes one incremental audit step (re-exported core
// engine report: lines checked, tamper findings, round completion and
// shadow device time).
type AuditStats = core.StepReport

// ensureAuditorLocked lazily builds the incremental audit engine and
// installs it as the device's read observer. Caller holds fs.mu
// exclusively.
func (fs *FS) ensureAuditorLocked() *core.IncrementalAuditor {
	if fs.auditor == nil {
		fs.auditor = core.NewIncrementalAuditor(fs.dev)
		fs.dev.SetReadObserver(fs.auditor.Observe)
	}
	return fs.auditor
}

// AuditStep runs one incremental audit step: up to batch heated lines
// (batch <= 0 means the auditBatchLines default) are verified, each
// under only its own stripe locks and off the foreground clock, with
// hinted (recently read) lines first. It is the cooperative form of
// the background auditor, mirroring CleanStep: call it from idle
// moments to spread continuous verification across the timeline the
// embedder controls. Safe for concurrent use with all FS operations
// and with the background auditor — all callers advance one shared
// round sequence.
//
// more is false when the device currently has no heated lines (the
// step had nothing to verify); the natural drive-a-full-round loop is
// `for { if st, more := fs.AuditStep(b); !more || st.RoundComplete {
// break } }`.
func (fs *FS) AuditStep(batch int) (AuditStats, bool) {
	if batch <= 0 {
		batch = auditBatchLines
	}
	fs.mu.Lock()
	aud := fs.ensureAuditorLocked()
	fs.mu.Unlock()

	tr := fs.dev.Tracer()
	t0 := fs.now()
	rep := aud.Step(batch)

	as := aud.Stats()
	fs.mu.Lock()
	fs.stats.AuditSteps = as.Steps
	fs.stats.AuditRounds = as.Rounds
	fs.stats.AuditLinesChecked = as.LinesChecked
	fs.stats.AuditFindings = as.Findings
	fs.stats.AuditPiggybacked = as.PiggybackHits
	fs.stats.AuditDeviceNS = as.DeviceNS
	fs.stats.AuditRepairs = as.Repairs
	fs.stats.AuditRepairFailures = as.RepairFailures
	fs.mu.Unlock()

	if rep.Checked > 0 {
		fs.emitSpan(tr, "audit-step", t0, int64(rep.Checked), int64(rep.DeviceNS))
	}
	if rep.RoundComplete {
		fs.emitSpan(tr, "audit-round", t0, int64(as.Rounds), int64(as.Findings))
	}
	return rep, rep.Checked > 0
}

// SetAuditRepairer arms self-healing on the incremental auditor: every
// tamper finding is handed to fn (typically the striped array's
// RepairLine — reconstruct the true line from cross-device parity and
// splice it back), then re-verified to confirm the heal. The finding
// is still recorded either way; Stats.AuditRepairs and
// Stats.AuditRepairFailures count the outcomes. Pass nil to disarm.
func (fs *FS) SetAuditRepairer(fn core.Repairer) {
	fs.mu.Lock()
	aud := fs.ensureAuditorLocked()
	fs.mu.Unlock()
	aud.SetRepairer(fn)
}

// AuditFindings returns the tampered-line reports the incremental
// auditor has accumulated, in detection order (nil when no auditor has
// run or nothing was found).
func (fs *FS) AuditFindings() []device.VerifyReport {
	fs.mu.RLock()
	aud := fs.auditor
	fs.mu.RUnlock()
	if aud == nil {
		return nil
	}
	return aud.Findings()
}

// kickAuditorLocked arms (on first use) and wakes the background
// auditor goroutine — the AuditEvery cadence's kick point, called from
// appendBlock. Caller holds fs.mu exclusively. A no-op when the policy
// is off or the FS is closed; the wake never blocks (one pending wake
// is all the level-triggered loop needs — coalesced kicks only slow
// the cadence, never the documented step bound).
func (fs *FS) kickAuditorLocked() {
	if fs.p.AuditEvery <= 0 || fs.closed {
		return
	}
	if fs.aKick == nil {
		fs.ensureAuditorLocked()
		fs.aKick = make(chan struct{}, 1)
		fs.aStop = make(chan struct{})
		fs.aDone = make(chan struct{})
		go fs.auditorLoop(fs.aKick, fs.aStop, fs.aDone)
	}
	select {
	case fs.aKick <- struct{}{}:
	default:
	}
}

// auditorLoop is the background auditor goroutine: one audit step per
// kick. Channels are passed in rather than read from fs so Close can
// tear the fields down without racing the loop.
func (fs *FS) auditorLoop(kick, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-kick:
		}
		fs.AuditStep(auditBatchLines)
	}
}
