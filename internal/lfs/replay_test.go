package lfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"sero/internal/device"
)

// journalParams is the standard journal-heavy test configuration: the
// first Sync writes the anchoring checkpoint, everything after rides
// the summary tail.
func journalParams() Params {
	p := smallParams()
	p.CheckpointEvery = 1 << 20
	return p
}

func TestJournalSyncLeavesCheckpointAlone(t *testing.T) {
	fs := testFS(t, 1024, journalParams())
	ino, _ := fs.Create("a", 0)
	if err := fs.WriteFile(ino, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // anchoring checkpoint
		t.Fatal(err)
	}
	// Snapshot the whole checkpoint region; blocks beyond the written
	// checkpoint are unreadable (never written) and stay that way.
	slot := fs.slotBlocks()
	before := make([][]byte, slot)
	for i := 0; i < slot; i++ {
		before[i], _ = fs.Device().MRS(uint64(i))
	}
	for round := 0; round < 3; round++ {
		if err := fs.WriteFile(ino, payload(byte(10+round), 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < slot; i++ {
		after, _ := fs.Device().MRS(uint64(i))
		if !bytes.Equal(before[i], after) {
			t.Fatalf("journaled sync rewrote checkpoint block %d", i)
		}
	}
	st := fs.Stats()
	if st.Checkpoints != 1 || st.JournalRecords != 3 {
		t.Fatalf("stats %+v: want 1 checkpoint, 3 journal records", st)
	}
	// And the journaled syncs are still fully durable.
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile(ino)
	if err != nil || !bytes.Equal(got, payload(12, 2*device.DataBytes)) {
		t.Fatalf("journaled state lost across mount: %v", err)
	}
}

// TestReplayedMountMatchesCheckpointMount is the acceptance check: a
// mount that rolls forward through the summary chain must be
// state-identical to a mount of the same history anchored by a fresh
// checkpoint.
func TestReplayedMountMatchesCheckpointMount(t *testing.T) {
	build := func() *FS {
		fs := testFS(t, 1024, journalParams())
		for i := 0; i < 4; i++ {
			ino, err := fs.Create(fmt.Sprintf("f%d", i), uint8(i%2))
			if err != nil {
				t.Fatal(err)
			}
			if err := fs.WriteFile(ino, payload(byte(i), (1+i)*device.DataBytes)); err != nil {
				t.Fatal(err)
			}
			if err := fs.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Rename("f1", "r1"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Delete("f2"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	replayed := build()
	ckpted := build()
	if err := ckpted.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	a, err := Mount(replayed.Device(), replayed.Params())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mount(ckpted.Device(), ckpted.Params())
	if err != nil {
		t.Fatal(err)
	}
	na, nb := a.Names(), b.Names()
	if len(na) != len(nb) {
		t.Fatalf("name counts diverge: %v vs %v", na, nb)
	}
	for _, n := range na {
		ia, err := a.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := b.Lookup(n)
		if err != nil {
			t.Fatalf("checkpoint mount lacks %s: %v", n, err)
		}
		if ia != ib {
			t.Fatalf("%s: ino %d vs %d", n, ia, ib)
		}
		ca, err := a.ReadFile(ia)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.ReadFile(ib)
		if err != nil || !bytes.Equal(ca, cb) {
			t.Fatalf("%s: contents diverge (%v)", n, err)
		}
	}
	// The inode counter must agree too: the next create allocates the
	// same ino either way.
	ia, err := a.Create("next", 0)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.Create("next", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ia != ib {
		t.Fatalf("next ino diverges: %d vs %d", ia, ib)
	}
}

func TestRenameDurableAcrossMount(t *testing.T) {
	fs := testFS(t, 1024, journalParams())
	a, _ := fs.Create("a", 0)
	b, _ := fs.Create("b", 0)
	want := payload(7, 2*device.DataBytes)
	if err := fs.WriteFile(b, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(a, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("d", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	names := fs2.Names()
	if len(names) != 2 {
		t.Fatalf("names after mount: %v", names)
	}
	if _, err := fs2.Lookup("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted file resurrected: %v", err)
	}
	if _, err := fs2.Lookup("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old name survived rename: %v", err)
	}
	ino, err := fs2.Lookup("c")
	if err != nil || ino != b {
		t.Fatalf("rename lost: %v", err)
	}
	got, err := fs2.ReadFile(ino)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("renamed content lost: %v", err)
	}
	if _, err := fs2.Lookup("d"); err != nil {
		t.Fatalf("created file lost: %v", err)
	}
}

func TestRenameValidation(t *testing.T) {
	fs := testFS(t, 1024, journalParams())
	if _, err := fs.Create("x", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("y", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("ghost", "z"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err %v", err)
	}
	if err := fs.Rename("x", "y"); !errors.Is(err, ErrExists) {
		t.Fatalf("err %v", err)
	}
	if err := fs.Rename("x", ""); err == nil {
		t.Fatal("empty target accepted")
	}
	// Renaming a heated file is legal: the name is directory metadata,
	// not part of the tamper-evident line.
	ino, _ := fs.Create("hot", 0)
	if err := fs.WriteFile(ino, payload(3, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.HeatFile("hot"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("hot", "cold"); err != nil {
		t.Fatal(err)
	}
	reps, err := fs.VerifyFile("cold")
	if err != nil || len(reps) != 1 || !reps[0].OK {
		t.Fatalf("renamed heated file fails verify: %v %v", reps, err)
	}
}

// TestJournalJumpSpansSegments drives enough journaled syncs that the
// chain overflows its first segment and links into a second one.
func TestJournalJumpSpansSegments(t *testing.T) {
	fs := testFS(t, 2048, journalParams())
	inos := make([]Ino, 6)
	for i := range inos {
		inos[i], _ = fs.Create(fmt.Sprintf("f%d", i), 0)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 24; round++ {
		for i, ino := range inos {
			if err := fs.WriteFile(ino, payload(byte(round*7+i), 2*device.DataBytes)); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	journalSegs := 0
	for _, s := range fs.Segments() {
		if s.Journal {
			journalSegs++
		}
	}
	if journalSegs < 2 {
		t.Fatalf("chain never spanned segments: %d journal-flagged segments", journalSegs)
	}
	rep, err := CheckJournal(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jumps < 1 || !rep.Healthy() {
		t.Fatalf("report %+v: want ≥1 jump, healthy", rep)
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	for i, ino := range inos {
		got, rerr := fs2.ReadFile(ino)
		if rerr != nil || !bytes.Equal(got, payload(byte(23*7+i), 2*device.DataBytes)) {
			t.Fatalf("file %d lost across jumped chain: %v", i, rerr)
		}
	}
	// The remounted FS continues the chain where it stopped.
	if err := fs2.WriteFile(inos[0], payload(99, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Sync(); err != nil {
		t.Fatal(err)
	}
	// Overwriting block 0 does not truncate: the old second block
	// survives behind the fresh first one.
	want := append([]byte(nil), payload(99, device.DataBytes)...)
	want = append(want, payload(byte(23*7), 2*device.DataBytes)[device.DataBytes:]...)
	fs3, err := Mount(fs2.Device(), fs2.Params())
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs3.ReadFile(inos[0])
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-remount sync lost: %v", err)
	}
}

// TestHeatedFileSurvivesReplay pins the HeatFile journaling path: the
// heat relocation rewrites the imap device-direct, so the following
// summary record must carry it and a replayed mount must find the
// frozen inode inside the line — verifiable, readable, back-pointers
// agreeing.
func TestHeatedFileSurvivesReplay(t *testing.T) {
	fs := testFS(t, 1024, journalParams())
	ino, _ := fs.Create("evidence", 1)
	data := payload(7, 3*device.DataBytes)
	if err := fs.WriteFile(ino, data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // anchoring checkpoint
		t.Fatal(err)
	}
	if _, err := fs.HeatFile("evidence"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // summary record carries the heat
		t.Fatal(err)
	}
	if st := fs.Stats(); st.Checkpoints != 1 || st.JournalRecords == 0 {
		t.Fatalf("heat sync did not journal: %+v", st)
	}
	rep, err := CheckJournal(fs.Device(), fs.Params())
	if err != nil || !rep.Healthy() {
		t.Fatalf("journal report %+v: %v", rep, err)
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	st, err := fs2.Stat(ino)
	if err != nil || !st.Heated() {
		t.Fatalf("heated flag lost through replay: %v", err)
	}
	got, err := fs2.ReadFile(ino)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("heated content lost through replay: %v", err)
	}
	reps, err := fs2.VerifyFile("evidence")
	if err != nil || len(reps) != 1 || !reps[0].OK {
		t.Fatalf("heated file fails verify after replay: %v %v", reps, err)
	}
}

func TestCheckpointEveryPolicy(t *testing.T) {
	// CheckpointEvery=1 reproduces the pre-journal behaviour: every
	// non-empty Sync rewrites the checkpoint.
	p := smallParams()
	p.CheckpointEvery = 1
	fs := testFS(t, 1024, p)
	ino, _ := fs.Create("x", 0)
	for round := 0; round < 4; round++ {
		if err := fs.WriteFile(ino, payload(byte(round), device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	st := fs.Stats()
	if st.Checkpoints != 4 || st.JournalRecords != 0 {
		t.Fatalf("CheckpointEvery=1 stats %+v", st)
	}

	// A finite interval flips from records to a checkpoint once the
	// appended-block budget is spent.
	p.CheckpointEvery = 8
	fs = testFS(t, 1024, p)
	ino, _ = fs.Create("x", 0)
	for round := 0; round < 6; round++ {
		if err := fs.WriteFile(ino, payload(byte(round), 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	st = fs.Stats()
	if st.Checkpoints < 2 || st.JournalRecords == 0 {
		t.Fatalf("CheckpointEvery=8 stats %+v: want both checkpoints and records", st)
	}

	if _, err := New(fs.Device(), Params{SegmentBlocks: 16, CheckpointBlocks: 16, CheckpointEvery: -1}); err == nil {
		t.Fatal("negative CheckpointEvery accepted")
	}
}

func TestExplicitCheckpointResetsTail(t *testing.T) {
	fs := testFS(t, 1024, journalParams())
	ino, _ := fs.Create("x", 0)
	for round := 0; round < 3; round++ {
		if err := fs.WriteFile(ino, payload(byte(round), device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := CheckJournal(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || rep.Epoch != 1 { // first sync checkpointed
		t.Fatalf("pre-checkpoint report %+v", rep)
	}
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err = CheckJournal(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 0 || rep.Epoch != 2 || !rep.Healthy() {
		t.Fatalf("post-checkpoint report %+v", rep)
	}
}

// TestTornTailRecoversCleanly scribbles over the newest record and
// expects the mount to stop at the previous one — no error, previous
// state intact.
func TestTornTailRecoversCleanly(t *testing.T) {
	fs := testFS(t, 1024, journalParams())
	ino, _ := fs.Create("x", 0)
	if err := fs.WriteFile(ino, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(ino, payload(2, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // record 1
		t.Fatal(err)
	}
	want := payload(2, device.DataBytes)
	if err := fs.WriteFile(ino, payload(3, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // record 2 — about to be torn
		t.Fatal(err)
	}
	// Tear the newest record: it sits immediately in front of the
	// reserved promise slot. Zero its block.
	tear := fs.jpromise - 1
	if err := fs.Device().WriteBlocks(tear, [][]byte{make([]byte, device.DataBytes)}); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatalf("mount errored on torn tail: %v", err)
	}
	got, err := fs2.ReadFile(ino)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("state before the torn record lost: %v", err)
	}
}

// TestStaleSlotFallback corrupts the newest checkpoint slot outright
// (a defect, not a crash) and expects the mount to fall back to the
// older slot's consistent state.
func TestStaleSlotFallback(t *testing.T) {
	fs := testFS(t, 1024, journalParams())
	ino, _ := fs.Create("x", 0)
	if err := fs.WriteFile(ino, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // epoch 1, slot 0
		t.Fatal(err)
	}
	if err := fs.WriteFile(ino, payload(2, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // journal record on epoch 1's chain
		t.Fatal(err)
	}
	want := payload(2, device.DataBytes)
	if err := fs.Checkpoint(); err != nil { // epoch 2, slot 1
		t.Fatal(err)
	}
	// Corrupt slot 1 (garbage length field fails validation).
	slot := fs.slotBlocks()
	garbage := make([]byte, device.DataBytes)
	for i := range garbage {
		garbage[i] = 0xFF
	}
	if err := fs.Device().WriteBlocks(uint64(slot), [][]byte{garbage}); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatalf("mount with one dead slot failed: %v", err)
	}
	got, err := fs2.ReadFile(ino)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("fallback slot lost acked state: %v", err)
	}
}

// benchmarkSyncStyle measures the virtual cost of small-append syncs
// when every Sync checkpoints (every=1) versus when Sync rides the
// summary tail. The FS carries a realistic metadata population so the
// checkpoint cost reflects what Sync used to pay on every ack.
func benchmarkSyncStyle(b *testing.B, every int) {
	const files = 320
	for i := 0; i < b.N; i++ {
		p := Params{
			SegmentBlocks:    64,
			CheckpointBlocks: 64,
			WritebackBlocks:  64,
			CheckpointEvery:  every,
			HeatAware:        true,
			ReserveSegments:  2,
		}
		fs := testFS(b, 16384, p)
		inos := make([]Ino, files)
		for j := range inos {
			var err error
			if inos[j], err = fs.Create(fmt.Sprintf("f%03d", j), 0); err != nil {
				b.Fatal(err)
			}
			if err := fs.WriteFile(inos[j], payload(byte(j), device.DataBytes)); err != nil {
				b.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			b.Fatal(err)
		}
		const syncs = 64
		start := fs.Device().Clock().Now()
		for n := 0; n < syncs; n++ {
			if err := fs.WriteFile(inos[n%files], payload(byte(n), device.DataBytes)); err != nil {
				b.Fatal(err)
			}
			if err := fs.Sync(); err != nil {
				b.Fatal(err)
			}
		}
		virt := fs.Device().Clock().Now() - start
		b.ReportMetric(float64(virt.Microseconds())/syncs, "virt-µs/sync")
	}
}

func BenchmarkSyncCheckpoint(b *testing.B) { benchmarkSyncStyle(b, 1) }
func BenchmarkSyncJournal(b *testing.B)    { benchmarkSyncStyle(b, 1<<20) }

// benchmarkMountReplay measures mount-time roll-forward cost over a
// summary tail of the given length.
func benchmarkMountReplay(b *testing.B, tail int) {
	for i := 0; i < b.N; i++ {
		fs := testFS(b, 8192, Params{
			SegmentBlocks:    64,
			CheckpointBlocks: 64,
			WritebackBlocks:  64,
			CheckpointEvery:  1 << 20,
			HeatAware:        true,
			ReserveSegments:  2,
		})
		ino, err := fs.Create("bench", 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := fs.WriteFile(ino, payload(0, device.DataBytes)); err != nil {
			b.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			b.Fatal(err)
		}
		for n := 0; n < tail; n++ {
			if err := fs.WriteFile(ino, payload(byte(n), device.DataBytes)); err != nil {
				b.Fatal(err)
			}
			if err := fs.Sync(); err != nil {
				b.Fatal(err)
			}
		}
		start := fs.Device().Clock().Now()
		fs2, err := Mount(fs.Device(), fs.Params())
		if err != nil {
			b.Fatal(err)
		}
		virt := fs.Device().Clock().Now() - start
		if fs2.jtrace.records != tail {
			b.Fatalf("replayed %d records, want %d", fs2.jtrace.records, tail)
		}
		b.ReportMetric(float64(virt.Milliseconds()), "virt-ms/mount")
		b.ReportMetric(float64(tail), "records")
	}
}

func BenchmarkMountReplayShort(b *testing.B) { benchmarkMountReplay(b, 4) }
func BenchmarkMountReplayLong(b *testing.B)  { benchmarkMountReplay(b, 64) }

// benchmarkMountNamespace measures the two mount regimes — the
// table-driven rebuild and the full-walk fallback — over an image with
// the given namespace width and journal-tail length: the liveness
// table makes mount cost O(segments + replayed tail) where the walk
// pays O(inodes).
func benchmarkMountNamespace(b *testing.B, files, tail int) {
	p := Params{
		SegmentBlocks:    64,
		CheckpointBlocks: 128,
		WritebackBlocks:  64,
		CheckpointEvery:  1 << 20,
		HeatAware:        true,
		ReserveSegments:  2,
	}
	for i := 0; i < b.N; i++ {
		fs := testFS(b, 8192, p)
		inos := make([]Ino, files)
		for j := range inos {
			var err error
			if inos[j], err = fs.Create(fmt.Sprintf("f%04d", j), 0); err != nil {
				b.Fatal(err)
			}
			if err := fs.WriteFile(inos[j], payload(byte(j), device.DataBytes)); err != nil {
				b.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			b.Fatal(err)
		}
		if err := fs.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		for n := 0; n < tail; n++ {
			if err := fs.WriteFile(inos[n%files], payload(byte(n), device.DataBytes)); err != nil {
				b.Fatal(err)
			}
			if err := fs.Sync(); err != nil {
				b.Fatal(err)
			}
		}
		dev := fs.Device()
		t0 := dev.Clock().Now()
		tab, err := Mount(dev, p)
		if err != nil {
			b.Fatal(err)
		}
		tableCost := dev.Clock().Now() - t0
		if !tab.MountReport().TableMount {
			b.Fatalf("mount fell back: %q", tab.MountReport().Fallback)
		}
		pw := p
		pw.NoLivenessTable = true
		t1 := dev.Clock().Now()
		walk, err := Mount(dev, pw)
		if err != nil {
			b.Fatal(err)
		}
		walkCost := dev.Clock().Now() - t1
		b.ReportMetric(float64(tableCost.Microseconds()), "virt-µs/table-mount")
		b.ReportMetric(float64(walkCost.Microseconds()), "virt-µs/walk-mount")
		b.ReportMetric(float64(walkCost)/float64(tableCost), "speedup")
		b.ReportMetric(float64(walk.MountReport().InodesRead), "inodes-walked")
	}
}

// BenchmarkMountReplayWide is the large-namespace regime: many files,
// short tail — the walk's worst case and the table's best.
func BenchmarkMountReplayWide(b *testing.B) { benchmarkMountNamespace(b, 480, 4) }

// BenchmarkMountReplayDeep is the long-tail regime: few files, a long
// journal tail — replay dominates and both mounts converge.
func BenchmarkMountReplayDeep(b *testing.B) { benchmarkMountNamespace(b, 12, 96) }
