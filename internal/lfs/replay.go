package lfs

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"sero/internal/device"
)

// Mount-time roll-forward. A mount loads the newest valid checkpoint
// slot and replays the epoch's summary chain record by record:
// sequence numbers must be contiguous, each checksum must chain from
// the previous one, and the first torn, stale or malformed record ends
// the chain *cleanly* — recovery surfaces the last consistent state,
// never an error, because a torn tail is the expected shape of a
// crash. Replay rewrites the in-memory maps (imap, directory,
// next-ino) and records which inos the tail touched; liveness is then
// rebuilt one of two ways:
//
//   - table-driven (the fast path): the slot's liveness table already
//     names every live block and its owner as of the checkpoint, so
//     only the inos the replayed tail touched need their inodes
//     re-read — mount cost is O(segments + replayed tail), independent
//     of the namespace size;
//   - full walk (the fallback): when the table is absent, torn or
//     fails its cross-check, every inode in the imap is read back, the
//     pre-table behaviour. The walk fans out over Params.Concurrency
//     worker planes (ino-sorted static split, slowest-worker virtual
//     time — the Audit contract).
//
// Either way all liveness is stamped with one timestamp taken after
// the reads, so mount-time segment ages — and with them the cleaner's
// future victim choices — depend on neither map iteration order nor
// the worker count, and a table mount is state-identical to a
// walk mount of the same image.

// replayTrace records what the roll-forward pass saw, for diagnostics
// and serofsck.
type replayTrace struct {
	epoch     uint64
	writtenAt time.Duration
	jstart    uint64
	records   int // delta records applied
	jumps     int
	blocks    int // total blocks the replayed tail occupies
	appended  int // log blocks the replayed records cover (policy seed)
	lastSeq   uint64
	stop      string
	// latest holds the newest data back-pointer per (ino, idx) seen in
	// the applied records, for the fsck imap cross-check.
	latest map[blockKey]uint64
	// touched marks inos whose liveness the replayed tail may have
	// changed (imap deltas and data back-pointers): a table-driven
	// mount discards their table entries and re-reads their inodes.
	touched map[Ino]bool
	// table carries the checkpoint slot's parsed liveness table into
	// the liveness rebuild (nil when absent or rejected), with
	// tablePresent/tableStop describing why for diagnostics.
	table        []liveRef
	tablePresent bool
	tableStop    string
}

type blockKey struct {
	ino Ino
	idx int32
}

// Mount reconstructs a file system from a device previously formatted
// and synced by this package: it loads the newest valid checkpoint
// slot, rolls forward through the summary chain, and rebuilds all
// in-memory state (live maps, segment states, pins) from the slot's
// liveness table — falling back to a fanned-out walk of the inodes the
// imap references — plus the device's heated-line registry. The
// journal chain is adopted as-is, so the mounted FS keeps appending
// summary records where the previous incarnation stopped. A medium
// whose checkpoint slots are both damaged refuses to mount
// (ErrTornCheckpoint) rather than coming up empty.
func Mount(dev device.Dev, p Params) (*FS, error) {
	fs, err := New(dev, p)
	if err != nil {
		return nil, err
	}
	if err := fs.loadAndReplay(); err != nil {
		return nil, err
	}
	if err := fs.rebuildLiveness(); err != nil {
		return nil, err
	}
	// Pin segments containing heated lines, per the device registry.
	for _, li := range dev.Lines() {
		fs.sm.pin(li.Start, int(li.Blocks()))
	}
	// Segments that hold live or heated data are full; the rest are
	// free. (Active appenders are not restored; new writes open fresh
	// segments.) Segments carrying the replayed chain — or its tail
	// promise slot — must not be handed out to fresh appends either,
	// whatever their live count: overwriting a chain block would sever
	// the next crash-mount's replay.
	for _, s := range fs.sm.segs {
		if s.state == SegPinned {
			continue
		}
		if s.live > 0 || s.journal {
			s.state = SegFull
			s.next = fs.p.SegmentBlocks
		}
	}
	return fs, nil
}

// rebuildLiveness reconstructs the live map, owner map and per-segment
// usage from the checkpointed liveness table when one was adopted, and
// from the full inode walk otherwise. All liveness is stamped with a
// single timestamp taken after every device read, so the resulting
// state is identical for any fan-out width and any map iteration
// order.
func (fs *FS) rebuildLiveness() error {
	t := fs.jtrace
	tr := fs.dev.Tracer()
	t0 := fs.now()
	fs.mstats = MountStats{Workers: fs.p.Concurrency}
	if t.table == nil {
		fs.mstats.Fallback = t.tableStop
		if err := fs.walkLiveness(); err != nil {
			return err
		}
		fs.emitSpan(tr, "mount-walk", t0, int64(fs.mstats.InodesRead), 0)
		return nil
	}
	// Table-driven: entries of inos the replayed tail touched are
	// stale — those inos' inodes are re-read from the medium (the
	// O(replayed tail) part); everything else is adopted as written.
	keep := make([]liveRef, 0, len(t.table))
	for _, r := range t.table {
		if !t.touched[r.ino] {
			keep = append(keep, r)
		}
	}
	inos := make([]Ino, 0, len(t.touched))
	for ino := range t.touched {
		if _, ok := fs.imap[ino]; ok {
			inos = append(inos, ino)
		}
	}
	sortInos(inos)
	if err := fs.loadInodesFanned(inos); err != nil {
		return err
	}
	now := fs.now()
	for _, r := range keep {
		fs.sm.markLive(r.pba, now)
		fs.owners[r.pba] = blockRef{ino: r.ino, idx: int(r.idx)}
	}
	fs.markInodesLive(inos, now)
	fs.mstats.TableMount = true
	fs.mstats.TableRefs = len(keep)
	fs.mstats.InodesRead = len(inos)
	fs.emitSpan(tr, "mount-table", t0, int64(len(keep)), int64(len(inos)))
	return nil
}

// walkLiveness is the fallback liveness rebuild: read every inode the
// imap references (fanned over Params.Concurrency worker planes, in
// ino-sorted order) and mark every block they own live under one
// timestamp.
func (fs *FS) walkLiveness() error {
	inos := make([]Ino, 0, len(fs.imap))
	for ino := range fs.imap {
		inos = append(inos, ino)
	}
	sortInos(inos)
	if err := fs.loadInodesFanned(inos); err != nil {
		return err
	}
	fs.markInodesLive(inos, fs.now())
	fs.mstats.InodesRead = len(inos)
	return nil
}

// loadInodesFanned reads and caches the inodes of the given inos
// (which must be imap-resident and ino-sorted), fanning the block
// reads out over Params.Concurrency device worker planes. The reads
// are issued in block-address order — each worker's contiguous share
// then covers one run of the log, keeping its seeks local — and the
// split is fixed by the sorted input, so virtual time is
// deterministic. Failures are surfaced for the lowest failing ino,
// exactly as the serial walk did.
func (fs *FS) loadInodesFanned(inos []Ino) error {
	if len(inos) == 0 {
		return nil
	}
	order := make([]int, len(inos))
	pbas := make([]uint64, len(inos))
	for i := range inos {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return fs.imap[inos[order[a]]] < fs.imap[inos[order[b]]] })
	for i, oi := range order {
		pbas[i] = fs.imap[inos[oi]]
	}
	bufs, errs := fs.dev.ReadBlocksFanned(pbas, fs.p.Concurrency)
	byIno := make(map[Ino]int, len(inos)) // ino -> index into bufs/errs
	for i, oi := range order {
		byIno[inos[oi]] = i
	}
	for _, ino := range inos {
		i := byIno[ino]
		if errs[i] != nil {
			return fmt.Errorf("lfs: reading inode %d at %d: %w", ino, pbas[i], errs[i])
		}
		in, err := UnmarshalInode(bufs[i])
		if err != nil {
			return err
		}
		if in.Ino != ino {
			return fmt.Errorf("%w: imap says %d, block says %d", ErrBadInode, ino, in.Ino)
		}
		fs.cacheInode(in)
	}
	return nil
}

// markInodesLive marks the inode block and every data block of each
// given ino live under the single timestamp now, from the cached
// inodes. Heated inos are skipped: their blocks are covered by line
// pins, not the live map.
func (fs *FS) markInodesLive(inos []Ino, now time.Duration) {
	for _, ino := range inos {
		ipba := fs.imap[ino]
		in, _ := fs.cachedInode(ino)
		if in.Heated() {
			continue
		}
		fs.sm.markLive(ipba, now)
		fs.owners[ipba] = blockRef{ino: ino, idx: -1}
		for idx, pba := range in.Blocks {
			if pba == 0 {
				continue // hole sentinel, not a data block
			}
			fs.sm.markLive(pba, now)
			fs.owners[pba] = blockRef{ino: ino, idx: idx}
		}
	}
}

// loadAndReplay loads the newest valid checkpoint slot into the
// in-memory maps and rolls the summary chain forward. Shared by Mount
// (which then rebuilds liveness, strictly) and CheckJournal (which
// then cross-checks, tolerantly). A region where both slots hold
// damaged data is refused as ErrTornCheckpoint — mounting it as a
// pristine empty FS would silently discard the namespace.
func (fs *FS) loadAndReplay() error {
	tr := fs.dev.Tracer()
	t0 := fs.now()
	ck, torn := fs.loadBestCheckpoint()
	if ck == nil {
		if torn {
			return fmt.Errorf("%w (checkpoint region damaged, refusing to mount as empty)",
				ErrTornCheckpoint)
		}
		return fmt.Errorf("%w: no valid checkpoint slot", ErrBadCheckpoint)
	}
	fs.next = ck.next
	fs.ckptEpoch = ck.epoch
	for ino, pba := range ck.imap {
		fs.imap[ino] = pba
	}
	for name, ino := range ck.dir {
		fs.dir[name] = ino
		fs.names[ino] = name
	}
	fs.jtrace = fs.replayChain(ck)
	fs.appended = uint64(fs.jtrace.appended + fs.jtrace.blocks)
	fs.emitSpan(tr, "mount-replay", t0, int64(fs.jtrace.records), int64(fs.jtrace.blocks))
	return nil
}

// replayChain rolls the in-memory maps forward through the summary
// chain anchored at ck, restoring the journal write position so the
// mounted FS continues the chain. It never fails: any invalid record
// is the end of the chain. Chain positions are deterministic — the
// anchor is the checkpoint's promise slot, a delta record is followed
// immediately by the next promise slot, and a jump names its target —
// so no scanning is involved. Every segment the chain touches is
// flagged (segment.journal) to shield it from the cleaner and from
// reallocation.
func (fs *FS) replayChain(ck *ckptImage) *replayTrace {
	t := &replayTrace{
		epoch:        ck.epoch,
		writtenAt:    time.Duration(ck.writtenAt),
		jstart:       ck.jstart,
		latest:       make(map[blockKey]uint64),
		touched:      make(map[Ino]bool),
		table:        ck.table,
		tablePresent: ck.tablePresent,
		tableStop:    ck.tableStop,
	}
	fs.jepoch = ck.epoch
	fs.jseq = 1
	fs.jchain = chainSeed(ck.epoch)
	fs.jpromise = 0
	if ck.jstart == 0 {
		t.stop = "no journal anchor"
		return t
	}
	seg := fs.sm.segOf(ck.jstart)
	if seg == nil {
		t.stop = "journal anchor outside the log"
		return t
	}
	seg.journal = true
	visited := map[uint64]bool{}
	pos := ck.jstart
	for !visited[pos] {
		visited[pos] = true
		off := int(pos - seg.start)
		first, err := fs.dev.MRS(pos)
		if err != nil {
			t.stop = "end of chain (unreadable block)"
			break
		}
		h, ok := parseRecHeader(first)
		if !ok {
			t.stop = "end of chain"
			break
		}
		if h.seq != fs.jseq {
			t.stop = fmt.Sprintf("sequence break (%d, want %d)", h.seq, fs.jseq)
			break
		}
		if off+h.nblocks > fs.p.SegmentBlocks {
			t.stop = "record overflows its segment"
			break
		}
		payload := make([]byte, 0, h.payloadLen)
		payload = append(payload, first[sumHdrBytes:]...)
		torn := false
		for b := 1; b < h.nblocks; b++ {
			data, rerr := fs.dev.MRS(pos + uint64(b))
			if rerr != nil {
				torn = true
				break
			}
			payload = append(payload, data...)
		}
		if torn {
			t.stop = "torn record (unreadable tail)"
			break
		}
		payload = payload[:h.payloadLen]
		want := chainNext(fs.jchain, h.seq, h.kind, payload)
		if want != h.chain {
			t.stop = "checksum break (torn or stale record)"
			break
		}
		if h.kind == recJump {
			target := binary.BigEndian.Uint64(payload)
			ns := fs.sm.segOf(target)
			if ns == nil || visited[target] {
				t.stop = "invalid jump target"
				break
			}
			ns.journal = true
			t.jumps++
			t.blocks += h.nblocks
			fs.jseq++
			fs.jchain = want
			seg, pos = ns, target
			continue
		}
		d, derr := decodeDelta(payload)
		if derr != nil {
			t.stop = "malformed delta"
			break
		}
		fs.applyDelta(d, t)
		t.records++
		t.blocks += h.nblocks
		t.lastSeq = h.seq
		fs.jseq++
		fs.jchain = want
		// The next chain element lives in the promise slot reserved
		// right behind this record.
		pos += uint64(h.nblocks)
		if ns := fs.sm.segOf(pos); ns != nil {
			ns.journal = true
			seg = ns
		} else {
			t.stop = "chain ran off the log"
			break
		}
	}
	if t.stop == "" {
		t.stop = "chain loop"
	}
	// pos is where the next chain element must be written: the mounted
	// FS continues the chain exactly there. A pathological chain (loop,
	// or one running off the log) disables the journal instead; every
	// following Sync then falls back to full checkpoints.
	if t.stop == "chain loop" || fs.sm.segOf(pos) == nil {
		fs.jpromise = 0
	} else {
		fs.jpromise = pos
	}
	return t
}

// applyDelta folds one summary record into the in-memory maps, marking
// every ino whose liveness it may have changed as replay-touched — the
// increments that keep the checkpointed liveness table current across
// the journal tail.
func (fs *FS) applyDelta(d summaryDelta, t *replayTrace) {
	if d.next > fs.next {
		fs.next = d.next
	}
	for _, op := range d.dirOps {
		switch op.op {
		case dirOpCreate:
			fs.dir[op.name] = op.ino
			fs.names[op.ino] = op.name
		case dirOpRemove:
			delete(fs.dir, op.name)
			delete(fs.names, op.ino)
		case dirOpRename:
			delete(fs.dir, op.name)
			fs.dir[op.newName] = op.ino
			fs.names[op.ino] = op.newName
		}
	}
	for _, e := range d.imap {
		t.touched[e.ino] = true
		if e.remove {
			delete(fs.imap, e.ino)
		} else {
			fs.imap[e.ino] = e.pba
		}
	}
	for _, bp := range d.blocks {
		t.touched[bp.ino] = true
		t.latest[blockKey{ino: bp.ino, idx: bp.idx}] = bp.pba
	}
	// Data back-pointers plus inode rewrites approximate the appends
	// this record covered — the CheckpointEvery policy seed, so the
	// replay-tail bound holds across remounts instead of resetting.
	t.appended += len(d.blocks) + len(d.imap)
}

// JournalReport summarises the health of the on-medium summary chain,
// as verified by CheckJournal.
type JournalReport struct {
	// Epoch is the checkpoint epoch the chain hangs off.
	Epoch uint64
	// CheckpointAge is the virtual time elapsed since the checkpoint
	// was written.
	CheckpointAge time.Duration
	// Records and Jumps count the valid records of the replayable
	// tail; TailBlocks is the log space the tail occupies.
	Records, Jumps, TailBlocks int
	// LastSeq is the sequence number of the last valid delta record.
	LastSeq uint64
	// Stop describes why the chain walk ended ("end of chain" is the
	// healthy case: the next record was simply never written).
	Stop string
	// Files and DirEntries describe the replayed state.
	Files, DirEntries int
	// ImapMismatches counts inode blocks the replayed imap points at
	// that do not parse as the right inode; BackPtrMismatches counts
	// journaled data back-pointers that disagree with the final
	// inodes. Both are 0 on a healthy image.
	ImapMismatches, BackPtrMismatches int
	// TablePresent reports that the newest checkpoint slot carries a
	// liveness table; TableValid that it parsed and cross-checked
	// against the slot's imap; TableStop describes why it did not.
	TablePresent, TableValid bool
	// TableStop is empty for a valid table; otherwise the reason the
	// table was rejected (a mount then falls back to the full walk).
	TableStop string
	// TableRefs counts liveness-table entries.
	TableRefs int
	// TableMismatches counts disagreements between the table and the
	// final inodes of replay-untouched files: blocks the inodes own
	// that the table misses or misattributes, and table entries no
	// inode backs. 0 on a healthy image.
	TableMismatches int
}

// Healthy reports whether the chain — and the liveness table, when one
// is present — verified clean.
func (r JournalReport) Healthy() bool {
	return r.ImapMismatches == 0 && r.BackPtrMismatches == 0 &&
		(!r.TablePresent || (r.TableValid && r.TableMismatches == 0))
}

// Summary renders the report in the serofsck style.
func (r JournalReport) Summary() string {
	s := fmt.Sprintf("summary chain: epoch %d, checkpoint age %v\n", r.Epoch, r.CheckpointAge)
	s += fmt.Sprintf("  replayable tail: %d records (+%d jumps) in %d blocks, last seq %d (%s)\n",
		r.Records, r.Jumps, r.TailBlocks, r.LastSeq, r.Stop)
	s += fmt.Sprintf("  replayed state: %d files, %d directory entries\n", r.Files, r.DirEntries)
	s += fmt.Sprintf("  back-pointer agreement: %d imap mismatches, %d block mismatches\n",
		r.ImapMismatches, r.BackPtrMismatches)
	switch {
	case !r.TablePresent:
		s += fmt.Sprintf("  liveness table: absent (%s)\n", r.TableStop)
	case !r.TableValid:
		s += fmt.Sprintf("  liveness table: REJECTED (%s) — mounts fall back to the full walk\n", r.TableStop)
	default:
		s += fmt.Sprintf("  liveness table: %d entries, %d disagreements with the inodes\n",
			r.TableRefs, r.TableMismatches)
	}
	return s
}

// CheckJournal verifies the summary chain the way a recovery fsck
// would: load the newest checkpoint, roll the chain forward (sequence
// continuity and chained checksums), then cross-check the replayed
// imap against the medium, the journaled back-pointers against the
// final inodes, and the checkpointed liveness table against the blocks
// those inodes actually own. Unlike Mount it is tolerant: a broken
// imap entry or a stale table entry is counted and reported, not a
// fatal error — serofsck's job is to describe the damage. The
// double-torn checkpoint region is the exception: with no consistent
// state to describe, CheckJournal surfaces ErrTornCheckpoint.
func CheckJournal(dev device.Dev, p Params) (JournalReport, error) {
	fs, err := New(dev, p)
	if err != nil {
		return JournalReport{}, err
	}
	if err := fs.loadAndReplay(); err != nil {
		return JournalReport{}, err
	}
	t := fs.jtrace
	r := JournalReport{
		Epoch:         t.epoch,
		CheckpointAge: fs.now() - t.writtenAt,
		Records:       t.records,
		Jumps:         t.jumps,
		TailBlocks:    t.blocks,
		LastSeq:       t.lastSeq,
		Stop:          t.stop,
		Files:         len(fs.imap),
		DirEntries:    len(fs.dir),
		TablePresent:  t.tablePresent,
		TableValid:    t.table != nil,
		TableStop:     t.tableStop,
		TableRefs:     len(t.table),
	}
	inodes := make(map[Ino]*Inode, len(fs.imap))
	for ino, pba := range fs.imap {
		data, rerr := dev.MRS(pba)
		if rerr != nil {
			r.ImapMismatches++
			continue
		}
		in, uerr := UnmarshalInode(data)
		if uerr != nil || in.Ino != ino {
			r.ImapMismatches++
			continue
		}
		inodes[ino] = in
	}
	for k, pba := range t.latest {
		in, ok := inodes[k.ino]
		if !ok {
			continue // deleted since (or already counted above)
		}
		if int(k.idx) >= len(in.Blocks) || in.Blocks[k.idx] != pba {
			r.BackPtrMismatches++
		}
	}
	if t.table != nil {
		r.TableMismatches = crossCheckTable(fs, t, inodes)
	}
	return r, nil
}

// crossCheckTable compares the checkpointed liveness table with the
// blocks the final inodes own, for every ino the replayed tail did not
// touch (touched inos' entries are discarded by a table mount, so
// their staleness is by design, not damage). Returns the disagreement
// count: blocks an inode owns that the table misses or misattributes,
// plus table entries no inode backs.
func crossCheckTable(fs *FS, t *replayTrace, inodes map[Ino]*Inode) int {
	want := make(map[uint64]blockRef)
	for ino, in := range inodes {
		if t.touched[ino] || in.Heated() {
			continue
		}
		want[fs.imap[ino]] = blockRef{ino: ino, idx: -1}
		for idx, pba := range in.Blocks {
			if pba != 0 {
				want[pba] = blockRef{ino: ino, idx: idx}
			}
		}
	}
	mismatches := 0
	got := make(map[uint64]blockRef, len(t.table))
	for _, ref := range t.table {
		if t.touched[ref.ino] {
			continue
		}
		if _, ok := inodes[ref.ino]; !ok {
			continue // unreadable inode: already an ImapMismatch
		}
		got[ref.pba] = blockRef{ino: ref.ino, idx: int(ref.idx)}
	}
	for pba, ref := range want {
		if g, ok := got[pba]; !ok || g != ref {
			mismatches++
		}
	}
	for pba := range got {
		if _, ok := want[pba]; !ok {
			mismatches++
		}
	}
	return mismatches
}
