package lfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"sero/internal/device"
)

// Tests for the checkpointed liveness table: the table-driven mount
// must be state-identical to the full-walk fallback for any workload,
// any crash point and any fan-out width; a damaged table must degrade
// to the walk, never corrupt liveness; and a double-torn checkpoint
// region must refuse to mount instead of coming up empty.

// mountFingerprint renders the complete recovered durable state of a
// mounted FS — namespace, imap, owner map, live map, segment table,
// journal position, stats and the cleaner's next victim choice — as a
// deterministic string, so two mounts can be compared byte for byte.
func mountFingerprint(fs *FS) string {
	var b strings.Builder
	fmt.Fprintf(&b, "next=%d appended=%d\n", fs.next, fs.appended)
	fmt.Fprintf(&b, "journal epoch=%d seq=%d chain=%d promise=%d\n",
		fs.jepoch, fs.jseq, fs.jchain, fs.jpromise)
	fmt.Fprintf(&b, "stats=%+v\n", fs.Stats())
	names := fs.Names()
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "dir %s=%d\n", n, fs.dir[n])
	}
	inos := make([]Ino, 0, len(fs.imap))
	for ino := range fs.imap {
		inos = append(inos, ino)
	}
	sortInos(inos)
	for _, ino := range inos {
		fmt.Fprintf(&b, "imap %d=%d\n", ino, fs.imap[ino])
	}
	pbas := make([]uint64, 0, len(fs.owners))
	for pba := range fs.owners {
		pbas = append(pbas, pba)
	}
	sort.Slice(pbas, func(i, j int) bool { return pbas[i] < pbas[j] })
	for _, pba := range pbas {
		ref := fs.owners[pba]
		fmt.Fprintf(&b, "owner %d={%d,%d} live=%v\n", pba, ref.ino, ref.idx, fs.sm.liveMap[pba])
	}
	live := make([]uint64, 0, len(fs.sm.liveMap))
	for pba := range fs.sm.liveMap {
		live = append(live, pba)
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	fmt.Fprintf(&b, "live=%v\n", live)
	for _, s := range fs.Segments() {
		fmt.Fprintf(&b, "seg %d state=%v live=%d dead=%d heated=%d journal=%v aff=%d\n",
			s.ID, s.State, s.LiveBlocks, s.DeadBlocks, s.HeatedBlocks, s.Journal, s.Affinity)
	}
	var cs CleanStats
	victims := fs.pickVictims(4, &cs)
	ids := make([]int, len(victims))
	for i, v := range victims {
		ids[i] = v.id
	}
	fmt.Fprintf(&b, "victims=%v\n", ids)
	return b.String()
}

// mountBothWays mounts the same image table-driven and with the
// full-walk fallback forced, requiring the table mount to actually use
// the table, and returns both.
func mountBothWays(t testing.TB, dev device.Dev, p Params) (tab, walk *FS) {
	t.Helper()
	tab, err := Mount(dev, p)
	if err != nil {
		t.Fatalf("table mount: %v", err)
	}
	if !tab.MountReport().TableMount {
		t.Fatalf("mount fell back to the walk: %q", tab.MountReport().Fallback)
	}
	pw := p
	pw.NoLivenessTable = true
	walk, err = Mount(dev, pw)
	if err != nil {
		t.Fatalf("walk mount: %v", err)
	}
	if walk.MountReport().TableMount {
		t.Fatal("NoLivenessTable mount used the table")
	}
	return tab, walk
}

// requireSameMount fails the test unless both mounts recovered
// byte-identical state.
func requireSameMount(t testing.TB, label string, tab, walk *FS) {
	t.Helper()
	ft, fw := mountFingerprint(tab), mountFingerprint(walk)
	if ft != fw {
		t.Fatalf("%s: table-driven and full-walk mounts diverge:\n--- table ---\n%s--- walk ---\n%s",
			label, ft, fw)
	}
}

// TestTableMountMatchesWalkMount drives mixed workloads — creates,
// multi-block writes, overwrites, deletes, renames, journaled syncs,
// checkpoints, cleaning and a heated file — and checks after each
// stage that a table-driven mount recovers exactly the state the
// full-walk fallback does.
func TestTableMountMatchesWalkMount(t *testing.T) {
	p := journalParams()
	fs := testFS(t, 2048, p)
	check := func(label string) {
		t.Helper()
		tab, walk := mountBothWays(t, fs.Device(), p)
		requireSameMount(t, label, tab, walk)
	}

	inos := make([]Ino, 6)
	for i := range inos {
		var err error
		if inos[i], err = fs.Create(fmt.Sprintf("f%d", i), uint8(i%3)); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(inos[i], payload(byte(i), (1+i%3)*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil { // anchoring checkpoint, fresh table
		t.Fatal(err)
	}
	check("after first sync")

	for round := 0; round < 6; round++ {
		if err := fs.WriteFile(inos[round%4], payload(byte(10+round), 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	check("after journaled overwrites")

	if err := fs.Delete("f3"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("f2", "g2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("fresh", 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	check("after dir churn in the tail")

	if _, err := fs.HeatFile("f1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	check("after heat in the tail")

	if err := fs.Checkpoint(); err != nil { // table includes the heat
		t.Fatal(err)
	}
	check("after checkpoint")

	fs.Clean(fs.FreeSegments() + 2)
	check("after cleaning pass")
}

// TestTableMountDeterministicAcrossConcurrency mounts one image at
// several fan-out widths and requires byte-identical recovered state:
// the ino-sorted static split and the single liveness timestamp keep
// the mount a function of the image alone.
func TestTableMountDeterministicAcrossConcurrency(t *testing.T) {
	p := journalParams()
	fs := testFS(t, 2048, p)
	for i := 0; i < 8; i++ {
		ino, err := fs.Create(fmt.Sprintf("f%d", i), uint8(i%2))
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(ino, payload(byte(i), 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	for _, disable := range []bool{false, true} {
		base := ""
		for _, workers := range []int{1, 2, 3, 4} {
			pc := p
			pc.Concurrency = workers
			pc.NoLivenessTable = disable
			m, err := Mount(fs.Device(), pc)
			if err != nil {
				t.Fatalf("mount at concurrency %d: %v", workers, err)
			}
			fp := mountFingerprint(m)
			if base == "" {
				base = fp
			} else if fp != base {
				t.Fatalf("mount state depends on concurrency %d (table disabled: %v)", workers, disable)
			}
		}
	}
}

// slotImageBytes reads the readable prefix of a checkpoint slot as one
// byte string.
func slotImageBytes(dev device.Dev, base uint64, blocks int) []byte {
	var out []byte
	for i := 0; i < blocks; i++ {
		data, err := dev.MRS(base + uint64(i))
		if err != nil {
			break
		}
		out = append(out, data...)
	}
	return out
}

// corruptTableByte locates the newest valid checkpoint slot's liveness
// table and flips one of its bytes (chosen by pick), rewriting the
// containing block. Returns false when no table is present to corrupt.
func corruptTableByte(t testing.TB, dev device.Dev, p Params, pick uint64) bool {
	t.Helper()
	probe, err := New(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	slot := probe.slotBlocks()
	var base uint64
	var best *ckptImage
	for _, b := range []uint64{0, uint64(slot)} {
		if ck, st := probe.readSlot(b); st == slotValid && (best == nil || ck.epoch > best.epoch) {
			best, base = ck, b
		}
	}
	if best == nil || !best.tablePresent {
		return false
	}
	img := slotImageBytes(dev, base, slot)
	total := binary.BigEndian.Uint64(img[:8])
	tlen := binary.BigEndian.Uint64(img[total+16 : total+24])
	off := total + 24 + pick%tlen // a byte inside the table payload
	blk := off / device.DataBytes
	block := append([]byte(nil), img[blk*device.DataBytes:(blk+1)*device.DataBytes]...)
	block[off%device.DataBytes] ^= 0xFF
	if err := dev.WriteBlocks(base+blk, [][]byte{block}); err != nil {
		t.Fatalf("rewriting slot block: %v", err)
	}
	return true
}

// TestTableCorruptionFallsBack flips a byte inside the checkpointed
// liveness table and expects the next mount to reject the table (its
// own checksum catches the damage without invalidating the slot), fall
// back to the full walk, and recover identical state.
func TestTableCorruptionFallsBack(t *testing.T) {
	p := journalParams()
	fs := testFS(t, 1024, p)
	for i := 0; i < 4; i++ {
		ino, err := fs.Create(fmt.Sprintf("f%d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(ino, payload(byte(i), 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	pw := p
	pw.NoLivenessTable = true
	before, err := Mount(fs.Device(), pw)
	if err != nil {
		t.Fatal(err)
	}
	want := mountFingerprint(before)
	if !corruptTableByte(t, fs.Device(), p, 17) {
		t.Fatal("no liveness table to corrupt")
	}
	m, err := Mount(fs.Device(), p)
	if err != nil {
		t.Fatalf("mount errored on a corrupt table (must fall back): %v", err)
	}
	rep := m.MountReport()
	if rep.TableMount || !strings.Contains(rep.Fallback, "checksum") {
		t.Fatalf("corrupt table not rejected: %+v", rep)
	}
	if got := mountFingerprint(m); got != want {
		t.Fatal("fallback mount diverged from the pre-corruption walk state")
	}
	// serofsck's view: the damage is a reported finding, not silence.
	jr, err := CheckJournal(fs.Device(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !jr.TablePresent || jr.TableValid || jr.Healthy() {
		t.Fatalf("fsck tolerated the corrupt table: %+v", jr)
	}
}

// TestForgedTableCountsMismatches forges a structurally valid table
// whose owners disagree with the inodes and expects CheckJournal to
// count the disagreements (while a mount, trusting the slot's internal
// consistency only as far as its cross-checks reach, is protected by
// the same fsck reporting).
func TestForgedTableCountsMismatches(t *testing.T) {
	p := journalParams()
	fs := testFS(t, 1024, p)
	a, _ := fs.Create("a", 0)
	b, _ := fs.Create("b", 0)
	if err := fs.WriteFile(a, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(b, payload(2, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Forge: swap the two files' data-block owners in the table, keep
	// the framing and checksum valid.
	probe, err := New(fs.Device(), p)
	if err != nil {
		t.Fatal(err)
	}
	slot := probe.slotBlocks()
	var base uint64
	var best *ckptImage
	for _, bb := range []uint64{0, uint64(slot)} {
		if ck, st := probe.readSlot(bb); st == slotValid && (best == nil || ck.epoch > best.epoch) {
			best, base = ck, bb
		}
	}
	if best == nil || len(best.table) == 0 {
		t.Fatal("no table to forge")
	}
	img := slotImageBytes(fs.Device(), base, slot)
	total := binary.BigEndian.Uint64(img[:8])
	tlenAt := total + 16
	tlen := binary.BigEndian.Uint64(img[tlenAt : tlenAt+8])
	tbuf := append([]byte(nil), img[tlenAt+8:tlenAt+8+tlen]...)
	// Entries are {off u16, ino u64, idx i32}; walk the groups and swap
	// the ino of every data entry between a and b.
	off := 8
	groups := int(binary.BigEndian.Uint32(tbuf[4:8]))
	for g := 0; g < groups; g++ {
		count := int(binary.BigEndian.Uint16(tbuf[off+4:]))
		off += 6
		for i := 0; i < count; i++ {
			ino := Ino(binary.BigEndian.Uint64(tbuf[off+2:]))
			idx := int32(binary.BigEndian.Uint32(tbuf[off+10:]))
			if idx >= 0 {
				swap := a
				if ino == a {
					swap = b
				}
				binary.BigEndian.PutUint64(tbuf[off+2:], uint64(swap))
			}
			off += 14
		}
	}
	img2 := append([]byte(nil), img[:tlenAt+8]...)
	img2 = append(img2, tbuf...)
	img2 = binary.BigEndian.AppendUint64(img2, ckptSum(tbuf))
	blocks := make([][]byte, 0)
	for i := 0; i*device.DataBytes < len(img2); i++ {
		end := (i + 1) * device.DataBytes
		if end > len(img2) {
			end = len(img2)
		}
		blk := make([]byte, device.DataBytes)
		copy(blk, img2[i*device.DataBytes:end])
		blocks = append(blocks, blk)
	}
	if err := fs.Device().WriteBlocks(base, blocks); err != nil {
		t.Fatal(err)
	}
	jr, err := CheckJournal(fs.Device(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !jr.TableValid || jr.TableMismatches == 0 || jr.Healthy() {
		t.Fatalf("forged table not flagged: %+v", jr)
	}
}

// TestEmptyTableIsValid pins the empty-namespace shape: a checkpoint
// of an FS whose every file was deleted carries a zero-group table
// that must still count as valid — mounted via the table, healthy
// under fsck — not be conflated with a rejected one.
func TestEmptyTableIsValid(t *testing.T) {
	p := journalParams()
	fs := testFS(t, 1024, p)
	ino, _ := fs.Create("a", 0)
	if err := fs.WriteFile(ino, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m, err := Mount(fs.Device(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep := m.MountReport(); !rep.TableMount || rep.TableRefs != 0 {
		t.Fatalf("empty-namespace mount did not ride the empty table: %+v", rep)
	}
	jr, err := CheckJournal(fs.Device(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !jr.TablePresent || !jr.TableValid || !jr.Healthy() {
		t.Fatalf("empty table flagged as damage: %+v", jr)
	}
}

// TestCorruptTableLengthFallsBack corrupts the unchecksummed
// table-length field itself with a near-2^64 value: the mount must
// degrade to the walk (no overflow, no panic), exactly like any other
// table damage.
func TestCorruptTableLengthFallsBack(t *testing.T) {
	p := journalParams()
	fs := testFS(t, 1024, p)
	ino, _ := fs.Create("a", 0)
	if err := fs.WriteFile(ino, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	probe, err := New(fs.Device(), p)
	if err != nil {
		t.Fatal(err)
	}
	slot := probe.slotBlocks()
	var base uint64
	found := false
	for _, b := range []uint64{0, uint64(slot)} {
		if _, st := probe.readSlot(b); st == slotValid {
			base, found = b, true
		}
	}
	if !found {
		t.Fatal("no valid slot")
	}
	img := slotImageBytes(fs.Device(), base, slot)
	total := binary.BigEndian.Uint64(img[:8])
	binary.BigEndian.PutUint64(img[total+16:total+24], ^uint64(0)-17)
	// Rewrite every block the length field touches (it may straddle a
	// boundary).
	for blk := (total + 16) / device.DataBytes; blk <= (total+23)/device.DataBytes; blk++ {
		if err := fs.Device().WriteBlocks(base+blk, [][]byte{img[blk*device.DataBytes : (blk+1)*device.DataBytes]}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Mount(fs.Device(), p)
	if err != nil {
		t.Fatalf("mount errored on corrupt table length: %v", err)
	}
	rep := m.MountReport()
	if rep.TableMount || !strings.Contains(rep.Fallback, "exceeds slot") {
		t.Fatalf("corrupt table length not rejected cleanly: %+v", rep)
	}
}

// TestMountDoubleTornSlots is the regression test for the double-torn
// condition: a region where both slots hold damaged checkpoints must
// refuse to mount with ErrTornCheckpoint — never come up as an empty
// FS — while a genuinely never-checkpointed medium keeps the plain
// ErrBadCheckpoint shape.
func TestMountDoubleTornSlots(t *testing.T) {
	p := journalParams()
	fs := testFS(t, 1024, p)
	ino, _ := fs.Create("a", 0)
	if err := fs.WriteFile(ino, payload(1, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // epoch 1 -> slot 0
		t.Fatal(err)
	}
	if err := fs.WriteFile(ino, payload(2, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(); err != nil { // epoch 2 -> slot 1
		t.Fatal(err)
	}
	// Tear both slots: garbage over each slot's first block, the shape
	// a mid-write crash or corruption leaves (nonzero, unparseable).
	slot := fs.slotBlocks()
	garbage := make([]byte, device.DataBytes)
	for i := range garbage {
		garbage[i] = 0xEE
	}
	for _, base := range []uint64{0, uint64(slot)} {
		if err := fs.Device().WriteBlocks(base, [][]byte{garbage}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := Mount(fs.Device(), p)
	if !errors.Is(err, ErrTornCheckpoint) {
		t.Fatalf("double-torn mount: got %v, want ErrTornCheckpoint", err)
	}
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("ErrTornCheckpoint must wrap ErrBadCheckpoint: %v", err)
	}
	if _, err := CheckJournal(fs.Device(), p); !errors.Is(err, ErrTornCheckpoint) {
		t.Fatalf("fsck check: got %v, want ErrTornCheckpoint", err)
	}

	// One torn slot plus one valid slot is the ordinary crash shape and
	// must keep mounting via the survivor.
	fs2 := testFS(t, 1024, p)
	ino2, _ := fs2.Create("b", 0)
	if err := fs2.WriteFile(ino2, payload(3, device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Device().WriteBlocks(uint64(fs2.slotBlocks()), [][]byte{garbage}); err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(fs2.Device(), p); err != nil {
		t.Fatalf("single-torn mount must fall back to the valid slot: %v", err)
	}

	// Never formatted: both slots empty, the pristine shape.
	fresh := testFS(t, 512, p)
	_, err = Mount(fresh.Device(), p)
	if !errors.Is(err, ErrBadCheckpoint) || errors.Is(err, ErrTornCheckpoint) {
		t.Fatalf("pristine mount: got %v, want bare ErrBadCheckpoint", err)
	}
}

// TestMountTableSpeedup pins the mount-cost contract on a wide
// namespace: with the liveness table, mount reads no inodes and must
// be at least 3x cheaper in virtual time than the full walk of the
// same image.
func TestMountTableSpeedup(t *testing.T) {
	const files = 256
	p := Params{
		SegmentBlocks:    64,
		CheckpointBlocks: 128,
		WritebackBlocks:  64,
		CheckpointEvery:  1 << 20,
		HeatAware:        true,
		ReserveSegments:  2,
	}
	fs := testFS(t, 8192, p)
	for i := 0; i < files; i++ {
		ino, err := fs.Create(fmt.Sprintf("f%04d", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(ino, payload(byte(i), device.DataBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(); err != nil { // fresh table, empty tail
		t.Fatal(err)
	}
	dev := fs.Device()
	t0 := dev.Clock().Now()
	tab, err := Mount(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	tableCost := dev.Clock().Now() - t0
	rep := tab.MountReport()
	if !rep.TableMount || rep.InodesRead != 0 {
		t.Fatalf("wide mount did not ride the table: %+v", rep)
	}
	pw := p
	pw.NoLivenessTable = true
	t1 := dev.Clock().Now()
	walk, err := Mount(dev, pw)
	if err != nil {
		t.Fatal(err)
	}
	walkCost := dev.Clock().Now() - t1
	if wr := walk.MountReport(); wr.InodesRead != files {
		t.Fatalf("walk mount read %d inodes, want %d", wr.InodesRead, files)
	}
	if walkCost < 3*tableCost {
		t.Fatalf("table mount %v vs walk %v: speedup below 3x", tableCost, walkCost)
	}
	requireSameMount(t, "wide image", tab, walk)
}
