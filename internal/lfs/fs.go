package lfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sero/internal/core"
	"sero/internal/device"
	"sero/internal/trace"
)

// Params configures the file system.
type Params struct {
	// SegmentBlocks is the segment size in blocks; must be a power of
	// two so heated lines stay aligned. Default 64.
	SegmentBlocks int

	// CheckpointBlocks reserves space at the front of the device for
	// the checkpoint region. It is sized independently of
	// SegmentBlocks, must be a power of two (so the log base stays
	// aligned without silent rounding surprises), and is rounded up to
	// a whole number of segments. Default one segment.
	CheckpointBlocks int

	// WritebackBlocks is the group-commit granularity of the write
	// path: appended blocks are buffered in the active segment and
	// committed to the device as one batched multi-block write once
	// this many blocks are pending (and always on segment seal and on
	// Sync). 1 writes block-at-a-time — the pre-batching behaviour,
	// paying the per-command servo settle for every block. 0 defaults
	// to SegmentBlocks (whole-segment group commit); values above
	// SegmentBlocks are clamped to it.
	WritebackBlocks int

	// Concurrency is the worker-plane fan-out width for every fanned
	// engine the FS drives: cleaning passes relocate victim blocks on
	// this many concurrent device planes, Sync flushes the
	// per-affinity-class group-commit buffers as concurrent runs (one
	// batched command per class), and Mount batches its
	// checkpoint-slot and inode reads over the same width — in every
	// case the pass costs the slowest worker's virtual time (the
	// Audit contract). 0 or 1 runs serially. The on-medium layout is
	// identical for any value (frontiers and clean destinations are
	// planned serially); only the virtual time changes.
	Concurrency int

	// CheckpointEvery is the background checkpoint policy, in blocks
	// appended to the log since the last checkpoint: Sync writes a full
	// checkpoint once at least this many blocks have been appended, and
	// only a summary record (the roll-forward journal tail) otherwise.
	// 1 checkpoints every non-empty Sync — the pre-journal behaviour.
	// 0 defaults to four segments' worth; negative values are invalid.
	CheckpointEvery int

	// HeatAware enables the SERO policies of §4.1: heated lines are
	// clustered into dedicated segments and the cleaner skips them.
	// Disabling it models a heat-oblivious LFS that mixes heated lines
	// into data segments (the E2/E3 ablation baseline).
	HeatAware bool

	// ReserveSegments is the free-segment low-water mark that triggers
	// inline cleaning on the write path — the last-ditch fallback that
	// runs while the appending thread holds the lock.
	ReserveSegments int

	// NoLivenessTable disables the checkpointed liveness table: a
	// checkpoint then carries only imap+directory (the pre-table
	// format) and Mount always rebuilds liveness with the full inode
	// walk. It exists as the ablation baseline for the mount-scale
	// experiments and benchmarks; production configurations should
	// leave it false.
	NoLivenessTable bool

	// CleanWatermark enables background incremental cleaning: when the
	// free pool dips to this many segments or fewer at an allocation,
	// a background goroutine is kicked to run phased cleaning passes
	// (plan and commit under the lock, the copy phase off it) until at
	// least this many segments are reclaimable again, concurrently
	// with foreground I/O. 0 (the default) disables the background
	// cleaner: cleaning then happens only inline (ReserveSegments) or
	// via explicit Clean calls. Negative values are invalid, as are
	// watermarks no smaller than the segment population. To keep the
	// foreground off the inline path entirely, set the watermark
	// comfortably above ReserveSegments.
	CleanWatermark int

	// AuditEvery enables continuous background verification: for every
	// AuditEvery blocks appended to the log, a background goroutine
	// runs one incremental audit step (auditBatchLines heated lines
	// verified under their stripe locks only, off the foreground
	// clock — see audit.go for the round and detection-bound
	// contract). 0 (the default) disables the background auditor;
	// AuditStep remains callable either way. Negative values are
	// invalid.
	AuditEvery int
}

// DefaultParams returns the standard heat-aware configuration.
func DefaultParams() Params {
	return Params{
		SegmentBlocks:    64,
		CheckpointBlocks: 64,
		WritebackBlocks:  64,
		CheckpointEvery:  256,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      1,
	}
}

// FS errors.
var (
	// ErrNotFound reports a missing file name or inode.
	ErrNotFound = errors.New("lfs: file not found")
	// ErrExists reports a Create of an existing name.
	ErrExists = errors.New("lfs: file exists")
	// ErrFileHeated reports a mutation of a heated (frozen) file.
	ErrFileHeated = errors.New("lfs: file is heated (read-only)")
	// ErrFull reports that no free segment is available even after
	// cleaning.
	ErrFull = errors.New("lfs: file system full")
	// ErrTooLarge reports a write beyond MaxFileBytes.
	ErrTooLarge = errors.New("lfs: file too large")
)

// blockRef identifies the owner of a live block.
type blockRef struct {
	ino Ino
	idx int // data block index, or -1 for the inode block itself
}

// FS is a log-structured file system over a SERO device.
//
// Locking: fs.mu is a reader/writer lock over all file-system
// metadata (maps, segment table, inode structs) and the per-segment
// group-commit buffers. Mutating operations — Create, Write, Delete,
// Sync, Clean, HeatFile — take it exclusively, but the write path is
// memory-buffered (appends land in the active segment's buffer and
// group-commit on seal/Sync), so exclusive sections do no device I/O
// outside Sync/Clean/Heat. Read-only operations take it shared and
// may read the device concurrently with each other; the inode cache
// map has its own small lock (inoMu) so concurrent readers can fill
// it without upgrading.
//
// Cleaning is the exception to "one lock scope per operation": a
// phased pass (Clean, or the CleanWatermark background goroutine)
// holds fs.mu only for its plan and commit windows and runs the copy
// phase with the lock released, with fs.cleaning held true across the
// gap and the victims clean-pinned (see cleaner.go for the protocol
// and its invariants). cleanCond broadcasts every cleaning→idle
// transition so a Sync that finds itself short of space can wait for
// an in-flight pass to commit instead of failing with ErrFull while
// reclaimable segments are seconds away.
type FS struct {
	mu  sync.RWMutex
	dev device.Dev
	p   Params

	sm   *segmentManager
	imap map[Ino]uint64 // ino -> PBA of current inode block

	// inoMu guards the inodes map itself; the *Inode structs it holds
	// are protected by fs.mu (mutated only under the exclusive lock).
	inoMu  sync.Mutex
	inodes map[Ino]*Inode // parsed inode cache (authoritative between syncs)

	owners map[uint64]blockRef
	dir    map[string]Ino
	names  map[Ino]string
	next   Ino

	// active data segments per affinity class.
	active map[uint8]*segment
	// heatSeg is the current heated-line segment per affinity
	// (heat-aware mode); heatCursor is the next free offset in it.
	heatSeg    map[uint8]*segment
	heatCursor map[uint8]int

	dirty map[Ino]map[int][]byte
	// pendSize records byte sizes promised by unflushed writes. The
	// cached Inode.Size stays the *durable* size (what the blocks on
	// the log cover), so the cleaner may rewrite an inode mid-dirty
	// without persisting a size the checkpointed data cannot back;
	// readers see max(Size, pendSize).
	pendSize map[Ino]uint64

	// cleaning serialises cleaning passes — at most one runs at a
	// time, and it also guards against the cleaner re-triggering
	// itself via its own log appends. A phased pass keeps it true
	// across the unlocked copy window; it is read and written only
	// under fs.mu. cleanCond (condition on fs.mu) is broadcast
	// whenever cleaning goes false, so space-starved syncs can wait
	// for an in-flight pass to commit.
	cleaning  bool
	cleanCond *sync.Cond

	// Background cleaner state (background.go): armed lazily on the
	// first watermark dip, torn down by Close. All three channels are
	// nil until then; closed refuses further arming.
	bgKick chan struct{}
	bgStop chan struct{}
	bgDone chan struct{}
	closed bool

	// Incremental audit state (audit.go): the engine is built lazily
	// on first use (AuditStep, or the first AuditEvery cadence kick)
	// and registers itself as the device's read observer. sinceAudit
	// counts blocks appended since the last cadence kick — distinct
	// from fs.appended, which resets at checkpoints. The channels
	// mirror the background cleaner's and are torn down by Close.
	auditor    *core.IncrementalAuditor
	sinceAudit uint64
	aKick      chan struct{}
	aStop      chan struct{}
	aDone      chan struct{}

	// Roll-forward journal state (summary.go, replay.go). The summary
	// chain lives in the data log at the affinity-0 write frontier:
	// jpromise is the reserved slot the next chain element must land
	// in (0 = journal disabled until the next checkpoint), jseq and
	// jchain the next element's sequence number and running chain
	// checksum.
	jpromise uint64
	jseq     uint64
	jchain   uint64
	jepoch   uint64
	// ckptEpoch is the epoch of the last checkpoint on the medium
	// (0 = none yet — the first Sync must checkpoint).
	ckptEpoch uint64
	// appended counts blocks appended since that checkpoint — the
	// CheckpointEvery policy input.
	appended uint64
	// Pending deltas since the last summary record or checkpoint:
	// ordered directory ops, inodes whose imap entry changed, and
	// per-block back-pointers of appended data.
	jDirOps []dirOp
	jImap   map[Ino]bool
	jBlocks []blockPtr
	// jtrace records what a Mount's roll-forward pass saw (nil on a
	// freshly formatted FS); CheckJournal reports from it.
	jtrace *replayTrace
	// mstats records how the last Mount rebuilt liveness (table-driven
	// or full walk), for diagnostics, experiments and tests.
	mstats MountStats

	// curTask is the per-operation attribution target for device time
	// charged from the current exclusive section (flushes, journal and
	// checkpoint writes, inline cleaning). It is valid ONLY while fs.mu
	// is held exclusively: lockTask sets it, unlockTask clears it, and
	// any code that releases the lock mid-operation (waitCleanIdleLocked,
	// the phased cleaner's copy window) must save and restore it around
	// the gap. Shared-lock paths (Read) must not touch it — they thread
	// their task explicitly instead (inodeTask, readPBATaskLocked).
	curTask *trace.Task

	stats Stats
}

// MountStats describes how a Mount rebuilt segment liveness.
type MountStats struct {
	// TableMount reports that liveness came from the checkpointed
	// liveness table (plus the replayed tail), not from a full walk.
	TableMount bool
	// Fallback names why the table was not used ("" when it was):
	// absent, torn, failing its cross-check, or disabled.
	Fallback string
	// TableRefs counts liveness-table entries adopted.
	TableRefs int
	// InodesRead counts inode blocks the mount read from the medium:
	// the whole namespace for a full walk, only the replay-touched
	// inos for a table mount.
	InodesRead int
	// Workers is the fan-out width the inode reads ran at.
	Workers int
}

// MountReport returns how the last Mount rebuilt liveness. The zero
// value is returned for a freshly formatted (never mounted) FS.
func (fs *FS) MountReport() MountStats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.mstats
}

// Stats counts file-system activity for the experiments.
type Stats struct {
	// BytesWritten totals the payload bytes accepted by Write.
	BytesWritten uint64
	// BlocksAppended counts blocks appended to the log.
	BlocksAppended uint64
	// GroupCommits counts batched segment writes issued by the write path.
	GroupCommits uint64
	// CleanerCopied counts live blocks the cleaner rewrote.
	CleanerCopied uint64
	// CleanerPasses counts cleaning passes (inline, explicit and background).
	CleanerPasses uint64
	// CleanerSkipped counts pinned segments the cleaner refused to touch.
	CleanerSkipped uint64
	// CleanerBgRuns counts cleaning rounds in which the background
	// watermark goroutine did real work — freed or copied something
	// (0 when CleanWatermark is off; no-op wakeups are not counted).
	CleanerBgRuns uint64
	// CleanerStaleMoves counts planned moves dropped at commit because
	// a concurrent foreground write invalidated the source mid-copy.
	CleanerStaleMoves uint64
	// HeatedFiles counts files frozen by HeatFile.
	HeatedFiles uint64
	// HeatedLineBlock counts blocks inside heated lines.
	HeatedLineBlock uint64
	// Syncs counts Sync calls.
	Syncs uint64
	// Checkpoints counts full checkpoint-region writes.
	Checkpoints uint64
	// JournalRecords counts summary-tail records written by Sync.
	JournalRecords uint64
	// JournalBlocks counts log blocks consumed by the journal (incl. jumps).
	JournalBlocks uint64
	// JournalReanchors counts summary records whose promised slot was
	// disconnected from the write frontier (a mid-sync write-back
	// flushed past it, or the tail sat in an earlier segment), so the
	// chain re-anchored there with an explicit jump block.
	JournalReanchors uint64
	// CheckpointFallbacks counts Syncs that wanted a summary record but
	// fell back to a full checkpoint because the delta could not be
	// journaled (errJournalFull: no promise slot, or record too large).
	CheckpointFallbacks uint64
	// AuditSteps counts incremental audit steps that verified at least
	// one line (AuditStep calls and background auditor wakeups).
	AuditSteps uint64
	// AuditRounds counts completed audit rounds — full sweeps of the
	// heated-line population (see audit.go for the round contract).
	AuditRounds uint64
	// AuditLinesChecked counts heated-line verifications performed by
	// the incremental auditor.
	AuditLinesChecked uint64
	// AuditFindings counts auditor verifications that reported
	// tampering.
	AuditFindings uint64
	// AuditPiggybacked counts lines whose audit check was pulled
	// forward by the read-observer piggyback (a cleaner or reader
	// touched the line's blocks mid-round).
	AuditPiggybacked uint64
	// AuditDeviceNS is the shadow virtual time the auditor's checks
	// would have cost the foreground clock. Audit runs off-clock, so
	// this never appears in operation latencies — it is the reported
	// price of the verification hardware.
	AuditDeviceNS uint64
	// AuditRepairs counts tamper findings the armed audit repairer
	// healed in place (see SetAuditRepairer); zero when no repairer is
	// armed.
	AuditRepairs uint64
	// AuditRepairFailures counts findings the armed repairer could not
	// heal.
	AuditRepairFailures uint64
}

// New formats a fresh file system on dev.
func New(dev device.Dev, p Params) (*FS, error) {
	if p.SegmentBlocks <= 0 {
		p = DefaultParams()
	}
	if p.SegmentBlocks&(p.SegmentBlocks-1) != 0 {
		return nil, fmt.Errorf("lfs: segment size %d not a power of two", p.SegmentBlocks)
	}
	ckpt := p.CheckpointBlocks
	if ckpt < 0 {
		return nil, fmt.Errorf("lfs: negative checkpoint size %d", ckpt)
	}
	if ckpt == 0 {
		ckpt = p.SegmentBlocks
	}
	if ckpt&(ckpt-1) != 0 {
		return nil, fmt.Errorf("lfs: checkpoint size %d not a power of two", ckpt)
	}
	// Round the checkpoint region up to whole segments so the log base
	// stays aligned (exact for power-of-two sizes of at least one
	// segment; smaller regions grow to exactly one segment).
	if rem := ckpt % p.SegmentBlocks; rem != 0 {
		ckpt += p.SegmentBlocks - rem
	}
	p.CheckpointBlocks = ckpt
	if ckpt < 2 {
		return nil, fmt.Errorf("lfs: checkpoint region of %d blocks cannot hold two slots", ckpt)
	}
	if p.CheckpointEvery < 0 {
		return nil, fmt.Errorf("lfs: negative checkpoint interval %d", p.CheckpointEvery)
	}
	if p.CheckpointEvery == 0 {
		p.CheckpointEvery = 4 * p.SegmentBlocks
	}
	if p.WritebackBlocks <= 0 {
		p.WritebackBlocks = p.SegmentBlocks
	}
	if p.WritebackBlocks > p.SegmentBlocks {
		p.WritebackBlocks = p.SegmentBlocks
	}
	if p.Concurrency < 1 {
		p.Concurrency = 1
	}
	if p.CleanWatermark < 0 {
		return nil, fmt.Errorf("lfs: negative clean watermark %d", p.CleanWatermark)
	}
	if p.AuditEvery < 0 {
		return nil, fmt.Errorf("lfs: negative audit interval %d", p.AuditEvery)
	}
	logBlocks := dev.Blocks() - ckpt
	if logBlocks < 2*p.SegmentBlocks {
		return nil, fmt.Errorf("lfs: device too small: %d log blocks", logBlocks)
	}
	if p.CleanWatermark >= logBlocks/p.SegmentBlocks {
		return nil, fmt.Errorf("lfs: clean watermark %d not below the %d-segment log",
			p.CleanWatermark, logBlocks/p.SegmentBlocks)
	}
	fs := &FS{
		dev:        dev,
		p:          p,
		sm:         newSegmentManager(uint64(ckpt), logBlocks, p.SegmentBlocks),
		imap:       make(map[Ino]uint64),
		inodes:     make(map[Ino]*Inode),
		owners:     make(map[uint64]blockRef),
		dir:        make(map[string]Ino),
		names:      make(map[Ino]string),
		next:       RootIno + 1,
		active:     make(map[uint8]*segment),
		heatSeg:    make(map[uint8]*segment),
		heatCursor: make(map[uint8]int),
		dirty:      make(map[Ino]map[int][]byte),
		pendSize:   make(map[Ino]uint64),
		jImap:      make(map[Ino]bool),
	}
	fs.cleanCond = sync.NewCond(&fs.mu)
	return fs, nil
}

// setCleaningLocked flips the single-pass cleaning guard, broadcasting
// every cleaning→idle transition so waiters (ensureSyncSpaceLocked,
// waitCleanIdleLocked) can re-examine the free pool. Caller holds
// fs.mu exclusively.
func (fs *FS) setCleaningLocked(v bool) {
	fs.cleaning = v
	if !v {
		fs.cleanCond.Broadcast()
	}
}

// lowSpaceCleanLocked is the allocation paths' shared space policy: a
// dip to the watermark wakes the background cleaner (which runs off
// this lock); a dip to the reserve cleans inline, right here, as the
// last resort. Caller holds fs.mu exclusively. Note the inline clean
// no-ops while a phased pass is mid-copy (fs.cleaning): callers that
// are at rest should waitCleanIdleLocked first; mid-flush callers
// (appendBlock) cannot wait and rely on their operation having
// secured space up front (ensureSyncSpaceLocked).
func (fs *FS) lowSpaceCleanLocked() {
	if fs.sm.freeSegments() <= fs.p.CleanWatermark {
		fs.kickCleanerLocked()
	}
	if fs.sm.freeSegments() <= fs.p.ReserveSegments {
		fs.cleanLocked(fs.p.ReserveSegments + 1)
	}
}

// waitCleanIdleLocked blocks while an in-flight phased pass owns the
// cleaner and the free pool is short of need segments: the pass's
// commit is about to turn copied victims into reclaimable space, so
// waiting beats failing with ErrFull. Caller holds fs.mu exclusively
// and must be at rest (no flush in progress — the wait releases the
// lock); on return either the pool covers need or no pass is in
// flight (so an inline clean can run).
func (fs *FS) waitCleanIdleLocked(need int) {
	// The wait releases fs.mu, so other lock holders run in the gap:
	// clear fs.curTask before waiting (their device work — e.g. the
	// phased cleaner's commit — must not attribute to the waiter) and
	// restore it once the lock is re-held, since a traced holder's
	// unlockTask will have nil'd it.
	task := fs.curTask
	fs.curTask = nil
	for fs.cleaning && fs.sm.freeSegments() < need {
		fs.cleanCond.Wait()
	}
	fs.curTask = task
}

// Device returns the underlying device.
func (fs *FS) Device() device.Dev { return fs.dev }

// Params returns the configuration in effect.
func (fs *FS) Params() Params { return fs.p }

// Stats returns a copy of the counters. The snapshot is internally
// consistent: every mutation of fs.stats happens under the exclusive
// lock (including the background cleaner's commit window), and the
// whole struct is copied under one shared acquisition here, so a
// reader never observes a half-updated pair (e.g. CleanerPasses
// advanced but CleanerCopied not yet).
func (fs *FS) Stats() Stats {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.stats
}

// lockTask takes fs.mu exclusively on behalf of a traced operation:
// virtual time spent waiting for the lock is charged to task as
// lock-wait, and task becomes fs.curTask — the attribution target for
// device commands issued from this exclusive section. A nil task is
// the untraced fast path (plain Lock).
func (fs *FS) lockTask(task *trace.Task) {
	if task == nil {
		fs.mu.Lock()
		return
	}
	t0 := fs.now()
	fs.mu.Lock()
	task.AddLockWait(fs.now() - t0)
	fs.curTask = task
}

// unlockTask clears the attribution target and releases fs.mu.
// Safe for untraced sections too (curTask is already nil there).
func (fs *FS) unlockTask() {
	fs.curTask = nil
	fs.mu.Unlock()
}

// emitSpan records an lfs-category foreground span from start to the
// current virtual time when a tracer is installed; with tr nil it is
// free. Emission never advances the clock, so traced and untraced
// runs see byte-identical virtual time.
func (fs *FS) emitSpan(tr *trace.Tracer, name string, start time.Duration, v1, v2 int64) {
	if tr == nil {
		return
	}
	tr.Emit(trace.Span{
		Name: name, Cat: "lfs", Track: 0, Session: -1,
		Start: int64(start), Dur: int64(fs.now() - start), V1: v1, V2: v2,
	})
}

// now returns the device's virtual time.
func (fs *FS) now() time.Duration { return fs.dev.Clock().Now() }

// Create makes an empty file with the given heat-affinity class.
func (fs *FS) Create(name string, affinity uint8) (Ino, error) {
	return fs.CreateTraced(nil, name, affinity)
}

// CreateTraced is Create with per-operation attribution: lock-wait
// and device time accumulate on task (see trace.Task). Nil task
// behaves exactly like Create.
func (fs *FS) CreateTraced(task *trace.Task, name string, affinity uint8) (Ino, error) {
	fs.lockTask(task)
	defer fs.unlockTask()
	if name == "" {
		return 0, errors.New("lfs: empty file name")
	}
	if len(name) > 255 {
		return 0, fmt.Errorf("lfs: name %q too long", name)
	}
	if _, ok := fs.dir[name]; ok {
		return 0, fmt.Errorf("%w: %s", ErrExists, name)
	}
	ino := fs.next
	fs.next++
	fs.cacheInode(&Inode{Ino: ino, Affinity: affinity, MTime: fs.now()})
	fs.dir[name] = ino
	fs.names[ino] = name
	fs.jDirOps = append(fs.jDirOps, dirOp{op: dirOpCreate, ino: ino, affinity: affinity, name: name})
	return ino, nil
}

// Rename gives a file a new name. The target name must not exist.
// Renaming a heated file is allowed: the name lives in the directory,
// not inside the tamper-evident line.
func (fs *FS) Rename(oldName, newName string) error {
	return fs.RenameTraced(nil, oldName, newName)
}

// RenameTraced is Rename with per-operation attribution; nil task
// behaves exactly like Rename.
func (fs *FS) RenameTraced(task *trace.Task, oldName, newName string) error {
	fs.lockTask(task)
	defer fs.unlockTask()
	if newName == "" {
		return errors.New("lfs: empty file name")
	}
	if len(newName) > 255 {
		return fmt.Errorf("lfs: name %q too long", newName)
	}
	ino, ok := fs.dir[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oldName)
	}
	if _, ok := fs.dir[newName]; ok {
		return fmt.Errorf("%w: %s", ErrExists, newName)
	}
	delete(fs.dir, oldName)
	fs.dir[newName] = ino
	fs.names[ino] = newName
	fs.jDirOps = append(fs.jDirOps, dirOp{op: dirOpRename, ino: ino, name: oldName, newName: newName})
	return nil
}

// Lookup resolves a name to an inode number.
func (fs *FS) Lookup(name string) (Ino, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ino, ok := fs.dir[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return ino, nil
}

// Names returns all file names.
func (fs *FS) Names() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.dir))
	for n := range fs.dir {
		out = append(out, n)
	}
	return out
}

// Stat returns a copy of the file's inode.
func (fs *FS) Stat(ino Ino) (Inode, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	in, err := fs.inode(ino)
	if err != nil {
		return Inode{}, err
	}
	cp := *in
	cp.Size = fs.effectiveSize(ino, in)
	cp.Blocks = append([]uint64(nil), in.Blocks...)
	cp.HeatLines = append([]uint64(nil), in.HeatLines...)
	return cp, nil
}

// cachedInode fetches from the inode cache under its own lock, so
// readers holding only fs.mu.RLock can use it.
func (fs *FS) cachedInode(ino Ino) (*Inode, bool) {
	fs.inoMu.Lock()
	defer fs.inoMu.Unlock()
	in, ok := fs.inodes[ino]
	return in, ok
}

// cacheInode stores an inode in the cache under its own lock.
func (fs *FS) cacheInode(in *Inode) {
	fs.inoMu.Lock()
	fs.inodes[in.Ino] = in
	fs.inoMu.Unlock()
}

// dropInode evicts an inode from the cache.
func (fs *FS) dropInode(ino Ino) {
	fs.inoMu.Lock()
	delete(fs.inodes, ino)
	fs.inoMu.Unlock()
}

// inode resolves an inode, filling the cache from the device on a
// miss. Caller holds fs.mu (read or write); two concurrent readers
// may both load the same inode, in which case the later store wins —
// both copies are identical, freshly parsed from the same block.
func (fs *FS) inode(ino Ino) (*Inode, error) { return fs.inodeTask(nil, ino) }

// inodeTask is inode with explicit device-time attribution. The task
// is threaded as a parameter — not read from fs.curTask — because this
// runs under the shared lock on the read path, where curTask belongs
// to whatever exclusive section ran last.
func (fs *FS) inodeTask(task *trace.Task, ino Ino) (*Inode, error) {
	if in, ok := fs.cachedInode(ino); ok {
		return in, nil
	}
	pba, ok := fs.imap[ino]
	if !ok {
		return nil, fmt.Errorf("%w: ino %d", ErrNotFound, ino)
	}
	data, err := fs.readPBATaskLocked(task, pba)
	if err != nil {
		return nil, fmt.Errorf("lfs: reading inode %d at %d: %w", ino, pba, err)
	}
	in, err := UnmarshalInode(data)
	if err != nil {
		return nil, err
	}
	fs.cacheInode(in)
	return in, nil
}

// readPBALocked reads one block, serving it from an unflushed
// group-commit buffer when the block has been appended but not yet
// committed to the medium. Caller holds fs.mu (read or write); the
// buffers only change under the exclusive lock, so shared holders may
// copy from them safely.
func (fs *FS) readPBALocked(pba uint64) ([]byte, error) {
	return fs.readPBATaskLocked(nil, pba)
}

// readPBATaskLocked is readPBALocked with the device read charged to
// task (explicitly threaded — see inodeTask for why not fs.curTask).
func (fs *FS) readPBATaskLocked(task *trace.Task, pba uint64) ([]byte, error) {
	if s := fs.sm.segOf(pba); s != nil && len(s.pending) > 0 {
		lo := s.next - len(s.pending)
		if off := int(pba - s.start); off >= lo && off < s.next {
			buf := make([]byte, device.DataBytes)
			copy(buf, s.pending[off-lo])
			return buf, nil
		}
	}
	return fs.dev.MRSTraced(task, pba)
}

// Write stores data at the given byte offset. Data is buffered until
// Sync. Writes to heated files fail.
func (fs *FS) Write(ino Ino, off uint64, data []byte) error {
	return fs.WriteTraced(nil, ino, off, data)
}

// WriteTraced is Write with per-operation attribution (lock-wait plus
// any read-modify-write device reads); nil task behaves exactly like
// Write.
func (fs *FS) WriteTraced(task *trace.Task, ino Ino, off uint64, data []byte) error {
	fs.lockTask(task)
	defer fs.unlockTask()
	in, err := fs.inodeTask(fs.curTask, ino)
	if err != nil {
		return err
	}
	if in.Heated() {
		return fmt.Errorf("%w: ino %d", ErrFileHeated, ino)
	}
	end := off + uint64(len(data))
	if end > MaxFileBytes {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, end)
	}
	if fs.dirty[ino] == nil {
		fs.dirty[ino] = make(map[int][]byte)
	}
	fs.stats.BytesWritten += uint64(len(data))
	for len(data) > 0 {
		blk := int(off / device.DataBytes)
		inner := int(off % device.DataBytes)
		n := device.DataBytes - inner
		if n > len(data) {
			n = len(data)
		}
		buf := fs.dirty[ino][blk]
		if buf == nil {
			buf = make([]byte, device.DataBytes)
			// Read-modify-write for partial overwrites of existing
			// blocks (which may still sit in a group-commit buffer).
			// PBA 0 is the hole sentinel — block 0 is always the
			// checkpoint, so no file block ever lives there.
			if blk < len(in.Blocks) && in.Blocks[blk] != 0 && (inner != 0 || n != device.DataBytes) {
				old, rerr := fs.readPBATaskLocked(fs.curTask, in.Blocks[blk])
				if rerr == nil {
					copy(buf, old)
				}
			}
			fs.dirty[ino][blk] = buf
		}
		copy(buf[inner:], data[:n])
		data = data[n:]
		off += uint64(n)
	}
	if end > fs.effectiveSize(ino, in) {
		fs.pendSize[ino] = end
	}
	in.MTime = fs.now()
	return nil
}

// effectiveSize is the file size readers observe: the durable inode
// size extended by any unflushed write. Caller holds fs.mu.
func (fs *FS) effectiveSize(ino Ino, in *Inode) uint64 {
	if ps, ok := fs.pendSize[ino]; ok && ps > in.Size {
		return ps
	}
	return in.Size
}

// WriteFile is a convenience wrapper writing the whole file content at
// offset zero.
func (fs *FS) WriteFile(ino Ino, data []byte) error {
	return fs.Write(ino, 0, data)
}

// Read returns up to len(p) bytes from the file at offset off,
// consulting the dirty buffer first. Reads take the metadata lock
// shared, so they proceed concurrently with each other and with the
// memory-buffered append path.
func (fs *FS) Read(ino Ino, off uint64, p []byte) (int, error) {
	return fs.ReadTraced(nil, ino, off, p)
}

// ReadTraced is Read with per-operation attribution: time spent
// acquiring the shared lock is charged as lock-wait and device reads
// as device time. The task is threaded explicitly through the read
// path (never via fs.curTask, which belongs to exclusive sections);
// nil behaves exactly like Read.
func (fs *FS) ReadTraced(task *trace.Task, ino Ino, off uint64, p []byte) (int, error) {
	if task != nil {
		t0 := fs.now()
		fs.mu.RLock()
		task.AddLockWait(fs.now() - t0)
	} else {
		fs.mu.RLock()
	}
	defer fs.mu.RUnlock()
	in, err := fs.inodeTask(task, ino)
	if err != nil {
		return 0, err
	}
	size := fs.effectiveSize(ino, in)
	if off >= size {
		return 0, nil
	}
	if max := size - off; uint64(len(p)) > max {
		p = p[:max]
	}
	read := 0
	for read < len(p) {
		blk := int((off + uint64(read)) / device.DataBytes)
		inner := int((off + uint64(read)) % device.DataBytes)
		n := device.DataBytes - inner
		if n > len(p)-read {
			n = len(p) - read
		}
		var src []byte
		if buf, ok := fs.dirty[ino][blk]; ok {
			src = buf
		} else if blk < len(in.Blocks) && in.Blocks[blk] != 0 {
			data, rerr := fs.readPBATaskLocked(task, in.Blocks[blk])
			if rerr != nil {
				return read, fmt.Errorf("lfs: reading block %d of ino %d: %w", blk, ino, rerr)
			}
			src = data
		} else {
			src = make([]byte, device.DataBytes) // hole (PBA 0 sentinel)
		}
		copy(p[read:read+n], src[inner:inner+n])
		read += n
	}
	return read, nil
}

// ReadFile returns the whole file content.
func (fs *FS) ReadFile(ino Ino) ([]byte, error) {
	st, err := fs.Stat(ino)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size)
	n, err := fs.Read(ino, 0, buf)
	return buf[:n], err
}

// Delete removes a file. Heated files cannot be deleted (§5.2: "This
// implies writing the inode, which will be tamper-evident"); their
// space is permanently read-only anyway.
func (fs *FS) Delete(name string) error {
	return fs.DeleteTraced(nil, name)
}

// DeleteTraced is Delete with per-operation attribution; nil task
// behaves exactly like Delete.
func (fs *FS) DeleteTraced(task *trace.Task, name string) error {
	fs.lockTask(task)
	defer fs.unlockTask()
	ino, ok := fs.dir[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	in, err := fs.inodeTask(fs.curTask, ino)
	if err != nil {
		return err
	}
	if in.Heated() {
		return fmt.Errorf("%w: %s", ErrFileHeated, name)
	}
	for _, pba := range in.Blocks {
		fs.sm.markDead(pba)
		delete(fs.owners, pba)
	}
	if pba, ok := fs.imap[ino]; ok {
		fs.sm.markDead(pba)
		delete(fs.owners, pba)
	}
	delete(fs.imap, ino)
	fs.dropInode(ino)
	delete(fs.dirty, ino)
	delete(fs.pendSize, ino)
	delete(fs.dir, name)
	delete(fs.names, ino)
	fs.jDirOps = append(fs.jDirOps, dirOp{op: dirOpRemove, ino: ino, name: name})
	fs.jImap[ino] = true
	return nil
}

// sealSegment group-commits a filled segment's buffered tail and
// retires it out of the active state. A segment that acquired heated
// lines while active (heat-oblivious placement) retires as pinned,
// never as cleanable-full.
func (fs *FS) sealSegment(seg *segment) error {
	if err := fs.flushSegment(seg); err != nil {
		return err
	}
	if seg.heatedBlocks > 0 {
		seg.state = SegPinned
	} else {
		seg.state = SegFull
	}
	return nil
}

// flushSegment group-commits the segment's pending run — the buffered
// blocks at [next-len(pending), next) — as one batched multi-block
// device write: the covering stripe locks are taken once and the
// servo settles once, instead of once per block.
func (fs *FS) flushSegment(seg *segment) error {
	if seg == nil || len(seg.pending) == 0 {
		return nil
	}
	start := seg.start + uint64(seg.next-len(seg.pending))
	if err := fs.dev.WriteBlocksTraced(fs.curTask, start, seg.pending); err != nil {
		return fmt.Errorf("lfs: group commit of segment %d: %w", seg.id, err)
	}
	fs.stats.GroupCommits++
	seg.pending = nil
	return nil
}

// flushAffinitiesLocked group-commits active appender buffers in
// affinity order for determinism, optionally skipping affinity 0.
// With Concurrency > 1 and two or more non-empty buffers, the
// per-class runs are committed concurrently on worker planes
// (device.WriteRunsFanned, one batched command per class): every
// class's destination run was preassigned at buffering time from its
// own private frontier, so the on-medium layout is identical for any
// worker count and only the virtual time changes — the fanned flush
// costs its slowest class, not the sum (ARCHITECTURE.md contract 2).
func (fs *FS) flushAffinitiesLocked(skipZero bool) error {
	affs := make([]int, 0, len(fs.active))
	for a := range fs.active {
		if skipZero && a == 0 {
			continue
		}
		if seg := fs.active[a]; seg != nil && len(seg.pending) > 0 {
			affs = append(affs, int(a))
		}
	}
	sortInts(affs)
	if len(affs) < 2 || fs.p.Concurrency <= 1 {
		for _, a := range affs {
			if err := fs.flushSegment(fs.active[uint8(a)]); err != nil {
				return err
			}
		}
		return nil
	}
	segs := make([]*segment, len(affs))
	runs := make([]device.WriteRun, len(affs))
	for i, a := range affs {
		seg := fs.active[uint8(a)]
		segs[i] = seg
		runs[i] = device.WriteRun{
			Start:  seg.start + uint64(seg.next-len(seg.pending)),
			Blocks: seg.pending,
		}
	}
	errs := fs.dev.WriteRunsFannedTraced(fs.curTask, runs, fs.p.Concurrency)
	var firstErr error
	for i, err := range errs {
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("lfs: group commit of segment %d: %w", segs[i].id, err)
			}
			continue
		}
		fs.stats.GroupCommits++
		segs[i].pending = nil
	}
	return firstErr
}

// flushActiveLocked group-commits every active appender's buffer.
func (fs *FS) flushActiveLocked() error { return fs.flushAffinitiesLocked(false) }

// flushOtherAffinitiesLocked group-commits every buffer except the
// affinity-0 appender's, which the serial summary-tail sync flushes
// inside the record's own command (the fanned sync flushes it on a
// worker plane instead — see syncJournalLocked).
func (fs *FS) flushOtherAffinitiesLocked() error { return fs.flushAffinitiesLocked(true) }

// dirtyAffinitiesLocked counts affinity classes with buffered,
// uncommitted appends.
func (fs *FS) dirtyAffinitiesLocked() int {
	n := 0
	for _, seg := range fs.active {
		if seg != nil && len(seg.pending) > 0 {
			n++
		}
	}
	return n
}

// appendBlock appends data to the log in the affinity's active
// segment and returns its PBA, cleaning first when free space is low.
// The block is buffered in memory and group-committed with its
// neighbours once WritebackBlocks are pending (or on seal/Sync) — the
// write path issues batched multi-block device commands, not
// block-at-a-time writes. A heat-oblivious FS has no notion of heat
// affinity, so the baseline configuration collapses every class onto
// one appender — that is the "clustering off" half of the §4.1
// ablation.
func (fs *FS) appendBlock(data []byte, affinity uint8) (uint64, error) {
	if !fs.p.HeatAware {
		affinity = 0
	}
	seg := fs.active[affinity]
	if seg == nil || seg.next >= fs.p.SegmentBlocks {
		if seg != nil {
			if err := fs.sealSegment(seg); err != nil {
				return 0, err
			}
		}
		fs.lowSpaceCleanLocked()
		seg = fs.sm.allocSegment(affinity)
		if seg == nil {
			return 0, ErrFull
		}
		fs.active[affinity] = seg
	}
	pba := seg.start + uint64(seg.next)
	seg.next++
	seg.pending = append(seg.pending, data)
	seg.modTime = fs.now()
	fs.stats.BlocksAppended++
	fs.appended++
	if fs.p.AuditEvery > 0 {
		fs.sinceAudit++
		if fs.sinceAudit >= uint64(fs.p.AuditEvery) {
			fs.sinceAudit = 0
			fs.kickAuditorLocked()
		}
	}
	if len(seg.pending) >= fs.p.WritebackBlocks {
		if err := fs.flushSegment(seg); err != nil {
			return 0, err
		}
	}
	return pba, nil
}

// Sync flushes all dirty data and inodes to the log, group-commits
// the active segments, and acks durability the cheap way: it appends
// one summary record to the roll-forward journal — one batched write
// command — instead of rewriting the checkpoint region. A full
// checkpoint is written only when the CheckpointEvery policy says one
// is due, when no journal space is available, or when the delta is
// too large for a single record.
func (fs *FS) Sync() error {
	return fs.SyncTraced(nil)
}

// SyncTraced is Sync with per-operation attribution; nil task behaves
// exactly like Sync.
func (fs *FS) SyncTraced(task *trace.Task) error {
	fs.lockTask(task)
	defer fs.unlockTask()
	return fs.syncLocked()
}

// Checkpoint forces a full checkpoint: it flushes everything a Sync
// would and rewrites the checkpoint region, resetting the journal
// chain so the replayable tail is empty. Use it to bound mount-time
// replay when the workload syncs far more often than the background
// policy checkpoints.
func (fs *FS) Checkpoint() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.ensureSyncSpaceLocked(); err != nil {
		return err
	}
	if err := fs.flushDirtyLocked(); err != nil {
		return err
	}
	return fs.syncMetaLocked()
}

// unwedgeFreeingLocked releases cleaner-gated segments when the FS is
// at rest. Cleaning triggered from the append path gates its freed
// segments (SegFreeing) without checkpointing — checkpointing
// mid-flush would persist stale inode graphs. At rest no flush is in
// flight, the metadata graph references only live blocks, and live
// blocks are never in emptied victims, so a checkpoint here safely
// stops referencing the gated segments and converts them.
func (fs *FS) unwedgeFreeingLocked() error {
	if fs.sm.freeingSegments() == 0 {
		return nil
	}
	return fs.syncMetaLocked()
}

// ensureSyncSpaceLocked secures enough SegFree segments to flush
// everything currently buffered. Cleaning that triggers mid-flush can
// only produce gated (SegFreeing) segments — converting them needs a
// checkpoint, which is only safe at rest — so a whole sync's worth of
// usable space must be carved out up front: clean, checkpoint,
// convert, repeat until the estimate fits or cleaning stops making
// net progress. Without this, a write-heavy workload near capacity
// wedges into ErrFull with reclaimable space sitting idle.
func (fs *FS) ensureSyncSpaceLocked() error {
	need := fs.syncSpaceNeedLocked()
	// A background pass mid-copy owns the cleaner, so cleaning inline
	// here would no-op; rather than wedge into ErrFull with segments
	// seconds from reclaimable, wait for the pass to commit. The wait
	// releases fs.mu (condition variable), letting the commit in; the
	// need is recomputed because writes may land while we sleep.
	for fs.cleaning && fs.sm.freeSegments() < need {
		fs.waitCleanIdleLocked(need)
		need = fs.syncSpaceNeedLocked()
	}
	for tries := 0; fs.sm.freeSegments() < need && tries < len(fs.sm.segs); tries++ {
		before := fs.sm.freeSegments()
		fs.cleanLocked(need)
		if err := fs.syncMetaLocked(); err != nil {
			return err
		}
		if fs.sm.freeSegments() <= before {
			break // no net gain; the flush will surface ErrFull if short
		}
	}
	return nil
}

// syncSpaceNeedLocked estimates the free segments a full flush of the
// current dirty state needs, reserve included.
func (fs *FS) syncSpaceNeedLocked() int {
	blocks := 0
	for _, m := range fs.dirty {
		blocks += len(m) + 1 // data blocks plus the inode rewrite
	}
	for ino := range fs.names {
		if _, ok := fs.imap[ino]; !ok {
			blocks++ // fresh inode for a never-written file
		}
	}
	return blocks/fs.p.SegmentBlocks + 1 + fs.p.ReserveSegments
}

func (fs *FS) syncLocked() error {
	fs.stats.Syncs++
	tr := fs.dev.Tracer()
	t0 := fs.now()
	if err := fs.ensureSyncSpaceLocked(); err != nil {
		return err
	}
	fs.emitSpan(tr, "sync-space", t0, int64(fs.sm.freeSegments()), 0)
	t1 := fs.now()
	if err := fs.flushDirtyLocked(); err != nil {
		return err
	}
	fs.emitSpan(tr, "sync-flush", t1, 0, 0)
	t2 := fs.now()
	if fs.checkpointDueLocked() {
		err := fs.syncMetaLocked()
		fs.emitSpan(tr, "sync-meta", t2, 0, 0)
		return err
	}
	err := fs.syncJournalLocked()
	if errors.Is(err, errJournalFull) {
		// The delta cannot be journaled (no space, or too large for
		// one record); a checkpoint captures the same state directly.
		fs.stats.CheckpointFallbacks++
		err = fs.syncMetaLocked()
		fs.emitSpan(tr, "sync-meta", t2, 0, 1)
		return err
	}
	fs.emitSpan(tr, "sync-journal", t2, 0, 0)
	return err
}

// flushDirtyLocked flushes every dirty inode to the log in
// deterministic order, so experiments stay reproducible.
func (fs *FS) flushDirtyLocked() error {
	inos := make([]Ino, 0, len(fs.dirty))
	for ino := range fs.dirty {
		inos = append(inos, ino)
	}
	sortInos(inos)
	for _, ino := range inos {
		if err := fs.flushInode(ino); err != nil {
			return err
		}
	}
	return nil
}

// checkpointDueLocked decides whether this Sync must write a full
// checkpoint: always before the first one exists (there is nothing to
// roll forward from), whenever the journal is unavailable, and once
// the CheckpointEvery appended-blocks budget is spent.
func (fs *FS) checkpointDueLocked() bool {
	return fs.ckptEpoch == 0 || fs.jpromise == 0 || fs.appended >= uint64(fs.p.CheckpointEvery)
}

// writeFreshInodesLocked writes inodes for files that have none on the
// log yet; without one, durable metadata would record their directory
// entry but no imap entry, leaving them half-existent after a mount.
func (fs *FS) writeFreshInodesLocked() error {
	fresh := make([]Ino, 0)
	for ino := range fs.names {
		if _, ok := fs.imap[ino]; !ok {
			fresh = append(fresh, ino)
		}
	}
	sortInos(fresh)
	for _, ino := range fresh {
		in, err := fs.inodeTask(fs.curTask, ino)
		if err != nil {
			return err
		}
		if err := fs.writeInode(in); err != nil {
			return err
		}
	}
	return nil
}

// syncMetaLocked makes the current metadata graph durable the
// heavyweight way: it writes inodes for files that have none on the
// log yet, group-commits every active buffer, writes a full
// checkpoint, and — once the checkpoint is on the medium — releases
// the cleaner's SegFreeing segments for reuse. Callers must not be
// mid-flush: every imap entry has to point at a complete inode image
// (buffered or written). For the summary-record counterpart, see
// syncJournalLocked.
func (fs *FS) syncMetaLocked() error {
	if err := fs.writeFreshInodesLocked(); err != nil {
		return err
	}
	// Everything the checkpoint is about to ack must be on the medium
	// before the checkpoint itself is.
	if err := fs.flushActiveLocked(); err != nil {
		return err
	}
	if err := fs.writeCheckpointLocked(); err != nil {
		return err
	}
	fs.sm.convertFreeing()
	return nil
}

func (fs *FS) flushInode(ino Ino) error {
	in, err := fs.inodeTask(fs.curTask, ino)
	if err != nil {
		return err
	}
	blocks := fs.dirty[ino]
	idxs := make([]int, 0, len(blocks))
	for i := range blocks {
		idxs = append(idxs, i)
	}
	sortInts(idxs)
	for _, idx := range idxs {
		pba, aerr := fs.appendBlock(blocks[idx], in.Affinity)
		if aerr != nil {
			return aerr
		}
		for len(in.Blocks) <= idx {
			in.Blocks = append(in.Blocks, 0)
		}
		if old := in.Blocks[idx]; old != 0 {
			fs.sm.markDead(old)
			delete(fs.owners, old)
		}
		in.Blocks[idx] = pba
		fs.sm.markLive(pba, fs.now())
		fs.owners[pba] = blockRef{ino: ino, idx: idx}
		fs.jBlocks = append(fs.jBlocks, blockPtr{ino: ino, idx: int32(idx), pba: pba})
	}
	// The promised size is now backed by blocks on the log.
	if ps, ok := fs.pendSize[ino]; ok {
		if ps > in.Size {
			in.Size = ps
		}
		delete(fs.pendSize, ino)
	}
	delete(fs.dirty, ino)
	return fs.writeInode(in)
}

// writeInode appends the inode block to the log and updates the imap.
func (fs *FS) writeInode(in *Inode) error {
	buf, err := in.Marshal()
	if err != nil {
		return err
	}
	pba, err := fs.appendBlock(buf, in.Affinity)
	if err != nil {
		return err
	}
	if old, ok := fs.imap[in.Ino]; ok {
		fs.sm.markDead(old)
		delete(fs.owners, old)
	}
	fs.imap[in.Ino] = pba
	fs.sm.markLive(pba, fs.now())
	fs.owners[pba] = blockRef{ino: in.Ino, idx: -1}
	fs.jImap[in.Ino] = true
	return nil
}

// Segments exports the segment table for experiments.
func (fs *FS) Segments() []SegmentInfo {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.sm.snapshot()
}

// FreeSegments reports the number of reusable segments.
func (fs *FS) FreeSegments() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.sm.freeSegments()
}

func sortInos(v []Ino) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
