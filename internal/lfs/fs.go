package lfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sero/internal/device"
)

// Params configures the file system.
type Params struct {
	// SegmentBlocks is the segment size in blocks; must be a power of
	// two so heated lines stay aligned. Default 64.
	SegmentBlocks int

	// CheckpointBlocks reserves space at the front of the device for
	// the checkpoint region; rounded up to a whole number of segments.
	// Default one segment.
	CheckpointBlocks int

	// HeatAware enables the SERO policies of §4.1: heated lines are
	// clustered into dedicated segments and the cleaner skips them.
	// Disabling it models a heat-oblivious LFS that mixes heated lines
	// into data segments (the E2/E3 ablation baseline).
	HeatAware bool

	// ReserveSegments is the free-segment low-water mark that triggers
	// cleaning on the write path.
	ReserveSegments int
}

// DefaultParams returns the standard heat-aware configuration.
func DefaultParams() Params {
	return Params{
		SegmentBlocks:    64,
		CheckpointBlocks: 64,
		HeatAware:        true,
		ReserveSegments:  2,
	}
}

// FS errors.
var (
	// ErrNotFound reports a missing file name or inode.
	ErrNotFound = errors.New("lfs: file not found")
	// ErrExists reports a Create of an existing name.
	ErrExists = errors.New("lfs: file exists")
	// ErrFileHeated reports a mutation of a heated (frozen) file.
	ErrFileHeated = errors.New("lfs: file is heated (read-only)")
	// ErrFull reports that no free segment is available even after
	// cleaning.
	ErrFull = errors.New("lfs: file system full")
	// ErrTooLarge reports a write beyond MaxFileBytes.
	ErrTooLarge = errors.New("lfs: file too large")
)

// blockRef identifies the owner of a live block.
type blockRef struct {
	ino Ino
	idx int // data block index, or -1 for the inode block itself
}

// FS is a log-structured file system over a SERO device.
type FS struct {
	mu  sync.Mutex
	dev *device.Device
	p   Params

	sm     *segmentManager
	imap   map[Ino]uint64 // ino -> PBA of current inode block
	inodes map[Ino]*Inode // parsed inode cache (authoritative between syncs)
	owners map[uint64]blockRef
	dir    map[string]Ino
	names  map[Ino]string
	next   Ino

	// active data segments per affinity class.
	active map[uint8]*segment
	// heatSeg is the current heated-line segment per affinity
	// (heat-aware mode); heatCursor is the next free offset in it.
	heatSeg    map[uint8]*segment
	heatCursor map[uint8]int

	dirty map[Ino]map[int][]byte

	// cleaning guards against the cleaner re-triggering itself via its
	// own log appends.
	cleaning bool

	stats Stats
}

// Stats counts file-system activity for the experiments.
type Stats struct {
	BytesWritten    uint64
	BlocksAppended  uint64
	CleanerCopied   uint64
	CleanerPasses   uint64
	CleanerSkipped  uint64 // pinned segments the cleaner refused to touch
	HeatedFiles     uint64
	HeatedLineBlock uint64
	Syncs           uint64
}

// New formats a fresh file system on dev.
func New(dev *device.Device, p Params) (*FS, error) {
	if p.SegmentBlocks <= 0 {
		p = DefaultParams()
	}
	if p.SegmentBlocks&(p.SegmentBlocks-1) != 0 {
		return nil, fmt.Errorf("lfs: segment size %d not a power of two", p.SegmentBlocks)
	}
	ckpt := p.CheckpointBlocks
	if ckpt <= 0 {
		ckpt = p.SegmentBlocks
	}
	// Round the checkpoint region up to whole segments so the log
	// base stays aligned.
	if rem := ckpt % p.SegmentBlocks; rem != 0 {
		ckpt += p.SegmentBlocks - rem
	}
	p.CheckpointBlocks = ckpt
	logBlocks := dev.Blocks() - ckpt
	if logBlocks < 2*p.SegmentBlocks {
		return nil, fmt.Errorf("lfs: device too small: %d log blocks", logBlocks)
	}
	fs := &FS{
		dev:        dev,
		p:          p,
		sm:         newSegmentManager(uint64(ckpt), logBlocks, p.SegmentBlocks),
		imap:       make(map[Ino]uint64),
		inodes:     make(map[Ino]*Inode),
		owners:     make(map[uint64]blockRef),
		dir:        make(map[string]Ino),
		names:      make(map[Ino]string),
		next:       RootIno + 1,
		active:     make(map[uint8]*segment),
		heatSeg:    make(map[uint8]*segment),
		heatCursor: make(map[uint8]int),
		dirty:      make(map[Ino]map[int][]byte),
	}
	return fs, nil
}

// Device returns the underlying device.
func (fs *FS) Device() *device.Device { return fs.dev }

// Params returns the configuration in effect.
func (fs *FS) Params() Params { return fs.p }

// Stats returns a copy of the counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// now returns the device's virtual time.
func (fs *FS) now() time.Duration { return fs.dev.Clock().Now() }

// Create makes an empty file with the given heat-affinity class.
func (fs *FS) Create(name string, affinity uint8) (Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if name == "" {
		return 0, errors.New("lfs: empty file name")
	}
	if _, ok := fs.dir[name]; ok {
		return 0, fmt.Errorf("%w: %s", ErrExists, name)
	}
	ino := fs.next
	fs.next++
	fs.inodes[ino] = &Inode{Ino: ino, Affinity: affinity, MTime: fs.now()}
	fs.dir[name] = ino
	fs.names[ino] = name
	return ino, nil
}

// Lookup resolves a name to an inode number.
func (fs *FS) Lookup(name string) (Ino, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, ok := fs.dir[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return ino, nil
}

// Names returns all file names.
func (fs *FS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.dir))
	for n := range fs.dir {
		out = append(out, n)
	}
	return out
}

// Stat returns a copy of the file's inode.
func (fs *FS) Stat(ino Ino) (Inode, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.inode(ino)
	if err != nil {
		return Inode{}, err
	}
	cp := *in
	cp.Blocks = append([]uint64(nil), in.Blocks...)
	cp.HeatLines = append([]uint64(nil), in.HeatLines...)
	return cp, nil
}

func (fs *FS) inode(ino Ino) (*Inode, error) {
	if in, ok := fs.inodes[ino]; ok {
		return in, nil
	}
	pba, ok := fs.imap[ino]
	if !ok {
		return nil, fmt.Errorf("%w: ino %d", ErrNotFound, ino)
	}
	data, err := fs.dev.MRS(pba)
	if err != nil {
		return nil, fmt.Errorf("lfs: reading inode %d at %d: %w", ino, pba, err)
	}
	in, err := UnmarshalInode(data)
	if err != nil {
		return nil, err
	}
	fs.inodes[ino] = in
	return in, nil
}

// Write stores data at the given byte offset. Data is buffered until
// Sync. Writes to heated files fail.
func (fs *FS) Write(ino Ino, off uint64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.inode(ino)
	if err != nil {
		return err
	}
	if in.Heated() {
		return fmt.Errorf("%w: ino %d", ErrFileHeated, ino)
	}
	end := off + uint64(len(data))
	if end > MaxFileBytes {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, end)
	}
	if fs.dirty[ino] == nil {
		fs.dirty[ino] = make(map[int][]byte)
	}
	fs.stats.BytesWritten += uint64(len(data))
	for len(data) > 0 {
		blk := int(off / device.DataBytes)
		inner := int(off % device.DataBytes)
		n := device.DataBytes - inner
		if n > len(data) {
			n = len(data)
		}
		buf := fs.dirty[ino][blk]
		if buf == nil {
			buf = make([]byte, device.DataBytes)
			// Read-modify-write for partial overwrites of existing
			// blocks.
			if blk < len(in.Blocks) && (inner != 0 || n != device.DataBytes) {
				old, rerr := fs.dev.MRS(in.Blocks[blk])
				if rerr == nil {
					copy(buf, old)
				}
			}
			fs.dirty[ino][blk] = buf
		}
		copy(buf[inner:], data[:n])
		data = data[n:]
		off += uint64(n)
	}
	if end > in.Size {
		in.Size = end
	}
	in.MTime = fs.now()
	return nil
}

// WriteFile is a convenience wrapper writing the whole file content at
// offset zero.
func (fs *FS) WriteFile(ino Ino, data []byte) error {
	return fs.Write(ino, 0, data)
}

// Read returns up to len(p) bytes from the file at offset off,
// consulting the dirty buffer first.
func (fs *FS) Read(ino Ino, off uint64, p []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.inode(ino)
	if err != nil {
		return 0, err
	}
	if off >= in.Size {
		return 0, nil
	}
	if max := in.Size - off; uint64(len(p)) > max {
		p = p[:max]
	}
	read := 0
	for read < len(p) {
		blk := int((off + uint64(read)) / device.DataBytes)
		inner := int((off + uint64(read)) % device.DataBytes)
		n := device.DataBytes - inner
		if n > len(p)-read {
			n = len(p) - read
		}
		var src []byte
		if buf, ok := fs.dirty[ino][blk]; ok {
			src = buf
		} else if blk < len(in.Blocks) {
			data, rerr := fs.dev.MRS(in.Blocks[blk])
			if rerr != nil {
				return read, fmt.Errorf("lfs: reading block %d of ino %d: %w", blk, ino, rerr)
			}
			src = data
		} else {
			src = make([]byte, device.DataBytes) // hole
		}
		copy(p[read:read+n], src[inner:inner+n])
		read += n
	}
	return read, nil
}

// ReadFile returns the whole file content.
func (fs *FS) ReadFile(ino Ino) ([]byte, error) {
	st, err := fs.Stat(ino)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size)
	n, err := fs.Read(ino, 0, buf)
	return buf[:n], err
}

// Delete removes a file. Heated files cannot be deleted (§5.2: "This
// implies writing the inode, which will be tamper-evident"); their
// space is permanently read-only anyway.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, ok := fs.dir[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	in, err := fs.inode(ino)
	if err != nil {
		return err
	}
	if in.Heated() {
		return fmt.Errorf("%w: %s", ErrFileHeated, name)
	}
	for _, pba := range in.Blocks {
		fs.sm.markDead(pba)
		delete(fs.owners, pba)
	}
	if pba, ok := fs.imap[ino]; ok {
		fs.sm.markDead(pba)
		delete(fs.owners, pba)
	}
	delete(fs.imap, ino)
	delete(fs.inodes, ino)
	delete(fs.dirty, ino)
	delete(fs.dir, name)
	delete(fs.names, ino)
	return nil
}

// retire transitions a filled segment out of the active state. A
// segment that acquired heated lines while active (heat-oblivious
// placement) retires as pinned, never as cleanable-full.
func retireSegment(seg *segment) {
	if seg.heatedBlocks > 0 {
		seg.state = SegPinned
	} else {
		seg.state = SegFull
	}
}

// appendBlock writes data to the log in the affinity's active segment
// and returns its PBA, cleaning first when free space is low. A
// heat-oblivious FS has no notion of heat affinity, so the baseline
// configuration collapses every class onto one appender — that is the
// "clustering off" half of the §4.1 ablation.
func (fs *FS) appendBlock(data []byte, affinity uint8) (uint64, error) {
	if !fs.p.HeatAware {
		affinity = 0
	}
	seg := fs.active[affinity]
	if seg == nil || seg.next >= fs.p.SegmentBlocks {
		if seg != nil {
			retireSegment(seg)
		}
		if fs.sm.freeSegments() <= fs.p.ReserveSegments {
			fs.cleanLocked(fs.p.ReserveSegments + 1)
		}
		seg = fs.sm.allocSegment(affinity)
		if seg == nil {
			return 0, ErrFull
		}
		fs.active[affinity] = seg
	}
	pba := seg.start + uint64(seg.next)
	seg.next++
	if err := fs.dev.MWS(pba, data); err != nil {
		return 0, err
	}
	seg.modTime = fs.now()
	fs.stats.BlocksAppended++
	return pba, nil
}

// Sync flushes all dirty data and inodes to the log and writes a
// checkpoint.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncLocked()
}

func (fs *FS) syncLocked() error {
	fs.stats.Syncs++
	// Deterministic flush order keeps experiments reproducible.
	inos := make([]Ino, 0, len(fs.dirty))
	for ino := range fs.dirty {
		inos = append(inos, ino)
	}
	sortInos(inos)
	for _, ino := range inos {
		if err := fs.flushInode(ino); err != nil {
			return err
		}
	}
	return fs.writeCheckpointLocked()
}

func (fs *FS) flushInode(ino Ino) error {
	in, err := fs.inode(ino)
	if err != nil {
		return err
	}
	blocks := fs.dirty[ino]
	idxs := make([]int, 0, len(blocks))
	for i := range blocks {
		idxs = append(idxs, i)
	}
	sortInts(idxs)
	for _, idx := range idxs {
		pba, aerr := fs.appendBlock(blocks[idx], in.Affinity)
		if aerr != nil {
			return aerr
		}
		for len(in.Blocks) <= idx {
			in.Blocks = append(in.Blocks, 0)
		}
		if old := in.Blocks[idx]; old != 0 {
			fs.sm.markDead(old)
			delete(fs.owners, old)
		}
		in.Blocks[idx] = pba
		fs.sm.markLive(pba, fs.now())
		fs.owners[pba] = blockRef{ino: ino, idx: idx}
	}
	delete(fs.dirty, ino)
	return fs.writeInode(in)
}

// writeInode appends the inode block to the log and updates the imap.
func (fs *FS) writeInode(in *Inode) error {
	buf, err := in.Marshal()
	if err != nil {
		return err
	}
	pba, err := fs.appendBlock(buf, in.Affinity)
	if err != nil {
		return err
	}
	if old, ok := fs.imap[in.Ino]; ok {
		fs.sm.markDead(old)
		delete(fs.owners, old)
	}
	fs.imap[in.Ino] = pba
	fs.sm.markLive(pba, fs.now())
	fs.owners[pba] = blockRef{ino: in.Ino, idx: -1}
	return nil
}

// Segments exports the segment table for experiments.
func (fs *FS) Segments() []SegmentInfo {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.sm.snapshot()
}

// FreeSegments reports the number of reusable segments.
func (fs *FS) FreeSegments() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.sm.freeSegments()
}

func sortInos(v []Ino) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
