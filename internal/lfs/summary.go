package lfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"sero/internal/device"
)

// The segment journal: roll-forward summary records.
//
// Classic LFS treats the log itself as the journal — segment summary
// blocks let a mount roll forward from the last checkpoint instead of
// forcing every Sync to rewrite the whole checkpoint region. Here the
// summary chain lives *in the data log itself*, at the affinity-0
// appender's write frontier, so the summary-tail ack rides the same
// servo settle as the data it acks:
//
//   - every chain element carries a sequence number and a checksum
//     chained from the checkpoint that anchors the epoch, so replay
//     can detect a torn or stale tail and stop cleanly at the last
//     valid record;
//   - a delta record describes everything since the previous record:
//     the inode-map updates (the replay essentials), the ordered
//     directory ops (create/remove/rename), the per-block {ino,offset}
//     back-pointers of appended data (the fsck cross-check), and the
//     next-inode counter;
//   - every record is followed by a reserved one-block *promise* slot
//     (the position of the next chain element), which data appends
//     skip. When data has landed since the last record, Sync writes a
//     jump into the promise slot pointing at the new record behind
//     that data — composed, whenever the run is contiguous, into ONE
//     batched device.WriteBlocks command: [jump][buffered data][record].
//     The record trails the data it acks, so a prefix-torn command can
//     never ack missing blocks.
//
// Segments holding chain blocks are flagged (segment.journal) and
// refused by the cleaner until the next checkpoint obsoletes the
// chain and clears every flag.
//
// The deltas play a second role since the checkpointed liveness table
// (checkpoint.go): a record's imap updates and data back-pointers mark
// exactly the inos whose liveness moved after the checkpoint, so a
// table-driven mount adopts the table for every untouched ino and
// re-reads only the touched ones — the deltas are the table's
// increments. Every path that moves liveness (flush, delete, heat,
// cleaner relocation) must therefore journal the affected ino before
// the next covering point, an invariant serofsck's table cross-check
// verifies.

const (
	summaryMagic = "SJRN"
	// sumHdrBytes is the record header occupying the front of the
	// record's first block; the payload starts right after it.
	sumHdrBytes = 28

	recDelta byte = 1
	recJump  byte = 2
)

// Directory-op kinds journaled in a delta record.
const (
	dirOpCreate byte = iota
	dirOpRemove
	dirOpRename
)

// dirOp is one journaled directory mutation. Ops are applied in order
// during replay, so create/remove/rename sequences inside one sync
// interval resolve exactly as they happened.
type dirOp struct {
	op       byte
	ino      Ino
	affinity uint8
	name     string // created/removed name, or rename source
	newName  string // rename target
}

// blockPtr is a per-block back-pointer: block pba holds data block idx
// of file ino. Replay itself rebuilds state from the imap deltas (each
// sync rewrites the inodes it touched), so these are the classic
// segment-summary cross-check serofsck uses to verify back-pointer
// agreement with the imap.
type blockPtr struct {
	ino Ino
	idx int32
	pba uint64
}

// imapDelta is one inode-map update: set ino -> pba, or remove ino.
type imapDelta struct {
	ino    Ino
	remove bool
	pba    uint64
}

// summaryDelta is the decoded payload of one delta record.
type summaryDelta struct {
	next   Ino
	dirOps []dirOp
	imap   []imapDelta
	blocks []blockPtr
}

// errJournalFull reports that the pending delta cannot be journaled —
// it exceeds one record, or no journal segment is available. The sync
// path falls back to a full checkpoint, which needs no journal space.
var errJournalFull = errors.New("lfs: summary record does not fit the journal")

// chainSeed derives the summary-chain seed of a checkpoint epoch. The
// epoch is folded in so records left over from an earlier chain in a
// recycled segment can never check out against the wrong checkpoint.
func chainSeed(epoch uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(summaryMagic))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], epoch)
	h.Write(b[:])
	return h.Sum64()
}

// chainNext folds one record into the running chain checksum.
func chainNext(prev, seq uint64, kind byte, payload []byte) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], prev)
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], seq)
	h.Write(b[:])
	h.Write([]byte{kind})
	h.Write(payload)
	return h.Sum64()
}

// summaryBlocks returns the number of blocks a record with the given
// payload length occupies (header shares the first block).
func summaryBlocks(payloadLen int) int {
	n := 1
	rem := payloadLen - (device.DataBytes - sumHdrBytes)
	for rem > 0 {
		n++
		rem -= device.DataBytes
	}
	return n
}

// summaryCapacity is the payload capacity of an n-block record.
func summaryCapacity(nblocks int) int {
	return nblocks*device.DataBytes - sumHdrBytes
}

// buildRecordBlocks lays a record out as device blocks. chain is the
// running chain value *after* folding this record.
func buildRecordBlocks(kind byte, seq, chain uint64, payload []byte) [][]byte {
	nblocks := summaryBlocks(len(payload))
	flat := make([]byte, nblocks*device.DataBytes)
	copy(flat[0:4], summaryMagic)
	flat[4] = kind
	binary.BigEndian.PutUint16(flat[6:8], uint16(nblocks))
	binary.BigEndian.PutUint64(flat[8:16], seq)
	binary.BigEndian.PutUint64(flat[16:24], chain)
	binary.BigEndian.PutUint32(flat[24:28], uint32(len(payload)))
	copy(flat[sumHdrBytes:], payload)
	blocks := make([][]byte, nblocks)
	for i := range blocks {
		blocks[i] = flat[i*device.DataBytes : (i+1)*device.DataBytes]
	}
	return blocks
}

// recHeader is the parsed fixed header of a summary record.
type recHeader struct {
	kind       byte
	nblocks    int
	seq        uint64
	chain      uint64
	payloadLen int
}

// parseRecHeader validates and decodes a record's first block. A false
// return means "not a record here" — the clean end of the chain.
func parseRecHeader(block []byte) (recHeader, bool) {
	if len(block) < sumHdrBytes || string(block[0:4]) != summaryMagic {
		return recHeader{}, false
	}
	h := recHeader{
		kind:       block[4],
		nblocks:    int(binary.BigEndian.Uint16(block[6:8])),
		seq:        binary.BigEndian.Uint64(block[8:16]),
		chain:      binary.BigEndian.Uint64(block[16:24]),
		payloadLen: int(binary.BigEndian.Uint32(block[24:28])),
	}
	if h.kind != recDelta && h.kind != recJump {
		return recHeader{}, false
	}
	if h.nblocks < 1 || h.payloadLen < 0 || h.payloadLen > summaryCapacity(h.nblocks) {
		return recHeader{}, false
	}
	if summaryBlocks(h.payloadLen) != h.nblocks {
		return recHeader{}, false
	}
	return h, true
}

// encodeDeltaLocked serializes the pending journal deltas. Map-derived
// sections are sorted so identical histories produce identical records.
// Caller holds fs.mu exclusively.
func (fs *FS) encodeDeltaLocked() ([]byte, error) {
	var buf []byte
	buf = binary.BigEndian.AppendUint64(buf, uint64(fs.next))

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(fs.jDirOps)))
	for _, op := range fs.jDirOps {
		if len(op.name) > 255 || len(op.newName) > 255 {
			return nil, fmt.Errorf("lfs: journaled name too long")
		}
		buf = append(buf, op.op)
		buf = binary.BigEndian.AppendUint64(buf, uint64(op.ino))
		buf = append(buf, op.affinity)
		buf = append(buf, byte(len(op.name)))
		buf = append(buf, op.name...)
		buf = append(buf, byte(len(op.newName)))
		buf = append(buf, op.newName...)
	}

	inos := make([]Ino, 0, len(fs.jImap))
	for ino := range fs.jImap {
		inos = append(inos, ino)
	}
	sortInos(inos)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(inos)))
	for _, ino := range inos {
		buf = binary.BigEndian.AppendUint64(buf, uint64(ino))
		if pba, ok := fs.imap[ino]; ok {
			buf = append(buf, 0)
			buf = binary.BigEndian.AppendUint64(buf, pba)
		} else {
			buf = append(buf, 1)
			buf = binary.BigEndian.AppendUint64(buf, 0)
		}
	}

	buf = binary.BigEndian.AppendUint32(buf, uint32(len(fs.jBlocks)))
	for _, bp := range fs.jBlocks {
		buf = binary.BigEndian.AppendUint64(buf, uint64(bp.ino))
		buf = binary.BigEndian.AppendUint32(buf, uint32(bp.idx))
		buf = binary.BigEndian.AppendUint64(buf, bp.pba)
	}
	return buf, nil
}

// decodeDelta parses a delta payload. Any structural violation fails
// the whole record — replay treats it as the end of the chain.
func decodeDelta(buf []byte) (summaryDelta, error) {
	var d summaryDelta
	bad := func(what string) (summaryDelta, error) {
		return summaryDelta{}, fmt.Errorf("lfs: malformed summary delta: %s", what)
	}
	if len(buf) < 12 {
		return bad("short header")
	}
	d.next = Ino(binary.BigEndian.Uint64(buf[0:8]))
	off := 8

	nOps := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nOps; i++ {
		if off+11 > len(buf) {
			return bad("dir op header")
		}
		op := dirOp{op: buf[off], ino: Ino(binary.BigEndian.Uint64(buf[off+1:])), affinity: buf[off+9]}
		nl := int(buf[off+10])
		off += 11
		if off+nl+1 > len(buf) {
			return bad("dir op name")
		}
		op.name = string(buf[off : off+nl])
		off += nl
		nl2 := int(buf[off])
		off++
		if off+nl2 > len(buf) {
			return bad("dir op new name")
		}
		op.newName = string(buf[off : off+nl2])
		off += nl2
		if op.op > dirOpRename || op.name == "" || (op.op == dirOpRename && op.newName == "") {
			return bad("dir op kind")
		}
		d.dirOps = append(d.dirOps, op)
	}

	if off+4 > len(buf) {
		return bad("imap count")
	}
	nImap := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nImap; i++ {
		if off+17 > len(buf) {
			return bad("imap entry")
		}
		e := imapDelta{
			ino:    Ino(binary.BigEndian.Uint64(buf[off:])),
			remove: buf[off+8] != 0,
			pba:    binary.BigEndian.Uint64(buf[off+9:]),
		}
		off += 17
		d.imap = append(d.imap, e)
	}

	if off+4 > len(buf) {
		return bad("block count")
	}
	nBlocks := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nBlocks; i++ {
		if off+20 > len(buf) {
			return bad("block entry")
		}
		d.blocks = append(d.blocks, blockPtr{
			ino: Ino(binary.BigEndian.Uint64(buf[off:])),
			idx: int32(binary.BigEndian.Uint32(buf[off+8:])),
			pba: binary.BigEndian.Uint64(buf[off+12:]),
		})
		off += 20
	}
	if off != len(buf) {
		return bad("trailing bytes")
	}
	return d, nil
}

// journalDirtyLocked reports whether any delta is pending since the
// last record or checkpoint.
func (fs *FS) journalDirtyLocked() bool {
	return len(fs.jDirOps) > 0 || len(fs.jImap) > 0 || len(fs.jBlocks) > 0
}

// clearDeltasLocked resets the pending deltas after they reach the
// medium (in a record or folded into a checkpoint).
func (fs *FS) clearDeltasLocked() {
	fs.jDirOps = nil
	fs.jImap = make(map[Ino]bool)
	fs.jBlocks = nil
}

// jumpBlock builds the one-block jump element for the promise slot,
// folding it into the chain and advancing the in-memory chain state.
func (fs *FS) foldJump(target uint64) []byte {
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], target)
	chain := chainNext(fs.jchain, fs.jseq, recJump, payload[:])
	blocks := buildRecordBlocks(recJump, fs.jseq, chain, payload[:])
	fs.jseq++
	fs.jchain = chain
	return blocks[0]
}

// foldRecord builds the delta record's blocks, folding it into the
// chain and advancing the in-memory chain state.
func (fs *FS) foldRecord(payload []byte) [][]byte {
	chain := chainNext(fs.jchain, fs.jseq, recDelta, payload)
	blocks := buildRecordBlocks(recDelta, fs.jseq, chain, payload)
	fs.jseq++
	fs.jchain = chain
	return blocks
}

// appendRecordLocked writes one delta record at the affinity-0 write
// frontier and links it from the promise slot the previous chain
// element reserved. In the common case — the promise slot sits right
// in front of the buffered run — the jump, the buffered data and the
// record commit as ONE contiguous batched write command: the
// summary-tail ack costs the same servo settle the data flush was
// paying anyway. The record always trails the data it acks, so a
// command torn at any block boundary can only lose the ack, never
// surface it without the data.
//
// Callers must have flushed every *other* affinity's buffer first.
func (fs *FS) appendRecordLocked(payload []byte) error {
	if fs.jpromise == 0 {
		return errJournalFull
	}
	tr := fs.dev.Tracer()
	t0 := fs.now()
	nb := summaryBlocks(len(payload))
	if nb+2 > fs.p.SegmentBlocks {
		return errJournalFull // record + promise can never fit one segment
	}
	seg := fs.active[0]
	// The record and the next promise slot must fit the current
	// segment; otherwise retire it and start a fresh one.
	if seg == nil || seg.next+nb+1 > fs.p.SegmentBlocks {
		if seg != nil {
			if err := fs.sealSegment(seg); err != nil {
				return err
			}
		}
		if seg = fs.sm.allocSegment(0); seg == nil {
			return errJournalFull
		}
		fs.active[0] = seg
	}
	pseg := fs.sm.segOf(fs.jpromise)
	promiseOff := -1
	if pseg == seg {
		promiseOff = int(fs.jpromise - seg.start)
	}
	lo := seg.next - len(seg.pending)

	// foldJump/foldRecord advance the in-memory chain (jseq/jchain)
	// before the device write: on any write failure below, memory
	// would be ahead of the medium and every later record would be
	// silently unreplayable. Disabling the journal (jpromise = 0)
	// forces the next Sync onto the checkpoint path, which re-anchors
	// the chain from scratch.
	switch {
	case promiseOff >= 0 && promiseOff == seg.next-1 && len(seg.pending) == 0:
		// Nothing appended since the promise was reserved: the record
		// goes directly into the promise slot. One command.
		blocks := fs.foldRecord(payload)
		if err := fs.dev.WriteBlocksTraced(fs.curTask, fs.jpromise, blocks); err != nil {
			fs.jpromise = 0
			return fmt.Errorf("lfs: writing summary record: %w", err)
		}
		seg.next = promiseOff + nb
		fs.stats.JournalBlocks += uint64(nb)
	case promiseOff >= 0 && promiseOff == lo-1 && len(seg.pending) > 0:
		// The fast path: promise slot, buffered run and record are
		// contiguous — [jump][data][record] in one batched command.
		recPos := seg.start + uint64(seg.next)
		run := make([][]byte, 0, 1+len(seg.pending)+nb)
		run = append(run, fs.foldJump(recPos))
		run = append(run, seg.pending...)
		run = append(run, fs.foldRecord(payload)...)
		if err := fs.dev.WriteBlocksTraced(fs.curTask, fs.jpromise, run); err != nil {
			fs.jpromise = 0
			return fmt.Errorf("lfs: writing summary-tailed group commit: %w", err)
		}
		fs.stats.GroupCommits++
		seg.pending = nil
		seg.next += nb
		fs.stats.JournalBlocks += uint64(nb + 1)
	default:
		// The promise slot is disconnected from the frontier (a
		// mid-sync write-back flushed the buffer, or the chain tail is
		// in an earlier segment): flush what is pending, then link
		// with an explicit jump.
		if err := fs.flushSegment(seg); err != nil {
			return err
		}
		fs.stats.JournalReanchors++
		recPos := seg.start + uint64(seg.next)
		jump := fs.foldJump(recPos)
		if err := fs.dev.WriteBlocksTraced(fs.curTask, fs.jpromise, [][]byte{jump}); err != nil {
			fs.jpromise = 0
			return fmt.Errorf("lfs: writing summary jump: %w", err)
		}
		fs.stats.JournalBlocks++
		if pseg != nil {
			pseg.journal = true
		}
		fs.jpromise = recPos
		seg.next++
		blocks := fs.foldRecord(payload)
		if err := fs.dev.WriteBlocksTraced(fs.curTask, recPos, blocks); err != nil {
			fs.jpromise = 0
			return fmt.Errorf("lfs: writing summary record: %w", err)
		}
		seg.next = int(recPos-seg.start) + nb
		fs.stats.JournalBlocks += uint64(nb)
	}
	// Reserve the next promise slot right behind the record.
	fs.jpromise = seg.start + uint64(seg.next)
	seg.next++
	seg.modTime = fs.now()
	seg.journal = true
	if pseg != nil {
		pseg.journal = true
	}
	fs.stats.JournalRecords++
	fs.emitSpan(tr, "journal-record", t0, int64(len(payload)), 0)
	return nil
}

// syncJournalLocked is the summary-tail half of the durability story:
// it makes the current metadata graph durable by flushing buffers and
// appending one delta record — no checkpoint rewrite. Like
// syncMetaLocked it must be called at rest (not mid-flush). Returns
// errJournalFull when the delta needs a checkpoint instead.
func (fs *FS) syncJournalLocked() error {
	if err := fs.writeFreshInodesLocked(); err != nil {
		return err
	}
	// Everything the record is about to ack must be on the medium no
	// later than the record itself. With worker planes and two or more
	// dirty classes the whole flush fans — including affinity 0, whose
	// run is often the largest (it carries the inode metadata) — and
	// the record then commits alone, strictly after the fan-out joins.
	// Otherwise the affinity-0 buffer stays pending here and flushes
	// inside the record's own command, in front of it, riding its
	// servo settle.
	if fs.p.Concurrency > 1 && fs.dirtyAffinitiesLocked() >= 2 {
		if err := fs.flushActiveLocked(); err != nil {
			return err
		}
	} else if err := fs.flushOtherAffinitiesLocked(); err != nil {
		return err
	}
	if !fs.journalDirtyLocked() && fs.sm.freeingSegments() == 0 {
		// Nothing to ack, nothing gated: no record needed. (No deltas
		// also means nothing was appended, so no affinity-0 buffer can
		// be pending — but flush defensively.)
		return fs.flushSegment(fs.active[0])
	}
	payload, err := fs.encodeDeltaLocked()
	if err != nil {
		return err
	}
	if err := fs.appendRecordLocked(payload); err != nil {
		return err
	}
	fs.clearDeltasLocked()
	// The record is the covering point for the cleaner's relocations:
	// any mount that could reach a reused segment replays through it.
	fs.sm.convertFreeing()
	return nil
}
