package lfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sero/internal/device"
	"sero/internal/trace"
)

// TestConcurrentFSStress hammers one FS from 16 goroutines with the
// full operation mix — create, append, overwrite, read, heat, clean,
// sync and metadata queries — and then verifies every file's content.
// Run under -race this is the write-path concurrency contract: reads
// take the metadata lock shared, appends buffer in memory, and the
// group-commit/cleaner machinery must never tear any of it.
func TestConcurrentFSStress(t *testing.T) {
	const (
		workers      = 16
		filesPerG    = 3
		roundsPerG   = 12
		maxFileBlk   = 4
		deviceBlocks = 8192
	)
	p := Params{
		SegmentBlocks:    32,
		CheckpointBlocks: 32,
		WritebackBlocks:  32,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      4,
	}
	fs := testFS(t, deviceBlocks, p)

	type fileState struct {
		name   string
		ino    Ino
		want   []byte
		heated bool
	}
	finals := make([][]fileState, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			files := make([]fileState, filesPerG)
			for i := range files {
				name := fmt.Sprintf("g%02d-f%d", g, i)
				ino, err := fs.Create(name, uint8(g%4))
				if err != nil {
					t.Errorf("g%d create %s: %v", g, name, err)
					return
				}
				files[i] = fileState{name: name, ino: ino}
			}
			for round := 0; round < roundsPerG; round++ {
				f := &files[rng.Intn(filesPerG)]
				switch op := rng.Intn(10); {
				case op < 4: // write fresh content
					if f.heated {
						continue
					}
					data := payload(byte(g*16+round), (1+rng.Intn(maxFileBlk))*device.DataBytes)
					if err := fs.WriteFile(f.ino, data); err != nil {
						t.Errorf("g%d write %s: %v", g, f.name, err)
						return
					}
					if len(data) > len(f.want) {
						f.want = append([]byte(nil), data...)
					} else {
						copy(f.want, data)
					}
				case op < 7: // read any of this goroutine's files back
					got, err := fs.ReadFile(f.ino)
					if err != nil {
						t.Errorf("g%d read %s: %v", g, f.name, err)
						return
					}
					if !bytes.Equal(got, f.want) {
						t.Errorf("g%d read %s: torn content (%d vs %d bytes)",
							g, f.name, len(got), len(f.want))
						return
					}
				case op < 8: // metadata traffic
					_ = fs.Names()
					_ = fs.Segments()
					_ = fs.FreeSegments()
					_ = fs.Bimodality()
					if _, err := fs.Lookup(f.name); err != nil {
						t.Errorf("g%d lookup %s: %v", g, f.name, err)
						return
					}
				case op < 9: // sync and occasionally clean
					if err := fs.Sync(); err != nil {
						t.Errorf("g%d sync: %v", g, err)
						return
					}
					if rng.Intn(2) == 0 {
						fs.Clean(fs.FreeSegments() + 1)
					}
				default: // heat one still-mutable file
					if f.heated || len(f.want) == 0 {
						continue
					}
					if _, err := fs.HeatFile(f.name); err != nil {
						t.Errorf("g%d heat %s: %v", g, f.name, err)
						return
					}
					f.heated = true
				}
			}
			finals[g] = files
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for g, files := range finals {
		for _, f := range files {
			got, err := fs.ReadFile(f.ino)
			if err != nil {
				t.Fatalf("g%d final read %s: %v", g, f.name, err)
			}
			if !bytes.Equal(got, f.want) {
				t.Fatalf("g%d final read %s: content lost", g, f.name)
			}
			if f.heated {
				reps, err := fs.VerifyFile(f.name)
				if err != nil || len(reps) == 0 || !reps[0].OK {
					t.Fatalf("g%d heated file %s fails verify: %v", g, f.name, err)
				}
			}
		}
	}
}

// TestConcurrentFSStressCrashRecovery is the roll-forward variant of
// the stress test: 16 goroutines hammer an FS whose syncs ride the
// summary tail (checkpoints far apart), with renames in the mix, and
// the final state is then recovered through a replayed Mount — the
// journal and replay machinery under the race detector.
func TestConcurrentFSStressCrashRecovery(t *testing.T) {
	const (
		workers    = 16
		filesPerG  = 2
		roundsPerG = 10
	)
	p := Params{
		SegmentBlocks:    32,
		CheckpointBlocks: 32,
		WritebackBlocks:  32,
		CheckpointEvery:  1 << 20, // everything after the first sync journals
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      4,
	}
	fs := testFS(t, 8192, p)
	if err := fs.Sync(); err != nil { // anchoring checkpoint
		t.Fatal(err)
	}

	type fileState struct {
		name string
		ino  Ino
		want []byte
	}
	finals := make([][]fileState, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + g)))
			files := make([]fileState, filesPerG)
			for i := range files {
				name := fmt.Sprintf("j%02d-f%d", g, i)
				ino, err := fs.Create(name, uint8(g%4))
				if err != nil {
					t.Errorf("g%d create %s: %v", g, name, err)
					return
				}
				files[i] = fileState{name: name, ino: ino}
			}
			for round := 0; round < roundsPerG; round++ {
				f := &files[rng.Intn(filesPerG)]
				switch op := rng.Intn(10); {
				case op < 5: // write
					data := payload(byte(g*16+round), (1+rng.Intn(3))*device.DataBytes)
					if err := fs.WriteFile(f.ino, data); err != nil {
						t.Errorf("g%d write %s: %v", g, f.name, err)
						return
					}
					if len(data) > len(f.want) {
						f.want = append([]byte(nil), data...)
					} else {
						copy(f.want, data)
					}
				case op < 7: // sync (journal record)
					if err := fs.Sync(); err != nil {
						t.Errorf("g%d sync: %v", g, err)
						return
					}
				case op < 8: // rename within this goroutine's namespace
					newName := fmt.Sprintf("j%02d-r%d", g, round)
					if err := fs.Rename(f.name, newName); err != nil {
						t.Errorf("g%d rename %s: %v", g, f.name, err)
						return
					}
					f.name = newName
				default: // read back
					got, err := fs.ReadFile(f.ino)
					if err != nil || !bytes.Equal(got, f.want) {
						t.Errorf("g%d read %s: torn content (%v)", g, f.name, err)
						return
					}
				}
			}
			finals[g] = files
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := fs.Stats(); st.JournalRecords == 0 {
		t.Fatalf("stress ran without journal records: %+v", st)
	}
	// Crash-recover: everything above must come back through replay.
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	for g, files := range finals {
		for _, f := range files {
			ino, err := fs2.Lookup(f.name)
			if err != nil || ino != f.ino {
				t.Fatalf("g%d file %s lost in replay: %v", g, f.name, err)
			}
			got, err := fs2.ReadFile(ino)
			if err != nil || !bytes.Equal(got, f.want) {
				t.Fatalf("g%d file %s content lost in replay: %v", g, f.name, err)
			}
		}
	}
}

// buildFragmentedFS fills a fresh FS with files and then invalidates
// half of every file's blocks, producing a victim population at ~50 %
// utilisation. Identical inputs produce identical state.
func buildFragmentedFS(t testing.TB, conc int) *FS {
	p := Params{
		SegmentBlocks:    32,
		CheckpointBlocks: 32,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      conc,
	}
	fs := testFS(t, 4096, p)
	inos := make([]Ino, 24)
	var err error
	for i := range inos {
		if inos[i], err = fs.Create(fmt.Sprintf("f%02d", i), 0); err != nil {
			t.Fatal(err)
		}
		if err = fs.WriteFile(inos[i], payload(byte(i), 8*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err = fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, ino := range inos {
		if err = fs.WriteFile(ino, payload(byte(100+i), 4*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if err = fs.Sync(); err != nil {
		t.Fatal(err)
	}
	return fs
}

// fragWant is the expected content of file i in a buildFragmentedFS
// population: the 4-block overwrite followed by the surviving tail of
// the original 8-block write.
func fragWant(i int) []byte {
	want := append([]byte(nil), payload(byte(100+i), 4*device.DataBytes)...)
	return append(want, payload(byte(i), 8*device.DataBytes)[4*device.DataBytes:]...)
}

// TestParallelCleanerMatchesSerialLayout is the fan-out contract: on a
// quiet medium a Concurrency=4 cleaning pass must produce exactly the
// post-clean state of the serial pass — same segment table, same block
// pointers, same readable contents — while costing at most the serial
// pass's virtual time (slowest worker, not sum).
func TestParallelCleanerMatchesSerialLayout(t *testing.T) {
	serial := buildFragmentedFS(t, 1)
	parallel := buildFragmentedFS(t, 4)

	target := serial.FreeSegments() + 4
	t0 := serial.Device().Clock().Now()
	csS := serial.Clean(target)
	serialCost := serial.Device().Clock().Now() - t0

	t0 = parallel.Device().Clock().Now()
	csP := parallel.Clean(target)
	parallelCost := parallel.Device().Clock().Now() - t0

	if csS.SegmentsCleaned == 0 {
		t.Fatalf("serial cleaner reclaimed nothing: %+v", csS)
	}
	if csS.SegmentsCleaned != csP.SegmentsCleaned || csS.BlocksCopied != csP.BlocksCopied {
		t.Fatalf("pass stats diverge: serial %+v parallel %+v", csS, csP)
	}
	if csP.Workers != 4 {
		t.Fatalf("parallel pass ran at %d workers", csP.Workers)
	}

	segsS, segsP := serial.Segments(), parallel.Segments()
	if len(segsS) != len(segsP) {
		t.Fatalf("segment table sizes diverge")
	}
	for i := range segsS {
		if segsS[i] != segsP[i] {
			t.Fatalf("segment %d diverges: serial %+v parallel %+v", i, segsS[i], segsP[i])
		}
	}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("f%02d", i)
		inoS, _ := serial.Lookup(name)
		inoP, _ := parallel.Lookup(name)
		stS, err := serial.Stat(inoS)
		if err != nil {
			t.Fatal(err)
		}
		stP, err := parallel.Stat(inoP)
		if err != nil {
			t.Fatal(err)
		}
		if len(stS.Blocks) != len(stP.Blocks) {
			t.Fatalf("%s: block counts diverge", name)
		}
		for j := range stS.Blocks {
			if stS.Blocks[j] != stP.Blocks[j] {
				t.Fatalf("%s block %d: serial at %d, parallel at %d",
					name, j, stS.Blocks[j], stP.Blocks[j])
			}
		}
		got, err := parallel.ReadFile(inoP)
		if err != nil || !bytes.Equal(got, fragWant(i)) {
			t.Fatalf("%s corrupted by parallel clean: %v", name, err)
		}
	}

	if parallelCost > serialCost {
		t.Fatalf("parallel pass cost %v, serial %v — fan-out made it slower", parallelCost, serialCost)
	}
	if parallelCost >= serialCost*3/4 {
		t.Fatalf("parallel pass cost %v vs serial %v — no real fan-out win", parallelCost, serialCost)
	}
}

// TestWritebackBatchingBeatsBlockAtATime is the group-commit half of
// the acceptance criterion: whole-segment write-back must cost at
// most half the virtual time per appended block of the block-at-a-time
// path, with byte-identical results.
func TestWritebackBatchingBeatsBlockAtATime(t *testing.T) {
	appendCost := func(wb int) (costPerBlock int64, fs *FS) {
		p := smallParams()
		p.WritebackBlocks = wb
		fs = testFS(t, 2048, p)
		ino, err := fs.Create("stream", 0)
		if err != nil {
			t.Fatal(err)
		}
		const blocks = 48
		start := fs.Device().Clock().Now()
		for i := 0; i < blocks; i += 16 {
			if err := fs.WriteFile(ino, payload(9, 16*device.DataBytes)); err != nil {
				t.Fatal(err)
			}
			if err := fs.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		return int64(fs.Device().Clock().Now()-start) / blocks, fs
	}
	serialCost, fsSerial := appendCost(1)
	batchedCost, fsBatched := appendCost(0) // 0 = whole-segment commits
	if batchedCost*2 > serialCost {
		t.Fatalf("batched append %dns/block not ≤ half of serial %dns/block",
			batchedCost, serialCost)
	}
	inoS, _ := fsSerial.Lookup("stream")
	inoB, _ := fsBatched.Lookup("stream")
	gotS, err := fsSerial.ReadFile(inoS)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := fsBatched.ReadFile(inoB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotS, gotB) {
		t.Fatal("write-back granularity changed file contents")
	}
}

// TestWritebackSurvivesMount ensures the group-commit buffer cannot
// ack data the checkpoint does not cover: everything readable after
// Sync is readable after Mount, for every write-back granularity.
func TestWritebackSurvivesMount(t *testing.T) {
	for _, wb := range []int{1, 4, 0} {
		p := smallParams()
		p.WritebackBlocks = wb
		fs := testFS(t, 1024, p)
		ino, err := fs.Create("wb", 0)
		if err != nil {
			t.Fatal(err)
		}
		want := payload(byte(40+wb), 5*device.DataBytes)
		if err := fs.WriteFile(ino, want); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		fs2, err := Mount(fs.Device(), fs.Params())
		if err != nil {
			t.Fatalf("wb=%d: %v", wb, err)
		}
		got, err := fs2.ReadFile(ino)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("wb=%d: synced data lost across mount: %v", wb, err)
		}
	}
}

// TestCleanUnreachableTargetTerminates pins the net-progress guard:
// a target beyond what live data permits must stop, not thrash on the
// cleaner's own inode churn forever.
func TestCleanUnreachableTargetTerminates(t *testing.T) {
	fs := buildFragmentedFS(t, 2)
	total := len(fs.Segments())
	cs := fs.Clean(total + 100) // impossible
	if cs.SegmentsCleaned == 0 {
		t.Fatalf("cleaner reclaimed nothing: %+v", cs)
	}
	// Files intact afterwards.
	for i := 0; i < 24; i++ {
		ino, err := fs.Lookup(fmt.Sprintf("f%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		got, rerr := fs.ReadFile(ino)
		if rerr != nil || !bytes.Equal(got, fragWant(i)) {
			t.Fatalf("file %d corrupted: %v", i, rerr)
		}
	}
}

// TestSyncUnwedgesGatedSegments pins the SegFreeing recovery path: a
// write-heavy loop near capacity relies on append-triggered cleaning,
// whose freed segments stay gated until a checkpoint. Sync must
// release them (it starts at rest, so checkpointing is safe) instead
// of wedging into permanent ErrFull with reclaimable space idle.
func TestSyncUnwedgesGatedSegments(t *testing.T) {
	p := Params{SegmentBlocks: 32, CheckpointBlocks: 32, HeatAware: true, ReserveSegments: 2}
	fs := testFS(t, 1024, p) // 31 log segments; the churn needs ~17 live
	inos := make([]Ino, 16)
	var err error
	for i := range inos {
		if inos[i], err = fs.Create(fmt.Sprintf("w%02d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 12; round++ {
		for i, ino := range inos {
			if err := fs.WriteFile(ino, payload(byte(round*i), 8*device.DataBytes)); err != nil {
				t.Fatalf("round %d write: %v (free=%d)", round, err, fs.FreeSegments())
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatalf("round %d sync: %v (free=%d)", round, err, fs.FreeSegments())
		}
	}
	for i, ino := range inos {
		got, rerr := fs.ReadFile(ino)
		if rerr != nil || !bytes.Equal(got, payload(byte(11*i), 8*device.DataBytes)) {
			t.Fatalf("file %d corrupted after churn: %v", i, rerr)
		}
	}
}

// TestCheckpointValidation pins the independent checkpoint sizing:
// non-power-of-two and negative values are refused with clear errors,
// and an independent (larger) region round-trips through Mount.
func TestCheckpointValidation(t *testing.T) {
	dp := device.DefaultParams(2048)
	dev := device.New(dp)
	if _, err := New(dev, Params{SegmentBlocks: 16, CheckpointBlocks: 48, ReserveSegments: 1}); err == nil {
		t.Fatal("non-power-of-two checkpoint accepted")
	}
	if _, err := New(dev, Params{SegmentBlocks: 16, CheckpointBlocks: -16, ReserveSegments: 1}); err == nil {
		t.Fatal("negative checkpoint accepted")
	}
	p := smallParams()
	p.CheckpointBlocks = 64 // independent of the 16-block segments
	fs := testFS(t, 1024, p)
	if fs.Params().CheckpointBlocks != 64 {
		t.Fatalf("checkpoint region %d, want 64", fs.Params().CheckpointBlocks)
	}
	ino, _ := fs.Create("x", 0)
	want := payload(3, 2*device.DataBytes)
	if err := fs.WriteFile(ino, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile(ino)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatal("independent checkpoint region lost data across mount")
	}
	if _, err := fs.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err %v", err)
	}
}

// benchmarkFSAppend measures virtual time per appended block at the
// given write-back granularity (1 = the seed's block-at-a-time path).
func benchmarkFSAppend(b *testing.B, writeback int) {
	for i := 0; i < b.N; i++ {
		p := Params{
			SegmentBlocks:    64,
			CheckpointBlocks: 64,
			WritebackBlocks:  writeback,
			HeatAware:        true,
			ReserveSegments:  2,
		}
		fs := testFS(b, 8192, p)
		ino, err := fs.Create("bench", 0)
		if err != nil {
			b.Fatal(err)
		}
		const blocks = 192
		start := fs.Device().Clock().Now()
		for n := 0; n < blocks; n += 32 {
			if err := fs.WriteFile(ino, payload(byte(n), 32*device.DataBytes)); err != nil {
				b.Fatal(err)
			}
			if err := fs.Sync(); err != nil {
				b.Fatal(err)
			}
		}
		virt := fs.Device().Clock().Now() - start
		b.ReportMetric(float64(virt.Milliseconds()), "virt-ms")
		b.ReportMetric(float64(virt.Nanoseconds())/float64(blocks)/1e3, "virt-µs/block")
	}
}

func BenchmarkFSAppendSerial(b *testing.B)  { benchmarkFSAppend(b, 1) }
func BenchmarkFSAppendBatched(b *testing.B) { benchmarkFSAppend(b, 0) }

// BenchmarkFSAppendBatchedTraced is the batched append benchmark with
// a live tracer attached — the observability plane's overhead gate.
// Virtual time must be byte-identical to the untraced run (tracing
// never advances any clock); wall-clock time must stay within a few
// percent (the emit path is one atomic fetch-add plus a ring store).
func BenchmarkFSAppendBatchedTraced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := Params{
			SegmentBlocks:    64,
			CheckpointBlocks: 64,
			WritebackBlocks:  0,
			HeatAware:        true,
			ReserveSegments:  2,
		}
		fs := testFS(b, 8192, p)
		tr := trace.New(trace.DefaultBuffer)
		fs.Device().SetTracer(tr)
		ino, err := fs.Create("bench", 0)
		if err != nil {
			b.Fatal(err)
		}
		const blocks = 192
		start := fs.Device().Clock().Now()
		for n := 0; n < blocks; n += 32 {
			if err := fs.WriteFile(ino, payload(byte(n), 32*device.DataBytes)); err != nil {
				b.Fatal(err)
			}
			if err := fs.Sync(); err != nil {
				b.Fatal(err)
			}
		}
		virt := fs.Device().Clock().Now() - start
		if tr.Len() == 0 {
			b.Fatal("tracer captured no spans")
		}
		b.ReportMetric(float64(virt.Milliseconds()), "virt-ms")
		b.ReportMetric(float64(tr.Len())/float64(blocks), "spans/block")
	}
}

// benchmarkClean measures one cleaning pass over the standard
// fragmented population at the given fan-out width.
func benchmarkClean(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		fs := buildFragmentedFS(b, workers)
		start := fs.Device().Clock().Now()
		cs := fs.Clean(fs.FreeSegments() + 4)
		virt := fs.Device().Clock().Now() - start
		if cs.SegmentsCleaned == 0 {
			b.Fatalf("cleaner reclaimed nothing: %+v", cs)
		}
		b.ReportMetric(float64(virt.Milliseconds()), "virt-ms")
		b.ReportMetric(float64(cs.SegmentsCleaned), "segs")
	}
}

func BenchmarkCleanSerial(b *testing.B)    { benchmarkClean(b, 1) }
func BenchmarkCleanParallel4(b *testing.B) { benchmarkClean(b, 4) }
