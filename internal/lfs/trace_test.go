package lfs

import (
	"bytes"
	"fmt"
	"testing"

	"sero/internal/device"
	"sero/internal/trace"
)

// tracedWorkloadParams is the shared configuration for the trace
// determinism runs: four heat-affinity classes with the fanned
// multi-class flush on the path, journaled syncs and a cleaning pass.
func tracedWorkloadParams(conc int) Params {
	return Params{
		SegmentBlocks:    32,
		CheckpointBlocks: 64,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      conc,
	}
}

// runTracedWorkload replays one fixed mixed workload against a fresh
// traced FS and returns the exported Chrome JSON — the byte stream
// the determinism test compares.
func runTracedWorkload(t testing.TB, conc int) []byte {
	t.Helper()
	fs := testFS(t, 8192, tracedWorkloadParams(conc))
	tr := trace.New(trace.DefaultBuffer)
	fs.Device().SetTracer(tr)

	var inos []Ino
	for i := 0; i < 12; i++ {
		ino, err := fs.Create(fmt.Sprintf("f%02d", i), uint8(i%4))
		if err != nil {
			t.Fatal(err)
		}
		inos = append(inos, ino)
	}
	for round := 0; round < 4; round++ {
		for i, ino := range inos {
			if err := fs.WriteFile(ino, payload(byte(round*16+i), (2+i%3)*device.DataBytes)); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Delete("f03"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("f05", "f05r"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"f00", "f05r", "f11"} {
		ino, err := fs.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.ReadFile(ino); err != nil {
			t.Fatal(err)
		}
	}
	fs.Clean(fs.FreeSegments() + 2)
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	if tr.Dropped() != 0 {
		t.Fatalf("workload overflowed the %d-span ring (%d dropped)", trace.DefaultBuffer, tr.Dropped())
	}
	doc, err := trace.ChromeJSON(tr.Spans(), tr.Dropped())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestTraceDeterministicAcrossConcurrency runs the identical workload
// twice at each fan-out width and requires byte-identical exported
// traces: span content (names, tracks, virtual timestamps, durations,
// payload counters) must be a pure function of workload and
// configuration, never of emission interleaving.
func TestTraceDeterministicAcrossConcurrency(t *testing.T) {
	for _, conc := range []int{1, 2, 4} {
		a := runTracedWorkload(t, conc)
		b := runTracedWorkload(t, conc)
		if !bytes.Equal(a, b) {
			t.Fatalf("conc=%d: two identical runs exported different traces (%d vs %d bytes)",
				conc, len(a), len(b))
		}
		if conc == 4 && !bytes.Contains(a, []byte("write-fanout")) {
			// At fan-out width 4 the multi-class Sync flush runs fanned;
			// the join span must be present.
			t.Fatal("trace missing the write-fanout join span")
		}
	}
}

// TestTraceCrashSweepNoRolledBackBlocks crashes a traced workload at
// sampled block boundaries, mounts every crash image with a fresh
// tracer, and asserts the recovered file system's traced reads only
// ever touch blocks that survived the crash (or the checkpoint
// region) — recovered metadata pointing a read at a rolled-back log
// block would surface here as a foreign pba in the span stream.
func TestTraceCrashSweepNoRolledBackBlocks(t *testing.T) {
	const devBlocks = 4096
	p := tracedWorkloadParams(2)
	dev := quietDev(devBlocks)
	rec := recordWrites(dev)
	fs, err := New(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	firstAck := -1

	var inos []Ino
	for i := 0; i < 8; i++ {
		ino, cerr := fs.Create(fmt.Sprintf("c%02d", i), uint8(i%4))
		if cerr != nil {
			t.Fatal(cerr)
		}
		inos = append(inos, ino)
	}
	for round := 0; round < 3; round++ {
		for i, ino := range inos {
			if err := fs.WriteFile(ino, payload(byte(round*8+i), 2*device.DataBytes)); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		if firstAck < 0 {
			firstAck = rec.count()
		}
	}
	dev.SetWriteObserver(nil)

	total := rec.count()
	for k := firstAck; k <= total; k += 5 {
		crashed := rec.deviceAt(t, devBlocks, k)
		// The surviving prefix: every pba the crash image actually holds.
		survived := make(map[int64]bool, k)
		rec.mu.Lock()
		for _, w := range rec.writes[:k] {
			survived[int64(w.pba)] = true
		}
		rec.mu.Unlock()

		tr := trace.New(trace.DefaultBuffer)
		crashed.SetTracer(tr)
		mounted, merr := Mount(crashed, p)
		if merr != nil {
			t.Fatalf("crash at %d/%d: mount: %v", k, total, merr)
		}
		mountSpans := tr.Spans()
		sawMountPhase := false
		for _, s := range mountSpans {
			if s.Cat == "lfs" && (s.Name == "mount-replay" || s.Name == "mount-table" || s.Name == "mount-walk") {
				sawMountPhase = true
			}
		}
		if !sawMountPhase {
			t.Fatalf("crash at %d/%d: mount emitted no mount-phase span (%d spans)", k, total, len(mountSpans))
		}

		// Post-recovery reads: every traced device read must hit a
		// surviving block or the checkpoint region. A pba outside both
		// is a read of rolled-back (never-durable) data.
		tr.Reset()
		for _, name := range mounted.Names() {
			ino, lerr := mounted.Lookup(name)
			if lerr != nil {
				t.Fatal(lerr)
			}
			if _, rerr := mounted.ReadFile(ino); rerr != nil {
				t.Fatalf("crash at %d/%d: reading %s: %v", k, total, name, rerr)
			}
		}
		for _, s := range tr.Spans() {
			if s.Cat != "device" || s.Name != "read" {
				continue
			}
			if s.V2 < int64(p.CheckpointBlocks) || survived[s.V2] {
				continue
			}
			t.Fatalf("crash at %d/%d: recovered FS read rolled-back block %d", k, total, s.V2)
		}
		crashed.SetTracer(nil)
	}
}
