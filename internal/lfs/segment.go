package lfs

import (
	"fmt"
	"sort"
	"time"
)

// Segment management. The device space above the checkpoint region is
// divided into fixed-size, power-of-two-aligned segments. New data is
// appended to the current segment of its affinity class; the usage
// table tracks live blocks per segment for the cleaner.

// SegmentState classifies a segment.
type SegmentState int

// Segment states.
const (
	// SegFree holds no live data and can be reused.
	SegFree SegmentState = iota
	// SegActive is being filled by an appender.
	SegActive
	// SegFull has been filled and awaits cleaning.
	SegFull
	// SegPinned contains at least one heated line and can never be
	// cleaned or reused (§4.1: copying a heated line "just decreases
	// the free space").
	SegPinned
	// SegFreeing has been emptied by the cleaner but the metadata on
	// the medium may still reference its old contents; it becomes
	// SegFree — and only then reusable — once a covering point (a
	// checkpoint, or a summary record journaling the relocations) is
	// on the medium. Reusing it earlier would let fresh appends
	// overwrite blocks a crash-recovery mount still needs.
	SegFreeing
)

// String names the state.
func (s SegmentState) String() string {
	switch s {
	case SegFree:
		return "free"
	case SegActive:
		return "active"
	case SegFull:
		return "full"
	case SegPinned:
		return "pinned"
	case SegFreeing:
		return "freeing"
	default:
		return fmt.Sprintf("SegmentState(%d)", int(s))
	}
}

// segment is the in-memory bookkeeping for one on-disk segment.
type segment struct {
	id    int
	start uint64 // first PBA
	state SegmentState
	// next is the next unwritten block offset within the segment (for
	// active segments).
	next int
	// live counts blocks still referenced.
	live int
	// dead counts blocks that were written and later invalidated while
	// in this segment; reset when the segment is cleaned or reused.
	// For pinned segments this space is unreclaimable forever.
	dead int
	// heatedBlocks counts blocks inside heated lines.
	heatedBlocks int
	// pending buffers the payloads of appended-but-uncommitted blocks:
	// always the tail [next-len(pending), next) of the segment, group-
	// committed as one batched device write on write-back, seal or
	// Sync. Blocks below the pending run are on the medium (or are
	// dead reserved slots the cleaner abandoned).
	pending [][]byte
	// modTime is the last write time, for cost-benefit ageing.
	modTime time.Duration
	// affinity is the class of the appender that filled it (for
	// diagnostics and clustering policy).
	affinity uint8
	// journal marks a segment holding blocks of the current epoch's
	// roll-forward summary chain. The cleaner refuses such segments —
	// recycling one would sever the replay a crash-mount depends on —
	// until the next checkpoint makes the chain obsolete and clears
	// every flag.
	journal bool
	// cleanPin marks a victim segment whose live blocks are being
	// relocated by an in-flight cleaning pass (set during plan, cleared
	// at commit, always under fs.mu). While the copy phase runs with
	// fs.mu released, foreground operations may freely invalidate
	// blocks in a clean-pinned segment (overwrite, delete, heat-file
	// relocation): they only flip liveness bookkeeping, and the commit
	// phase re-validates every move against it, dropping just the moves
	// that went stale. The pin's job is to keep the segment out of any
	// other cleaner decision — victim selection skips it — until the
	// owning pass commits.
	cleanPin bool
}

// segmentManager owns all segments.
type segmentManager struct {
	segs      []*segment
	segBlocks int
	base      uint64 // PBA of segment 0
	// liveMap marks the PBAs currently holding live data. Together
	// with fs.owners it is the source the checkpointed liveness table
	// serializes (checkpoint.go) and the state a table-driven mount
	// reconstructs without walking the inodes.
	liveMap map[uint64]bool
}

func newSegmentManager(base uint64, totalBlocks, segBlocks int) *segmentManager {
	if segBlocks <= 0 || totalBlocks < segBlocks {
		panic(fmt.Sprintf("lfs: bad segment geometry total=%d seg=%d", totalBlocks, segBlocks))
	}
	n := totalBlocks / segBlocks
	sm := &segmentManager{
		segBlocks: segBlocks,
		base:      base,
		liveMap:   make(map[uint64]bool),
	}
	for i := 0; i < n; i++ {
		sm.segs = append(sm.segs, &segment{
			id:    i,
			start: base + uint64(i*segBlocks),
		})
	}
	return sm
}

// segOf maps a PBA to its segment, or nil when outside the log.
func (sm *segmentManager) segOf(pba uint64) *segment {
	if pba < sm.base {
		return nil
	}
	idx := int(pba-sm.base) / sm.segBlocks
	if idx >= len(sm.segs) {
		return nil
	}
	return sm.segs[idx]
}

// allocSegment returns a free segment and marks it active, or nil when
// none is free.
func (sm *segmentManager) allocSegment(affinity uint8) *segment {
	for _, s := range sm.segs {
		if s.state == SegFree {
			s.state = SegActive
			s.next = 0
			s.dead = 0
			s.pending = nil
			s.affinity = affinity
			s.journal = false
			s.cleanPin = false
			return s
		}
	}
	return nil
}

// freeSegments counts segments in SegFree.
func (sm *segmentManager) freeSegments() int {
	n := 0
	for _, s := range sm.segs {
		if s.state == SegFree {
			n++
		}
	}
	return n
}

// reclaimable counts segments that are free or will be at the next
// checkpoint (SegFreeing) — the cleaner's notion of progress.
func (sm *segmentManager) reclaimable() int {
	n := 0
	for _, s := range sm.segs {
		if s.state == SegFree || s.state == SegFreeing {
			n++
		}
	}
	return n
}

// freeingSegments counts segments gated in SegFreeing.
func (sm *segmentManager) freeingSegments() int {
	n := 0
	for _, s := range sm.segs {
		if s.state == SegFreeing {
			n++
		}
	}
	return n
}

// convertFreeing promotes every SegFreeing segment to SegFree. Called
// right after a checkpoint reaches the medium: from that moment no
// recovery path references their old contents.
func (sm *segmentManager) convertFreeing() {
	for _, s := range sm.segs {
		if s.state == SegFreeing {
			s.state = SegFree
		}
	}
}

// markLive records pba as holding live data.
func (sm *segmentManager) markLive(pba uint64, now time.Duration) {
	if sm.liveMap[pba] {
		return
	}
	sm.liveMap[pba] = true
	if s := sm.segOf(pba); s != nil {
		s.live++
		s.modTime = now
	}
}

// markDead records that pba no longer holds live data.
func (sm *segmentManager) markDead(pba uint64) {
	if !sm.liveMap[pba] {
		return
	}
	delete(sm.liveMap, pba)
	if s := sm.segOf(pba); s != nil {
		s.live--
		s.dead++
		if s.live < 0 {
			panic(fmt.Sprintf("lfs: segment %d live count below zero", s.id))
		}
	}
}

// isLive reports whether pba holds live data.
func (sm *segmentManager) isLive(pba uint64) bool { return sm.liveMap[pba] }

// pin marks the segment containing pba (and the n-1 following blocks)
// pinned because a heated line landed there.
func (sm *segmentManager) pin(start uint64, n int) {
	for pba := start; pba < start+uint64(n); pba++ {
		if s := sm.segOf(pba); s != nil {
			s.state = SegPinned
			s.heatedBlocks++
		}
	}
}

// utilisation returns the live fraction of a segment.
func (s *segment) utilisation(segBlocks int) float64 {
	return float64(s.live) / float64(segBlocks)
}

// SegmentInfo is the exported view of one segment, for experiments.
type SegmentInfo struct {
	// ID is the segment's index in the segment table.
	ID int
	// Start is the PBA of the segment's first block.
	Start uint64
	// State is the segment's lifecycle state.
	State SegmentState
	// LiveBlocks counts blocks still referenced by an inode.
	LiveBlocks int
	// HeatedBlocks counts blocks inside heated (tamper-evident) lines.
	HeatedBlocks int
	// DeadBlocks counts invalidated blocks; in a pinned segment they
	// are lost forever (the §4.1 stranding cost).
	DeadBlocks int
	// Blocks is the segment size in blocks.
	Blocks int
	// Affinity is the heat-affinity class of the appender that filled
	// the segment.
	Affinity uint8
	// Journal reports that the segment holds part of the current
	// epoch's summary chain and is therefore shielded from the
	// cleaner until the next checkpoint.
	Journal bool
	// CleanPin reports that an in-flight cleaning pass is relocating
	// the segment's live blocks (plan committed, copy possibly still
	// running off the lock).
	CleanPin bool
	// HeatedFraction is HeatedBlocks over the segment size.
	HeatedFraction float64
}

// snapshot exports all segments sorted by id.
func (sm *segmentManager) snapshot() []SegmentInfo {
	out := make([]SegmentInfo, 0, len(sm.segs))
	for _, s := range sm.segs {
		out = append(out, SegmentInfo{
			ID:             s.id,
			Start:          s.start,
			State:          s.state,
			LiveBlocks:     s.live,
			HeatedBlocks:   s.heatedBlocks,
			DeadBlocks:     s.dead,
			Blocks:         sm.segBlocks,
			Affinity:       s.affinity,
			Journal:        s.journal,
			CleanPin:       s.cleanPin,
			HeatedFraction: float64(s.heatedBlocks) / float64(sm.segBlocks),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
