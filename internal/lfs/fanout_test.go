package lfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sero/internal/device"
)

// The parallel-write-path contract suite: flushing the per-affinity
// appender buffers on concurrent worker planes must never change WHAT
// lands on the medium — every class's run was preassigned from its own
// frontier — only WHEN the virtual clock says it landed. These tests
// pin layout equality across worker counts, the virtual-time win, and
// the cooperative CleanStep API racing foreground appends.

// multiClassParams is the fan-out suite's FS shape: four affinity
// classes' worth of appenders, whole-segment group commit, journal
// syncs with periodic checkpoints so both sync paths (summary record
// and checkpoint rewrite) flush multi-class buffers.
func multiClassParams(conc int) Params {
	return Params{
		SegmentBlocks:    64,
		CheckpointBlocks: 64,
		WritebackBlocks:  64,
		CheckpointEvery:  256,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      conc,
	}
}

// buildMultiClassFS replays the identical mixed-class append workload
// — data files spread over four heat-affinity classes (1–4), with
// inode metadata riding the affinity-0 frontier, interleaved rewrites,
// a sync per round — at the given worker count. Identical inputs must
// produce identical on-medium state for any conc.
func buildMultiClassFS(t testing.TB, conc int) *FS {
	t.Helper()
	fs := testFS(t, 4096, multiClassParams(conc))
	inos := make([]Ino, 8)
	var err error
	for i := range inos {
		if inos[i], err = fs.Create(fmt.Sprintf("m%d", i), uint8(1+i%4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		for i := range inos {
			n := (1 + (round+i)%3) * 8 * device.DataBytes
			if err := fs.WriteFile(inos[i], payload(byte(16*round+i), n)); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

// assertSameLayout fails unless the two file systems are byte-for-byte
// the same layout: identical segment tables, identical per-file block
// pointers, identical readable contents.
func assertSameLayout(t *testing.T, want, got *FS, label string) {
	t.Helper()
	segsW, segsG := want.Segments(), got.Segments()
	if len(segsW) != len(segsG) {
		t.Fatalf("%s: segment table sizes diverge (%d vs %d)", label, len(segsW), len(segsG))
	}
	for i := range segsW {
		if segsW[i] != segsG[i] {
			t.Fatalf("%s: segment %d diverges: %+v vs %+v", label, i, segsW[i], segsG[i])
		}
	}
	names := want.Names()
	gotNames := got.Names()
	if len(names) != len(gotNames) {
		t.Fatalf("%s: namespaces diverge", label)
	}
	for _, name := range names {
		inoW, err := want.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		inoG, err := got.Lookup(name)
		if err != nil {
			t.Fatalf("%s: %s missing: %v", label, name, err)
		}
		stW, err := want.Stat(inoW)
		if err != nil {
			t.Fatal(err)
		}
		stG, err := got.Stat(inoG)
		if err != nil {
			t.Fatal(err)
		}
		if len(stW.Blocks) != len(stG.Blocks) {
			t.Fatalf("%s: %s block counts diverge", label, name)
		}
		for j := range stW.Blocks {
			if stW.Blocks[j] != stG.Blocks[j] {
				t.Fatalf("%s: %s block %d: %d vs %d", label, name, j, stW.Blocks[j], stG.Blocks[j])
			}
		}
		cW, err := want.ReadFile(inoW)
		if err != nil {
			t.Fatal(err)
		}
		cG, err := got.ReadFile(inoG)
		if err != nil || !bytes.Equal(cW, cG) {
			t.Fatalf("%s: %s contents diverge: %v", label, name, err)
		}
	}
}

// TestMultiClassFlushMatchesSerialLayout is the per-class appender
// fan-out contract at j ∈ {1, 2, 4}: the fanned Sync flush must
// produce serial-identical bytes — same segment table, same block
// pointers, same contents — at every worker count, while j=4 costs
// measurably less virtual time than serial.
func TestMultiClassFlushMatchesSerialLayout(t *testing.T) {
	serial := buildMultiClassFS(t, 1)
	serialCost := serial.Device().Clock().Now()
	for _, j := range []int{2, 4} {
		fanned := buildMultiClassFS(t, j)
		assertSameLayout(t, serial, fanned, fmt.Sprintf("j=%d", j))
		cost := fanned.Device().Clock().Now()
		if cost > serialCost {
			t.Fatalf("j=%d workload cost %v, serial %v — fan-out made it slower", j, cost, serialCost)
		}
	}
	// The widest fan-out must show a real win, not a wash.
	fanned := buildMultiClassFS(t, 4)
	if cost := fanned.Device().Clock().Now(); cost*4 > serialCost*3 {
		t.Fatalf("j=4 workload cost %v vs serial %v — no real fan-out win", cost, serialCost)
	}
	// And the media must remount identically at any j. Mounted views
	// are compared against each other, not the live FS: mount
	// reconstructs liveness, so a fully-dead segment reads back as
	// free rather than full-and-all-dead.
	ref, err := Mount(serial.Device(), serial.Params())
	if err != nil {
		t.Fatalf("serial remount: %v", err)
	}
	for _, j := range []int{1, 4} {
		fs := buildMultiClassFS(t, j)
		mounted, err := Mount(fs.Device(), fs.Params())
		if err != nil {
			t.Fatalf("j=%d: remount: %v", j, err)
		}
		assertSameLayout(t, ref, mounted, fmt.Sprintf("j=%d remount", j))
	}
}

// TestCleanStepReclaims drives the cooperative cleaning API the way a
// latency-critical embedder would: single CleanStep rounds between
// foreground work, each bounded by the constant victim batch, until
// the target is met — then verifies the gated segments are released by
// the next Sync and that further steps report nothing to do.
func TestCleanStepReclaims(t *testing.T) {
	fs := buildFragmentedFS(t, 2)
	freeBefore := fs.FreeSegments()
	target := freeBefore + 4
	steps := 0
	for {
		cs, more := fs.CleanStep(target)
		if cs.SegmentsCleaned > cleanBatchSegments {
			t.Fatalf("step took %d victims, cap is %d", cs.SegmentsCleaned, cleanBatchSegments)
		}
		if !more {
			break
		}
		steps++
		if steps > 64 {
			t.Fatal("CleanStep failed to converge")
		}
	}
	if steps == 0 {
		t.Fatal("CleanStep never made progress on a fragmented FS")
	}
	// The emptied segments are gated until a covering point; a Sync
	// must release them to the free pool. The sync's own flush may
	// consume a segment or two, so assert a net gain rather than the
	// exact reclaimable target the step loop converged on.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if free := fs.FreeSegments(); free <= freeBefore {
		t.Fatalf("stepping + sync gained nothing: %d free before, %d after", freeBefore, free)
	}
	if _, more := fs.CleanStep(fs.FreeSegments()); more {
		t.Fatal("CleanStep reports work with the target already met")
	}
	// Contents survived the stepped cleaning.
	for i := 0; i < 24; i++ {
		ino, err := fs.Lookup(fmt.Sprintf("f%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile(ino)
		if err != nil || !bytes.Equal(got, fragWant(i)) {
			t.Fatalf("f%02d corrupted by stepped cleaning: %v", i, err)
		}
	}
}

// TestCleanStepRacesForegroundAppends races cooperative cleaning
// rounds against concurrent foreground appenders — the embedder's
// actual deployment shape. Every append must survive, every file must
// read back intact afterwards, and the race detector must stay quiet.
func TestCleanStepRacesForegroundAppends(t *testing.T) {
	fs := buildFragmentedFS(t, 2)
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	cleanerDone := make(chan struct{})

	// The cleaner: step toward an ever-receding target until told to
	// stop, like an embedder cleaning in its idle moments.
	go func() {
		defer close(cleanerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.CleanStep(fs.FreeSegments() + 2)
		}
	}()

	type result struct {
		name string
		want []byte
	}
	results := make([][]result, writers)
	var werr sync.Map
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				name := fmt.Sprintf("race-g%d-%d", g, i)
				ino, err := fs.Create(name, uint8(g%4))
				if err != nil {
					werr.Store(g, err)
					return
				}
				want := payload(byte(32+8*g+i), (1+i%3)*device.DataBytes)
				if err := fs.WriteFile(ino, want); err != nil {
					werr.Store(g, err)
					return
				}
				if i%2 == 1 {
					if err := fs.Sync(); err != nil {
						werr.Store(g, err)
						return
					}
				}
				results[g] = append(results[g], result{name: name, want: want})
			}
		}(g)
	}
	wg.Wait()
	// Writers are done; release the cleaner only now so cleaning rounds
	// genuinely overlapped the whole foreground phase.
	close(stop)
	<-cleanerDone
	werr.Range(func(k, v any) bool {
		t.Fatalf("writer %v: %v", k, v)
		return false
	})
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for g := range results {
		for _, r := range results[g] {
			ino, err := fs.Lookup(r.name)
			if err != nil {
				t.Fatalf("%s lost: %v", r.name, err)
			}
			got, err := fs.ReadFile(ino)
			if err != nil || !bytes.Equal(got, r.want) {
				t.Fatalf("%s corrupted under stepped cleaning: %v", r.name, err)
			}
		}
	}
	// And the raced state must still mount.
	if _, err := Mount(fs.Device(), fs.Params()); err != nil {
		t.Fatalf("remount after raced CleanStep: %v", err)
	}
}

// benchmarkFSAppendMultiClass measures the mixed hot+cold append
// workload — eight affinity classes, a sync per round — at the given
// flush fan-out. Layout is identical at every j; only virtual time
// differs.
func benchmarkFSAppendMultiClass(b *testing.B, conc int) {
	const classes, perClass, rounds = 8, 16, 4
	p := Params{
		SegmentBlocks:    64,
		CheckpointBlocks: 64,
		WritebackBlocks:  64,
		CheckpointEvery:  1 << 20,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      conc,
	}
	for i := 0; i < b.N; i++ {
		fs := testFS(b, 8192, p)
		inos := make([]Ino, classes)
		var err error
		for c := range inos {
			if inos[c], err = fs.Create(fmt.Sprintf("c%d", c), uint8(c)); err != nil {
				b.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			b.Fatal(err)
		}
		start := fs.Device().Clock().Now()
		for r := 0; r < rounds; r++ {
			for c := range inos {
				if err := fs.WriteFile(inos[c], payload(byte(c), perClass*device.DataBytes)); err != nil {
					b.Fatal(err)
				}
			}
			if err := fs.Sync(); err != nil {
				b.Fatal(err)
			}
		}
		virt := fs.Device().Clock().Now() - start
		b.ReportMetric(float64(virt.Milliseconds()), "virt-ms")
		b.ReportMetric(float64(virt.Microseconds())/(classes*perClass*rounds), "virt-µs/block")
	}
}

func BenchmarkFSAppendMultiClassSerial(b *testing.B)  { benchmarkFSAppendMultiClass(b, 1) }
func BenchmarkFSAppendMultiClassFanned2(b *testing.B) { benchmarkFSAppendMultiClass(b, 2) }
func BenchmarkFSAppendMultiClassFanned4(b *testing.B) { benchmarkFSAppendMultiClass(b, 4) }

// TestReadablePrefixSerialFannedEquivalence pins the shared
// readable-prefix primitive: fanned and serial reads of the same range
// return identical bytes, and an unreadable block mid-range degrades
// both to the same prefix with complete=false.
func TestReadablePrefixSerialFannedEquivalence(t *testing.T) {
	dev := quietDev(512)
	const base, blocks = 64, 96
	run := make([][]byte, blocks)
	for i := range run {
		run[i] = payload(byte(i), device.DataBytes)
	}
	if err := dev.WriteBlocks(base, run); err != nil {
		t.Fatal(err)
	}
	want := bytes.Join(run, nil)
	for _, w := range []int{1, 4} {
		got, complete := ReadablePrefix(dev, base, blocks, w)
		if !complete || !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: clean range not fully read (complete=%v, %d bytes)", w, complete, len(got))
		}
	}
	// An electrically-written block mid-range refuses magnetic reads;
	// both paths must degrade to the same readable prefix.
	if err := dev.EWS(base+40, []byte("frozen")); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		got, complete := ReadablePrefix(dev, base, blocks, w)
		if complete {
			t.Fatalf("workers=%d: unreadable block not reported", w)
		}
		if !bytes.Equal(got, want[:40*device.DataBytes]) {
			t.Fatalf("workers=%d: degraded prefix is %d bytes, want %d", w, len(got), 40*device.DataBytes)
		}
	}
}
