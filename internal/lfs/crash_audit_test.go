package lfs

import (
	"bytes"
	"fmt"
	"testing"

	"sero/internal/device"
)

// The audit-armed crash sweep. The incremental auditor keeps its round
// cursor in memory only — nothing about a round is persisted — so from
// the auditor's point of view EVERY crash boundary is mid-round. The
// property under test: a crash while audit rounds race the write
// stream never wedges Mount, never loses a write that was durable
// before the crash, and a full audit sweep of the remounted FS reports
// zero findings (crash debris — torn segment tails, stale checkpoint
// regions — must never look like tampering, because audit only sweeps
// heated lines and heat commitment is journaled).
//
// Unlike the main crash sweep (which replays onto a fresh medium and
// therefore excludes HeatFile), this one reconstructs from a SaveImage
// taken after the heated population was frozen, so every crash image
// carries real heated lines for the auditor to sweep.

// imageAt rebuilds a device from a SaveImage baseline plus the first k
// committed magnetic writes recorded after the snapshot.
func imageAt(t testing.TB, rec *crashRecorder, img []byte, k int) *device.Device {
	t.Helper()
	dev, _, err := device.LoadImage(img, device.DefaultParams(0))
	if err != nil {
		t.Fatalf("restoring crash baseline: %v", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, w := range rec.writes[:k] {
		if err := dev.WriteBlocks(w.pba, [][]byte{w.data}); err != nil {
			t.Fatalf("replaying write %d to crash image: %v", w.pba, err)
		}
	}
	return dev
}

func TestCrashMidAuditRoundCleanMount(t *testing.T) {
	const devBlocks = 2048
	p := Params{
		SegmentBlocks:    16,
		CheckpointBlocks: 16,
		WritebackBlocks:  8,
		CheckpointEvery:  48,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      2,
		AuditEvery:       16, // background audit kicks race the writes
	}
	dev := quietDev(devBlocks)
	fs, err := New(dev, p)
	if err != nil {
		t.Fatal(err)
	}

	// Freeze a heated population, then snapshot: the baseline every
	// crash image reconstructs from carries these lines.
	const frozen = 3
	for i := 0; i < frozen; i++ {
		name := fmt.Sprintf("frozen-%d", i)
		ino, err := fs.Create(name, uint8(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(ino, payload(byte(i+1), 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.HeatFile(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	img := dev.SaveImage()
	rec := recordWrites(dev)

	// Write stream with inline audit steps interleaved (small batch so
	// round cursors are mid-flight at most boundaries), on top of the
	// background kicks AuditEvery arms.
	const writes = 40
	for i := 0; i < writes; i++ {
		name := fmt.Sprintf("w%d", i%7)
		ino, err := fs.Lookup(name)
		if err != nil {
			ino, err = fs.Create(name, uint8(i%4))
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.WriteFile(ino, payload(byte(0x40+i), 192+(i%3)*128)); err != nil {
			t.Fatal(err)
		}
		fs.AuditStep(1)
		if i%5 == 4 {
			if err := fs.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(fs.AuditFindings()); n != 0 {
		t.Fatalf("live audit reported %d findings on an untampered system", n)
	}
	if fs.Stats().AuditRounds == 0 {
		t.Fatal("live audit completed no rounds")
	}

	total := rec.count()
	if total == 0 {
		t.Fatal("workload committed no writes")
	}
	step := 3
	if testing.Short() {
		step = 11
	}
	if raceDetector {
		step *= 5
	}
	for k := 0; k <= total; k += step {
		crashed := imageAt(t, rec, img, k)
		m, err := Mount(crashed, p)
		if err != nil {
			t.Fatalf("crash at write %d/%d: mount failed: %v", k, total, err)
		}
		// The frozen files were acked before the snapshot: every crash
		// image must serve them intact.
		for i := 0; i < frozen; i++ {
			name := fmt.Sprintf("frozen-%d", i)
			ino, err := m.Lookup(name)
			var got []byte
			if err == nil {
				got, err = m.ReadFile(ino)
			}
			if err != nil || !bytes.Equal(got, payload(byte(i+1), 2*device.DataBytes)) {
				t.Fatalf("crash at write %d/%d: frozen file %s lost or corrupted: %v", k, total, name, err)
			}
		}
		// Two full audit rounds over the remount: the drive must
		// converge (no wedge) and report nothing (no spurious finding).
		lines := len(crashed.Lines())
		rounds := 0
		for s := 0; s < 4*lines+4 && rounds < 2; s++ {
			rep, _ := m.AuditStep(1)
			if rep.RoundComplete {
				rounds++
			}
		}
		if lines > 0 && rounds < 2 {
			t.Fatalf("crash at write %d/%d: audit failed to complete two rounds over %d lines", k, total, lines)
		}
		if n := len(m.AuditFindings()); n != 0 {
			t.Fatalf("crash at write %d/%d: %d spurious audit findings", k, total, n)
		}
	}
}
