//go:build !race

package lfs

// raceDetector reports that this build runs under the race detector;
// see race_on_test.go.
const raceDetector = false
