package lfs

import (
	"fmt"

	"sero/internal/device"
)

// Heating files (§4.1 and Fig 3): a heated file occupies one aligned
// line holding [hash][inode][data...]. HeatFile relocates the file's
// blocks into fresh contiguous space first — heating data "in the
// right place" is exactly what the clustering policy arranges — and
// then issues the device heat operation.
//
// Placement policy:
//   - Heat-aware mode packs lines into dedicated heat segments per
//     affinity class, so heated lines cluster and the rest of the log
//     stays clean (bimodal segments).
//   - Heat-oblivious mode (HeatAware=false) carves the line out of the
//     file's current *data* segment, mixing heated lines with live
//     WMRM data; the containing segment becomes pinned and its live
//     data is stranded — the failure mode §4.1 warns about.

// HeatResult describes a completed heat operation.
type HeatResult struct {
	Ino  Ino
	Line device.LineInfo
	// BlocksMoved counts data+inode blocks relocated into the line.
	BlocksMoved int
}

// HeatFile freezes the named file. The file's dirty data is flushed
// first; afterwards the file is read-only and every byte of it is
// covered by a heated line hash.
func (fs *FS) HeatFile(name string) (HeatResult, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, ok := fs.dir[name]
	if !ok {
		return HeatResult{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	in, err := fs.inode(ino)
	if err != nil {
		return HeatResult{}, err
	}
	if in.Heated() {
		return HeatResult{}, fmt.Errorf("%w: %s", ErrFileHeated, name)
	}
	// Flush pending writes so the on-medium state is current.
	if len(fs.dirty[ino]) > 0 {
		if err := fs.flushInode(ino); err != nil {
			return HeatResult{}, err
		}
	}

	// Line needs hash + inode + data blocks.
	need := 2 + len(in.Blocks)
	logN := lineExponent(need)
	start, err := fs.allocLineSpace(logN, in.Affinity)
	if err != nil {
		return HeatResult{}, err
	}

	// Relocate: inode at start+1, data at start+2... The inode must be
	// written with its *final* pointers, so compute them first.
	newBlocks := make([]uint64, len(in.Blocks))
	for i := range in.Blocks {
		newBlocks[i] = start + 2 + uint64(i)
	}
	frozen := &Inode{
		Ino:       in.Ino,
		Size:      in.Size,
		MTime:     fs.now(),
		Flags:     in.Flags | FlagHeated,
		Affinity:  in.Affinity,
		Blocks:    newBlocks,
		HeatLines: []uint64{start},
	}
	ibuf, err := frozen.Marshal()
	if err != nil {
		return HeatResult{}, err
	}
	if err := fs.dev.MWS(start+1, ibuf); err != nil {
		return HeatResult{}, fmt.Errorf("lfs: writing frozen inode: %w", err)
	}
	moved := 1
	for i, old := range in.Blocks {
		data, rerr := fs.dev.MRS(old)
		if rerr != nil {
			return HeatResult{}, fmt.Errorf("lfs: relocating block %d: %w", old, rerr)
		}
		if werr := fs.dev.MWS(newBlocks[i], data); werr != nil {
			return HeatResult{}, fmt.Errorf("lfs: relocating block to %d: %w", newBlocks[i], werr)
		}
		moved++
	}
	// Zero-fill the line's slack so the hash covers defined content.
	zero := make([]byte, device.DataBytes)
	for pba := start + uint64(need); pba < start+(1<<logN); pba++ {
		if err := fs.dev.MWS(pba, zero); err != nil {
			return HeatResult{}, err
		}
	}

	li, err := fs.dev.HeatLine(start, logN)
	if err != nil {
		return HeatResult{}, fmt.Errorf("lfs: heat line: %w", err)
	}

	// Retire the old locations.
	for _, old := range in.Blocks {
		fs.sm.markDead(old)
		delete(fs.owners, old)
	}
	if old, ok := fs.imap[ino]; ok {
		fs.sm.markDead(old)
		delete(fs.owners, old)
	}

	// Adopt the frozen inode. Heated-line blocks are tracked by the
	// pin, not the live map (they are not cleanable).
	fs.inodes[ino] = frozen
	fs.imap[ino] = start + 1
	fs.sm.pin(start, 1<<logN)
	fs.stats.HeatedFiles++
	fs.stats.HeatedLineBlock += uint64(uint64(1) << logN)

	return HeatResult{Ino: ino, Line: li, BlocksMoved: moved}, nil
}

// allocLineSpace finds a 2^logN-aligned run for a heated line.
func (fs *FS) allocLineSpace(logN uint8, affinity uint8) (uint64, error) {
	size := 1 << logN
	if size > fs.p.SegmentBlocks {
		return 0, fmt.Errorf("lfs: line of %d blocks exceeds segment size %d", size, fs.p.SegmentBlocks)
	}
	if fs.p.HeatAware {
		return fs.allocLineClustered(logN, affinity)
	}
	return fs.allocLineInPlace(logN, affinity)
}

// allocLineClustered packs lines into dedicated heat segments.
func (fs *FS) allocLineClustered(logN uint8, affinity uint8) (uint64, error) {
	size := 1 << logN
	seg := fs.heatSeg[affinity]
	cursor := fs.heatCursor[affinity]
	cursor = alignUp(cursor, size)
	if seg == nil || cursor+size > fs.p.SegmentBlocks {
		if fs.sm.freeSegments() <= fs.p.ReserveSegments {
			fs.cleanLocked(fs.p.ReserveSegments + 1)
		}
		seg = fs.sm.allocSegment(affinity)
		if seg == nil {
			return 0, ErrFull
		}
		seg.state = SegPinned // dedicated to heated lines from birth
		fs.heatSeg[affinity] = seg
		cursor = 0
	}
	start := seg.start + uint64(cursor)
	fs.heatCursor[affinity] = cursor + size
	return start, nil
}

// allocLineInPlace carves the line out of the current data segment
// (heat-oblivious baseline; affinity-blind like appendBlock).
func (fs *FS) allocLineInPlace(logN uint8, affinity uint8) (uint64, error) {
	affinity = 0
	size := 1 << logN
	seg := fs.active[affinity]
	if seg == nil || alignUp(seg.next, size)+size > fs.p.SegmentBlocks {
		if seg != nil {
			retireSegment(seg)
		}
		if fs.sm.freeSegments() <= fs.p.ReserveSegments {
			fs.cleanLocked(fs.p.ReserveSegments + 1)
		}
		seg = fs.sm.allocSegment(affinity)
		if seg == nil {
			return 0, ErrFull
		}
		fs.active[affinity] = seg
	}
	seg.next = alignUp(seg.next, size)
	start := seg.start + uint64(seg.next)
	seg.next += size
	return start, nil
}

func alignUp(x, align int) int {
	if rem := x % align; rem != 0 {
		return x + align - rem
	}
	return x
}

// VerifyFile checks every heated line of the named file and returns
// the device reports.
func (fs *FS) VerifyFile(name string) ([]device.VerifyReport, error) {
	fs.mu.Lock()
	ino, ok := fs.dir[name]
	if !ok {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	in, err := fs.inode(ino)
	if err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	if !in.Heated() {
		fs.mu.Unlock()
		return nil, fmt.Errorf("lfs: file %s is not heated", name)
	}
	lines := append([]uint64(nil), in.HeatLines...)
	fs.mu.Unlock()

	var out []device.VerifyReport
	for _, start := range lines {
		rep, verr := fs.dev.VerifyLine(start)
		if verr != nil {
			return out, verr
		}
		out = append(out, rep)
	}
	return out, nil
}
