package lfs

import (
	"fmt"

	"sero/internal/device"
	"sero/internal/trace"
)

// Heating files (§4.1 and Fig 3): a heated file occupies one aligned
// line holding [hash][inode][data...]. HeatFile relocates the file's
// blocks into fresh contiguous space first — heating data "in the
// right place" is exactly what the clustering policy arranges — and
// then issues the device heat operation.
//
// Placement policy:
//   - Heat-aware mode packs lines into dedicated heat segments per
//     affinity class, so heated lines cluster and the rest of the log
//     stays clean (bimodal segments).
//   - Heat-oblivious mode (HeatAware=false) carves the line out of the
//     file's current *data* segment, mixing heated lines with live
//     WMRM data; the containing segment becomes pinned and its live
//     data is stranded — the failure mode §4.1 warns about.

// HeatResult describes a completed heat operation.
type HeatResult struct {
	// Ino is the frozen file's inode number.
	Ino Ino
	// Line is the device's record of the heated line.
	Line device.LineInfo
	// BlocksMoved counts data+inode blocks relocated into the line.
	BlocksMoved int
}

// HeatFile freezes the named file. The file's dirty data is flushed
// first; afterwards the file is read-only and every byte of it is
// covered by a heated line hash.
func (fs *FS) HeatFile(name string) (HeatResult, error) {
	return fs.HeatFileTraced(nil, name)
}

// HeatFileTraced is HeatFile with per-operation attribution (see
// trace.Task); nil task behaves exactly like HeatFile.
func (fs *FS) HeatFileTraced(task *trace.Task, name string) (HeatResult, error) {
	fs.lockTask(task)
	defer fs.unlockTask()
	// Wait out any in-flight background pass while space is short: its
	// commit is about to free segments, and the inline cleans on the
	// allocation paths below would no-op against it. This must happen
	// before anything is resolved — the wait releases fs.mu — and the
	// need is a coarse ceiling (a heated line never exceeds one
	// segment, plus flush-through space and the reserve).
	fs.waitCleanIdleLocked(fs.p.ReserveSegments + 3)
	ino, ok := fs.dir[name]
	if !ok {
		return HeatResult{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	in, err := fs.inode(ino)
	if err != nil {
		return HeatResult{}, err
	}
	if in.Heated() {
		return HeatResult{}, fmt.Errorf("%w: %s", ErrFileHeated, name)
	}
	// The FS is at rest here: release any cleaner-gated segments so
	// the relocation below cannot starve while reclaimable space sits
	// idle (see unwedgeFreeingLocked).
	if err := fs.unwedgeFreeingLocked(); err != nil {
		return HeatResult{}, err
	}
	// Flush pending writes (data or a bare size extension) so the
	// on-medium state is current before the line image is built.
	if len(fs.dirty[ino]) > 0 || fs.pendSize[ino] > in.Size {
		if err := fs.flushInode(ino); err != nil {
			return HeatResult{}, err
		}
	}

	// Line needs hash + inode + data blocks.
	need := 2 + len(in.Blocks)
	logN := lineExponent(need)
	start, err := fs.allocLineSpace(logN, in.Affinity)
	if err != nil {
		return HeatResult{}, err
	}

	// Relocate: inode at start+1, data at start+2... The inode must be
	// written with its *final* pointers, so compute them first; the
	// whole line image — inode, data, zero-filled slack — then goes to
	// the medium as one batched line-granular write command.
	newBlocks := make([]uint64, len(in.Blocks))
	for i := range in.Blocks {
		newBlocks[i] = start + 2 + uint64(i)
	}
	frozen := &Inode{
		Ino:       in.Ino,
		Size:      in.Size,
		MTime:     fs.now(),
		Flags:     in.Flags | FlagHeated,
		Affinity:  in.Affinity,
		Blocks:    newBlocks,
		HeatLines: []uint64{start},
	}
	ibuf, err := frozen.Marshal()
	if err != nil {
		return HeatResult{}, err
	}
	image := make([][]byte, 0, 1+len(in.Blocks))
	image = append(image, ibuf)
	for _, old := range in.Blocks {
		if old == 0 {
			// Hole: heats as explicit zeros.
			image = append(image, make([]byte, device.DataBytes))
			continue
		}
		data, rerr := fs.readPBALocked(old)
		if rerr != nil {
			return HeatResult{}, fmt.Errorf("lfs: relocating block %d: %w", old, rerr)
		}
		image = append(image, data)
	}
	if err := fs.dev.WriteLineBatch(start, logN, image); err != nil {
		return HeatResult{}, fmt.Errorf("lfs: writing line image: %w", err)
	}
	moved := len(image)

	li, err := fs.dev.HeatLine(start, logN)
	if err != nil {
		return HeatResult{}, fmt.Errorf("lfs: heat line: %w", err)
	}

	// Retire the old locations.
	for _, old := range in.Blocks {
		fs.sm.markDead(old)
		delete(fs.owners, old)
	}
	if old, ok := fs.imap[ino]; ok {
		fs.sm.markDead(old)
		delete(fs.owners, old)
	}

	// Adopt the frozen inode. Heated-line blocks are tracked by the
	// pin, not the live map (they are not cleanable). The relocation is
	// journaled like any other imap change so a roll-forward mount
	// finds the frozen inode, back-pointers included.
	fs.cacheInode(frozen)
	fs.imap[ino] = start + 1
	fs.jImap[ino] = true
	for i, pba := range newBlocks {
		fs.jBlocks = append(fs.jBlocks, blockPtr{ino: ino, idx: int32(i), pba: pba})
	}
	fs.sm.pin(start, 1<<logN)
	fs.stats.HeatedFiles++
	fs.stats.HeatedLineBlock += uint64(uint64(1) << logN)

	return HeatResult{Ino: ino, Line: li, BlocksMoved: moved}, nil
}

// allocLineSpace finds a 2^logN-aligned run for a heated line.
func (fs *FS) allocLineSpace(logN uint8, affinity uint8) (uint64, error) {
	size := 1 << logN
	if size > fs.p.SegmentBlocks {
		return 0, fmt.Errorf("lfs: line of %d blocks exceeds segment size %d", size, fs.p.SegmentBlocks)
	}
	if fs.p.HeatAware {
		return fs.allocLineClustered(logN, affinity)
	}
	return fs.allocLineInPlace(logN, affinity)
}

// allocLineClustered packs lines into dedicated heat segments.
func (fs *FS) allocLineClustered(logN uint8, affinity uint8) (uint64, error) {
	size := 1 << logN
	seg := fs.heatSeg[affinity]
	cursor := fs.heatCursor[affinity]
	cursor = alignUp(cursor, size)
	if seg == nil || cursor+size > fs.p.SegmentBlocks {
		fs.lowSpaceCleanLocked()
		seg = fs.sm.allocSegment(affinity)
		if seg == nil {
			return 0, ErrFull
		}
		seg.state = SegPinned // dedicated to heated lines from birth
		fs.heatSeg[affinity] = seg
		cursor = 0
	}
	start := seg.start + uint64(cursor)
	fs.heatCursor[affinity] = cursor + size
	return start, nil
}

// allocLineInPlace carves the line out of the current data segment
// (heat-oblivious baseline; affinity-blind like appendBlock).
func (fs *FS) allocLineInPlace(logN uint8, affinity uint8) (uint64, error) {
	affinity = 0
	size := 1 << logN
	seg := fs.active[affinity]
	if seg == nil || alignUp(seg.next, size)+size > fs.p.SegmentBlocks {
		if seg != nil {
			if err := fs.sealSegment(seg); err != nil {
				return 0, err
			}
		}
		fs.lowSpaceCleanLocked()
		seg = fs.sm.allocSegment(affinity)
		if seg == nil {
			return 0, ErrFull
		}
		fs.active[affinity] = seg
	}
	// The line is written device-direct; group-commit the buffered
	// tail first so the pending run stays contiguous at seg.next.
	if err := fs.flushSegment(seg); err != nil {
		return 0, err
	}
	seg.next = alignUp(seg.next, size)
	start := seg.start + uint64(seg.next)
	seg.next += size
	return start, nil
}

func alignUp(x, align int) int {
	if rem := x % align; rem != 0 {
		return x + align - rem
	}
	return x
}

// VerifyFile checks every heated line of the named file and returns
// the device reports.
func (fs *FS) VerifyFile(name string) ([]device.VerifyReport, error) {
	fs.mu.RLock()
	ino, ok := fs.dir[name]
	if !ok {
		fs.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	in, err := fs.inode(ino)
	if err != nil {
		fs.mu.RUnlock()
		return nil, err
	}
	if !in.Heated() {
		fs.mu.RUnlock()
		return nil, fmt.Errorf("lfs: file %s is not heated", name)
	}
	lines := append([]uint64(nil), in.HeatLines...)
	fs.mu.RUnlock()

	var out []device.VerifyReport
	for _, start := range lines {
		rep, verr := fs.dev.VerifyLine(start)
		if verr != nil {
			return out, verr
		}
		out = append(out, rep)
	}
	return out, nil
}
