package lfs

import (
	"bytes"
	"errors"
	"testing"

	"sero/internal/device"
	"sero/internal/medium"
)

// FuzzFSOps drives random create/write/sync/clean/mount sequences
// against the file system and checks the two durability invariants of
// the write path: the checkpoint must never become unreadable, and no
// data acked by a successful Sync may be lost — across group commits,
// cleaning passes and remounts alike.
func FuzzFSOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2})                                  // create, write, sync, clean
	f.Add([]byte{0, 1, 1, 2, 3, 0, 4, 1, 1, 1, 2, 3})          // mixed with writes after sync
	f.Add([]byte{0, 64, 1, 65, 130, 2, 3, 0, 16, 1, 81, 2, 3}) // two files, remounts
	f.Add([]byte{0, 1, 2, 2, 2, 3, 3, 3, 1, 40, 2, 3})         // clean/mount heavy
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		dp := device.DefaultParams(1024)
		mp := medium.DefaultParams(1024, device.DotsPerBlock)
		mp.ReadNoiseSigma = 0
		mp.ResidualInPlaneSignal = 0
		mp.ThermalCrosstalk = 0
		dp.Medium = mp
		dev := device.New(dp)
		p := Params{
			SegmentBlocks:    16,
			CheckpointBlocks: 16,
			WritebackBlocks:  0, // whole-segment group commit
			HeatAware:        true,
			ReserveSegments:  2,
			Concurrency:      2,
		}
		fs, err := New(dev, p)
		if err != nil {
			t.Fatal(err)
		}

		names := []string{"a", "b", "c", "d"}
		model := make(map[string][]byte) // current expected contents
		acked := make(map[string][]byte) // contents as of the last checkpoint
		synced := false

		extend := func(buf []byte, n int) []byte {
			for len(buf) < n {
				buf = append(buf, 0)
			}
			return buf
		}
		for i := 0; i < len(ops); i++ {
			b := ops[i]
			name := names[(b>>3)%4]
			switch b % 5 {
			case 0: // create
				_, cerr := fs.Create(name, b%3)
				if _, exists := model[name]; exists {
					if !errors.Is(cerr, ErrExists) {
						t.Fatalf("duplicate create of %s: %v", name, cerr)
					}
				} else if cerr == nil {
					model[name] = nil
				} else {
					t.Fatalf("create %s: %v", name, cerr)
				}
			case 1: // write one block somewhere in the first 6
				if _, ok := model[name]; !ok {
					continue
				}
				ino, lerr := fs.Lookup(name)
				if lerr != nil {
					t.Fatalf("lookup %s: %v", name, lerr)
				}
				blk := int(b>>5) % 6
				data := payload(b^0x5A, device.DataBytes)
				werr := fs.Write(ino, uint64(blk)*device.DataBytes, data)
				if errors.Is(werr, ErrFull) {
					continue
				}
				if werr != nil {
					t.Fatalf("write %s: %v", name, werr)
				}
				buf := extend(model[name], (blk+1)*device.DataBytes)
				copy(buf[blk*device.DataBytes:], data)
				model[name] = buf
			case 2: // sync: on success, everything current becomes acked
				serr := fs.Sync()
				if errors.Is(serr, ErrFull) {
					continue
				}
				if serr != nil {
					t.Fatalf("sync: %v", serr)
				}
				synced = true
				acked = make(map[string][]byte, len(model))
				for n, c := range model {
					acked[n] = append([]byte(nil), c...)
				}
			case 3: // clean
				cs := fs.Clean(fs.FreeSegments() + 1 + int(b>>6))
				// A pass that checkpointed also persisted bare inodes
				// of files created since the last sync: their
				// existence (with empty durable content) survives a
				// remount even though their buffered data does not.
				if cs.Checkpointed {
					synced = true
					for n := range model {
						if _, ok := acked[n]; !ok {
							acked[n] = nil
						}
					}
				}
			case 4: // remount: unsynced data may die, acked data may not
				if !synced {
					continue
				}
				fs2, merr := Mount(dev, p)
				if merr != nil {
					t.Fatalf("checkpoint corrupt after ops %v: %v", ops[:i+1], merr)
				}
				fs = fs2
				model = make(map[string][]byte, len(acked))
				for n, c := range acked {
					model[n] = append([]byte(nil), c...)
					ino, lerr := fs.Lookup(n)
					if lerr != nil {
						t.Fatalf("acked file %s lost across mount: %v", n, lerr)
					}
					got, rerr := fs.ReadFile(ino)
					if rerr != nil || !bytes.Equal(got, c) {
						t.Fatalf("acked data of %s lost across mount: %v", n, rerr)
					}
				}
			}
		}
		// Whatever survived the op stream must read back exactly.
		for n, c := range model {
			ino, lerr := fs.Lookup(n)
			if lerr != nil {
				t.Fatalf("file %s vanished: %v", n, lerr)
			}
			got, rerr := fs.ReadFile(ino)
			if rerr != nil || !bytes.Equal(got, c) {
				t.Fatalf("content of %s diverged: %v", n, rerr)
			}
		}
	})
}
