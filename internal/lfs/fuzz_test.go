package lfs

import (
	"bytes"
	"errors"
	"testing"

	"sero/internal/device"
	"sero/internal/medium"
)

// FuzzFSOps drives random create/write/sync/clean/mount sequences
// against the file system and checks the two durability invariants of
// the write path: the checkpoint must never become unreadable, and no
// data acked by a successful Sync may be lost — across group commits,
// cleaning passes and remounts alike.
func FuzzFSOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2})                                  // create, write, sync, clean
	f.Add([]byte{0, 1, 1, 2, 3, 0, 4, 1, 1, 1, 2, 3})          // mixed with writes after sync
	f.Add([]byte{0, 64, 1, 65, 130, 2, 3, 0, 16, 1, 81, 2, 3}) // two files, remounts
	f.Add([]byte{0, 1, 2, 2, 2, 3, 3, 3, 1, 40, 2, 3})         // clean/mount heavy
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		dp := device.DefaultParams(1024)
		mp := medium.DefaultParams(1024, device.DotsPerBlock)
		mp.ReadNoiseSigma = 0
		mp.ResidualInPlaneSignal = 0
		mp.ThermalCrosstalk = 0
		dp.Medium = mp
		dev := device.New(dp)
		p := Params{
			SegmentBlocks:    16,
			CheckpointBlocks: 16,
			WritebackBlocks:  0, // whole-segment group commit
			HeatAware:        true,
			ReserveSegments:  2,
			Concurrency:      2,
		}
		fs, err := New(dev, p)
		if err != nil {
			t.Fatal(err)
		}

		names := []string{"a", "b", "c", "d"}
		model := make(map[string][]byte) // current expected contents
		acked := make(map[string][]byte) // contents as of the last checkpoint
		synced := false

		extend := func(buf []byte, n int) []byte {
			for len(buf) < n {
				buf = append(buf, 0)
			}
			return buf
		}
		for i := 0; i < len(ops); i++ {
			b := ops[i]
			name := names[(b>>3)%4]
			switch b % 5 {
			case 0: // create
				_, cerr := fs.Create(name, b%3)
				if _, exists := model[name]; exists {
					if !errors.Is(cerr, ErrExists) {
						t.Fatalf("duplicate create of %s: %v", name, cerr)
					}
				} else if cerr == nil {
					model[name] = nil
				} else {
					t.Fatalf("create %s: %v", name, cerr)
				}
			case 1: // write one block somewhere in the first 6
				if _, ok := model[name]; !ok {
					continue
				}
				ino, lerr := fs.Lookup(name)
				if lerr != nil {
					t.Fatalf("lookup %s: %v", name, lerr)
				}
				blk := int(b>>5) % 6
				data := payload(b^0x5A, device.DataBytes)
				werr := fs.Write(ino, uint64(blk)*device.DataBytes, data)
				if errors.Is(werr, ErrFull) {
					continue
				}
				if werr != nil {
					t.Fatalf("write %s: %v", name, werr)
				}
				buf := extend(model[name], (blk+1)*device.DataBytes)
				copy(buf[blk*device.DataBytes:], data)
				model[name] = buf
			case 2: // sync: on success, everything current becomes acked
				serr := fs.Sync()
				if errors.Is(serr, ErrFull) {
					continue
				}
				if serr != nil {
					t.Fatalf("sync: %v", serr)
				}
				synced = true
				acked = make(map[string][]byte, len(model))
				for n, c := range model {
					acked[n] = append([]byte(nil), c...)
				}
			case 3: // clean
				cs := fs.Clean(fs.FreeSegments() + 1 + int(b>>6))
				// A pass that checkpointed also persisted bare inodes
				// of files created since the last sync: their
				// existence (with empty durable content) survives a
				// remount even though their buffered data does not.
				if cs.Checkpointed {
					synced = true
					for n := range model {
						if _, ok := acked[n]; !ok {
							acked[n] = nil
						}
					}
				}
			case 4: // remount: unsynced data may die, acked data may not
				if !synced {
					continue
				}
				fs2, merr := Mount(dev, p)
				if merr != nil {
					t.Fatalf("checkpoint corrupt after ops %v: %v", ops[:i+1], merr)
				}
				fs = fs2
				model = make(map[string][]byte, len(acked))
				for n, c := range acked {
					model[n] = append([]byte(nil), c...)
					ino, lerr := fs.Lookup(n)
					if lerr != nil {
						t.Fatalf("acked file %s lost across mount: %v", n, lerr)
					}
					got, rerr := fs.ReadFile(ino)
					if rerr != nil || !bytes.Equal(got, c) {
						t.Fatalf("acked data of %s lost across mount: %v", n, rerr)
					}
				}
			}
		}
		// Whatever survived the op stream must read back exactly.
		for n, c := range model {
			ino, lerr := fs.Lookup(n)
			if lerr != nil {
				t.Fatalf("file %s vanished: %v", n, lerr)
			}
			got, rerr := fs.ReadFile(ino)
			if rerr != nil || !bytes.Equal(got, c) {
				t.Fatalf("content of %s diverged: %v", n, rerr)
			}
		}
	})
}

// FuzzReplay drives random op sequences — create, write, delete,
// rename, journaled syncs — against a crash-recorded device, then
// kills the medium at a fuzz-chosen block boundary and mounts the
// crash image. The roll-forward invariants: a mount after any acked
// Sync must never error (a torn summary tail is the *expected* shape
// of a crash, not a failure), and the recovered state must be exactly
// one of the acked states — never a torn mixture.
func FuzzReplay(f *testing.F) {
	// Seed corpus: checkpoint-only, journal tails of several shapes,
	// dir-op churn, and crash points near the start, middle and end.
	f.Add([]byte{0, 1, 2, 1, 2, 1, 2}, uint16(0))
	f.Add([]byte{0, 8, 16, 1, 9, 2, 1, 17, 2, 25, 2}, uint16(20))
	f.Add([]byte{0, 2, 1, 2, 3, 2, 4, 8, 2, 0, 2}, uint16(90))
	f.Add([]byte{0, 1, 2, 64, 65, 2, 66, 2, 128, 130, 2}, uint16(300))
	f.Add([]byte{0, 2, 4, 2, 0, 2, 3, 2}, uint16(65535))
	f.Fuzz(func(t *testing.T, ops []byte, crash uint16) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		const devBlocks = 1024
		p := Params{
			SegmentBlocks:    16,
			CheckpointBlocks: 16,
			WritebackBlocks:  0,
			CheckpointEvery:  40,
			HeatAware:        true,
			ReserveSegments:  2,
		}
		dev := quietDev(devBlocks)
		rec := recordWrites(dev)
		fs, err := New(dev, p)
		if err != nil {
			t.Fatal(err)
		}

		names := []string{"a", "b", "c", "d"}
		model := make(map[string][]byte)
		var acks []fsSnapshot
		for i := 0; i < len(ops); i++ {
			b := ops[i]
			name := names[(b>>3)%4]
			switch b % 5 {
			case 0: // create
				if _, cerr := fs.Create(name, b%3); cerr == nil {
					model[name] = nil
				}
			case 1: // write one block somewhere in the first 6
				if _, ok := model[name]; !ok {
					continue
				}
				ino, lerr := fs.Lookup(name)
				if lerr != nil {
					t.Fatalf("lookup %s: %v", name, lerr)
				}
				blk := int(b>>5) % 6
				data := payload(b^0xA5, device.DataBytes)
				werr := fs.Write(ino, uint64(blk)*device.DataBytes, data)
				if errors.Is(werr, ErrFull) {
					continue
				}
				if werr != nil {
					t.Fatalf("write %s: %v", name, werr)
				}
				buf := model[name]
				for len(buf) < (blk+1)*device.DataBytes {
					buf = append(buf, 0)
				}
				copy(buf[blk*device.DataBytes:], data)
				model[name] = buf
			case 2: // sync: ack everything current
				serr := fs.Sync()
				if errors.Is(serr, ErrFull) {
					continue
				}
				if serr != nil {
					t.Fatalf("sync: %v", serr)
				}
				acks = append(acks, snapshotModel(model, rec.count()))
			case 3: // delete
				if derr := fs.Delete(name); derr == nil {
					delete(model, name)
				}
			case 4: // rename to the next name over
				to := names[(int(b>>3)+1)%4]
				if rerr := fs.Rename(name, to); rerr == nil {
					model[to] = model[name]
					delete(model, name)
				}
			}
		}
		dev.SetWriteObserver(nil)

		total := rec.count()
		k := int(crash) % (total + 1)
		lastAck := -1
		for i, a := range acks {
			if a.writes <= k {
				lastAck = i
			}
		}
		crashed := rec.deviceAt(t, devBlocks, k)
		mounted, merr := Mount(crashed, p)
		if lastAck < 0 {
			return // nothing acked: an unmountable medium is allowed
		}
		if merr != nil {
			t.Fatalf("crash at write %d/%d after ack %d: mount failed: %v",
				k, total, lastAck, merr)
		}
		ok := matchesSnapshot(mounted, acks[lastAck])
		if !ok && lastAck+1 < len(acks) {
			ok = matchesSnapshot(mounted, acks[lastAck+1])
		}
		if !ok {
			t.Fatalf("crash at write %d/%d: mounted state is neither ack %d nor ack %d",
				k, total, lastAck, lastAck+1)
		}
		// The full-walk fallback must recover byte-identical state from
		// the same crash image.
		pw := p
		pw.NoLivenessTable = true
		walked, werr := Mount(crashed, pw)
		if werr != nil {
			t.Fatalf("crash at write %d/%d: walk mount failed: %v", k, total, werr)
		}
		walkFP := mountFingerprint(walked)
		if mountFingerprint(mounted) != walkFP {
			t.Fatalf("crash at write %d/%d: table mount diverges from walk mount", k, total)
		}
		// Mutate the checkpointed liveness table (fuzz-chosen byte):
		// corruption must always degrade the mount to the walk — the
		// table's own checksum rejects it — never corrupt liveness.
		if corruptTableByte(t, crashed, p, uint64(crash)*31+uint64(len(ops))) {
			remounted, rerr := Mount(crashed, p)
			if rerr != nil {
				t.Fatalf("crash at write %d/%d: mount errored on mutated table: %v", k, total, rerr)
			}
			if remounted.MountReport().TableMount {
				t.Fatalf("crash at write %d/%d: mutated table was still adopted", k, total)
			}
			if mountFingerprint(remounted) != walkFP {
				t.Fatalf("crash at write %d/%d: mutated-table mount corrupted liveness", k, total)
			}
		}
	})
}
