package lfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"sero/internal/device"
)

// Checkpointing. The checkpoint region at the front of the device is
// split into two alternating slots; epoch N lands in slot (N-1)%2, so
// a crash tearing the slot being written always leaves the previous
// checkpoint intact — Mount picks the newest valid slot and rolls
// forward through that epoch's summary chain (replay.go). Each slot
// holds the serialized imap and directory plus the journal anchor
// (epoch, virtual write time, chain start); everything else (segment
// live counts, owners, pins) is reconstructed by walking the inodes
// and asking the device for its heated lines.
//
// A checkpoint is a replay shortcut, not the unit of durability:
// Sync normally appends a summary record and leaves the checkpoint
// alone. Checkpoints are written when the policy says so
// (Params.CheckpointEvery appended blocks), on explicit Checkpoint(),
// and whenever a delta cannot be journaled.

const ckptMagic = "SCK2"

// ErrBadCheckpoint reports that no valid checkpoint slot exists.
var ErrBadCheckpoint = errors.New("lfs: bad checkpoint")

// slotBlocks is the size of one checkpoint slot in blocks.
func (fs *FS) slotBlocks() int { return fs.p.CheckpointBlocks / 2 }

// ckptSum is the integrity checksum over a serialized checkpoint.
func ckptSum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// writeCheckpointLocked serializes imap+directory into the next
// checkpoint slot and re-anchors the summary chain at the affinity-0
// write frontier, where the slot's jstart names the promise block the
// first record of the new epoch must land in.
func (fs *FS) writeCheckpointLocked() error {
	epoch := fs.ckptEpoch + 1
	// Pick the anchor: the next free block of the affinity-0 appender.
	// The slot is only reserved — and the chain state only reset —
	// after the checkpoint write succeeds, so a failed or torn
	// checkpoint leaves the previous chain fully intact for fallback.
	var jstart uint64
	seg := fs.active[0]
	if seg != nil && seg.next >= fs.p.SegmentBlocks {
		if err := fs.sealSegment(seg); err != nil {
			return err
		}
		seg = nil
	}
	if seg == nil {
		if seg = fs.sm.allocSegment(0); seg != nil {
			fs.active[0] = seg
		}
	}
	if seg != nil {
		jstart = seg.start + uint64(seg.next)
	}
	// jstart == 0 means no free segment was left to anchor a chain:
	// the log base is never 0, so replay reads it as "no chain" and
	// every following Sync falls back to a full checkpoint.

	var buf []byte
	buf = append(buf, ckptMagic...)
	buf = binary.BigEndian.AppendUint64(buf, epoch)
	buf = binary.BigEndian.AppendUint64(buf, uint64(fs.now()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(fs.next))
	buf = binary.BigEndian.AppendUint64(buf, jstart)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(fs.imap)))
	inos := make([]Ino, 0, len(fs.imap))
	for ino := range fs.imap {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		buf = binary.BigEndian.AppendUint64(buf, uint64(ino))
		buf = binary.BigEndian.AppendUint64(buf, fs.imap[ino])
	}
	names := make([]string, 0, len(fs.dir))
	for n := range fs.dir {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		if len(n) > 255 {
			return fmt.Errorf("lfs: name %q too long", n)
		}
		buf = append(buf, byte(len(n)))
		buf = append(buf, n...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(fs.dir[n]))
	}

	// Frame with total length and checksum, split across the slot's
	// blocks, and commit as one batched write command.
	framed := binary.BigEndian.AppendUint64(nil, uint64(len(buf)))
	framed = append(framed, buf...)
	framed = binary.BigEndian.AppendUint64(framed, ckptSum(buf))
	slot := fs.slotBlocks()
	needBlocks := (len(framed) + device.DataBytes - 1) / device.DataBytes
	if needBlocks > slot {
		return fmt.Errorf("lfs: checkpoint of %d blocks exceeds slot of %d (region %d)",
			needBlocks, slot, fs.p.CheckpointBlocks)
	}
	blocks := make([][]byte, needBlocks)
	for i := 0; i < needBlocks; i++ {
		blockBuf := make([]byte, device.DataBytes)
		end := (i + 1) * device.DataBytes
		if end > len(framed) {
			end = len(framed)
		}
		copy(blockBuf, framed[i*device.DataBytes:end])
		blocks[i] = blockBuf
	}
	base := uint64((epoch - 1) % 2 * uint64(slot))
	if err := fs.dev.WriteBlocks(base, blocks); err != nil {
		// Nothing was reserved and the chain state is untouched: the
		// previous checkpoint and its chain remain authoritative.
		return fmt.Errorf("lfs: writing checkpoint: %w", err)
	}
	// The old chain is obsolete now that the checkpoint is on the
	// medium: release its segments to the cleaner and reserve the new
	// anchor's promise slot.
	for _, s := range fs.sm.segs {
		s.journal = false
	}
	fs.jpromise = jstart
	if seg != nil {
		seg.next++
		seg.journal = true
	}
	fs.ckptEpoch = epoch
	fs.jepoch = epoch
	fs.jseq = 1
	fs.jchain = chainSeed(epoch)
	fs.appended = 0
	fs.clearDeltasLocked()
	fs.stats.Checkpoints++
	return nil
}

// ckptImage is one parsed checkpoint slot.
type ckptImage struct {
	epoch     uint64
	writtenAt uint64
	next      Ino
	jstart    uint64
	imap      map[Ino]uint64
	dir       map[string]Ino
}

// readSlot parses the checkpoint slot at the given base block. A nil
// return means the slot holds no valid checkpoint — unwritten, torn,
// or corrupt; the caller decides whether that is fatal.
func (fs *FS) readSlot(base uint64) *ckptImage {
	first, err := fs.dev.MRS(base)
	if err != nil {
		return nil
	}
	total := binary.BigEndian.Uint64(first[:8])
	slotBytes := uint64(fs.slotBlocks() * device.DataBytes)
	if total == 0 || total > slotBytes-16 {
		return nil
	}
	framed := append([]byte(nil), first...)
	for uint64(len(framed)) < total+16 {
		blk := base + uint64(len(framed)/device.DataBytes)
		data, rerr := fs.dev.MRS(blk)
		if rerr != nil {
			return nil
		}
		framed = append(framed, data...)
	}
	buf := framed[8 : 8+total]
	if ckptSum(buf) != binary.BigEndian.Uint64(framed[8+total:16+total]) {
		return nil
	}
	if len(buf) < 40 || string(buf[:4]) != ckptMagic {
		return nil
	}
	ck := &ckptImage{
		epoch:     binary.BigEndian.Uint64(buf[4:12]),
		writtenAt: binary.BigEndian.Uint64(buf[12:20]),
		next:      Ino(binary.BigEndian.Uint64(buf[20:28])),
		jstart:    binary.BigEndian.Uint64(buf[28:36]),
		imap:      make(map[Ino]uint64),
		dir:       make(map[string]Ino),
	}
	if ck.epoch == 0 {
		return nil
	}
	off := 36
	nImap := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if off+16*nImap > len(buf) {
		return nil
	}
	for i := 0; i < nImap; i++ {
		ino := Ino(binary.BigEndian.Uint64(buf[off:]))
		pba := binary.BigEndian.Uint64(buf[off+8:])
		off += 16
		ck.imap[ino] = pba
	}
	if off+4 > len(buf) {
		return nil
	}
	nDir := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nDir; i++ {
		if off+1 > len(buf) {
			return nil
		}
		nl := int(buf[off])
		off++
		if off+nl+8 > len(buf) {
			return nil
		}
		name := string(buf[off : off+nl])
		off += nl
		ino := Ino(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		ck.dir[name] = ino
	}
	return ck
}

// loadBestCheckpoint parses both slots and returns the valid one with
// the highest epoch, or nil when neither slot holds a checkpoint.
func (fs *FS) loadBestCheckpoint() *ckptImage {
	a := fs.readSlot(0)
	b := fs.readSlot(uint64(fs.slotBlocks()))
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.epoch >= b.epoch:
		return a
	default:
		return b
	}
}

// loadInodeAt reads and caches an inode from a specific block.
func (fs *FS) loadInodeAt(ino Ino, pba uint64) (*Inode, error) {
	data, err := fs.dev.MRS(pba)
	if err != nil {
		return nil, fmt.Errorf("lfs: reading inode %d at %d: %w", ino, pba, err)
	}
	in, err := UnmarshalInode(data)
	if err != nil {
		return nil, err
	}
	if in.Ino != ino {
		return nil, fmt.Errorf("%w: imap says %d, block says %d", ErrBadInode, ino, in.Ino)
	}
	fs.cacheInode(in)
	return in, nil
}
