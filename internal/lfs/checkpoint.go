package lfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"sero/internal/device"
)

// Checkpointing and mount. The checkpoint region at the front of the
// device holds the serialized imap and directory; everything else
// (segment live counts, owners, pins) is reconstructed by walking the
// inodes and asking the device for its heated lines. Classic LFS
// writes the imap into the log and checkpoints pointers to it; a full
// serialization is simpler and the region is tiny compared to the log.

const ckptMagic = "SCKP"

// ErrBadCheckpoint reports an unreadable or corrupt checkpoint.
var ErrBadCheckpoint = errors.New("lfs: bad checkpoint")

// writeCheckpointLocked serializes imap+directory into the checkpoint
// region.
func (fs *FS) writeCheckpointLocked() error {
	var buf []byte
	buf = append(buf, ckptMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(fs.next))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(fs.imap)))
	inos := make([]Ino, 0, len(fs.imap))
	for ino := range fs.imap {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		buf = binary.BigEndian.AppendUint64(buf, uint64(ino))
		buf = binary.BigEndian.AppendUint64(buf, fs.imap[ino])
	}
	names := make([]string, 0, len(fs.dir))
	for n := range fs.dir {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		if len(n) > 255 {
			return fmt.Errorf("lfs: name %q too long", n)
		}
		buf = append(buf, byte(len(n)))
		buf = append(buf, n...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(fs.dir[n]))
	}

	// Frame with total length, split across checkpoint blocks, and
	// commit the region as one batched write command.
	framed := binary.BigEndian.AppendUint64(nil, uint64(len(buf)))
	framed = append(framed, buf...)
	needBlocks := (len(framed) + device.DataBytes - 1) / device.DataBytes
	if needBlocks > fs.p.CheckpointBlocks {
		return fmt.Errorf("lfs: checkpoint of %d blocks exceeds region %d",
			needBlocks, fs.p.CheckpointBlocks)
	}
	blocks := make([][]byte, needBlocks)
	for i := 0; i < needBlocks; i++ {
		blockBuf := make([]byte, device.DataBytes)
		end := (i + 1) * device.DataBytes
		if end > len(framed) {
			end = len(framed)
		}
		copy(blockBuf, framed[i*device.DataBytes:end])
		blocks[i] = blockBuf
	}
	if err := fs.dev.WriteBlocks(0, blocks); err != nil {
		return fmt.Errorf("lfs: writing checkpoint: %w", err)
	}
	return nil
}

// Mount reconstructs a file system from a device previously formatted
// and synced by this package. All in-memory state (live maps, segment
// states, pins) is rebuilt from the checkpoint, the inodes it
// references, and the device's heated-line registry.
func Mount(dev *device.Device, p Params) (*FS, error) {
	fs, err := New(dev, p)
	if err != nil {
		return nil, err
	}
	// Read the framed checkpoint.
	first, err := dev.MRS(0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	total := binary.BigEndian.Uint64(first[:8])
	if total == 0 || total > uint64(fs.p.CheckpointBlocks*device.DataBytes) {
		return nil, fmt.Errorf("%w: length %d", ErrBadCheckpoint, total)
	}
	framed := append([]byte(nil), first...)
	for len(framed) < int(total)+8 {
		blk := uint64(len(framed) / device.DataBytes)
		data, rerr := dev.MRS(blk)
		if rerr != nil {
			return nil, fmt.Errorf("%w: block %d: %v", ErrBadCheckpoint, blk, rerr)
		}
		framed = append(framed, data...)
	}
	buf := framed[8 : 8+total]
	if string(buf[:4]) != ckptMagic {
		return nil, fmt.Errorf("%w: magic", ErrBadCheckpoint)
	}
	off := 4
	fs.next = Ino(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	nImap := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nImap; i++ {
		ino := Ino(binary.BigEndian.Uint64(buf[off:]))
		pba := binary.BigEndian.Uint64(buf[off+8:])
		off += 16
		fs.imap[ino] = pba
	}
	nDir := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nDir; i++ {
		nl := int(buf[off])
		off++
		name := string(buf[off : off+nl])
		off += nl
		ino := Ino(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		fs.dir[name] = ino
		fs.names[ino] = name
	}

	// Rebuild liveness and segment state by walking the inodes in ino
	// order. The inode reads advance the device clock, so the walk
	// loads everything first and then stamps all liveness with one
	// timestamp: mount-time segment ages — and with them the cleaner's
	// future victim choices — must not depend on map iteration order.
	inos := make([]Ino, 0, len(fs.imap))
	for ino := range fs.imap {
		inos = append(inos, ino)
	}
	sortInos(inos)
	for _, ino := range inos {
		if _, ierr := fs.loadInodeAt(ino, fs.imap[ino]); ierr != nil {
			return nil, ierr
		}
	}
	now := fs.now()
	maxSeg := -1
	for _, ino := range inos {
		ipba := fs.imap[ino]
		in, _ := fs.cachedInode(ino)
		if !in.Heated() {
			fs.sm.markLive(ipba, now)
			fs.owners[ipba] = blockRef{ino: ino, idx: -1}
			for idx, pba := range in.Blocks {
				if pba == 0 {
					continue // hole sentinel, not a data block
				}
				fs.sm.markLive(pba, now)
				fs.owners[pba] = blockRef{ino: ino, idx: idx}
			}
		}
		for _, pba := range in.Blocks {
			if s := fs.sm.segOf(pba); s != nil && s.id > maxSeg {
				maxSeg = s.id
			}
		}
		if s := fs.sm.segOf(ipba); s != nil && s.id > maxSeg {
			maxSeg = s.id
		}
	}
	// Pin segments containing heated lines, per the device registry.
	for _, li := range dev.Lines() {
		fs.sm.pin(li.Start, int(li.Blocks()))
		if s := fs.sm.segOf(li.Start); s != nil && s.id > maxSeg {
			maxSeg = s.id
		}
	}
	// Segments up to the high-water mark that hold live or heated data
	// are full; the rest are free. (Active appenders are not restored;
	// new writes open fresh segments.)
	for _, s := range fs.sm.segs {
		if s.state == SegPinned {
			continue
		}
		if s.live > 0 {
			s.state = SegFull
			s.next = fs.p.SegmentBlocks
		}
	}
	return fs, nil
}

// loadInodeAt reads and caches an inode from a specific block.
func (fs *FS) loadInodeAt(ino Ino, pba uint64) (*Inode, error) {
	data, err := fs.dev.MRS(pba)
	if err != nil {
		return nil, fmt.Errorf("lfs: reading inode %d at %d: %w", ino, pba, err)
	}
	in, err := UnmarshalInode(data)
	if err != nil {
		return nil, err
	}
	if in.Ino != ino {
		return nil, fmt.Errorf("%w: imap says %d, block says %d", ErrBadInode, ino, in.Ino)
	}
	fs.cacheInode(in)
	return in, nil
}
