package lfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"sero/internal/device"
)

// Checkpointing. The checkpoint region at the front of the device is
// split into two alternating slots; epoch N lands in slot (N-1)%2, so
// a crash tearing the slot being written always leaves the previous
// checkpoint intact — Mount picks the newest valid slot and rolls
// forward through that epoch's summary chain (replay.go). Each slot
// holds the serialized imap and directory plus the journal anchor
// (epoch, virtual write time, chain start), followed by an optional
// *liveness table*: the per-segment usage summary (every live block's
// owner) that lets a mount rebuild the segment table and owner map
// without re-reading a single inode. The table is framed and
// checksummed independently of the core payload, so a damaged table
// degrades the mount to the full inode walk instead of invalidating
// the whole slot; a table too large for the slot is simply omitted
// (length 0), with the same fallback.
//
// A checkpoint is a replay shortcut, not the unit of durability:
// Sync normally appends a summary record and leaves the checkpoint
// alone. Checkpoints are written when the policy says so
// (Params.CheckpointEvery appended blocks), on explicit Checkpoint(),
// and whenever a delta cannot be journaled.

const (
	ckptMagic = "SCK3"
	// tableMagic heads the serialized liveness table inside a slot.
	tableMagic = "SLT1"
)

// ErrBadCheckpoint reports that no valid checkpoint slot exists.
var ErrBadCheckpoint = errors.New("lfs: bad checkpoint")

// ErrTornCheckpoint reports that both checkpoint slots hold data but
// neither validates — a double-torn or corrupted checkpoint region.
// Unlike a pristine medium (ErrBadCheckpoint alone), this is evidence
// of damage: the medium has been formatted and synced, and mounting it
// as empty would silently discard the namespace. ErrTornCheckpoint
// wraps ErrBadCheckpoint, so errors.Is against either sentinel works.
var ErrTornCheckpoint = fmt.Errorf("%w: both checkpoint slots torn", ErrBadCheckpoint)

// slotBlocks is the size of one checkpoint slot in blocks.
func (fs *FS) slotBlocks() int { return fs.p.CheckpointBlocks / 2 }

// ckptSum is the integrity checksum over a serialized checkpoint (and,
// separately, over its liveness table).
func ckptSum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// liveRef is one liveness-table entry: block pba is live and owned by
// ino (idx is the data block index, or -1 for the inode block itself).
type liveRef struct {
	pba uint64
	ino Ino
	idx int32
}

// encodeTableLocked serializes the per-segment liveness table from the
// live map and owner map: for every segment, in id order, its live
// blocks in offset order with their owners. Deterministic by
// construction — identical histories produce identical tables. Caller
// holds fs.mu exclusively.
func (fs *FS) encodeTableLocked() []byte {
	var buf []byte
	buf = append(buf, tableMagic...)
	groups := 0
	groupCountAt := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, 0) // patched below
	for _, s := range fs.sm.segs {
		if s.live == 0 {
			continue
		}
		groups++
		buf = binary.BigEndian.AppendUint32(buf, uint32(s.id))
		countAt := len(buf)
		buf = binary.BigEndian.AppendUint16(buf, 0) // patched below
		n := 0
		for off := 0; off < fs.sm.segBlocks; off++ {
			pba := s.start + uint64(off)
			if !fs.sm.liveMap[pba] {
				continue
			}
			ref, ok := fs.owners[pba]
			if !ok {
				// A live block with no owner is a bookkeeping bug, the
				// same invariant the cleaner's plan phase asserts.
				panic("lfs: live block without owner")
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(off))
			buf = binary.BigEndian.AppendUint64(buf, uint64(ref.ino))
			buf = binary.BigEndian.AppendUint32(buf, uint32(int32(ref.idx)))
			n++
		}
		binary.BigEndian.PutUint16(buf[countAt:], uint16(n))
	}
	binary.BigEndian.PutUint32(buf[groupCountAt:], uint32(groups))
	return buf
}

// parseTable decodes and cross-checks a slot's liveness table against
// the slot's own imap. A non-empty reason means the table must not be
// trusted — the mount falls back to the full inode walk. The checks
// are purely structural and in-memory (no device reads): segment ids
// and offsets in range and strictly ordered, every owner present in
// the imap, and exactly one inode-block entry per ino that appears,
// agreeing with the imap pointer. Heated files legitimately have no
// entries at all (their blocks live under line pins, not the live
// map).
func (fs *FS) parseTable(buf []byte, imap map[Ino]uint64) ([]liveRef, string) {
	if len(buf) < 8 || string(buf[:4]) != tableMagic {
		return nil, "bad table magic"
	}
	groups := int(binary.BigEndian.Uint32(buf[4:8]))
	off := 8
	// Non-nil even when empty: a zero-group table (empty or all-heated
	// namespace) is valid, and nil is the "rejected" sentinel.
	refs := []liveRef{}
	inoBlock := make(map[Ino]uint64) // ino -> its idx==-1 entry's pba
	hasData := make(map[Ino]bool)
	lastSeg := -1
	for g := 0; g < groups; g++ {
		if off+6 > len(buf) {
			return nil, "truncated group header"
		}
		segID := int(binary.BigEndian.Uint32(buf[off:]))
		count := int(binary.BigEndian.Uint16(buf[off+4:]))
		off += 6
		if segID <= lastSeg || segID >= len(fs.sm.segs) {
			return nil, "segment id out of order or range"
		}
		lastSeg = segID
		if count == 0 || count > fs.sm.segBlocks {
			return nil, "group count out of range"
		}
		seg := fs.sm.segs[segID]
		lastOff := -1
		for i := 0; i < count; i++ {
			if off+14 > len(buf) {
				return nil, "truncated entry"
			}
			bo := int(binary.BigEndian.Uint16(buf[off:]))
			ino := Ino(binary.BigEndian.Uint64(buf[off+2:]))
			idx := int32(binary.BigEndian.Uint32(buf[off+10:]))
			off += 14
			if bo <= lastOff || bo >= fs.sm.segBlocks {
				return nil, "block offset out of order or range"
			}
			lastOff = bo
			pba := seg.start + uint64(bo)
			ipba, known := imap[ino]
			if !known {
				return nil, "owner not in imap"
			}
			if idx == -1 {
				if _, dup := inoBlock[ino]; dup {
					return nil, "duplicate inode-block entry"
				}
				if ipba != pba {
					return nil, "inode-block entry disagrees with imap"
				}
				inoBlock[ino] = pba
			} else if idx < 0 {
				return nil, "negative data index"
			} else {
				hasData[ino] = true
			}
			refs = append(refs, liveRef{pba: pba, ino: ino, idx: idx})
		}
	}
	if off != len(buf) {
		return nil, "trailing bytes"
	}
	for ino := range hasData {
		if _, ok := inoBlock[ino]; !ok {
			return nil, "data entries without an inode-block entry"
		}
	}
	return refs, ""
}

// writeCheckpointLocked serializes imap+directory (and the liveness
// table, when it fits the slot) into the next checkpoint slot and
// re-anchors the summary chain at the affinity-0 write frontier, where
// the slot's jstart names the promise block the first record of the
// new epoch must land in.
func (fs *FS) writeCheckpointLocked() error {
	tr := fs.dev.Tracer()
	t0 := fs.now()
	epoch := fs.ckptEpoch + 1
	// Pick the anchor: the next free block of the affinity-0 appender.
	// The slot is only reserved — and the chain state only reset —
	// after the checkpoint write succeeds, so a failed or torn
	// checkpoint leaves the previous chain fully intact for fallback.
	var jstart uint64
	seg := fs.active[0]
	if seg != nil && seg.next >= fs.p.SegmentBlocks {
		if err := fs.sealSegment(seg); err != nil {
			return err
		}
		seg = nil
	}
	if seg == nil {
		if seg = fs.sm.allocSegment(0); seg != nil {
			fs.active[0] = seg
		}
	}
	if seg != nil {
		jstart = seg.start + uint64(seg.next)
	}
	// jstart == 0 means no free segment was left to anchor a chain:
	// the log base is never 0, so replay reads it as "no chain" and
	// every following Sync falls back to a full checkpoint.

	var buf []byte
	buf = append(buf, ckptMagic...)
	buf = binary.BigEndian.AppendUint64(buf, epoch)
	buf = binary.BigEndian.AppendUint64(buf, uint64(fs.now()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(fs.next))
	buf = binary.BigEndian.AppendUint64(buf, jstart)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(fs.imap)))
	inos := make([]Ino, 0, len(fs.imap))
	for ino := range fs.imap {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		buf = binary.BigEndian.AppendUint64(buf, uint64(ino))
		buf = binary.BigEndian.AppendUint64(buf, fs.imap[ino])
	}
	names := make([]string, 0, len(fs.dir))
	for n := range fs.dir {
		names = append(names, n)
	}
	sort.Strings(names)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		if len(n) > 255 {
			return fmt.Errorf("lfs: name %q too long", n)
		}
		buf = append(buf, byte(len(n)))
		buf = append(buf, n...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(fs.dir[n]))
	}

	// Frame with total length and checksum, then append the liveness
	// table under its own length+checksum framing — a damaged or
	// oversized table must cost only the table, never the checkpoint.
	framed := binary.BigEndian.AppendUint64(nil, uint64(len(buf)))
	framed = append(framed, buf...)
	framed = binary.BigEndian.AppendUint64(framed, ckptSum(buf))
	slot := fs.slotBlocks()
	slotBytes := slot * device.DataBytes
	table := []byte(nil)
	// The table's offset and count fields are uint16, so segments
	// beyond 64Ki blocks cannot be represented: omit the table (the
	// mount then walks) rather than emit one that rejects forever.
	if !fs.p.NoLivenessTable && fs.p.SegmentBlocks <= 0xFFFF {
		table = fs.encodeTableLocked()
	}
	if len(table) > 0 && len(framed)+8+len(table)+8 <= slotBytes {
		framed = binary.BigEndian.AppendUint64(framed, uint64(len(table)))
		framed = append(framed, table...)
		framed = binary.BigEndian.AppendUint64(framed, ckptSum(table))
	} else {
		// No table (disabled, or it does not fit the slot): an explicit
		// zero length, so a reader never misparses stale residue from an
		// earlier, larger checkpoint in the same slot.
		framed = binary.BigEndian.AppendUint64(framed, 0)
	}
	needBlocks := (len(framed) + device.DataBytes - 1) / device.DataBytes
	if needBlocks > slot {
		return fmt.Errorf("lfs: checkpoint of %d blocks exceeds slot of %d (region %d)",
			needBlocks, slot, fs.p.CheckpointBlocks)
	}
	blocks := make([][]byte, needBlocks)
	for i := 0; i < needBlocks; i++ {
		blockBuf := make([]byte, device.DataBytes)
		end := (i + 1) * device.DataBytes
		if end > len(framed) {
			end = len(framed)
		}
		copy(blockBuf, framed[i*device.DataBytes:end])
		blocks[i] = blockBuf
	}
	base := uint64((epoch - 1) % 2 * uint64(slot))
	if err := fs.dev.WriteBlocksTraced(fs.curTask, base, blocks); err != nil {
		// Nothing was reserved and the chain state is untouched: the
		// previous checkpoint and its chain remain authoritative.
		return fmt.Errorf("lfs: writing checkpoint: %w", err)
	}
	// The old chain is obsolete now that the checkpoint is on the
	// medium: release its segments to the cleaner and reserve the new
	// anchor's promise slot.
	for _, s := range fs.sm.segs {
		s.journal = false
	}
	fs.jpromise = jstart
	if seg != nil {
		seg.next++
		seg.journal = true
	}
	fs.ckptEpoch = epoch
	fs.jepoch = epoch
	fs.jseq = 1
	fs.jchain = chainSeed(epoch)
	fs.appended = 0
	fs.clearDeltasLocked()
	fs.stats.Checkpoints++
	fs.emitSpan(tr, "checkpoint", t0, int64(needBlocks), int64(epoch))
	return nil
}

// ckptImage is one parsed checkpoint slot.
type ckptImage struct {
	epoch     uint64
	writtenAt uint64
	next      Ino
	jstart    uint64
	imap      map[Ino]uint64
	dir       map[string]Ino
	// table is the slot's parsed liveness table (nil when absent or
	// rejected); tablePresent records that a non-empty table was
	// written, and tableStop why it was rejected, for diagnostics.
	table        []liveRef
	tablePresent bool
	tableStop    string
}

// slotStatus classifies one checkpoint slot.
type slotStatus int

const (
	// slotEmpty: the slot was never written (or holds only zeros) — the
	// shape of a pristine medium.
	slotEmpty slotStatus = iota
	// slotValid: the slot parses and its checksum agrees.
	slotValid
	// slotTorn: the slot holds data that fails validation — a torn
	// checkpoint write, or corruption.
	slotTorn
)

// readSlot parses the checkpoint slot at the given base block. A nil
// image with slotTorn means the slot holds damaged data; with
// slotEmpty, that nothing was ever written there. The caller decides
// what is fatal.
func (fs *FS) readSlot(base uint64) (*ckptImage, slotStatus) {
	first, err := fs.dev.MRS(base)
	if err != nil {
		// An unreadable first block is the unwritten shape: the medium
		// frames every written block, so a torn slot write still leaves
		// readable blocks behind.
		return nil, slotEmpty
	}
	empty := true
	for _, b := range first {
		if b != 0 {
			empty = false
			break
		}
	}
	if empty {
		return nil, slotEmpty
	}
	total := binary.BigEndian.Uint64(first[:8])
	slotBytes := uint64(fs.slotBlocks() * device.DataBytes)
	if total == 0 || total > slotBytes-16 {
		return nil, slotTorn
	}
	framed := append([]byte(nil), first...)
	// Extending the frame is batched: each readTo call fans the whole
	// still-needed block range out over worker planes in one
	// ReadBlocksFanned pass (this was the last serial block-at-a-time
	// mount path). framed always ends on a block boundary, and an
	// unreadable block degrades exactly as the serial loop did — the
	// readable prefix is kept, the extension reports failure.
	readTo := func(n uint64) bool {
		have := uint64(len(framed))
		if n <= have {
			return true
		}
		count := int((n - have + device.DataBytes - 1) / device.DataBytes)
		data, complete := ReadablePrefix(fs.dev, base+have/device.DataBytes, count, fs.p.Concurrency)
		framed = append(framed, data...)
		return complete
	}
	if !readTo(total + 16) {
		return nil, slotTorn
	}
	buf := framed[8 : 8+total]
	if ckptSum(buf) != binary.BigEndian.Uint64(framed[8+total:16+total]) {
		return nil, slotTorn
	}
	if len(buf) < 40 || string(buf[:4]) != ckptMagic {
		return nil, slotTorn
	}
	ck := &ckptImage{
		epoch:     binary.BigEndian.Uint64(buf[4:12]),
		writtenAt: binary.BigEndian.Uint64(buf[12:20]),
		next:      Ino(binary.BigEndian.Uint64(buf[20:28])),
		jstart:    binary.BigEndian.Uint64(buf[28:36]),
		imap:      make(map[Ino]uint64),
		dir:       make(map[string]Ino),
	}
	if ck.epoch == 0 {
		return nil, slotTorn
	}
	off := 36
	nImap := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if off+16*nImap > len(buf) {
		return nil, slotTorn
	}
	for i := 0; i < nImap; i++ {
		ino := Ino(binary.BigEndian.Uint64(buf[off:]))
		pba := binary.BigEndian.Uint64(buf[off+8:])
		off += 16
		ck.imap[ino] = pba
	}
	if off+4 > len(buf) {
		return nil, slotTorn
	}
	nDir := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < nDir; i++ {
		if off+1 > len(buf) {
			return nil, slotTorn
		}
		nl := int(buf[off])
		off++
		if off+nl+8 > len(buf) {
			return nil, slotTorn
		}
		name := string(buf[off : off+nl])
		off += nl
		ino := Ino(binary.BigEndian.Uint64(buf[off:]))
		off += 8
		ck.dir[name] = ino
	}
	fs.readSlotTable(ck, base, total, readTo, &framed)
	return ck, slotValid
}

// readSlotTable parses the optional liveness-table frame trailing the
// core checkpoint payload. Any defect — unreadable blocks, a length
// beyond the slot, a checksum or structural failure — only marks the
// table rejected (ck.table nil, ck.tableStop set): the core slot stays
// valid and the mount degrades to the full inode walk.
func (fs *FS) readSlotTable(ck *ckptImage, base, total uint64, readTo func(uint64) bool, framed *[]byte) {
	if fs.p.NoLivenessTable {
		ck.tableStop = "liveness table disabled"
		return
	}
	tlenAt := total + 16
	if !readTo(tlenAt + 8) {
		ck.tableStop = "table length unreadable"
		return
	}
	tlen := binary.BigEndian.Uint64((*framed)[tlenAt : tlenAt+8])
	if tlen == 0 {
		ck.tableStop = "no table in slot"
		return
	}
	ck.tablePresent = true
	// The length field itself is covered by no checksum, so bound it
	// before any arithmetic: a corrupt value near 2^64 would otherwise
	// wrap the sum below and slice out of range instead of degrading.
	slotBytes := uint64(fs.slotBlocks() * device.DataBytes)
	if tlen > slotBytes || tlenAt+8+tlen+8 > slotBytes {
		ck.tableStop = "table length exceeds slot"
		return
	}
	if !readTo(tlenAt + 8 + tlen + 8) {
		ck.tableStop = "table torn (unreadable blocks)"
		return
	}
	tbuf := (*framed)[tlenAt+8 : tlenAt+8+tlen]
	if ckptSum(tbuf) != binary.BigEndian.Uint64((*framed)[tlenAt+8+tlen:]) {
		ck.tableStop = "table checksum mismatch"
		return
	}
	refs, reason := fs.parseTable(tbuf, ck.imap)
	if reason != "" {
		ck.tableStop = "table cross-check failed: " + reason
		return
	}
	ck.table = refs
}

// fanReadMinShare is the smallest per-plane share worth a private
// worker plane: a plane pays its own positioning seek before it
// streams, so below this many blocks per worker the fan-out costs
// more virtual time than the serial read it replaces.
const fanReadMinShare = 16

// ReadablePrefix magnetically reads the block range [base,
// base+blocks) and returns the concatenated payloads up to (not
// including) the first unreadable block, plus whether the whole range
// was readable. It is the one readable-prefix primitive shared by the
// mount path's checkpoint-slot reads and serofsck's damage probes —
// both need "give me as much of this region as the medium still
// yields" semantics. Wide ranges are fanned over up to workers device
// planes (clamped so every plane streams at least fanReadMinShare
// blocks); narrow ranges and workers <= 1 read serially on the
// foreground probe, which pays no per-plane positioning seek.
func ReadablePrefix(dev device.Dev, base uint64, blocks, workers int) ([]byte, bool) {
	if blocks <= 0 {
		return nil, true
	}
	if maxw := (blocks + fanReadMinShare - 1) / fanReadMinShare; workers > maxw {
		workers = maxw
	}
	if workers <= 1 {
		out := make([]byte, 0, blocks*device.DataBytes)
		for i := 0; i < blocks; i++ {
			b, err := dev.MRS(base + uint64(i))
			if err != nil {
				return out, false
			}
			out = append(out, b...)
		}
		return out, true
	}
	pbas := make([]uint64, blocks)
	for i := range pbas {
		pbas[i] = base + uint64(i)
	}
	bufs, errs := dev.ReadBlocksFanned(pbas, workers)
	out := make([]byte, 0, blocks*device.DataBytes)
	for i, b := range bufs {
		if errs[i] != nil {
			return out, false
		}
		out = append(out, b...)
	}
	return out, true
}

// peekSlotEpoch reads only a slot's first block and returns the
// (unvalidated) epoch it claims, plus whether the slot holds any data
// at all. The claim orders the full validations so the common case —
// the newer slot is intact — costs one slot read, not two; a lying
// epoch in a torn slot only reorders the fallback, never the outcome.
func (fs *FS) peekSlotEpoch(base uint64) (epoch uint64, nonEmpty bool) {
	first, err := fs.dev.MRS(base)
	if err != nil {
		return 0, false
	}
	for _, b := range first {
		if b != 0 {
			// Bytes 8..12 are the core magic, 12..20 the epoch.
			return binary.BigEndian.Uint64(first[12:20]), true
		}
	}
	return 0, false
}

// loadBestCheckpoint returns the valid checkpoint slot with the
// highest epoch, validating the slot that claims the newer epoch first
// and touching the other only when the first fails — so a healthy
// mount pays for one slot, not two. A nil image with torn=true means
// at least one slot holds damaged data and none validates — the
// double-torn condition Mount must refuse; nil with torn=false means
// the medium was never checkpointed at all.
func (fs *FS) loadBestCheckpoint() (ck *ckptImage, torn bool) {
	bases := []uint64{0, uint64(fs.slotBlocks())}
	ea, na := fs.peekSlotEpoch(bases[0])
	eb, nb := fs.peekSlotEpoch(bases[1])
	if eb > ea {
		bases[0], bases[1] = bases[1], bases[0]
	}
	for _, base := range bases {
		if c, st := fs.readSlot(base); st == slotValid {
			return c, false
		}
	}
	return nil, na || nb
}
