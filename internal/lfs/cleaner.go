package lfs

import (
	"sort"

	"sero/internal/device"
)

// The segment cleaner, following the cost-benefit policy of Rosenblum
// and Ousterhout [42], with the SERO refinement of §4.1: pinned
// segments (those containing heated lines) are never selected —
// "the garbage collector skips over heated segments, avoiding reading
// and writing them repeatedly, thus saving on disk bandwidth".
//
// A cleaning pass is a three-phase pipeline:
//
//  1. plan (serial): pick the K best victims by cost-benefit score and
//     reserve a destination slot in the log for every live data block,
//     in log order — so the post-clean layout is a function of the
//     workload alone, never of the worker count;
//  2. copy (concurrent): relocate each victim's blocks on the device's
//     fanned-out move engine, one worker plane per victim group, with
//     contiguous destinations committed as single batched writes; the
//     device clock advances by the *slowest worker's* elapsed virtual
//     time, the same contract as a fanned-out Audit;
//  3. commit (serial): retarget the owning inodes, rewrite each
//     affected inode once (not once per copied block), and free the
//     emptied victims.

// CleanStats summarises one cleaning pass.
type CleanStats struct {
	// SegmentsCleaned counts segments returned to the free pool.
	SegmentsCleaned int
	// BlocksCopied counts live blocks rewritten (the GC bandwidth
	// cost), including the one-per-inode rewrites of phase 3.
	BlocksCopied int
	// PinnedSkipped counts pinned segments that were candidates by
	// utilisation but were skipped.
	PinnedSkipped int
	// Workers is the fan-out width the copy phase ran at.
	Workers int
	// Checkpointed reports that the pass ended with a checkpoint on
	// the medium (making the relocations durable and the emptied
	// segments reusable).
	Checkpointed bool
}

// Clean runs the cleaner until at least targetFree segments are free
// or no further progress is possible, then checkpoints: the
// relocations become durable and the emptied segments (SegFreeing)
// become reusable only once the medium holds a checkpoint that no
// longer references their old contents.
func (fs *FS) Clean(targetFree int) CleanStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cs := fs.cleanLocked(targetFree)
	if cs.SegmentsCleaned > 0 {
		// A failure leaves the freed segments gated (SegFreeing) —
		// the safe direction; the next successful Sync releases them.
		cs.Checkpointed = fs.syncMetaLocked() == nil
	}
	return cs
}

func (fs *FS) cleanLocked(targetFree int) CleanStats {
	var cs CleanStats
	if fs.cleaning {
		return cs // re-entrant trigger from the cleaner's own appends
	}
	fs.cleaning = true
	defer func() { fs.cleaning = false }()
	fs.stats.CleanerPasses++
	// Emptied segments sit in SegFreeing until the next checkpoint, so
	// progress is measured in reclaimable (free + freeing) segments.
	for fs.sm.reclaimable() < targetFree {
		victims := fs.pickVictims(targetFree-fs.sm.reclaimable(), &cs)
		if len(victims) == 0 {
			break
		}
		before := fs.sm.reclaimable()
		if !fs.cleanVictims(victims, &cs) {
			break
		}
		if fs.sm.reclaimable() <= before {
			// Gross progress (victims freed) but no net gain: the pass
			// consumed as many segments for copies and inode rewrites
			// as it reclaimed. An unreachable target would otherwise
			// thrash forever on the cleaner's own churn.
			break
		}
	}
	fs.stats.CleanerCopied += uint64(cs.BlocksCopied)
	return cs
}

// pickVictims selects up to k full segments with the best cost-benefit
// scores: (1−u)·age / (1+u), ties broken by segment id so the choice
// is deterministic. Pinned segments are counted and skipped.
func (fs *FS) pickVictims(k int, cs *CleanStats) []*segment {
	type cand struct {
		seg   *segment
		score float64
	}
	now := fs.now()
	var cands []cand
	for _, s := range fs.sm.segs {
		if s.journal {
			// The segment holds part of the current epoch's roll-forward
			// chain: recycling it would sever the replay a crash-mount
			// depends on. Like SegFreeing, it waits for the next
			// checkpoint (which clears the flag).
			continue
		}
		switch s.state {
		case SegPinned:
			// A heat-oblivious FS would try to clean these and get
			// nothing back; we count how often the policy saves us.
			if s.live > 0 || s.heatedBlocks < fs.p.SegmentBlocks {
				cs.PinnedSkipped++
				fs.stats.CleanerSkipped++
			}
			continue
		case SegFull:
			u := s.utilisation(fs.p.SegmentBlocks)
			if u >= 1 {
				continue
			}
			age := float64(now-s.modTime) + 1
			cands = append(cands, cand{seg: s, score: (1 - u) * age / (1 + u)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].seg.id < cands[j].seg.id
	})
	if k < 1 {
		k = 1
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]*segment, len(cands))
	for i, c := range cands {
		out[i] = c.seg
	}
	return out
}

// cleanVictims runs the plan/copy/commit pipeline over one set of
// victims. It reports whether the pass freed at least one segment;
// false stops the cleaning loop.
func (fs *FS) cleanVictims(victims []*segment, cs *CleanStats) bool {
	// The copy phase writes device-direct into reserved slots, so
	// every buffered append must be on the medium first.
	if fs.flushActiveLocked() != nil {
		return false
	}

	// Phase 1: plan. Destinations are reserved in log order; inode
	// blocks are relocated by rewriting (phase 3), not copying.
	groups := make([][]device.BlockMove, len(victims))
	rewrite := make(map[Ino]bool)
plan:
	for vi, v := range victims {
		end := v.start + uint64(fs.p.SegmentBlocks)
		for pba := v.start; pba < end; pba++ {
			if !fs.sm.isLive(pba) {
				continue
			}
			ref, ok := fs.owners[pba]
			if !ok {
				// A live block with no owner is a bookkeeping bug.
				panic("lfs: live block without owner")
			}
			rewrite[ref.ino] = true
			if ref.idx == -1 {
				continue
			}
			in, err := fs.inode(ref.ino)
			if err != nil {
				break plan
			}
			dst, err := fs.reserveSlot(in.Affinity)
			if err != nil {
				// Out of log space: clean what was planned so far; the
				// blocks left behind keep their victims full.
				break plan
			}
			groups[vi] = append(groups[vi], device.BlockMove{Src: pba, Dst: dst})
		}
	}

	// Phase 2: copy, fanned out over the configured worker count. The
	// device advances its clock by the slowest worker.
	workers := fs.p.Concurrency
	if workers < 1 {
		workers = 1
	}
	cs.Workers = workers
	results := fs.dev.MoveGroups(groups, workers)

	// Phase 3: commit. Retarget moved blocks, account abandoned
	// reservations as dead space, rewrite each touched inode once,
	// then free the victims that emptied.
	for vi := range victims {
		res := results[vi]
		for i, mv := range groups[vi] {
			if i >= res.Completed {
				// Never copied: the reserved slot holds nothing
				// usable and stays unreclaimable until its segment is
				// cleaned.
				if s := fs.sm.segOf(mv.Dst); s != nil {
					s.dead++
				}
				continue
			}
			ref := fs.owners[mv.Src]
			in, err := fs.inode(ref.ino)
			if err != nil {
				continue // src stays live; its victim stays full
			}
			fs.sm.markDead(mv.Src)
			delete(fs.owners, mv.Src)
			in.Blocks[ref.idx] = mv.Dst
			fs.sm.markLive(mv.Dst, fs.now())
			fs.owners[mv.Dst] = blockRef{ino: ref.ino, idx: ref.idx}
			fs.jBlocks = append(fs.jBlocks, blockPtr{ino: ref.ino, idx: int32(ref.idx), pba: mv.Dst})
			cs.BlocksCopied++
		}
	}
	inos := make([]Ino, 0, len(rewrite))
	for ino := range rewrite {
		inos = append(inos, ino)
	}
	sortInos(inos)
	for _, ino := range inos {
		in, err := fs.inode(ino)
		if err != nil {
			continue
		}
		if err := fs.writeInode(in); err != nil {
			// Without the rewrite on the log, a later checkpoint would
			// still reference the stale inode; freeing its victims now
			// would let new writes overwrite blocks that stale inode
			// points at. Leave every victim full and stop the pass.
			return false
		}
		cs.BlocksCopied++
	}
	progress := false
	for _, v := range victims {
		if v.state == SegFull && v.live == 0 {
			// Emptied, but gated until the next checkpoint stops
			// referencing the old contents (see SegFreeing).
			v.state = SegFreeing
			v.next = 0
			v.dead = 0
			v.pending = nil
			cs.SegmentsCleaned++
			progress = true
		}
	}
	// Errors along the way (failed plan reservations, refused copies)
	// leave their victims partly live and thus unfreed; the loop keeps
	// cleaning only while passes still free segments.
	return progress
}

// reserveSlot assigns the next log position of the affinity's active
// segment without writing anything: the cleaner's copy phase fills
// reserved slots device-direct, bypassing the group-commit buffer.
// Caller must have flushed the active buffers first, so the pending
// run stays the contiguous tail of the segment.
func (fs *FS) reserveSlot(affinity uint8) (uint64, error) {
	if !fs.p.HeatAware {
		affinity = 0
	}
	seg := fs.active[affinity]
	if seg == nil || seg.next >= fs.p.SegmentBlocks {
		if seg != nil {
			if err := fs.sealSegment(seg); err != nil {
				return 0, err
			}
		}
		seg = fs.sm.allocSegment(affinity)
		if seg == nil {
			return 0, ErrFull
		}
		fs.active[affinity] = seg
	}
	pba := seg.start + uint64(seg.next)
	seg.next++
	seg.modTime = fs.now()
	return pba, nil
}

// Bimodality measures how bimodal the segment population is: for each
// non-free segment the heated share of its *used* space
// (heated / (heated + live)) is computed, and the metric is the
// fraction of segments that are almost entirely heated (>90 %) or
// almost entirely unheated (<10 %). The §4.1 clustering policy drives
// this toward 1 — "we have only mostly heated segments and mostly
// unheated segments" — while heat-oblivious placement leaves mixed
// segments in the middle.
func (fs *FS) Bimodality() float64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	total, modal := 0, 0
	for _, s := range fs.sm.segs {
		if s.state == SegFree {
			continue
		}
		// Dead blocks in a pinned segment count as occupancy: they can
		// never be reclaimed, so a "mostly heated" segment polluted by
		// dead WMRM blocks is not modal.
		used := s.heatedBlocks + s.live + s.dead
		if used == 0 {
			continue
		}
		total++
		f := float64(s.heatedBlocks) / float64(used)
		if f < 0.1 || f > 0.9 {
			modal++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(modal) / float64(total)
}
