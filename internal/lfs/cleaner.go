package lfs

import (
	"sort"
)

// The segment cleaner, following the cost-benefit policy of Rosenblum
// and Ousterhout [42], with the SERO refinement of §4.1: pinned
// segments (those containing heated lines) are never selected —
// "the garbage collector skips over heated segments, avoiding reading
// and writing them repeatedly, thus saving on disk bandwidth".

// CleanStats summarises one cleaning pass.
type CleanStats struct {
	// SegmentsCleaned counts segments returned to the free pool.
	SegmentsCleaned int
	// BlocksCopied counts live blocks rewritten (the GC bandwidth
	// cost).
	BlocksCopied int
	// PinnedSkipped counts pinned segments that were candidates by
	// utilisation but were skipped.
	PinnedSkipped int
}

// Clean runs the cleaner until at least targetFree segments are free
// or no further progress is possible.
func (fs *FS) Clean(targetFree int) CleanStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cleanLocked(targetFree)
}

func (fs *FS) cleanLocked(targetFree int) CleanStats {
	var cs CleanStats
	if fs.cleaning {
		return cs // re-entrant trigger from the cleaner's own appends
	}
	fs.cleaning = true
	defer func() { fs.cleaning = false }()
	fs.stats.CleanerPasses++
	for fs.sm.freeSegments() < targetFree {
		victim := fs.pickVictim(&cs)
		if victim == nil {
			break
		}
		if !fs.cleanSegment(victim, &cs) {
			break
		}
	}
	fs.stats.CleanerCopied += uint64(cs.BlocksCopied)
	return cs
}

// pickVictim selects the full segment with the best cost-benefit
// score: (1−u)·age / (1+u). Pinned segments are counted and skipped.
func (fs *FS) pickVictim(cs *CleanStats) *segment {
	type cand struct {
		seg   *segment
		score float64
	}
	now := fs.now()
	var cands []cand
	for _, s := range fs.sm.segs {
		switch s.state {
		case SegPinned:
			// A heat-oblivious FS would try to clean these and get
			// nothing back; we count how often the policy saves us.
			if s.live > 0 || s.heatedBlocks < fs.p.SegmentBlocks {
				cs.PinnedSkipped++
				fs.stats.CleanerSkipped++
			}
			continue
		case SegFull:
			u := s.utilisation(fs.p.SegmentBlocks)
			if u >= 1 {
				continue
			}
			age := float64(now-s.modTime) + 1
			cands = append(cands, cand{seg: s, score: (1 - u) * age / (1 + u)})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	return cands[0].seg
}

// cleanSegment copies the live blocks out of seg and frees it. Returns
// false when copying failed (e.g. no space), leaving the segment full.
func (fs *FS) cleanSegment(seg *segment, cs *CleanStats) bool {
	end := seg.start + uint64(fs.p.SegmentBlocks)
	for pba := seg.start; pba < end; pba++ {
		if !fs.sm.isLive(pba) {
			continue
		}
		ref, ok := fs.owners[pba]
		if !ok {
			// A live block with no owner is a bookkeeping bug.
			panic("lfs: live block without owner")
		}
		if !fs.copyLive(pba, ref) {
			return false
		}
		cs.BlocksCopied++
	}
	seg.state = SegFree
	seg.next = 0
	seg.live = 0
	seg.dead = 0
	cs.SegmentsCleaned++
	return true
}

// copyLive relocates one live block to the log tail.
func (fs *FS) copyLive(pba uint64, ref blockRef) bool {
	in, err := fs.inode(ref.ino)
	if err != nil {
		return false
	}
	if ref.idx == -1 {
		// Inode block: rewrite the inode elsewhere.
		fs.sm.markDead(pba)
		delete(fs.owners, pba)
		return fs.writeInode(in) == nil
	}
	data, err := fs.dev.MRS(pba)
	if err != nil {
		return false
	}
	newPBA, err := fs.appendBlockAvoiding(data, in.Affinity, fs.sm.segOf(pba))
	if err != nil {
		return false
	}
	fs.sm.markDead(pba)
	delete(fs.owners, pba)
	in.Blocks[ref.idx] = newPBA
	fs.sm.markLive(newPBA, fs.now())
	fs.owners[newPBA] = blockRef{ino: ref.ino, idx: ref.idx}
	// The inode now points elsewhere and must be rewritten too;
	// writeInode retires the old inode block itself.
	return fs.writeInode(in) == nil
}

// appendBlockAvoiding appends like appendBlock but never into the
// segment being cleaned.
func (fs *FS) appendBlockAvoiding(data []byte, affinity uint8, avoid *segment) (uint64, error) {
	seg := fs.active[affinity]
	if seg == avoid {
		seg = nil
	}
	if seg == nil || seg.next >= fs.p.SegmentBlocks {
		if seg != nil {
			retireSegment(seg)
		}
		seg = fs.sm.allocSegment(affinity)
		if seg == nil {
			return 0, ErrFull
		}
		fs.active[affinity] = seg
	}
	pba := seg.start + uint64(seg.next)
	seg.next++
	if err := fs.dev.MWS(pba, data); err != nil {
		return 0, err
	}
	seg.modTime = fs.now()
	fs.stats.BlocksAppended++
	return pba, nil
}

// Bimodality measures how bimodal the segment population is: for each
// non-free segment the heated share of its *used* space
// (heated / (heated + live)) is computed, and the metric is the
// fraction of segments that are almost entirely heated (>90 %) or
// almost entirely unheated (<10 %). The §4.1 clustering policy drives
// this toward 1 — "we have only mostly heated segments and mostly
// unheated segments" — while heat-oblivious placement leaves mixed
// segments in the middle.
func (fs *FS) Bimodality() float64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	total, modal := 0, 0
	for _, s := range fs.sm.segs {
		if s.state == SegFree {
			continue
		}
		// Dead blocks in a pinned segment count as occupancy: they can
		// never be reclaimed, so a "mostly heated" segment polluted by
		// dead WMRM blocks is not modal.
		used := s.heatedBlocks + s.live + s.dead
		if used == 0 {
			continue
		}
		total++
		f := float64(s.heatedBlocks) / float64(used)
		if f < 0.1 || f > 0.9 {
			modal++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(modal) / float64(total)
}
