package lfs

import (
	"sort"

	"sero/internal/device"
)

// The segment cleaner, following the cost-benefit policy of Rosenblum
// and Ousterhout [42], with the SERO refinement of §4.1: pinned
// segments (those containing heated lines) are never selected —
// "the garbage collector skips over heated segments, avoiding reading
// and writing them repeatedly, thus saving on disk bandwidth".
//
// A cleaning pass is a three-phase pipeline, and each phase has its
// own lock scope:
//
//  1. plan (fs.mu exclusive, brief): pick the K best victims by
//     cost-benefit score, clean-pin them, flush the active buffers,
//     and reserve a destination slot in the log for every live data
//     block, in log order — so the post-clean layout is a function of
//     the workload alone, never of the worker count;
//  2. copy (fs.mu RELEASED): relocate each victim's blocks on the
//     device's fanned-out move engine, one worker plane per victim
//     group, with contiguous destinations committed as single batched
//     writes; the device clock advances by the *slowest worker's*
//     elapsed virtual time, the same contract as a fanned-out Audit.
//     Foreground appends, reads and syncs proceed concurrently; a
//     foreground write that invalidates a block being moved only
//     flips liveness bookkeeping, which the commit phase detects;
//  3. commit (fs.mu exclusive, brief): re-validate every completed
//     move against the current owner map — moves whose source block
//     was overwritten, deleted or heat-relocated mid-copy are dropped
//     (their destination slot becomes dead space), the rest retarget
//     the owning inodes; each affected inode is rewritten once (not
//     once per copied block), emptied victims enter SegFreeing, and
//     the clean-pins come off.
//
// The monolithic variant (cleanLocked) runs all three phases while
// holding fs.mu — it is the inline fallback on the append path, where
// the lock is already held, and the exclusive-lock baseline the
// benchmarks compare against. Both variants share planVictimsLocked
// and commitVictimsLocked; each is deterministic and worker-count-
// independent, but the two need not produce byte-identical layouts
// for the same inputs — the phased loop re-plans every
// cleanBatchSegments victims (interleaving its inode rewrites and
// re-scoring the remaining candidates between rounds), while the
// monolithic loop takes the whole deficit per round.
//
// Safety of the unlocked copy window rests on three invariants:
//   - source blocks live in SegFull victims, which no foreground path
//     writes to (liveness only ever transitions live→dead there);
//   - destination slots are reserved by bumping the active segment's
//     frontier, so concurrent appends land strictly behind them and
//     group-commit flushes never cover them;
//   - only one pass runs at a time (fs.cleaning, held true across the
//     unlocked window), so no other plan can pick the same victims or
//     reuse the same reservations.

// CleanStats summarises one cleaning pass.
type CleanStats struct {
	// SegmentsCleaned counts segments returned to the free pool.
	SegmentsCleaned int
	// BlocksCopied counts live blocks rewritten (the GC bandwidth
	// cost), including the one-per-inode rewrites of phase 3.
	BlocksCopied int
	// PinnedSkipped counts pinned segments that were candidates by
	// utilisation but were skipped.
	PinnedSkipped int
	// MovesInvalidated counts planned moves dropped at commit because
	// a concurrent foreground write invalidated the source block while
	// the copy phase ran off the lock. Always zero for the monolithic
	// (exclusive-lock) variant.
	MovesInvalidated int
	// Workers is the fan-out width the copy phase ran at.
	Workers int
	// Checkpointed reports that the pass ended with a checkpoint on
	// the medium (making the relocations durable and the emptied
	// segments reusable).
	Checkpointed bool
}

// cleanBatchSegments caps the victims one phased round takes between
// lock windows. A constant (worker-independent) batch keeps the
// incremental pass layout-deterministic for any Concurrency while
// bounding how much cleaning any foreground operation can end up
// waiting behind.
const cleanBatchSegments = 4

// cleanPlan is the output of the plan phase: everything the copy and
// commit phases need, captured under the lock so the copy can run
// without it.
type cleanPlan struct {
	victims []*segment
	// groups holds the planned moves, one group per victim (the unit
	// of copy fan-out); refs records who owned each move's source at
	// plan time, for the commit phase's staleness check.
	groups [][]device.BlockMove
	refs   [][]blockRef
	// rewrite collects the inodes owning live blocks in the victims;
	// commit rewrites each at most once.
	rewrite map[Ino]bool
	workers int
}

// Clean runs the cleaner until at least targetFree segments are
// reclaimable or no further progress is possible, then checkpoints:
// the relocations become durable and the emptied segments (SegFreeing)
// become reusable only once the medium holds a checkpoint that no
// longer references their old contents.
//
// Clean is the phased, incremental form: fs.mu is held only for the
// plan and commit windows of each pass, so foreground I/O proceeds
// while live blocks are copied. Called with no concurrent activity it
// is fully deterministic, and its layout is a function of the
// workload alone — identical for any Concurrency — though, being
// batched per round, not necessarily byte-identical to what the
// monolithic inline pass would produce for the same inputs. If
// another pass is already in flight, Clean returns zero stats
// immediately.
func (fs *FS) Clean(targetFree int) CleanStats {
	cs := fs.cleanPhased(targetFree)
	if cs.SegmentsCleaned > 0 {
		fs.mu.Lock()
		// A failure leaves the freed segments gated (SegFreeing) —
		// the safe direction; the next successful Sync releases them.
		cs.Checkpointed = fs.syncMetaLocked() == nil
		fs.mu.Unlock()
	}
	return cs
}

// CleanStep runs at most ONE phased cleaning round — plan under the
// lock, copy off it on worker planes, commit under it — toward
// targetFree reclaimable segments, and returns without checkpointing.
// It is the cooperative form of Clean for latency-critical embedders:
// instead of arming the watermark cleaner (and eating whole-pass
// stalls at times the scheduler picks), the embedder calls CleanStep
// from its own idle moments and stops the moment foreground work
// arrives — each round holds fs.mu only for its short plan and commit
// windows and copies at most cleanBatchSegments victims.
//
// The round's stats and whether it made net progress are returned:
// more=false means the pool already meets targetFree, another
// cleaning pass is in flight, or no further net progress is possible
// — the natural loop is `for { if _, more := fs.CleanStep(n); !more
// { break } }`. Segments a round empties stay gated (SegFreeing) and
// do not become reusable until the next Sync or Checkpoint puts a
// covering point on the medium; embedders that want the space
// released promptly should Sync after stepping.
func (fs *FS) CleanStep(targetFree int) (cs CleanStats, more bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cleaning || fs.sm.reclaimable() >= targetFree {
		return cs, false
	}
	fs.stats.CleanerPasses++
	return cs, fs.cleanRoundLocked(targetFree, &cs)
}

// cleanPhased is the incremental cleaning loop shared by Clean and the
// background cleaner: plan under the lock, copy off it, commit under
// it, repeat while passes still make net progress toward targetFree
// reclaimable segments.
func (fs *FS) cleanPhased(targetFree int) CleanStats {
	var cs CleanStats
	counted := false
	for {
		fs.mu.Lock()
		if fs.cleaning || fs.sm.reclaimable() >= targetFree {
			fs.mu.Unlock()
			break
		}
		if !counted {
			fs.stats.CleanerPasses++
			counted = true
		}
		progress := fs.cleanRoundLocked(targetFree, &cs)
		fs.mu.Unlock()
		if !progress {
			break
		}
	}
	return cs
}

// cleanRoundLocked runs one plan/copy/commit round and reports whether
// it made net progress (a false return also covers "nothing plannable"
// and commit failures — the caller should stop rather than thrash).
// The caller holds fs.mu with fs.cleaning clear and reclaimable() <
// targetFree; the round releases fs.mu for its copy phase and returns
// with it re-held and fs.cleaning clear again.
func (fs *FS) cleanRoundLocked(targetFree int, cs *CleanStats) bool {
	fs.setCleaningLocked(true)
	tr := fs.dev.Tracer()
	tPlan := fs.now()
	before := fs.sm.reclaimable()
	// Incremental batching: a phased round takes at most
	// cleanBatchSegments victims, then re-locks, commits and
	// re-plans. Small rounds keep both the plan/commit lock windows
	// and each copy drain short — a foreground operation never
	// waits behind more than one round's worth of cleaning — at the
	// price of re-scoring victims between rounds. The batch size is
	// a constant, NOT a function of the worker count: victim
	// re-scoring between rounds depends on how the pass was
	// batched, so a worker-dependent batch would break the
	// layout-independence contract.
	k := targetFree - before
	if k > cleanBatchSegments {
		k = cleanBatchSegments
	}
	victims := fs.pickVictims(k, cs)
	var plan *cleanPlan
	if len(victims) > 0 {
		plan = fs.planVictimsLocked(victims, cs)
	}
	if plan == nil {
		fs.setCleaningLocked(false)
		return false
	}
	fs.emitSpan(tr, "clean-plan", tPlan, int64(len(plan.groups)), 0)
	fs.mu.Unlock()

	// Copy phase: fs.mu is released; foreground appends, reads and
	// syncs interleave with the fanned-out relocation.
	tCopy := fs.now()
	results := fs.dev.MoveGroups(plan.groups, plan.workers)
	fs.emitSpan(tr, "clean-copy", tCopy, int64(len(plan.groups)), int64(plan.workers))

	fs.mu.Lock()
	tCommit := fs.now()
	prevCopied := cs.BlocksCopied
	prevStale := cs.MovesInvalidated
	ok := fs.commitVictimsLocked(plan, results, cs)
	fs.stats.CleanerCopied += uint64(cs.BlocksCopied - prevCopied)
	fs.emitSpan(tr, "clean-commit", tCommit,
		int64(cs.BlocksCopied-prevCopied), int64(cs.MovesInvalidated-prevStale))
	// Gross progress without net gain — the round consumed as many
	// segments for copies and inode rewrites as it reclaimed — or a
	// commit failure stops the caller rather than letting it thrash.
	progress := ok && fs.sm.reclaimable() > before
	fs.setCleaningLocked(false)
	return progress
}

// cleanLocked is the monolithic cleaning loop: all three phases run
// while the caller holds fs.mu exclusively. It is the inline fallback
// for paths that discover they are out of space while already holding
// the lock (appendBlock, line allocation, sync space accounting) — and
// the exclusive-lock baseline that BenchmarkAppendDuringCleanForeground
// measures.
func (fs *FS) cleanLocked(targetFree int) CleanStats {
	var cs CleanStats
	if fs.cleaning {
		return cs // re-entrant trigger from the cleaner's own appends
	}
	fs.setCleaningLocked(true)
	defer fs.setCleaningLocked(false)
	fs.stats.CleanerPasses++
	tr := fs.dev.Tracer()
	t0 := fs.now()
	defer func() { fs.emitSpan(tr, "clean-inline", t0, int64(cs.BlocksCopied), 0) }()
	// Emptied segments sit in SegFreeing until the next checkpoint, so
	// progress is measured in reclaimable (free + freeing) segments.
	for fs.sm.reclaimable() < targetFree {
		victims := fs.pickVictims(targetFree-fs.sm.reclaimable(), &cs)
		if len(victims) == 0 {
			break
		}
		before := fs.sm.reclaimable()
		if !fs.cleanVictims(victims, &cs) {
			break
		}
		if fs.sm.reclaimable() <= before {
			// Gross progress (victims freed) but no net gain: the pass
			// consumed as many segments for copies and inode rewrites
			// as it reclaimed. An unreachable target would otherwise
			// thrash forever on the cleaner's own churn.
			break
		}
	}
	fs.stats.CleanerCopied += uint64(cs.BlocksCopied)
	return cs
}

// pickVictims selects up to k full segments with the best cost-benefit
// scores: (1−u)·age / (1+u), ties broken by segment id so the choice
// is deterministic. Pinned segments are counted and skipped. Right
// after a mount every segment carries the same single liveness stamp
// (replay.go), so ages are uniform and the ranking reduces to
// utilisation with id tie-breaks — which is why victim choice is
// identical whether the mount rode the liveness table or the full
// walk, and for any walk fan-out width.
func (fs *FS) pickVictims(k int, cs *CleanStats) []*segment {
	type cand struct {
		seg   *segment
		score float64
	}
	now := fs.now()
	var cands []cand
	for _, s := range fs.sm.segs {
		if s.journal {
			// The segment holds part of the current epoch's roll-forward
			// chain: recycling it would sever the replay a crash-mount
			// depends on. Like SegFreeing, it waits for the next
			// checkpoint (which clears the flag).
			continue
		}
		if s.cleanPin {
			// Already owned by an in-flight pass. Unreachable while
			// fs.cleaning serialises passes, but the pin is the local
			// invariant victim selection must respect.
			continue
		}
		switch s.state {
		case SegPinned:
			// A heat-oblivious FS would try to clean these and get
			// nothing back; we count how often the policy saves us.
			if s.live > 0 || s.heatedBlocks < fs.p.SegmentBlocks {
				cs.PinnedSkipped++
				fs.stats.CleanerSkipped++
			}
			continue
		case SegFull:
			u := s.utilisation(fs.p.SegmentBlocks)
			if u >= 1 {
				continue
			}
			age := float64(now-s.modTime) + 1
			cands = append(cands, cand{seg: s, score: (1 - u) * age / (1 + u)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].seg.id < cands[j].seg.id
	})
	if k < 1 {
		k = 1
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]*segment, len(cands))
	for i, c := range cands {
		out[i] = c.seg
	}
	return out
}

// cleanVictims runs the plan/copy/commit pipeline over one set of
// victims without releasing fs.mu. It reports whether the pass freed
// at least one segment; false stops the cleaning loop.
func (fs *FS) cleanVictims(victims []*segment, cs *CleanStats) bool {
	plan := fs.planVictimsLocked(victims, cs)
	if plan == nil {
		return false
	}
	results := fs.dev.MoveGroups(plan.groups, plan.workers)
	return fs.commitVictimsLocked(plan, results, cs)
}

// planVictimsLocked is phase 1: flush the active buffers (the copy
// phase writes device-direct into reserved slots, so every buffered
// append must be on the medium first), clean-pin the victims, and
// reserve destinations in log order. Inode blocks are relocated by
// rewriting (phase 3), not copying. Caller holds fs.mu exclusively; a
// nil return means the pass cannot proceed (no pins are left behind).
func (fs *FS) planVictimsLocked(victims []*segment, cs *CleanStats) *cleanPlan {
	if fs.flushActiveLocked() != nil {
		return nil
	}
	plan := &cleanPlan{
		victims: victims,
		groups:  make([][]device.BlockMove, len(victims)),
		refs:    make([][]blockRef, len(victims)),
		rewrite: make(map[Ino]bool),
		workers: fs.p.Concurrency,
	}
	if plan.workers < 1 {
		plan.workers = 1
	}
	for _, v := range victims {
		v.cleanPin = true
	}
plan:
	for vi, v := range victims {
		end := v.start + uint64(fs.p.SegmentBlocks)
		for pba := v.start; pba < end; pba++ {
			if !fs.sm.isLive(pba) {
				continue
			}
			ref, ok := fs.owners[pba]
			if !ok {
				// A live block with no owner is a bookkeeping bug.
				panic("lfs: live block without owner")
			}
			plan.rewrite[ref.ino] = true
			if ref.idx == -1 {
				continue
			}
			in, err := fs.inode(ref.ino)
			if err != nil {
				break plan
			}
			dst, err := fs.reserveSlot(in.Affinity)
			if err != nil {
				// Out of log space: clean what was planned so far; the
				// blocks left behind keep their victims full.
				break plan
			}
			plan.groups[vi] = append(plan.groups[vi], device.BlockMove{Src: pba, Dst: dst})
			plan.refs[vi] = append(plan.refs[vi], ref)
		}
	}
	return plan
}

// commitVictimsLocked is phase 3: re-validate and retarget the moved
// blocks, account abandoned or invalidated destinations as dead space,
// rewrite each touched inode once, then free the victims that emptied
// and unpin the rest. Caller holds fs.mu exclusively. Returns false on
// a commit failure (a failed inode rewrite), which stops the loop.
func (fs *FS) commitVictimsLocked(plan *cleanPlan, results []device.MoveResult, cs *CleanStats) bool {
	cs.Workers = plan.workers
	defer func() {
		for _, v := range plan.victims {
			v.cleanPin = false
		}
	}()
	vict := make(map[*segment]bool, len(plan.victims))
	for _, v := range plan.victims {
		vict[v] = true
	}
	// valid marks inodes that had at least one move survive validation:
	// their in-memory block pointers changed, so they must be rewritten
	// to the log below.
	valid := make(map[Ino]bool)
	for vi := range plan.victims {
		res := results[vi]
		for i, mv := range plan.groups[vi] {
			if i >= res.Completed {
				// Never copied: the reserved slot holds nothing
				// usable and stays unreclaimable until its segment is
				// cleaned.
				if s := fs.sm.segOf(mv.Dst); s != nil {
					s.dead++
				}
				continue
			}
			ref, ok := fs.owners[mv.Src]
			if !ok || ref != plan.refs[vi][i] || !fs.sm.isLive(mv.Src) {
				// The source was overwritten, deleted or heat-relocated
				// while the copy ran off the lock: the foreground write
				// wins, just this move is dropped, and the copied-to
				// slot is dead space until its segment is cleaned.
				if s := fs.sm.segOf(mv.Dst); s != nil {
					s.dead++
				}
				cs.MovesInvalidated++
				fs.stats.CleanerStaleMoves++
				continue
			}
			in, err := fs.inode(ref.ino)
			if err != nil {
				continue // src stays live; its victim stays full
			}
			fs.sm.markDead(mv.Src)
			delete(fs.owners, mv.Src)
			in.Blocks[ref.idx] = mv.Dst
			fs.sm.markLive(mv.Dst, fs.now())
			fs.owners[mv.Dst] = blockRef{ino: ref.ino, idx: ref.idx}
			fs.jBlocks = append(fs.jBlocks, blockPtr{ino: ref.ino, idx: int32(ref.idx), pba: mv.Dst})
			cs.BlocksCopied++
			valid[ref.ino] = true
		}
	}
	inos := make([]Ino, 0, len(plan.rewrite))
	for ino := range plan.rewrite {
		inos = append(inos, ino)
	}
	sortInos(inos)
	for _, ino := range inos {
		if !valid[ino] {
			// No data block of this inode moved. Rewrite it anyway if
			// its inode block still sits in a victim (that is how inode
			// blocks are relocated); skip it if the foreground already
			// moved everything out from under the pass.
			s := fs.sm.segOf(fs.imap[ino])
			if s == nil || !vict[s] {
				continue
			}
		}
		in, err := fs.inode(ino)
		if err != nil {
			continue // deleted mid-copy; its blocks went stale above
		}
		if err := fs.writeInode(in); err != nil {
			// Without the rewrite on the log, a later checkpoint would
			// still reference the stale inode; freeing its victims now
			// would let new writes overwrite blocks that stale inode
			// points at. Leave every victim full and stop the pass.
			return false
		}
		cs.BlocksCopied++
	}
	progress := false
	for _, v := range plan.victims {
		if v.state == SegFull && v.live == 0 {
			// Emptied, but gated until the next covering point stops
			// referencing the old contents (see SegFreeing).
			v.state = SegFreeing
			v.next = 0
			v.dead = 0
			v.pending = nil
			cs.SegmentsCleaned++
			progress = true
		}
	}
	// Errors along the way (failed plan reservations, refused copies,
	// invalidated moves) leave their victims partly live and thus
	// unfreed; the loop keeps cleaning only while passes still free
	// segments.
	return progress
}

// reserveSlot assigns the next log position of the affinity's active
// segment without writing anything: the cleaner's copy phase fills
// reserved slots device-direct, bypassing the group-commit buffer.
// Caller must have flushed the active buffers first, so the pending
// run stays the contiguous tail of the segment — and because the slot
// is carved out by bumping the frontier, appends issued while the copy
// phase runs off the lock land strictly behind every reservation.
func (fs *FS) reserveSlot(affinity uint8) (uint64, error) {
	if !fs.p.HeatAware {
		affinity = 0
	}
	seg := fs.active[affinity]
	if seg == nil || seg.next >= fs.p.SegmentBlocks {
		if seg != nil {
			if err := fs.sealSegment(seg); err != nil {
				return 0, err
			}
		}
		seg = fs.sm.allocSegment(affinity)
		if seg == nil {
			return 0, ErrFull
		}
		fs.active[affinity] = seg
	}
	pba := seg.start + uint64(seg.next)
	seg.next++
	seg.modTime = fs.now()
	return pba, nil
}

// Bimodality measures how bimodal the segment population is: for each
// non-free segment the heated share of its *used* space
// (heated / (heated + live)) is computed, and the metric is the
// fraction of segments that are almost entirely heated (>90 %) or
// almost entirely unheated (<10 %). The §4.1 clustering policy drives
// this toward 1 — "we have only mostly heated segments and mostly
// unheated segments" — while heat-oblivious placement leaves mixed
// segments in the middle.
func (fs *FS) Bimodality() float64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	total, modal := 0, 0
	for _, s := range fs.sm.segs {
		if s.state == SegFree {
			continue
		}
		// Dead blocks in a pinned segment count as occupancy: they can
		// never be reclaimed, so a "mostly heated" segment polluted by
		// dead WMRM blocks is not modal.
		used := s.heatedBlocks + s.live + s.dead
		if used == 0 {
			continue
		}
		total++
		f := float64(s.heatedBlocks) / float64(used)
		if f < 0.1 || f > 0.9 {
			modal++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(modal) / float64(total)
}
