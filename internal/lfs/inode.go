// Package lfs implements a log-structured file system for a SERO
// device, following §4 of the paper: the disk is a collection of
// contiguous segments filled sequentially; writes are clustered; a
// cost-benefit cleaner reclaims dead space. Two SERO-specific policies
// distinguish it from classic LFS [42]:
//
//  1. The cleaner never copies heated lines — "a heated line leaves no
//     reusable space behind", so copying it only wastes free space.
//     Segments containing heated lines are pinned.
//  2. Writes are clustered by *heat affinity* (which data is likely to
//     be heated together), producing the bimodal distribution of
//     mostly-heated and mostly-unheated segments the paper argues for.
package lfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"sero/internal/device"
)

// Ino is an inode number. Ino 0 is reserved (nil); ino 1 is the root
// directory file.
type Ino uint64

// RootIno is the inode number of the root directory file.
const RootIno Ino = 1

// Inode layout constants.
const (
	inodeMagic = "SINO"
	// MaxDirect is the number of direct block pointers an inode holds:
	// the 512-byte inode block minus the 48-byte fixed header, 8 bytes
	// per pointer.
	MaxDirect = (device.DataBytes - 48) / 8
	// MaxFileBlocks is the largest file the FS supports, in blocks.
	MaxFileBlocks = MaxDirect
	// MaxFileBytes is the largest file size in bytes.
	MaxFileBytes = MaxFileBlocks * device.DataBytes
)

// Inode flag bits.
const (
	// FlagHeated marks a file frozen into one or more heated lines.
	FlagHeated byte = 1 << iota
)

// Inode is the on-disk metadata of one file.
type Inode struct {
	// Ino is the file's inode number.
	Ino Ino
	// Size is the durable file size in bytes (what the blocks on the
	// log cover; unflushed writes extend it only in memory).
	Size uint64
	// MTime is the last modification time (virtual).
	MTime time.Duration
	// Flags holds the inode flag bits (FlagHeated).
	Flags byte
	// Affinity is the heat-affinity class used by the segment
	// clustering policy: files expected to be heated together (same
	// snapshot, same retention class) share a class.
	Affinity uint8
	// Blocks holds the PBAs of the file's data blocks, in order.
	Blocks []uint64
	// HeatLines records the heated lines holding this file once
	// frozen (start block of each line, ordered).
	HeatLines []uint64
}

// Heated reports whether the file has been frozen.
func (in *Inode) Heated() bool { return in.Flags&FlagHeated != 0 }

// NBlocks returns the number of data blocks.
func (in *Inode) NBlocks() int { return len(in.Blocks) }

// ErrBadInode reports an unparseable inode block.
var ErrBadInode = errors.New("lfs: malformed inode")

// lineExponent returns the smallest logN with 1<<logN >= n, minimum 1
// (a line is at least two blocks: hash + one payload block).
func lineExponent(n int) uint8 {
	logN := uint8(1)
	for 1<<logN < n {
		logN++
	}
	return logN
}

// Marshal encodes the inode into one 512-byte block. Heated-line
// starts are stored in the pointer area after the data pointers, with
// counts in the header.
func (in *Inode) Marshal() ([]byte, error) {
	if len(in.Blocks)+len(in.HeatLines) > MaxDirect {
		return nil, fmt.Errorf("lfs: inode %d with %d+%d pointers exceeds %d",
			in.Ino, len(in.Blocks), len(in.HeatLines), MaxDirect)
	}
	buf := make([]byte, device.DataBytes)
	copy(buf[0:4], inodeMagic)
	binary.BigEndian.PutUint64(buf[4:12], uint64(in.Ino))
	binary.BigEndian.PutUint64(buf[12:20], in.Size)
	binary.BigEndian.PutUint64(buf[20:28], uint64(in.MTime))
	buf[28] = in.Flags
	buf[29] = in.Affinity
	binary.BigEndian.PutUint32(buf[32:36], uint32(len(in.Blocks)))
	binary.BigEndian.PutUint32(buf[36:40], uint32(len(in.HeatLines)))
	// buf[40:48] reserved
	off := 48
	for _, b := range in.Blocks {
		binary.BigEndian.PutUint64(buf[off:off+8], b)
		off += 8
	}
	for _, h := range in.HeatLines {
		binary.BigEndian.PutUint64(buf[off:off+8], h)
		off += 8
	}
	return buf, nil
}

// UnmarshalInode parses an inode block.
func UnmarshalInode(buf []byte) (*Inode, error) {
	if len(buf) != device.DataBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadInode, len(buf))
	}
	if string(buf[0:4]) != inodeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadInode)
	}
	in := &Inode{
		Ino:      Ino(binary.BigEndian.Uint64(buf[4:12])),
		Size:     binary.BigEndian.Uint64(buf[12:20]),
		MTime:    time.Duration(binary.BigEndian.Uint64(buf[20:28])),
		Flags:    buf[28],
		Affinity: buf[29],
	}
	nb := int(binary.BigEndian.Uint32(buf[32:36]))
	nh := int(binary.BigEndian.Uint32(buf[36:40]))
	if nb+nh > MaxDirect {
		return nil, fmt.Errorf("%w: %d+%d pointers", ErrBadInode, nb, nh)
	}
	off := 48
	for i := 0; i < nb; i++ {
		in.Blocks = append(in.Blocks, binary.BigEndian.Uint64(buf[off:off+8]))
		off += 8
	}
	for i := 0; i < nh; i++ {
		in.HeatLines = append(in.HeatLines, binary.BigEndian.Uint64(buf[off:off+8]))
		off += 8
	}
	return in, nil
}
