package lfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sero/internal/device"
)

// Tests for background incremental cleaning: the phased pass that
// releases fs.mu for its copy window, the clean-pin staleness
// protocol, the watermark goroutine, and the crash behaviour of a
// pass interrupted at arbitrary points.

// waitUntil polls cond (1ms period) until it holds or the deadline
// passes, reporting the final state.
func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// buildChurnFS builds an FS whose free pool sits near the cleaning
// thresholds with dead blocks spread across many segments — churn the
// watermark goroutine can feed on.
func buildChurnFS(tb testing.TB, wm int) (*FS, []Ino) {
	tb.Helper()
	p := Params{
		SegmentBlocks:    32,
		CheckpointBlocks: 32,
		WritebackBlocks:  32,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      4,
		CleanWatermark:   wm,
	}
	fs := testFS(tb, 2048, p) // 63 log segments
	inos := make([]Ino, 48)
	var err error
	for i := range inos {
		if inos[i], err = fs.Create(fmt.Sprintf("c%02d", i), 0); err != nil {
			tb.Fatal(err)
		}
		if err = fs.WriteFile(inos[i], payload(byte(i), 16*device.DataBytes)); err != nil {
			tb.Fatal(err)
		}
	}
	if err = fs.Sync(); err != nil {
		tb.Fatal(err)
	}
	for i, ino := range inos {
		if err = fs.WriteFile(ino, payload(byte(64+i), 16*device.DataBytes)); err != nil {
			tb.Fatal(err)
		}
		if i%8 == 7 {
			if err = fs.Sync(); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err = fs.Sync(); err != nil {
		tb.Fatal(err)
	}
	return fs, inos
}

// cleaningInFlight reports whether a cleaning pass currently owns the
// cleaner (test-side observability for the handshakes below).
func (fs *FS) cleaningInFlight() bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.cleaning
}

// appendStream appends fresh synced blocks with client think-time and
// returns the sum of per-operation virtual clock deltas plus the worst
// single operation. Latency is the sum of deltas, not end minus start:
// virtual time a concurrent pass charges during think-time is cleaning
// the foreground never waited for, while anything landing inside an
// operation's window — lock waits behind plan/commit (or behind a
// whole exclusive pass), copy drains — is attributed to it.
func appendStream(tb testing.TB, fs *FS, ino Ino, rounds int) (total, worst time.Duration) {
	tb.Helper()
	const blocksPerRound = 2
	const thinkTime = 6 * time.Millisecond
	clk := fs.Device().Clock()
	for r := 0; r < rounds; r++ {
		t0 := clk.Now()
		data := payload(byte(128+r), blocksPerRound*device.DataBytes)
		if err := fs.Write(ino, uint64(r*blocksPerRound)*device.DataBytes, data); err != nil {
			tb.Fatalf("round %d write: %v (free=%d)", r, err, fs.FreeSegments())
		}
		if err := fs.Sync(); err != nil {
			tb.Fatalf("round %d sync: %v (free=%d)", r, err, fs.FreeSegments())
		}
		d := clk.Now() - t0
		total += d
		if d > worst {
			worst = d
		}
		time.Sleep(thinkTime)
	}
	return total, worst
}

// TestBackgroundCleanerMaintainsWatermark drives a churn workload with
// the watermark policy on and checks that the background goroutine
// actually ran and that, once the dust settles, the free pool is back
// above the watermark without any explicit Clean call.
func TestBackgroundCleanerMaintainsWatermark(t *testing.T) {
	const wm = 6
	fs, inos := buildChurnFS(t, wm)
	defer fs.Close()
	// Keep churning until the background cleaner has demonstrably run;
	// every allocation at or below the watermark kicks it.
	churn := 0
	ok := waitUntil(10*time.Second, func() bool {
		for r := 0; r < 4; r++ {
			ino := inos[churn%len(inos)]
			churn++
			if err := fs.WriteFile(ino, payload(byte(200+churn), 16*device.DataBytes)); err != nil {
				t.Fatalf("churn write: %v", err)
			}
			if err := fs.Sync(); err != nil {
				t.Fatalf("churn sync: %v", err)
			}
		}
		return fs.Stats().CleanerBgRuns > 0
	})
	if !ok {
		t.Fatalf("background cleaner never ran: %+v (free=%d)", fs.Stats(), fs.FreeSegments())
	}
	// Sync converts what the cleaner gated; the pool must recover to
	// the watermark without explicit Clean.
	ok = waitUntil(10*time.Second, func() bool {
		if err := fs.Sync(); err != nil {
			t.Fatalf("settle sync: %v", err)
		}
		return fs.FreeSegments() >= wm
	})
	if !ok {
		t.Fatalf("free pool never recovered to %d: free=%d stats=%+v",
			wm, fs.FreeSegments(), fs.Stats())
	}
	for i, ino := range inos[:4] {
		if _, err := fs.ReadFile(ino); err != nil {
			t.Fatalf("file %d unreadable after background cleaning: %v", i, err)
		}
	}
}

// TestCommitDropsStaleMoves is the clean-pin staleness contract,
// driven white-box: plan a pass, invalidate one victim's blocks
// between plan and copy exactly as a concurrent foreground delete
// would, and verify the commit drops just those moves while everything
// else relocates and the FS stays mountable.
func TestCommitDropsStaleMoves(t *testing.T) {
	fs := buildFragmentedFS(t, 2)
	var cs CleanStats
	fs.mu.Lock()
	victims := fs.pickVictims(4, &cs)
	if len(victims) == 0 {
		t.Fatal("no victims in the fragmented population")
	}
	plan := fs.planVictimsLocked(victims, &cs)
	if plan == nil {
		t.Fatal("plan failed")
	}
	var moves int
	var staleIno Ino
	for vi := range plan.refs {
		for _, ref := range plan.refs[vi] {
			moves++
			if staleIno == 0 {
				staleIno = ref.ino
			}
		}
	}
	if moves == 0 || staleIno == 0 {
		t.Fatalf("plan holds no data moves")
	}
	staleName := fs.names[staleIno]
	var staleMoves int
	for vi := range plan.refs {
		for _, ref := range plan.refs[vi] {
			if ref.ino == staleIno {
				staleMoves++
			}
		}
	}
	fs.mu.Unlock()

	// "Mid-copy", a foreground client deletes the file: its blocks go
	// dead while the device-level copy is still running.
	if err := fs.Delete(staleName); err != nil {
		t.Fatal(err)
	}

	results := fs.dev.MoveGroups(plan.groups, plan.workers)
	fs.mu.Lock()
	fs.commitVictimsLocked(plan, results, &cs)
	fs.mu.Unlock()

	if cs.MovesInvalidated != staleMoves {
		t.Fatalf("invalidated %d moves, want %d (the deleted file's)",
			cs.MovesInvalidated, staleMoves)
	}
	if cs.BlocksCopied == 0 {
		t.Fatal("commit dropped everything, not just the stale moves")
	}
	if st := fs.Stats(); st.CleanerStaleMoves != uint64(staleMoves) {
		t.Fatalf("stats count %d stale moves, want %d", st.CleanerStaleMoves, staleMoves)
	}
	// Everything else must have survived the interrupted pass, in
	// memory and across a replayed mount.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("f%02d", i)
		if name == staleName {
			if _, err := fs2.Lookup(name); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted file %s resurrected: %v", name, err)
			}
			continue
		}
		ino, lerr := fs2.Lookup(name)
		if lerr != nil {
			t.Fatalf("%s lost: %v", name, lerr)
		}
		got, rerr := fs2.ReadFile(ino)
		if rerr != nil || !bytes.Equal(got, fragWant(i)) {
			t.Fatalf("%s corrupted by interrupted clean: %v", name, rerr)
		}
	}
}

// TestCloseIdempotent pins Close's contract: stopping twice is fine,
// and the FS keeps working afterwards — only the watermark policy
// retires, not the file system.
func TestCloseIdempotent(t *testing.T) {
	fs, inos := buildChurnFS(t, 4)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(inos[0], payload(7, 8*device.DataBytes)); err != nil {
		t.Fatalf("write after Close: %v", err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync after Close: %v", err)
	}
	if cs := fs.Clean(fs.FreeSegments() + 1); cs.SegmentsCleaned == 0 {
		t.Logf("explicit clean after Close reclaimed nothing (ok if compact): %+v", cs)
	}
	// WriteFile does not truncate: the 16-block file keeps its size,
	// with the first 8 blocks overwritten.
	got, err := fs.ReadFile(inos[0])
	if err != nil || len(got) != 16*device.DataBytes ||
		!bytes.Equal(got[:8*device.DataBytes], payload(7, 8*device.DataBytes)) {
		t.Fatalf("read after Close: %v (%d bytes)", err, len(got))
	}
}

// TestCleanWatermarkValidation pins the option's error behaviour.
func TestCleanWatermarkValidation(t *testing.T) {
	p := smallParams()
	p.CleanWatermark = -1
	dp := device.DefaultParams(1024)
	if _, err := New(device.New(dp), p); err == nil {
		t.Fatal("negative watermark accepted")
	}
	p.CleanWatermark = 1 << 20
	if _, err := New(device.New(dp), p); err == nil {
		t.Fatal("watermark beyond the segment population accepted")
	}
}

// TestConcurrentFSStressBackgroundClean is the 16-goroutine stress
// test with the background cleaner in the mix: appends, overwrites,
// reads, syncs, deletes and explicit cleans run concurrently with
// watermark-driven passes whose copy phase holds no FS lock. Run
// under -race this is the phased cleaner's concurrency contract.
func TestConcurrentFSStressBackgroundClean(t *testing.T) {
	const (
		workers    = 16
		filesPerG  = 3
		roundsPerG = 12
	)
	p := Params{
		SegmentBlocks:    32,
		CheckpointBlocks: 32,
		WritebackBlocks:  32,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      4,
		CleanWatermark:   6,
	}
	fs := testFS(t, 8192, p)
	defer fs.Close()

	type fileState struct {
		name string
		ino  Ino
		want []byte
	}
	finals := make([][]fileState, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3000 + g)))
			files := make([]fileState, filesPerG)
			for i := range files {
				name := fmt.Sprintf("b%02d-f%d", g, i)
				ino, err := fs.Create(name, uint8(g%4))
				if err != nil {
					t.Errorf("g%d create %s: %v", g, name, err)
					return
				}
				files[i] = fileState{name: name, ino: ino}
			}
			for round := 0; round < roundsPerG; round++ {
				f := &files[rng.Intn(filesPerG)]
				switch op := rng.Intn(10); {
				case op < 5: // overwrite: churn the cleaner feeds on
					data := payload(byte(g*16+round), (1+rng.Intn(4))*device.DataBytes)
					if err := fs.WriteFile(f.ino, data); err != nil {
						t.Errorf("g%d write %s: %v", g, f.name, err)
						return
					}
					if len(data) > len(f.want) {
						f.want = append([]byte(nil), data...)
					} else {
						copy(f.want, data)
					}
				case op < 8: // read back
					got, err := fs.ReadFile(f.ino)
					if err != nil {
						t.Errorf("g%d read %s: %v", g, f.name, err)
						return
					}
					if !bytes.Equal(got, f.want) {
						t.Errorf("g%d read %s: torn content (%d vs %d bytes)",
							g, f.name, len(got), len(f.want))
						return
					}
				case op < 9: // sync, occasionally racing an explicit clean
					if err := fs.Sync(); err != nil {
						t.Errorf("g%d sync: %v", g, err)
						return
					}
					if rng.Intn(3) == 0 {
						fs.Clean(fs.FreeSegments() + 1)
					}
				default: // delete and recreate, invalidating mid-copy moves
					if err := fs.Delete(f.name); err != nil {
						t.Errorf("g%d delete %s: %v", g, f.name, err)
						return
					}
					ino, err := fs.Create(f.name, uint8(g%4))
					if err != nil {
						t.Errorf("g%d recreate %s: %v", g, f.name, err)
						return
					}
					f.ino, f.want = ino, nil
				}
			}
			finals[g] = files
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for g, files := range finals {
		for _, f := range files {
			got, err := fs.ReadFile(f.ino)
			if err != nil {
				t.Fatalf("g%d final read %s: %v", g, f.name, err)
			}
			if !bytes.Equal(got, f.want) {
				t.Fatalf("g%d final read %s: content lost", g, f.name)
			}
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// The whole history must also replay cleanly.
	fs2, err := Mount(fs.Device(), fs.Params())
	if err != nil {
		t.Fatal(err)
	}
	for g, files := range finals {
		for _, f := range files {
			ino, lerr := fs2.Lookup(f.name)
			if lerr != nil {
				t.Fatalf("g%d file %s lost in replay: %v", g, f.name, lerr)
			}
			got, rerr := fs2.ReadFile(ino)
			if rerr != nil || !bytes.Equal(got, f.want) {
				t.Fatalf("g%d file %s content lost in replay: %v", g, f.name, rerr)
			}
		}
	}
}

// TestCrashMidBackgroundClean is the recycled-block property for the
// background cleaner: a workload churns with watermark cleaning on
// while the crash recorder taps every committed block write; crashing
// at boundaries sampled across the whole recording — including points
// in the middle of a background pass's copy or commit — must always
// mount to an acked state. A violation here would mean a background pass let fresh data
// overwrite blocks a crash-mount still resolves through.
func TestCrashMidBackgroundClean(t *testing.T) {
	const devBlocks = 1024
	p := Params{
		SegmentBlocks:    16,
		CheckpointBlocks: 16,
		WritebackBlocks:  8,
		CheckpointEvery:  64,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      2,
		CleanWatermark:   5,
	}
	dev := quietDev(devBlocks)
	rec := recordWrites(dev)
	fs, err := New(dev, p)
	if err != nil {
		t.Fatal(err)
	}

	model := make(map[string][]byte)
	var acks []fsSnapshot
	const files = 6
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("f%d", i)
		if _, cerr := fs.Create(name, uint8(i%2)); cerr != nil {
			t.Fatal(cerr)
		}
		model[name] = nil
	}
	sync := func() {
		if serr := fs.Sync(); serr != nil {
			t.Fatalf("sync: %v (free=%d)", serr, fs.FreeSegments())
		}
		acks = append(acks, snapshotModel(model, rec.count()))
	}
	round := 0
	churn := func() {
		name := fmt.Sprintf("f%d", round%files)
		data := payload(byte(round+1), (4+round%5)*device.DataBytes)
		ino, lerr := fs.Lookup(name)
		if lerr != nil {
			t.Fatal(lerr)
		}
		if werr := fs.WriteFile(ino, data); werr != nil {
			t.Fatalf("round %d write: %v (free=%d)", round, werr, fs.FreeSegments())
		}
		buf := model[name]
		if len(data) > len(buf) {
			buf = append([]byte(nil), data...)
		} else {
			copy(buf, data)
		}
		model[name] = buf
		round++
		sync()
	}
	sync() // anchoring checkpoint
	for round < 40 {
		churn()
	}
	// Make sure crash points actually cover background cleaning; the
	// churn above dips the pool below the watermark, so the kick is
	// guaranteed — wait for the goroutine to have acted on it.
	if !waitUntil(10*time.Second, func() bool {
		if fs.Stats().CleanerBgRuns > 0 {
			return true
		}
		churn()
		return false
	}) {
		t.Fatalf("background cleaner never ran during the crash workload: %+v (free=%d)",
			fs.Stats(), fs.FreeSegments())
	}
	for i := 0; i < 6; i++ {
		churn() // rounds racing the in-flight background pass
	}
	if err := fs.Close(); err != nil { // commits any in-flight pass
		t.Fatal(err)
	}
	dev.SetWriteObserver(nil)

	total := rec.count()
	step := 3
	if testing.Short() {
		step = 11
	}
	if raceDetector {
		step *= 3 // the sweep mounts hundreds of images; keep race CI sane
	}
	for k := 0; k <= total; k += step {
		lastAck := -1
		for i, a := range acks {
			if a.writes <= k {
				lastAck = i
			}
		}
		if lastAck < 0 {
			continue
		}
		crashed := rec.deviceAt(t, devBlocks, k)
		mounted, merr := Mount(crashed, p)
		if merr != nil {
			t.Fatalf("crash at write %d/%d (last ack %d): mount failed: %v",
				k, total, lastAck, merr)
		}
		ok := matchesSnapshot(mounted, acks[lastAck])
		if !ok && lastAck+1 < len(acks) {
			ok = matchesSnapshot(mounted, acks[lastAck+1])
		}
		if !ok {
			t.Fatalf("crash at write %d/%d: mounted state is neither ack %d nor ack %d",
				k, total, lastAck, lastAck+1)
		}
	}
}

// benchmarkAppendDuringClean measures a foreground append stream while
// one large cleaning pass over the fragmented population is in flight.
// In the exclusive baseline the pass holds fs.mu throughout (the
// monolithic cleanLocked), so the first append waits for the entire
// pass — the pre-phased behaviour. In the phased variant the same pass
// runs through Clean, which releases fs.mu for its copy windows, so
// the appends interleave with the relocation and pay at most the brief
// plan/commit windows (plus any copy drain landing inside an append).
func benchmarkAppendDuringClean(b *testing.B, phased bool) {
	const rounds = 8
	for i := 0; i < b.N; i++ {
		fs := buildFragmentedFS(b, 4)
		ino, err := fs.Create("stream", 0)
		if err != nil {
			b.Fatal(err)
		}
		target := fs.FreeSegments() + 16
		done := make(chan CleanStats, 1)
		if phased {
			go func() { done <- fs.Clean(target) }()
			// Handshake: appends start once the pass owns the cleaner —
			// or once it already finished (a fast pass can complete
			// between polls; the stream then just runs unobstructed).
			if !waitUntil(5*time.Second, func() bool {
				if fs.cleaningInFlight() {
					return true
				}
				select {
				case cs := <-done:
					done <- cs // keep it for the post-stream read
					return true
				default:
					return false
				}
			}) {
				b.Fatal("clean pass never started")
			}
		} else {
			started := make(chan struct{})
			go func() {
				fs.mu.Lock()
				close(started) // the pass owns the lock from here on
				cs := fs.cleanLocked(target)
				fs.mu.Unlock()
				done <- cs
			}()
			<-started
		}
		total, worst := appendStream(b, fs, ino, rounds)
		cs := <-done
		if err := fs.Close(); err != nil {
			b.Fatal(err)
		}
		if cs.SegmentsCleaned == 0 || cs.BlocksCopied == 0 {
			b.Fatalf("the in-flight pass did no real work: %+v", cs)
		}
		b.ReportMetric(float64(total.Nanoseconds())/float64(rounds*2)/1e3, "virt-µs/block")
		b.ReportMetric(float64(worst.Nanoseconds())/1e3, "worst-op-virt-µs")
		b.ReportMetric(float64(cs.BlocksCopied), "cleaner-blocks")
	}
}

// BenchmarkAppendDuringCleanForeground is the exclusive-lock baseline:
// the whole pass runs under fs.mu and the append stream waits for it.
func BenchmarkAppendDuringCleanForeground(b *testing.B) { benchmarkAppendDuringClean(b, false) }

// BenchmarkAppendDuringCleanBackground overlaps the same append stream
// with the phased pass, whose copy phase holds no FS lock.
func BenchmarkAppendDuringCleanBackground(b *testing.B) { benchmarkAppendDuringClean(b, true) }
