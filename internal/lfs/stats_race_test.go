package lfs

import (
	"sync"
	"sync/atomic"
	"testing"

	"sero/internal/device"
)

// TestStatsSnapshotMonotonicUnderLoad hammers Stats from 16 concurrent
// readers while a writer churns the FS with the background cleaner
// live. Every snapshot must be internally consistent: each cumulative
// counter is monotone non-decreasing across the snapshots one reader
// observes, and no snapshot exposes a half-updated pair (a counter
// from mid-commit paired with a stale sibling would show up as a
// later snapshot appearing to run backwards). Run under -race this
// also pins that Stats takes the lock rather than tearing reads.
func TestStatsSnapshotMonotonicUnderLoad(t *testing.T) {
	fs, inos := buildChurnFS(t, 6)
	defer fs.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	const readers = 16
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev Stats
			for !stop.Load() {
				s := fs.Stats()
				type pair struct {
					name     string
					old, new uint64
				}
				for _, p := range []pair{
					{"BytesWritten", prev.BytesWritten, s.BytesWritten},
					{"BlocksAppended", prev.BlocksAppended, s.BlocksAppended},
					{"GroupCommits", prev.GroupCommits, s.GroupCommits},
					{"CleanerCopied", prev.CleanerCopied, s.CleanerCopied},
					{"CleanerPasses", prev.CleanerPasses, s.CleanerPasses},
					{"CleanerStaleMoves", prev.CleanerStaleMoves, s.CleanerStaleMoves},
					{"Syncs", prev.Syncs, s.Syncs},
					{"Checkpoints", prev.Checkpoints, s.Checkpoints},
					{"JournalRecords", prev.JournalRecords, s.JournalRecords},
					{"JournalReanchors", prev.JournalReanchors, s.JournalReanchors},
					{"CheckpointFallbacks", prev.CheckpointFallbacks, s.CheckpointFallbacks},
				} {
					if p.new < p.old {
						select {
						case errs <- p.name:
						default:
						}
						return
					}
				}
				// Cross-counter invariants that a torn pair would break:
				// every journaled sync implies a sync, every re-anchor a
				// journal record, every fallback a checkpoint.
				if s.JournalRecords > 0 && s.Syncs == 0 {
					select {
					case errs <- "JournalRecords without Syncs":
					default:
					}
					return
				}
				if s.JournalReanchors > s.JournalRecords {
					select {
					case errs <- "JournalReanchors > JournalRecords":
					default:
					}
					return
				}
				if s.CheckpointFallbacks > s.Checkpoints {
					select {
					case errs <- "CheckpointFallbacks > Checkpoints":
					default:
					}
					return
				}
				prev = s
			}
		}()
	}

	for churn := 0; churn < 200; churn++ {
		ino := inos[churn%len(inos)]
		if err := fs.WriteFile(ino, payload(byte(churn), 16*device.DataBytes)); err != nil {
			t.Fatalf("churn write %d: %v", churn, err)
		}
		if churn%4 == 3 {
			if err := fs.Sync(); err != nil {
				t.Fatalf("churn sync %d: %v", churn, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case name := <-errs:
		t.Fatalf("snapshot inconsistency: %s", name)
	default:
	}
	if fs.Stats().CleanerPasses == 0 {
		t.Log("note: cleaner never ran during the churn (invariants still checked)")
	}
}
