package lfs

// The background cleaner. With Params.CleanWatermark > 0, cleaning is
// a background activity: the first time the append path sees the free
// pool at or below the watermark it arms a cleaner goroutine, and from
// then on every such dip kicks it. The goroutine runs phased passes
// (plan under fs.mu, copy off it, commit under it — see cleaner.go)
// until the reclaimable pool is back above the watermark, so the
// foreground thread that used to pay for a whole pass inline now pays
// at most the brief plan/commit windows.
//
// The background cleaner never checkpoints: segments it empties sit
// gated in SegFreeing until the next covering point a *foreground*
// operation writes (a Sync's summary record, a policy checkpoint, an
// explicit Clean). A checkpoint taken at an arbitrary background
// moment would persist namespace changes the application has not
// acked, weakening the crash contract; riding the existing covering
// points keeps "every mounted state is an acked state" intact. The
// watermark is therefore a target on *reclaimable* segments — the
// cleaner's half of the bargain — while conversion to allocatable
// rides the sync path, exactly as it does for inline cleaning.

// kickCleanerLocked arms (on first use) and wakes the background
// cleaner goroutine. Caller holds fs.mu exclusively. A no-op when the
// watermark policy is off or the FS is closed; the wake itself never
// blocks (the kick channel holds one pending wake, which is all the
// level-triggered loop needs).
func (fs *FS) kickCleanerLocked() {
	if fs.p.CleanWatermark <= 0 || fs.closed {
		return
	}
	if fs.bgKick == nil {
		fs.bgKick = make(chan struct{}, 1)
		fs.bgStop = make(chan struct{})
		fs.bgDone = make(chan struct{})
		go fs.cleanerLoop(fs.bgKick, fs.bgStop, fs.bgDone)
	}
	select {
	case fs.bgKick <- struct{}{}:
	default:
	}
}

// cleanerLoop is the background cleaner goroutine: wait for a kick,
// then run phased cleaning passes until the reclaimable pool is back
// above the watermark or no pass makes progress (nothing cleanable
// right now, or a foreground pass owns the cleaner), then park again.
// The channels are passed in rather than read from fs so Close can
// tear the fields down without racing the loop.
func (fs *FS) cleanerLoop(kick, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-kick:
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.mu.Lock()
			wm := fs.p.CleanWatermark
			before := fs.sm.reclaimable()
			fs.mu.Unlock()
			if before >= wm {
				break
			}
			cs := fs.cleanPhased(wm)
			fs.mu.Lock()
			if cs.SegmentsCleaned > 0 || cs.BlocksCopied > 0 {
				fs.stats.CleanerBgRuns++
			}
			progressed := fs.sm.reclaimable() > before
			fs.mu.Unlock()
			if !progressed {
				// No net gain: nothing cleanable at current utilisation,
				// a foreground pass holds the cleaner, or the pass's own
				// appends ate what it freed. Park rather than spin — the
				// next allocation dip re-kicks us. (Judging progress by
				// gross segments freed would livelock here: near
				// capacity a pass can keep freeing victims while netting
				// zero.)
				break
			}
		}
	}
}

// Close stops the background cleaner and the background auditor,
// waiting for any in-flight pass to commit. It does not sync: call
// Sync (or Checkpoint) first if buffered data must be durable. The FS
// remains usable after Close — foreground operations, explicit Clean
// and AuditStep keep working; only the watermark and audit-cadence
// policies are retired. Close is idempotent and safe to call
// concurrently with foreground operations.
func (fs *FS) Close() error {
	fs.mu.Lock()
	first := !fs.closed
	fs.closed = true
	stop, done := fs.bgStop, fs.bgDone
	astop, adone := fs.aStop, fs.aDone
	fs.mu.Unlock()
	if stop != nil {
		if first {
			close(stop)
		}
		// Every Close waits: a second concurrent Close must not return
		// while the goroutine the first one is stopping still issues
		// device writes.
		<-done
	}
	if astop != nil {
		if first {
			close(astop)
		}
		<-adone
	}
	return nil
}
