package lfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sero/internal/device"
	"sero/internal/medium"
)

// The crash-injection harness. The device exposes the exact stream of
// committed magnetic block writes (device.SetWriteObserver); the
// harness records it while a workload runs and can then rebuild the
// medium as of ANY block boundary — the host dies between two block
// commits, including in the middle of a batched command or of the
// checkpoint region rewrite. The crash-consistency property under
// test:
//
//	for every crash point after an acked Sync, Mount recovers exactly
//	one of the acked states at or after the last fully-durable ack —
//	all acked data present, no torn record surfaced as an error, and
//	never a torn mixture of two states.
//
// Scope: the observer taps magnetic block writes only, so crash
// workloads here exclude HeatFile (a heat is an electrical operation
// whose line registry a rebuilt medium would lack). The heated
// relocation's journaling is covered at replay granularity by
// TestHeatedFileSurvivesReplay instead.

// quietDev builds a deterministic (noiseless) raw device.
func quietDev(blocks int) *device.Device {
	dp := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	dp.Medium = mp
	return device.New(dp)
}

type blockWrite struct {
	pba  uint64
	data []byte
}

// crashRecorder taps a device's committed write stream.
type crashRecorder struct {
	mu     sync.Mutex
	writes []blockWrite
}

func recordWrites(dev device.Dev) *crashRecorder {
	r := &crashRecorder{}
	dev.SetWriteObserver(func(pba uint64, data []byte) {
		cp := append([]byte(nil), data...)
		r.mu.Lock()
		r.writes = append(r.writes, blockWrite{pba: pba, data: cp})
		r.mu.Unlock()
	})
	return r
}

func (r *crashRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.writes)
}

// deviceAt rebuilds a fresh medium holding exactly the first k
// committed block writes — the state an abruptly killed host leaves
// behind.
func (r *crashRecorder) deviceAt(t testing.TB, blocks, k int) *device.Device {
	t.Helper()
	dev := quietDev(blocks)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.writes[:k] {
		if err := dev.WriteBlocks(w.pba, [][]byte{w.data}); err != nil {
			t.Fatalf("replaying write %d to crash image: %v", w.pba, err)
		}
	}
	return dev
}

// fsSnapshot is one acked state: the logical file map as of a
// successful Sync, plus how many block writes were durable at the ack.
type fsSnapshot struct {
	writes int
	files  map[string][]byte
}

func snapshotModel(model map[string][]byte, writes int) fsSnapshot {
	cp := make(map[string][]byte, len(model))
	for n, c := range model {
		cp[n] = append([]byte(nil), c...)
	}
	return fsSnapshot{writes: writes, files: cp}
}

// matchesSnapshot reports whether the mounted FS is state-identical to
// the snapshot: same names, same durable contents.
func matchesSnapshot(fs *FS, s fsSnapshot) bool {
	names := fs.Names()
	if len(names) != len(s.files) {
		return false
	}
	for _, n := range names {
		want, ok := s.files[n]
		if !ok {
			return false
		}
		ino, err := fs.Lookup(n)
		if err != nil {
			return false
		}
		got, err := fs.ReadFile(ino)
		if err != nil || !bytes.Equal(got, want) {
			return false
		}
	}
	return true
}

// TestCrashConsistencyEveryBoundary runs a mixed workload — creates
// spread over four heat-affinity classes, multi-block writes dirtying
// at least two classes per sync (so the fanned multi-class flush is
// mid-flight at many crash points), overwrites, deletes, renames,
// journaled syncs and policy checkpoints — and then crashes it at
// every single block boundary, mounting each crash image.
func TestCrashConsistencyEveryBoundary(t *testing.T) {
	const devBlocks = 2048
	p := Params{
		SegmentBlocks:    16,
		CheckpointBlocks: 16,
		WritebackBlocks:  8,
		CheckpointEvery:  48, // journal syncs with periodic checkpoints
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      2, // fan the per-class Sync flush (and the mounts below)
	}
	dev := quietDev(devBlocks)
	rec := recordWrites(dev)
	fs, err := New(dev, p)
	if err != nil {
		t.Fatal(err)
	}

	model := make(map[string][]byte)
	var acks []fsSnapshot
	write := func(name string, off, n int, seed byte) {
		ino, lerr := fs.Lookup(name)
		if lerr != nil {
			// Deleted earlier in the workload: recreate, so the op mix
			// includes delete-then-recreate across sync intervals.
			if ino, lerr = fs.Create(name, 0); lerr != nil {
				t.Fatal(lerr)
			}
			model[name] = nil
		}
		data := payload(seed, n)
		if werr := fs.Write(ino, uint64(off), data); werr != nil {
			t.Fatal(werr)
		}
		buf := model[name]
		for len(buf) < off+n {
			buf = append(buf, 0)
		}
		copy(buf[off:], data)
		model[name] = buf
	}
	sync := func() {
		if serr := fs.Sync(); serr != nil {
			t.Fatal(serr)
		}
		acks = append(acks, snapshotModel(model, rec.count()))
	}

	for i := 0; i < 4; i++ {
		if _, cerr := fs.Create(fmt.Sprintf("f%d", i), uint8(i%4)); cerr != nil {
			t.Fatal(cerr)
		}
		model[fmt.Sprintf("f%d", i)] = nil
	}
	sync() // first checkpoint
	for round := 0; round < 10; round++ {
		name := fmt.Sprintf("f%d", round%4)
		write(name, (round%3)*device.DataBytes/2, 1+round%3*device.DataBytes, byte(round+1))
		// Dirty a second affinity class in the same sync interval, so
		// the flush fans at least two class runs plus the affinity-0
		// metadata run — crash points land between and inside them.
		write(fmt.Sprintf("f%d", (round+2)%4), 0, device.DataBytes, byte(0x40+round))
		if round == 4 {
			if derr := fs.Delete("f3"); derr != nil {
				t.Fatal(derr)
			}
			delete(model, "f3")
		}
		if round == 6 {
			if rerr := fs.Rename("f2", "g2"); rerr != nil {
				t.Fatal(rerr)
			}
			model["g2"] = model["f2"]
			delete(model, "f2")
		}
		sync()
	}
	dev.SetWriteObserver(nil)

	total := rec.count()
	if total == 0 {
		t.Fatal("harness recorded no writes")
	}
	step := 1
	if testing.Short() {
		step = 5
	}
	if raceDetector {
		// The sweep replays O(total²/step) block writes across its
		// mounts; under the race detector's slowdown a stride of 1
		// blows the package timeout. 5 keeps every phase sampled and
		// stays off the k%7 cross-check cadence below.
		step *= 5
	}
	for k := 0; k <= total; k += step {
		lastAck := -1
		for i, a := range acks {
			if a.writes <= k {
				lastAck = i
			}
		}
		crashed := rec.deviceAt(t, devBlocks, k)
		mounted, merr := Mount(crashed, p)
		if lastAck < 0 {
			// Nothing was ever acked; an unmountable medium is allowed.
			continue
		}
		if merr != nil {
			t.Fatalf("crash at write %d/%d (last ack %d): mount failed: %v",
				k, total, lastAck, merr)
		}
		// The mounted state must be exactly the last acked state or, if
		// the crash fell inside the next Sync, possibly that next state
		// once its record was fully durable — never a torn mixture.
		ok := matchesSnapshot(mounted, acks[lastAck])
		if !ok && lastAck+1 < len(acks) {
			ok = matchesSnapshot(mounted, acks[lastAck+1])
		}
		if !ok {
			t.Fatalf("crash at write %d/%d: mounted state is neither ack %d nor ack %d",
				k, total, lastAck, lastAck+1)
		}
		// Sampled equivalence sweep: whatever the crash tore, the
		// table-driven mount and the full-walk fallback must recover
		// byte-identical state from the same crash image.
		if k%7 == 0 {
			pw := p
			pw.NoLivenessTable = true
			walked, werr := Mount(rec.deviceAt(t, devBlocks, k), pw)
			if werr != nil {
				t.Fatalf("crash at write %d/%d: walk mount failed: %v", k, total, werr)
			}
			if ft, fw := mountFingerprint(mounted), mountFingerprint(walked); ft != fw {
				t.Fatalf("crash at write %d/%d: table mount diverges from walk mount (table used: %v, fallback %q)",
					k, total, mounted.MountReport().TableMount, mounted.MountReport().Fallback)
			}
		}
	}
}

// TestCrashMidCheckpointFallsBack pins the dual-slot guarantee
// specifically: crash points inside the checkpoint-region rewrite must
// fall back to the previous slot plus its summary chain, losing
// nothing that was acked.
func TestCrashMidCheckpointFallsBack(t *testing.T) {
	const devBlocks = 1024
	p := Params{
		SegmentBlocks:    16,
		CheckpointBlocks: 16,
		CheckpointEvery:  1 << 20, // only explicit checkpoints
		HeatAware:        true,
		ReserveSegments:  2,
	}
	dev := quietDev(devBlocks)
	rec := recordWrites(dev)
	fs, err := New(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.Create("a", 0)
	if err := fs.WriteFile(ino, payload(1, 2*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // checkpoint epoch 1
		t.Fatal(err)
	}
	if err := fs.WriteFile(ino, payload(2, 2*device.DataBytes)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil { // journal record
		t.Fatal(err)
	}
	want := payload(2, 2*device.DataBytes)
	ackWrites := rec.count()
	if err := fs.Checkpoint(); err != nil { // checkpoint epoch 2, other slot
		t.Fatal(err)
	}
	dev.SetWriteObserver(nil)
	total := rec.count()
	if total <= ackWrites {
		t.Fatal("explicit checkpoint wrote nothing")
	}
	for k := ackWrites; k <= total; k++ {
		crashed := rec.deviceAt(t, devBlocks, k)
		mounted, merr := Mount(crashed, p)
		if merr != nil {
			t.Fatalf("crash at write %d during checkpoint: mount failed: %v", k, merr)
		}
		got, rerr := mounted.ReadFile(ino)
		if rerr != nil || !bytes.Equal(got, want) {
			t.Fatalf("crash at write %d during checkpoint: acked data lost: %v", k, rerr)
		}
	}
}
