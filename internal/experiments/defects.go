package experiments

import (
	"fmt"
	"strings"

	"sero/internal/device"
	"sero/internal/medium"
	"sero/internal/sim"
)

// E9 — media defect tolerance. The 15 % sector overhead [39] buys a
// concrete error budget: 4-way interleaved RS(·,16) corrects up to 8
// byte errors per lane. This experiment injects random dot defects at
// increasing densities and measures the sector failure rate and ECC
// work, mapping the margin between "patterned media are imperfect" and
// "the device returns wrong data". It also confirms defect bursts do
// not masquerade as heated blocks (the §3 bad-vs-heated distinction).

// E9Point is one defect-density measurement.
type E9Point struct {
	// DefectRate is the fraction of dots injected as stuck/dead.
	DefectRate float64
	// SectorFailRate is the fraction of sectors unreadable after ECC.
	SectorFailRate float64
	// MeanCorrectedBytes is the average RS corrections per successful
	// sector read.
	MeanCorrectedBytes float64
	// MisprobedHeated counts defective blocks the heat-probe
	// misclassified as electrically written (must stay 0).
	MisprobedHeated int
}

// E9Result is the defect sweep.
type E9Result struct{ Points []E9Point }

// RunE9 sweeps defect densities over a population of sectors.
func RunE9(seed uint64) (E9Result, error) {
	var res E9Result
	const blocks = 128
	for _, rate := range []float64{0.0005, 0.001, 0.002, 0.005, 0.01, 0.02} {
		dp := device.DefaultParams(blocks)
		mp := medium.DefaultParams(blocks, device.DotsPerBlock)
		mp.ReadNoiseSigma = 0
		mp.ResidualInPlaneSignal = 0
		mp.ThermalCrosstalk = 0
		dp.Medium = mp
		dev := device.New(dp)
		rng := sim.NewRNG(seed + uint64(rate*1e6))

		// Inject defects uniformly.
		med := dev.Medium()
		total := blocks * device.DotsPerBlock
		defects := int(float64(total) * rate)
		kinds := []medium.StuckKind{medium.StuckUp, medium.StuckDown, medium.StuckDead}
		for i := 0; i < defects; i++ {
			med.SetStuck(rng.Intn(total), kinds[rng.Intn(len(kinds))])
		}

		data := make([]byte, device.DataBytes)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		fails := 0
		reads := 0
		correctedBefore := dev.Stats().CorrectedBytes
		for pba := uint64(0); pba < blocks; pba++ {
			if err := dev.MWS(pba, data); err != nil {
				fails++
				continue
			}
			reads++
			if _, err := dev.MRS(pba); err != nil {
				fails++
			}
		}
		corrected := dev.Stats().CorrectedBytes - correctedBefore

		// The §3 discrimination check: none of these purely defective
		// blocks may probe as electrically written.
		misprobed := 0
		for pba := uint64(0); pba < blocks; pba++ {
			hot, err := dev.ProbeHeated(pba, 16)
			if err != nil {
				return res, err
			}
			if hot {
				misprobed++
			}
		}

		pt := E9Point{
			DefectRate:      rate,
			SectorFailRate:  float64(fails) / float64(blocks),
			MisprobedHeated: misprobed,
		}
		if ok := blocks - fails; ok > 0 {
			pt.MeanCorrectedBytes = float64(corrected) / float64(ok)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Table renders E9.
func (r E9Result) Table() string {
	var b strings.Builder
	b.WriteString("E9 — media defect tolerance (15% sector overhead, RS 4×16)\n")
	b.WriteString("defect-rate  sector-fail  corrected/sector  misprobed-heated\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.2f%% %12.3f %17.1f %17d\n",
			p.DefectRate*100, p.SectorFailRate, p.MeanCorrectedBytes, p.MisprobedHeated)
	}
	b.WriteString("ECC absorbs sub-percent defect densities; defects never probe as heated\n")
	return b.String()
}
