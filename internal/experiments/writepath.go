package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/device"
	"sero/internal/lfs"
)

// E14 — the batched write pipeline. Compares the block-at-a-time
// append path (writeback=1, one servo settle per block) against
// group-committed segment writes, and a serial cleaning pass against
// one fanned out over worker planes (virtual time: slowest worker).
// The workload and the resulting on-medium layout are identical in
// all configurations; only the virtual time differs.

// E14Result holds the write-path comparison.
type E14Result struct {
	// Workers and Writeback echo the configuration under test.
	Workers   int
	Writeback int

	// AppendSerialNS / AppendBatchedNS are virtual time per appended
	// block with writeback=1 vs the configured group-commit size.
	AppendSerialNS  time.Duration
	AppendBatchedNS time.Duration

	// CleanSerialNS / CleanParallelNS are the virtual cost of one
	// cleaning pass over the same victim population, serial vs fanned
	// out over Workers planes.
	CleanSerialNS   time.Duration
	CleanParallelNS time.Duration

	// CleanedSerial / CleanedParallel count segments reclaimed (must
	// match: the layout contract).
	CleanedSerial   int
	CleanedParallel int
}

// RunE14 measures the two write-path effects with the given cleaner
// fan-out and group-commit granularity (0 means whole segments).
func RunE14(workers, writeback int) (E14Result, error) {
	res := E14Result{Workers: workers, Writeback: writeback}

	appendCost := func(wb int) (time.Duration, error) {
		dev := quietDevice(2048)
		fs, err := lfs.New(dev, lfs.Params{
			SegmentBlocks: 32, CheckpointBlocks: 32, WritebackBlocks: wb,
			HeatAware: true, ReserveSegments: 2,
		})
		if err != nil {
			return 0, err
		}
		// Stream appends through a rotating file population (files are
		// capped at MaxFileBytes), syncing every 32 blocks.
		const blocks, perSync = 256, 32
		inos := make([]lfs.Ino, 8)
		for i := range inos {
			var err error
			if inos[i], err = fs.Create(fmt.Sprintf("s%02d", i), 0); err != nil {
				return 0, err
			}
		}
		data := make([]byte, device.DataBytes)
		start := dev.Clock().Now()
		for i := 0; i < blocks; i++ {
			ino := inos[(i/perSync)%len(inos)]
			if err := fs.Write(ino, uint64(i%perSync)*device.DataBytes, data); err != nil {
				return 0, err
			}
			if (i+1)%perSync == 0 {
				if err := fs.Sync(); err != nil {
					return 0, err
				}
			}
		}
		return (dev.Clock().Now() - start) / blocks, nil
	}
	var err error
	if res.AppendSerialNS, err = appendCost(1); err != nil {
		return res, err
	}
	if res.AppendBatchedNS, err = appendCost(writeback); err != nil {
		return res, err
	}

	cleanCost := func(j int) (time.Duration, int, error) {
		dev := quietDevice(4096)
		fs, err := lfs.New(dev, lfs.Params{
			SegmentBlocks: 32, CheckpointBlocks: 32,
			HeatAware: true, ReserveSegments: 2, Concurrency: j,
		})
		if err != nil {
			return 0, 0, err
		}
		// Fill many segments, then invalidate half of every file's
		// blocks, leaving a victim population at ~50 % utilisation —
		// the regime where cleaning actually copies data.
		inos := make([]lfs.Ino, 24)
		for i := range inos {
			if inos[i], err = fs.Create(fmt.Sprintf("f%02d", i), 0); err != nil {
				return 0, 0, err
			}
			if err := fs.WriteFile(inos[i], make([]byte, 8*device.DataBytes)); err != nil {
				return 0, 0, err
			}
		}
		if err := fs.Sync(); err != nil {
			return 0, 0, err
		}
		for _, ino := range inos {
			if err := fs.WriteFile(ino, make([]byte, 4*device.DataBytes)); err != nil {
				return 0, 0, err
			}
		}
		if err := fs.Sync(); err != nil {
			return 0, 0, err
		}
		start := dev.Clock().Now()
		cs := fs.Clean(fs.FreeSegments() + 4)
		return dev.Clock().Now() - start, cs.SegmentsCleaned, nil
	}
	if res.CleanSerialNS, res.CleanedSerial, err = cleanCost(1); err != nil {
		return res, err
	}
	if res.CleanParallelNS, res.CleanedParallel, err = cleanCost(workers); err != nil {
		return res, err
	}
	return res, nil
}

// Table renders E14.
func (r E14Result) Table() string {
	var b strings.Builder
	b.WriteString("E14 — batched write pipeline (virtual time)\n")
	wb := r.Writeback
	if wb <= 0 {
		wb = 0
	}
	fmt.Fprintf(&b, "append/block: %10v serial (writeback=1)   %10v batched (writeback=%d)   %.1fx\n",
		r.AppendSerialNS, r.AppendBatchedNS, wb,
		float64(r.AppendSerialNS)/float64(r.AppendBatchedNS))
	fmt.Fprintf(&b, "clean pass:   %10v serial (%d segs)        %10v at j=%d (%d segs)        %.1fx\n",
		r.CleanSerialNS, r.CleanedSerial,
		r.CleanParallelNS, r.Workers, r.CleanedParallel,
		float64(r.CleanSerialNS)/float64(r.CleanParallelNS))
	return b.String()
}
