package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/serve"
	"sero/internal/trace"
)

// E20 — the observability plane. Runs one traced serving-mix replay
// (the e18 workload at a fixed session count) with the span ring
// buffer attached, then renders what the trace shows: the compact
// text flamegraph per span kind (device settle/write/read and
// fan-out joins, lfs sync phases and cleaner rounds, serve ops), the
// per-session latency decomposition (own device time vs lock wait vs
// queueing behind other sessions), and the counters snapshot
// (appends, cleans, journal re-anchors, checkpoint fall-backs, stale
// moves). The same spans back `serocli trace -out trace.json`; this
// experiment is the glanceable in-terminal rendition.

// E20Result holds the traced run.
type E20Result struct {
	// Sessions, Files, MixOps describe the workload scale.
	Sessions, Files, MixOps int
	// Ops is the total op count applied (population included).
	Ops uint64
	// Virtual is the run's total virtual time.
	Virtual time.Duration
	// Spans is the number of spans captured; Dropped counts ring
	// overflow (0 at this scale).
	Spans int
	// Dropped counts spans lost to ring-buffer overflow.
	Dropped uint64
	// Summary is the per-kind span profile (trace.Summarize).
	Summary string
	// PerSession is the latency decomposition per session.
	PerSession []serve.SessionStats
	// Run is the full serving result (the counters rendered below).
	Run serve.Result
}

// RunE20 replays the serving mix once with tracing enabled.
func RunE20(sessions int, seed uint64) (E20Result, error) {
	const files, ops = 512, 2048
	cfg := serve.DefaultConfig(sessions, files, ops)
	cfg.Seed = seed
	cfg.SegmentBlocks = 64
	cfg.SyncEvery = 32
	tr := trace.New(trace.DefaultBuffer)
	r, err := serve.RunTraced(cfg, tr)
	if err != nil {
		return E20Result{}, fmt.Errorf("e20: sessions=%d: %w", sessions, err)
	}
	spans := tr.Spans()
	return E20Result{
		Sessions:   sessions,
		Files:      files,
		MixOps:     ops,
		Ops:        r.TotalOps,
		Virtual:    time.Duration(r.VirtualNS),
		Spans:      len(spans),
		Dropped:    tr.Dropped(),
		Summary:    trace.Summarize(spans),
		PerSession: r.PerSession,
		Run:        r,
	}, nil
}

// Table renders E20.
func (r E20Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E20 — observability plane: %d files, %d mix ops, %d sessions, %d spans (%d dropped) over %v virtual\n\n",
		r.Files, r.MixOps, r.Sessions, r.Spans, r.Dropped, r.Virtual)
	b.WriteString(r.Summary)
	b.WriteString("\nper-session latency decomposition (virtual time; queue = waiting on other sessions' device work):\n")
	b.WriteString("session      ops     device   lock-wait       queue       total\n")
	for _, s := range r.PerSession {
		fmt.Fprintf(&b, "%-8d %7d %10v %11v %11v %11v\n",
			s.Session, s.Ops,
			time.Duration(s.DeviceNS), time.Duration(s.LockWaitNS),
			time.Duration(s.QueueNS), time.Duration(s.TotalNS))
	}
	fmt.Fprintf(&b, "\ncounters: blocks-appended=%d syncs=%d checkpoints=%d cleaner-passes=%d blocks-copied=%d journal-reanchors=%d checkpoint-fallbacks=%d moves-invalidated=%d\n",
		r.Run.BlocksAppended, r.Run.Syncs, r.Run.Checkpoints,
		r.Run.CleanerPasses, r.Run.BlocksCopied, r.Run.JournalReanchors,
		r.Run.CheckpointFallbacks, r.Run.MovesInvalidated)
	b.WriteString("tracing never advances the virtual clock: the same run with the tracer detached is byte-identical in virtual time\n")
	return b.String()
}
