// Package experiments contains one driver per reproducible artifact of
// the paper: Figures 2, 3, 7, 8, 9 and the systems experiments E1–E7
// catalogued in DESIGN.md. Each driver returns a typed result with a
// Table method rendering the same rows/series the paper reports;
// cmd/serosim prints them and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"sero/internal/device"
	"sero/internal/medium"
	"sero/internal/physics"
)

// Fig2Result is the exhaustive bit-state-machine check of Fig 2.
type Fig2Result struct {
	// Transitions lists every (from, op, to) observed.
	Transitions []Fig2Transition
	// AllMatch is true when every observed transition matches the
	// paper's diagram.
	AllMatch bool
}

// Fig2Transition is one observed state transition.
type Fig2Transition struct {
	From     medium.DotState
	Op       string
	To       medium.DotState
	Expected medium.DotState
}

// RunFig2 drives a single dot through every operation from every state
// and compares with Fig 2.
func RunFig2() Fig2Result {
	p := medium.DefaultParams(1, 4)
	p.ReadNoiseSigma = 0
	p.ResidualInPlaneSignal = 0
	p.ThermalCrosstalk = 0

	var res Fig2Result
	res.AllMatch = true
	record := func(from medium.DotState, op string, to, want medium.DotState) {
		res.Transitions = append(res.Transitions, Fig2Transition{From: from, Op: op, To: to, Expected: want})
		if to != want {
			res.AllMatch = false
		}
	}

	// prepare returns a fresh medium with dot 0 in the given state.
	prepare := func(s medium.DotState) *medium.Medium {
		m := medium.New(p)
		switch s {
		case medium.Dot0:
			m.MWB(0, false)
		case medium.Dot1:
			m.MWB(0, true)
		case medium.DotH:
			m.EWB(0)
		}
		return m
	}

	for _, from := range []medium.DotState{medium.Dot0, medium.Dot1, medium.DotH} {
		// mwb 0
		m := prepare(from)
		m.MWB(0, false)
		want := medium.Dot0
		if from == medium.DotH {
			want = medium.DotH
		}
		record(from, "mwb 0", m.State(0), want)
		// mwb 1
		m = prepare(from)
		m.MWB(0, true)
		want = medium.Dot1
		if from == medium.DotH {
			want = medium.DotH
		}
		record(from, "mwb 1", m.State(0), want)
		// ewb
		m = prepare(from)
		m.EWB(0)
		record(from, "ewb", m.State(0), medium.DotH)
	}
	return res
}

// Table renders the transition table.
func (r Fig2Result) Table() string {
	var b strings.Builder
	b.WriteString("Fig 2 — bit state machine (observed vs paper)\n")
	b.WriteString("from  op      to  expected  ok\n")
	for _, tr := range r.Transitions {
		ok := "yes"
		if tr.To != tr.Expected {
			ok = "NO"
		}
		fmt.Fprintf(&b, "%-5s %-7s %-3s %-9s %s\n", tr.From, tr.Op, tr.To, tr.Expected, ok)
	}
	fmt.Fprintf(&b, "all transitions match: %v\n", r.AllMatch)
	return b.String()
}

// Fig3Result reproduces the heated-line medium layout of Fig 3.
type Fig3Result struct {
	LogN uint8
	// Block0Cells classifies the Manchester cells of block 0.
	Block0HU, Block0UH, Block0UU int
	// MetaSpaceBits is the space left for metadata after the hash
	// (paper: 4096−512 = 3584 bits).
	MetaSpaceBits int
	// DataBlocksMagnetic is true when blocks 1..2^N−1 read back
	// magnetically after the heat.
	DataBlocksMagnetic bool
	// MaxAdjacentHeated verifies the thermal-spreading property (≤2).
	MaxAdjacentHeated int
}

// RunFig3 heats a line and inspects the physical layout.
func RunFig3(logN uint8) (Fig3Result, error) {
	blocks := 1 << (logN + 1)
	dp := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	dp.Medium = mp
	dev := device.New(dp)

	n := uint64(1) << logN
	data := make([]byte, device.DataBytes)
	for pba := uint64(0); pba < n; pba++ {
		for i := range data {
			data[i] = byte(pba) + byte(i)
		}
		if err := dev.MWS(pba, data); err != nil {
			return Fig3Result{}, err
		}
	}
	if _, err := dev.HeatLine(0, logN); err != nil {
		return Fig3Result{}, err
	}

	res := Fig3Result{LogN: logN}
	med := dev.Medium()
	base := device.HeaderBytes * 8
	recordCells := device.HeatRecordBytes * 8
	run, maxRun := 0, 0
	for c := 0; c < device.DataRegionDots/2; c++ {
		a := med.State(base+2*c) == medium.DotH
		bb := med.State(base+2*c+1) == medium.DotH
		switch {
		case a && !bb:
			res.Block0HU++
		case !a && bb:
			res.Block0UH++
		case !a && !bb:
			res.Block0UU++
		}
		for _, heated := range []bool{a, bb} {
			if heated {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 0
			}
		}
	}
	res.MaxAdjacentHeated = maxRun
	_ = recordCells
	// The 256-bit hash occupies 512 of the 4096 data-region dots; the
	// rest is metadata space — the paper's "3584 bits of space for
	// meta data, signatures, etc."
	res.MetaSpaceBits = device.DataRegionDots - 32*16

	res.DataBlocksMagnetic = true
	for pba := uint64(1); pba < n; pba++ {
		if _, err := dev.MRS(pba); err != nil {
			res.DataBlocksMagnetic = false
		}
	}
	return res, nil
}

// Table renders the layout summary.
func (r Fig3Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3 — heated line layout (2^%d blocks)\n", r.LogN)
	fmt.Fprintf(&b, "block 0 cells: HU=%d UH=%d UU(unused)=%d\n", r.Block0HU, r.Block0UH, r.Block0UU)
	fmt.Fprintf(&b, "hash+meta cells written: %d (record = %d bytes)\n",
		r.Block0HU+r.Block0UH, device.HeatRecordBytes)
	fmt.Fprintf(&b, "blocks 1..2^N-1 still magnetic: %v\n", r.DataBlocksMagnetic)
	fmt.Fprintf(&b, "max adjacent heated dots: %d (paper: Manchester guarantees ≤2)\n", r.MaxAdjacentHeated)
	return b.String()
}

// Fig7Table renders the anisotropy-vs-anneal-temperature points.
func Fig7Table(pts []physics.Fig7Point) string {
	var b strings.Builder
	b.WriteString("Fig 7 — perpendicular anisotropy vs annealing temperature\n")
	b.WriteString("anneal °C    K (kJ/m³)\n")
	for _, p := range pts {
		label := "as-grown"
		if !math.IsNaN(p.TemperatureC) {
			label = fmt.Sprintf("%8.0f", p.TemperatureC)
		}
		fmt.Fprintf(&b, "%-12s %8.1f\n", label, p.AnisotropyJm3/1e3)
	}
	b.WriteString("paper: ≈80 kJ/m³ flat to 500 °C, dramatic drop above 600 °C\n")
	return b.String()
}

// Fig8Table renders the low-angle XRD comparison.
func Fig8Table(res physics.Fig8Result) string {
	var b strings.Builder
	b.WriteString("Fig 8 — low-angle XRD (superlattice peak)\n")
	fmt.Fprintf(&b, "as-grown:  peak at 2θ=%.2f° (prominence %.0f)\n",
		res.AsGrownPeak.TwoThetaDeg, res.AsGrownPeak.Prominence)
	fmt.Fprintf(&b, "annealed:  significant peak present: %v\n", res.AnnealedPeakPresent)
	b.WriteString("paper: peak ≈8° as grown; gone after 700 °C anneal\n")
	b.WriteString(sparkline("as-grown", res.AsGrown, 6, 10))
	b.WriteString(sparkline("annealed", res.Annealed, 6, 10))
	return b.String()
}

// Fig9Table renders the high-angle XRD comparison.
func Fig9Table(res physics.Fig9Result) string {
	var b strings.Builder
	b.WriteString("Fig 9 — high-angle XRD (fcc CoPt(111))\n")
	fmt.Fprintf(&b, "annealed:  peak at 2θ=%.2f° (prominence %.0f)\n",
		res.AnnealedPeak.TwoThetaDeg, res.AnnealedPeak.Prominence)
	fmt.Fprintf(&b, "as-grown:  significant peak present: %v\n", res.AsGrownPeakPresent)
	b.WriteString("paper: CoPt(111) at 41.7° only in the annealed film\n")
	b.WriteString(sparkline("as-grown", res.AsGrown, 40, 44))
	b.WriteString(sparkline("annealed", res.Annealed, 40, 44))
	return b.String()
}

// sparkline renders a coarse ASCII intensity profile of a pattern
// window, so serosim output shows the curve shape, not just the peak
// position.
func sparkline(label string, p physics.Pattern, from, to float64) string {
	const buckets = 40
	sums := make([]float64, buckets)
	counts := make([]int, buckets)
	for i, tt := range p.TwoThetaDeg {
		if tt < from || tt > to {
			continue
		}
		bkt := int((tt - from) / (to - from) * (buckets - 1))
		sums[bkt] += p.Intensity[i]
		counts[bkt]++
	}
	maxV := 0.0
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
		if sums[i] > maxV {
			maxV = sums[i]
		}
	}
	glyphs := []rune(" .:-=+*#%@")
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s [%4.1f°..%4.1f°] |", label, from, to)
	for _, v := range sums {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(glyphs)-1))
		}
		sb.WriteRune(glyphs[idx])
	}
	sb.WriteString("|\n")
	return sb.String()
}
