package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/core"
	"sero/internal/device"
	"sero/internal/sim"
)

// E13 — detection latency vs scrub overhead: the "performance/security
// tradeoffs" the paper's §9 simulation agenda calls for, on the
// discrete-event timeline. A store holds heated lines; an insider
// tampers at a known virtual instant; a background scrubber audits
// every T. Short T detects fast but burns device time on audits; long
// T is cheap but leaves the forgery live for longer.

// E13Point is one scrub-interval configuration.
type E13Point struct {
	Interval time.Duration
	// DetectionLatency is tamper-to-detection virtual time.
	DetectionLatency time.Duration
	// AuditDutyCycle is the fraction of the pre-detection timeline
	// spent auditing.
	AuditDutyCycle float64
	// Audits is the number of passes until detection.
	Audits int
}

// E13Result is the sweep.
type E13Result struct {
	Points []E13Point
	// Lines is the heated-line population size.
	Lines int
}

// RunE13 sweeps scrub intervals.
func RunE13(seed uint64) (E13Result, error) {
	res := E13Result{Lines: 8}
	for _, interval := range []time.Duration{
		100 * time.Millisecond,
		400 * time.Millisecond,
		1600 * time.Millisecond,
		6400 * time.Millisecond,
	} {
		pt, err := runE13Point(seed, res.Lines, interval)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func runE13Point(seed uint64, lines int, interval time.Duration) (E13Point, error) {
	st := core.NewStore(quietDevice(256))
	rng := sim.NewRNG(seed)

	// Population: heated lines of 4 blocks.
	var starts []uint64
	for i := 0; i < lines; i++ {
		blocks := make([][]byte, 3)
		for b := range blocks {
			blk := make([]byte, device.DataBytes)
			for j := range blk {
				blk[j] = byte(rng.Uint64())
			}
			blocks[b] = blk
		}
		start, logN, err := st.WriteLine(blocks)
		if err != nil {
			return E13Point{}, err
		}
		if _, err := st.Heat(start, logN); err != nil {
			return E13Point{}, err
		}
		starts = append(starts, start)
	}

	clock := st.Device().Clock()
	sched := sim.NewScheduler(clock)
	scrub := core.NewScrubber(st, sched, interval)
	scrub.StopOnDetect = true
	scrub.Start()

	// The insider strikes a fixed offset into the timeline.
	tamperAt := clock.Now() + 50*time.Millisecond
	var tamperedAt time.Duration
	sched.At(tamperAt, func() {
		victim := starts[rng.Intn(len(starts))]
		forged := make([]byte, device.DataBytes)
		copy(forged, "history, revised")
		bits := device.ForgedFrameBits(victim+1, forged)
		med := st.Device().(*device.Device).Medium()
		base := int(victim+1) * device.DotsPerBlock
		for i, b := range bits {
			med.MWB(base+i, b)
		}
		tamperedAt = clock.Now()
	})

	// Run the timeline until the scrubber catches it (bounded).
	deadline := tamperAt + 100*interval + time.Second
	sched.RunUntil(deadline)

	stats := scrub.Stats()
	if stats.FirstDetection == 0 {
		return E13Point{}, fmt.Errorf("scrubber never detected the tamper (interval %v)", interval)
	}
	elapsed := stats.FirstDetection
	pt := E13Point{
		Interval:         interval,
		DetectionLatency: stats.FirstDetection - tamperedAt,
		Audits:           stats.Audits,
	}
	if elapsed > 0 {
		pt.AuditDutyCycle = float64(stats.AuditTime) / float64(elapsed)
	}
	return pt, nil
}

// Table renders E13.
func (r E13Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E13 — detection latency vs scrub overhead (%d heated lines)\n", r.Lines)
	b.WriteString("scrub-interval  detection-latency  audit-duty-cycle  audits\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%14v %18v %17.3f %7d\n",
			p.Interval, p.DetectionLatency, p.AuditDutyCycle, p.Audits)
	}
	b.WriteString("the §9 tradeoff: frequent scrubbing buys low tamper-exposure time with device bandwidth\n")
	return b.String()
}
