package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/core"
	"sero/internal/device"
	"sero/internal/retention"
	"sero/internal/sim"
)

// E8 — device lifetime (§8 "Efficiency" and "Deletion"): under a
// steady compliance-ingest load the read/write area gradually shrinks
// and the read-only area grows until the device is a pure read-only
// archive and can be decommissioned once every retention period has
// lapsed. The experiment traces that ageing curve and exercises the
// policy-gated shred path along the way.

// E8Point samples the device state during its life.
type E8Point struct {
	IngestedRecords int
	ReadOnlyRatio   float64
	FreeBlocks      int
	Fragmentation   float64
	VirtualTime     time.Duration
}

// E8Result is the ageing trace.
type E8Result struct {
	Points []E8Point
	// RecordsUntilFull counts ingests accepted before the device
	// filled up.
	RecordsUntilFull int
	// ShreddedRecords counts records destroyed by the retention policy
	// during the run.
	ShreddedRecords int
	// Decommissionable reports whether the device ended its life with
	// every record expired.
	Decommissionable bool
	// EvidenceSurvives reports whether every shredded record still
	// verifies as "tampered/destroyed" rather than silently vanishing.
	EvidenceSurvives bool
}

// RunE8 ingests records of mixed retention classes until the device is
// full, shredding expired records as it goes.
func RunE8(seed uint64) (E8Result, error) {
	st := core.NewStore(quietDevice(2048))
	mgr := retention.NewManager(st,
		retention.Policy{Class: "ephemeral", Period: 200 * time.Millisecond},
		retention.Policy{Class: "archive", Period: time.Hour},
	)
	rng := sim.NewRNG(seed)

	var res E8Result
	sample := func(n int) {
		lc := st.Lifecycle()
		res.Points = append(res.Points, E8Point{
			IngestedRecords: n,
			ReadOnlyRatio:   lc.ReadOnlyRatio,
			FreeBlocks:      lc.FreeBlocks,
			Fragmentation:   lc.Fragmentation,
			VirtualTime:     lc.VirtualTime,
		})
	}

	sample(0)
	n := 0
	for {
		class := retention.Class("archive")
		if rng.Float64() < 0.3 {
			class = "ephemeral"
		}
		blocks := make([][]byte, 1+rng.Intn(3))
		for i := range blocks {
			b := make([]byte, device.DataBytes)
			for j := range b {
				b[j] = byte(rng.Uint64())
			}
			blocks[i] = b
		}
		if _, err := mgr.Ingest(fmt.Sprintf("rec-%04d", n), class, blocks); err != nil {
			// Device full: end of life.
			break
		}
		n++
		if n%25 == 0 {
			sample(n)
			// Periodic retention sweep.
			shredded, err := mgr.ShredExpired()
			if err != nil {
				return res, err
			}
			res.ShreddedRecords += shredded
		}
	}
	sample(n)
	res.RecordsUntilFull = n

	// End of life: wait out the archive period and check the paper's
	// decommissioning condition.
	st.Device().Clock().Advance(time.Hour)
	res.Decommissionable = mgr.Decommissionable()

	// Shredded records must remain evident.
	res.EvidenceSurvives = true
	for _, rec := range mgr.Records() {
		if !rec.Shredded {
			continue
		}
		rep, err := mgr.Verify(rec.ID)
		if err != nil || rep.OK {
			res.EvidenceSurvives = false
		}
	}
	return res, nil
}

// Table renders the ageing curve.
func (r E8Result) Table() string {
	var b strings.Builder
	b.WriteString("E8 — device lifetime under compliance ingest (§8)\n")
	b.WriteString("records  RO-ratio  free-blocks  fragmentation  virtual-time\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%7d %9.2f %12d %14.2f %13v\n",
			p.IngestedRecords, p.ReadOnlyRatio, p.FreeBlocks, p.Fragmentation, p.VirtualTime)
	}
	fmt.Fprintf(&b, "device filled after %d records; %d shredded by policy; decommissionable: %v; evidence survives: %v\n",
		r.RecordsUntilFull, r.ShreddedRecords, r.Decommissionable, r.EvidenceSurvives)
	b.WriteString("paper §8: the read/write area gradually shrinks until the device is read-only\n")
	return b.String()
}
