package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/attack"
	"sero/internal/core"
	"sero/internal/device"
	"sero/internal/fossil"
	"sero/internal/lfs"
	"sero/internal/sim"
	"sero/internal/venti"
)

// E4Result is the §5 attack detection matrix.
type E4Result struct{ Results []attack.Result }

// RunE4 prepares a victim file system and executes the full attack
// matrix.
func RunE4(seed uint64) (E4Result, error) {
	dev := quietDevice(2048)
	fs, err := lfs.New(dev, lfs.Params{
		SegmentBlocks: 32, CheckpointBlocks: 32, HeatAware: true, ReserveSegments: 2,
	})
	if err != nil {
		return E4Result{}, err
	}
	h, err := attack.NewHarness(fs, seed)
	if err != nil {
		return E4Result{}, err
	}
	return E4Result{Results: h.RunAll()}, nil
}

// Table renders the matrix.
func (r E4Result) Table() string {
	var b strings.Builder
	b.WriteString("E4 — §5 attack matrix\n")
	b.WriteString("attack        outcome     notes\n")
	for _, a := range r.Results {
		note := a.Notes
		if len(note) > 80 {
			note = note[:77] + "..."
		}
		fmt.Fprintf(&b, "%-13s %-11s %s\n", a.Name, a.Outcome(), note)
	}
	b.WriteString("paper §5: every attack on integrity/availability is prevented or detected\n")
	return b.String()
}

// E6Result measures the archival structures of §4.2 on SERO.
type E6Result struct {
	// Venti numbers.
	VentiBlocks      uint64
	VentiDeduped     uint64
	VentiSnapshotGas time.Duration // heat cost per snapshot
	VentiVerifyOK    bool
	// Fossil numbers.
	FossilInserts    uint64
	FossilNodes      uint64
	FossilHeated     uint64
	FossilLookupOK   bool
	FossilVerifyOK   bool
	FossilInsertCost time.Duration
}

// RunE6 exercises the Venti archive (daily snapshots with heavy
// sharing) and the fossilized index (record ingest) on one store each.
func RunE6(seed uint64) (E6Result, error) {
	var res E6Result
	rng := sim.NewRNG(seed)

	// Venti: three "daily" snapshots of a dataset that changes 10%
	// per day — dedup should keep growth sublinear.
	st := core.NewStore(quietDevice(16384))
	arch := venti.New(st)
	data := make([]byte, 60*device.DataBytes)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	var lastRoot venti.Score
	for day := 0; day < 3; day++ {
		// Mutate 10% of blocks.
		for b := 0; b < 6; b++ {
			off := rng.Intn(60) * device.DataBytes
			for j := 0; j < device.DataBytes; j++ {
				data[off+j] = byte(rng.Uint64())
			}
		}
		root, err := arch.WriteStream(data)
		if err != nil {
			return res, err
		}
		t0 := st.Device().Clock().Now()
		if _, err := arch.Snapshot(root); err != nil {
			return res, err
		}
		res.VentiSnapshotGas = st.Device().Clock().Now() - t0
		lastRoot = root
	}
	rep, err := arch.VerifySnapshot(lastRoot)
	if err != nil {
		return res, err
	}
	res.VentiVerifyOK = rep.OK
	res.VentiBlocks = arch.Stats().BlocksWritten
	res.VentiDeduped = arch.Stats().BlocksDeduped

	// Fossil: ingest records, then verify.
	st2 := core.NewStore(quietDevice(16384))
	idx, err := fossil.New(st2)
	if err != nil {
		return res, err
	}
	const inserts = 200
	t0 := st2.Device().Clock().Now()
	for i := 0; i < inserts; i++ {
		if err := idx.Insert(fossil.KeyOf([]byte(fmt.Sprintf("record-%d", i))), uint64(i)); err != nil {
			return res, err
		}
	}
	res.FossilInsertCost = (st2.Device().Clock().Now() - t0) / inserts
	res.FossilInserts = inserts
	res.FossilNodes = idx.Stats().NodesTotal
	res.FossilHeated = idx.Stats().NodesHeated
	v, err := idx.Lookup(fossil.KeyOf([]byte("record-123")))
	res.FossilLookupOK = err == nil && v == 123
	reps, err := idx.Verify()
	if err != nil {
		return res, err
	}
	res.FossilVerifyOK = true
	for _, r := range reps {
		if !r.OK {
			res.FossilVerifyOK = false
		}
	}
	return res, nil
}

// Table renders E6.
func (r E6Result) Table() string {
	var b strings.Builder
	b.WriteString("E6 — archival structures on SERO (§4.2)\n")
	fmt.Fprintf(&b, "venti:  %d blocks written, %d deduped across 3 snapshots; snapshot heat cost %v; verify ok: %v\n",
		r.VentiBlocks, r.VentiDeduped, r.VentiSnapshotGas, r.VentiVerifyOK)
	fmt.Fprintf(&b, "fossil: %d inserts → %d nodes (%d heated); insert cost %v; lookup ok: %v; verify ok: %v\n",
		r.FossilInserts, r.FossilNodes, r.FossilHeated, r.FossilInsertCost, r.FossilLookupOK, r.FossilVerifyOK)
	b.WriteString("paper §4.2: heating replaces WORM copies for both index styles\n")
	return b.String()
}
