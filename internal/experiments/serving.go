package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/serve"
)

// E18 — the serving tier. Replays the DefaultMix serving workload
// (zipfian-0.9 popularity, read-mostly with appends, namespace churn
// and append bursts) against one FS from N concurrent sessions, the
// namespace and op budget partitioned over the sessions, and reports
// virtual-time latency percentiles per op kind plus sustained
// throughput — a scaled-down in-process rendition of the
// BENCH_serving.json macro-benchmark (`serocli bench-serve` records
// the 10⁵-file trajectory; this experiment makes the session sweep
// inspectable in seconds).

// E18Row is one session-count configuration.
type E18Row struct {
	// Sessions is the concurrent-session count.
	Sessions int
	// Ops is the total op count applied (population included).
	Ops uint64
	// Throughput is sustained ops per virtual second.
	Throughput float64
	// ReadP50, ReadP99 are read-latency percentiles.
	ReadP50, ReadP99 time.Duration
	// SyncP99 is the sync-latency 99th percentile (syncs carry the
	// flushed device work of the appends before them).
	SyncP99 time.Duration
	// Worst is the worst single op of any kind.
	Worst time.Duration
}

// E18Result holds the session sweep.
type E18Result struct {
	// Files and MixOps describe the per-run workload scale.
	Files, MixOps int
	// Rows holds one entry per session count.
	Rows []E18Row
}

// RunE18 sweeps session counts 1, 2, 4, … up to maxSessions (rounded
// down to a power of two) over the same total workload.
func RunE18(maxSessions int, seed uint64) (E18Result, error) {
	const files, ops = 512, 2048
	res := E18Result{Files: files, MixOps: ops}
	for n := 1; n <= maxSessions; n *= 2 {
		cfg := serve.DefaultConfig(n, files, ops)
		cfg.Seed = seed
		cfg.SegmentBlocks = 64
		cfg.SyncEvery = 32
		r, err := serve.Run(cfg)
		if err != nil {
			return res, fmt.Errorf("e18: sessions=%d: %w", n, err)
		}
		row := E18Row{
			Sessions:   n,
			Ops:        r.TotalOps,
			Throughput: r.ThroughputOpsPerSec,
			ReadP50:    time.Duration(r.PerOp["read"].P50NS),
			ReadP99:    time.Duration(r.PerOp["read"].P99NS),
			SyncP99:    time.Duration(r.PerOp["sync"].P99NS),
		}
		for _, st := range r.PerOp {
			if d := time.Duration(st.WorstNS); d > row.Worst {
				row.Worst = d
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders E18.
func (r E18Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E18 — serving tier: %d files, %d mix ops, namespace and ops partitioned over N sessions\n",
		r.Files, r.MixOps)
	b.WriteString("sessions      ops   kops/vsec   read-p50   read-p99   sync-p99   worst-op\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %8d %11.1f %10v %10v %10v %10v\n",
			row.Sessions, row.Ops, row.Throughput/1000,
			row.ReadP50, row.ReadP99, row.SyncP99, row.Worst)
	}
	b.WriteString("one shared device clock accumulates the serialised work: per-op latency includes queueing behind other sessions — the tail a loaded server's client observes\n")
	return b.String()
}
