package experiments

import (
	"fmt"
	"strings"

	"sero/internal/device"
	"sero/internal/ffs"
	"sero/internal/lfs"
	"sero/internal/sim"
)

// E12 — clustering across file-system designs (§4.1's closing
// argument): the bimodality property is not an LFS artifact; an
// FFS-style update-in-place file system with cluster groups benefits
// from exactly the same heat-aware placement policy. One workload
// (write a population, heat half, churn the rest) runs over four
// configurations: {LFS, FFS} × {heat-aware, oblivious}.

// E12Row is one configuration's outcome.
type E12Row struct {
	Design     string
	HeatAware  bool
	Bimodality float64
	// Fragmentation is design-specific: LFS reports stranded blocks in
	// pinned segments; FFS reports the free-space fragmentation of
	// live groups. Both are normalised so 0 is ideal.
	Fragmentation float64
	// VerifiedOK reports that every heated file still verifies.
	VerifiedOK bool
}

// E12Result is the 2×2 comparison.
type E12Result struct{ Rows []E12Row }

const (
	e12Files      = 8
	e12FileBlocks = 3
)

// RunE12 runs the shared scenario over all four configurations.
func RunE12(seed uint64) (E12Result, error) {
	var res E12Result
	for _, aware := range []bool{true, false} {
		row, err := runE12LFS(seed, aware)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	for _, aware := range []bool{true, false} {
		row, err := runE12FFS(seed, aware)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func e12Content(rng *sim.RNG) []byte {
	data := make([]byte, e12FileBlocks*device.DataBytes)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	return data
}

func runE12LFS(seed uint64, aware bool) (E12Row, error) {
	row := E12Row{Design: "lfs", HeatAware: aware}
	fs, err := lfs.New(quietDevice(2048), lfs.Params{
		SegmentBlocks: 32, CheckpointBlocks: 32, HeatAware: aware, ReserveSegments: 2,
	})
	if err != nil {
		return row, err
	}
	rng := sim.NewRNG(seed)
	// Heats interleave with ordinary writes, as they would in
	// production (snapshots are taken while the system runs) — this is
	// exactly the arrival pattern that separates the two policies.
	for i := 0; i < e12Files; i++ {
		name := fmt.Sprintf("f%d", i)
		ino, cerr := fs.Create(name, 0)
		if cerr != nil {
			return row, cerr
		}
		if werr := fs.WriteFile(ino, e12Content(rng)); werr != nil {
			return row, werr
		}
		if serr := fs.Sync(); serr != nil {
			return row, serr
		}
		if i%2 == 0 {
			if _, herr := fs.HeatFile(name); herr != nil {
				return row, herr
			}
		}
	}
	// Churn the unheated half.
	for round := 0; round < 10; round++ {
		i := 1 + 2*rng.Intn(e12Files/2)
		ino, lerr := fs.Lookup(fmt.Sprintf("f%d", i))
		if lerr != nil {
			return row, lerr
		}
		if werr := fs.WriteFile(ino, e12Content(rng)); werr != nil {
			return row, werr
		}
		if serr := fs.Sync(); serr != nil {
			return row, serr
		}
	}
	row.Bimodality = fs.Bimodality()
	stranded, pinnedCap := 0, 0
	for _, s := range fs.Segments() {
		if s.State == lfs.SegPinned {
			stranded += s.LiveBlocks + s.DeadBlocks
			pinnedCap += s.Blocks
		}
	}
	if pinnedCap > 0 {
		row.Fragmentation = float64(stranded) / float64(pinnedCap)
	}
	row.VerifiedOK = true
	for i := 0; i < e12Files; i += 2 {
		reps, verr := fs.VerifyFile(fmt.Sprintf("f%d", i))
		if verr != nil || !reps[0].OK {
			row.VerifiedOK = false
		}
	}
	return row, nil
}

func runE12FFS(seed uint64, aware bool) (E12Row, error) {
	row := E12Row{Design: "ffs", HeatAware: aware}
	fs, err := ffs.New(quietDevice(2048), ffs.Params{GroupBlocks: 32, HeatAware: aware})
	if err != nil {
		return row, err
	}
	rng := sim.NewRNG(seed)
	for i := 0; i < e12Files; i++ {
		name := fmt.Sprintf("f%d", i)
		if cerr := fs.Create(name, 0); cerr != nil {
			return row, cerr
		}
		if werr := fs.WriteFile(name, e12Content(rng)); werr != nil {
			return row, werr
		}
		if i%2 == 0 {
			if _, herr := fs.HeatFile(name); herr != nil {
				return row, herr
			}
		}
	}
	for round := 0; round < 10; round++ {
		i := 1 + 2*rng.Intn(e12Files/2)
		if werr := fs.WriteFile(fmt.Sprintf("f%d", i), e12Content(rng)); werr != nil {
			return row, werr
		}
	}
	row.Bimodality = fs.Bimodality()
	row.Fragmentation = fs.FragmentationIndex()
	row.VerifiedOK = true
	for i := 0; i < e12Files; i += 2 {
		rep, verr := fs.VerifyFile(fmt.Sprintf("f%d", i))
		if verr != nil || !rep.OK {
			row.VerifiedOK = false
		}
	}
	return row, nil
}

// Table renders the 2×2 comparison.
func (r E12Result) Table() string {
	var b strings.Builder
	b.WriteString("E12 — heat clustering across FS designs (§4.1: the bimodality argument holds for FFS too)\n")
	b.WriteString("design  policy      bimodality  frag/stranded  heated-files-verify\n")
	for _, row := range r.Rows {
		policy := "aware"
		if !row.HeatAware {
			policy = "oblivious"
		}
		fmt.Fprintf(&b, "%-7s %-11s %10.2f %14.2f %20v\n",
			row.Design, policy, row.Bimodality, row.Fragmentation, row.VerifiedOK)
	}
	b.WriteString("both designs: aware placement keeps clusters modal; oblivious mixes and fragments\n")
	return b.String()
}
