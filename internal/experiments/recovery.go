package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/device"
	"sero/internal/lfs"
)

// E15 — roll-forward recovery. Sweeps the checkpoint interval and
// measures the two sides of the trade the segment journal buys:
// sync latency (a summary-tail ack costs one batched write scaled by
// the delta; a checkpointed ack rewrites metadata proportional to the
// file population) versus mount-time replay (the checkpoint is just a
// replay shortcut — the further apart checkpoints are, the longer the
// summary tail a mount rolls forward).

// E15Row is one checkpoint-interval configuration.
type E15Row struct {
	// CheckpointEvery is the interval in appended blocks; 1 means
	// every non-empty Sync checkpoints (the pre-journal behaviour).
	CheckpointEvery int
	// SyncNS is the mean virtual latency of one small-append Sync.
	SyncNS time.Duration
	// Checkpoints and Records count how the syncs were acked.
	Checkpoints, Records uint64
	// MountNS is the virtual cost of mounting the resulting image.
	MountNS time.Duration
	// ReplayRecords is the summary-tail length the mount rolled
	// forward.
	ReplayRecords int
}

// E15Result holds the recovery sweep.
type E15Result struct {
	Files, Syncs int
	Rows         []E15Row
}

// RunE15 sweeps checkpoint intervals (in appended blocks) over a
// population of files files and syncs small-append syncs each, then
// mounts each image and measures replay. extra, when positive, is
// appended to the standard sweep (the -ckpt-every flag).
func RunE15(files, syncs, extra int) (E15Result, error) {
	res := E15Result{Files: files, Syncs: syncs}
	intervals := []int{1, 64, 256, 1024, 1 << 20}
	if extra > 0 {
		dup := false
		for _, iv := range intervals {
			if iv == extra {
				dup = true
			}
		}
		if !dup {
			intervals = append(intervals, extra)
		}
	}
	for _, every := range intervals {
		dev := quietDevice(16384)
		fs, err := lfs.New(dev, lfs.Params{
			SegmentBlocks: 64, CheckpointBlocks: 64, WritebackBlocks: 64,
			CheckpointEvery: every, HeatAware: true, ReserveSegments: 2,
		})
		if err != nil {
			return res, err
		}
		inos := make([]lfs.Ino, files)
		for i := range inos {
			if inos[i], err = fs.Create(fmt.Sprintf("f%04d", i), 0); err != nil {
				return res, err
			}
			if err := fs.WriteFile(inos[i], make([]byte, device.DataBytes)); err != nil {
				return res, err
			}
		}
		if err := fs.Sync(); err != nil {
			return res, err
		}
		base := fs.Stats()
		data := make([]byte, device.DataBytes)
		start := dev.Clock().Now()
		for n := 0; n < syncs; n++ {
			if err := fs.Write(inos[n%files], 0, data); err != nil {
				return res, err
			}
			if err := fs.Sync(); err != nil {
				return res, err
			}
		}
		syncCost := (dev.Clock().Now() - start) / time.Duration(syncs)
		st := fs.Stats()

		t0 := dev.Clock().Now()
		if _, err := lfs.Mount(dev, fs.Params()); err != nil {
			return res, err
		}
		mountCost := dev.Clock().Now() - t0
		rep, err := lfs.CheckJournal(dev, fs.Params())
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, E15Row{
			CheckpointEvery: every,
			SyncNS:          syncCost,
			Checkpoints:     st.Checkpoints - base.Checkpoints,
			Records:         st.JournalRecords - base.JournalRecords,
			MountNS:         mountCost,
			ReplayRecords:   rep.Records,
		})
	}
	return res, nil
}

// Table renders E15.
func (r E15Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E15 — roll-forward recovery: sync latency vs replay time (%d files, %d small-append syncs)\n",
		r.Files, r.Syncs)
	b.WriteString("ckpt-every    sync-cost   ckpts  records   mount-cost  replayed\n")
	for _, row := range r.Rows {
		every := fmt.Sprintf("%d", row.CheckpointEvery)
		if row.CheckpointEvery >= 1<<20 {
			every = "never"
		}
		fmt.Fprintf(&b, "%-10s %12v %7d %8d %12v %9d\n",
			every, row.SyncNS, row.Checkpoints, row.Records, row.MountNS, row.ReplayRecords)
	}
	if len(r.Rows) > 1 {
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		fmt.Fprintf(&b, "journaled sync is %.1fx cheaper than checkpointed; replay pays %v per mount at the longest tail\n",
			float64(first.SyncNS)/float64(last.SyncNS), last.MountNS)
	}
	return b.String()
}
