package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/manchester"
	"sero/internal/medium"
	"sero/internal/sim"
	"sero/internal/workload"
)

// quietDevice builds a deterministic device for performance runs.
func quietDevice(blocks int) *device.Device {
	dp := device.DefaultParams(blocks)
	mp := medium.DefaultParams(blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	dp.Medium = mp
	return device.New(dp)
}

// E1Result measures the §3 operation-latency contract on the simulated
// device.
type E1Result struct {
	MRSPerBlock time.Duration
	MWSPerBlock time.Duration
	ERSPerDot   time.Duration
	MRSPerDot   time.Duration
	EWSPerBlock time.Duration
	// ErbOverMrb is the per-dot ratio the paper bounds below by 5.
	ErbOverMrb float64
	// EwsOverMws is the sector-level electrical/magnetic write ratio.
	EwsOverMws float64
}

// RunE1 measures per-operation virtual latencies.
func RunE1() (E1Result, error) {
	dev := quietDevice(64)
	data := make([]byte, device.DataBytes)
	for i := range data {
		data[i] = byte(i)
	}
	var res E1Result

	clock := dev.Clock()
	t0 := clock.Now()
	const rounds = 16
	for pba := uint64(0); pba < rounds; pba++ {
		if err := dev.MWS(pba, data); err != nil {
			return res, err
		}
	}
	res.MWSPerBlock = (clock.Now() - t0) / rounds

	t0 = clock.Now()
	for pba := uint64(0); pba < rounds; pba++ {
		if _, err := dev.MRS(pba); err != nil {
			return res, err
		}
	}
	res.MRSPerBlock = (clock.Now() - t0) / rounds
	res.MRSPerDot = res.MRSPerBlock / device.DotsPerBlock

	payload := data[:device.HeatRecordBytes]
	t0 = clock.Now()
	for pba := uint64(32); pba < 32+rounds; pba++ {
		if err := dev.EWS(pba, payload); err != nil {
			return res, err
		}
	}
	res.EWSPerBlock = (clock.Now() - t0) / rounds

	t0 = clock.Now()
	for pba := uint64(32); pba < 32+rounds; pba++ {
		if _, err := dev.ERS(pba, device.HeatRecordBytes); err != nil {
			return res, err
		}
	}
	ersPerBlock := (clock.Now() - t0) / rounds
	res.ERSPerDot = ersPerBlock / time.Duration(device.HeatRecordBytes*16)

	res.ErbOverMrb = float64(res.ERSPerDot) / float64(res.MRSPerDot)
	res.EwsOverMws = float64(res.EWSPerBlock) / float64(res.MWSPerBlock)
	return res, nil
}

// Table renders E1.
func (r E1Result) Table() string {
	var b strings.Builder
	b.WriteString("E1 — sector operation latencies (virtual time)\n")
	fmt.Fprintf(&b, "mws: %10v/block   mrs: %10v/block\n", r.MWSPerBlock, r.MRSPerBlock)
	fmt.Fprintf(&b, "ews: %10v/block   ers: %10v/dot (mrs %v/dot)\n", r.EWSPerBlock, r.ERSPerDot, r.MRSPerDot)
	fmt.Fprintf(&b, "erb/mrb per-dot ratio: %.1f (paper: ≥5)\n", r.ErbOverMrb)
	fmt.Fprintf(&b, "ews/mws per-block ratio: %.1f (paper: ewb slower than mwb)\n", r.EwsOverMws)
	return b.String()
}

// E2Point is one row of the cleaner experiment.
type E2Point struct {
	HeatedFiles    int
	HeatedFraction float64
	// CopiedBlocks is the cleaner bandwidth spent.
	CopiedBlocks uint64
	// WriteCost is virtual time per written block during the churn
	// phase.
	WriteCost time.Duration
	// Bimodality of the segment population at the end.
	Bimodality float64
	// StrandedBlocks counts blocks lost inside pinned segments: live
	// blocks locked in place plus dead blocks that can never be
	// reclaimed because the cleaner must skip the segment.
	StrandedBlocks int
}

// E2Result compares heat-aware and heat-oblivious cleaning as the
// heated fraction grows.
type E2Result struct {
	Aware     []E2Point
	Oblivious []E2Point
}

// RunE2 sweeps the number of heated files and measures cleaner cost
// under both policies.
func RunE2(seed uint64) (E2Result, error) {
	var res E2Result
	for _, aware := range []bool{true, false} {
		for _, heats := range []int{0, 4, 8, 16, 24} {
			pt, err := runE2Point(seed, aware, heats)
			if err != nil {
				return res, err
			}
			if aware {
				res.Aware = append(res.Aware, pt)
			} else {
				res.Oblivious = append(res.Oblivious, pt)
			}
		}
	}
	return res, nil
}

func runE2Point(seed uint64, aware bool, heats int) (E2Point, error) {
	// Sized so the churn phase actually exhausts free segments and
	// forces cleaning — the regime where the policies diverge.
	dev := quietDevice(1024)
	fs, err := lfs.New(dev, lfs.Params{
		SegmentBlocks: 32, CheckpointBlocks: 32, HeatAware: aware, ReserveSegments: 2,
	})
	if err != nil {
		return E2Point{}, err
	}
	rng := sim.NewRNG(seed)

	// Phase 1: create a file population and heat some of it.
	const files = 32
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("f-%03d", i)
		ino, cerr := fs.Create(name, 0)
		if cerr != nil {
			return E2Point{}, cerr
		}
		data := make([]byte, 4*device.DataBytes)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		if werr := fs.WriteFile(ino, data); werr != nil {
			return E2Point{}, werr
		}
		if serr := fs.Sync(); serr != nil {
			return E2Point{}, serr
		}
		if i < heats {
			if _, herr := fs.HeatFile(name); herr != nil {
				return E2Point{}, herr
			}
		}
	}

	// Phase 2: churn the unheated files with a skewed partial-rewrite
	// mix (hot files absorb most writes, cold blocks stay live), so
	// victim segments hold a live/dead mix and the cleaner must copy.
	clock := dev.Clock()
	t0 := clock.Now()
	copied0 := fs.Stats().CleanerCopied
	var written uint64
	cold := files - heats
	hot := cold / 5
	if hot < 1 {
		hot = 1
	}
	for round := 0; round < 150; round++ {
		var i int
		if rng.Float64() < 0.9 {
			i = heats + rng.Intn(hot)
		} else {
			i = heats + hot + rng.Intn(cold-hot)
		}
		ino, lerr := fs.Lookup(fmt.Sprintf("f-%03d", i))
		if lerr != nil {
			return E2Point{}, lerr
		}
		data := make([]byte, device.DataBytes)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		blk := rng.Intn(4)
		if werr := fs.Write(ino, uint64(blk*device.DataBytes), data); werr != nil {
			return E2Point{}, werr
		}
		if serr := fs.Sync(); serr != nil {
			return E2Point{}, serr
		}
		written++
	}
	fs.Clean(fs.FreeSegments() + 2)

	stranded := 0
	for _, s := range fs.Segments() {
		if s.State == lfs.SegPinned {
			stranded += s.LiveBlocks + s.DeadBlocks
		}
	}
	st := fs.Stats()
	return E2Point{
		HeatedFiles:    heats,
		HeatedFraction: float64(st.HeatedLineBlock) / float64(dev.Blocks()),
		CopiedBlocks:   st.CleanerCopied - copied0,
		WriteCost:      (clock.Now() - t0) / time.Duration(written),
		Bimodality:     fs.Bimodality(),
		StrandedBlocks: stranded,
	}, nil
}

// Table renders E2.
func (r E2Result) Table() string {
	var b strings.Builder
	b.WriteString("E2 — cleaner cost vs heated fraction (heat-aware vs oblivious)\n")
	b.WriteString("policy     heated  GC-copied  write-cost/blk  bimodality  stranded-blocks\n")
	row := func(policy string, p E2Point) {
		fmt.Fprintf(&b, "%-10s %6d %10d %15v %11.2f %16d\n",
			policy, p.HeatedFiles, p.CopiedBlocks, p.WriteCost, p.Bimodality, p.StrandedBlocks)
	}
	for _, p := range r.Aware {
		row("aware", p)
	}
	for _, p := range r.Oblivious {
		row("oblivious", p)
	}
	b.WriteString("paper §4.1: clustering ⇒ bimodal segments, no stranded space, stable write cost\n")
	return b.String()
}

// E3Result measures segment bimodality under the snapshot workload.
type E3Result struct {
	AwareBimodality     float64
	ObliviousBimodality float64
	AwareHistogram      [10]int
	ObliviousHistogram  [10]int
}

// RunE3 runs the database-snapshot workload under both policies and
// histograms per-segment heated fractions.
func RunE3(seed uint64) (E3Result, error) {
	var res E3Result
	for _, aware := range []bool{true, false} {
		dev := quietDevice(16384)
		fs, err := lfs.New(dev, lfs.Params{
			SegmentBlocks: 32, CheckpointBlocks: 32, HeatAware: aware, ReserveSegments: 2,
		})
		if err != nil {
			return res, err
		}
		w := workload.Snapshot{Tables: 3, TableBlocks: 4, Updates: 300, SnapshotEvery: 60, Affinity: 1}
		if _, err := workload.Apply(fs, w.Generate(sim.NewRNG(seed))); err != nil {
			return res, err
		}
		var hist [10]int
		for _, s := range fs.Segments() {
			if s.State == lfs.SegFree {
				continue
			}
			used := s.HeatedBlocks + s.LiveBlocks + s.DeadBlocks
			if used == 0 {
				continue
			}
			f := float64(s.HeatedBlocks) / float64(used)
			bkt := int(f * 9.999)
			hist[bkt]++
		}
		if aware {
			res.AwareBimodality = fs.Bimodality()
			res.AwareHistogram = hist
		} else {
			res.ObliviousBimodality = fs.Bimodality()
			res.ObliviousHistogram = hist
		}
	}
	return res, nil
}

// Table renders E3.
func (r E3Result) Table() string {
	var b strings.Builder
	b.WriteString("E3 — segment heated-fraction distribution (snapshot workload)\n")
	b.WriteString("bucket:      0-10% ... 90-100%\n")
	fmt.Fprintf(&b, "aware:      %v  bimodality %.2f\n", r.AwareHistogram, r.AwareBimodality)
	fmt.Fprintf(&b, "oblivious:  %v  bimodality %.2f\n", r.ObliviousHistogram, r.ObliviousBimodality)
	b.WriteString("paper §4.1: clustering yields only mostly-heated and mostly-unheated segments\n")
	return b.String()
}

// E5Point is one row of the hash-overhead experiment.
type E5Point struct {
	LogN uint8
	// OverheadFraction is hash blocks per line (1/2^N).
	OverheadFraction float64
	// HeatCost is the virtual time of the heat operation.
	HeatCost time.Duration
}

// E5Result sweeps line sizes, plus the Manchester/WOM coding
// comparison of §8.
type E5Result struct {
	Points []E5Point
	// ManchesterDotsPerBit and WOMDotsPerBit compare coding density.
	ManchesterDotsPerBit float64
	WOMDotsPerBit        float64
	// Measured record footprints: dots actually heated for one heat
	// record under each coding, and whether a cell-level tamper code
	// (HH) exists.
	ManchesterRecordDots  int
	WOMRecordDots         int
	ManchesterCellTamper  bool
	WOMCellTamper         bool
	ManchesterHeatedCount int
	WOMHeatedCount        int
}

// RunE5 measures space overhead and heat cost versus line size.
func RunE5() (E5Result, error) {
	var res E5Result
	for logN := uint8(1); logN <= 8; logN++ {
		blocks := 1 << (logN + 1)
		if blocks < 64 {
			blocks = 64
		}
		dev := quietDevice(blocks)
		data := make([]byte, device.DataBytes)
		n := uint64(1) << logN
		for pba := uint64(0); pba < n; pba++ {
			for i := range data {
				data[i] = byte(pba + uint64(i))
			}
			if err := dev.MWS(pba, data); err != nil {
				return res, err
			}
		}
		t0 := dev.Clock().Now()
		if _, err := dev.HeatLine(0, logN); err != nil {
			return res, err
		}
		res.Points = append(res.Points, E5Point{
			LogN:             logN,
			OverheadFraction: 1 / float64(n),
			HeatCost:         dev.Clock().Now() - t0,
		})
	}
	res.ManchesterDotsPerBit = manchester.DotsPerBit(false)
	res.WOMDotsPerBit = manchester.DotsPerBit(true)
	res.ManchesterRecordDots = manchester.EncodedDots(device.HeatRecordBytes)
	res.WOMRecordDots = manchester.WOMEncodedDots(device.HeatRecordBytes)
	res.ManchesterCellTamper = true
	res.WOMCellTamper = false

	// Measure the heated-dot footprint of a real heat record under
	// both codings on otherwise identical devices.
	for _, coding := range []device.Coding{device.CodingManchester, device.CodingWOM} {
		dp := device.DefaultParams(8)
		dp.Coding = coding
		mp := medium.DefaultParams(8, device.DotsPerBlock)
		mp.ReadNoiseSigma = 0
		mp.ResidualInPlaneSignal = 0
		mp.ThermalCrosstalk = 0
		dp.Medium = mp
		dev := device.New(dp)
		data := make([]byte, device.DataBytes)
		for pba := uint64(0); pba < 4; pba++ {
			if err := dev.MWS(pba, data); err != nil {
				return res, err
			}
		}
		if _, err := dev.HeatLine(0, 2); err != nil {
			return res, err
		}
		if coding == device.CodingManchester {
			res.ManchesterHeatedCount = dev.Medium().HeatedCount()
		} else {
			res.WOMHeatedCount = dev.Medium().HeatedCount()
		}
	}
	return res, nil
}

// Table renders E5.
func (r E5Result) Table() string {
	var b strings.Builder
	b.WriteString("E5 — line-size sweep: hash space overhead and heat cost\n")
	b.WriteString("logN  blocks  overhead  heat-cost\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%4d %7d %8.3f%% %10v\n", p.LogN, 1<<p.LogN, p.OverheadFraction*100, p.HeatCost)
	}
	fmt.Fprintf(&b, "coding: Manchester %.2f dots/bit, Rivest–Shamir WOM %.2f dots/bit (2 writes)\n",
		r.ManchesterDotsPerBit, r.WOMDotsPerBit)
	fmt.Fprintf(&b, "record footprint: Manchester %d dots (%d heated), WOM %d dots (%d heated)\n",
		r.ManchesterRecordDots, r.ManchesterHeatedCount, r.WOMRecordDots, r.WOMHeatedCount)
	fmt.Fprintf(&b, "cell-level tamper code (HH): Manchester %v, WOM %v (WOM detection via record/hash only)\n",
		r.ManchesterCellTamper, r.WOMCellTamper)
	b.WriteString("paper §8: overhead negligible for large N; WOM codes for small N\n")
	return b.String()
}

// E7Point is one row of the erb-reliability experiment.
type E7Point struct {
	NoiseSigma float64
	Retries    int
	// MissRate is the fraction of heated dots read as un-heated.
	MissRate float64
	// FalseRate is the fraction of healthy dots read as heated.
	FalseRate float64
}

// E7Result sweeps read noise and erb retries.
type E7Result struct{ Points []E7Point }

// RunE7 measures erb misdetection rates.
func RunE7(seed uint64) E7Result {
	var res E7Result
	const dots = 4000
	for _, sigma := range []float64{0.02, 0.05, 0.1, 0.2} {
		for _, retries := range []int{1, 2, 4, 8} {
			p := medium.DefaultParams(2, dots)
			p.ReadNoiseSigma = sigma
			p.Seed = seed
			m := medium.New(p)
			// Row 0: heated dots. Row 1: healthy dots.
			for i := 0; i < dots; i++ {
				m.EWB(i)
				m.MWB(dots+i, i%2 == 0)
			}
			misses, falses := 0, 0
			erb := func(i int) bool {
				for r := 0; r < retries; r++ {
					if m.ERB(i) {
						return true
					}
				}
				return false
			}
			for i := 0; i < dots; i++ {
				if !erb(i) {
					misses++
				}
				if erb(dots + i) {
					falses++
				}
			}
			res.Points = append(res.Points, E7Point{
				NoiseSigma: sigma,
				Retries:    retries,
				MissRate:   float64(misses) / dots,
				FalseRate:  float64(falses) / dots,
			})
		}
	}
	return res
}

// Table renders E7.
func (r E7Result) Table() string {
	var b strings.Builder
	b.WriteString("E7 — erb reliability vs read noise and retries\n")
	b.WriteString("noise σ  retries  miss-rate  false-positive\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%7.2f %8d %10.4f %15.5f\n", p.NoiseSigma, p.Retries, p.MissRate, p.FalseRate)
	}
	b.WriteString("misses fall geometrically with retries; false positives stay ≈0 below σ=0.2\n")
	return b.String()
}
