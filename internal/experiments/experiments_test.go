package experiments

import (
	"strings"
	"testing"
	"time"

	"sero/internal/physics"
)

func TestRunFig2AllMatch(t *testing.T) {
	res := RunFig2()
	if !res.AllMatch {
		t.Fatalf("state machine deviates from Fig 2:\n%s", res.Table())
	}
	if len(res.Transitions) != 9 { // 3 states × 3 ops
		t.Fatalf("%d transitions", len(res.Transitions))
	}
	if !strings.Contains(res.Table(), "all transitions match: true") {
		t.Fatal("table rendering")
	}
}

func TestRunFig3Layout(t *testing.T) {
	res, err := RunFig3(3)
	if err != nil {
		t.Fatal(err)
	}
	// The 64-byte record = 512 cells, all HU or UH.
	if res.Block0HU+res.Block0UH != 512 {
		t.Fatalf("written cells %d, want 512", res.Block0HU+res.Block0UH)
	}
	if res.Block0UU == 0 {
		t.Fatal("no unused cells — metadata space missing")
	}
	if res.MetaSpaceBits != 3584 {
		t.Fatalf("meta space %d bits, paper says 3584", res.MetaSpaceBits)
	}
	if !res.DataBlocksMagnetic {
		t.Fatal("data blocks not magnetically readable after heat")
	}
	if res.MaxAdjacentHeated > 2 {
		t.Fatalf("adjacent heated dots %d > 2", res.MaxAdjacentHeated)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestFigTablesRender(t *testing.T) {
	f7 := Fig7Table(physics.RunFig7(1))
	if !strings.Contains(f7, "as-grown") || !strings.Contains(f7, "700") {
		t.Fatalf("Fig7 table:\n%s", f7)
	}
	f8 := Fig8Table(physics.RunFig8(1))
	if !strings.Contains(f8, "peak at 2θ") {
		t.Fatal("Fig8 table")
	}
	f9 := Fig9Table(physics.RunFig9(1))
	if !strings.Contains(f9, "41") {
		t.Fatalf("Fig9 table:\n%s", f9)
	}
}

func TestRunE1Contract(t *testing.T) {
	res, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if res.ErbOverMrb < 5 {
		t.Fatalf("erb/mrb ratio %.2f < 5", res.ErbOverMrb)
	}
	if res.EwsOverMws <= 1 {
		t.Fatalf("ews/mws ratio %.2f not > 1", res.EwsOverMws)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE2Shape(t *testing.T) {
	res, err := RunE2(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aware) != 5 || len(res.Oblivious) != 5 {
		t.Fatalf("points %d/%d", len(res.Aware), len(res.Oblivious))
	}
	// At the highest heated load, the aware policy must strand nothing
	// and stay bimodal; the oblivious policy must strand live blocks.
	lastAware := res.Aware[len(res.Aware)-1]
	lastObl := res.Oblivious[len(res.Oblivious)-1]
	if lastAware.StrandedBlocks != 0 {
		t.Fatalf("aware policy stranded %d blocks", lastAware.StrandedBlocks)
	}
	if lastAware.Bimodality != 1 {
		t.Fatalf("aware bimodality %g", lastAware.Bimodality)
	}
	if lastObl.StrandedBlocks == 0 {
		t.Fatal("oblivious policy stranded nothing — ablation is vacuous")
	}
	if lastObl.Bimodality >= 1 {
		t.Fatalf("oblivious bimodality %g, expected < 1", lastObl.Bimodality)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE3Shape(t *testing.T) {
	res, err := RunE3(11)
	if err != nil {
		t.Fatal(err)
	}
	if res.AwareBimodality != 1 {
		t.Fatalf("aware bimodality %g", res.AwareBimodality)
	}
	if res.ObliviousBimodality >= res.AwareBimodality {
		t.Fatalf("oblivious %g not worse than aware %g",
			res.ObliviousBimodality, res.AwareBimodality)
	}
	// The oblivious histogram must have mass in the mid buckets.
	mid := 0
	for i := 1; i < 9; i++ {
		mid += res.ObliviousHistogram[i]
	}
	if mid == 0 {
		t.Fatal("oblivious run produced no mixed segments")
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE4AllCovered(t *testing.T) {
	res, err := RunE4(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 11 {
		t.Fatalf("%d attacks", len(res.Results))
	}
	for _, a := range res.Results {
		if !a.Prevented && !a.Detected {
			t.Errorf("attack %s: %s", a.Name, a.Notes)
		}
	}
	if !strings.Contains(res.Table(), "bulk-erase") {
		t.Fatal("table rendering")
	}
}

func TestRunE5Shape(t *testing.T) {
	res, err := RunE5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Overhead halves with each N; heat cost grows with line size.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].OverheadFraction >= res.Points[i-1].OverheadFraction {
			t.Fatal("overhead not decreasing")
		}
		if res.Points[i].HeatCost <= res.Points[i-1].HeatCost {
			t.Fatal("heat cost not increasing with line size")
		}
	}
	if res.WOMDotsPerBit >= res.ManchesterDotsPerBit {
		t.Fatal("WOM not denser than Manchester")
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE7Shape(t *testing.T) {
	res := RunE7(17)
	if len(res.Points) != 16 {
		t.Fatalf("%d points", len(res.Points))
	}
	byKey := make(map[[2]int]E7Point)
	for _, p := range res.Points {
		byKey[[2]int{int(p.NoiseSigma * 100), p.Retries}] = p
	}
	// More retries must not increase the miss rate (monotone per
	// noise level), and at 8 retries the miss rate must be small.
	for _, sigma := range []int{2, 5, 10, 20} {
		if byKey[[2]int{sigma, 8}].MissRate > byKey[[2]int{sigma, 1}].MissRate {
			t.Fatalf("σ=%d: retries made it worse", sigma)
		}
		if byKey[[2]int{sigma, 8}].MissRate > 0.01 {
			t.Fatalf("σ=%d: miss rate %g at 8 retries", sigma, byKey[[2]int{sigma, 8}].MissRate)
		}
	}
	// False positives must be negligible at the default SNR.
	if byKey[[2]int{5, 8}].FalseRate > 0.001 {
		t.Fatalf("false positive rate %g", byKey[[2]int{5, 8}].FalseRate)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE6Works(t *testing.T) {
	res, err := RunE6(19)
	if err != nil {
		t.Fatal(err)
	}
	if !res.VentiVerifyOK || !res.FossilVerifyOK || !res.FossilLookupOK {
		t.Fatalf("archival verification failed: %+v", res)
	}
	if res.VentiDeduped == 0 {
		t.Fatal("venti snapshots shared nothing")
	}
	if res.FossilHeated == 0 {
		t.Fatal("no fossil nodes heated")
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE8Ageing(t *testing.T) {
	res, err := RunE8(23)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsUntilFull == 0 {
		t.Fatal("no records ingested")
	}
	// RO ratio must be monotone non-decreasing and end high.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].ReadOnlyRatio+1e-9 < res.Points[i-1].ReadOnlyRatio {
			t.Fatal("read-only ratio decreased")
		}
	}
	final := res.Points[len(res.Points)-1]
	if final.ReadOnlyRatio < 0.5 {
		t.Fatalf("device ended only %.2f read-only", final.ReadOnlyRatio)
	}
	if res.ShreddedRecords == 0 {
		t.Fatal("retention policy never shredded")
	}
	if !res.Decommissionable {
		t.Fatal("device not decommissionable after all periods lapsed")
	}
	if !res.EvidenceSurvives {
		t.Fatal("shredded records lost their evidence")
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE9DefectShape(t *testing.T) {
	res, err := RunE9(29)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Low defect rates must be fully absorbed by the ECC.
	if res.Points[0].SectorFailRate != 0 {
		t.Fatalf("0.05%% defects already failing: %+v", res.Points[0])
	}
	// Failure rate must be non-decreasing in defect rate.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].SectorFailRate+1e-9 < res.Points[i-1].SectorFailRate {
			t.Fatal("fail rate not monotone")
		}
	}
	// The top density must show measurable failures (the sweep spans
	// the margin).
	if res.Points[len(res.Points)-1].SectorFailRate == 0 {
		t.Fatal("sweep never reached the ECC limit")
	}
	// Defects must never be mistaken for electrical data.
	for _, p := range res.Points {
		if p.MisprobedHeated != 0 {
			t.Fatalf("defects probed as heated at rate %g", p.DefectRate)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE10PulseShape(t *testing.T) {
	res := RunE10()
	if len(res.Points) != 6 {
		t.Fatalf("%d points", len(res.Points))
	}
	byTemp := make(map[float64]E10Point)
	for _, p := range res.Points {
		byTemp[p.PulseTempC] = p
	}
	// Below the mixing onset's equilibrium ceiling, no amount of
	// pulsing destroys the dot.
	if byTemp[550].PulsesToHeat != 0 {
		t.Fatalf("550 °C pulses destroyed the dot in %d", byTemp[550].PulsesToHeat)
	}
	// At 900 °C one pulse suffices.
	if byTemp[900].PulsesToHeat != 1 {
		t.Fatalf("900 °C needs %d pulses", byTemp[900].PulsesToHeat)
	}
	// Pulses-to-heat decreases with temperature (among achievable
	// ones).
	prev := 1 << 30
	for _, temp := range []float64{600, 650, 700, 800, 900} {
		n := byTemp[temp].PulsesToHeat
		if n == 0 || n > prev {
			t.Fatalf("pulses-to-heat not decreasing: %d at %g", n, temp)
		}
		prev = n
	}
	// Neighbour at the default 0.4 attenuation must never die.
	for _, p := range res.Points {
		if p.WritesUntilNeighborDead != 0 {
			t.Fatalf("neighbour dies after %d writes at %g °C", p.WritesUntilNeighborDead, p.PulseTempC)
		}
	}
	// Poor heat sinking (factor ≥ 0.7) must make neighbours mortal —
	// the §7 warning has to be visible in the model.
	last := res.Attenuation[len(res.Attenuation)-1]
	if last.Factor != 0.7 || last.WritesUntilNeighborDead == 0 {
		t.Fatalf("0.7 attenuation: %+v", last)
	}
	if msg := res.VerifyAgainstMedium(); msg != "" {
		t.Fatal(msg)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE11BaselineComparison(t *testing.T) {
	res, err := RunE11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 5 {
		t.Fatalf("%d technologies", len(res.Results))
	}
	byName := make(map[string]int)
	for i, r := range res.Results {
		byName[r.Technology] = i
	}
	sero := res.Results[byName["sero"]]
	// SERO: scoped freeze, rewrite physically possible, but DETECTED —
	// the only technology with all three.
	if !sero.FreezeScoped {
		t.Fatal("sero could not freeze a single record")
	}
	if !sero.RewriteSucceeded {
		t.Fatal("sero model resisted the raw rewrite — it should detect, not resist")
	}
	if !sero.Detected {
		t.Fatal("sero failed to detect the rewrite")
	}
	// No baseline detects.
	for _, name := range []string{"software-worm", "lto3-tape", "optical-worm", "fuse-disk"} {
		if res.Results[byName[name]].Detected {
			t.Errorf("%s claims detection", name)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE12ClusteringComparison(t *testing.T) {
	res, err := RunE12(37)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byKey := make(map[string]E12Row)
	for _, r := range res.Rows {
		key := r.Design
		if r.HeatAware {
			key += "-aware"
		} else {
			key += "-oblivious"
		}
		byKey[key] = r
	}
	// Both designs: aware placement is perfectly bimodal and verifies.
	for _, k := range []string{"lfs-aware", "ffs-aware"} {
		if byKey[k].Bimodality != 1 {
			t.Errorf("%s bimodality %g", k, byKey[k].Bimodality)
		}
	}
	// Both designs: oblivious placement degrades.
	for _, k := range []string{"lfs-oblivious", "ffs-oblivious"} {
		if byKey[k].Bimodality >= 1 {
			t.Errorf("%s bimodality %g, expected < 1", k, byKey[k].Bimodality)
		}
	}
	// Aware beats oblivious on the fragmentation/stranding metric
	// within each design.
	if byKey["lfs-aware"].Fragmentation >= byKey["lfs-oblivious"].Fragmentation {
		t.Error("lfs: aware not better on stranding")
	}
	if byKey["ffs-aware"].Fragmentation >= byKey["ffs-oblivious"].Fragmentation {
		t.Error("ffs: aware not better on fragmentation")
	}
	// Tamper evidence is policy-independent: everything verifies.
	for k, r := range byKey {
		if !r.VerifiedOK {
			t.Errorf("%s: heated files failed verification", k)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE13ScrubTradeoff(t *testing.T) {
	res, err := RunE13(41)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Detection latency must grow with the interval; duty cycle must
	// shrink.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].DetectionLatency < res.Points[i-1].DetectionLatency {
			t.Fatal("latency not growing with interval")
		}
		if res.Points[i].AuditDutyCycle > res.Points[i-1].AuditDutyCycle {
			t.Fatal("duty cycle not shrinking with interval")
		}
	}
	// Latency is bounded by one interval plus one audit pass.
	for _, p := range res.Points {
		if p.DetectionLatency > p.Interval+time.Second {
			t.Fatalf("latency %v far exceeds interval %v", p.DetectionLatency, p.Interval)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunE18ServingSweep(t *testing.T) {
	res, err := RunE18(2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (sessions 1 and 2)", len(res.Rows))
	}
	// The workload is partitioned, not duplicated: every session count
	// applies (nearly) the same total op budget.
	for _, row := range res.Rows {
		if row.Ops == 0 || row.Throughput <= 0 {
			t.Fatalf("empty row %+v", row)
		}
		if row.ReadP50 > row.ReadP99 || row.ReadP99 > row.Worst {
			t.Fatalf("disordered latencies %+v", row)
		}
	}
	if a, b := res.Rows[0].Ops, res.Rows[1].Ops; a > b+b/8 || b > a+a/8 {
		t.Fatalf("op totals diverge across session counts: %d vs %d", a, b)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

// TestRunE22Striping gates the array PR's acceptance bar: ≥1.5x
// serving throughput at width 4, exact width-1 virtual-time identity,
// reconstruction under member loss, and a confirmed auditor heal.
func TestRunE22Striping(t *testing.T) {
	res, err := RunE22(2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Width1Identical {
		t.Fatalf("width-1 virtual time diverged: raw %v vs array %v", res.RawVirtual, res.Width1Virtual)
	}
	wide := res.Widths[len(res.Widths)-1]
	if wide.Devices != 4 || wide.Speedup < 1.5 {
		t.Fatalf("width-4 speedup %.2fx below the 1.5x bar", wide.Speedup)
	}
	if wide.ParityWrites == 0 {
		t.Fatal("striped run flushed no parity")
	}
	if res.DegradedReads == 0 || res.ReconstructedBlocks == 0 {
		t.Fatalf("degraded run never reconstructed: %+v", res)
	}
	if res.Degraded.Throughput <= 0 {
		t.Fatal("degraded run has no throughput")
	}
	if !res.Healed || res.HealSteps > res.HealBound {
		t.Fatalf("self-healing failed: healed=%v steps=%d bound=%d", res.Healed, res.HealSteps, res.HealBound)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}
