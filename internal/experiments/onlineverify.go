package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/attack"
	"sero/internal/device"
	"sero/internal/medium"
	"sero/internal/serve"
	"sero/internal/sim"
	"sero/internal/workload"
)

// E21 — online verification. Two questions about the continuous
// background auditor:
//
//  1. Detection latency: a tamper of a random heated block at a random
//     moment during live traffic must surface within the documented
//     2*ceil(L/batch) audit-step bound. Measured across batch sizes by
//     forging a frame into a live system and counting the steps until
//     the auditor reports the line.
//  2. Foreground cost: audit work runs off-clock (shadow planes, never
//     the shared clock), so the serving trajectory with continuous
//     verification armed must be virtual-time identical to the same
//     run without it. Measured by replaying the e18 serving mix twice
//     — audit off and audit on — and comparing virtual times; the
//     audit counters report the shadow device cost the sweeps would
//     have added on-clock.

// E21Batch is the detection-latency measurement at one batch size.
type E21Batch struct {
	// Batch is the lines-verified-per-step batch size.
	Batch int
	// Bound is the documented worst case in steps: 2*ceil(L/Batch).
	Bound int
	// MeanSteps and MaxSteps summarise the observed steps-to-detection
	// across trials.
	MeanSteps float64
	MaxSteps  int
	// ShadowNSPerStep is the mean off-clock device cost of one step.
	ShadowNSPerStep int64
}

// E21Result holds both measurements.
type E21Result struct {
	// Lines is the heated-line population L the detection trials swept.
	Lines int
	// Trials is the tamper trials run per batch size.
	Trials int
	// PerBatch holds the detection-latency sweep.
	PerBatch []E21Batch
	// OffVirtual and OnVirtual are the serving run's virtual time with
	// audit disarmed and armed; the off-clock contract demands they be
	// identical.
	OffVirtual, OnVirtual time.Duration
	// Sessions, Files, MixOps describe the serving runs.
	Sessions, Files, MixOps int
	// On is the audit-armed serving result (the audit counters below
	// come from it).
	On serve.Result
}

// forgeRandomBlock writes a forged valid-looking frame into a random
// member block of a random heated line, under the stripe locks like a
// live attacker racing traffic, and returns the tampered line start.
func forgeRandomBlock(dev *device.Device, rng *sim.RNG) uint64 {
	lines := dev.Lines()
	li := lines[rng.Uint64()%uint64(len(lines))]
	member := li.Start + 1 + rng.Uint64()%(li.Blocks()-1)
	forged := make([]byte, device.DataBytes)
	for i := range forged {
		forged[i] = byte(rng.Uint64())
	}
	bits := device.ForgedFrameBits(member, forged)
	base := int(member) * device.DotsPerBlock
	start := member
	if start > 0 {
		start--
	}
	dev.TamperRaw(start, member+2, func(m *medium.Medium) {
		for i, b := range bits {
			m.MWB(base+i, b)
		}
	})
	return li.Start
}

// e21Trial builds a live victim system (heated population + serving
// churn), tampers one random block and counts audit steps to
// detection at the given batch size.
func e21Trial(batch int, seed uint64) (steps, lines int, shadowNS int64, err error) {
	h, err := attack.NewQuietHarness(attack.QuietConfig{Blocks: 4096, Seed: seed})
	if err != nil {
		return 0, 0, 0, err
	}
	fs := h.FS()
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("e21-frozen-%d", i)
		ino, err := fs.Create(name, uint8(i%4))
		if err != nil {
			return 0, 0, 0, err
		}
		data := make([]byte, 2*device.DataBytes)
		for j := range data {
			data[j] = byte(i + 1)
		}
		if err := fs.WriteFile(ino, data); err != nil {
			return 0, 0, 0, err
		}
		if _, err := fs.HeatFile(name); err != nil {
			return 0, 0, 0, err
		}
	}
	if err := fs.Sync(); err != nil {
		return 0, 0, 0, err
	}
	mix := workload.DefaultMix(8, 128)
	mix.Prefix = "e21"
	if _, err := workload.Apply(fs, mix.Generate(sim.NewRNG(seed^0xE21))); err != nil {
		return 0, 0, 0, err
	}

	dev := fs.Device().(*device.Device)
	lines = len(dev.Lines())
	tampered := forgeRandomBlock(dev, sim.NewRNG(seed*2654435761))
	found := func() bool {
		for _, f := range fs.AuditFindings() {
			if f.Line.Start == tampered {
				return true
			}
		}
		return false
	}
	before := fs.Stats()
	bound := 2 * ((lines + batch - 1) / batch)
	for steps = 1; steps <= bound; steps++ {
		fs.AuditStep(batch)
		if found() {
			break
		}
	}
	if !found() {
		return 0, lines, 0, fmt.Errorf("e21: tamper of line %d not detected within bound %d (batch %d)", tampered, bound, batch)
	}
	after := fs.Stats()
	shadowNS = int64(after.AuditDeviceNS-before.AuditDeviceNS) / int64(steps)
	return steps, lines, shadowNS, nil
}

// RunE21 runs the detection-latency sweep and the audit-tax serving
// pair.
func RunE21(seed uint64) (E21Result, error) {
	const trials = 3
	res := E21Result{Trials: trials}
	for _, batch := range []int{1, 2, 4, 8} {
		b := E21Batch{Batch: batch}
		sum := 0
		var shadow int64
		for t := 0; t < trials; t++ {
			steps, lines, ns, err := e21Trial(batch, seed+uint64(batch*100+t))
			if err != nil {
				return E21Result{}, err
			}
			res.Lines = lines
			b.Bound = 2 * ((lines + batch - 1) / batch)
			sum += steps
			shadow += ns
			if steps > b.MaxSteps {
				b.MaxSteps = steps
			}
		}
		b.MeanSteps = float64(sum) / trials
		b.ShadowNSPerStep = shadow / trials
		res.PerBatch = append(res.PerBatch, b)
	}

	// The audit-tax pair: same serving mix over a heated population,
	// audit disarmed vs armed. One session: at j=1 the virtual-time
	// trajectory is deterministic, so equality is exact — the same
	// byte-identical contract the attack soak test asserts.
	const sessions, files, ops = 1, 256, 1024
	res.Sessions, res.Files, res.MixOps = sessions, files, ops
	cfg := serve.DefaultConfig(sessions, files, ops)
	cfg.Seed = seed
	cfg.SegmentBlocks = 64
	cfg.SyncEvery = 32
	cfg.HeatFiles = 8
	off, err := serve.Run(cfg)
	if err != nil {
		return E21Result{}, fmt.Errorf("e21: audit-off run: %w", err)
	}
	cfg.AuditEvery = 64
	on, err := serve.Run(cfg)
	if err != nil {
		return E21Result{}, fmt.Errorf("e21: audit-on run: %w", err)
	}
	res.OffVirtual = time.Duration(off.VirtualNS)
	res.OnVirtual = time.Duration(on.VirtualNS)
	res.On = on
	return res, nil
}

// Table renders E21.
func (r E21Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E21 — online verification: detection latency over %d heated lines (%d trials per batch)\n\n", r.Lines, r.Trials)
	b.WriteString("batch   bound   mean-steps   max-steps   shadow-ns/step\n")
	for _, pb := range r.PerBatch {
		fmt.Fprintf(&b, "%5d %7d %12.1f %11d %16d\n",
			pb.Batch, pb.Bound, pb.MeanSteps, pb.MaxSteps, pb.ShadowNSPerStep)
	}
	fmt.Fprintf(&b, "\naudit tax on the serving mix (%d sessions, %d files, %d ops):\n", r.Sessions, r.Files, r.MixOps)
	fmt.Fprintf(&b, "  audit off: %v virtual\n", r.OffVirtual)
	fmt.Fprintf(&b, "  audit on:  %v virtual  (steps=%d rounds=%d lines-checked=%d findings=%d shadow=%v)\n",
		r.OnVirtual, r.On.AuditSteps, r.On.AuditRounds, r.On.AuditLinesChecked,
		r.On.AuditFindings, time.Duration(r.On.AuditDeviceNS))
	if r.OffVirtual == r.OnVirtual {
		b.WriteString("  identical virtual time: audit sweeps run off-clock, the foreground tax is zero by construction\n")
	} else {
		b.WriteString("  WARNING: virtual times diverge — the off-clock contract is broken\n")
	}
	return b.String()
}
