package experiments

import (
	"fmt"
	"strings"

	"sero/internal/medium"
	"sero/internal/physics"
)

// E10 — heat-pulse engineering (§7's open questions: "More research
// will be needed to determine the time required, the amount of energy
// dissipated ... and the effect of heating one dot on the neighbouring
// dots"). The electrical write is a probe-current pulse; its peak
// temperature and dwell decide (a) how many pulses destroy the target
// dot and (b) how much collateral damage neighbours accumulate. The
// experiment sweeps pulse temperature and the substrate heat-sinking
// quality (neighbour attenuation factor).

// E10Point is one pulse configuration.
type E10Point struct {
	PulseTempC float64
	// SingleMix is the interface mixing of one pulse on a pristine dot.
	SingleMix float64
	// PulsesToHeat is the number of pulses needed to destroy the dot,
	// or 0 when no number of pulses suffices (equilibrium-limited).
	PulsesToHeat int
	// NeighborDamagePerWrite is the damage a neighbour accumulates per
	// adjacent write at the default attenuation.
	NeighborDamagePerWrite float64
	// WritesUntilNeighborDead is how many adjacent writes destroy a
	// neighbour dot (0 = never).
	WritesUntilNeighborDead int
}

// E10Result is the sweep.
type E10Result struct {
	Points []E10Point
	// AttenuationSweep: at a fixed 900 °C pulse, writes-to-kill-a-
	// neighbour versus the neighbour attenuation factor.
	Attenuation []E10Attenuation
}

// E10Attenuation is one heat-sinking configuration.
type E10Attenuation struct {
	Factor                  float64
	WritesUntilNeighborDead int
}

// RunE10 sweeps pulse temperature and substrate attenuation.
func RunE10() E10Result {
	var res E10Result
	const dwell = 50e-6
	for _, temp := range []float64{550, 600, 650, 700, 800, 900} {
		pt := E10Point{
			PulseTempC: temp,
			SingleMix:  physics.PulseMixing(temp, dwell),
		}
		pt.PulsesToHeat = pulsesToHeat(temp, dwell, 1.0, 10000)
		pt.NeighborDamagePerWrite = physics.PulseMixing(temp*0.4, dwell)
		pt.WritesUntilNeighborDead = pulsesToHeat(temp*0.4, dwell, 1.0, 1000000)
		res.Points = append(res.Points, pt)
	}
	for _, factor := range []float64{0.3, 0.4, 0.5, 0.6, 0.7} {
		res.Attenuation = append(res.Attenuation, E10Attenuation{
			Factor:                  factor,
			WritesUntilNeighborDead: pulsesToHeat(900*factor, dwell, 1.0, 1000000),
		})
	}
	return res
}

// pulsesToHeat simulates repeated pulses at tempC on one dot and
// returns how many cross the destruction threshold; 0 when maxPulses
// is reached first (equilibrium-limited: repetition cannot destroy).
func pulsesToHeat(tempC, dwell, _ float64, maxPulses int) int {
	damage := 0.0
	for n := 1; n <= maxPulses; n++ {
		next := physics.PulseDamage(tempC, dwell, damage)
		if next <= damage {
			return 0 // equilibrium reached below the threshold
		}
		damage = next
		if damage >= physics.HeatedDamageThreshold {
			return n
		}
	}
	return 0
}

// VerifyAgainstMedium cross-checks the analytic sweep against the
// actual medium implementation for the default configuration; returns
// an error message or "".
func (r E10Result) VerifyAgainstMedium() string {
	p := medium.DefaultParams(1, 8)
	p.ReadNoiseSigma = 0
	p.ResidualInPlaneSignal = 0
	p.ThermalCrosstalk = 0
	m := medium.New(p)
	m.EWB(0)
	if m.State(0) != medium.DotH {
		return "default pulse failed to destroy the target dot"
	}
	if m.State(1) == medium.DotH {
		return "default pulse destroyed a neighbour"
	}
	return ""
}

// Table renders E10.
func (r E10Result) Table() string {
	var b strings.Builder
	b.WriteString("E10 — heat-pulse engineering (50 µs dwell)\n")
	b.WriteString("pulse °C  mix/pulse  pulses-to-heat  neighbour-mix/write\n")
	for _, p := range r.Points {
		pulses := "never"
		if p.PulsesToHeat > 0 {
			pulses = fmt.Sprintf("%d", p.PulsesToHeat)
		}
		fmt.Fprintf(&b, "%8.0f %10.3f %15s %20.2e\n",
			p.PulseTempC, p.SingleMix, pulses, p.NeighborDamagePerWrite)
	}
	b.WriteString("substrate heat-sinking: neighbour sees factor × pulse temperature (900 °C write)\n")
	b.WriteString("factor   adjacent-writes-to-kill-neighbour\n")
	for _, a := range r.Attenuation {
		n := "never"
		if a.WritesUntilNeighborDead > 0 {
			n = fmt.Sprintf("%d", a.WritesUntilNeighborDead)
		}
		fmt.Fprintf(&b, "%6.1f   %s\n", a.Factor, n)
	}
	b.WriteString("paper §7: conduct heat into the substrate; use the write-once operation sparingly\n")
	return b.String()
}
