package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/device"
	"sero/internal/lfs"
)

// E19 — the parallel write path. A hot+cold mixed append workload
// spreads files over eight heat-affinity classes, each with its own
// appender frontier and group-commit buffer; every Sync flushes the
// per-class runs. With Concurrency=1 the runs flush serially — the
// single-frontier-equivalent baseline, where hot and cold appends
// queue behind one another — and at j≥2 they flush concurrently on
// worker planes, costing the slowest class instead of the sum
// (slowest-worker virtual time). The journal's summary record still
// commits last at the affinity-0 frontier in both configurations, and
// the on-medium layout is byte-identical at every j; only the virtual
// time changes.

// E19Result holds the multi-class append comparison across worker
// counts.
type E19Result struct {
	// Workers is the widest fan-out measured.
	Workers int
	// Classes is the number of heat-affinity classes in the workload.
	Classes int
	// PerBlock maps each measured worker count to virtual time per
	// appended data block.
	PerBlock map[int]time.Duration
	// Js lists the measured worker counts in ascending order.
	Js []int
}

// RunE19 measures the multi-class append workload at j=1, j=2, … up
// to the given fan-out width (doubling), returning virtual time per
// appended block for each.
func RunE19(workers int) (E19Result, error) {
	res := E19Result{Workers: workers, Classes: 16, PerBlock: map[int]time.Duration{}}
	for j := 1; j <= workers; j *= 2 {
		cost, err := multiClassAppendCost(res.Classes, j)
		if err != nil {
			return res, err
		}
		res.Js = append(res.Js, j)
		res.PerBlock[j] = cost
	}
	return res, nil
}

// multiClassAppendCost runs the mixed-class append workload at the
// given fan-out and returns virtual time per appended data block.
func multiClassAppendCost(classes, j int) (time.Duration, error) {
	dev := quietDevice(8192)
	fs, err := lfs.New(dev, lfs.Params{
		SegmentBlocks: 128, CheckpointBlocks: 128, WritebackBlocks: 128,
		CheckpointEvery: 1 << 20, HeatAware: true, ReserveSegments: 2,
		Concurrency: j,
	})
	if err != nil {
		return 0, err
	}
	inos := make([]lfs.Ino, classes)
	for c := range inos {
		if inos[c], err = fs.Create(fmt.Sprintf("c%02d", c), uint8(c)); err != nil {
			return 0, err
		}
	}
	if err := fs.Sync(); err != nil {
		return 0, err
	}
	// Each round rewrites every class's file (32 fresh blocks per
	// class buffered at its own frontier, except a small hot class-0
	// file: the affinity-0 run rides inside the summary record's
	// command serially in every configuration, so keeping it small
	// keeps the comparison about the fanned classes), then Syncs once:
	// the sync flushes the per-class runs plus the summary record.
	const rounds, perClass, class0Blocks = 8, 32, 4
	data := make([]byte, perClass*device.DataBytes)
	hot := make([]byte, class0Blocks*device.DataBytes)
	blocks := 0
	start := dev.Clock().Now()
	for r := 0; r < rounds; r++ {
		for c := range inos {
			buf := data
			if c == 0 {
				buf = hot
			}
			if err := fs.WriteFile(inos[c], buf); err != nil {
				return 0, err
			}
			blocks += len(buf) / device.DataBytes
		}
		if err := fs.Sync(); err != nil {
			return 0, err
		}
	}
	return (dev.Clock().Now() - start) / time.Duration(blocks), nil
}

// Table renders E19.
func (r E19Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E19 — parallel write path: %d-class mixed appends, per-class fanned flush\n", r.Classes)
	base := r.PerBlock[1]
	for _, j := range r.Js {
		fmt.Fprintf(&b, "j=%-2d  %10v/block   %.2fx vs single-frontier serial\n",
			j, r.PerBlock[j], float64(base)/float64(r.PerBlock[j]))
	}
	return b.String()
}
