package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/device"
	"sero/internal/lfs"
)

// E17 — mount at scale. Sweeps the namespace width and measures how a
// mount rebuilds segment liveness: the checkpointed liveness table
// (mount cost O(segments + replayed tail), independent of how many
// files exist) against the full inode walk it replaced (O(namespace)),
// both serial and fanned out over worker planes. The table bounds
// remount time after a crash no matter how large the namespace has
// grown — the walk's cost line grows with the file population while
// the table's stays flat.

// E17Row is one namespace-width configuration.
type E17Row struct {
	// Files is the namespace width (each file carries one data block).
	Files int
	// TailRecords is the summary-tail length the mounts rolled forward.
	TailRecords int
	// TableNS is the virtual mount cost riding the liveness table.
	TableNS time.Duration
	// WalkNS and WalkFannedNS are the full-walk fallback's virtual
	// mount costs, serial and fanned over the configured workers.
	WalkNS, WalkFannedNS time.Duration
	// InodesWalked counts inode blocks the fallback had to read.
	InodesWalked int
}

// E17Result holds the mount-scale sweep.
type E17Result struct {
	// Workers is the fan-out width of the fanned-walk column.
	Workers int
	// Tail is the journal-tail length (in syncs) built before each
	// mount.
	Tail int
	// Rows holds one entry per namespace width.
	Rows []E17Row
}

// RunE17 sweeps namespace widths and measures the three mount regimes
// (table, serial walk, fanned walk) over the same image. workers is
// the fan-out width of the fanned column; tail the number of journaled
// syncs left unreplayed in front of each mount.
func RunE17(workers, tail int) (E17Result, error) {
	res := E17Result{Workers: workers, Tail: tail}
	for _, files := range []int{32, 128, 512} {
		dev := quietDevice(16384)
		p := lfs.Params{
			SegmentBlocks: 64, CheckpointBlocks: 256, WritebackBlocks: 64,
			CheckpointEvery: 1 << 20, HeatAware: true, ReserveSegments: 2,
		}
		fs, err := lfs.New(dev, p)
		if err != nil {
			return res, err
		}
		inos := make([]lfs.Ino, files)
		for i := range inos {
			if inos[i], err = fs.Create(fmt.Sprintf("f%05d", i), 0); err != nil {
				return res, err
			}
			if err := fs.WriteFile(inos[i], make([]byte, device.DataBytes)); err != nil {
				return res, err
			}
		}
		if err := fs.Sync(); err != nil {
			return res, err
		}
		if err := fs.Checkpoint(); err != nil {
			return res, err
		}
		for n := 0; n < tail; n++ {
			if err := fs.Write(inos[n%files], 0, make([]byte, device.DataBytes)); err != nil {
				return res, err
			}
			if err := fs.Sync(); err != nil {
				return res, err
			}
		}

		row := E17Row{Files: files}
		mount := func(q lfs.Params) (*lfs.FS, time.Duration, error) {
			t0 := dev.Clock().Now()
			m, merr := lfs.Mount(dev, q)
			return m, dev.Clock().Now() - t0, merr
		}
		m, d, err := mount(p)
		if err != nil {
			return res, err
		}
		if !m.MountReport().TableMount {
			return res, fmt.Errorf("e17: mount fell back to the walk: %q", m.MountReport().Fallback)
		}
		row.TableNS = d
		pw := p
		pw.NoLivenessTable = true
		m, d, err = mount(pw)
		if err != nil {
			return res, err
		}
		row.WalkNS = d
		row.InodesWalked = m.MountReport().InodesRead
		pw.Concurrency = workers
		_, d, err = mount(pw)
		if err != nil {
			return res, err
		}
		row.WalkFannedNS = d
		row.TailRecords = tail
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders E17.
func (r E17Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E17 — mount at scale: checkpointed liveness table vs full inode walk (tail %d records, fanned walk j=%d)\n",
		r.Tail, r.Workers)
	b.WriteString("files     table-mount   walk-mount  walk-fanned   inodes-read  speedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8d %12v %12v %12v %13d %8.1fx\n",
			row.Files, row.TableNS, row.WalkNS, row.WalkFannedNS,
			row.InodesWalked, float64(row.WalkNS)/float64(row.TableNS))
	}
	if n := len(r.Rows); n > 1 {
		first, last := r.Rows[0], r.Rows[n-1]
		fmt.Fprintf(&b, "namespace grew %dx; walk-mount cost grew %.1fx while table-mount cost grew %.1fx — mount is O(segments + tail), not O(files)\n",
			last.Files/first.Files,
			float64(last.WalkNS)/float64(first.WalkNS),
			float64(last.TableNS)/float64(first.TableNS))
	}
	return b.String()
}
