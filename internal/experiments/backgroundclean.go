package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/device"
	"sero/internal/lfs"
)

// E16 — background incremental cleaning. The cleaner's copy phase no
// longer holds the FS lock (plan/copy/commit lock scoping, see
// internal/lfs/cleaner.go), so foreground appends can run while a
// pass relocates live blocks. The experiment measures what a client
// feels: the virtual latency of an append+sync stream issued while a
// large cleaning pass over a fragmented population is in flight,
// serialised behind the pass (the exclusive-lock baseline) versus
// overlapped with it. A third section demonstrates the watermark
// policy end to end: a churn workload on an FS opened with
// CleanWatermark kicks the background goroutine instead of ever
// cleaning inline.
//
// Latency is the sum of per-operation clock deltas: virtual time the
// pass charges during client think-time is cleaning the foreground
// never waited for, while anything landing inside an operation's
// window is attributed to it.

// E16Result holds the background-cleaning comparison.
type E16Result struct {
	// Workers is the cleaner fan-out width of the in-flight pass;
	// Watermark the free-pool threshold used by the policy demo.
	Workers   int
	Watermark int

	// SerialPerBlockNS / OverlapPerBlockNS are the virtual append
	// latencies per block with the pass serialised before the stream
	// (exclusive lock) vs. running concurrently with it.
	SerialPerBlockNS  time.Duration
	OverlapPerBlockNS time.Duration
	// SerialWorstNS / OverlapWorstNS are the worst single operations.
	SerialWorstNS  time.Duration
	OverlapWorstNS time.Duration
	// SerialCleaned / OverlapCleaned count segments the in-flight pass
	// reclaimed; SerialCopied / OverlapCopied the live blocks it moved.
	SerialCleaned, OverlapCleaned int
	SerialCopied, OverlapCopied   int

	// WatermarkRuns counts background cleaner activations during the
	// policy demo, WatermarkStale its moves invalidated by concurrent
	// foreground writes, and WatermarkFree the free pool at the end —
	// at or above the watermark without one explicit Clean call.
	WatermarkRuns  uint64
	WatermarkStale uint64
	WatermarkFree  int
}

// e16Params is the common FS geometry of all three sections.
func e16Params(workers, watermark int) lfs.Params {
	return lfs.Params{
		SegmentBlocks:    32,
		CheckpointBlocks: 32,
		WritebackBlocks:  32,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      workers,
		CleanWatermark:   watermark,
	}
}

// e16Fragmented builds the standard fragmented population: 8-block
// files whose first halves were overwritten once, leaving every
// segment half-live so the cleaner must copy real data.
func e16Fragmented(workers int) (*lfs.FS, error) {
	fs, err := lfs.New(quietDevice(2560), e16Params(workers, 0))
	if err != nil {
		return nil, err
	}
	for i := 0; i < 24; i++ {
		ino, cerr := fs.Create(fmt.Sprintf("f%02d", i), 0)
		if cerr != nil {
			return nil, cerr
		}
		if werr := fs.WriteFile(ino, payloadBytes(byte(i), 8*device.DataBytes)); werr != nil {
			return nil, werr
		}
	}
	if serr := fs.Sync(); serr != nil {
		return nil, serr
	}
	for i := 0; i < 24; i++ {
		ino, _ := fs.Lookup(fmt.Sprintf("f%02d", i))
		if werr := fs.WriteFile(ino, payloadBytes(byte(100+i), 4*device.DataBytes)); werr != nil {
			return nil, werr
		}
	}
	if serr := fs.Sync(); serr != nil {
		return nil, serr
	}
	return fs, nil
}

// e16Stream issues append+sync rounds with client think-time and
// returns the summed per-operation virtual deltas and the worst
// operation.
func e16Stream(fs *lfs.FS, ino lfs.Ino, rounds int, firstStart time.Duration) (total, worst time.Duration, err error) {
	const blocksPerRound = 2
	clk := fs.Device().Clock()
	for r := 0; r < rounds; r++ {
		t0 := clk.Now()
		if r == 0 && firstStart >= 0 {
			// The first operation was issued at firstStart and has been
			// waiting for the exclusive pass to release the lock.
			t0 = firstStart
		}
		data := payloadBytes(byte(128+r), blocksPerRound*device.DataBytes)
		if werr := fs.Write(ino, uint64(r*blocksPerRound)*device.DataBytes, data); werr != nil {
			return total, worst, werr
		}
		if serr := fs.Sync(); serr != nil {
			return total, worst, serr
		}
		d := clk.Now() - t0
		total += d
		if d > worst {
			worst = d
		}
		time.Sleep(6 * time.Millisecond)
	}
	return total, worst, nil
}

// e16CleaningInFlight reports whether a phased pass currently holds
// victims (their clean-pin is visible in the segment table).
func e16CleaningInFlight(fs *lfs.FS) bool {
	for _, s := range fs.Segments() {
		if s.CleanPin {
			return true
		}
	}
	return false
}

// RunE16 measures foreground append latency while a cleaning pass is
// in flight, exclusive-lock versus overlapped, and demonstrates the
// watermark policy. workers is the pass fan-out, watermark the demo's
// free-pool threshold.
func RunE16(workers, watermark int) (E16Result, error) {
	res := E16Result{Workers: workers, Watermark: watermark}
	const rounds = 8

	// Serialised baseline: the client's first append arrives just as
	// an exclusive pass begins, so it waits for the whole pass.
	fs, err := e16Fragmented(workers)
	if err != nil {
		return res, err
	}
	ino, err := fs.Create("stream", 0)
	if err != nil {
		return res, err
	}
	target := fs.FreeSegments() + 16
	start := fs.Device().Clock().Now()
	cs := fs.Clean(target)
	res.SerialCleaned, res.SerialCopied = cs.SegmentsCleaned, cs.BlocksCopied
	total, worst, err := e16Stream(fs, ino, rounds, start)
	if err != nil {
		return res, err
	}
	res.SerialPerBlockNS = total / time.Duration(rounds*2)
	res.SerialWorstNS = worst

	// Overlapped: the same pass runs phased while the stream proceeds.
	fs, err = e16Fragmented(workers)
	if err != nil {
		return res, err
	}
	if ino, err = fs.Create("stream", 0); err != nil {
		return res, err
	}
	target = fs.FreeSegments() + 16
	done := make(chan lfs.CleanStats, 1)
	go func() { done <- fs.Clean(target) }()
	// Wait for the pass to be in flight — or already finished (a fast
	// pass can complete between polls; the stream then just runs
	// unobstructed).
	for deadline := time.Now().Add(5 * time.Second); !e16CleaningInFlight(fs); {
		started := false
		select {
		case cs := <-done:
			done <- cs // keep it for the post-stream read
			started = true
		default:
		}
		if started {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("e16: cleaning pass never started")
		}
		time.Sleep(time.Millisecond)
	}
	total, worst, err = e16Stream(fs, ino, rounds, -1)
	if err != nil {
		return res, err
	}
	cs = <-done
	res.OverlapCleaned, res.OverlapCopied = cs.SegmentsCleaned, cs.BlocksCopied
	res.OverlapPerBlockNS = total / time.Duration(rounds*2)
	res.OverlapWorstNS = worst

	// Watermark policy demo: churn with CleanWatermark set; the
	// background goroutine keeps the pool reclaimable with no explicit
	// Clean call anywhere.
	fs, err = lfs.New(quietDevice(2048), e16Params(workers, watermark))
	if err != nil {
		return res, err
	}
	defer fs.Close()
	inos := make([]lfs.Ino, 48)
	for i := range inos {
		if inos[i], err = fs.Create(fmt.Sprintf("w%02d", i), 0); err != nil {
			return res, err
		}
		if err = fs.WriteFile(inos[i], payloadBytes(byte(i), 16*device.DataBytes)); err != nil {
			return res, err
		}
	}
	if err = fs.Sync(); err != nil {
		return res, err
	}
	for r := 0; r < 96; r++ {
		if err = fs.WriteFile(inos[r%len(inos)], payloadBytes(byte(r), 16*device.DataBytes)); err != nil {
			return res, err
		}
		if r%2 == 1 {
			if err = fs.Sync(); err != nil {
				return res, err
			}
			time.Sleep(time.Millisecond)
		}
	}
	if err = fs.Sync(); err != nil {
		return res, err
	}
	// Let the goroutine finish its last pass, then convert the gated
	// segments at one more covering point.
	for deadline := time.Now().Add(5 * time.Second); fs.FreeSegments() < watermark; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
		if err = fs.Sync(); err != nil {
			return res, err
		}
	}
	st := fs.Stats()
	res.WatermarkRuns = st.CleanerBgRuns
	res.WatermarkStale = st.CleanerStaleMoves
	res.WatermarkFree = fs.FreeSegments()
	return res, nil
}

// payloadBytes builds a deterministic payload (the experiments' analog
// of the lfs test helper).
func payloadBytes(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

// Table renders E16.
func (r E16Result) Table() string {
	var b strings.Builder
	b.WriteString("E16 — background incremental cleaning (virtual time, append+sync stream vs in-flight clean pass)\n")
	fmt.Fprintf(&b, "exclusive lock: %10v/block   worst op %10v   (pass: %d segs, %d blocks copied)\n",
		r.SerialPerBlockNS, r.SerialWorstNS, r.SerialCleaned, r.SerialCopied)
	fmt.Fprintf(&b, "overlapped:     %10v/block   worst op %10v   (pass: %d segs, %d blocks copied, j=%d)\n",
		r.OverlapPerBlockNS, r.OverlapWorstNS, r.OverlapCleaned, r.OverlapCopied, r.Workers)
	fmt.Fprintf(&b, "foreground latency: %.1fx per block, %.1fx worst op\n",
		float64(r.SerialPerBlockNS)/float64(r.OverlapPerBlockNS),
		float64(r.SerialWorstNS)/float64(r.OverlapWorstNS))
	fmt.Fprintf(&b, "watermark=%d policy: %d background runs, %d stale moves dropped, %d segments free at rest\n",
		r.Watermark, r.WatermarkRuns, r.WatermarkStale, r.WatermarkFree)
	return b.String()
}
