package experiments

import (
	"fmt"
	"strings"
	"time"

	"sero/internal/array"
	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/medium"
	"sero/internal/serve"
	"sero/internal/sim"
)

// E22 — the striped multi-volume array. Four questions about one
// sero.FS spread over N member devices with rotated Reed–Solomon
// parity (internal/array):
//
//  1. Scaling: serving throughput across widths. N members are N
//     overlapping foreground timelines — the array clock is the
//     slowest member's, so a striped run's virtual time approaches
//     total-work/N plus the parity tax. Measured by replaying the
//     same serving mix at width 1, 2 and 4.
//  2. Width-1 equivalence: a one-member array must be byte-identical
//     — layout AND virtual time — to the raw device (the fourth
//     ARCHITECTURE.md contract). Measured as exact virtual-time
//     equality of a single-session serving pair.
//  3. Degraded serving: with one member failed, every read touching
//     it reconstructs from the survivors' parity group. Measured as
//     the degraded run's throughput against the healthy run, with the
//     reconstruction counters reported.
//  4. Self-healing: a forged frame inside a heated line is found by
//     the incremental auditor and healed in place from parity
//     (core.Repairer → array.RepairLine). Measured as audit steps
//     from tamper to confirmed heal.

// E22Width is one geometry's serving measurement.
type E22Width struct {
	// Devices and Parity describe the geometry.
	Devices, Parity int
	// Virtual is the run's total virtual time.
	Virtual time.Duration
	// Throughput is sustained ops per virtual second.
	Throughput float64
	// Speedup is Throughput over the raw-device baseline's.
	Speedup float64
	// ParityWrites counts parity blocks the array flushed.
	ParityWrites uint64
	// MemberClocks are the per-member timelines; the run's Virtual is
	// their maximum (slowest-member contract).
	MemberClocks []time.Duration
}

// E22Result holds all four measurements.
type E22Result struct {
	// Sessions, Files, MixOps describe the serving runs.
	Sessions, Files, MixOps int
	// Baseline is the raw single-device trajectory the widths compare
	// against.
	Baseline E22Width
	// Widths holds the striped runs (width 1 included — its speedup
	// must be ~1.0).
	Widths []E22Width
	// RawVirtual and Width1Virtual are the single-session equivalence
	// pair; Width1Identical is their exact equality.
	RawVirtual, Width1Virtual time.Duration
	Width1Identical           bool
	// Degraded is the member-loss serving run at the widest geometry.
	Degraded E22Width
	// DegradedReads and ReconstructedBlocks count the degraded run's
	// parity-group reconstructions.
	DegradedReads, ReconstructedBlocks uint64
	// HealLines is the heated-line population of the self-healing
	// trial; HealSteps the audit steps from tamper to confirmed heal;
	// HealBound the auditor's documented detection bound in steps.
	HealLines, HealSteps, HealBound int
	// Healed reports whether the tampered line re-verified clean after
	// the auditor's repair.
	Healed bool
}

// e22Width runs the serving mix over one array geometry.
func e22Width(cfg serve.Config, devices, parity, degraded int, baselineTP float64) (E22Width, serve.Result, error) {
	cfg.Devices = devices
	cfg.ParityDevices = parity
	cfg.DegradedDevices = degraded
	res, err := serve.Run(cfg)
	if err != nil {
		return E22Width{}, res, err
	}
	w := E22Width{
		Devices:      devices,
		Parity:       parity,
		Virtual:      time.Duration(res.VirtualNS),
		Throughput:   res.ThroughputOpsPerSec,
		ParityWrites: res.ParityBlockWrites,
	}
	if baselineTP > 0 {
		w.Speedup = res.ThroughputOpsPerSec / baselineTP
	}
	for _, ds := range res.PerDevice {
		w.MemberClocks = append(w.MemberClocks, time.Duration(ds.ClockNS))
	}
	return w, res, nil
}

// e22Heal runs the self-healing trial: heated population, forged
// frame, audit rounds with the repair arm wired to array.RepairLine.
func e22Heal(seed uint64) (lines, steps, bound int, healed bool, err error) {
	dp := device.DefaultParams(1024)
	mp := medium.DefaultParams(1024, device.DotsPerBlock)
	mp.ReadNoiseSigma, mp.ResidualInPlaneSignal, mp.ThermalCrosstalk = 0, 0, 0
	dp.Medium = mp
	arr, err := array.Build(3, dp, array.Params{StripeBlocks: 16, Parity: 1})
	if err != nil {
		return 0, 0, 0, false, err
	}
	fs, err := lfs.New(arr, lfs.Params{
		SegmentBlocks: 16, CheckpointBlocks: 16, HeatAware: true, ReserveSegments: 2,
	})
	if err != nil {
		return 0, 0, 0, false, err
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("e22-frozen-%d", i)
		ino, cerr := fs.Create(name, uint8(i%4))
		if cerr != nil {
			return 0, 0, 0, false, cerr
		}
		data := make([]byte, 2*device.DataBytes)
		for j := range data {
			data[j] = byte(i + 1)
		}
		if werr := fs.WriteFile(ino, data); werr != nil {
			return 0, 0, 0, false, werr
		}
		if _, herr := fs.HeatFile(name); herr != nil {
			return 0, 0, 0, false, herr
		}
	}
	if serr := fs.Sync(); serr != nil {
		return 0, 0, 0, false, serr
	}

	// Forge a valid-looking frame into a random heated data block, raw
	// on the owning member's medium.
	rng := sim.NewRNG(seed ^ 0xE22)
	all := arr.Lines()
	lines = len(all)
	li := all[rng.Uint64()%uint64(lines)]
	victim := li.Start + 1 + rng.Uint64()%(li.Blocks()-1)
	member, lpba := arr.Locate(victim)
	forged := make([]byte, device.DataBytes)
	for i := range forged {
		forged[i] = byte(rng.Uint64())
	}
	bits := device.ForgedFrameBits(lpba, forged)
	base := int(lpba) * device.DotsPerBlock
	from := lpba
	if from > 0 {
		from--
	}
	arr.MemberDevice(member).TamperRaw(from, lpba+2, func(m *medium.Medium) {
		for i, b := range bits {
			m.MWB(base+i, b)
		}
	})

	fs.SetAuditRepairer(arr.RepairLine)
	const batch = 2
	bound = 2 * ((lines + batch - 1) / batch)
	for steps = 1; steps <= bound; steps++ {
		fs.AuditStep(batch)
		if fs.Stats().AuditRepairs > 0 {
			break
		}
	}
	rep, verr := arr.VerifyLine(li.Start)
	healed = verr == nil && rep.OK && fs.Stats().AuditRepairs == 1
	return lines, steps, bound, healed, nil
}

// RunE22 measures the striped array: width scaling, width-1
// equivalence, degraded serving and auditor self-healing.
func RunE22(sessions int, seed uint64) (E22Result, error) {
	const files, ops = 1024, 4096
	res := E22Result{Sessions: sessions, Files: files, MixOps: ops}
	cfg := serve.DefaultConfig(sessions, files, ops)
	cfg.Seed = seed
	cfg.SegmentBlocks = 64
	cfg.SyncEvery = 32
	cfg.HeatFiles = 16

	baseline, braw, err := e22Width(cfg, 0, 0, 0, 0)
	if err != nil {
		return res, fmt.Errorf("e22: baseline: %w", err)
	}
	baseline.Devices = 1
	baseline.Speedup = 1
	res.Baseline = baseline
	for _, g := range []struct{ n, p int }{{1, 0}, {2, 1}, {4, 1}} {
		w, _, werr := e22Width(cfg, g.n, g.p, 0, braw.ThroughputOpsPerSec)
		if werr != nil {
			return res, fmt.Errorf("e22: width %d: %w", g.n, werr)
		}
		res.Widths = append(res.Widths, w)
	}

	// The equivalence pair runs one session: multi-session interleaving
	// (and hence cleaning order) is schedule-dependent, single-session
	// trajectories are exact.
	one := serve.DefaultConfig(1, 256, 1024)
	one.Seed = seed
	one.SegmentBlocks = 64
	one.SyncEvery = 32
	rawR, err := serve.Run(one)
	if err != nil {
		return res, fmt.Errorf("e22: raw single-session: %w", err)
	}
	one.Devices = 1
	w1R, err := serve.Run(one)
	if err != nil {
		return res, fmt.Errorf("e22: width-1 single-session: %w", err)
	}
	res.RawVirtual = time.Duration(rawR.VirtualNS)
	res.Width1Virtual = time.Duration(w1R.VirtualNS)
	res.Width1Identical = rawR.VirtualNS == w1R.VirtualNS

	deg, dres, err := e22Width(cfg, 4, 1, 1, braw.ThroughputOpsPerSec)
	if err != nil {
		return res, fmt.Errorf("e22: degraded: %w", err)
	}
	res.Degraded = deg
	res.DegradedReads = dres.DegradedReads
	res.ReconstructedBlocks = dres.ReconstructedBlocks

	lines, steps, bound, healed, err := e22Heal(seed)
	if err != nil {
		return res, fmt.Errorf("e22: self-healing trial: %w", err)
	}
	res.HealLines, res.HealSteps, res.HealBound, res.Healed = lines, steps, bound, healed
	return res, nil
}

// Table renders E22.
func (r E22Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E22 — striped multi-volume array: serving mix (%d sessions, %d files, %d ops)\n\n",
		r.Sessions, r.Files, r.MixOps)
	b.WriteString("devices parity      virtual        ops/vsec  speedup  parity-writes\n")
	row := func(label string, w E22Width) {
		fmt.Fprintf(&b, "%-7s %6d %12v %15.0f %8.2fx %14d\n",
			label, w.Parity, w.Virtual, w.Throughput, w.Speedup, w.ParityWrites)
	}
	row("raw", r.Baseline)
	for _, w := range r.Widths {
		row(fmt.Sprintf("%d", w.Devices), w)
	}
	row("4 (deg)", r.Degraded)
	fmt.Fprintf(&b, "\ndegraded serving: %d reads reconstructed (%d blocks rebuilt from parity), one member down\n",
		r.DegradedReads, r.ReconstructedBlocks)
	fmt.Fprintf(&b, "\nwidth-1 equivalence (single session): raw %v vs width-1 %v — ",
		r.RawVirtual, r.Width1Virtual)
	if r.Width1Identical {
		b.WriteString("identical (fourth contract holds)\n")
	} else {
		b.WriteString("DIVERGED — the width-1 contract is broken\n")
	}
	fmt.Fprintf(&b, "\nself-healing: tampered heated line (of %d) found and repaired from parity in %d audit steps (bound %d): %v\n",
		r.HealLines, r.HealSteps, r.HealBound, r.Healed)
	if last := r.Widths[len(r.Widths)-1]; len(last.MemberClocks) > 0 {
		fmt.Fprintf(&b, "\nwidth-%d member timelines (virtual = slowest member):", last.Devices)
		for m, c := range last.MemberClocks {
			fmt.Fprintf(&b, " m%d=%v", m, c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
