package experiments

import (
	"fmt"
	"strings"

	"sero/internal/device"
	"sero/internal/worm"
)

// E11 — baseline comparison (§2 "WORM technologies"). The same
// history-rewrite attack runs against every baseline WORM technology
// and against SERO; the table shows what each can scope (flexibility)
// and what each can prove afterwards (tamper evidence).

// seroStore adapts the SERO device to the worm.Store contract so the
// identical attack driver exercises it.
type seroStore struct {
	dev *device.Device
	// line is the heated line covering the frozen record, once frozen.
	line   *device.LineInfo
	frozen uint64
}

func newSeroStore(blocks int) *seroStore {
	return &seroStore{dev: quietDevice(blocks)}
}

// Name implements worm.Store.
func (s *seroStore) Name() string { return "sero" }

// Write implements worm.Store.
func (s *seroStore) Write(pba uint64, data []byte) error {
	return s.dev.MWS(pba, data)
}

// Read implements worm.Store. Heated hash blocks are not magnetically
// readable; the attack driver only reads data blocks.
func (s *seroStore) Read(pba uint64) ([]byte, error) {
	return s.dev.MRS(pba)
}

// Freeze implements worm.Store: heat the smallest aligned line whose
// data region covers [start, start+n). For the attack's single-block
// freeze the line is two blocks: hash at start−1, data at start.
func (s *seroStore) Freeze(start, n uint64) error {
	if n != 1 || start%2 != 1 {
		return fmt.Errorf("seroStore: demo freeze supports one odd-addressed block, got [%d,%d)", start, n)
	}
	li, err := s.dev.HeatLine(start-1, 1)
	if err != nil {
		return err
	}
	s.line = &li
	s.frozen = start
	return nil
}

// RawWrite implements worm.Store: the §5 insider forges a fully valid
// frame on the raw medium.
func (s *seroStore) RawWrite(pba uint64, data []byte) error {
	bits := device.ForgedFrameBits(pba, data)
	med := s.dev.Medium()
	base := int(pba) * device.DotsPerBlock
	for i, b := range bits {
		med.MWB(base+i, b)
	}
	return nil
}

// Audit implements worm.Store.
func (s *seroStore) Audit() worm.AuditResult {
	if s.line == nil {
		return worm.AuditResult{Notes: "nothing frozen"}
	}
	rep, err := s.dev.VerifyLine(s.line.Start)
	if err != nil {
		return worm.AuditResult{TamperDetected: true, Notes: "verify error: " + err.Error()}
	}
	if rep.Tampered() {
		return worm.AuditResult{
			TamperDetected: true,
			Notes:          "heated hash no longer matches the stored data",
		}
	}
	return worm.AuditResult{Notes: "line verifies clean"}
}

// E11Result is the baseline comparison.
type E11Result struct {
	Results []worm.RewriteAttackResult
}

// RunE11 attacks every technology.
func RunE11() (E11Result, error) {
	var res E11Result
	const blocks = 8
	stores := []worm.Store{
		worm.NewSoftwareWORM(blocks),
		worm.NewTapeWORM(blocks),
		worm.NewOpticalWORM(blocks),
		worm.NewFuseWORM(blocks),
		newSeroStore(blocks),
	}
	for _, s := range stores {
		r, err := worm.RunRewriteAttack(s, blocks)
		if err != nil {
			return res, fmt.Errorf("%s: %w", s.Name(), err)
		}
		res.Results = append(res.Results, r)
	}
	return res, nil
}

// Table renders the comparison.
func (r E11Result) Table() string {
	var b strings.Builder
	b.WriteString("E11 — WORM technology comparison under the §5 history-rewrite attack\n")
	b.WriteString("technology     scoped-freeze  rewrite-succeeded  detected  notes\n")
	for _, res := range r.Results {
		note := res.Notes
		if len(note) > 58 {
			note = note[:55] + "..."
		}
		fmt.Fprintf(&b, "%-14s %13v %18v %9v  %s\n",
			res.Technology, res.FreezeScoped, res.RewriteSucceeded, res.Detected, note)
	}
	b.WriteString("paper §2: SERO combines WMRM flexibility, per-line freezing and tamper evidence\n")
	return b.String()
}
