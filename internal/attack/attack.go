// Package attack implements the §5 security analysis as an executable
// harness. The threat model (Hsu and Ong [19], Hasan et al. [14]): a
// powerful insider with root on every connected host and temporary raw
// access to the device wants a stored record forgotten without drawing
// attention. Attacks run against a prepared file system with heated
// files; each returns whether the SERO design prevented the attack
// outright or detected it afterwards.
package attack

import (
	"fmt"

	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/medium"
	"sero/internal/sim"
)

// Result records the outcome of one attack.
type Result struct {
	// Name identifies the attack (§5 taxonomy).
	Name string
	// Description explains what the attacker did.
	Description string
	// Prevented is true when the system refused the operation outright
	// (e.g. the honest device rejects writes to heated blocks).
	Prevented bool
	// Detected is true when verification after the attack reports
	// tampering.
	Detected bool
	// Notes carries details (which check fired).
	Notes string
}

// Outcome summarises Prevented/Detected as the paper's classification.
func (r Result) Outcome() string {
	switch {
	case r.Prevented:
		return "prevented"
	case r.Detected:
		return "detected"
	default:
		return "UNDETECTED"
	}
}

// Harness prepares a victim environment and runs attacks.
type Harness struct {
	fs *lfs.FS
	// raw is the sled under the file system: adversary access is
	// physical, per-device access, so the harness requires the fs to
	// sit on a single raw device (array campaigns tamper a chosen
	// member through array.MemberDevice instead).
	raw *device.Device
	rng *sim.RNG
	// victim is the heated file under attack.
	victim string
	// line is the victim's heated line.
	line device.LineInfo
}

// NewHarness builds a victim file system: a heated file (the record
// the attacker regrets) plus unheated bystander files.
func NewHarness(fs *lfs.FS, seed uint64) (*Harness, error) {
	h := &Harness{fs: fs, rng: sim.NewRNG(seed), victim: "incriminating-record"}
	raw, ok := fs.Device().(*device.Device)
	if !ok {
		return nil, fmt.Errorf("attack: harness requires a raw single device, got %T", fs.Device())
	}
	h.raw = raw
	ino, err := fs.Create(h.victim, 1)
	if err != nil {
		return nil, err
	}
	content := make([]byte, 3*device.DataBytes)
	for i := range content {
		content[i] = byte(h.rng.Uint64())
	}
	if err := fs.WriteFile(ino, content); err != nil {
		return nil, err
	}
	res, err := fs.HeatFile(h.victim)
	if err != nil {
		return nil, err
	}
	h.line = res.Line
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("bystander-%d", i)
		bIno, cerr := fs.Create(name, 0)
		if cerr != nil {
			return nil, cerr
		}
		if werr := fs.WriteFile(bIno, content[:device.DataBytes]); werr != nil {
			return nil, werr
		}
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	return h, nil
}

// Victim returns the heated file's name.
func (h *Harness) Victim() string { return h.victim }

// Line returns the victim's heated line.
func (h *Harness) Line() device.LineInfo { return h.line }

// FS returns the file system under attack, for campaigns that drive
// live traffic and audits around the attacks.
func (h *Harness) FS() *lfs.FS { return h.fs }

// tamper runs f against the raw medium with the stripe locks covering
// blocks [start, end) held, widened by one block on each side so an
// electrical write's thermal crosstalk stays inside the locked range.
// All raw-access attacks go through this so campaigns can run them
// concurrently with live device traffic without simulator-level data
// races — the adversary's probe tip is atomic with honest commands at
// block granularity, exactly like the §5 threat model's raw access.
func (h *Harness) tamper(start, end uint64, f func(m *medium.Medium)) {
	if start > 0 {
		start--
	}
	h.raw.TamperRaw(start, end+1, f)
}

// verifyDetects re-verifies the victim and reports whether tampering
// is flagged.
func (h *Harness) verifyDetects() (bool, string) {
	reps, err := h.fs.VerifyFile(h.victim)
	if err != nil {
		return true, fmt.Sprintf("verification error: %v", err)
	}
	for _, r := range reps {
		if r.Tampered() {
			why := ""
			if r.RecordDamaged {
				why += fmt.Sprintf("record damaged (%d HH cells); ", r.TamperedCells)
			}
			if r.HashMismatch {
				why += "hash mismatch; "
			}
			if len(r.ReadErrors) > 0 {
				why += fmt.Sprintf("%d unreadable blocks; ", len(r.ReadErrors))
			}
			return true, why
		}
	}
	return false, "verify reports clean"
}

// RunAll executes the full §5 attack matrix in a fixed order. Attacks
// that mutate state use disjoint targets so each result is
// attributable; the victim's line is re-verified after each attack.
func (h *Harness) RunAll() []Result {
	return []Result{
		h.AttackFSOverwrite(),
		h.AttackMWBHash(),
		h.AttackMWBData(),
		h.AttackEWBHash(),
		h.AttackEWBData(),
		h.AttackSplitFile(),
		h.AttackCoalesce(),
		h.AttackRm(),
		h.AttackCopyMask(),
		h.AttackClearDirectory(),
		h.AttackBulkErase(),
	}
}

// AttackFSOverwrite tries the easy path: a write through the file
// system. The honest FS refuses (prevention, not just detection).
func (h *Harness) AttackFSOverwrite() Result {
	r := Result{
		Name:        "fs-overwrite",
		Description: "overwrite the heated file via the file system API",
	}
	ino, err := h.fs.Lookup(h.victim)
	if err == nil {
		err = h.fs.Write(ino, 0, []byte("rewritten history"))
	}
	if err != nil {
		r.Prevented = true
		r.Notes = err.Error()
	}
	return r
}

// AttackMWBHash magnetises the heated hash dots (§5.1 "mwb hash": no
// effect — only presence/absence of out-of-plane dots matters).
func (h *Harness) AttackMWBHash() Result {
	r := Result{
		Name:        "mwb-hash",
		Description: "magnetically rewrite the electrically written hash dots",
	}
	base := int(h.line.Start)*device.DotsPerBlock + device.HeaderBytes*8
	flips := make([]bool, 1024)
	for i := range flips {
		flips[i] = h.rng.Bool()
	}
	h.tamper(h.line.Start, h.line.Start+1, func(med *medium.Medium) {
		for i, b := range flips {
			med.MWB(base+i, b)
		}
	})
	detected, notes := h.verifyDetects()
	// No effect is the *correct* outcome: the hash still verifies and
	// the data is intact, so the attack achieved nothing. Classify as
	// prevented-by-physics.
	if !detected {
		r.Prevented = true
		r.Notes = "magnetisation of heated dots has no effect; line still verifies clean"
	} else {
		r.Detected = true
		r.Notes = notes
	}
	return r
}

// AttackMWBData rewrites a data block of the heated line with a forged
// but internally consistent frame (§5.1 "mwb inode/data": detected by
// verify).
func (h *Harness) AttackMWBData() Result {
	r := Result{
		Name:        "mwb-data",
		Description: "raw-rewrite a heated data block with a forged valid frame",
	}
	target := h.line.Start + 2 // first data block after hash+inode
	forged := make([]byte, device.DataBytes)
	for i := range forged {
		forged[i] = byte(h.rng.Uint64())
	}
	bits := device.ForgedFrameBits(target, forged)
	base := int(target) * device.DotsPerBlock
	h.tamper(target, target+1, func(med *medium.Medium) {
		for i, b := range bits {
			med.MWB(base+i, b)
		}
	})
	r.Detected, r.Notes = h.verifyDetects()
	return r
}

// AttackEWBHash heats extra dots of the stored hash (§5.1 "ewb hash":
// UH/HU → HH, an illegal code).
func (h *Harness) AttackEWBHash() Result {
	r := Result{
		Name:        "ewb-hash",
		Description: "heat additional dots of the stored hash (UH/HU → HH)",
	}
	base := int(h.line.Start)*device.DotsPerBlock + device.HeaderBytes*8
	h.tamper(h.line.Start, h.line.Start+1, func(med *medium.Medium) {
		for cell := 0; cell < 8; cell++ {
			med.EWB(base + 2*cell)
			med.EWB(base + 2*cell + 1)
		}
	})
	r.Detected, r.Notes = h.verifyDetects()
	return r
}

// AttackEWBData heats dots inside a heated-line data block (§5.1 "ewb
// inode/data": appears as a read error).
func (h *Harness) AttackEWBData() Result {
	r := Result{
		Name:        "ewb-data",
		Description: "electrically destroy dots of a heated data block",
	}
	target := h.line.Start + 3
	base := int(target) * device.DotsPerBlock
	h.tamper(target, target+1, func(med *medium.Medium) {
		for i := 0; i < device.DotsPerBlock; i += 3 {
			med.EWB(base + i)
		}
	})
	r.Detected, r.Notes = h.verifyDetects()
	return r
}

// AttackSplitFile crafts a data block that looks like a valid hash
// record plus inode, attempting the §5.1 splitting attack. The device
// defeats it structurally: hashes live only at known line-aligned
// physical addresses, so the forged "record" at an unaligned address
// is never consulted.
func (h *Harness) AttackSplitFile() Result {
	r := Result{
		Name: "split-file",
		Description: "craft data resembling hash+inode mid-line to split " +
			"the file into two apparently genuine files",
	}
	dev := h.raw
	// The forged record claims a line at the victim's third block —
	// not a multiple of the line size.
	forgedStart := h.line.Start + 2
	rec := device.HeatRecord{LogN: 1, Start: forgedStart}
	// Write it as *magnetic* data (the attacker cannot electrically
	// write without creating evidence; that path is ewb-data).
	buf := make([]byte, device.DataBytes)
	copy(buf, rec.Marshal())
	bits := device.ForgedFrameBits(forgedStart, buf)
	base := int(forgedStart) * device.DotsPerBlock
	h.tamper(forgedStart, forgedStart+1, func(med *medium.Medium) {
		for i, b := range bits {
			med.MWB(base+i, b)
		}
	})
	// Does the device now believe there is a line at forgedStart? A
	// scan only accepts *electrically* written records at aligned
	// addresses.
	if _, err := dev.VerifyLine(forgedStart); err != nil {
		r.Prevented = true
		r.Notes = "no heated line recognised at forged address: " + err.Error()
	}
	// And the mutation of the real line is detected regardless.
	detected, notes := h.verifyDetects()
	r.Detected = detected
	if detected {
		r.Notes += "; original line: " + notes
	}
	return r
}

// AttackCoalesce attempts the §5.1 coalescing attack: forge a heat
// record at an aligned free block whose claimed line *swallows* the
// victim's genuine line, making two files look like one. The attacker
// can even compute a correct hash over the swallowed blocks (they are
// magnetically readable), so the forged line verifies in isolation —
// but the genuine record still exists at its own well-defined physical
// address, and the overlapping claims are themselves the evidence.
func (h *Harness) AttackCoalesce() Result {
	r := Result{
		Name: "coalesce",
		Description: "electrically forge an enclosing line record to merge the " +
			"victim with neighbouring data",
	}
	dev := h.raw

	// Find the aligned enclosing range one size up from the victim.
	size := h.line.Blocks() * 2
	encStart := h.line.Start - h.line.Start%size
	if encStart == h.line.Start {
		// Record slot would collide with the genuine record; forging
		// there produces HH cells immediately (that path is ewb-hash).
		// Use the enclosing range two sizes up instead.
		size *= 2
		encStart = h.line.Start - h.line.Start%size
	}
	rec := device.HeatRecord{
		LogN:  uint8(log2(size)),
		Start: encStart,
	}
	// The attacker writes the forged record electrically at the
	// enclosing start (a free block in this scenario).
	if err := dev.EWS(encStart, rec.Marshal()); err != nil {
		r.Prevented = true
		r.Notes = "device refused the forged record write: " + err.Error()
		return r
	}

	// Detection: a recovery scan now sees overlapping line claims —
	// two records whose ranges intersect cannot both be genuine.
	recovered, unparseable, err := dev.Scan()
	if err != nil {
		r.Notes = "scan failed: " + err.Error()
		return r
	}
	overlaps := 0
	for i := range recovered {
		for j := i + 1; j < len(recovered); j++ {
			a, b := recovered[i], recovered[j]
			if a.Start < b.End() && b.Start < a.End() {
				overlaps++
			}
		}
	}
	if overlaps > 0 {
		r.Detected = true
		r.Notes = fmt.Sprintf("recovery scan found %d overlapping line claims (%d unparseable)",
			overlaps, len(unparseable))
	} else if len(unparseable) > 0 {
		r.Detected = true
		r.Notes = fmt.Sprintf("%d unparseable electrical blocks", len(unparseable))
	}
	return r
}

func log2(n uint64) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// AttackRm deletes the victim through the file system (§5.2: rm
// implies writing the inode, which is tamper-evident; the honest FS
// simply refuses).
func (h *Harness) AttackRm() Result {
	r := Result{
		Name:        "rm",
		Description: "rm the heated file",
	}
	if err := h.fs.Delete(h.victim); err != nil {
		r.Prevented = true
		r.Notes = err.Error()
	} else {
		r.Detected, r.Notes = h.verifyDetects()
	}
	return r
}

// AttackCopyMask copies the victim's blocks to fresh addresses hoping
// the copy masks the original (§5.2: impossible because physical
// addresses are hashed; "a copy can always be distinguished from an
// original").
func (h *Harness) AttackCopyMask() Result {
	r := Result{
		Name:        "copy-mask",
		Description: "copy the heated file's blocks elsewhere to mask the original",
	}
	dev := h.raw
	// Earlier attacks in RunAll may already have damaged the line;
	// this attack is judged by what *it* changes.
	damagedBefore, _ := h.verifyDetects()
	// Copy data blocks raw to a far-away region.
	destBase := uint64(dev.Blocks() - 8)
	for i := uint64(0); i < h.line.Blocks()-1; i++ {
		src := h.line.Start + 1 + i
		data, err := dev.MRS(src)
		if err != nil {
			continue
		}
		dst := destBase + i
		bits := device.ForgedFrameBits(dst, data)
		base := int(dst) * device.DotsPerBlock
		h.tamper(dst, dst+1, func(med *medium.Medium) {
			for j, b := range bits {
				med.MWB(base+j, b)
			}
		})
	}
	// The copy cannot reproduce the heated hash binding: verifying a
	// "line" at the copy's address finds nothing, and the original
	// still verifies as the one true instance.
	if _, err := dev.VerifyLine(destBase); err != nil {
		r.Prevented = true
		r.Notes = "copy carries no heated hash at its address: " + err.Error()
	}
	if detected, _ := h.verifyDetects(); detected && !damagedBefore {
		// Copying must NOT damage the original.
		r.Prevented = false
		r.Detected = true
		r.Notes = "unexpected: original damaged by copy"
	}
	return r
}

// AttackClearDirectory wipes the file system's metadata (checkpoint
// region and directory) to orphan the heated file (§5.2: "Assume that
// the attacker clears the directory structure, then a fsck style scan
// of the medium would definitely recover (albeit slowly) all the
// heated files").
func (h *Harness) AttackClearDirectory() Result {
	r := Result{
		Name:        "clear-directory",
		Description: "wipe the FS checkpoint/directory to orphan the heated file",
	}
	dev := h.raw
	// Raw-wipe the checkpoint region (first segment of the device).
	garbage := make([]byte, device.DataBytes)
	for i := range garbage {
		garbage[i] = byte(h.rng.Uint64())
	}
	h.tamper(0, 32, func(med *medium.Medium) {
		for pba := uint64(0); pba < 32; pba++ {
			bits := device.ForgedFrameBits(pba, garbage)
			base := int(pba) * device.DotsPerBlock
			for i, b := range bits {
				med.MWB(base+i, b)
			}
		}
	})
	// The access path is gone, but the medium scan recovers the line —
	// availability is restored, so the attack fails its goal. (When an
	// earlier attack in the sequence already burnt the record into HH
	// cells, the scan surfaces it as unparseable electrical data: the
	// file's content is damaged but its existence is still evident.)
	recovered, unparseable, err := dev.Scan()
	if err != nil {
		r.Notes = "scan failed: " + err.Error()
		return r
	}
	for _, li := range recovered {
		if li.Start == h.line.Start {
			rep, verr := dev.VerifyLine(li.Start)
			if verr == nil && !rep.Tampered() {
				r.Prevented = true
				r.Notes = "fsck-style scan recovered the heated file intact; directory loss is recoverable"
			} else {
				r.Detected = true
				r.Notes = "heated file recovered with evidence of prior damage"
			}
			return r
		}
	}
	for _, pba := range unparseable {
		if pba == h.line.Start {
			r.Detected = true
			r.Notes = "scan surfaced the orphaned record as damaged electrical evidence"
			return r
		}
	}
	r.Notes = "heated file lost after directory wipe"
	return r
}

// AttackBulkErase degausses the whole medium (§5.2: magnetic data is
// gone but every electrically written hash survives as evidence).
// Destructive to everything; run last.
func (h *Harness) AttackBulkErase() Result {
	r := Result{
		Name:        "bulk-erase",
		Description: "degauss the entire medium",
	}
	dev := h.raw
	dev.TamperExclusive(func(med *medium.Medium) { med.BulkErase() })
	// Recovery scan still finds the electrical evidence: either an
	// intact heated line, or (when an earlier attack already damaged
	// the record into HH cells) an unparseable electrically written
	// block — both survive the degausser and both are evidence.
	recovered, unparseable, err := dev.Scan()
	if err != nil {
		r.Notes = "scan failed: " + err.Error()
		return r
	}
	found := false
	for _, li := range recovered {
		if li.Start == h.line.Start {
			found = true
		}
	}
	if !found {
		for _, pba := range unparseable {
			if pba == h.line.Start {
				r.Detected = true
				r.Notes = "electrical evidence survives the degausser as a damaged (HH) record"
				return r
			}
		}
		r.Notes = "heated line lost after bulk erase"
		return r
	}
	// ...and verification reports the data destroyed.
	rep, err := dev.VerifyLine(h.line.Start)
	if err != nil {
		r.Notes = "verify failed: " + err.Error()
		return r
	}
	if rep.Tampered() {
		r.Detected = true
		r.Notes = fmt.Sprintf("line survives as evidence; verify reports tampering (hash mismatch=%v, unreadable=%d)",
			rep.HashMismatch, len(rep.ReadErrors))
	}
	return r
}
