package attack

import (
	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/medium"
)

// QuietConfig configures NewQuietHarness: a deterministic (noiseless)
// device with a freshly formatted FS, sized for attack tests. The zero
// value is usable — every field has a default.
type QuietConfig struct {
	// Blocks is the device size in blocks (default 2048).
	Blocks int
	// SegmentBlocks is the LFS segment size (default 32; the
	// checkpoint region is sized to match).
	SegmentBlocks int
	// Concurrency is the FS worker-plane fan-out width (default 1).
	Concurrency int
	// CleanWatermark arms the FS background cleaner (default 0: off).
	CleanWatermark int
	// AuditEvery arms the FS background auditor cadence (default 0:
	// off; campaigns and tests can still drive AuditStep inline).
	AuditEvery int
	// Seed seeds the harness RNG that generates victim and bystander
	// content (default 42).
	Seed uint64
}

// NewQuietHarness builds the shared prepared-FS victim environment
// the attack tests and concurrent campaigns run against: a noiseless
// medium (so every outcome is deterministic), a heat-aware FS, one
// heated victim file and unheated bystanders — the §5 scenario in a
// box.
func NewQuietHarness(cfg QuietConfig) (*Harness, error) {
	if cfg.Blocks <= 0 {
		cfg.Blocks = 2048
	}
	if cfg.SegmentBlocks <= 0 {
		cfg.SegmentBlocks = 32
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	dp := device.DefaultParams(cfg.Blocks)
	mp := medium.DefaultParams(cfg.Blocks, device.DotsPerBlock)
	mp.ReadNoiseSigma = 0
	mp.ResidualInPlaneSignal = 0
	mp.ThermalCrosstalk = 0
	dp.Medium = mp
	fs, err := lfs.New(device.New(dp), lfs.Params{
		SegmentBlocks:    cfg.SegmentBlocks,
		CheckpointBlocks: cfg.SegmentBlocks,
		HeatAware:        true,
		ReserveSegments:  2,
		Concurrency:      cfg.Concurrency,
		CleanWatermark:   cfg.CleanWatermark,
		AuditEvery:       cfg.AuditEvery,
	})
	if err != nil {
		return nil, err
	}
	return NewHarness(fs, cfg.Seed)
}
