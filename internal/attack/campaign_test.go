package attack

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/medium"
	"sero/internal/sim"
	"sero/internal/workload"
)

// TestLiveCampaignDetectsEverything is the concurrency tentpole: the
// §5 matrix against a live system — workload sessions, the racing
// cooperative cleaner and continuous audit rounds all in flight. Every
// attack must stay prevented-or-detected, the victim tamper must
// surface within the documented audit bound, and every acked write
// must survive.
func TestLiveCampaignDetectsEverything(t *testing.T) {
	sessions := 4
	ops := 384
	if raceDetector {
		sessions, ops = 2, 192
	}
	h, err := NewQuietHarness(QuietConfig{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.RunLiveCampaign(CampaignConfig{
		Sessions:      sessions,
		OpsPerSession: ops,
		CleanTarget:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpsApplied == 0 {
		t.Fatal("campaign applied no workload ops")
	}
	if rep.AckedFiles != sessions {
		t.Fatalf("only %d/%d acked files survived", rep.AckedFiles, sessions)
	}
	for _, r := range append(append([]Result{}, rep.Live...), rep.Destructive...) {
		if !r.Prevented && !r.Detected {
			t.Errorf("attack %q neither prevented nor detected under live load: %s", r.Name, r.Notes)
		}
	}
	if rep.DetectionSteps < 0 {
		t.Fatalf("victim tamper not detected within %d audit steps", rep.DetectionBound)
	}
	if rep.DetectionSteps > rep.DetectionBound {
		t.Fatalf("detection took %d steps, documented bound is %d", rep.DetectionSteps, rep.DetectionBound)
	}
	if rep.FSStats.AuditLinesChecked == 0 {
		t.Fatal("campaign audit checked no lines")
	}
	if rep.FSStats.AuditFindings == 0 {
		t.Fatal("campaign audit recorded no findings despite tampering attacks")
	}
}

// heatExtraLines freezes n additional files so the auditor has a
// population to sweep, returning every heated line on the device.
func heatExtraLines(t *testing.T, fs *lfs.FS, n int) []device.LineInfo {
	t.Helper()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("frozen-%d", i)
		ino, err := fs.Create(name, uint8(i%4))
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile(ino, bytes.Repeat([]byte{byte(i + 1)}, 2*device.DataBytes)); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.HeatFile(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	return fs.Device().Lines()
}

// tamperRandomBlock forges a valid-looking frame into a random member
// block of line li — raw access under the stripe locks, like a
// campaign attack — and returns the tampered line start.
func tamperRandomBlock(dev *device.Device, rng *sim.RNG, li device.LineInfo) uint64 {
	member := li.Start + 1 + rng.Uint64()%(li.Blocks()-1)
	forged := make([]byte, device.DataBytes)
	for i := range forged {
		forged[i] = byte(rng.Uint64())
	}
	bits := device.ForgedFrameBits(member, forged)
	base := int(member) * device.DotsPerBlock
	start := member
	if start > 0 {
		start--
	}
	dev.TamperRaw(start, member+2, func(m *medium.Medium) {
		for i, b := range bits {
			m.MWB(base+i, b)
		}
	})
	return li.Start
}

// driveUntilFound drives audit steps until the tampered line surfaces,
// returning the step count (capped at bound+1 on failure).
func driveUntilFound(fs *lfs.FS, batch int, bound int, tampered uint64) int {
	found := func() bool {
		for _, f := range fs.AuditFindings() {
			if f.Line.Start == tampered {
				return true
			}
		}
		return false
	}
	if found() {
		return 0
	}
	for step := 1; step <= bound; step++ {
		fs.AuditStep(batch)
		if found() {
			return step
		}
	}
	return bound + 1
}

// TestDetectionLatencyBound is the property test: one tamper injected
// at a random heated block at a random time during a live mix must be
// reported by the incremental auditor within the documented
// 2*ceil(L/batch) step bound — serially (j=1), with four concurrent
// sessions (j=4), and with the cooperative cleaner racing the audit
// drive (race-clean).
func TestDetectionLatencyBound(t *testing.T) {
	const batch = 2
	run := func(t *testing.T, iter int, j int, raceClean bool) {
		h, err := NewQuietHarness(QuietConfig{Blocks: 4096, Seed: uint64(1000 + iter)})
		if err != nil {
			t.Fatal(err)
		}
		fs := h.FS()
		lines := heatExtraLines(t, fs, 4)
		rng := sim.NewRNG(uint64(7700 + 13*iter + j))
		victim := lines[rng.Uint64()%uint64(len(lines))]
		bound := 2 * ((len(lines) + batch - 1) / batch)

		var tampered uint64
		if j == 1 {
			// Serial mix with the tamper injected between two ops at a
			// random position.
			mix := workload.DefaultMix(8, 128)
			mix.Prefix = "dl"
			ops := mix.Generate(sim.NewRNG(uint64(31 + iter)))
			at := int(rng.Uint64() % uint64(len(ops)))
			ap := workload.NewApplier(fs)
			for i, op := range ops {
				if i == at {
					tampered = tamperRandomBlock(fs.Device().(*device.Device), rng, victim)
				}
				if err := ap.Apply(op); err != nil {
					t.Fatal(err)
				}
			}
			if tampered == 0 {
				tampered = tamperRandomBlock(fs.Device().(*device.Device), rng, victim)
			}
		} else {
			// j concurrent sessions; the tamper lands from this
			// goroutine while they run (scheduler-random timing).
			var wg sync.WaitGroup
			errs := make(chan error, j)
			for s := 0; s < j; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					mix := workload.DefaultMix(8, 96)
					mix.Prefix = fmt.Sprintf("dl%d", s)
					ops := mix.Generate(sim.NewRNG(uint64(31 + iter*17 + s)))
					if _, err := workload.Apply(fs, ops); err != nil {
						errs <- err
					}
				}(s)
			}
			runtime.Gosched()
			tampered = tamperRandomBlock(fs.Device().(*device.Device), rng, victim)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		}

		stop := make(chan struct{})
		var cw sync.WaitGroup
		if raceClean {
			cw.Add(1)
			go func() {
				defer cw.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					fs.CleanStep(6)
					runtime.Gosched()
				}
			}()
		}
		steps := driveUntilFound(fs, batch, bound, tampered)
		close(stop)
		cw.Wait()
		if steps > bound {
			t.Fatalf("iter %d j=%d raceClean=%v: tamper of line %d not detected within %d steps (L=%d)",
				iter, j, raceClean, tampered, bound, len(lines))
		}
	}
	iters := 4
	if raceDetector {
		iters = 2
	}
	for _, tc := range []struct {
		name      string
		j         int
		raceClean bool
	}{
		{"j1", 1, false},
		{"j4", 4, false},
		{"j1-race-clean", 1, true},
		{"j4-race-clean", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for iter := 0; iter < iters; iter++ {
				run(t, iter, tc.j, tc.raceClean)
			}
		})
	}
}

// soakResult captures everything the false-positive soak compares
// across audit-on and audit-off runs.
type soakResult struct {
	virt     time.Duration
	digest   [32]byte
	stats    lfs.Stats
	findings int
}

// runSoak executes the deterministic j=1 soak: heated population, long
// serial mix, inline CleanStep cadence identical in both
// configurations; the audit delta (background cadence + inline steps)
// is the only difference.
func runSoak(t *testing.T, auditOn bool, ops int) soakResult {
	t.Helper()
	cfg := QuietConfig{Blocks: 4096}
	if auditOn {
		cfg.AuditEvery = 64
	}
	h, err := NewQuietHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := h.FS()
	heatExtraLines(t, fs, 4)

	mix := workload.DefaultMix(16, ops)
	mix.Prefix = "soak"
	stream := mix.Generate(sim.NewRNG(99))
	ap := workload.NewApplier(fs)
	for i, op := range stream {
		if err := ap.Apply(op); err != nil {
			t.Fatal(err)
		}
		if i%16 == 15 {
			fs.CleanStep(6)
		}
		if auditOn && i%8 == 7 {
			fs.AuditStep(2)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	res := soakResult{
		virt:     fs.Device().Clock().Now(),
		stats:    fs.Stats(),
		findings: len(fs.AuditFindings()),
	}
	names := fs.Names()
	sort.Strings(names)
	hash := sha256.New()
	for _, n := range names {
		ino, err := fs.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		data, err := fs.ReadFile(ino)
		if err != nil {
			t.Fatalf("read %s: %v", n, err)
		}
		hash.Write([]byte(n))
		hash.Write(data)
	}
	copy(res.digest[:], hash.Sum(nil))
	return res
}

// TestFalsePositiveSoak runs live traffic + background clean + audit
// rounds with no tampering: the auditor must report zero findings, and
// the audit-on run must be byte-identical in virtual time and contents
// to the audit-off run at j=1 (the off-clock contract). make
// attack-soak lengthens the stream via SERO_ATTACK_SOAK_OPS.
func TestFalsePositiveSoak(t *testing.T) {
	ops := 2048
	if raceDetector {
		ops = 512
	}
	if env := os.Getenv("SERO_ATTACK_SOAK_OPS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad SERO_ATTACK_SOAK_OPS %q", env)
		}
		ops = n
	}
	on := runSoak(t, true, ops)
	off := runSoak(t, false, ops)

	if on.findings != 0 {
		t.Fatalf("audit reported %d findings on an untampered system", on.findings)
	}
	if on.stats.AuditLinesChecked == 0 {
		t.Fatal("soak audit checked no lines")
	}
	if on.stats.AuditRounds == 0 {
		t.Fatal("soak audit completed no rounds")
	}
	if on.virt != off.virt {
		t.Fatalf("virtual time diverges: audit-on %v, audit-off %v", on.virt, off.virt)
	}
	if on.digest != off.digest {
		t.Fatal("file contents diverge between audit-on and audit-off runs")
	}
}

// campaignRecorder taps the committed magnetic write stream (the
// attack-side twin of the lfs crash harness).
type campaignRecorder struct {
	mu     sync.Mutex
	writes []struct {
		pba  uint64
		data []byte
	}
}

func (r *campaignRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.writes)
}

// TestCampaignCrashSurvival runs a live campaign while recording the
// committed write stream, then crashes it at sampled block boundaries:
// every crash image must mount, every write acked before the boundary
// must read back intact, and a full audit drive over the remounted FS
// must report zero findings (the raw tamperings are not part of the
// replayed honest write stream, so a clean reconstruction must stay
// clean — no spurious findings from crash debris).
func TestCampaignCrashSurvival(t *testing.T) {
	sessions := 3
	ops := 192
	if raceDetector {
		sessions, ops = 2, 96
	}
	h, err := NewQuietHarness(QuietConfig{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs := h.FS()
	dev := fs.Device()
	img := dev.SaveImage() // post-preparation baseline

	rec := &campaignRecorder{}
	dev.SetWriteObserver(func(pba uint64, data []byte) {
		cp := append([]byte(nil), data...)
		rec.mu.Lock()
		rec.writes = append(rec.writes, struct {
			pba  uint64
			data []byte
		}{pba, cp})
		rec.mu.Unlock()
	})

	// Live phase: sessions apply mixes and land acked files while the
	// auditor sweeps and attacks tamper the victim.
	ackIdx := make([]int, sessions)
	ackData := make([][]byte, sessions)
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mix := workload.DefaultMix(8, ops)
			mix.Prefix = fmt.Sprintf("cc%d", i)
			stream := mix.Generate(sim.NewRNG(uint64(500 + i)))
			if _, err := workload.Apply(fs, stream); err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			content := bytes.Repeat([]byte{byte(0xA0 + i)}, 2*device.DataBytes)
			name := fmt.Sprintf("acked-s%d", i)
			ino, err := fs.Create(name, uint8(i%4))
			if err == nil {
				err = fs.WriteFile(ino, content)
			}
			if err == nil {
				err = fs.Sync()
			}
			if err != nil {
				errs <- fmt.Errorf("session %d ack: %w", i, err)
				return
			}
			// Every write of the ack is at or before this index, so any
			// crash at a later boundary must preserve the file.
			ackIdx[i] = rec.count()
			ackData[i] = content
		}(i)
	}
	stopAudit := make(chan struct{})
	var aw sync.WaitGroup
	aw.Add(1)
	go func() {
		defer aw.Done()
		for {
			select {
			case <-stopAudit:
				return
			default:
			}
			fs.AuditStep(2)
			runtime.Gosched()
		}
	}()
	h.AttackMWBData()
	h.AttackEWBHash()
	wg.Wait()
	close(stopAudit)
	aw.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	dev.SetWriteObserver(nil)

	total := rec.count()
	if total == 0 {
		t.Fatal("campaign recorded no writes")
	}
	samples := 12
	if raceDetector {
		samples = 5
	}
	stride := total / samples
	if stride < 1 {
		stride = 1
	}
	p := fs.Params()
	for k := 0; k <= total; k += stride {
		crashed, _, err := device.LoadImage(img, device.DefaultParams(0))
		if err != nil {
			t.Fatal(err)
		}
		rec.mu.Lock()
		for _, w := range rec.writes[:k] {
			if werr := crashed.WriteBlocks(w.pba, [][]byte{w.data}); werr != nil {
				rec.mu.Unlock()
				t.Fatalf("replaying write to %d: %v", w.pba, werr)
			}
		}
		rec.mu.Unlock()
		mounted, merr := lfs.Mount(crashed, p)
		if merr != nil {
			t.Fatalf("crash at write %d/%d: mount failed: %v", k, total, merr)
		}
		for i := range ackIdx {
			if ackData[i] == nil || ackIdx[i] == 0 || ackIdx[i] > k {
				continue
			}
			name := fmt.Sprintf("acked-s%d", i)
			ino, lerr := mounted.Lookup(name)
			var got []byte
			if lerr == nil {
				got, lerr = mounted.ReadFile(ino)
			}
			if lerr != nil || !bytes.Equal(got, ackData[i]) {
				t.Fatalf("crash at write %d/%d: acked file %s lost or corrupted: %v", k, total, name, lerr)
			}
		}
		// A full audit sweep of the remount: never wedges, never a
		// spurious finding on the clean reconstruction.
		lines := len(crashed.Lines())
		if lines > 0 {
			bound := 2 * ((lines + 1) / 2)
			for s := 0; s < bound; s++ {
				mounted.AuditStep(2)
			}
		}
		if n := len(mounted.AuditFindings()); n != 0 {
			t.Fatalf("crash at write %d/%d: %d spurious audit findings on clean reconstruction", k, total, n)
		}
	}
}
