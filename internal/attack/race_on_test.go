//go:build race

package attack

// raceDetector scales iteration counts down when the race detector's
// instrumentation slowdown is in effect (PR 7 pattern, shared with
// internal/lfs).
const raceDetector = true
