package attack

import (
	"testing"
)

// testHarness wraps the exported prepared-FS builder with test
// plumbing; all configuration beyond the defaults lives in
// NewQuietHarness so campaigns and single-attack tests share one
// victim environment.
func testHarness(t testing.TB) *Harness {
	t.Helper()
	h, err := NewQuietHarness(QuietConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAttackMatrixComplete(t *testing.T) {
	// The headline claim of the paper: every §5 attack is either
	// prevented or detected. One shared harness runs them in sequence
	// exactly as RunAll orders them.
	h := testHarness(t)
	results := h.RunAll()
	if len(results) != 11 {
		t.Fatalf("%d attacks, want 11", len(results))
	}
	for _, r := range results {
		if !r.Prevented && !r.Detected {
			t.Errorf("attack %q neither prevented nor detected: %s", r.Name, r.Notes)
		}
	}
}

func TestAttackFSOverwritePrevented(t *testing.T) {
	h := testHarness(t)
	r := h.AttackFSOverwrite()
	if !r.Prevented {
		t.Fatalf("fs overwrite not prevented: %+v", r)
	}
}

func TestAttackMWBHashHarmless(t *testing.T) {
	h := testHarness(t)
	r := h.AttackMWBHash()
	if !r.Prevented || r.Detected {
		t.Fatalf("mwb-hash should be harmless: %+v", r)
	}
	// And the file must still verify clean afterwards.
	reps, err := h.fs.VerifyFile(h.Victim())
	if err != nil || !reps[0].OK {
		t.Fatalf("victim damaged by harmless attack: %v", err)
	}
}

func TestAttackMWBDataDetected(t *testing.T) {
	h := testHarness(t)
	r := h.AttackMWBData()
	if !r.Detected {
		t.Fatalf("mwb-data not detected: %+v", r)
	}
}

func TestAttackEWBHashDetected(t *testing.T) {
	h := testHarness(t)
	r := h.AttackEWBHash()
	if !r.Detected {
		t.Fatalf("ewb-hash not detected: %+v", r)
	}
}

func TestAttackEWBDataDetected(t *testing.T) {
	h := testHarness(t)
	r := h.AttackEWBData()
	if !r.Detected {
		t.Fatalf("ewb-data not detected: %+v", r)
	}
}

func TestAttackSplitPrevented(t *testing.T) {
	h := testHarness(t)
	r := h.AttackSplitFile()
	if !r.Prevented && !r.Detected {
		t.Fatalf("split attack succeeded: %+v", r)
	}
}

func TestAttackRmPrevented(t *testing.T) {
	h := testHarness(t)
	r := h.AttackRm()
	if !r.Prevented {
		t.Fatalf("rm not prevented: %+v", r)
	}
	// File still present and verifiable.
	if _, err := h.fs.Lookup(h.Victim()); err != nil {
		t.Fatal("victim vanished")
	}
}

func TestAttackCopyMaskPrevented(t *testing.T) {
	h := testHarness(t)
	r := h.AttackCopyMask()
	if !r.Prevented {
		t.Fatalf("copy-mask not prevented: %+v", r)
	}
	// Original untouched.
	reps, err := h.fs.VerifyFile(h.Victim())
	if err != nil || !reps[0].OK {
		t.Fatalf("original damaged by copy: %v", err)
	}
}

func TestAttackBulkEraseDetected(t *testing.T) {
	h := testHarness(t)
	r := h.AttackBulkErase()
	if !r.Detected {
		t.Fatalf("bulk erase not detected: %+v", r)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if (Result{Prevented: true}).Outcome() != "prevented" {
		t.Fatal("prevented")
	}
	if (Result{Detected: true}).Outcome() != "detected" {
		t.Fatal("detected")
	}
	if (Result{}).Outcome() != "UNDETECTED" {
		t.Fatal("undetected")
	}
}

func TestAttackCoalesceDetected(t *testing.T) {
	h := testHarness(t)
	r := h.AttackCoalesce()
	if !r.Detected && !r.Prevented {
		t.Fatalf("coalesce attack succeeded: %+v", r)
	}
}

func TestAttackClearDirectoryRecovered(t *testing.T) {
	h := testHarness(t)
	r := h.AttackClearDirectory()
	if !r.Prevented && !r.Detected {
		t.Fatalf("directory clear succeeded: %+v", r)
	}
}
