package attack

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"

	"sero/internal/device"
	"sero/internal/lfs"
	"sero/internal/sim"
	"sero/internal/workload"
)

// The concurrent campaign: the §5 attack matrix run against a LIVE
// system — workload sessions applying a serving mix, the cooperative
// cleaner racing, incremental audit rounds sweeping — instead of the
// quiesced store the single-attack methods assume. The claims under
// test are the continuous-verification contract's:
//
//   - every tamper of a heated line is detected within the documented
//     bound of 2*ceil(L/batch) audit steps, counted from any point
//     after the tamper (two full rounds cover every line), and
//   - every acked write survives — live traffic racing the attacks,
//     the cleaner and the auditor never loses or corrupts data the FS
//     acknowledged.
//
// Attacks that quiesce the device (Scan) or destroy unrelated state
// (bulk erase, directory wipe, the forged-record coalesce that heats
// a free block the allocator may want) run as a destructive tail
// after the live phase joins, in the RunAll order.

// CampaignConfig configures RunLiveCampaign. The zero value is usable.
type CampaignConfig struct {
	// Sessions is the number of concurrent workload sessions (default
	// 2). Each applies an independently seeded serving mix on its own
	// namespace shard, then writes and syncs one tracked "acked" file.
	Sessions int
	// OpsPerSession is the mix length per session (default 256).
	OpsPerSession int
	// Files is the mix population ring per session (default 8).
	Files int
	// Seed derives every session's stream (default 1).
	Seed uint64
	// AuditBatch is the lines-per-step batch the audit rounds use
	// (default 2).
	AuditBatch int
	// CleanTarget, when positive, runs a goroutine driving cooperative
	// CleanStep rounds toward this many reclaimable segments for the
	// whole live phase — the race-clean ingredient (default 0: off).
	CleanTarget int
}

// CampaignReport is RunLiveCampaign's outcome.
type CampaignReport struct {
	// Live holds the attack results from the live phase, in run order.
	Live []Result
	// Destructive holds the quiesced destructive-tail results.
	Destructive []Result
	// OpsApplied totals workload ops applied across sessions.
	OpsApplied int
	// AckedFiles counts tracked acked files verified byte-identical
	// after the live phase joined.
	AckedFiles int
	// DetectionSteps is how many bounded-drive audit steps ran before
	// the victim's tampered line surfaced in the findings (0 when the
	// concurrent rounds had already caught it; -1 if it never did).
	DetectionSteps int
	// DetectionBound is the documented bound those steps must stay
	// within: 2*ceil(L/AuditBatch) for the final line population.
	DetectionBound int
	// FSStats snapshots the FS counters (audit counters included)
	// after the detection drive, before the destructive tail.
	FSStats lfs.Stats
}

// campaignSeed derives session i's stream seed.
func campaignSeed(seed uint64, i int) uint64 {
	return seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15)
}

// RunLiveCampaign runs the live phase — Sessions workload appliers,
// the optional racing cleaner, continuous audit rounds, and the
// non-destructive §5 attacks, all concurrently — then joins, verifies
// every acked write, drives audit rounds to the detection bound, and
// finishes with the destructive tail. The returned error reports the
// first infrastructure failure (a session that could not apply its
// ops, an acked file that did not survive); attack classification
// lives in the report.
func (h *Harness) RunLiveCampaign(cfg CampaignConfig) (CampaignReport, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 2
	}
	if cfg.OpsPerSession <= 0 {
		cfg.OpsPerSession = 256
	}
	if cfg.Files <= 0 {
		cfg.Files = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.AuditBatch <= 0 {
		cfg.AuditBatch = 2
	}
	fs := h.fs
	rep := CampaignReport{DetectionSteps: -1}

	// Live workload sessions, each ending with one tracked acked file.
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Sessions)
	applied := make([]int, cfg.Sessions)
	acked := make([][]byte, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mix := workload.DefaultMix(cfg.Files, cfg.OpsPerSession)
			mix.Prefix = fmt.Sprintf("cmp%d", i)
			mix.SyncEvery = 32
			ops := mix.Generate(sim.NewRNG(campaignSeed(cfg.Seed, i)))
			n, err := workload.Apply(fs, ops)
			applied[i] = n
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			rng := sim.NewRNG(campaignSeed(cfg.Seed, i) ^ 0xACED)
			content := make([]byte, 2*device.DataBytes)
			for j := range content {
				content[j] = byte(rng.Uint64())
			}
			name := fmt.Sprintf("acked-s%d", i)
			ino, err := fs.Create(name, uint8(i%4))
			if err == nil {
				err = fs.WriteFile(ino, content)
			}
			if err == nil {
				err = fs.Sync() // the ack
			}
			if err != nil {
				errs <- fmt.Errorf("session %d acked write: %w", i, err)
				return
			}
			acked[i] = content
		}(i)
	}

	// The racing cleaner: cooperative CleanStep rounds for the whole
	// live phase.
	stop := make(chan struct{})
	var bgWG sync.WaitGroup
	if cfg.CleanTarget > 0 {
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				fs.CleanStep(cfg.CleanTarget)
				runtime.Gosched()
			}
		}()
	}

	// Continuous audit rounds racing everything above.
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			fs.AuditStep(cfg.AuditBatch)
			runtime.Gosched()
		}
	}()

	// The live, non-destructive attack sequence runs against the storm.
	rep.Live = []Result{
		h.AttackFSOverwrite(),
		h.AttackMWBHash(),
		h.AttackMWBData(),
		h.AttackEWBHash(),
		h.AttackEWBData(),
		h.AttackSplitFile(),
		h.AttackRm(),
	}

	wg.Wait()
	close(stop)
	bgWG.Wait()
	close(errs)
	var firstErr error
	for err := range errs {
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, n := range applied {
		rep.OpsApplied += n
	}

	// Every acked write survives.
	for i, content := range acked {
		if content == nil {
			continue // session already reported its failure
		}
		name := fmt.Sprintf("acked-s%d", i)
		ino, err := fs.Lookup(name)
		var got []byte
		if err == nil {
			got, err = fs.ReadFile(ino)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("acked file %s lost: %w", name, err)
			}
			continue
		}
		if !bytes.Equal(got, content) {
			if firstErr == nil {
				firstErr = fmt.Errorf("acked file %s corrupted", name)
			}
			continue
		}
		rep.AckedFiles++
	}

	// Bounded detection drive: two full rounds over the final line
	// population must surface the victim tamper, wherever the round
	// cursor stopped.
	lines := len(fs.Device().Lines())
	if lines > 0 {
		rep.DetectionBound = 2 * ((lines + cfg.AuditBatch - 1) / cfg.AuditBatch)
	}
	if h.victimFound() {
		rep.DetectionSteps = 0
	} else {
		for step := 1; step <= rep.DetectionBound; step++ {
			fs.AuditStep(cfg.AuditBatch)
			if h.victimFound() {
				rep.DetectionSteps = step
				break
			}
		}
	}
	rep.FSStats = fs.Stats()

	// Destructive tail, quiesced.
	rep.Destructive = []Result{
		h.AttackCoalesce(),
		h.AttackCopyMask(),
		h.AttackClearDirectory(),
		h.AttackBulkErase(),
	}
	return rep, firstErr
}

// victimFound reports whether the auditor's findings include the
// victim's line.
func (h *Harness) victimFound() bool {
	for _, f := range h.fs.AuditFindings() {
		if f.Line.Start == h.line.Start {
			return true
		}
	}
	return false
}
